// Package platod2gl is a Go implementation of PlatoD2GL ("An Efficient
// Dynamic Deep Graph Learning System for Graph Neural Network Training on
// Billion-Scale Graphs", ICDE 2024): an in-memory dynamic graph store built
// on per-vertex samtrees with Fenwick-tree (FSTable) weighted sampling,
// CP-IDs prefix compression, and PALM-style batch latch-free updates —
// plus the sampling operators and a GraphSAGE trainer that sit on top.
//
// # Quick start
//
//	g := platod2gl.New()
//	g.AddEdge(platod2gl.Edge{Src: 1, Dst: 2, Weight: 0.5})
//	g.AddEdge(platod2gl.Edge{Src: 1, Dst: 3, Weight: 1.5})
//	neighbors := g.SampleNeighbors([]platod2gl.VertexID{1}, 0, 10)
//
// The package re-exports the heterogeneous graph model (typed vertices and
// edges, timestamped update events), batched update application, weighted
// neighbor / node / subgraph sampling, an attribute store for features and
// labels, and end-to-end GNN training utilities. The distributed deployment
// lives in the cluster client (see cmd/platod2gl-server) and the paper's
// evaluation harness in cmd/platod2gl-bench.
package platod2gl

import (
	"io"
	"math/rand"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// Re-exported graph model types; see the corresponding internal/graph docs.
type (
	// VertexID is a packed 64-bit vertex identifier (type byte ‖ local id).
	VertexID = graph.VertexID
	// VertexType identifies a vertex class of the heterogeneous schema.
	VertexType = graph.VertexType
	// EdgeType identifies a relation of the heterogeneous schema.
	EdgeType = graph.EdgeType
	// Edge is a weighted directed typed edge.
	Edge = graph.Edge
	// Event is one timestamped topology update.
	Event = graph.Event
	// EventKind enumerates topology update operations.
	EventKind = graph.EventKind
	// MetaPath is a sequence of edge types for multi-hop subgraph sampling.
	MetaPath = graph.MetaPath
	// Schema describes a heterogeneous graph's vertex and edge types.
	Schema = graph.Schema
	// Relation describes one edge type of a schema.
	Relation = graph.Relation
)

// Event kinds.
const (
	// AddEdge inserts an edge or updates its weight if present.
	AddEdge = graph.AddEdge
	// DeleteEdge removes an edge.
	DeleteEdge = graph.DeleteEdge
	// UpdateWeight changes an existing edge's weight.
	UpdateWeight = graph.UpdateWeight
)

// Sampling result types.
type (
	// NeighborBatch is a dense batched neighbor-sampling result.
	NeighborBatch = sampler.NeighborBatch
	// Subgraph is a multi-hop meta-path sampling result.
	Subgraph = sampler.Subgraph
	// SubgraphLayer is one hop of a Subgraph.
	SubgraphLayer = sampler.Layer
)

// GNN training types.
type (
	// Model is a two-layer GraphSAGE node classifier.
	Model = gnn.Model
	// Trainer drives mini-batch GNN training over the dynamic graph.
	Trainer = gnn.Trainer
	// Matrix is a dense float32 matrix.
	Matrix = gnn.Matrix
	// LinkModel is a GraphSAGE encoder for link prediction.
	LinkModel = gnn.LinkModel
	// LinkTrainer drives link-prediction (recommendation) training.
	LinkTrainer = gnn.LinkTrainer
	// SAGELayer is a GraphSAGE layer (mean aggregation, Eq. 1).
	SAGELayer = gnn.SAGELayer
	// GATLayer is a single-head graph attention layer.
	GATLayer = gnn.GATLayer
	// GATModel is a two-layer graph-attention node classifier.
	GATModel = gnn.GATModel
	// GATTrainer drives attention-GNN training over the dynamic graph.
	GATTrainer = gnn.GATTrainer
)

// EdgeKey addresses per-edge attributes.
type EdgeKey = kvstore.EdgeKey

// GraphView is the backend-agnostic storage seam GNN trainers consume:
// sampling plus feature/label access, implemented by a local graph
// (Graph.View) or a cluster client (internal/view.Cluster). See
// docs/TRAINING.md.
type GraphView = view.GraphView

// MakeVertexID packs a vertex type and a 56-bit local ID.
func MakeVertexID(t VertexType, local uint64) VertexID {
	return graph.MakeVertexID(t, local)
}

// DefaultCapacity is the default samtree node capacity (2^8).
const DefaultCapacity = core.DefaultCapacity

type config struct {
	capacity    int
	alpha       int
	compress    bool
	workers     int
	parallelism int
	seed        int64
}

// Option configures a Graph.
type Option func(*config)

// WithCapacity sets the samtree node capacity c (default 256).
func WithCapacity(c int) Option { return func(cf *config) { cf.capacity = c } }

// WithAlpha sets the α-Split slackness (default 0 = exact median splits).
func WithAlpha(a int) Option { return func(cf *config) { cf.alpha = a } }

// WithoutCompression disables CP-IDs prefix compression (the paper's
// "w/o CP" ablation).
func WithoutCompression() Option { return func(cf *config) { cf.compress = false } }

// WithWorkers bounds batch-update parallelism (default: one per CPU).
func WithWorkers(n int) Option { return func(cf *config) { cf.workers = n } }

// WithSamplerParallelism bounds batch-sampling parallelism (default 4).
func WithSamplerParallelism(n int) Option { return func(cf *config) { cf.parallelism = n } }

// WithSeed fixes the sampling seed for reproducible experiments.
func WithSeed(s int64) Option { return func(cf *config) { cf.seed = s } }

// Graph is a dynamic heterogeneous graph: samtree topology storage, a
// key-value attribute store, and sampling operators. All methods are safe
// for concurrent use.
type Graph struct {
	store    *storage.DynamicStore
	attrs    *kvstore.Store
	smp      *sampler.Sampler
	gview    *view.Local
	counters *core.Counters
}

// New returns an empty dynamic graph.
func New(opts ...Option) *Graph {
	cf := config{capacity: DefaultCapacity, compress: true, parallelism: 4, seed: 1}
	for _, o := range opts {
		o(&cf)
	}
	counters := &core.Counters{}
	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{
			Capacity: cf.capacity,
			Alpha:    cf.alpha,
			Compress: cf.compress,
			Counters: counters,
		},
		Workers: cf.workers,
	})
	attrs := kvstore.New()
	smpOpt := sampler.Options{Parallelism: cf.parallelism, Seed: cf.seed}
	return &Graph{
		store:    store,
		attrs:    attrs,
		smp:      sampler.New(store, smpOpt),
		gview:    view.NewLocal(store, attrs, smpOpt),
		counters: counters,
	}
}

// View returns a GraphView over this graph's local stores, sharing the
// graph's sampler parallelism and seed (WithSamplerParallelism, WithSeed).
// Trainers built by NewTrainer/NewGATTrainer/NewLinkTrainer consume it; use
// it directly to drive internal/pipeline or custom training loops.
func (g *Graph) View() GraphView { return g.gview }

// AddEdge inserts e, or updates its weight if already present. Reports
// whether the edge was new.
func (g *Graph) AddEdge(e Edge) bool { return g.store.AddEdge(e) }

// DeleteEdge removes the edge; reports whether it existed.
func (g *Graph) DeleteEdge(src, dst VertexID, et EdgeType) bool {
	return g.store.DeleteEdge(src, dst, et)
}

// UpdateEdgeWeight changes an existing edge's weight; reports whether the
// edge existed.
func (g *Graph) UpdateEdgeWeight(src, dst VertexID, et EdgeType, w float64) bool {
	return g.store.UpdateWeight(src, dst, et, w)
}

// Apply applies a batch of update events with the PALM-style latch-free
// batch mechanism. Events may be reordered (per-edge order is preserved by
// timestamp).
func (g *Graph) Apply(events []Event) { g.store.ApplyBatch(events) }

// EdgeWeight returns the weight of the edge, if present.
func (g *Graph) EdgeWeight(src, dst VertexID, et EdgeType) (float64, bool) {
	return g.store.EdgeWeight(src, dst, et)
}

// Degree returns the out-degree of src under relation et.
func (g *Graph) Degree(src VertexID, et EdgeType) int { return g.store.Degree(src, et) }

// Neighbors returns all out-neighbors and weights of src under et.
func (g *Graph) Neighbors(src VertexID, et EdgeType) ([]VertexID, []float64) {
	return g.store.Neighbors(src, et)
}

// NeighborsInRange returns src's out-neighbors with IDs in [lo, hi] — an
// ordered range scan over the samtree's routing keys.
func (g *Graph) NeighborsInRange(src VertexID, et EdgeType, lo, hi VertexID) ([]VertexID, []float64) {
	return g.store.NeighborsInRange(src, et, lo, hi)
}

// NeighborsOfType returns src's out-neighbors of vertex type vt: a range
// scan over the type's packed 2^56-wide ID band.
func (g *Graph) NeighborsOfType(src VertexID, et EdgeType, vt VertexType) ([]VertexID, []float64) {
	lo := MakeVertexID(vt, 0)
	hi := MakeVertexID(vt, graph.MaxLocalID)
	return g.store.NeighborsInRange(src, et, lo, hi)
}

// Sources returns the vertices with out-edges under et.
func (g *Graph) Sources(et EdgeType) []VertexID { return g.store.Sources(et) }

// NumEdges returns the current edge count.
func (g *Graph) NumEdges() int64 { return g.store.NumEdges() }

// MemoryBytes returns the structural memory footprint of the topology.
func (g *Graph) MemoryBytes() int64 { return g.store.MemoryBytes() }

// RelationStats summarizes one relation's topology.
type RelationStats = storage.RelationStats

// Stats summarizes every relation in the graph.
func (g *Graph) Stats() []RelationStats { return g.store.AllStats() }

// SampleNodes draws k sources of relation et uniformly (with replacement).
func (g *Graph) SampleNodes(et EdgeType, k int, rng *rand.Rand) []VertexID {
	return g.smp.SampleNodes(et, k, rng)
}

// SampleNeighbors draws fanout weighted neighbors (with replacement) per
// seed; seeds without out-neighbors fall back to themselves so the result
// stays dense.
func (g *Graph) SampleNeighbors(seeds []VertexID, et EdgeType, fanout int) *NeighborBatch {
	return g.smp.SampleNeighbors(seeds, et, fanout)
}

// SampleNeighborsUniform draws fanout unweighted neighbors per seed (each
// neighbor with probability 1/degree — plain GraphSAGE's sampling mode).
func (g *Graph) SampleNeighborsUniform(seeds []VertexID, et EdgeType, fanout int) *NeighborBatch {
	return g.smp.SampleNeighborsUniform(seeds, et, fanout)
}

// SampleNeighborsDistinct draws up to k distinct weighted neighbors of src
// (without replacement); k >= degree returns all neighbors.
func (g *Graph) SampleNeighborsDistinct(src VertexID, et EdgeType, k int, rng *rand.Rand) []VertexID {
	return g.store.SampleNeighborsDistinct(src, et, k, rng, nil)
}

// SampleSubgraph expands seeds along a meta-path with per-hop fanouts.
func (g *Graph) SampleSubgraph(seeds []VertexID, path MetaPath, fanouts []int) *Subgraph {
	return g.smp.SampleSubgraph(seeds, path, fanouts)
}

// RandomWalk performs weighted random walks of the given length from each
// seed, returning rows of length+1 vertices.
func (g *Graph) RandomWalk(seeds []VertexID, et EdgeType, length int) [][]VertexID {
	return g.smp.RandomWalk(seeds, et, length)
}

// SetFeatures stores a feature vector (retained, do not mutate).
func (g *Graph) SetFeatures(id VertexID, f []float32) { g.attrs.SetFeatures(id, f) }

// Features returns the stored feature vector (shared, do not mutate).
func (g *Graph) Features(id VertexID) ([]float32, bool) { return g.attrs.Features(id) }

// SetLabel stores a class label.
func (g *Graph) SetLabel(id VertexID, label int32) { g.attrs.SetLabel(id, label) }

// Label returns the stored class label.
func (g *Graph) Label(id VertexID) (int32, bool) { return g.attrs.Label(id) }

// GatherFeatures copies feature rows into a dense (len(ids) × dim) matrix.
func (g *Graph) GatherFeatures(ids []VertexID, dim int) []float32 {
	return g.attrs.GatherFeatures(ids, dim)
}

// Save serializes the topology to w as an engine-neutral snapshot.
func (g *Graph) Save(w io.Writer) error { return g.store.Save(w) }

// Load merges a snapshot previously written by Save into the graph.
func (g *Graph) Load(r io.Reader) error { return g.store.Load(r) }

// LeafUpdateShare reports the fraction of topology updates that touched
// only leaf structures (the paper's Table V quantity).
func (g *Graph) LeafUpdateShare() float64 { return g.counters.LeafShare() }

// NewModel builds a Glorot-initialized 2-layer GraphSAGE model.
func NewModel(inDim, hidden, classes int, rng *rand.Rand) *Model {
	return gnn.NewModel(inDim, hidden, classes, rng)
}

// NewTrainer wires a GNN trainer to this graph: relation rel is expanded
// with fanouts f1 (hop 1) and f2 (hop 2).
func (g *Graph) NewTrainer(model *Model, rel EdgeType, f1, f2 int, lr float64) *Trainer {
	return gnn.NewTrainer(model, g.gview, rel, f1, f2, lr)
}

// NewGATLayer builds a Glorot-initialized graph attention layer.
func NewGATLayer(in, out int, act bool, rng *rand.Rand) *GATLayer {
	return gnn.NewGATLayer(in, out, act, rng)
}

// NewGATModel builds a 2-layer graph-attention node classifier.
func NewGATModel(inDim, hidden, classes int, rng *rand.Rand) *GATModel {
	return gnn.NewGATModel(inDim, hidden, classes, rng)
}

// NewGATTrainer wires an attention-GNN trainer: relation rel expanded at
// the same fanout on both hops.
func (g *Graph) NewGATTrainer(model *GATModel, rel EdgeType, fanout int, lr float64) *GATTrainer {
	return gnn.NewGATTrainer(model, g.gview, rel, fanout, lr)
}

// NewLinkModel builds a GraphSAGE link-prediction encoder.
func NewLinkModel(inDim, outDim int, rng *rand.Rand) *LinkModel {
	return gnn.NewLinkModel(inDim, outDim, rng)
}

// NewLinkTrainer wires a link-prediction trainer (the recommendation
// objective): positives are observed edges of rel, negatives are drawn
// uniformly from negativePool.
func (g *Graph) NewLinkTrainer(model *LinkModel, rel EdgeType, fanout int, lr float64, negativePool []VertexID, seed int64) *LinkTrainer {
	return gnn.NewLinkTrainer(model, g.gview, rel, fanout, lr, negativePool, seed)
}

// SaveModelParams serializes GNN parameters (from Model.Params or
// LinkModel.Enc.Params) to w.
func SaveModelParams(w io.Writer, params []*Matrix) error { return gnn.SaveParams(w, params) }

// LoadModelParams restores GNN parameters in place from r.
func LoadModelParams(r io.Reader, params []*Matrix) error { return gnn.LoadParams(r, params) }

// SetEdgeFeatures stores per-edge attributes (retained, do not mutate).
func (g *Graph) SetEdgeFeatures(k EdgeKey, f []float32) { g.attrs.SetEdgeFeatures(k, f) }

// EdgeFeatures returns stored per-edge attributes (shared, do not mutate).
func (g *Graph) EdgeFeatures(k EdgeKey) ([]float32, bool) { return g.attrs.EdgeFeatures(k) }

// Dataset re-exports: synthetic stand-ins for the paper's evaluation graphs.
type (
	// DatasetSpec describes a synthetic dataset (Table III shape).
	DatasetSpec = dataset.Spec
	// EventGenerator produces a deterministic dynamic event stream.
	EventGenerator = dataset.Generator
	// EventMix controls the add/update/delete composition of a stream.
	EventMix = dataset.Mix
)

// Synthetic dataset specs matching Table III of the paper.
var (
	// OGBNSpec mirrors OGBN-Products (density 25.8).
	OGBNSpec = dataset.OGBNSim
	// RedditSpec mirrors Reddit (density 489.3).
	RedditSpec = dataset.RedditSim
	// WeChatSpec mirrors the WeChat production graph (4 relations).
	WeChatSpec = dataset.WeChatSim
)

// NewEventGenerator returns a deterministic event stream for a spec.
func NewEventGenerator(spec *DatasetSpec, mix EventMix, seed int64) *EventGenerator {
	return dataset.NewGenerator(spec, mix, seed)
}

// Event mixes for common workloads.
var (
	// BuildMix is pure insertion (graph building).
	BuildMix = dataset.BuildMix
	// DynamicMix models live recommendation traffic (inserts, repeats,
	// weight updates, deletions).
	DynamicMix = dataset.DynamicMix
)

// AssignSyntheticFeatures populates learnable features and labels for n
// vertices of type vt (class-centroid + noise; see internal/dataset).
func (g *Graph) AssignSyntheticFeatures(vt VertexType, n uint64, dim, classes int, noise float64, seed int64) {
	dataset.AssignFeatures(g.attrs, vt, n, dim, classes, noise, seed)
}
