package platod2gl_test

import (
	"fmt"
	"math/rand"
	"sort"

	"platod2gl"
)

// Example demonstrates the core workflow: build a weighted dynamic graph,
// sample neighbors, apply updates, observe the change.
func Example() {
	g := platod2gl.New(platod2gl.WithSeed(1))
	g.AddEdge(platod2gl.Edge{Src: 1, Dst: 2, Weight: 0.1})
	g.AddEdge(platod2gl.Edge{Src: 1, Dst: 3, Weight: 0.4})
	g.AddEdge(platod2gl.Edge{Src: 1, Dst: 5, Weight: 0.2})
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("degree of 1:", g.Degree(1, 0))

	g.DeleteEdge(1, 3, 0)
	fmt.Println("after delete:", g.Degree(1, 0))

	// Output:
	// edges: 3
	// degree of 1: 3
	// after delete: 2
}

// ExampleGraph_Apply shows batched (PALM-style) update application.
func ExampleGraph_Apply() {
	g := platod2gl.New()
	events := []platod2gl.Event{
		{Kind: platod2gl.AddEdge, Edge: platod2gl.Edge{Src: 7, Dst: 1, Weight: 1}, Timestamp: 1},
		{Kind: platod2gl.AddEdge, Edge: platod2gl.Edge{Src: 7, Dst: 2, Weight: 2}, Timestamp: 2},
		{Kind: platod2gl.UpdateWeight, Edge: platod2gl.Edge{Src: 7, Dst: 1, Weight: 9}, Timestamp: 3},
		{Kind: platod2gl.DeleteEdge, Edge: platod2gl.Edge{Src: 7, Dst: 2}, Timestamp: 4},
	}
	g.Apply(events)
	w, _ := g.EdgeWeight(7, 1, 0)
	fmt.Println("edges:", g.NumEdges(), "weight(7->1):", w)

	// Output:
	// edges: 1 weight(7->1): 9
}

// ExampleGraph_SampleNeighborsDistinct draws neighbors without replacement.
func ExampleGraph_SampleNeighborsDistinct() {
	g := platod2gl.New(platod2gl.WithSeed(3))
	for i := uint64(10); i < 15; i++ {
		g.AddEdge(platod2gl.Edge{Src: 1, Dst: platod2gl.VertexID(i), Weight: 1})
	}
	got := g.SampleNeighborsDistinct(1, 0, 5, newRand())
	ids := make([]int, len(got))
	for i, v := range got {
		ids[i] = int(v)
	}
	sort.Ints(ids)
	fmt.Println(ids)

	// Output:
	// [10 11 12 13 14]
}

// ExampleMakeVertexID shows heterogeneous vertex ID packing.
func ExampleMakeVertexID() {
	const vtUser, vtLive = 0, 1
	u := platod2gl.MakeVertexID(vtUser, 42)
	l := platod2gl.MakeVertexID(vtLive, 42)
	fmt.Println(u.Type(), u.Local())
	fmt.Println(l.Type(), l.Local())
	fmt.Println("distinct:", u != l)

	// Output:
	// 0 42
	// 1 42
	// distinct: true
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(9)) }
