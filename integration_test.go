package platod2gl_test

import (
	"bufio"
	"net/rpc"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"platod2gl"
	"platod2gl/internal/cluster"
	"platod2gl/internal/graph"
)

// TestEndToEndLocal drives the full pipeline through the public API: stream
// a synthetic dynamic dataset, sample mini-batches, train a GNN, keep
// updating, and verify the store stays consistent throughout.
func TestEndToEndLocal(t *testing.T) {
	g := platod2gl.New(platod2gl.WithCapacity(64), platod2gl.WithSeed(5))
	spec := platod2gl.WeChatSpec().Scale(2e-7)
	gen := platod2gl.NewEventGenerator(spec, platod2gl.DynamicMix, 1)
	for i := 0; i < 20; i++ {
		g.Apply(gen.Next(2000))
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges after streaming")
	}
	srcs := g.Sources(0)
	if len(srcs) == 0 {
		t.Fatal("no sources in relation 0")
	}
	seeds := srcs
	if len(seeds) > 64 {
		seeds = seeds[:64]
	}
	nb := g.SampleNeighbors(seeds, 0, 10)
	if len(nb.Neighbors) != len(seeds)*10 {
		t.Fatalf("sampled %d", len(nb.Neighbors))
	}
	sg := g.SampleSubgraph(seeds, platod2gl.MetaPath{0, 128}, []int{5, 3})
	if sg.NumNodes() != len(seeds)*(1+5+15) {
		t.Fatalf("subgraph nodes = %d", sg.NumNodes())
	}
	walks := g.RandomWalk(seeds[:4], 0, 3)
	if len(walks) != 4 || len(walks[0]) != 4 {
		t.Fatalf("walks shape: %d x %d", len(walks), len(walks[0]))
	}
	// Snapshot round-trip through the public API.
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2 := platod2gl.New()
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Load(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
}

// buildBinary compiles one of the cmd tools into dir.
func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// startServer launches platod2gl-server on an ephemeral port and returns
// its address and a stop function.
func startServer(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server did not report its address")
		return "", nil
	}
}

// TestEndToEndProcesses runs the real binaries: a graph server with
// snapshotting, the load generator pushing a dataset over TCP, a direct RPC
// sanity check, then a SIGTERM + restart to verify the snapshot restores
// the graph.
func TestEndToEndProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	dir := t.TempDir()
	serverBin := buildBinary(t, dir, "platod2gl-server")
	loadgenBin := buildBinary(t, dir, "platod2gl-loadgen")
	snap := filepath.Join(dir, "graph.snap")

	addr, srv := startServer(t, serverBin, "-snapshot", snap)
	defer srv.Process.Kill()

	// Push a small dataset through the real loadgen binary.
	lg := exec.Command(loadgenBin, "-dataset", "ogbn", "-edges", "5000", "-servers", addr)
	out, err := lg.CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "cluster:") {
		t.Fatalf("loadgen output missing cluster stats:\n%s", out)
	}

	// Direct RPC: confirm the server holds edges.
	conn, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client := cluster.NewClient([]*rpc.Client{conn})
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumEdges == 0 {
		t.Fatal("server reports zero edges after load")
	}
	client.Close()

	// SIGTERM triggers the snapshot; wait for the file then for exit.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- srv.Wait() }()
	select {
	case <-waitErr:
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not written: %v", err)
	}

	// Restart from the snapshot and verify the edge count survived.
	addr2, srv2 := startServer(t, serverBin, "-snapshot", snap)
	defer srv2.Process.Kill()
	conn2, err := rpc.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	client2 := cluster.NewClient([]*rpc.Client{conn2})
	stats2, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.NumEdges != stats.NumEdges {
		t.Fatalf("restored %d edges, want %d", stats2.NumEdges, stats.NumEdges)
	}
	// The restored graph serves sampling queries.
	var events []graph.Event
	events = append(events, graph.Event{Kind: graph.AddEdge, Edge: graph.Edge{
		Src: platod2gl.MakeVertexID(0, 1), Dst: platod2gl.MakeVertexID(0, 2), Weight: 1}})
	if err := client2.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	got, err := client2.SampleNeighbors([]graph.VertexID{platod2gl.MakeVertexID(0, 1)}, 0, 3, 1)
	if err != nil || len(got) != 3 {
		t.Fatalf("sampling after restore: %v, %v", got, err)
	}
}

// TestBenchBinarySmoke runs one tiny experiment through the real bench
// binary.
func TestBenchBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir, "platod2gl-bench")
	cmd := exec.Command(bin, "-experiment", "table2", "-edges", "2000")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Table II") {
		t.Fatalf("unexpected bench output:\n%s", out)
	}
	// Unknown experiment exits non-zero.
	cmd = exec.Command(bin, "-experiment", "nope")
	if err := cmd.Run(); err == nil {
		t.Fatal("expected failure for unknown experiment")
	}
}

// TestWALCrashRecovery kills the server hard (SIGKILL — no snapshot
// handler runs) and verifies the write-ahead log rebuilds the graph.
func TestWALCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	dir := t.TempDir()
	serverBin := buildBinary(t, dir, "platod2gl-server")
	loadgenBin := buildBinary(t, dir, "platod2gl-loadgen")
	wal := filepath.Join(dir, "graph.wal")

	addr, srv := startServer(t, serverBin, "-wal", wal)
	lg := exec.Command(loadgenBin, "-dataset", "reddit", "-edges", "4000", "-servers", addr)
	if out, err := lg.CombinedOutput(); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	conn, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client := cluster.NewClient([]*rpc.Client{conn})
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if stats.NumEdges == 0 {
		t.Fatal("no edges before crash")
	}

	// Hard kill: no snapshot, only the WAL survives.
	srv.Process.Kill()
	srv.Wait()

	addr2, srv2 := startServer(t, serverBin, "-wal", wal)
	defer srv2.Process.Kill()
	conn2, err := rpc.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	client2 := cluster.NewClient([]*rpc.Client{conn2})
	stats2, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.NumEdges != stats.NumEdges {
		t.Fatalf("WAL recovery restored %d edges, want %d", stats2.NumEdges, stats.NumEdges)
	}
}

// TestExamplesRun keeps every example compiling and exiting cleanly.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	examples, err := filepath.Glob("examples/*/main.go")
	if err != nil || len(examples) < 5 {
		t.Fatalf("found %d examples (err %v), want >= 5", len(examples), err)
	}
	for _, main := range examples {
		dir := filepath.Dir(main)
		t.Run(filepath.Base(dir), func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", dir)
			}
		})
	}
}

// TestSnapshotTruncatesWALOnShutdown verifies the snapshot/WAL double-replay
// fix end to end: a SIGTERM shutdown writes the snapshot AND atomically
// truncates the WAL, so a restart recovers from snapshot + (empty) WAL tail
// without re-applying batches the snapshot already contains. The dynamic mix
// includes deletes, for which double replay is not idempotent.
func TestSnapshotTruncatesWALOnShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	dir := t.TempDir()
	serverBin := buildBinary(t, dir, "platod2gl-server")
	loadgenBin := buildBinary(t, dir, "platod2gl-loadgen")
	snap := filepath.Join(dir, "graph.snap")
	wal := filepath.Join(dir, "graph.wal")

	addr, srv := startServer(t, serverBin, "-snapshot", snap, "-wal", wal)
	defer srv.Process.Kill()
	lg := exec.Command(loadgenBin, "-dataset", "ogbn", "-edges", "6000", "-mix", "dynamic", "-servers", addr)
	if out, err := lg.CombinedOutput(); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	client, err := cluster.Dial([]string{addr}, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if stats.NumEdges == 0 {
		t.Fatal("no edges before shutdown")
	}
	walBefore, err := os.Stat(wal)
	if err != nil || walBefore.Size() == 0 {
		t.Fatalf("wal missing before shutdown: %v", err)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- srv.Wait() }()
	select {
	case <-waitErr:
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not written: %v", err)
	}
	// The WAL must have been truncated to its bare header (< its loaded
	// size by orders of magnitude), not left holding the full stream.
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatalf("wal gone after shutdown: %v", err)
	}
	if fi.Size() >= walBefore.Size() || fi.Size() > 64 {
		t.Fatalf("wal not truncated: %d bytes (was %d)", fi.Size(), walBefore.Size())
	}

	// Restart with both flags: snapshot restores everything, the empty WAL
	// replays nothing, and the edge count matches exactly.
	addr2, srv2 := startServer(t, serverBin, "-snapshot", snap, "-wal", wal)
	defer srv2.Process.Kill()
	client2, err := cluster.Dial([]string{addr2}, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	stats2, err := client2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats2.NumEdges != stats.NumEdges {
		t.Fatalf("restart after snapshot+truncate: %d edges, want %d (double replay?)",
			stats2.NumEdges, stats.NumEdges)
	}
	// New batches after restart land in the fresh WAL tail.
	if err := client2.ApplyBatch([]graph.Event{{Kind: graph.AddEdge, Edge: graph.Edge{
		Src: platod2gl.MakeVertexID(0, 42), Dst: platod2gl.MakeVertexID(0, 43), Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(wal); err != nil || fi.Size() <= 64 {
		t.Fatalf("post-restart wal not growing: %v, %v", fi, err)
	}
}
