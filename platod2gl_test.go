package platod2gl_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"platod2gl"
)

func TestPublicAPIBasics(t *testing.T) {
	g := platod2gl.New()
	if !g.AddEdge(platod2gl.Edge{Src: 1, Dst: 2, Weight: 0.5}) {
		t.Fatal("AddEdge returned false for new edge")
	}
	if w, ok := g.EdgeWeight(1, 2, 0); !ok || math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("EdgeWeight = %v,%v", w, ok)
	}
	if !g.UpdateEdgeWeight(1, 2, 0, 2) {
		t.Fatal("UpdateEdgeWeight failed")
	}
	if g.Degree(1, 0) != 1 || g.NumEdges() != 1 {
		t.Fatalf("degree=%d edges=%d", g.Degree(1, 0), g.NumEdges())
	}
	if !g.DeleteEdge(1, 2, 0) || g.NumEdges() != 0 {
		t.Fatal("DeleteEdge failed")
	}
}

func TestPublicAPIOptions(t *testing.T) {
	g := platod2gl.New(
		platod2gl.WithCapacity(32),
		platod2gl.WithAlpha(2),
		platod2gl.WithoutCompression(),
		platod2gl.WithWorkers(2),
		platod2gl.WithSamplerParallelism(2),
		platod2gl.WithSeed(9),
	)
	for i := uint64(0); i < 500; i++ {
		g.AddEdge(platod2gl.Edge{Src: 7, Dst: platod2gl.VertexID(i), Weight: 1})
	}
	if g.Degree(7, 0) != 500 {
		t.Fatalf("degree = %d", g.Degree(7, 0))
	}
	if g.LeafUpdateShare() <= 0 {
		t.Fatal("LeafUpdateShare not tracked")
	}
}

func TestPublicAPIBatchAndSampling(t *testing.T) {
	g := platod2gl.New(platod2gl.WithSeed(3))
	var events []platod2gl.Event
	for src := uint64(0); src < 20; src++ {
		for j := uint64(0); j < 10; j++ {
			events = append(events, platod2gl.Event{
				Kind: platod2gl.AddEdge,
				Edge: platod2gl.Edge{
					Src: platod2gl.VertexID(src), Dst: platod2gl.VertexID(100 + src*10 + j),
					Weight: float64(j + 1),
				},
				Timestamp: int64(src*10 + j),
			})
		}
	}
	g.Apply(events)
	if g.NumEdges() != 200 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	nb := g.SampleNeighbors([]platod2gl.VertexID{0, 1}, 0, 5)
	if len(nb.Neighbors) != 10 {
		t.Fatalf("sampled %d", len(nb.Neighbors))
	}
	sg := g.SampleSubgraph([]platod2gl.VertexID{0}, platod2gl.MetaPath{0, 0}, []int{3, 2})
	if sg.NumNodes() != 1+3+6 {
		t.Fatalf("subgraph nodes = %d", sg.NumNodes())
	}
	rng := rand.New(rand.NewSource(1))
	nodes := g.SampleNodes(0, 7, rng)
	if len(nodes) != 7 {
		t.Fatalf("SampleNodes = %d", len(nodes))
	}
}

func TestPublicAPIAttributes(t *testing.T) {
	g := platod2gl.New()
	id := platod2gl.MakeVertexID(1, 5)
	g.SetFeatures(id, []float32{1, 2})
	g.SetLabel(id, 3)
	if f, ok := g.Features(id); !ok || f[1] != 2 {
		t.Fatalf("Features = %v,%v", f, ok)
	}
	if l, ok := g.Label(id); !ok || l != 3 {
		t.Fatalf("Label = %v,%v", l, ok)
	}
	m := g.GatherFeatures([]platod2gl.VertexID{id, platod2gl.MakeVertexID(1, 6)}, 2)
	if len(m) != 4 || m[0] != 1 || m[2] != 0 {
		t.Fatalf("GatherFeatures = %v", m)
	}
}

func TestPublicAPIDatasetGeneration(t *testing.T) {
	g := platod2gl.New()
	spec := platod2gl.OGBNSpec().Scale(1e-4)
	gen := platod2gl.NewEventGenerator(spec, platod2gl.BuildMix, 1)
	for i := 0; i < 5; i++ {
		g.Apply(gen.Next(1000))
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges loaded from generator")
	}
	if g.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestPublicAPIEndToEndTraining(t *testing.T) {
	g := platod2gl.New(platod2gl.WithSeed(5))
	const n, classes, dim = 200, 3, 8
	g.AssignSyntheticFeatures(0, n, dim, classes, 0.2, 1)
	// Homophilous edges: same-label vertices linked.
	byClass := map[int32][]platod2gl.VertexID{}
	var ids []platod2gl.VertexID
	for i := uint64(0); i < n; i++ {
		id := platod2gl.MakeVertexID(0, i)
		ids = append(ids, id)
		l, _ := g.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	rng := rand.New(rand.NewSource(2))
	for _, id := range ids {
		l, _ := g.Label(id)
		peers := byClass[l]
		for j := 0; j < 5; j++ {
			g.AddEdge(platod2gl.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
	}
	model := platod2gl.NewModel(dim, 16, classes, rng)
	tr := g.NewTrainer(model, 0, 4, 4, 0.02)
	first, err := tr.TrainEpoch(0, ids, 32, rng)
	if err != nil {
		t.Fatalf("epoch 0: %v", err)
	}
	var last float64
	for e := 1; e < 5; e++ {
		res, err := tr.TrainEpoch(e, ids, 32, rng)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		last = res.MeanLoss
	}
	if last >= first.MeanLoss {
		t.Fatalf("training loss did not decrease: %.4f -> %.4f", first.MeanLoss, last)
	}
}

func TestPublicAPIExtendedSurface(t *testing.T) {
	g := platod2gl.New(platod2gl.WithSeed(2))
	rng := rand.New(rand.NewSource(1))

	// Uniform sampling ignores weights.
	g.AddEdge(platod2gl.Edge{Src: 1, Dst: 10, Weight: 100})
	g.AddEdge(platod2gl.Edge{Src: 1, Dst: 20, Weight: 1})
	nb := g.SampleNeighborsUniform([]platod2gl.VertexID{1}, 0, 10000)
	heavy := 0
	for _, id := range nb.Neighbors {
		if id == 10 {
			heavy++
		}
	}
	if f := float64(heavy) / 10000; f < 0.45 || f > 0.55 {
		t.Fatalf("uniform sampling skewed: %.3f", f)
	}

	// Edge attributes round-trip.
	k := platod2gl.EdgeKey{Src: 1, Dst: 10}
	g.SetEdgeFeatures(k, []float32{3, 4})
	if f, ok := g.EdgeFeatures(k); !ok || f[1] != 4 {
		t.Fatalf("EdgeFeatures = %v,%v", f, ok)
	}

	// Model checkpoint through the API.
	m1 := platod2gl.NewModel(4, 8, 2, rng)
	m2 := platod2gl.NewModel(4, 8, 2, rng)
	var buf bytes.Buffer
	if err := platod2gl.SaveModelParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	if err := platod2gl.LoadModelParams(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	if m1.Params()[0].Data[0] != m2.Params()[0].Data[0] {
		t.Fatal("checkpoint round-trip diverged")
	}

	// GAT model construction + one training step on a tiny graph.
	g.AssignSyntheticFeatures(2, 60, 4, 2, 0.3, 5)
	var ids []platod2gl.VertexID
	for i := uint64(0); i < 60; i++ {
		id := platod2gl.MakeVertexID(2, i)
		ids = append(ids, id)
	}
	for _, id := range ids {
		for j := 0; j < 4; j++ {
			g.AddEdge(platod2gl.Edge{Src: id, Dst: ids[rng.Intn(len(ids))], Type: 1, Weight: 1})
		}
	}
	gat := platod2gl.NewGATModel(4, 8, 2, rng)
	gtr := g.NewGATTrainer(gat, 1, 3, 0.01)
	gb, err := gtr.SampleBatch(ids[:16])
	if err != nil {
		t.Fatalf("GAT sample: %v", err)
	}
	if loss := gtr.TrainStep(gb); loss <= 0 {
		t.Fatalf("GAT loss = %v", loss)
	}

	// Link trainer through the API.
	lm := platod2gl.NewLinkModel(4, 8, rng)
	ltr := g.NewLinkTrainer(lm, 1, 3, 0.01, ids, 9)
	pos := []platod2gl.Edge{{Src: ids[0], Dst: ids[1]}, {Src: ids[2], Dst: ids[3]}}
	if loss, err := ltr.TrainStep(pos); err != nil || loss <= 0 {
		t.Fatalf("link loss = %v err = %v", loss, err)
	}
	if scores, err := ltr.Score(pos); err != nil || len(scores) != 2 {
		t.Fatalf("scores = %v err = %v", scores, err)
	}

	// Random walk through the API (already covered in integration, but the
	// GAT graph gives a multi-edge surface).
	walks := g.RandomWalk(ids[:3], 1, 2)
	if len(walks) != 3 || len(walks[0]) != 3 {
		t.Fatalf("walks shape %dx%d", len(walks), len(walks[0]))
	}
}

func TestPublicAPIRangeQueries(t *testing.T) {
	g := platod2gl.New()
	// Heterogeneous neighbors: type-0 and type-1 destinations.
	for i := uint64(0); i < 10; i++ {
		g.AddEdge(platod2gl.Edge{Src: 5, Dst: platod2gl.MakeVertexID(0, i), Weight: 1})
	}
	for i := uint64(0); i < 4; i++ {
		g.AddEdge(platod2gl.Edge{Src: 5, Dst: platod2gl.MakeVertexID(1, i), Weight: 2})
	}
	t0, w0 := g.NeighborsOfType(5, 0, 0)
	t1, w1 := g.NeighborsOfType(5, 0, 1)
	if len(t0) != 10 || len(t1) != 4 {
		t.Fatalf("type bands: %d/%d, want 10/4", len(t0), len(t1))
	}
	for _, id := range t1 {
		if id.Type() != 1 {
			t.Fatalf("type-1 band returned %v", id)
		}
	}
	if w0[0] != 1 || w1[0] != 2 {
		t.Fatalf("weights: %v %v", w0[0], w1[0])
	}
	ids, _ := g.NeighborsInRange(5, 0, platod2gl.MakeVertexID(0, 3), platod2gl.MakeVertexID(0, 6))
	if len(ids) != 4 {
		t.Fatalf("sub-range = %d ids, want 4", len(ids))
	}
	if ids, _ := g.NeighborsInRange(99, 0, 0, 10); ids != nil {
		t.Fatal("unknown source returned neighbors")
	}
}
