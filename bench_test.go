// Benchmarks mapping one-to-one onto the PlatoD2GL paper's tables and
// figures (see DESIGN.md's per-experiment index). Each family reproduces
// the measured quantity of its artifact at laptop scale; the full
// paper-style sweep with formatted tables is cmd/platod2gl-bench.
//
//	go test -bench=. -benchmem
package platod2gl_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"platod2gl"
	"platod2gl/internal/bench"
	"platod2gl/internal/core"
	"platod2gl/internal/cstable"
	"platod2gl/internal/dataset"
	"platod2gl/internal/fenwick"
	"platod2gl/internal/graph"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
)

// ---------------------------------------------------------------- Table II

// BenchmarkTable2 measures per-op cost of the ITS CSTable vs the FTS
// FSTable (update / delete / sample) across leaf sizes — Table II's
// complexity claims, empirically.
func BenchmarkTable2(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 12} {
		weights := make([]float64, n)
		rng := rand.New(rand.NewSource(1))
		for i := range weights {
			weights[i] = rng.Float64() + 0.1
		}
		b.Run(fmt.Sprintf("ITSUpdate/n=%d", n), func(b *testing.B) {
			t := cstable.New(weights)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Update(i%n, 1.5)
			}
		})
		b.Run(fmt.Sprintf("FTSUpdate/n=%d", n), func(b *testing.B) {
			t := fenwick.New(weights)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Update(i%n, 1.5)
			}
		})
		b.Run(fmt.Sprintf("ITSDelete/n=%d", n), func(b *testing.B) {
			t := cstable.New(weights)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Delete(i % (n - 1))
				t.Append(1)
			}
		})
		b.Run(fmt.Sprintf("FTSDelete/n=%d", n), func(b *testing.B) {
			t := fenwick.New(weights)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Delete(i % (n - 1))
				t.Append(1)
			}
		})
		b.Run(fmt.Sprintf("ITSSample/n=%d", n), func(b *testing.B) {
			t := cstable.New(weights)
			total := t.Total()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Sample(float64(i%997) / 997 * total)
			}
		})
		b.Run(fmt.Sprintf("FTSSample/n=%d", n), func(b *testing.B) {
			t := fenwick.New(weights)
			total := t.Total()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Sample(float64(i%997) / 997 * total)
			}
		})
	}
}

// ----------------------------------------------------------- shared fixture

const (
	fixtureEdges = 30_000
	fixtureBatch = 4096
)

var (
	fixtureOnce   sync.Once
	fixtureSpec   *dataset.Spec
	fixtureStores map[bench.SystemName]storage.TopologyStore
	fixtureSeeds  []graph.VertexID
)

// fixture builds the WeChat-sim graph once per process for every system.
func fixture(b *testing.B) {
	b.Helper()
	fixtureOnce.Do(func() {
		fixtureSpec = bench.WeChatScaled(fixtureEdges)
		fixtureStores = map[bench.SystemName]storage.TopologyStore{}
		for _, sys := range bench.AllSystems {
			st := bench.NewStore(sys, 4)
			bench.Load(st, fixtureSpec, dataset.BuildMix, fixtureEdges, fixtureBatch, 1)
			fixtureStores[sys] = st
		}
		fixtureSeeds = fixtureStores[bench.SysD2GL].Sources(0)
	})
	if len(fixtureSeeds) == 0 {
		b.Fatal("fixture has no sources")
	}
}

// ------------------------------------------------------------------ Fig. 8

// BenchmarkFig8_Build measures full graph-building time per system on the
// WeChat-sim stream (Fig. 8; one iteration = one complete build).
func BenchmarkFig8_Build(b *testing.B) {
	spec := bench.WeChatScaled(15_000)
	for _, sys := range bench.AllSystems {
		b.Run(string(sys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := bench.NewStore(sys, 4)
				bench.Load(st, spec, dataset.BuildMix, 15_000, fixtureBatch, 1)
			}
			b.ReportMetric(float64(15_000*2)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// ------------------------------------------------------------------ Fig. 9

// BenchmarkFig9_Update measures dynamic-update batch latency per system and
// batch size on the pre-built WeChat-sim graph (Fig. 9).
func BenchmarkFig9_Update(b *testing.B) {
	fixture(b)
	for _, sys := range []bench.SystemName{bench.SysPlatoGL, bench.SysD2GL} {
		for _, batch := range []int{1 << 10, 1 << 14} {
			b.Run(fmt.Sprintf("%s/batch=%d", sys, batch), func(b *testing.B) {
				batches := bench.PrepareBatches(fixtureSpec, dataset.DynamicMix, 8, batch, 99)
				st := fixtureStores[sys]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st.ApplyBatch(batches[i%len(batches)])
				}
			})
		}
	}
}

// --------------------------------------------------------------- Table IV

// BenchmarkTable4_MemBuild builds each system once per iteration and
// reports structural bytes per stored edge (Table IV).
func BenchmarkTable4_MemBuild(b *testing.B) {
	spec := bench.WeChatScaled(15_000)
	for _, sys := range bench.AllSystems {
		b.Run(string(sys), func(b *testing.B) {
			var bytesPerEdge float64
			for i := 0; i < b.N; i++ {
				st := bench.NewStore(sys, 4)
				bench.Load(st, spec, dataset.BuildMix, 15_000, fixtureBatch, 1)
				bytesPerEdge = float64(st.MemoryBytes()) / float64(st.NumEdges())
			}
			b.ReportMetric(bytesPerEdge, "B/edge")
		})
	}
}

// ---------------------------------------------------------------- Table V

// BenchmarkTable5_OpMix builds the WeChat-sim graph at several samtree
// capacities, reporting the leaf-update share (Table V).
func BenchmarkTable5_OpMix(b *testing.B) {
	spec := bench.WeChatScaled(15_000)
	for _, capacity := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("capacity=%d", capacity), func(b *testing.B) {
			var share float64
			for i := 0; i < b.N; i++ {
				counters := &core.Counters{}
				st := storage.NewDynamicStore(storage.Options{
					Tree:    core.Options{Capacity: capacity, Compress: true, Counters: counters},
					Workers: 4,
				})
				bench.Load(st, spec, dataset.BuildMix, 15_000, fixtureBatch, 1)
				share = counters.LeafShare()
			}
			b.ReportMetric(share*100, "leaf%")
		})
	}
}

// ----------------------------------------------------------------- Fig. 10

// BenchmarkFig10_Neighbor measures batched neighbor sampling (50 per seed)
// per system (Fig. 10 a-c).
func BenchmarkFig10_Neighbor(b *testing.B) {
	fixture(b)
	seeds := make([]graph.VertexID, 1024)
	for i := range seeds {
		seeds[i] = fixtureSeeds[i%len(fixtureSeeds)]
	}
	for _, sys := range bench.AllSystems {
		b.Run(string(sys), func(b *testing.B) {
			smp := sampler.New(fixtureStores[sys], sampler.Options{Parallelism: 4, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smp.SampleNeighbors(seeds, 0, 50)
			}
		})
	}
}

// BenchmarkFig10_Subgraph measures 2-hop meta-path subgraph sampling
// (fanouts 25, 10) per system (Fig. 10 d-f).
func BenchmarkFig10_Subgraph(b *testing.B) {
	fixture(b)
	seeds := make([]graph.VertexID, 256)
	for i := range seeds {
		seeds[i] = fixtureSeeds[i%len(fixtureSeeds)]
	}
	path := graph.MetaPath{0, dataset.ReverseOffset}
	for _, sys := range bench.AllSystems {
		b.Run(string(sys), func(b *testing.B) {
			smp := sampler.New(fixtureStores[sys], sampler.Options{Parallelism: 4, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smp.SampleSubgraph(seeds, path, []int{25, 10})
			}
		})
	}
}

// ----------------------------------------------------------------- Fig. 11

// BenchmarkFig11a_BatchSize sweeps the dynamic-update batch size on
// PlatoD2GL (Fig. 11a).
func BenchmarkFig11a_BatchSize(b *testing.B) {
	fixture(b)
	for _, batch := range []int{1 << 8, 1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			batches := bench.PrepareBatches(fixtureSpec, dataset.DynamicMix, 4, batch, 7)
			st := fixtureStores[bench.SysD2GL]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.ApplyBatch(batches[i%len(batches)])
			}
		})
	}
}

// BenchmarkFig11b_Capacity sweeps the samtree node capacity (Fig. 11b; one
// iteration = one full build).
func BenchmarkFig11b_Capacity(b *testing.B) {
	spec := bench.WeChatScaled(15_000)
	for _, capacity := range []int{1 << 6, 1 << 8, 1 << 10} {
		b.Run(fmt.Sprintf("capacity=%d", capacity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := storage.NewDynamicStore(storage.Options{
					Tree:    core.Options{Capacity: capacity, Compress: true},
					Workers: 4,
				})
				bench.Load(st, spec, dataset.DynamicMix, 15_000, fixtureBatch, 1)
			}
		})
	}
}

// BenchmarkFig11c_Threads sweeps the batch-update worker count (Fig. 11c).
func BenchmarkFig11c_Threads(b *testing.B) {
	spec := bench.WeChatScaled(fixtureEdges)
	for _, threads := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			st := storage.NewDynamicStore(storage.Options{
				Tree:    core.Options{Compress: true},
				Workers: threads,
			})
			bench.Load(st, spec, dataset.BuildMix, fixtureEdges, fixtureBatch, 1)
			batches := bench.PrepareBatches(spec, dataset.DynamicMix, 4, 1<<13, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.ApplyBatch(batches[i%len(batches)])
			}
		})
	}
}

// BenchmarkFig11d_Alpha sweeps the α-Split slackness (Fig. 11d; one
// iteration = one full build).
func BenchmarkFig11d_Alpha(b *testing.B) {
	spec := bench.WeChatScaled(15_000)
	for _, alpha := range []int{0, 8, 128} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := storage.NewDynamicStore(storage.Options{
					Tree:    core.Options{Alpha: alpha, Compress: true},
					Workers: 4,
				})
				bench.Load(st, spec, dataset.BuildMix, 15_000, fixtureBatch, 1)
			}
		})
	}
}

// ------------------------------------------------------------- GNN (Fig. 1)

// BenchmarkGNN_Epoch measures one epoch of 2-layer GraphSAGE training over
// dynamically sampled neighborhoods (the Fig. 1 workload).
func BenchmarkGNN_Epoch(b *testing.B) {
	const n, classes, dim = 1000, 4, 16
	g := platod2gl.New(platod2gl.WithSeed(1))
	g.AssignSyntheticFeatures(0, n, dim, classes, 0.5, 1)
	rng := rand.New(rand.NewSource(2))
	ids := make([]platod2gl.VertexID, n)
	byClass := make([][]platod2gl.VertexID, classes)
	for i := range ids {
		ids[i] = platod2gl.MakeVertexID(0, uint64(i))
		l, _ := g.Label(ids[i])
		byClass[l] = append(byClass[l], ids[i])
	}
	for _, id := range ids {
		l, _ := g.Label(id)
		peers := byClass[l]
		for j := 0; j < 6; j++ {
			g.AddEdge(platod2gl.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
	}
	model := platod2gl.NewModel(dim, 32, classes, rng)
	tr := g.NewTrainer(model, 0, 8, 4, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainEpoch(i, ids, 64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------- extension benchmarks

// BenchmarkUniformSample measures the count-guided uniform descent.
func BenchmarkUniformSample(b *testing.B) {
	fixture(b)
	st := fixtureStores[bench.SysD2GL]
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.SampleNeighborsUniform(fixtureSeeds[i%len(fixtureSeeds)], 0, 10, rng, nil)
	}
}

// BenchmarkRandomWalk measures weighted random walks over the fixture.
func BenchmarkRandomWalk(b *testing.B) {
	fixture(b)
	smp := sampler.New(fixtureStores[bench.SysD2GL], sampler.Options{Parallelism: 2, Seed: 1})
	seeds := make([]graph.VertexID, 256)
	for i := range seeds {
		seeds[i] = fixtureSeeds[i%len(fixtureSeeds)]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.RandomWalk(seeds, 0, 5)
	}
}

// BenchmarkLinkTrainStep measures one link-prediction training step.
func BenchmarkLinkTrainStep(b *testing.B) {
	g := platod2gl.New(platod2gl.WithSeed(1))
	rng := rand.New(rand.NewSource(2))
	const n, dim = 500, 8
	g.AssignSyntheticFeatures(0, n, dim, 2, 0.3, 1)
	ids := make([]platod2gl.VertexID, n)
	var edges []platod2gl.Edge
	for i := range ids {
		ids[i] = platod2gl.MakeVertexID(0, uint64(i))
	}
	for _, id := range ids {
		for j := 0; j < 5; j++ {
			e := platod2gl.Edge{Src: id, Dst: ids[rng.Intn(n)], Weight: 1}
			g.AddEdge(e)
			edges = append(edges, e)
		}
	}
	tr := g.NewLinkTrainer(platod2gl.NewLinkModel(dim, 16, rng), 0, 5, 0.01, ids, 3)
	batch := edges[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainStep(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGATTrainStep measures one attention-GNN training step.
func BenchmarkGATTrainStep(b *testing.B) {
	g := platod2gl.New(platod2gl.WithSeed(1))
	rng := rand.New(rand.NewSource(2))
	const n, dim = 500, 8
	g.AssignSyntheticFeatures(0, n, dim, 4, 0.3, 1)
	ids := make([]platod2gl.VertexID, n)
	for i := range ids {
		ids[i] = platod2gl.MakeVertexID(0, uint64(i))
	}
	for _, id := range ids {
		for j := 0; j < 5; j++ {
			g.AddEdge(platod2gl.Edge{Src: id, Dst: ids[rng.Intn(n)], Weight: 1})
		}
	}
	tr := g.NewGATTrainer(platod2gl.NewGATModel(dim, 16, 4, rng), 0, 5, 0.01)
	batch, err := tr.SampleBatch(ids[:64])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainStep(batch)
	}
}
