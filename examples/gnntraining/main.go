// GNN training: the end-to-end workload of Fig. 1 — a two-layer GraphSAGE
// node classifier trained on neighborhoods sampled live from the dynamic
// store. Between epochs the graph keeps evolving (new edges arrive), and
// the trainer's next mini-batches reflect the updates immediately: this is
// exactly the dynamic-GNN setting (Sec. II-A) PlatoD2GL exists to serve.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"platod2gl"
)

func main() {
	const (
		numNodes = 3000
		classes  = 4
		dim      = 16
		hidden   = 32
	)
	g := platod2gl.New(platod2gl.WithSeed(11))
	g.AssignSyntheticFeatures(0, numNodes, dim, classes, 2.5, 1)

	// Homophilous topology: vertices link to same-class peers, so neighbor
	// aggregation is informative and a GNN beats a feature-only model.
	rng := rand.New(rand.NewSource(2))
	byClass := make([][]platod2gl.VertexID, classes)
	ids := make([]platod2gl.VertexID, numNodes)
	for i := range ids {
		id := platod2gl.MakeVertexID(0, uint64(i))
		ids[i] = id
		l, _ := g.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	for _, id := range ids {
		l, _ := g.Label(id)
		peers := byClass[l]
		for j := 0; j < 8; j++ {
			// 25% noise edges to random vertices keep the task non-trivial.
			dst := peers[rng.Intn(len(peers))]
			if rng.Intn(4) == 0 {
				dst = ids[rng.Intn(numNodes)]
			}
			g.AddEdge(platod2gl.Edge{Src: id, Dst: dst, Weight: 1})
		}
	}
	fmt.Printf("graph: %d nodes, %d edges, %d classes\n", numNodes, g.NumEdges(), classes)

	model := platod2gl.NewModel(dim, hidden, classes, rng)
	tr := g.NewTrainer(model, 0, 10, 5, 0.02)
	train, test := ids[:2400], ids[2400:]

	fmt.Println("epoch  loss    test-acc  edges")
	for e := 0; e < 8; e++ {
		res, err := tr.TrainEpoch(e, train, 64, rng)
		if err != nil {
			log.Fatalf("epoch %d: %v", e, err)
		}
		// The graph keeps evolving while training: 500 new same-class
		// interactions arrive between epochs. No rebuild — the samtrees
		// absorb them and the next epoch samples the fresh topology.
		var events []platod2gl.Event
		for k := 0; k < 500; k++ {
			id := ids[rng.Intn(numNodes)]
			l, _ := g.Label(id)
			peers := byClass[l]
			events = append(events, platod2gl.Event{
				Kind: platod2gl.AddEdge,
				Edge: platod2gl.Edge{
					Src: id, Dst: peers[rng.Intn(len(peers))],
					Weight: 0.5 + rng.Float64(),
				},
				Timestamp: int64(e*1000 + k),
			})
		}
		g.Apply(events)
		acc, err := tr.Accuracy(test)
		if err != nil {
			log.Fatalf("accuracy: %v", err)
		}
		fmt.Printf("%5d  %.4f  %.3f     %d\n", e, res.MeanLoss, acc, g.NumEdges())
	}
	acc, err := tr.Accuracy(test)
	if err != nil {
		log.Fatalf("accuracy: %v", err)
	}
	fmt.Printf("final test accuracy: %.3f (random baseline: %.2f)\n", acc, 1.0/classes)
}
