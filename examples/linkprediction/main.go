// Link prediction: the recommendation training objective behind the paper's
// WeChat deployment. A user-live interaction graph is trained with a
// GraphSAGE encoder and negative sampling so that observed interactions
// outscore random pairs; as new interactions stream in, the trainer keeps
// learning on the *live* topology and the ranking quality (AUC) is
// re-evaluated after each wave of updates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"platod2gl"
)

// mustAUC evaluates ranking quality, exiting on a storage error.
func mustAUC(tr *platod2gl.LinkTrainer, pos, neg []platod2gl.Edge) float64 {
	auc, err := tr.AUC(pos, neg)
	if err != nil {
		log.Fatalf("AUC: %v", err)
	}
	return auc
}

const (
	vtUser platod2gl.VertexType = 0
	vtLive platod2gl.VertexType = 1
)

func user(i uint64) platod2gl.VertexID { return platod2gl.MakeVertexID(vtUser, i) }
func live(i uint64) platod2gl.VertexID { return platod2gl.MakeVertexID(vtLive, i) }

func main() {
	const (
		users, lives = 400, 200
		dim          = 8
		communities  = 2
	)
	g := platod2gl.New(platod2gl.WithSeed(3))
	// Two taste communities; features carry a noisy community signal.
	g.AssignSyntheticFeatures(vtUser, users, dim, communities, 0.4, 1)
	g.AssignSyntheticFeatures(vtLive, lives, dim, communities, 0.4, 2)

	rng := rand.New(rand.NewSource(4))
	livesOf := [communities][]platod2gl.VertexID{}
	pool := make([]platod2gl.VertexID, 0, lives)
	for i := uint64(0); i < lives; i++ {
		id := live(i)
		l, _ := g.Label(id)
		livesOf[l] = append(livesOf[l], id)
		pool = append(pool, id)
	}

	interact := func(u platod2gl.VertexID, n int) []platod2gl.Edge {
		l, _ := g.Label(u)
		own := livesOf[l]
		out := make([]platod2gl.Edge, 0, n)
		for j := 0; j < n; j++ {
			e := platod2gl.Edge{Src: u, Dst: own[rng.Intn(len(own))], Weight: 1}
			g.AddEdge(e)
			g.AddEdge(platod2gl.Edge{Src: e.Dst, Dst: u, Weight: 1}) // reverse
			out = append(out, e)
		}
		return out
	}

	var edges []platod2gl.Edge
	for u := uint64(0); u < users; u++ {
		edges = append(edges, interact(user(u), 5)...)
	}
	fmt.Printf("graph: %d users, %d live rooms, %d edges\n", users, lives, g.NumEdges())

	model := platod2gl.NewLinkModel(dim, 16, rng)
	tr := g.NewLinkTrainer(model, 0, 5, 0.05, pool, 7)

	// Held-out evaluation: positives vs guaranteed non-edges (other
	// community's rooms).
	testPos := edges[:60]
	var testNeg []platod2gl.Edge
	for _, e := range testPos {
		l, _ := g.Label(e.Src)
		other := livesOf[1-l]
		testNeg = append(testNeg, platod2gl.Edge{Src: e.Src, Dst: other[rng.Intn(len(other))]})
	}

	fmt.Printf("AUC before training: %.3f\n", mustAUC(tr, testPos, testNeg))
	for wave := 0; wave < 3; wave++ {
		// Train on the current edge set.
		for step := 0; step < 40; step++ {
			batch := make([]platod2gl.Edge, 64)
			for i := range batch {
				batch[i] = edges[rng.Intn(len(edges))]
			}
			if _, err := tr.TrainStep(batch); err != nil {
				log.Fatalf("train step: %v", err)
			}
		}
		// New interactions arrive — the next training wave and the next
		// evaluation sample the updated topology directly.
		for k := 0; k < 200; k++ {
			edges = append(edges, interact(user(uint64(rng.Intn(users))), 1)...)
		}
		fmt.Printf("after wave %d: AUC %.3f, edges %d\n", wave, mustAUC(tr, testPos, testNeg), g.NumEdges())
	}

	// Serving: top-5 live rooms for one user from the trained embeddings.
	u := user(1)
	ul, _ := g.Label(u)
	recs, err := tr.Recommend(u, pool, 5)
	if err != nil {
		log.Fatalf("recommend: %v", err)
	}
	own := 0
	for _, r := range recs {
		if l, _ := g.Label(r.ID); l == ul {
			own++
		}
	}
	fmt.Printf("top-5 recommendations for user 1: %d/5 in their community\n", own)
}
