// Fraud detection: one of the GNN application domains the paper's
// introduction cites. A heterogeneous User-Device-Merchant graph receives a
// live transaction stream; users are risk-scored by how often meta-path
// random walks (User -> Device -> co-located User) land on known
// fraudsters. Because the store is dynamic, a fraud ring wiring itself up
// through a shared device raises scores within the same event batch.
package main

import (
	"fmt"

	"platod2gl"
)

const (
	vtUser   platod2gl.VertexType = 0
	vtDevice platod2gl.VertexType = 1

	relUsesDevice platod2gl.EdgeType = 0 // user -> device
	relDeviceUser platod2gl.EdgeType = 1 // device -> user (reverse)
)

func user(i uint64) platod2gl.VertexID   { return platod2gl.MakeVertexID(vtUser, i) }
func device(i uint64) platod2gl.VertexID { return platod2gl.MakeVertexID(vtDevice, i) }

// link records a user-device association in both directions.
func link(g *platod2gl.Graph, u, d platod2gl.VertexID, w float64) {
	g.AddEdge(platod2gl.Edge{Src: u, Dst: d, Type: relUsesDevice, Weight: w})
	g.AddEdge(platod2gl.Edge{Src: d, Dst: u, Type: relDeviceUser, Weight: w})
}

// riskScore estimates the probability that a 2-hop device-sharing walk from
// u reaches a known fraudster.
func riskScore(g *platod2gl.Graph, u platod2gl.VertexID, fraudsters map[platod2gl.VertexID]bool) float64 {
	const walks = 2000
	sg := g.SampleSubgraph([]platod2gl.VertexID{u},
		platod2gl.MetaPath{relUsesDevice, relDeviceUser}, []int{walks, 1})
	hits := 0
	for _, id := range sg.Layers[1].Nodes {
		if fraudsters[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(sg.Layers[1].Nodes))
}

func main() {
	g := platod2gl.New(platod2gl.WithSeed(7))

	// Normal population: users 0-99 each use their own device.
	for i := uint64(0); i < 100; i++ {
		link(g, user(i), device(i), 1)
	}
	// Known fraudsters 200-202 share device 500.
	fraudsters := map[platod2gl.VertexID]bool{}
	for i := uint64(200); i <= 202; i++ {
		link(g, user(i), device(500), 1)
		fraudsters[user(i)] = true
	}

	fmt.Println("baseline risk scores (2-hop device-sharing walks):")
	for _, u := range []uint64{5, 42, 200} {
		fmt.Printf("  user %3d: %.3f\n", u, riskScore(g, user(u), fraudsters))
	}

	// A live event batch arrives: user 42 starts transacting from the
	// fraud ring's shared device.
	g.Apply([]platod2gl.Event{
		{Kind: platod2gl.AddEdge, Edge: platod2gl.Edge{
			Src: user(42), Dst: device(500), Type: relUsesDevice, Weight: 5}, Timestamp: 1},
		{Kind: platod2gl.AddEdge, Edge: platod2gl.Edge{
			Src: device(500), Dst: user(42), Type: relDeviceUser, Weight: 5}, Timestamp: 2},
	})

	fmt.Println("after user 42 uses the fraud ring's device 500:")
	clean := riskScore(g, user(5), fraudsters)
	suspect := riskScore(g, user(42), fraudsters)
	fmt.Printf("  user   5: %.3f (still clean)\n", clean)
	fmt.Printf("  user  42: %.3f (flagged)\n", suspect)
	if suspect > 10*clean+0.05 {
		fmt.Println("  -> user 42 crossed the risk threshold within one event batch")
	}
}
