// Quickstart: the smallest useful PlatoD2GL program. Builds a tiny weighted
// graph (Figure 3 of the paper), exercises dynamic updates, and draws
// weighted neighbor samples — the operation every GNN mini-batch is built
// from.
package main

import (
	"fmt"

	"platod2gl"
)

func main() {
	g := platod2gl.New()

	// The graph of the paper's Example 1: v1 -> {v2:0.1, v3:0.4, v5:0.2},
	// v3 -> {v4:0.6, v7:0.7}.
	edges := []platod2gl.Edge{
		{Src: 1, Dst: 2, Weight: 0.1},
		{Src: 1, Dst: 3, Weight: 0.4},
		{Src: 1, Dst: 5, Weight: 0.2},
		{Src: 3, Dst: 4, Weight: 0.6},
		{Src: 3, Dst: 7, Weight: 0.7},
	}
	for _, e := range edges {
		g.AddEdge(e)
	}
	fmt.Printf("graph built: %d edges, %d B structural memory\n", g.NumEdges(), g.MemoryBytes())

	// Weighted neighbor sampling: v3 should dominate v1's samples (weight
	// 0.4 of 0.7 total).
	nb := g.SampleNeighbors([]platod2gl.VertexID{1}, 0, 10000)
	counts := map[platod2gl.VertexID]int{}
	for _, id := range nb.Neighbors {
		counts[id]++
	}
	fmt.Printf("10000 weighted samples of v1's neighbors: %v\n", counts)

	// Dynamic updates are immediate: delete v3, boost v5.
	g.DeleteEdge(1, 3, 0)
	g.UpdateEdgeWeight(1, 5, 0, 5.0)
	nb = g.SampleNeighbors([]platod2gl.VertexID{1}, 0, 10000)
	counts = map[platod2gl.VertexID]int{}
	for _, id := range nb.Neighbors {
		counts[id]++
	}
	fmt.Printf("after delete(1->3) and boost(1->5): %v\n", counts)

	// Two-hop subgraph sampling (the input of a 2-layer GNN).
	sg := g.SampleSubgraph([]platod2gl.VertexID{1}, platod2gl.MetaPath{0, 0}, []int{3, 2})
	fmt.Printf("2-hop subgraph of v1: hop1=%v hop2=%v\n", sg.Layers[0].Nodes, sg.Layers[1].Nodes)

	// Batch updates go through the PALM-style latch-free executor.
	var events []platod2gl.Event
	for i := uint64(10); i < 1010; i++ {
		events = append(events, platod2gl.Event{
			Kind:      platod2gl.AddEdge,
			Edge:      platod2gl.Edge{Src: 1, Dst: platod2gl.VertexID(i), Weight: 1},
			Timestamp: int64(i),
		})
	}
	g.Apply(events)
	fmt.Printf("after batch insert: degree(v1)=%d, leaf-update share=%.4f\n",
		g.Degree(1, 0), g.LeafUpdateShare())
}
