GO ?= go
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: build test vet lint race chaos chaos-smoke migration-chaos migration-chaos-smoke integrity-chaos integrity-chaos-smoke overload-chaos overload-chaos-smoke tier1 bench bench-json bench-regress bench-codec fuzz-smoke train-smoke train-chaos serve-smoke serve-chaos serve-chaos-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then echo "gofmt needed:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...

# Race leg of the tier-1 loop: the concurrent retry/redial/breaker paths in
# the cluster client, the storage engine the chaos tests hammer, the WAL the
# replica catch-up tails, the fault-injection transport, the
# trainer/prefetch-pipeline concurrency, the checkpoint store, the metrics
# registry every hot path writes into, and the serving tier's engine pool +
# HNSW index (concurrent insert/search/delete).
race: vet
	$(GO) test -race ./internal/cluster/... ./internal/storage/... ./internal/eventlog/... ./internal/faultinject/... ./internal/gnn/... ./internal/pipeline/... ./internal/view/... ./internal/checkpoint/... ./internal/obs/... ./internal/serve/... ./internal/ann/...

# Replication chaos drill: replica kill + failover + WAL-shipped rejoin,
# twice, under the race detector.
chaos: build
	$(GO) test -race -count=2 -run 'TestChaosReplicaFailoverAndCatchUp' ./internal/cluster/

# One fast chaos pass for PR CI; the full drills run nightly.
chaos-smoke: build
	$(GO) test -race -count=1 -run 'TestChaosReplicaFailoverAndCatchUp' ./internal/cluster/

# Elasticity chaos drill: live grow-and-rebalance under write load plus the
# three seeded migration-failure drills (source killed mid-copy, destination
# killed mid-WAL-replay, abort just before cutover), twice, under race.
migration-chaos: build
	$(GO) test -race -count=2 -run 'TestChaosElasticGrow|TestChaosMigration' ./internal/cluster/

# One fast elasticity pass for PR CI: the grow drill plus the last-moment
# abort (the two cutover-adjacent paths).
migration-chaos-smoke: build
	$(GO) test -race -count=1 -run 'TestChaosElasticGrow|TestChaosMigrationAbortBeforeCutover' ./internal/cluster/

# Anti-entropy chaos drill: asymmetric partition under write load healed
# into a scrubber-detected divergence + auto-repair, plus bit-flips in a WAL
# frame and a snapshot detected by CRC and repaired from the peer — twice,
# under race.
integrity-chaos: build
	$(GO) test -race -count=2 -run 'TestChaosPartitionScrubRepair|TestChaosScrubRepairsDiskCorruption' ./internal/cluster/

# One fast anti-entropy pass for PR CI: the partition-divergence drill (the
# path that exercises digest comparison, classification, and repair).
integrity-chaos-smoke: build
	$(GO) test -race -count=1 -run 'TestChaosPartitionScrubRepair' ./internal/cluster/

# Overload chaos drill: open-loop load past admission capacity with a live
# shard migration racing through it, asserting bounded interactive p99,
# priority-ordered shedding, an intact breaker, and no goroutine leak after
# a saturation storm — twice, under race.
overload-chaos: build
	$(GO) test -race -count=2 -run 'TestChaosOverloadBrownout|TestOverloadGoroutineLeakRegression' ./internal/cluster/

# One fast overload pass for PR CI: the brownout drill (admission gate,
# deadline propagation, shed/retry cooperation, and migration under load).
overload-chaos-smoke: build
	$(GO) test -race -count=1 -run 'TestChaosOverloadBrownout' ./internal/cluster/

tier1: test race

# Short fuzz pass over the wire protocol for PR CI: frame/handshake parsing,
# the bounds-checked reader, and every RPC payload decoder. go test allows
# one -fuzz pattern per invocation, hence three runs. Corpus findings land
# in testdata/fuzz/ — commit them as regression seeds.
FUZZTIME ?= 15s
fuzz-smoke: build
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzFrame -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME) ./internal/cluster/

bench:
	$(GO) test -bench=. -benchmem ./...

# Codec micro-benchmarks: gob vs wire encode/decode with B/op + allocs/op.
# The same comparison feeds BENCH_<rev>.json via the perf experiment's
# codec_* metrics; this target is the interactive form.
bench-codec: build
	$(GO) test -run '^$$' -bench 'BenchmarkCodec' -benchmem ./internal/cluster/

# Machine-readable perf benchmark at pinned size and seed: writes
# BENCH_<rev>.json for the CI regression gate (and for keeping
# bench/baseline.json fresh — copy the output over it to rebaseline).
bench-json: build
	$(GO) run ./cmd/platod2gl-bench -experiment perf -edges 100000 -seed 1 -json BENCH_$(REV).json -rev $(REV)

# Gate BENCH_<rev>.json against the committed baseline (>25% = fail).
bench-regress: bench-json
	$(GO) run ./cmd/bench-regress -baseline bench/baseline.json -current BENCH_$(REV).json

# End-to-end training smoke: one small pipelined run against the in-process
# store and one against a 2-shard in-process cluster.
train-smoke: build
	$(GO) run ./cmd/platod2gl-train -local -nodes 400 -epochs 2 -batch 32 -workers 2
	$(GO) run ./cmd/platod2gl-train -shards 2 -nodes 400 -epochs 2 -batch 32 -workers 4 -depth 8

# Training chaos drill: kill a shard mid-epoch, ride it out through view
# retries + sampling degradation, SIGTERM-checkpoint, and resume — under the
# race detector.
train-chaos: build
	$(GO) test -race -count=1 -run 'TestTrainChaosKillShardAndResume|TestGracefulSigterm' ./cmd/platod2gl-train/

# End-to-end serving smoke: train a tiny checkpoint, boot platod2gl-serve
# against a 2-shard live-TCP cluster (and once in -local mode), query
# /embed + /knn against the true graph, and stop cleanly with no leaked
# goroutines — under the race detector.
serve-smoke: build
	$(GO) test -race -count=1 -run 'TestServeSmokeCluster|TestServeLocalMode' ./cmd/platod2gl-serve/

# Serving-under-churn drill: edge updates stream into the live cluster at a
# fixed qps while a closed-loop /knn driver hammers the API. Asserts no 5xx
# under load, bounded serve_refresh_lag_seconds, and post-churn recall
# recovery. Full variant (longer churn, more load) for nightly; one short
# pass for PR CI.
serve-chaos: build
	SERVE_CHURN_FULL=1 $(GO) test -race -count=2 -run 'TestServingUnderChurn' ./cmd/platod2gl-serve/

serve-chaos-smoke: build
	$(GO) test -race -count=1 -run 'TestServingUnderChurn' ./cmd/platod2gl-serve/
