GO ?= go

.PHONY: build test vet race chaos tier1 bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race leg of the tier-1 loop: the concurrent retry/redial/breaker paths in
# the cluster client, the storage engine the chaos tests hammer, the WAL the
# replica catch-up tails, and the fault-injection transport.
race: vet
	$(GO) test -race ./internal/cluster/... ./internal/storage/... ./internal/eventlog/... ./internal/faultinject/...

# Replication chaos drill: replica kill + failover + WAL-shipped rejoin,
# twice, under the race detector.
chaos: build
	$(GO) test -race -count=2 -run 'TestChaosReplicaFailoverAndCatchUp' ./internal/cluster/

tier1: test race

bench:
	$(GO) test -bench=. -benchmem ./...
