GO ?= go

.PHONY: build test vet race tier1 bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race leg of the tier-1 loop: the concurrent retry/redial/breaker paths in
# the cluster client and the storage engine the chaos tests hammer.
race: vet
	$(GO) test -race ./internal/cluster/... ./internal/storage/...

tier1: test race

bench:
	$(GO) test -bench=. -benchmem ./...
