GO ?= go

.PHONY: build test vet race chaos tier1 bench train-smoke train-chaos

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race leg of the tier-1 loop: the concurrent retry/redial/breaker paths in
# the cluster client, the storage engine the chaos tests hammer, the WAL the
# replica catch-up tails, the fault-injection transport, the
# trainer/prefetch-pipeline concurrency, and the checkpoint store.
race: vet
	$(GO) test -race ./internal/cluster/... ./internal/storage/... ./internal/eventlog/... ./internal/faultinject/... ./internal/gnn/... ./internal/pipeline/... ./internal/view/... ./internal/checkpoint/...

# Replication chaos drill: replica kill + failover + WAL-shipped rejoin,
# twice, under the race detector.
chaos: build
	$(GO) test -race -count=2 -run 'TestChaosReplicaFailoverAndCatchUp' ./internal/cluster/

tier1: test race

bench:
	$(GO) test -bench=. -benchmem ./...

# End-to-end training smoke: one small pipelined run against the in-process
# store and one against a 2-shard in-process cluster.
train-smoke: build
	$(GO) run ./cmd/platod2gl-train -local -nodes 400 -epochs 2 -batch 32 -workers 2
	$(GO) run ./cmd/platod2gl-train -shards 2 -nodes 400 -epochs 2 -batch 32 -workers 4 -depth 8

# Training chaos drill: kill a shard mid-epoch, ride it out through view
# retries + sampling degradation, SIGTERM-checkpoint, and resume — under the
# race detector.
train-chaos: build
	$(GO) test -race -count=1 -run 'TestTrainChaosKillShardAndResume|TestGracefulSigterm' ./cmd/platod2gl-train/
