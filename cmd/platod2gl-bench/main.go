// Command platod2gl-bench regenerates the tables and figures of the
// PlatoD2GL paper's evaluation (Sec. VII) against this reproduction.
//
// Usage:
//
//	platod2gl-bench -experiment all                 # everything, default scale
//	platod2gl-bench -experiment fig9 -edges 500000  # one experiment, bigger graphs
//	platod2gl-bench -experiment perf -json BENCH_$(git rev-parse --short HEAD).json
//
// Experiment IDs match DESIGN.md's per-experiment index: table2, fig8,
// table4, fig9, table5, fig10, fig11, gnn, perf, all. The perf experiment
// additionally supports -json, writing the machine-readable report that
// cmd/bench-regress gates CI on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"platod2gl/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see DESIGN.md) or 'all'")
		edges      = flag.Int64("edges", 150_000, "logical edges per dataset (reverse edges double this)")
		batch      = flag.Int("batch", 8192, "event batch size during graph building")
		workers    = flag.Int("workers", 0, "update worker threads (0 = all CPUs)")
		seed       = flag.Int64("seed", 1, "generator seed")
		jsonPath   = flag.String("json", "", "write the perf experiment's machine-readable report here")
		rev        = flag.String("rev", "", "revision label recorded in the -json report")
	)
	flag.Parse()

	cfg := bench.Config{
		TargetEdges: *edges,
		BatchSize:   *batch,
		Workers:     *workers,
		Seed:        *seed,
		Out:         os.Stdout,
	}
	if *jsonPath != "" {
		if *experiment != "perf" {
			fmt.Fprintln(os.Stderr, "-json requires -experiment perf")
			os.Exit(2)
		}
		res := bench.RunPerf(cfg)
		res.Rev = *rev
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d metrics)\n", *jsonPath, len(res.Metrics))
		return
	}
	if *experiment == "all" {
		bench.RunAll(cfg)
		return
	}
	run, ok := bench.Experiments[*experiment]
	if !ok {
		ids := make([]string, 0, len(bench.Experiments))
		for id := range bench.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v or 'all'\n", *experiment, ids)
		os.Exit(2)
	}
	run(cfg)
}
