// Command platod2gl-bench regenerates the tables and figures of the
// PlatoD2GL paper's evaluation (Sec. VII) against this reproduction.
//
// Usage:
//
//	platod2gl-bench -experiment all                 # everything, default scale
//	platod2gl-bench -experiment fig9 -edges 500000  # one experiment, bigger graphs
//
// Experiment IDs match DESIGN.md's per-experiment index: table2, fig8,
// table4, fig9, table5, fig10, fig11, gnn, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"platod2gl/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see DESIGN.md) or 'all'")
		edges      = flag.Int64("edges", 150_000, "logical edges per dataset (reverse edges double this)")
		batch      = flag.Int("batch", 8192, "event batch size during graph building")
		workers    = flag.Int("workers", 0, "update worker threads (0 = all CPUs)")
		seed       = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := bench.Config{
		TargetEdges: *edges,
		BatchSize:   *batch,
		Workers:     *workers,
		Seed:        *seed,
		Out:         os.Stdout,
	}
	if *experiment == "all" {
		bench.RunAll(cfg)
		return
	}
	run, ok := bench.Experiments[*experiment]
	if !ok {
		ids := make([]string, 0, len(bench.Experiments))
		for id := range bench.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %v or 'all'\n", *experiment, ids)
		os.Exit(2)
	}
	run(cfg)
}
