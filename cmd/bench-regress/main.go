// Command bench-regress is the CI benchmark gate: it compares a fresh
// BENCH_<rev>.json (platod2gl-bench -experiment perf -json ...) against the
// committed baseline and exits non-zero when any gated metric moved more
// than the threshold in the bad direction, or a baseline metric disappeared.
//
// Usage:
//
//	bench-regress -baseline bench/baseline.json -current BENCH_abc123.json
//	bench-regress -baseline ... -current ... -threshold 0.4   # looser gate
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"platod2gl/internal/bench/regress"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "bench/baseline.json", "committed baseline report")
		currentPath  = flag.String("current", "", "freshly produced report (required)")
		threshold    = flag.Float64("threshold", 0.25, "fractional regression threshold (0.25 = 25%)")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "bench-regress: -current is required")
		os.Exit(2)
	}
	baseline, err := regress.Load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	current, err := regress.Load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	deltas, ok := regress.Compare(baseline, current, *threshold)
	fmt.Printf("bench-regress: baseline %s vs current %s (threshold %.0f%%)\n",
		baseline.Rev, current.Rev, *threshold*100)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "metric\tdirection\tbaseline\tcurrent\tchange\tverdict")
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.Missing:
			verdict = "MISSING"
		case d.Regressed:
			verdict = "REGRESSED"
		case d.Direction == regress.Informational:
			verdict = "info"
		}
		fmt.Fprintf(w, "%s\t%s\t%.4g\t%.4g\t%+.1f%%\t%s\n",
			d.Name, d.Direction, d.Baseline, d.Current, d.Change*100, verdict)
	}
	w.Flush()
	if !ok {
		fmt.Fprintln(os.Stderr, "bench-regress: FAIL — regression beyond threshold (or missing metric)")
		os.Exit(1)
	}
	fmt.Println("bench-regress: PASS")
}
