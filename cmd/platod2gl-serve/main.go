// Command platod2gl-serve is the online inference tier: it loads the newest
// training checkpoint, warms an in-process HNSW index with one embedding per
// source vertex, and answers embedding and k-NN queries over HTTP while a
// background refresher keeps the index tracking the live graph.
//
// Backends (pick one):
//
//	-local            serve a rebuilt synthetic graph in-process (demo mode:
//	                  same -nodes/-classes/-dim/-degree/-seed flags as
//	                  platod2gl-train reproduce the trained graph)
//	-servers a,b,c    serve against live platod2gl-server processes
//
// Usage:
//
//	platod2gl-train -local -checkpoint-dir /tmp/ckpt
//	platod2gl-serve -local -checkpoint-dir /tmp/ckpt -addr :8080
//	curl 'localhost:8080/knn?id=42&k=10'
//	curl 'localhost:8080/embed?ids=1,2,3'
//
// API:
//
//	GET /embed?ids=1,2,3   current embeddings, one row per id
//	GET /knn?id=42&k=10    nearest indexed vertices to id's live embedding
//	GET /healthz           readiness + index size
//
// -metrics-addr serves /metrics (Prometheus) and /debug/vars (expvar) with
// the platod2gl_serve_* family: request/shed counters, latency histograms,
// serve_embeddings_stale, serve_refresh_lag_seconds, and index size. See
// docs/OPERATIONS.md, "Serving".
//
// SIGTERM (or Ctrl-C) stops admission, drains in-flight requests, and exits
// cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"platod2gl/internal/checkpoint"
	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/obs"
	"platod2gl/internal/sampler"
	"platod2gl/internal/serve"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// config collects every knob so tests can drive run directly.
type config struct {
	local   bool
	servers string

	addr        string
	metricsAddr string

	checkpointDir string

	// Synthetic-graph shape for -local (must match the training run).
	nodes   int
	classes int
	dim     int
	degree  int
	seed    int64

	f1, f2         int
	workers        int
	requestTimeout time.Duration
	callBudget     time.Duration

	warmBatch       int
	refreshInterval time.Duration
	refreshBatch    int
	noRefresh       bool

	// Test hooks. onReady fires once the HTTP API is listening and the
	// index is warm; stop requests the same graceful shutdown as SIGTERM.
	onReady func(ready readyInfo)
	stop    <-chan struct{}
}

// readyInfo hands tests the bound addresses and live internals.
type readyInfo struct {
	addr        string
	metricsAddr string
	engine      *serve.Engine
	metrics     *serve.Metrics
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.local, "local", false, "serve a rebuilt synthetic graph in-process")
	flag.StringVar(&cfg.servers, "servers", "", "comma-separated addresses of live graph servers")
	flag.StringVar(&cfg.addr, "addr", ":8080", "HTTP address for the query API")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "HTTP address serving /metrics and /debug/vars (empty = disabled)")
	flag.StringVar(&cfg.checkpointDir, "checkpoint-dir", "", "directory holding training checkpoints (required)")
	flag.IntVar(&cfg.nodes, "nodes", 2000, "synthetic graph size (-local)")
	flag.IntVar(&cfg.classes, "classes", 4, "number of classes (-local)")
	flag.IntVar(&cfg.dim, "dim", 16, "feature dimension (-local)")
	flag.IntVar(&cfg.degree, "degree", 8, "out-edges per vertex (-local)")
	flag.Int64Var(&cfg.seed, "seed", 1, "RNG seed; must match the training run for -local")
	flag.IntVar(&cfg.f1, "f1", 8, "hop-1 fanout (match training)")
	flag.IntVar(&cfg.f2, "f2", 5, "hop-2 fanout (match training)")
	flag.IntVar(&cfg.workers, "workers", 4, "concurrent forward passes")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 2*time.Second, "per-request deadline")
	flag.DurationVar(&cfg.callBudget, "call-budget", 0, "end-to-end deadline per view call, propagated to servers (0 = none)")
	flag.IntVar(&cfg.warmBatch, "warm-batch", 256, "vertices per bulk-indexing batch at startup")
	flag.DurationVar(&cfg.refreshInterval, "refresh-interval", 2*time.Second, "staleness poll cadence")
	flag.IntVar(&cfg.refreshBatch, "refresh-batch", 128, "vertices per background re-embed batch")
	flag.BoolVar(&cfg.noRefresh, "no-refresh", false, "disable the background index refresher")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// synthGraph rebuilds the training binary's synthetic homophilous graph —
// flag-for-flag the same construction, so -local serving sees the graph the
// checkpoint was trained on.
func synthGraph(cfg config) (*storage.DynamicStore, *kvstore.Store) {
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, uint64(cfg.nodes), cfg.dim, cfg.classes, 2.0, cfg.seed)
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	byClass := make([][]graph.VertexID, cfg.classes)
	nodes := make([]graph.VertexID, cfg.nodes)
	for i := range nodes {
		nodes[i] = graph.MakeVertexID(0, uint64(i))
		l, _ := attrs.Label(nodes[i])
		byClass[l] = append(byClass[l], nodes[i])
	}
	for _, id := range nodes {
		l, _ := attrs.Label(id)
		peers := byClass[l]
		for j := 0; j < cfg.degree; j++ {
			dst := peers[rng.Intn(len(peers))]
			if rng.Intn(4) == 0 {
				dst = nodes[rng.Intn(cfg.nodes)]
			}
			store.AddEdge(graph.Edge{Src: id, Dst: dst, Weight: 1})
		}
	}
	return store, attrs
}

// buildView wires the serving backend: the interactive view, a
// background-priority twin for the refresher, the change source, and a
// cleanup func.
func buildView(cfg config) (gv, refreshGV view.GraphView, src serve.ChangeSource, cleanup func(), err error) {
	switch {
	case cfg.local:
		store, attrs := synthGraph(cfg)
		opt := sampler.Options{Parallelism: cfg.workers, Seed: cfg.seed}
		v := view.NewLocal(store, attrs, opt)
		// One coarse single-shard digest: the attribute store's incremental
		// digest XOR the edge count. Edge count is not order-independent the
		// way the cluster's topology digest is, but local mode owns its
		// store in-process, so any mutation moves it.
		src = serve.ChangeFunc(func(context.Context) ([]uint64, error) {
			return []uint64{attrs.Digest() ^ uint64(store.NumEdges())}, nil
		})
		return v, v, src, func() {}, nil

	case cfg.servers != "":
		addrs := strings.Split(cfg.servers, ",")
		client, err := cluster.Dial(addrs, cluster.Options{})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cv := view.NewCluster(client, cfg.seed)
		if cfg.callBudget > 0 {
			cv.SetCallBudget(cfg.callBudget)
		}
		return cv, cv.Background(), serve.ClusterChanges{Client: client}, func() { client.Close() }, nil
	}
	return nil, nil, nil, nil, fmt.Errorf("pick a backend: -local or -servers a,b,c")
}

// publishOnce registers an expvar only if the name is still free — run may
// be invoked repeatedly in one process (tests) and Publish panics on
// duplicates.
func publishOnce(name string, v expvar.Var) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, v)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.checkpointDir == "" {
		return fmt.Errorf("-checkpoint-dir is required: serving loads a trained model")
	}
	cm := &checkpoint.Metrics{}
	st, path, err := checkpoint.LoadLatest(cfg.checkpointDir, cm)
	if err != nil {
		if errors.Is(err, checkpoint.ErrNoCheckpoint) {
			return fmt.Errorf("no checkpoint in %s: train first (platod2gl-train -checkpoint-dir %s)", cfg.checkpointDir, cfg.checkpointDir)
		}
		return fmt.Errorf("load checkpoint: %w", err)
	}

	gv, refreshGV, changeSrc, cleanup, err := buildView(cfg)
	if err != nil {
		return err
	}
	defer cleanup()

	metrics := &serve.Metrics{}
	eng, err := serve.New(serve.Config{
		View: gv, State: st, Rel: 0, F1: cfg.f1, F2: cfg.f2,
		Workers: cfg.workers, Timeout: cfg.requestTimeout,
		IndexSeed: cfg.seed, Metrics: metrics,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %s: embedding dim %d, %d classes\n", path, eng.Dim(), eng.Classes())

	warmStart := time.Now()
	indexed, err := eng.Warm(context.Background(), cfg.warmBatch)
	if err != nil {
		return fmt.Errorf("warm index: %w", err)
	}
	fmt.Fprintf(out, "warmed index: %d vertices in %s\n", indexed, time.Since(warmStart).Round(time.Millisecond))

	// Metrics endpoint: /metrics (Prometheus) + /debug/vars (expvar) on a
	// dedicated mux, shut down with the process.
	if cfg.metricsAddr != "" {
		reg := obs.NewRegistry()
		metrics.Register(reg)
		cm.Register(reg)
		eng.RegisterIndexGauges(reg)
		publishOnce("platod2gl_serve", metrics.Expvar())
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mlis, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen: %w", err)
		}
		cfg.metricsAddr = mlis.Addr().String()
		metricsSrv := &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(mlis); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := metricsSrv.Shutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}()
	}

	// The refresher closes the dynamic loop; its sampling rides the
	// background admission class on cluster backends.
	refreshCtx, stopRefresh := context.WithCancel(context.Background())
	defer stopRefresh()
	refreshDone := make(chan struct{})
	if cfg.noRefresh {
		close(refreshDone)
	} else {
		ref, err := serve.NewRefresher(serve.RefreshConfig{
			Engine: eng, Source: changeSrc, View: refreshGV,
			Interval: cfg.refreshInterval, Batch: cfg.refreshBatch, Metrics: metrics,
		})
		if err != nil {
			return err
		}
		go func() {
			defer close(refreshDone)
			ref.Run(refreshCtx)
		}()
	}

	lis, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("api listen: %w", err)
	}
	apiSrv := &http.Server{Handler: apiMux(eng)}
	serveErr := make(chan error, 1)
	go func() {
		if err := apiSrv.Serve(lis); err != nil && err != http.ErrServerClosed {
			serveErr <- err
		}
	}()
	fmt.Fprintf(out, "serving on %s (workers %d, request timeout %s, refresh every %s)\n",
		lis.Addr(), cfg.workers, cfg.requestTimeout, cfg.refreshInterval)
	if cfg.onReady != nil {
		cfg.onReady(readyInfo{addr: lis.Addr().String(), metricsAddr: cfg.metricsAddr, engine: eng, metrics: metrics})
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)
	select {
	case err := <-serveErr:
		return fmt.Errorf("api server: %w", err)
	case <-sigCh:
	case <-cfg.stop:
	}

	// Graceful drain: stop the refresher, then the API with a bounded
	// deadline so wedged requests cannot hold the process open.
	stopRefresh()
	<-refreshDone
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := apiSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("api shutdown: %w", err)
	}
	s := metrics.Snapshot()
	fmt.Fprintf(out, "shutdown: served %d embed + %d knn requests (%d errors, %d shed), refreshed %d\n",
		s.EmbedRequests, s.KNNRequests, s.Errors, s.Shed, s.Refreshed)
	return nil
}

// ---------------------------------------------------------------------------
// HTTP API

type knnHit struct {
	ID   uint64  `json:"id"`
	Dist float32 `json:"dist"`
}

type knnResponse struct {
	ID        uint64    `json:"id"`
	K         int       `json:"k"`
	Neighbors []knnHit  `json:"neighbors"`
	Embedding []float32 `json:"embedding"`
}

type embedResponse struct {
	IDs        []uint64    `json:"ids"`
	Embeddings [][]float32 `json:"embeddings"`
}

type healthResponse struct {
	Status  string `json:"status"`
	Indexed int    `json:"indexed"`
	Dim     int    `json:"dim"`
}

func apiMux(eng *serve.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Indexed: eng.Index().Len(), Dim: eng.Dim()})
	})
	mux.HandleFunc("/embed", func(w http.ResponseWriter, r *http.Request) {
		ids, err := parseIDs(r.URL.Query().Get("ids"))
		if err != nil || len(ids) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("embed needs ids=1,2,3: %v", err))
			return
		}
		embs, err := eng.Embed(r.Context(), ids)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		resp := embedResponse{IDs: make([]uint64, len(ids)), Embeddings: embs}
		for i, id := range ids {
			resp.IDs[i] = uint64(id)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/knn", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		id, err := strconv.ParseUint(q.Get("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("knn needs id=<vertex>: %w", err))
			return
		}
		k := 10
		if ks := q.Get("k"); ks != "" {
			if k, err = strconv.Atoi(ks); err != nil || k <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
				return
			}
		}
		res, emb, err := eng.KNN(r.Context(), graph.VertexID(id), k)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		resp := knnResponse{ID: id, K: k, Neighbors: make([]knnHit, len(res)), Embedding: emb}
		for i, h := range res {
			resp.Neighbors[i] = knnHit{ID: uint64(h.ID), Dist: h.Dist}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// statusFor maps engine errors to HTTP codes: admission sheds and deadline
// misses are load conditions (429), everything else is a server fault.
func statusFor(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}

func parseIDs(s string) ([]graph.VertexID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]graph.VertexID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad vertex id %q", p)
		}
		out = append(out, graph.VertexID(v))
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
