package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"platod2gl/internal/checkpoint"
	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// world is the shared test universe: the synthetic graph as raw data (for
// pushing to a cluster), its adjacency (the oracle for top-k checks), label
// lookup, and a trained checkpoint directory.
type world struct {
	nodes  []graph.VertexID
	events []graph.Event
	feats  []float32
	labels map[graph.VertexID]int32
	adj    map[graph.VertexID]map[graph.VertexID]bool
	ckpt   string
	cfg    config
}

// newWorld synthesizes the homophilous graph with the training binary's
// construction, trains a small checkpoint over a local copy, and returns
// everything a serving test needs.
func newWorld(t *testing.T, nodes, classes, dim, degree int, seed int64) *world {
	t.Helper()
	cfg := config{nodes: nodes, classes: classes, dim: dim, degree: degree, seed: seed, f1: 4, f2: 3}
	staging := kvstore.New()
	dataset.AssignFeatures(staging, 0, uint64(nodes), dim, classes, 2.0, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	byClass := make([][]graph.VertexID, classes)
	ids := make([]graph.VertexID, nodes)
	labels := make(map[graph.VertexID]int32, nodes)
	for i := range ids {
		ids[i] = graph.MakeVertexID(0, uint64(i))
		l, _ := staging.Label(ids[i])
		labels[ids[i]] = l
		byClass[l] = append(byClass[l], ids[i])
	}
	var events []graph.Event
	adj := make(map[graph.VertexID]map[graph.VertexID]bool, nodes)
	for _, id := range ids {
		l, _ := staging.Label(id)
		peers := byClass[l]
		for j := 0; j < degree; j++ {
			dst := peers[rng.Intn(len(peers))]
			if rng.Intn(4) == 0 {
				dst = ids[rng.Intn(nodes)]
			}
			events = append(events, graph.Event{Kind: graph.AddEdge, Edge: graph.Edge{Src: id, Dst: dst, Weight: 1}})
			if adj[id] == nil {
				adj[id] = make(map[graph.VertexID]bool)
			}
			adj[id][dst] = true
		}
	}
	w := &world{
		nodes: ids, events: events,
		feats:  staging.GatherFeatures(ids, dim),
		labels: labels, adj: adj,
		ckpt: t.TempDir(), cfg: cfg,
	}
	w.train(t)
	return w
}

// train fits a 2-layer model over a local copy of the world and writes one
// checkpoint — the artifact platod2gl-serve boots from.
func (w *world) train(t *testing.T) {
	t.Helper()
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}})
	store.ApplyBatch(w.events)
	attrs := kvstore.New()
	for i, id := range w.nodes {
		attrs.SetFeatures(id, w.feats[i*w.cfg.dim:(i+1)*w.cfg.dim])
		attrs.SetLabel(id, w.labels[id])
	}
	gv := view.NewLocal(store, attrs, sampler.Options{Parallelism: 2, Seed: w.cfg.seed})
	rng := rand.New(rand.NewSource(w.cfg.seed + 2))
	model := gnn.NewModel(w.cfg.dim, 16, w.cfg.classes, rng)
	tr := gnn.NewTrainer(model, gv, 0, w.cfg.f1, w.cfg.f2, 0.02)
	for e := 0; e < 3; e++ {
		if _, err := tr.TrainEpoch(e, w.nodes, 64, rng); err != nil {
			t.Fatalf("train epoch %d: %v", e, err)
		}
	}
	st := checkpoint.Capture(checkpoint.Manifest{Seed: w.cfg.seed}, model.Params(), nil)
	if _, err := checkpoint.Save(w.ckpt, st, checkpoint.SaveOptions{Keep: 1}); err != nil {
		t.Fatalf("save checkpoint: %v", err)
	}
}

// startTCPCluster boots n live graph servers on loopback TCP, loads the
// world into them, and returns the addresses plus a loader client for churn.
func (w *world) startTCPCluster(t *testing.T, n int) ([]string, *cluster.Client) {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		svc := cluster.NewService(
			storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}}),
			kvstore.New(),
		)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		addrs[i] = lis.Addr().String()
		srv := cluster.NewServer(svc)
		go srv.Serve(lis)
		t.Cleanup(func() { lis.Close() })
	}
	client, err := cluster.Dial(addrs, cluster.Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	if err := client.ApplyBatch(w.events); err != nil {
		t.Fatalf("push edges: %v", err)
	}
	labels := make([]int32, len(w.nodes))
	for i, id := range w.nodes {
		labels[i] = w.labels[id]
	}
	if err := client.SetFeatures(w.nodes, w.cfg.dim, w.feats, labels); err != nil {
		t.Fatalf("push features: %v", err)
	}
	return addrs, client
}

// serveHandle is one running run() invocation.
type serveHandle struct {
	ready readyInfo
	stop  chan struct{}
	done  chan error
	out   *strings.Builder
}

// startServe launches run in a goroutine and waits for the ready hook.
func startServe(t *testing.T, cfg config) *serveHandle {
	t.Helper()
	h := &serveHandle{stop: make(chan struct{}), done: make(chan error, 1), out: &strings.Builder{}}
	readyCh := make(chan readyInfo, 1)
	cfg.onReady = func(r readyInfo) { readyCh <- r }
	cfg.stop = h.stop
	go func() { h.done <- run(cfg, h.out) }()
	select {
	case h.ready = <-readyCh:
	case err := <-h.done:
		t.Fatalf("serve exited before ready: %v\n%s", err, h.out.String())
	case <-time.After(60 * time.Second):
		t.Fatalf("serve never became ready\n%s", h.out.String())
	}
	return h
}

// shutdown closes the stop hook and waits for a clean exit.
func (h *serveHandle) shutdown(t *testing.T) {
	t.Helper()
	close(h.stop)
	select {
	case err := <-h.done:
		if err != nil {
			t.Fatalf("serve shutdown: %v\n%s", err, h.out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not shut down\n%s", h.out.String())
	}
}

// noKeepAliveClient keeps the goroutine-leak check honest: idle keep-alive
// connections would otherwise pin client-side goroutines past shutdown.
func noKeepAliveClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   30 * time.Second,
	}
}

func getJSON(t *testing.T, hc *http.Client, url string, into any) int {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitGoroutineBaseline polls until the goroutine count settles back near
// the baseline, failing with a stack dump on timeout.
func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d+3\n%s", runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeSmokeCluster is the CI serve-smoke drill: train a tiny
// checkpoint, boot platod2gl-serve against a 2-shard live-TCP cluster,
// issue /embed and /knn queries, check the answers against the graph, and
// verify a clean stop leaks nothing.
func TestServeSmokeCluster(t *testing.T) {
	w := newWorld(t, 400, 4, 8, 6, 1)
	addrs, _ := w.startTCPCluster(t, 2)
	baseline := runtime.NumGoroutine()

	h := startServe(t, config{
		servers: strings.Join(addrs, ","), addr: "127.0.0.1:0", metricsAddr: "127.0.0.1:0",
		checkpointDir: w.ckpt, seed: 1, f1: 4, f2: 3,
		workers: 4, requestTimeout: 30 * time.Second, warmBatch: 128,
		refreshInterval: 200 * time.Millisecond, refreshBatch: 128,
	})
	hc := noKeepAliveClient()
	base := "http://" + h.ready.addr

	var health healthResponse
	if code := getJSON(t, hc, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if health.Status != "ok" || health.Indexed != len(w.nodes) {
		t.Fatalf("healthz %+v, want ok with %d indexed", health, len(w.nodes))
	}

	var emb embedResponse
	if code := getJSON(t, hc, base+"/embed?ids=0,1,2", &emb); code != http.StatusOK {
		t.Fatalf("/embed = %d", code)
	}
	if len(emb.Embeddings) != 3 || len(emb.Embeddings[0]) != health.Dim {
		t.Fatalf("embed shape %dx%d, want 3x%d", len(emb.Embeddings), len(emb.Embeddings[0]), health.Dim)
	}

	// Top-k quality: neighbors must be dominated by the query's class (the
	// graph is homophilous; random would be ~1/4), the query's true graph
	// neighbors must show up across the sample, and the query itself never.
	const k = 10
	same, total, trueHits := 0, 0, 0
	for i := 0; i < 30; i++ {
		q := w.nodes[(i*13)%len(w.nodes)]
		var res knnResponse
		if code := getJSON(t, hc, fmt.Sprintf("%s/knn?id=%d&k=%d", base, uint64(q), k), &res); code != http.StatusOK {
			t.Fatalf("/knn = %d", code)
		}
		if len(res.Neighbors) != k {
			t.Fatalf("knn returned %d hits, want %d", len(res.Neighbors), k)
		}
		if len(res.Embedding) != health.Dim {
			t.Fatalf("knn embedding dim %d, want %d", len(res.Embedding), health.Dim)
		}
		for _, hit := range res.Neighbors {
			id := graph.VertexID(hit.ID)
			if id == q {
				t.Fatalf("knn for %d returned the query itself", uint64(q))
			}
			if w.labels[id] == w.labels[q] {
				same++
			}
			if w.adj[q][id] {
				trueHits++
			}
			total++
		}
	}
	if share := float64(same) / float64(total); share < 0.5 {
		t.Fatalf("same-class share %.3f over %d hits, want >= 0.5", share, total)
	}
	if trueHits == 0 {
		t.Fatal("no true graph neighbors surfaced across 30 top-10 queries")
	}

	// Bad requests are 4xx, not 5xx.
	if code := getJSON(t, hc, base+"/embed", nil); code != http.StatusBadRequest {
		t.Fatalf("/embed without ids = %d, want 400", code)
	}
	if code := getJSON(t, hc, base+"/knn?id=zebra", nil); code != http.StatusBadRequest {
		t.Fatalf("/knn with junk id = %d, want 400", code)
	}

	// Metrics endpoint is live and carries the serve family.
	mresp, err := hc.Get("http://" + h.ready.metricsAddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mb := new(strings.Builder)
	if _, err := io.Copy(mb, mresp.Body); err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	mresp.Body.Close()
	for _, want := range []string{"platod2gl_serve_knn_requests_total", "platod2gl_serve_index_size", "platod2gl_serve_embeddings_stale"} {
		if !strings.Contains(mb.String(), want) {
			t.Fatalf("metrics exposition missing %s", want)
		}
	}

	h.shutdown(t)
	if !strings.Contains(h.out.String(), "shutdown: served") {
		t.Fatalf("no shutdown summary:\n%s", h.out.String())
	}
	hc.CloseIdleConnections()
	waitGoroutineBaseline(t, baseline)
}

// TestServeLocalMode exercises the -local backend end to end: the binary
// rebuilds the synthetic graph itself and serves without any cluster.
func TestServeLocalMode(t *testing.T) {
	w := newWorld(t, 300, 3, 8, 6, 7)
	h := startServe(t, config{
		local: true, addr: "127.0.0.1:0",
		checkpointDir: w.ckpt,
		nodes:         300, classes: 3, dim: 8, degree: 6, seed: 7,
		f1: 4, f2: 3, workers: 2, requestTimeout: 30 * time.Second,
		warmBatch: 128, refreshInterval: time.Hour,
	})
	hc := noKeepAliveClient()
	base := "http://" + h.ready.addr
	var health healthResponse
	if code := getJSON(t, hc, base+"/healthz", &health); code != http.StatusOK || health.Indexed == 0 {
		t.Fatalf("healthz = %d, %+v", code, health)
	}
	var res knnResponse
	if code := getJSON(t, hc, base+"/knn?id=5&k=5", &res); code != http.StatusOK {
		t.Fatalf("/knn = %d", code)
	}
	if len(res.Neighbors) != 5 {
		t.Fatalf("knn returned %d hits, want 5", len(res.Neighbors))
	}
	h.shutdown(t)
}

func TestServeRejectsMissingConfig(t *testing.T) {
	if err := run(config{addr: "127.0.0.1:0"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error without -checkpoint-dir")
	}
	if err := run(config{addr: "127.0.0.1:0", checkpointDir: t.TempDir()}, &strings.Builder{}); err == nil {
		t.Fatal("expected error with an empty checkpoint dir")
	}
	w := newWorld(t, 100, 2, 8, 4, 3)
	if err := run(config{addr: "127.0.0.1:0", checkpointDir: w.ckpt}, &strings.Builder{}); err == nil {
		t.Fatal("expected error without a backend")
	}
}
