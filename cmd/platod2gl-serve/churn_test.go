package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"platod2gl/internal/graph"
)

// churnShape is the drill's dial: the smoke variant runs on every PR, the
// full variant (SERVE_CHURN_FULL=1) is the nightly serving-under-churn drill.
type churnShape struct {
	duration time.Duration
	qps      int
	queriers int
	lagBound time.Duration
}

func churnShapeFromEnv() churnShape {
	if os.Getenv("SERVE_CHURN_FULL") != "" {
		return churnShape{duration: 8 * time.Second, qps: 200, queriers: 4, lagBound: 10 * time.Second}
	}
	return churnShape{duration: 1500 * time.Millisecond, qps: 60, queriers: 2, lagBound: 10 * time.Second}
}

// TestServingUnderChurn is the dynamic-loop drill: edge updates stream into
// the live cluster while a closed-loop /knn driver hammers the API. The
// serving tier must answer without 5xx throughout, the refresher must keep
// the staleness lag bounded, and recall quality must recover after churn.
func TestServingUnderChurn(t *testing.T) {
	shape := churnShapeFromEnv()
	w := newWorld(t, 400, 4, 8, 6, 21)
	addrs, loader := w.startTCPCluster(t, 2)

	h := startServe(t, config{
		servers: strings.Join(addrs, ","), addr: "127.0.0.1:0", metricsAddr: "127.0.0.1:0",
		checkpointDir: w.ckpt, seed: 21, f1: 4, f2: 3,
		workers: 4, requestTimeout: 30 * time.Second, warmBatch: 128,
		refreshInterval: 150 * time.Millisecond, refreshBatch: 256,
	})
	defer h.shutdown(t)
	hc := noKeepAliveClient()
	base := "http://" + h.ready.addr

	// Churn writer: same-class edge additions at the target qps, so the
	// homophilous structure (and hence recall) is reinforced, not destroyed.
	byClass := make(map[int32][]graph.VertexID)
	for _, id := range w.nodes {
		byClass[w.labels[id]] = append(byClass[w.labels[id]], id)
	}
	churnDone := make(chan struct{})
	var churned atomic.Int64
	go func() {
		defer close(churnDone)
		rng := rand.New(rand.NewSource(99))
		tick := time.NewTicker(time.Second / time.Duration(shape.qps))
		defer tick.Stop()
		stopAt := time.Now().Add(shape.duration)
		for time.Now().Before(stopAt) {
			<-tick.C
			src := w.nodes[rng.Intn(len(w.nodes))]
			peers := byClass[w.labels[src]]
			dst := peers[rng.Intn(len(peers))]
			ev := []graph.Event{{Kind: graph.AddEdge, Edge: graph.Edge{Src: src, Dst: dst, Weight: 1}}}
			if err := loader.ApplyBatch(ev); err != nil {
				t.Errorf("churn apply: %v", err)
				return
			}
			churned.Add(1)
		}
	}()

	// Closed-loop query drivers: issue /knn back to back until churn ends,
	// tallying status classes. 429 (shed under load) is acceptable; any 5xx
	// fails the drill.
	var ok200, shed429, server5xx, other atomic.Int64
	queryDone := make(chan struct{}, shape.queriers)
	for q := 0; q < shape.queriers; q++ {
		go func(seed int64) {
			defer func() { queryDone <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-churnDone:
					return
				default:
				}
				id := w.nodes[rng.Intn(len(w.nodes))]
				resp, err := hc.Get(fmt.Sprintf("%s/knn?id=%d&k=10", base, uint64(id)))
				if err != nil {
					t.Errorf("knn during churn: %v", err)
					return
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok200.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					shed429.Add(1)
				case resp.StatusCode >= 500:
					server5xx.Add(1)
				default:
					other.Add(1)
				}
			}
		}(int64(q) + 7)
	}
	<-churnDone
	for q := 0; q < shape.queriers; q++ {
		<-queryDone
	}

	if n := server5xx.Load(); n != 0 {
		t.Fatalf("%d 5xx responses during churn (ok=%d shed=%d)", n, ok200.Load(), shed429.Load())
	}
	if n := other.Load(); n != 0 {
		t.Fatalf("%d unexpected non-200/429 responses during churn", n)
	}
	if ok200.Load() == 0 {
		t.Fatal("no successful queries completed during churn")
	}
	t.Logf("churn: %d edges applied, %d ok, %d shed", churned.Load(), ok200.Load(), shed429.Load())

	// The refresher must have seen the churn and drained the dirty set.
	deadline := time.Now().Add(15 * time.Second)
	for {
		s := h.ready.metrics.Snapshot()
		if s.Refreshed > 0 && s.EmbeddingsStale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresher never converged: refreshed=%d stale=%d errors=%d",
				s.Refreshed, s.EmbeddingsStale, s.RefreshErrors)
		}
		time.Sleep(100 * time.Millisecond)
	}
	s := h.ready.metrics.Snapshot()
	if lag := time.Duration(s.RefreshLagP99Ns); lag > shape.lagBound {
		t.Fatalf("serve_refresh_lag_seconds p99 = %s, bound %s", lag, shape.lagBound)
	}
	t.Logf("refresh: %d vertices re-embedded, lag p99 %s", s.Refreshed, time.Duration(s.RefreshLagP99Ns))

	// Post-churn recall recovery: the same-class edges reinforced structure,
	// so top-k must still be class-dominated after the index caught up.
	same, total := 0, 0
	for i := 0; i < 20; i++ {
		q := w.nodes[(i*17)%len(w.nodes)]
		var res knnResponse
		if code := getJSON(t, hc, fmt.Sprintf("%s/knn?id=%d&k=10", base, uint64(q)), &res); code != http.StatusOK {
			t.Fatalf("post-churn /knn = %d", code)
		}
		for _, hit := range res.Neighbors {
			if w.labels[graph.VertexID(hit.ID)] == w.labels[q] {
				same++
			}
			total++
		}
	}
	if share := float64(same) / float64(total); share < 0.5 {
		t.Fatalf("post-churn same-class share %.3f, want >= 0.5", share)
	}
}
