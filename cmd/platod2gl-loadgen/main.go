// Command platod2gl-loadgen generates synthetic dynamic graph workloads
// (the Table III dataset stand-ins) and either summarizes them locally or
// streams them into a running platod2gl-server cluster.
//
// Usage:
//
//	platod2gl-loadgen -dataset wechat -edges 100000                  # dry run, print stats
//	platod2gl-loadgen -dataset ogbn -edges 100000 -servers :7090,:7091
//	platod2gl-loadgen -edges 100000 -servers :7090,:7091,:7092,:7093 -replicas 2
//
// With -replicas R, consecutive runs of R addresses form one replica group:
// writes fan out to every replica of the owning shard and reads fail over
// across them (see internal/cluster/replica.go). The final summary includes
// the client's retry / breaker / failover counters.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/stats"
)

func specByName(name string) (*dataset.Spec, error) {
	switch strings.ToLower(name) {
	case "ogbn":
		return dataset.OGBNSim(), nil
	case "reddit":
		return dataset.RedditSim(), nil
	case "wechat":
		return dataset.WeChatSim(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (ogbn, reddit, wechat)", name)
	}
}

func main() {
	var (
		ds       = flag.String("dataset", "wechat", "dataset: ogbn, reddit, wechat")
		edges    = flag.Int64("edges", 100_000, "logical edges to generate")
		batch    = flag.Int("batch", 8192, "events per batch")
		seed     = flag.Int64("seed", 1, "generator seed")
		mixName  = flag.String("mix", "build", "event mix: build (inserts only) or dynamic")
		servers  = flag.String("servers", "", "comma-separated server addresses; empty = dry run")
		degrees  = flag.Bool("degrees", false, "print the generated out-degree distribution")
		timeout  = flag.Duration("call-timeout", 5*time.Second, "per-RPC-attempt timeout (0 = none)")
		retries  = flag.Int("retries", 4, "retry attempts per failed call (batches are at-most-once)")
		replicas = flag.Int("replicas", 1, "replica-group size R; servers are grouped in consecutive runs of R")
		protocol = flag.String("protocol", "auto", "RPC codec: auto (wire with per-peer gob fallback), wire, gob")
	)
	flag.Parse()

	spec, err := specByName(*ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec = spec.Scale(float64(*edges) / float64(spec.TotalEvents()))
	mix := dataset.BuildMix
	if *mixName == "dynamic" {
		mix = dataset.DynamicMix
	}
	gen := dataset.NewGenerator(spec, mix, *seed)

	var client *cluster.Client
	metrics := &cluster.Metrics{}
	if *servers != "" {
		var addrs []string
		for _, addr := range strings.Split(*servers, ",") {
			addrs = append(addrs, strings.TrimSpace(addr))
		}
		opts := cluster.DefaultOptions()
		opts.CallTimeout = *timeout
		opts.MaxRetries = *retries
		opts.Replicas = *replicas
		opts.Metrics = metrics
		switch *protocol {
		case "auto":
			opts.Protocol = cluster.ProtoAuto
		case "wire":
			opts.Protocol = cluster.ProtoWire
		case "gob":
			opts.Protocol = cluster.ProtoGob
		default:
			log.Fatalf("unknown -protocol %q (auto, wire, gob)", *protocol)
		}
		var err error
		client, err = cluster.Dial(addrs, opts)
		if err != nil {
			log.Fatalf("dial cluster: %v", err)
		}
		defer client.Close()
	}

	start := time.Now()
	var sent int64
	var kinds [3]int64
	degreeOf := map[graph.VertexID]int64{}
	for remaining := *edges; remaining > 0; {
		n := int64(*batch)
		if n > remaining {
			n = remaining
		}
		events := gen.Next(int(n))
		for _, ev := range events {
			kinds[ev.Kind]++
			if *degrees && ev.Kind == graph.AddEdge && ev.Edge.Type < dataset.ReverseOffset {
				degreeOf[ev.Edge.Src]++
			}
		}
		if client != nil {
			if err := client.ApplyBatch(events); err != nil {
				log.Fatalf("apply batch: %v", err)
			}
		}
		sent += int64(len(events))
		remaining -= n
	}
	elapsed := time.Since(start)
	fmt.Printf("dataset %s: %d events (%d add, %d delete, %d update) in %v (%.0f ev/s)\n",
		spec.Name, sent, kinds[graph.AddEdge], kinds[graph.DeleteEdge], kinds[graph.UpdateWeight],
		elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	if *degrees {
		var h stats.Histogram
		for _, d := range degreeOf {
			h.Add(d)
		}
		fmt.Printf("out-degree distribution (forward relations): %s\n", h.String())
		fmt.Printf("p50~%d p99~%d\n", h.QuantileApprox(0.5), h.QuantileApprox(0.99))
	}
	if client != nil {
		st, err := client.Stats()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		fmt.Printf("cluster: %d edges, %.2f MB across %d servers (%d shards x %d replicas)\n",
			st.NumEdges, float64(st.MemoryBytes)/(1<<20), client.NumServers(),
			client.NumShards(), client.NumReplicas())
		if m := client.RoutingMap(); m != nil {
			fmt.Printf("routing: epoch %d across %d server groups\n", m.Epoch, m.NumGroups())
		}
		fmt.Printf("rpc: %s\n", metrics.Snapshot())
	}
}
