// Command platod2gl-loadgen generates synthetic dynamic graph workloads
// (the Table III dataset stand-ins) and either summarizes them locally or
// streams them into a running platod2gl-server cluster.
//
// Usage:
//
//	platod2gl-loadgen -dataset wechat -edges 100000                  # dry run, print stats
//	platod2gl-loadgen -dataset ogbn -edges 100000 -servers :7090,:7091
//	platod2gl-loadgen -edges 100000 -servers :7090,:7091,:7092,:7093 -replicas 2
//	platod2gl-loadgen -edges 100000 -servers :7090,:7091 \
//	    -knn-url http://localhost:8080 -knn-qps 50                   # churn + queries
//
// With -knn-url and -knn-qps, a paced /knn query driver runs against a
// platod2gl-serve instance while the edges stream — a hand-driven
// serving-under-churn drill. The summary reports the status-class tally
// (ok / shed / failed).
//
// With -replicas R, consecutive runs of R addresses form one replica group:
// writes fan out to every replica of the owning shard and reads fail over
// across them (see internal/cluster/replica.go). The final summary includes
// the client's retry / breaker / failover counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/stats"
)

// knnDriver issues paced /knn queries against a platod2gl-serve instance
// while the write workload streams — the CLI shape of the nightly
// serving-under-churn drill. Query targets come from a reservoir of source
// vertices seen in the generated events, so every query hits a vertex that
// exists.
type knnDriver struct {
	base string
	k    int
	hc   *http.Client

	mu  sync.Mutex
	ids []graph.VertexID
	rng *rand.Rand

	sent, ok, shed, fail atomic.Int64
	done                 chan struct{}
	wg                   sync.WaitGroup
}

const knnReservoir = 4096

func newKnnDriver(base string, k, qps int, seed int64) *knnDriver {
	d := &knnDriver{
		base: strings.TrimRight(base, "/"), k: k,
		hc:   &http.Client{Timeout: 10 * time.Second},
		rng:  rand.New(rand.NewSource(seed)),
		done: make(chan struct{}),
	}
	d.wg.Add(1)
	go d.run(qps)
	return d
}

// offer feeds a candidate query target, reservoir-sampled so the query mix
// tracks the whole generated ID space, not just the newest batch.
func (d *knnDriver) offer(id graph.VertexID) {
	d.mu.Lock()
	if len(d.ids) < knnReservoir {
		d.ids = append(d.ids, id)
	} else {
		d.ids[d.rng.Intn(knnReservoir)] = id
	}
	d.mu.Unlock()
}

func (d *knnDriver) pick() (graph.VertexID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.ids) == 0 {
		return 0, false
	}
	return d.ids[d.rng.Intn(len(d.ids))], true
}

func (d *knnDriver) run(qps int) {
	defer d.wg.Done()
	tick := time.NewTicker(time.Second / time.Duration(qps))
	defer tick.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-tick.C:
		}
		id, ok := d.pick()
		if !ok {
			continue
		}
		d.sent.Add(1)
		resp, err := d.hc.Get(fmt.Sprintf("%s/knn?id=%d&k=%d", d.base, uint64(id), d.k))
		if err != nil {
			d.fail.Add(1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			d.ok.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			d.shed.Add(1)
		default:
			d.fail.Add(1)
		}
	}
}

// stop halts the pacer and prints the tally.
func (d *knnDriver) stop(elapsed time.Duration) {
	close(d.done)
	d.wg.Wait()
	sent := d.sent.Load()
	fmt.Printf("knn: %d queries (%.0f/s), %d ok, %d shed (429), %d failed\n",
		sent, float64(sent)/elapsed.Seconds(), d.ok.Load(), d.shed.Load(), d.fail.Load())
}

func specByName(name string) (*dataset.Spec, error) {
	switch strings.ToLower(name) {
	case "ogbn":
		return dataset.OGBNSim(), nil
	case "reddit":
		return dataset.RedditSim(), nil
	case "wechat":
		return dataset.WeChatSim(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (ogbn, reddit, wechat)", name)
	}
}

func main() {
	var (
		ds       = flag.String("dataset", "wechat", "dataset: ogbn, reddit, wechat")
		edges    = flag.Int64("edges", 100_000, "logical edges to generate")
		batch    = flag.Int("batch", 8192, "events per batch")
		seed     = flag.Int64("seed", 1, "generator seed")
		mixName  = flag.String("mix", "build", "event mix: build (inserts only) or dynamic")
		servers  = flag.String("servers", "", "comma-separated server addresses; empty = dry run")
		degrees  = flag.Bool("degrees", false, "print the generated out-degree distribution")
		timeout  = flag.Duration("call-timeout", 5*time.Second, "per-RPC-attempt timeout (0 = none)")
		retries  = flag.Int("retries", 4, "retry attempts per failed call (batches are at-most-once)")
		replicas = flag.Int("replicas", 1, "replica-group size R; servers are grouped in consecutive runs of R")
		protocol = flag.String("protocol", "auto", "RPC codec: auto (wire with per-peer gob fallback), wire, gob")
		qps      = flag.Int("qps", 0, "open-loop offered load in batches/sec, not waiting for completions (0 = closed loop)")
		budget   = flag.Duration("call-budget", 0, "end-to-end deadline per batch, propagated to servers as remaining budget (0 = none)")
		inflight = flag.Int("max-outstanding", 256, "open-loop cap on concurrently in-flight batches; beyond it offered batches are dropped client-side")
		knnURL   = flag.String("knn-url", "", "base URL of a platod2gl-serve instance to query while edges stream (e.g. http://localhost:8080)")
		knnQPS   = flag.Int("knn-qps", 0, "k-NN queries per second against -knn-url (0 = off)")
		knnK     = flag.Int("knn-k", 10, "neighbors per k-NN query")
	)
	flag.Parse()

	spec, err := specByName(*ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec = spec.Scale(float64(*edges) / float64(spec.TotalEvents()))
	mix := dataset.BuildMix
	if *mixName == "dynamic" {
		mix = dataset.DynamicMix
	}
	gen := dataset.NewGenerator(spec, mix, *seed)

	var client *cluster.Client
	metrics := &cluster.Metrics{}
	if *servers != "" {
		var addrs []string
		for _, addr := range strings.Split(*servers, ",") {
			addrs = append(addrs, strings.TrimSpace(addr))
		}
		opts := cluster.DefaultOptions()
		opts.CallTimeout = *timeout
		opts.MaxRetries = *retries
		opts.Replicas = *replicas
		opts.Metrics = metrics
		switch *protocol {
		case "auto":
			opts.Protocol = cluster.ProtoAuto
		case "wire":
			opts.Protocol = cluster.ProtoWire
		case "gob":
			opts.Protocol = cluster.ProtoGob
		default:
			log.Fatalf("unknown -protocol %q (auto, wire, gob)", *protocol)
		}
		var err error
		client, err = cluster.Dial(addrs, opts)
		if err != nil {
			log.Fatalf("dial cluster: %v", err)
		}
		defer client.Close()
	}

	// callCtx derives the per-batch context: -call-budget becomes the
	// deadline servers see as remaining budget.
	callCtx := func() (context.Context, context.CancelFunc) {
		if *budget > 0 {
			return context.WithTimeout(context.Background(), *budget)
		}
		return context.Background(), func() {}
	}

	var knn *knnDriver
	if *knnURL != "" && *knnQPS > 0 {
		knn = newKnnDriver(*knnURL, *knnK, *knnQPS, *seed)
	}

	start := time.Now()
	var sent int64
	var kinds [3]int64
	// Open-loop accounting: batches offered at the target rate vs batches
	// the cluster actually acknowledged. The gap is the overload story —
	// shed, deadline-expired, or dropped at the client's outstanding cap.
	var offered, acked, failed, droppedCap atomic.Int64
	degreeOf := map[graph.VertexID]int64{}
	var wg sync.WaitGroup
	var tick *time.Ticker
	var sem chan struct{}
	openLoop := client != nil && *qps > 0
	if openLoop {
		tick = time.NewTicker(time.Second / time.Duration(*qps))
		defer tick.Stop()
		sem = make(chan struct{}, *inflight)
	}
	for remaining := *edges; remaining > 0; {
		n := int64(*batch)
		if n > remaining {
			n = remaining
		}
		events := gen.Next(int(n))
		for _, ev := range events {
			kinds[ev.Kind]++
			if *degrees && ev.Kind == graph.AddEdge && ev.Edge.Type < dataset.ReverseOffset {
				degreeOf[ev.Edge.Src]++
			}
			if knn != nil && ev.Kind == graph.AddEdge && ev.Edge.Type < dataset.ReverseOffset {
				knn.offer(ev.Edge.Src)
			}
		}
		switch {
		case openLoop:
			<-tick.C
			offered.Add(1)
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(events []graph.Event) {
					defer wg.Done()
					defer func() { <-sem }()
					ctx, cancel := callCtx()
					defer cancel()
					if err := client.ApplyBatchCtx(ctx, events); err != nil {
						failed.Add(1)
					} else {
						acked.Add(1)
					}
				}(events)
			default:
				// The cluster is not draining batches as fast as they are
				// offered; dropping here keeps the generator open-loop
				// without unbounded goroutine growth.
				droppedCap.Add(1)
			}
		case client != nil:
			ctx, cancel := callCtx()
			err := client.ApplyBatchCtx(ctx, events)
			cancel()
			if err != nil {
				log.Fatalf("apply batch: %v", err)
			}
		}
		sent += int64(len(events))
		remaining -= n
	}
	wg.Wait()
	elapsed := time.Since(start)
	if knn != nil {
		knn.stop(elapsed)
	}
	fmt.Printf("dataset %s: %d events (%d add, %d delete, %d update) in %v (%.0f ev/s)\n",
		spec.Name, sent, kinds[graph.AddEdge], kinds[graph.DeleteEdge], kinds[graph.UpdateWeight],
		elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	if *degrees {
		var h stats.Histogram
		for _, d := range degreeOf {
			h.Add(d)
		}
		fmt.Printf("out-degree distribution (forward relations): %s\n", h.String())
		fmt.Printf("p50~%d p99~%d\n", h.QuantileApprox(0.5), h.QuantileApprox(0.99))
	}
	if client != nil {
		st, err := client.Stats()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		fmt.Printf("cluster: %d edges, %.2f MB across %d servers (%d shards x %d replicas)\n",
			st.NumEdges, float64(st.MemoryBytes)/(1<<20), client.NumServers(),
			client.NumShards(), client.NumReplicas())
		if m := client.RoutingMap(); m != nil {
			fmt.Printf("routing: epoch %d across %d server groups\n", m.Epoch, m.NumGroups())
		}
		if openLoop {
			snap := metrics.Snapshot()
			off, ack := offered.Load(), acked.Load()
			goodput := float64(ack) / elapsed.Seconds()
			fmt.Printf("open-loop: offered %d batches (%.0f/s), acked %d (%.0f/s goodput, %.1f%%), failed %d, dropped %d at client cap\n",
				off, float64(off)/elapsed.Seconds(), ack, goodput, 100*float64(ack)/float64(max(off, 1)), failed.Load(), droppedCap.Load())
			fmt.Printf("overload: shed_seen=%d budget_exhausted=%d client_saturations=%d deadline_expired=%d\n",
				snap.ShedSeen, snap.BudgetExhausted, snap.ClientSaturations, snap.DeadlineExpired)
		}
		fmt.Printf("rpc: %s\n", metrics.Snapshot())
	}
}
