// Command platod2gl-loadgen generates synthetic dynamic graph workloads
// (the Table III dataset stand-ins) and either summarizes them locally or
// streams them into a running platod2gl-server cluster.
//
// Usage:
//
//	platod2gl-loadgen -dataset wechat -edges 100000                  # dry run, print stats
//	platod2gl-loadgen -dataset ogbn -edges 100000 -servers :7090,:7091
//	platod2gl-loadgen -edges 100000 -servers :7090,:7091,:7092,:7093 -replicas 2
//
// With -replicas R, consecutive runs of R addresses form one replica group:
// writes fan out to every replica of the owning shard and reads fail over
// across them (see internal/cluster/replica.go). The final summary includes
// the client's retry / breaker / failover counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/stats"
)

func specByName(name string) (*dataset.Spec, error) {
	switch strings.ToLower(name) {
	case "ogbn":
		return dataset.OGBNSim(), nil
	case "reddit":
		return dataset.RedditSim(), nil
	case "wechat":
		return dataset.WeChatSim(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (ogbn, reddit, wechat)", name)
	}
}

func main() {
	var (
		ds       = flag.String("dataset", "wechat", "dataset: ogbn, reddit, wechat")
		edges    = flag.Int64("edges", 100_000, "logical edges to generate")
		batch    = flag.Int("batch", 8192, "events per batch")
		seed     = flag.Int64("seed", 1, "generator seed")
		mixName  = flag.String("mix", "build", "event mix: build (inserts only) or dynamic")
		servers  = flag.String("servers", "", "comma-separated server addresses; empty = dry run")
		degrees  = flag.Bool("degrees", false, "print the generated out-degree distribution")
		timeout  = flag.Duration("call-timeout", 5*time.Second, "per-RPC-attempt timeout (0 = none)")
		retries  = flag.Int("retries", 4, "retry attempts per failed call (batches are at-most-once)")
		replicas = flag.Int("replicas", 1, "replica-group size R; servers are grouped in consecutive runs of R")
		protocol = flag.String("protocol", "auto", "RPC codec: auto (wire with per-peer gob fallback), wire, gob")
		qps      = flag.Int("qps", 0, "open-loop offered load in batches/sec, not waiting for completions (0 = closed loop)")
		budget   = flag.Duration("call-budget", 0, "end-to-end deadline per batch, propagated to servers as remaining budget (0 = none)")
		inflight = flag.Int("max-outstanding", 256, "open-loop cap on concurrently in-flight batches; beyond it offered batches are dropped client-side")
	)
	flag.Parse()

	spec, err := specByName(*ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec = spec.Scale(float64(*edges) / float64(spec.TotalEvents()))
	mix := dataset.BuildMix
	if *mixName == "dynamic" {
		mix = dataset.DynamicMix
	}
	gen := dataset.NewGenerator(spec, mix, *seed)

	var client *cluster.Client
	metrics := &cluster.Metrics{}
	if *servers != "" {
		var addrs []string
		for _, addr := range strings.Split(*servers, ",") {
			addrs = append(addrs, strings.TrimSpace(addr))
		}
		opts := cluster.DefaultOptions()
		opts.CallTimeout = *timeout
		opts.MaxRetries = *retries
		opts.Replicas = *replicas
		opts.Metrics = metrics
		switch *protocol {
		case "auto":
			opts.Protocol = cluster.ProtoAuto
		case "wire":
			opts.Protocol = cluster.ProtoWire
		case "gob":
			opts.Protocol = cluster.ProtoGob
		default:
			log.Fatalf("unknown -protocol %q (auto, wire, gob)", *protocol)
		}
		var err error
		client, err = cluster.Dial(addrs, opts)
		if err != nil {
			log.Fatalf("dial cluster: %v", err)
		}
		defer client.Close()
	}

	// callCtx derives the per-batch context: -call-budget becomes the
	// deadline servers see as remaining budget.
	callCtx := func() (context.Context, context.CancelFunc) {
		if *budget > 0 {
			return context.WithTimeout(context.Background(), *budget)
		}
		return context.Background(), func() {}
	}

	start := time.Now()
	var sent int64
	var kinds [3]int64
	// Open-loop accounting: batches offered at the target rate vs batches
	// the cluster actually acknowledged. The gap is the overload story —
	// shed, deadline-expired, or dropped at the client's outstanding cap.
	var offered, acked, failed, droppedCap atomic.Int64
	degreeOf := map[graph.VertexID]int64{}
	var wg sync.WaitGroup
	var tick *time.Ticker
	var sem chan struct{}
	openLoop := client != nil && *qps > 0
	if openLoop {
		tick = time.NewTicker(time.Second / time.Duration(*qps))
		defer tick.Stop()
		sem = make(chan struct{}, *inflight)
	}
	for remaining := *edges; remaining > 0; {
		n := int64(*batch)
		if n > remaining {
			n = remaining
		}
		events := gen.Next(int(n))
		for _, ev := range events {
			kinds[ev.Kind]++
			if *degrees && ev.Kind == graph.AddEdge && ev.Edge.Type < dataset.ReverseOffset {
				degreeOf[ev.Edge.Src]++
			}
		}
		switch {
		case openLoop:
			<-tick.C
			offered.Add(1)
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(events []graph.Event) {
					defer wg.Done()
					defer func() { <-sem }()
					ctx, cancel := callCtx()
					defer cancel()
					if err := client.ApplyBatchCtx(ctx, events); err != nil {
						failed.Add(1)
					} else {
						acked.Add(1)
					}
				}(events)
			default:
				// The cluster is not draining batches as fast as they are
				// offered; dropping here keeps the generator open-loop
				// without unbounded goroutine growth.
				droppedCap.Add(1)
			}
		case client != nil:
			ctx, cancel := callCtx()
			err := client.ApplyBatchCtx(ctx, events)
			cancel()
			if err != nil {
				log.Fatalf("apply batch: %v", err)
			}
		}
		sent += int64(len(events))
		remaining -= n
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("dataset %s: %d events (%d add, %d delete, %d update) in %v (%.0f ev/s)\n",
		spec.Name, sent, kinds[graph.AddEdge], kinds[graph.DeleteEdge], kinds[graph.UpdateWeight],
		elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	if *degrees {
		var h stats.Histogram
		for _, d := range degreeOf {
			h.Add(d)
		}
		fmt.Printf("out-degree distribution (forward relations): %s\n", h.String())
		fmt.Printf("p50~%d p99~%d\n", h.QuantileApprox(0.5), h.QuantileApprox(0.99))
	}
	if client != nil {
		st, err := client.Stats()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		fmt.Printf("cluster: %d edges, %.2f MB across %d servers (%d shards x %d replicas)\n",
			st.NumEdges, float64(st.MemoryBytes)/(1<<20), client.NumServers(),
			client.NumShards(), client.NumReplicas())
		if m := client.RoutingMap(); m != nil {
			fmt.Printf("routing: epoch %d across %d server groups\n", m.Epoch, m.NumGroups())
		}
		if openLoop {
			snap := metrics.Snapshot()
			off, ack := offered.Load(), acked.Load()
			goodput := float64(ack) / elapsed.Seconds()
			fmt.Printf("open-loop: offered %d batches (%.0f/s), acked %d (%.0f/s goodput, %.1f%%), failed %d, dropped %d at client cap\n",
				off, float64(off)/elapsed.Seconds(), ack, goodput, 100*float64(ack)/float64(max(off, 1)), failed.Load(), droppedCap.Load())
			fmt.Printf("overload: shed_seen=%d budget_exhausted=%d client_saturations=%d deadline_expired=%d\n",
				snap.ShedSeen, snap.BudgetExhausted, snap.ClientSaturations, snap.DeadlineExpired)
		}
		fmt.Printf("rpc: %s\n", metrics.Snapshot())
	}
}
