// Command platod2gl-rebalance is the cluster elasticity control plane: it
// inspects and edits the epoch-versioned shard map and drives live shard
// migrations (internal/cluster/migrate.go) from outside the data path.
//
// Usage:
//
//	platod2gl-rebalance -servers host1:7090,host2:7090 <verb> [args]
//
// Verbs:
//
//	status               print every server's routing state and the map
//	init                 install the identity map on an unrouted cluster
//	                     (-num-shards, -replicas)
//	push                 re-push the newest map to every server it lists
//	                     (heals servers that restarted without a map)
//	grow -add addr[,..]  add a new (empty) server group, then rebalance
//	                     shards onto it — the N→N+1 scale-out
//	move -shard S -to G  migrate one logical shard to server group G
//	rebalance            count-balance shards across groups, one live
//	                     migration at a time
//	verify               compare state digests across every replica group
//	                     (names diverged shards; -scrub also runs one
//	                     anti-entropy round per server); exits nonzero on
//	                     any mismatch or corruption
//
// Shard selection is count-balanced (every group within one shard of even).
// The planner is a pluggable seam: a locality-aware policy in the spirit of
// the paper's GLISP successor — minimizing cross-server edges instead of
// just counts — slots in behind the same Driver without protocol changes.
//
// Every migration is abortable until its cutover: a failure (or Ctrl-C
// between moves) leaves the cluster serving on the old placement with the
// staged copy dropped. See docs/OPERATIONS.md "Elasticity" for runbooks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"platod2gl/internal/cluster"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: platod2gl-rebalance -servers a,b,c <status|init|push|grow|move|rebalance|verify> [args]\n")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	var (
		servers   = flag.String("servers", "", "comma-separated server addresses (required)")
		replicas  = flag.Int("replicas", 1, "replicas per server group (init)")
		numShards = flag.Int("num-shards", 0, "logical shards for init (0 = one per server group); fixed for the cluster's lifetime")
		add       = flag.String("add", "", "new server group addresses for grow (comma-separated, one per replica)")
		shard     = flag.Int("shard", -1, "logical shard to move (move)")
		to        = flag.Int("to", -1, "destination server group (move)")
		callT     = flag.Duration("call-timeout", 10*time.Second, "control RPC timeout (park, routing)")
		pullT     = flag.Duration("pull-timeout", 10*time.Minute, "data-move RPC timeout (shard pull, drop)")
		parkTTL   = flag.Duration("park-ttl", 30*time.Second, "source write-park self-release backstop")
		keepSrc   = flag.Bool("keep-source", false, "keep the source's (unreachable) shard copy after cutover instead of dropping it")
		scrub     = flag.Bool("scrub", false, "verify: also trigger one anti-entropy scrub round on every server (needs server-side scrubber)")
	)
	flag.Usage = usage
	flag.Parse()
	if *servers == "" || flag.NArg() < 1 {
		usage()
	}
	addrs := strings.Split(*servers, ",")
	verb := flag.Arg(0)

	d := &cluster.Driver{
		CallTimeout: *callT,
		PullTimeout: *pullT,
		ParkTTL:     *parkTTL,
		KeepSource:  *keepSrc,
		Logf:        log.Printf,
	}

	switch verb {
	case "status":
		status(d, addrs)

	case "init":
		m, err := d.InitRouting(addrs, *replicas, *numShards)
		if err != nil {
			log.Fatalf("init: %v", err)
		}
		fmt.Printf("installed %s\n", m)

	case "push":
		m, err := d.FetchMap(addrs)
		if err != nil {
			log.Fatalf("push: %v", err)
		}
		if err := d.Push(m); err != nil {
			log.Fatalf("push: %v", err)
		}
		fmt.Printf("pushed %s\n", m)

	case "grow":
		if *add == "" {
			log.Fatalf("grow needs -add addr[,addr...] (the new server group)")
		}
		m, err := d.FetchMap(addrs)
		if err != nil {
			log.Fatalf("grow: %v", err)
		}
		next, moved, err := d.Grow(m, strings.Split(*add, ","))
		if err != nil {
			log.Fatalf("grow: moved %d shard(s), then: %v", moved, err)
		}
		fmt.Printf("grew cluster: %d shard(s) migrated, now %s\n", moved, next)

	case "move":
		if *shard < 0 || *to < 0 {
			log.Fatalf("move needs -shard S and -to G")
		}
		m, err := d.FetchMap(addrs)
		if err != nil {
			log.Fatalf("move: %v", err)
		}
		next, err := d.MigrateShard(m, *shard, *to)
		if err != nil {
			log.Fatalf("move: %v", err)
		}
		fmt.Printf("moved shard %d, now %s\n", *shard, next)

	case "rebalance":
		m, err := d.FetchMap(addrs)
		if err != nil {
			log.Fatalf("rebalance: %v", err)
		}
		next, moved, err := d.Rebalance(m)
		if err != nil {
			log.Fatalf("rebalance: moved %d shard(s), then: %v", moved, err)
		}
		fmt.Printf("rebalanced: %d shard(s) migrated, now %s\n", moved, next)

	case "verify":
		// Tolerate an unrouted cluster: digests are still collected and
		// printed, there is just no replica group to compare within.
		m, err := d.FetchMap(addrs)
		if err != nil {
			log.Printf("verify: no shard map (%v); reporting ungrouped digests", err)
			m = nil
		}
		rep := d.VerifyIntegrity(m, addrs, *scrub)
		fmt.Print(rep)
		if !rep.Healthy() {
			log.Fatalf("verify: integrity check FAILED")
		}
		fmt.Println("verify: all replica groups consistent")

	default:
		usage()
	}
}

// status prints each server's view plus the newest map's assignment table.
func status(d *cluster.Driver, addrs []string) {
	var newest *cluster.ShardMap
	for _, sr := range d.Survey(addrs) {
		switch {
		case sr.Err != nil:
			fmt.Printf("%-24s unreachable: %v\n", sr.Addr, sr.Err)
		case !sr.Has:
			fmt.Printf("%-24s no shard map (legacy frozen placement)\n", sr.Addr)
		default:
			fmt.Printf("%-24s routing epoch %d (%d shards x %d replicas)\n",
				sr.Addr, sr.Epoch, sr.Map.NumShards, sr.Map.Replicas)
			if newest == nil || sr.Map.Epoch > newest.Epoch {
				newest = sr.Map
			}
		}
	}
	if newest == nil {
		fmt.Println("cluster is unrouted; `init` installs the identity map")
		return
	}
	fmt.Printf("\nnewest map: %s\n", newest)
	for g := 0; g < newest.NumGroups(); g++ {
		owned := newest.OwnedBy(g)
		fmt.Printf("  group %d (%s): %d shard(s) %v\n", g, strings.Join(newest.Group(g), ","), len(owned), owned)
	}
	if plan := cluster.CountBalancePlan(newest); len(plan) > 0 {
		fmt.Printf("  imbalanced: `rebalance` would move %d shard(s)\n", len(plan))
	}
}
