package main

import (
	"strings"
	"testing"
	"time"
)

func testConfig() config {
	return config{
		nodes: 300, classes: 3, dim: 8, hidden: 16, degree: 6,
		epochs: 2, batch: 32, f1: 4, f2: 3, lr: 0.02, seed: 1,
		depth: 4, workers: 2,
	}
}

func TestRunLocalEpochs(t *testing.T) {
	cfg := testConfig()
	cfg.local = true
	var out strings.Builder
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"training on local", "epoch 0:", "epoch 1:", "pipeline: built="} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunInProcessCluster(t *testing.T) {
	cfg := testConfig()
	cfg.shards = 2
	cfg.workers = 4
	cfg.depth = 8
	var out strings.Builder
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"training on cluster(2 shards)", "epoch 1:",
		"pipeline: built=", "coalescing saved",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// Multi-hop frontiers repeat seeds, so training over RPC must have
	// coalesced something.
	if strings.Contains(got, "coalescing saved 0 duplicate seeds") {
		t.Fatalf("no coalescing recorded:\n%s", got)
	}
}

func TestRunWithInjectedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-flavored test")
	}
	cfg := testConfig()
	cfg.local = true
	cfg.nodes = 150
	cfg.epochs = 1
	cfg.sampleDelay = time.Millisecond
	cfg.workers = 4
	var out strings.Builder
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "epoch 0:") {
		t.Fatalf("no epoch output:\n%s", out.String())
	}
}

func TestRunRejectsMissingBackend(t *testing.T) {
	cfg := testConfig()
	var out strings.Builder
	if err := run(cfg, &out); err == nil {
		t.Fatal("expected error without a backend flag")
	}
	cfg.local = true
	cfg.epochs = 0
	if err := run(cfg, &out); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}
