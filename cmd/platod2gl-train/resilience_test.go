package main

import (
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"platod2gl/internal/checkpoint"
	"platod2gl/internal/cluster"
)

// TestResumeBitIdentical is the headline determinism proof: a single-worker
// run interrupted at an epoch boundary and resumed must land on bit-identical
// final parameters and optimizer state versus the uninterrupted run, for both
// the local and the sharded backend.
func TestResumeBitIdentical(t *testing.T) {
	for _, backend := range []string{"local", "shards"} {
		t.Run(backend, func(t *testing.T) {
			base := testConfig()
			base.workers = 1 // deterministic mode
			base.depth = 2
			if backend == "local" {
				base.local = true
			} else {
				base.shards = 2
			}

			// Run A: 4 epochs straight through.
			dirA := t.TempDir()
			cfgA := base
			cfgA.epochs = 4
			cfgA.checkpointDir = dirA
			var outA strings.Builder
			if err := run(cfgA, &outA); err != nil {
				t.Fatal(err)
			}

			// Run B: 2 epochs, then resume to 4 from the checkpoint.
			dirB := t.TempDir()
			cfgB := base
			cfgB.epochs = 2
			cfgB.checkpointDir = dirB
			var outB1 strings.Builder
			if err := run(cfgB, &outB1); err != nil {
				t.Fatal(err)
			}
			cfgB.epochs = 4
			cfgB.resume = true
			var outB2 strings.Builder
			if err := run(cfgB, &outB2); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(outB2.String(), "resumed from") {
				t.Fatalf("second leg did not resume:\n%s", outB2.String())
			}

			stA, _, err := checkpoint.LoadLatest(dirA, nil)
			if err != nil {
				t.Fatal(err)
			}
			stB, _, err := checkpoint.LoadLatest(dirB, nil)
			if err != nil {
				t.Fatal(err)
			}
			if stA.Manifest.Epoch != 4 || stB.Manifest.Epoch != 4 {
				t.Fatalf("final manifests: A epoch %d, B epoch %d, want 4",
					stA.Manifest.Epoch, stB.Manifest.Epoch)
			}
			if !reflect.DeepEqual(stA.Params, stB.Params) {
				t.Fatalf("resumed run diverged: final parameters differ\nA:\n%s\nB:\n%s",
					outA.String(), outB2.String())
			}
			if !reflect.DeepEqual(stA.Opt, stB.Opt) {
				t.Fatal("resumed run diverged: optimizer state differs")
			}
			if stA.Manifest.SamplePos != stB.Manifest.SamplePos {
				t.Fatalf("sampling cursors diverged: %d vs %d",
					stA.Manifest.SamplePos, stB.Manifest.SamplePos)
			}
		})
	}
}

// TestGracefulSigterm: SIGTERM mid-epoch drains the batch being trained,
// writes a final checkpoint naming the exact resume position, and run returns
// cleanly; a -resume run then skips the already-trained batches and finishes.
func TestGracefulSigterm(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.local = true
	cfg.workers = 1
	cfg.checkpointDir = dir

	var once sync.Once
	cfg.onStep = func(epoch, step int) {
		if epoch == 0 && step == 2 {
			once.Do(func() {
				if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
					t.Errorf("kill: %v", err)
				}
				// Give the runtime a moment to route the signal onto sigCh so
				// the loop notices before building up more steps.
				time.Sleep(50 * time.Millisecond)
			})
		}
	}
	var out strings.Builder
	if err := run(cfg, &out); err != nil {
		t.Fatalf("SIGTERM should exit cleanly, got: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "interrupted: drained batch, wrote final checkpoint") {
		t.Fatalf("no graceful-shutdown message:\n%s", got)
	}
	if !strings.Contains(got, "checkpoint: wrote") {
		t.Fatalf("no checkpoint written on SIGTERM:\n%s", got)
	}

	st, _, err := checkpoint.LoadLatest(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifest.Epoch != 0 || st.Manifest.Step < 2 {
		t.Fatalf("manifest = epoch %d step %d, want epoch 0 step >= 2",
			st.Manifest.Epoch, st.Manifest.Step)
	}

	// Resume finishes the interrupted epoch (skipping trained batches) and
	// the rest of the schedule.
	cfg.onStep = nil
	cfg.resume = true
	var out2 strings.Builder
	if err := run(cfg, &out2); err != nil {
		t.Fatal(err)
	}
	got2 := out2.String()
	for _, want := range []string{"resumed from", "skipping", "epoch 1:", "trained"} {
		if !strings.Contains(got2, want) {
			t.Fatalf("resume output missing %q:\n%s", want, got2)
		}
	}
}

// TestTrainChaosKillShardAndResume is the training chaos proof: a shard dies
// mid-epoch and training rides it out through view retries and sampling
// degradation; a SIGTERM then checkpoints the session and a resumed run
// completes the schedule.
func TestTrainChaosKillShardAndResume(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.shards = 2
	cfg.workers = 2
	cfg.depth = 4
	cfg.epochs = 2
	cfg.checkpointDir = dir
	cfg.viewRetries = 6 // retry budget spans the 80ms outage below
	cfg.degradeSampling = true
	cfg.batchRetries = 2

	var lc *cluster.LocalCluster
	cfg.onCluster = func(c *cluster.LocalCluster) { lc = c }
	var killOnce, termOnce sync.Once
	cfg.onStep = func(epoch, step int) {
		if epoch == 0 && step == 2 {
			killOnce.Do(func() {
				lc.StopShard(1)
				time.AfterFunc(80*time.Millisecond, func() { lc.RestartShard(1) })
			})
		}
		if epoch == 1 && step == 1 {
			termOnce.Do(func() {
				syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
				time.Sleep(50 * time.Millisecond)
			})
		}
	}
	var out strings.Builder
	if err := run(cfg, &out); err != nil {
		t.Fatalf("chaos run failed: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "epoch 0:") {
		t.Fatalf("epoch 0 did not complete through the shard outage:\n%s", got)
	}
	if !strings.Contains(got, "interrupted: drained batch, wrote final checkpoint") {
		t.Fatalf("no graceful shutdown after chaos:\n%s", got)
	}

	st, _, err := checkpoint.LoadLatest(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifest.Epoch != 1 || st.Manifest.Step < 1 {
		t.Fatalf("manifest = epoch %d step %d, want epoch 1 step >= 1",
			st.Manifest.Epoch, st.Manifest.Step)
	}

	// Resume against a fresh (healthy) cluster and finish the schedule.
	cfg.onCluster = nil
	cfg.onStep = nil
	cfg.resume = true
	var out2 strings.Builder
	if err := run(cfg, &out2); err != nil {
		t.Fatalf("resume after chaos failed: %v\n%s", err, out2.String())
	}
	got2 := out2.String()
	for _, want := range []string{"resumed from", "epoch 1:", "trained", "view: retries=", "checkpoint: saves="} {
		if !strings.Contains(got2, want) {
			t.Fatalf("post-chaos output missing %q:\n%s", want, got2)
		}
	}
}
