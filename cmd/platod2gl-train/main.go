// Command platod2gl-train runs distributed GNN training end to end: it
// builds a synthetic homophilous classification graph, loads it into a
// storage backend, and trains a two-layer GraphSAGE classifier through the
// async prefetching mini-batch pipeline (internal/pipeline), reporting
// per-epoch loss/accuracy plus prefetch-stall and RPC-coalescing metrics.
//
// Backends (pick one):
//
//	-local            train against an in-process store (no RPC)
//	-shards N         spin up N in-process graph servers and train over RPC
//	-servers a,b,c    train against live platod2gl-server processes
//
// Usage:
//
//	platod2gl-train -local -nodes 2000 -epochs 5
//	platod2gl-train -shards 4 -workers 4 -depth 8
//	platod2gl-train -servers :7090,:7091 -epochs 3
//
// -sample-delay injects per-call view latency to demonstrate how pipeline
// depth/workers hide storage waits (compare -workers 1 vs -workers 8).
//
// Resilience (see docs/OPERATIONS.md, "Training resilience"):
//
//	-checkpoint-dir d     write durable checkpoints into d
//	-checkpoint-every N   checkpoint after every N epochs (default 1)
//	-checkpoint-keep K    retain the K newest checkpoints (default 3)
//	-resume               resume from the newest usable checkpoint in d
//	-view-retries R       retry transient view errors R extra times
//	-degrade-sampling     answer retry-exhausted sampling with self-loops
//	-batch-retries B      rebuild a failed batch up to B times
//
// SIGTERM (or Ctrl-C) drains the batch being trained, writes a final
// checkpoint, and exits cleanly; a later -resume run continues mid-epoch.
// See docs/TRAINING.md for the full walkthrough.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"platod2gl/internal/checkpoint"
	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/obs"
	"platod2gl/internal/pipeline"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// config collects every knob so tests can drive run directly.
type config struct {
	local   bool
	shards  int
	servers string

	nodes   int
	classes int
	dim     int
	hidden  int
	degree  int

	epochs int
	batch  int
	f1, f2 int
	lr     float64
	seed   int64

	depth       int
	workers     int
	sampleDelay time.Duration
	metricsAddr string

	checkpointDir   string
	checkpointEvery int
	checkpointKeep  int
	resume          bool
	viewRetries     int
	degradeSampling bool
	batchRetries    int
	callBudget      time.Duration
	batchBudget     time.Duration

	// Test hooks. onCluster receives the in-process cluster built for
	// -shards (chaos tests stop/restart shards through it); onStep fires
	// after every trained mini-batch with the epoch and the 1-based count of
	// batches applied so far this epoch.
	onCluster func(*cluster.LocalCluster)
	onStep    func(epoch, step int)
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.local, "local", false, "train against an in-process store (no RPC)")
	flag.IntVar(&cfg.shards, "shards", 0, "spin up this many in-process graph servers and train over RPC")
	flag.StringVar(&cfg.servers, "servers", "", "comma-separated addresses of live graph servers")
	flag.IntVar(&cfg.nodes, "nodes", 2000, "synthetic graph size")
	flag.IntVar(&cfg.classes, "classes", 4, "number of classes")
	flag.IntVar(&cfg.dim, "dim", 16, "feature dimension")
	flag.IntVar(&cfg.hidden, "hidden", 32, "hidden layer width")
	flag.IntVar(&cfg.degree, "degree", 8, "out-edges per vertex")
	flag.IntVar(&cfg.epochs, "epochs", 5, "training epochs")
	flag.IntVar(&cfg.batch, "batch", 64, "mini-batch size")
	flag.IntVar(&cfg.f1, "f1", 8, "hop-1 fanout")
	flag.IntVar(&cfg.f2, "f2", 5, "hop-2 fanout")
	flag.Float64Var(&cfg.lr, "lr", 0.02, "learning rate")
	flag.Int64Var(&cfg.seed, "seed", 1, "RNG seed (data, model init, shuffling)")
	flag.IntVar(&cfg.depth, "depth", 4, "prefetch pipeline depth (batches in flight)")
	flag.IntVar(&cfg.workers, "workers", 2, "concurrent batch builders (1 = deterministic)")
	flag.DurationVar(&cfg.sampleDelay, "sample-delay", 0, "injected per-call view latency (demonstrates overlap)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "HTTP address serving /debug/vars (empty = disabled)")
	flag.StringVar(&cfg.checkpointDir, "checkpoint-dir", "", "directory for durable training checkpoints (empty = disabled)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 1, "checkpoint after every N epochs")
	flag.IntVar(&cfg.checkpointKeep, "checkpoint-keep", 3, "retain the newest N checkpoints")
	flag.BoolVar(&cfg.resume, "resume", false, "resume from the newest checkpoint in -checkpoint-dir")
	flag.IntVar(&cfg.viewRetries, "view-retries", 2, "extra attempts per view call on transient storage errors")
	flag.BoolVar(&cfg.degradeSampling, "degrade-sampling", false, "answer retry-exhausted sampling calls with self-loop batches instead of failing")
	flag.IntVar(&cfg.batchRetries, "batch-retries", 1, "extra build attempts per failed mini-batch")
	flag.DurationVar(&cfg.callBudget, "call-budget", 0, "end-to-end deadline per view call, propagated to servers (0 = none)")
	flag.DurationVar(&cfg.batchBudget, "batch-budget", 0, "total wall-clock cap per mini-batch build across retries (0 = none)")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// synthGraph builds the homophilous classification benchmark: features and
// labels in a staging kvstore, plus same-class edges with 25% noise.
func synthGraph(cfg config) (nodes []graph.VertexID, events []graph.Event, feats []float32, labels []int32) {
	staging := kvstore.New()
	dataset.AssignFeatures(staging, 0, uint64(cfg.nodes), cfg.dim, cfg.classes, 2.0, cfg.seed)
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	byClass := make([][]graph.VertexID, cfg.classes)
	nodes = make([]graph.VertexID, cfg.nodes)
	for i := range nodes {
		nodes[i] = graph.MakeVertexID(0, uint64(i))
		l, _ := staging.Label(nodes[i])
		byClass[l] = append(byClass[l], nodes[i])
	}
	for _, id := range nodes {
		l, _ := staging.Label(id)
		peers := byClass[l]
		for j := 0; j < cfg.degree; j++ {
			dst := peers[rng.Intn(len(peers))]
			if rng.Intn(4) == 0 {
				dst = nodes[rng.Intn(cfg.nodes)]
			}
			events = append(events, graph.Event{
				Kind: graph.AddEdge,
				Edge: graph.Edge{Src: id, Dst: dst, Weight: 1},
			})
		}
	}
	return nodes, events, staging.GatherFeatures(nodes, cfg.dim), staging.GatherLabels(nodes)
}

// buildView loads the synthetic graph into the selected backend and returns
// the GraphView to train against, plus the cluster client (nil for -local)
// and a cleanup func.
func buildView(cfg config, nodes []graph.VertexID, events []graph.Event, feats []float32, labels []int32) (view.GraphView, *cluster.Client, func(), error) {
	switch {
	case cfg.local:
		store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}})
		store.ApplyBatch(events)
		attrs := kvstore.New()
		for i, id := range nodes {
			attrs.SetFeatures(id, feats[i*cfg.dim:(i+1)*cfg.dim])
			attrs.SetLabel(id, labels[i])
		}
		opt := sampler.Options{Parallelism: cfg.workers, Seed: cfg.seed}
		return view.NewLocal(store, attrs, opt), nil, func() {}, nil

	case cfg.shards > 0:
		lc := cluster.NewLocalClusterOptions(cfg.shards, cluster.LocalOptions{
			StoreFactory: func(int) (storage.TopologyStore, *kvstore.Store) {
				return storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}}), kvstore.New()
			},
		})
		client := lc.Client()
		if err := loadCluster(client, cfg, nodes, events, feats, labels); err != nil {
			lc.Shutdown()
			return nil, nil, nil, err
		}
		if cfg.onCluster != nil {
			cfg.onCluster(lc)
		}
		return view.NewCluster(client, cfg.seed), client, lc.Shutdown, nil

	case cfg.servers != "":
		addrs := strings.Split(cfg.servers, ",")
		client, err := cluster.Dial(addrs, cluster.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		if m := client.RoutingMap(); m != nil {
			log.Printf("cluster routing: epoch %d, %d logical shards across %d server groups (shards may migrate live; reads re-route transparently)",
				m.Epoch, m.NumShards, m.NumGroups())
		}
		if err := loadCluster(client, cfg, nodes, events, feats, labels); err != nil {
			client.Close()
			return nil, nil, nil, err
		}
		return view.NewCluster(client, cfg.seed), client, func() { client.Close() }, nil
	}
	return nil, nil, nil, fmt.Errorf("pick a backend: -local, -shards N, or -servers a,b,c")
}

// loadCluster pushes topology and attributes to the shards.
func loadCluster(client *cluster.Client, cfg config, nodes []graph.VertexID, events []graph.Event, feats []float32, labels []int32) error {
	if err := client.ApplyBatch(events); err != nil {
		return fmt.Errorf("push edges: %w", err)
	}
	if err := client.SetFeatures(nodes, cfg.dim, feats, labels); err != nil {
		return fmt.Errorf("push features: %w", err)
	}
	return nil
}

// epochRNG derives the shuffle RNG for one epoch from the base seed alone,
// so a resumed run reproduces the exact mini-batch sequence of every epoch
// without replaying the preceding ones.
func epochRNG(seed int64, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(seed + 3 + int64(epoch)*1_000_003))
}

// publishOnce registers an expvar only if the name is still free — run may
// be invoked repeatedly in one process (tests) and Publish panics on
// duplicates.
func publishOnce(name string, v expvar.Var) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, v)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.epochs <= 0 || cfg.batch <= 0 || cfg.nodes < 10 {
		return fmt.Errorf("need epochs > 0, batch > 0, nodes >= 10")
	}
	if cfg.checkpointEvery <= 0 {
		cfg.checkpointEvery = 1
	}
	if cfg.checkpointKeep <= 0 {
		cfg.checkpointKeep = 3
	}
	nodes, events, feats, labels := synthGraph(cfg)
	gv, client, cleanup, err := buildView(cfg, nodes, events, feats, labels)
	if err != nil {
		return err
	}
	defer cleanup()

	// Budget and priority ride the raw cluster view, under every wrapper:
	// the trainer's own calls stay interactive while the pipeline's batch
	// builders are tagged as prefetch, so an overloaded server sheds the
	// builders' traffic first. The prefetch twin shares the seed cursor, so
	// determinism and checkpoint SamplePos are unaffected.
	var prefetchBase view.GraphView
	if cv, ok := gv.(*view.Cluster); ok {
		if cfg.callBudget > 0 {
			cv.SetCallBudget(cfg.callBudget)
		}
		prefetchBase = cv.Prefetch()
	}

	pm := &pipeline.Metrics{}
	vm := &view.Metrics{}
	cm := &checkpoint.Metrics{}
	vcm := &view.CallMetrics{}
	wrapView := func(g view.GraphView) view.GraphView {
		if cfg.sampleDelay > 0 {
			g = view.WithLatency(g, cfg.sampleDelay)
		}
		if cfg.viewRetries > 0 || cfg.degradeSampling {
			rcfg := view.ResilientConfig{
				Attempts:        cfg.viewRetries + 1,
				DegradeSampling: cfg.degradeSampling,
				Metrics:         vm,
			}
			if client != nil {
				rcfg.Transient = cluster.Transient
			}
			g = view.NewResilient(g, rcfg)
		}
		if cfg.metricsAddr != "" {
			// Per-call view latency sits outermost so it measures what the
			// trainer experiences, retries included.
			g = view.Instrument(g, vcm)
		}
		return g
	}
	gv = wrapView(gv)
	var prefetchGV view.GraphView
	if prefetchBase != nil {
		prefetchGV = wrapView(prefetchBase)
	}
	if cfg.metricsAddr != "" {
		reg := obs.NewRegistry()
		pm.Register(reg)
		vm.Register(reg)
		cm.Register(reg)
		vcm.Register(reg)
		if client != nil {
			client.Metrics().Register(reg)
		}
		publishOnce("platod2gl_pipeline", pm.Expvar())
		publishOnce("platod2gl_view", vm.Expvar())
		publishOnce("platod2gl_checkpoint", cm.Expvar())
		if client != nil {
			publishOnce("platod2gl_cluster", client.Metrics().Expvar())
		}
		// A dedicated mux + server: /metrics (Prometheus) and /debug/vars
		// (expvar) side by side, and a shutdown on exit so repeated runs in
		// one process never leak the listener.
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		metricsSrv := &http.Server{Addr: cfg.metricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := metricsSrv.Shutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}()
	}

	rng := rand.New(rand.NewSource(cfg.seed + 2))
	model := gnn.NewModel(cfg.dim, cfg.hidden, cfg.classes, rng)
	tr := gnn.NewTrainer(model, gv, 0, cfg.f1, cfg.f2, cfg.lr)
	// The pipeline's batch builders load through the prefetch-class view when
	// one exists; SampleBatch only reads the trainer, so the twin may share
	// its model and optimizer.
	loadBatch := tr.SampleBatch
	if prefetchGV != nil {
		ltr := *tr
		ltr.View = prefetchGV
		loadBatch = ltr.SampleBatch
	}
	split := cfg.nodes * 4 / 5
	train, test := nodes[:split], nodes[split:]

	// saveCkpt persists the full training state under the given manifest
	// position. Epoch/Step name where training resumes FROM (Step batches of
	// Epoch already applied).
	saveCkpt := func(epoch, step int) error {
		if cfg.checkpointDir == "" {
			return nil
		}
		st := checkpoint.Capture(checkpoint.Manifest{
			Epoch:     epoch,
			Step:      step,
			Seed:      cfg.seed,
			SamplePos: view.SamplePos(gv),
		}, model.Params(), tr.Opt)
		path, err := checkpoint.Save(cfg.checkpointDir, st, checkpoint.SaveOptions{Keep: cfg.checkpointKeep, Metrics: cm})
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintf(out, "checkpoint: wrote %s (epoch %d step %d)\n", path, epoch, step)
		return nil
	}

	startEpoch, startStep := 0, 0
	if cfg.resume {
		if cfg.checkpointDir == "" {
			return fmt.Errorf("-resume needs -checkpoint-dir")
		}
		st, path, err := checkpoint.LoadLatest(cfg.checkpointDir, cm)
		switch {
		case err == nil:
			if st.Manifest.Seed != cfg.seed {
				return fmt.Errorf("checkpoint %s was written with -seed %d, run has -seed %d", path, st.Manifest.Seed, cfg.seed)
			}
			if err := st.Apply(model.Params(), tr.Opt); err != nil {
				return fmt.Errorf("resume from %s: %w", path, err)
			}
			view.SetSamplePos(gv, st.Manifest.SamplePos)
			startEpoch, startStep = st.Manifest.Epoch, st.Manifest.Step
			fmt.Fprintf(out, "resumed from %s: epoch %d step %d\n", path, startEpoch, startStep)
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			fmt.Fprintf(out, "no checkpoint in %s, starting fresh\n", cfg.checkpointDir)
		default:
			return fmt.Errorf("resume: %w", err)
		}
	}

	backend := "local"
	if client != nil {
		backend = fmt.Sprintf("cluster(%d shards)", client.NumServers())
	}
	fmt.Fprintf(out, "training on %s: %d nodes, %d edges, %d classes, batch %d, pipeline depth %d x %d workers\n",
		backend, cfg.nodes, len(events), cfg.classes, cfg.batch, cfg.depth, cfg.workers)
	if startEpoch >= cfg.epochs {
		fmt.Fprintf(out, "checkpoint already at epoch %d, nothing to train\n", startEpoch)
		return nil
	}

	// SIGTERM/interrupt drains the in-flight batch, checkpoints, and exits
	// cleanly: an orchestrator's stop signal costs at most one mini-batch.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)

	pcfg := pipeline.Config{Depth: cfg.depth, Workers: cfg.workers, Retries: cfg.batchRetries, BatchBudget: cfg.batchBudget, Metrics: pm}
	start := time.Now()
	for e := startEpoch; e < cfg.epochs; e++ {
		batches := pipeline.SeedBatches(train, cfg.batch, epochRNG(cfg.seed, e))
		skip := 0
		if e == startEpoch && startStep > 0 {
			if skip = startStep; skip > len(batches) {
				skip = len(batches)
			}
			fmt.Fprintf(out, "epoch %d: skipping %d already-trained batches\n", e, skip)
		}
		p := pipeline.Run(batches[skip:], loadBatch, pcfg)
		totalLoss, done := 0.0, 0
		interrupted := false
		pmBefore := pm.Snapshot()
		var trainTime time.Duration
	epoch:
		for {
			select {
			case <-sigCh:
				interrupted = true
				break epoch
			default:
			}
			r, ok := p.Next()
			if !ok {
				break
			}
			if r.Err != nil {
				p.Stop()
				return fmt.Errorf("epoch %d: %w", e, r.Err)
			}
			stepStart := time.Now()
			totalLoss += tr.TrainStep(r.Batch)
			trainTime += time.Since(stepStart)
			done++
			if cfg.onStep != nil {
				cfg.onStep(e, skip+done)
			}
		}
		if interrupted {
			p.Close() // abandon prefetch without waiting out in-flight builds
			p.Stop()
			if err := saveCkpt(e, skip+done); err != nil {
				return err
			}
			fmt.Fprintf(out, "interrupted: drained batch, wrote final checkpoint at epoch %d step %d\n", e, skip+done)
			return nil
		}
		p.Stop()
		trained := skip + done
		meanLoss := 0.0
		if done > 0 {
			meanLoss = totalLoss / float64(done)
		}
		evalStart := time.Now()
		acc, err := tr.Accuracy(test)
		if err != nil {
			return fmt.Errorf("epoch %d accuracy: %w", e, err)
		}
		evalTime := time.Since(evalStart)
		fmt.Fprintf(out, "epoch %d: loss %.4f acc %.3f (%d batches)\n", e, meanLoss, acc, trained)
		// Stage breakdown: build/stall come from the pipeline's counters
		// (deltas over this epoch), train/eval are measured directly. Build
		// overlaps train by design — a healthy run shows stall << build.
		pmAfter := pm.Snapshot()
		fmt.Fprintf(out, "epoch %d stages: build %s stall %s train %s eval %s\n", e,
			time.Duration(pmAfter.BuildNanos-pmBefore.BuildNanos).Round(time.Microsecond),
			time.Duration(pmAfter.StallNanos-pmBefore.StallNanos).Round(time.Microsecond),
			trainTime.Round(time.Microsecond), evalTime.Round(time.Microsecond))
		if (e+1)%cfg.checkpointEvery == 0 || e == cfg.epochs-1 {
			if err := saveCkpt(e+1, 0); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(out, "trained %d epochs in %s\n", cfg.epochs-startEpoch, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "pipeline: %s\n", pm.Snapshot())
	if cfg.viewRetries > 0 || cfg.degradeSampling {
		fmt.Fprintf(out, "view: %s\n", vm.Snapshot())
	}
	if cfg.checkpointDir != "" {
		fmt.Fprintf(out, "checkpoint: %s\n", cm.Snapshot())
	}
	if client != nil {
		s := client.Metrics().Snapshot()
		fmt.Fprintf(out, "cluster: %s\n", s)
		fmt.Fprintf(out, "coalescing saved %d duplicate seeds / %d wire bytes\n", s.CoalescedSeeds, s.CoalescedBytes)
	}
	return nil
}
