// Command platod2gl-train runs distributed GNN training end to end: it
// builds a synthetic homophilous classification graph, loads it into a
// storage backend, and trains a two-layer GraphSAGE classifier through the
// async prefetching mini-batch pipeline (internal/pipeline), reporting
// per-epoch loss/accuracy plus prefetch-stall and RPC-coalescing metrics.
//
// Backends (pick one):
//
//	-local            train against an in-process store (no RPC)
//	-shards N         spin up N in-process graph servers and train over RPC
//	-servers a,b,c    train against live platod2gl-server processes
//
// Usage:
//
//	platod2gl-train -local -nodes 2000 -epochs 5
//	platod2gl-train -shards 4 -workers 4 -depth 8
//	platod2gl-train -servers :7090,:7091 -epochs 3
//
// -sample-delay injects per-call view latency to demonstrate how pipeline
// depth/workers hide storage waits (compare -workers 1 vs -workers 8).
// See docs/TRAINING.md for the full walkthrough.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/pipeline"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// config collects every knob so tests can drive run directly.
type config struct {
	local   bool
	shards  int
	servers string

	nodes   int
	classes int
	dim     int
	hidden  int
	degree  int

	epochs int
	batch  int
	f1, f2 int
	lr     float64
	seed   int64

	depth       int
	workers     int
	sampleDelay time.Duration
	metricsAddr string
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.local, "local", false, "train against an in-process store (no RPC)")
	flag.IntVar(&cfg.shards, "shards", 0, "spin up this many in-process graph servers and train over RPC")
	flag.StringVar(&cfg.servers, "servers", "", "comma-separated addresses of live graph servers")
	flag.IntVar(&cfg.nodes, "nodes", 2000, "synthetic graph size")
	flag.IntVar(&cfg.classes, "classes", 4, "number of classes")
	flag.IntVar(&cfg.dim, "dim", 16, "feature dimension")
	flag.IntVar(&cfg.hidden, "hidden", 32, "hidden layer width")
	flag.IntVar(&cfg.degree, "degree", 8, "out-edges per vertex")
	flag.IntVar(&cfg.epochs, "epochs", 5, "training epochs")
	flag.IntVar(&cfg.batch, "batch", 64, "mini-batch size")
	flag.IntVar(&cfg.f1, "f1", 8, "hop-1 fanout")
	flag.IntVar(&cfg.f2, "f2", 5, "hop-2 fanout")
	flag.Float64Var(&cfg.lr, "lr", 0.02, "learning rate")
	flag.Int64Var(&cfg.seed, "seed", 1, "RNG seed (data, model init, shuffling)")
	flag.IntVar(&cfg.depth, "depth", 4, "prefetch pipeline depth (batches in flight)")
	flag.IntVar(&cfg.workers, "workers", 2, "concurrent batch builders (1 = deterministic)")
	flag.DurationVar(&cfg.sampleDelay, "sample-delay", 0, "injected per-call view latency (demonstrates overlap)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "HTTP address serving /debug/vars (empty = disabled)")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// synthGraph builds the homophilous classification benchmark: features and
// labels in a staging kvstore, plus same-class edges with 25% noise.
func synthGraph(cfg config) (nodes []graph.VertexID, events []graph.Event, feats []float32, labels []int32) {
	staging := kvstore.New()
	dataset.AssignFeatures(staging, 0, uint64(cfg.nodes), cfg.dim, cfg.classes, 2.0, cfg.seed)
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	byClass := make([][]graph.VertexID, cfg.classes)
	nodes = make([]graph.VertexID, cfg.nodes)
	for i := range nodes {
		nodes[i] = graph.MakeVertexID(0, uint64(i))
		l, _ := staging.Label(nodes[i])
		byClass[l] = append(byClass[l], nodes[i])
	}
	for _, id := range nodes {
		l, _ := staging.Label(id)
		peers := byClass[l]
		for j := 0; j < cfg.degree; j++ {
			dst := peers[rng.Intn(len(peers))]
			if rng.Intn(4) == 0 {
				dst = nodes[rng.Intn(cfg.nodes)]
			}
			events = append(events, graph.Event{
				Kind: graph.AddEdge,
				Edge: graph.Edge{Src: id, Dst: dst, Weight: 1},
			})
		}
	}
	return nodes, events, staging.GatherFeatures(nodes, cfg.dim), staging.GatherLabels(nodes)
}

// buildView loads the synthetic graph into the selected backend and returns
// the GraphView to train against, plus the cluster client (nil for -local)
// and a cleanup func.
func buildView(cfg config, nodes []graph.VertexID, events []graph.Event, feats []float32, labels []int32) (view.GraphView, *cluster.Client, func(), error) {
	switch {
	case cfg.local:
		store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}})
		store.ApplyBatch(events)
		attrs := kvstore.New()
		for i, id := range nodes {
			attrs.SetFeatures(id, feats[i*cfg.dim:(i+1)*cfg.dim])
			attrs.SetLabel(id, labels[i])
		}
		opt := sampler.Options{Parallelism: cfg.workers, Seed: cfg.seed}
		return view.NewLocal(store, attrs, opt), nil, func() {}, nil

	case cfg.shards > 0:
		client, shutdown := cluster.NewLocalCluster(cfg.shards, func(int) (storage.TopologyStore, *kvstore.Store) {
			return storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}}), kvstore.New()
		})
		if err := loadCluster(client, cfg, nodes, events, feats, labels); err != nil {
			shutdown()
			return nil, nil, nil, err
		}
		return view.NewCluster(client, cfg.seed), client, shutdown, nil

	case cfg.servers != "":
		addrs := strings.Split(cfg.servers, ",")
		client, err := cluster.Dial(addrs, cluster.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		if err := loadCluster(client, cfg, nodes, events, feats, labels); err != nil {
			client.Close()
			return nil, nil, nil, err
		}
		return view.NewCluster(client, cfg.seed), client, func() { client.Close() }, nil
	}
	return nil, nil, nil, fmt.Errorf("pick a backend: -local, -shards N, or -servers a,b,c")
}

// loadCluster pushes topology and attributes to the shards.
func loadCluster(client *cluster.Client, cfg config, nodes []graph.VertexID, events []graph.Event, feats []float32, labels []int32) error {
	if err := client.ApplyBatch(events); err != nil {
		return fmt.Errorf("push edges: %w", err)
	}
	if err := client.SetFeatures(nodes, cfg.dim, feats, labels); err != nil {
		return fmt.Errorf("push features: %w", err)
	}
	return nil
}

func run(cfg config, out io.Writer) error {
	if cfg.epochs <= 0 || cfg.batch <= 0 || cfg.nodes < 10 {
		return fmt.Errorf("need epochs > 0, batch > 0, nodes >= 10")
	}
	nodes, events, feats, labels := synthGraph(cfg)
	gv, client, cleanup, err := buildView(cfg, nodes, events, feats, labels)
	if err != nil {
		return err
	}
	defer cleanup()
	if cfg.sampleDelay > 0 {
		gv = view.WithLatency(gv, cfg.sampleDelay)
	}

	pm := &pipeline.Metrics{}
	if cfg.metricsAddr != "" {
		expvar.Publish("platod2gl_pipeline", pm.Expvar())
		if client != nil {
			expvar.Publish("platod2gl_cluster", client.Metrics().Expvar())
		}
		go func() {
			if err := http.ListenAndServe(cfg.metricsAddr, nil); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	rng := rand.New(rand.NewSource(cfg.seed + 2))
	model := gnn.NewModel(cfg.dim, cfg.hidden, cfg.classes, rng)
	tr := gnn.NewTrainer(model, gv, 0, cfg.f1, cfg.f2, cfg.lr)
	split := cfg.nodes * 4 / 5
	train, test := nodes[:split], nodes[split:]

	backend := "local"
	if client != nil {
		backend = fmt.Sprintf("cluster(%d shards)", client.NumServers())
	}
	fmt.Fprintf(out, "training on %s: %d nodes, %d edges, %d classes, batch %d, pipeline depth %d x %d workers\n",
		backend, cfg.nodes, len(events), cfg.classes, cfg.batch, cfg.depth, cfg.workers)

	pcfg := pipeline.Config{Depth: cfg.depth, Workers: cfg.workers, Metrics: pm}
	start := time.Now()
	for e := 0; e < cfg.epochs; e++ {
		res, err := pipeline.TrainEpoch(tr, tr.SampleBatch, e, train, cfg.batch, rng, pcfg)
		if err != nil {
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		acc, err := tr.Accuracy(test)
		if err != nil {
			return fmt.Errorf("epoch %d accuracy: %w", e, err)
		}
		fmt.Fprintf(out, "epoch %d: loss %.4f acc %.3f (%d batches)\n", e, res.MeanLoss, acc, res.Batches)
	}
	fmt.Fprintf(out, "trained %d epochs in %s\n", cfg.epochs, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(out, "pipeline: %s\n", pm.Snapshot())
	if client != nil {
		s := client.Metrics().Snapshot()
		fmt.Fprintf(out, "cluster: %s\n", s)
		fmt.Fprintf(out, "coalescing saved %d duplicate seeds / %d wire bytes\n", s.CoalescedSeeds, s.CoalescedBytes)
	}
	return nil
}
