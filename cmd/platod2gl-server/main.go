// Command platod2gl-server runs one PlatoD2GL graph server: a samtree-backed
// dynamic topology store plus an attribute store, served over net/rpc. A
// cluster is N of these processes; clients partition sources across them
// hash-by-source (see internal/cluster).
//
// Usage:
//
//	platod2gl-server -addr :7090 -capacity 256
package main

import (
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

func main() {
	var (
		addr     = flag.String("addr", ":7090", "listen address")
		capacity = flag.Int("capacity", core.DefaultCapacity, "samtree node capacity")
		alpha    = flag.Int("alpha", 0, "alpha-split slackness")
		noCP     = flag.Bool("no-compress", false, "disable CP-IDs prefix compression")
		workers  = flag.Int("workers", 0, "batch update workers (0 = all CPUs)")
		snapshot = flag.String("snapshot", "", "snapshot file: loaded at startup if present, written on SIGINT/SIGTERM")
		metrics  = flag.String("metrics-addr", "", "HTTP address serving /debug/vars metrics (empty = disabled)")
		walPath  = flag.String("wal", "", "write-ahead log: replayed at startup, appended per batch")
	)
	flag.Parse()

	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{
			Capacity: *capacity,
			Alpha:    *alpha,
			Compress: !*noCP,
		},
		Workers: *workers,
	})
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := store.Load(f); err != nil {
				log.Fatalf("load snapshot %s: %v", *snapshot, err)
			}
			f.Close()
			log.Printf("loaded snapshot %s: %d edges", *snapshot, store.NumEdges())
		} else if !os.IsNotExist(err) {
			log.Fatalf("open snapshot %s: %v", *snapshot, err)
		}
	}
	svc := cluster.NewService(store, kvstore.New())
	if *walPath != "" {
		// Recovery: replay every complete batch (the snapshot, if any,
		// already restored a prefix; replaying it again is idempotent for
		// inserts and weight updates but not deletes of re-added edges, so
		// with both -snapshot and -wal the snapshot should be taken with a
		// fresh/truncated WAL — see README).
		if _, err := os.Stat(*walPath); err == nil {
			n, err := eventlog.Replay(*walPath, func(_ uint64, events []graph.Event) error {
				store.ApplyBatch(events)
				return nil
			})
			if err != nil {
				log.Fatalf("replay wal %s: %v", *walPath, err)
			}
			log.Printf("replayed %d wal batches: %d edges", n, store.NumEdges())
		}
		wal, err := eventlog.Create(*walPath)
		if err != nil {
			log.Fatalf("open wal %s: %v", *walPath, err)
		}
		svc.SetBatchHook(func(events []graph.Event) error {
			_, err := wal.Append(events)
			return err
		})
	}
	srv := cluster.NewServer(svc)

	if *snapshot != "" {
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			tmp := *snapshot + ".tmp"
			f, err := os.Create(tmp)
			if err != nil {
				log.Fatalf("create snapshot %s: %v", tmp, err)
			}
			if err := store.Save(f); err != nil {
				log.Fatalf("save snapshot: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("close snapshot: %v", err)
			}
			if err := os.Rename(tmp, *snapshot); err != nil {
				log.Fatalf("rename snapshot: %v", err)
			}
			log.Printf("saved snapshot %s: %d edges", *snapshot, store.NumEdges())
			os.Exit(0)
		}()
	}

	if *metrics != "" {
		expvar.Publish("platod2gl_edges", expvar.Func(func() any { return store.NumEdges() }))
		expvar.Publish("platod2gl_memory_bytes", expvar.Func(func() any { return store.MemoryBytes() }))
		go func() {
			if err := http.ListenAndServe(*metrics, nil); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics at http://%s/debug/vars", *metrics)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	log.Printf("platod2gl-server listening on %s (capacity=%d alpha=%d compress=%v)",
		lis.Addr(), *capacity, *alpha, !*noCP)
	srv.Serve(lis)
}
