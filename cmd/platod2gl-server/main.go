// Command platod2gl-server runs one PlatoD2GL graph server: a samtree-backed
// dynamic topology store plus an attribute store, served over net/rpc. A
// cluster is N of these processes; clients partition sources across them
// hash-by-source (see internal/cluster).
//
// Usage:
//
//	platod2gl-server -addr :7090 -capacity 256
//
// Durability (see docs/OPERATIONS.md): -snapshot loads at boot and saves on
// SIGINT/SIGTERM, then atomically truncates the WAL so a restart never
// replays batches the snapshot already contains; -wal appends every applied
// batch with its at-most-once identity, and -wal-sync picks the fsync
// policy (always, interval, never).
//
// Replication (see internal/cluster/replica.go): run R identical servers
// per logical shard and point clients at all of them with -replicas R on
// the loadgen side. A server rejoining its group after a crash or
// replacement starts with -catchup-from <live-replica-addr>: local
// snapshot/WAL state is discarded (the group may have deleted edges this
// replica still holds), the store is rebuilt from the peer's snapshot plus
// its WAL tail while reads fail over elsewhere, and once converged a fresh
// local snapshot is written so durability matches the synced state.
//
// Elasticity (see docs/OPERATIONS.md "Elasticity"): -advertise is the
// address this server appears under in shard maps (required for -join and
// for receiving migrations); -join seed1,seed2 registers this empty server
// with a running routed cluster as a new group owning no shards — follow
// with `platod2gl-rebalance rebalance` (or use `grow`, which does both) to
// migrate shards onto it live.
package main

import (
	"context"
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/core"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/obs"
	"platod2gl/internal/storage"
)

// saveSnapshot writes the store to path atomically (tmp file + rename). The
// caller quiesces the service first so the bytes describe one batch boundary.
func saveSnapshot(store *storage.DynamicStore, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := store.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	var (
		addr      = flag.String("addr", ":7090", "listen address")
		capacity  = flag.Int("capacity", core.DefaultCapacity, "samtree node capacity")
		alpha     = flag.Int("alpha", 0, "alpha-split slackness")
		noCP      = flag.Bool("no-compress", false, "disable CP-IDs prefix compression")
		workers   = flag.Int("workers", 0, "batch update workers (0 = all CPUs)")
		snapshot  = flag.String("snapshot", "", "snapshot file: loaded at startup if present, written on SIGINT/SIGTERM")
		metrics   = flag.String("metrics-addr", "", "HTTP address serving /debug/vars metrics (empty = disabled)")
		walPath   = flag.String("wal", "", "write-ahead log: replayed at startup, appended per batch")
		walSync   = flag.String("wal-sync", "always", "WAL fsync policy: always (fsync per batch), interval (background fsync), never (OS decides)")
		walEvery  = flag.Duration("wal-sync-interval", 200*time.Millisecond, "fsync period for -wal-sync=interval")
		catchup   = flag.String("catchup-from", "", "live replica address to rebuild from at boot; local snapshot/WAL are discarded first")
		catchupT  = flag.Duration("catchup-call-timeout", 30*time.Second, "per-RPC timeout for catch-up snapshot/WAL-tail calls")
		advertise = flag.String("advertise", "", "address this server appears under in shard maps (host:port reachable by peers and clients; default: -addr)")
		join      = flag.String("join", "", "comma-separated seed server addresses of a routed cluster to join as a new, empty server group")
		scrubInt  = flag.Duration("scrub-interval", 0, "anti-entropy scrub cadence (0 = no background scrubbing; on-demand Scrub RPC stays available)")
		scrubPeer = flag.String("scrub-peers", "", "comma-separated replica-group addresses to compare state digests against (may include this server)")
		scrubFix  = flag.Bool("scrub-auto-repair", true, "let a scrub round that finds this replica diverged or corrupt rebuild it from a healthy peer")

		admitMax   = flag.Int("admit-max", cluster.DefaultAdmission().MaxConcurrent, "max concurrently served requests before prioritized queueing kicks in (0 disables admission control)")
		admitQueue = flag.Int("admit-queue", 0, "max queued requests awaiting admission (0 = 2x -admit-max)")
		admitWait  = flag.Duration("admit-queue-wait", cluster.DefaultAdmission().MaxQueueWait, "max time a request may wait for admission before being shed")
		maxConns   = flag.Int("max-conns", cluster.DefaultServerLimits().MaxConns, "max concurrent client connections (0 = unlimited)")
		maxHs      = flag.Int("max-handshakes", cluster.DefaultServerLimits().MaxHandshakes, "max concurrent in-flight connection handshakes (0 = unlimited)")
		hsTimeout  = flag.Duration("handshake-timeout", cluster.DefaultServerLimits().HandshakeTimeout, "per-connection handshake deadline (0 = none)")
	)
	flag.Parse()
	if *join != "" && *advertise == "" {
		log.Fatalf("-join requires -advertise (the address the cluster will route to this server)")
	}
	switch *walSync {
	case "always", "interval", "never":
	default:
		log.Fatalf("invalid -wal-sync %q (always, interval, never)", *walSync)
	}

	// Storage op histograms only when there is an endpoint to scrape them —
	// a nil Metrics keeps the samtree hot path clock-free.
	var storeMetrics *storage.Metrics
	if *metrics != "" {
		storeMetrics = &storage.Metrics{}
	}
	store := storage.NewDynamicStore(storage.Options{
		Tree: core.Options{
			Capacity: *capacity,
			Alpha:    *alpha,
			Compress: !*noCP,
		},
		Workers: *workers,
		Metrics: storeMetrics,
	})
	if *catchup != "" {
		// A rejoining replica rebuilds from its live sibling, not from its
		// own stale history: the group may have deleted edges this replica
		// still holds, and Load/replay merge rather than replace.
		if *snapshot != "" {
			os.Remove(*snapshot)
		}
		if *walPath != "" {
			os.Remove(*walPath)
		}
	}
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := store.Load(f); err != nil {
				log.Fatalf("load snapshot %s: %v", *snapshot, err)
			}
			f.Close()
			log.Printf("loaded snapshot %s: %d edges", *snapshot, store.NumEdges())
		} else if !os.IsNotExist(err) {
			log.Fatalf("open snapshot %s: %v", *snapshot, err)
		}
	}
	svc := cluster.NewService(store, kvstore.New())
	cm := &cluster.Metrics{}
	svc.SetMetrics(cm)
	// A server must know which map address is "me" to answer ownership
	// checks once routing is installed. Fall back to the listen address —
	// it matches what operators pass to -servers in the common case. Pass
	// -advertise explicitly when -addr is not the reachable form (e.g.
	// ":7191" behind NAT).
	if *advertise == "" {
		*advertise = *addr
	}
	svc.SetAdvertise(*advertise)
	// Migrations pull shard state from the source by address; resolve over TCP.
	svc.SetDialResolver(func(a string) cluster.Dialer { return cluster.TCPDialer(a, *catchupT) })
	var wal *eventlog.Writer
	if *walPath != "" {
		// Recovery: the snapshot (if any) restored a prefix and truncated
		// the WAL on its way out (see the shutdown path below), so the WAL
		// holds only batches past the snapshot. Replay them, and rebuild
		// the at-most-once dedup table from each batch's identity so a
		// client retry that straddles the restart is not double-applied.
		if _, err := os.Stat(*walPath); err == nil {
			n, err := eventlog.ReplayBatches(*walPath, func(rec eventlog.BatchRecord) error {
				store.ApplyBatch(rec.Events)
				svc.MarkApplied(rec.ClientID, rec.ClientSeq)
				return nil
			})
			if err != nil {
				log.Fatalf("replay wal %s: %v", *walPath, err)
			}
			log.Printf("replayed %d wal batches: %d edges", n, store.NumEdges())
		}
		var err error
		wal, err = eventlog.Create(*walPath)
		if err != nil {
			log.Fatalf("open wal %s: %v", *walPath, err)
		}
		syncAlways := *walSync == "always"
		svc.SetBatchHook(func(clientID, seq uint64, events []graph.Event) error {
			if _, err := wal.AppendBatch(clientID, seq, events); err != nil {
				return err
			}
			if syncAlways {
				// An acknowledged batch must survive a crash: fsync before
				// the apply so the client's success reply implies
				// durability.
				return wal.Sync()
			}
			return nil
		})
		if *walSync == "interval" {
			go func() {
				tick := time.NewTicker(*walEvery)
				defer tick.Stop()
				for range tick.C {
					if err := wal.Sync(); err != nil {
						log.Printf("wal sync: %v", err)
						return
					}
				}
			}()
		}
		// With a WAL this server can seed a rejoining replica: FetchSnapshot
		// and FetchWALTail become serveable.
		svc.EnableSync(wal)
	}
	// Anti-entropy: a Scrubber is always installed (the Scrub RPC lets
	// `platod2gl-rebalance verify` trigger on-demand rounds); the background
	// loop only runs when -scrub-interval is set. Every round re-verifies the
	// on-disk WAL and snapshot CRCs, and with -scrub-peers also compares
	// state digests across the replica group.
	var scrubPeers []string
	if *scrubPeer != "" {
		scrubPeers = strings.Split(*scrubPeer, ",")
	}
	scrub := cluster.NewScrubber(svc, cluster.ScrubConfig{
		Interval:     *scrubInt,
		Self:         *advertise,
		Peers:        scrubPeers,
		WALPath:      *walPath,
		SnapshotPath: *snapshot,
		AutoRepair:   *scrubFix,
		Metrics:      cm,
		Logf:         log.Printf,
		PostRepair: func() error {
			// A repaired store must also be what disk recovers to: persist it
			// and truncate the WAL (which may itself have been the corrupt
			// artifact) under one quiesce.
			resume := svc.Pause()
			defer resume()
			if *snapshot != "" {
				if err := saveSnapshot(store, *snapshot); err != nil {
					return err
				}
			}
			if wal != nil {
				return wal.Reset()
			}
			return nil
		},
	})
	svc.SetScrubber(scrub)
	if *scrubInt > 0 {
		scrub.Start()
		log.Printf("anti-entropy scrubbing every %v (peers=%q auto-repair=%v)", *scrubInt, *scrubPeer, *scrubFix)
	}
	srv := cluster.NewServer(svc)
	srv.SetAdmission(cluster.AdmissionConfig{
		MaxConcurrent: *admitMax,
		MaxQueue:      *admitQueue,
		MaxQueueWait:  *admitWait,
	})
	srv.SetLimits(cluster.ServerLimits{
		MaxConns:         *maxConns,
		MaxHandshakes:    *maxHs,
		HandshakeTimeout: *hsTimeout,
	})

	// Metrics endpoint: one registry serving Prometheus text at /metrics and
	// the legacy expvar JSON at /debug/vars, on a dedicated http.Server so
	// shutdown can close the listener cleanly instead of leaking it.
	var metricsSrv *http.Server
	if *metrics != "" {
		reg := obs.NewRegistry()
		cm.Register(reg)
		storeMetrics.Register(reg)
		reg.GaugeFunc("platod2gl_store_edges", "Current edge count across all relations.", nil,
			func() float64 { return float64(store.NumEdges()) })
		reg.GaugeFunc("platod2gl_store_memory_bytes", "Structural memory footprint of the store.", nil,
			func() float64 { return float64(store.MemoryBytes()) })
		reg.GaugeFunc("platod2gl_sync_ready", "1 when this replica serves reads (not catching up).", nil,
			func() float64 {
				if svc.Ready() {
					return 1
				}
				return 0
			})
		// Keep the established /debug/vars names alongside the registry.
		expvar.Publish("platod2gl_edges", expvar.Func(func() any { return store.NumEdges() }))
		expvar.Publish("platod2gl_memory_bytes", expvar.Func(func() any { return store.MemoryBytes() }))
		expvar.Publish("platod2gl_cluster", cm.Expvar())
		expvar.Publish("platod2gl_storage", storeMetrics.Expvar())
		expvar.Publish("platod2gl_sync_ready", expvar.Func(func() any { return svc.Ready() }))
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		metricsSrv = &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics at http://%s/metrics (Prometheus) and /debug/vars (expvar)", *metrics)
	}

	if *catchup != "" {
		// Hold writes (rejected, then parked near convergence) and reads
		// (fail over to live replicas) until the store matches the group.
		svc.BeginCatchUp()
		peerAddr := *catchup
		go func() {
			dial := func() (net.Conn, error) { return net.DialTimeout("tcp", peerAddr, 10*time.Second) }
			start := time.Now()
			if err := cluster.SyncFromPeer(svc, dial, cluster.SyncOptions{CallTimeout: *catchupT, Metrics: cm}); err != nil {
				log.Fatalf("catch-up from %s: %v", peerAddr, err)
			}
			log.Printf("caught up from %s in %v: %d edges", peerAddr, time.Since(start).Round(time.Millisecond), store.NumEdges())
			if *snapshot != "" {
				// The peer's snapshot never touched our disk and the local WAL
				// holds only the tail, so persist the full synced state and
				// truncate the WAL to match — otherwise a crash now would
				// recover just the tail.
				resume := svc.Pause()
				err := saveSnapshot(store, *snapshot)
				if err == nil && wal != nil {
					err = wal.Reset()
				}
				resume()
				if err != nil {
					log.Fatalf("post-catch-up snapshot %s: %v", *snapshot, err)
				}
				log.Printf("saved post-catch-up snapshot %s: %d edges", *snapshot, store.NumEdges())
			}
		}()
	}

	// One shutdown path for SIGINT/SIGTERM: close the metrics listener
	// first (it must not outlive the process's useful life), then persist
	// the snapshot if configured.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		// Stop scrubbing first: a repair racing the final snapshot would
		// tear the durable state this handler is about to write.
		scrub.Stop()
		// Unpark any write goroutines gated for a migration cutover — the
		// migration dies with this process, and a parked client call must
		// get its error before the listener goes away.
		svc.ReleaseAllShards()
		if metricsSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := metricsSrv.Shutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
			cancel()
		}
		if *snapshot != "" {
			// Quiesce: drain in-flight batches and block new ones so the
			// snapshot and the truncated WAL describe the same state.
			svc.Pause()
			if err := saveSnapshot(store, *snapshot); err != nil {
				log.Fatalf("save snapshot %s: %v", *snapshot, err)
			}
			log.Printf("saved snapshot %s: %d edges", *snapshot, store.NumEdges())
			if wal != nil {
				// The snapshot now contains every applied batch; truncate
				// the WAL atomically so restart does not re-apply them
				// (deletes of re-added edges are not idempotent).
				if err := wal.Reset(); err != nil {
					log.Fatalf("truncate wal after snapshot: %v", err)
				}
				log.Printf("truncated wal %s", *walPath)
			}
		}
		os.Exit(0)
	}()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	if *join != "" {
		// Register with the running cluster once we are serving: fetch the
		// newest shard map from the seeds and push an epoch+1 map that adds
		// this server as an empty group. Shards arrive later, via a
		// rebalance — joining never moves data by itself.
		seeds := strings.Split(*join, ",")
		self := *advertise
		go func() {
			time.Sleep(200 * time.Millisecond) // let Serve pick up the listener
			d := &cluster.Driver{Logf: log.Printf, Metrics: cm}
			m, err := d.FetchMap(seeds)
			if err != nil {
				log.Fatalf("join %v: %v", seeds, err)
			}
			if m.GroupOf(self) >= 0 {
				log.Printf("already a member of the cluster at epoch %d", m.Epoch)
				return
			}
			next, err := d.AddServer(m, []string{self})
			if err != nil {
				log.Fatalf("join %v: %v", seeds, err)
			}
			log.Printf("joined cluster at routing epoch %d as empty group %d; run `platod2gl-rebalance -servers %s rebalance` to receive shards",
				next.Epoch, next.NumGroups()-1, strings.Join(next.Servers, ","))
		}()
	}
	log.Printf("platod2gl-server listening on %s (capacity=%d alpha=%d compress=%v wal-sync=%s)",
		lis.Addr(), *capacity, *alpha, !*noCP, *walSync)
	srv.Serve(lis)
}
