module platod2gl

go 1.22
