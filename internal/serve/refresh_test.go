package serve

import (
	"context"
	"testing"
	"time"

	"sync/atomic"

	"platod2gl/internal/graph"
	"platod2gl/internal/view"
)

// countingSource is a hand-cranked ChangeSource: tests bump a shard's
// digest to simulate churn. Atomic so a live Run loop can read while the
// test writes.
type countingSource struct {
	digests []atomic.Uint64
}

func newCountingSource(shards int) *countingSource {
	return &countingSource{digests: make([]atomic.Uint64, shards)}
}

func (c *countingSource) bump(shard int) { c.digests[shard].Add(1) }

func (c *countingSource) Digests(context.Context) ([]uint64, error) {
	out := make([]uint64, len(c.digests))
	for i := range c.digests {
		out[i] = c.digests[i].Load()
	}
	return out, nil
}

func newTestRefresher(t *testing.T, f *fixture, e *Engine, m *Metrics) (*Refresher, *countingSource) {
	t.Helper()
	src := newCountingSource(1)
	r, err := NewRefresher(RefreshConfig{Engine: e, Source: src, Interval: time.Hour, Batch: 64, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	return r, src
}

// TestRefresherReembedsOnChange drives the full dirty lifecycle by hand:
// prime, mutate the graph, bump the digest, poll — every vertex of the
// changed (only) shard must be re-embedded, the index must move to the new
// embedding, and the stale gauge must return to zero.
func TestRefresherReembedsOnChange(t *testing.T) {
	f := newFixture(t, 200, 8, 2, 1, 11)
	m := &Metrics{}
	e := f.engine(t, m)
	if _, err := e.Warm(context.Background(), 64); err != nil {
		t.Fatal(err)
	}
	r, src := newTestRefresher(t, f, e, m)
	ctx := context.Background()

	r.poll(ctx) // primes the baseline, marks nothing
	if got := m.EmbeddingsStale.Load(); got != 0 {
		t.Fatalf("stale after prime = %d, want 0", got)
	}

	// Rewire one vertex's neighborhood to the other class and snapshot its
	// current index vector.
	victim := f.ids[0]
	before, ok := e.Index().Vector(uint64(victim))
	if !ok {
		t.Fatalf("victim %v not indexed after warm", victim)
	}
	before = append([]float32(nil), before...)
	vl, _ := f.attrs.Label(victim)
	rewired := 0
	for _, other := range f.ids {
		if ol, _ := f.attrs.Label(other); ol != vl && rewired < 6 {
			f.store.AddEdge(graph.Edge{Src: victim, Dst: other, Weight: 8})
			rewired++
		}
	}

	src.bump(0)
	r.poll(ctx)

	if got := m.Refreshed.Load(); got == 0 {
		t.Fatal("refresher re-embedded nothing after a digest change")
	}
	if got := m.EmbeddingsStale.Load(); got != 0 {
		t.Fatalf("stale after sweep = %d, want 0", got)
	}
	if m.RefreshLag.Count() == 0 {
		t.Fatal("no refresh lag observations recorded")
	}
	after, ok := e.Index().Vector(uint64(victim))
	if !ok {
		t.Fatalf("victim %v evicted by refresh", victim)
	}
	changed := false
	for i := range after {
		if after[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("victim's indexed embedding did not move after its neighborhood changed")
	}

	// A quiet poll (digest unchanged) must not mark anything dirty.
	refreshed := m.Refreshed.Load()
	r.poll(ctx)
	if got := m.Refreshed.Load(); got != refreshed {
		t.Fatalf("quiet poll re-embedded %d vertices", got-refreshed)
	}
}

// sourceFilterView hides chosen vertices from the Sources listing — the
// view-level shape of a vertex leaving the graph.
type sourceFilterView struct {
	view.GraphView
	hide map[graph.VertexID]bool
}

func (v *sourceFilterView) Sources(et graph.EdgeType) ([]graph.VertexID, error) {
	all, err := v.GraphView.Sources(et)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, id := range all {
		if !v.hide[id] {
			kept = append(kept, id)
		}
	}
	return kept, nil
}

// TestRefresherRetiresGoneVertices removes a vertex from the source listing;
// the next changed poll must drop it from the index.
func TestRefresherRetiresGoneVertices(t *testing.T) {
	f := newFixture(t, 120, 8, 2, 0, 13)
	m := &Metrics{}
	fv := &sourceFilterView{GraphView: f.view, hide: map[graph.VertexID]bool{}}
	e, err := New(Config{View: fv, State: f.state, Rel: 0, F1: 4, F2: 3, IndexSeed: 5, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Warm(context.Background(), 64); err != nil {
		t.Fatal(err)
	}
	r, src := newTestRefresher(t, f, e, m)
	ctx := context.Background()
	r.poll(ctx)

	victim := f.ids[5]
	if !e.Index().Contains(uint64(victim)) {
		t.Fatalf("victim %v not indexed", victim)
	}
	fv.hide[victim] = true
	src.bump(0)
	r.poll(ctx)

	if e.Index().Contains(uint64(victim)) {
		t.Fatal("vertex with no remaining edges still indexed after refresh")
	}
	res, err := e.KNNVector(ctx, make([]float32, e.Dim()), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res {
		if h.ID == victim {
			t.Fatal("retired vertex returned from search")
		}
	}
}

// TestRefresherRunLoop exercises the ticker path end to end with a real
// clock: churn lands while the loop runs, and the index must converge
// without any manual poll calls.
func TestRefresherRunLoop(t *testing.T) {
	f := newFixture(t, 150, 8, 2, 0, 17)
	m := &Metrics{}
	e := f.engine(t, m)
	if _, err := e.Warm(context.Background(), 64); err != nil {
		t.Fatal(err)
	}
	src := newCountingSource(1)
	r, err := NewRefresher(RefreshConfig{Engine: e, Source: src, Interval: 10 * time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()

	// Let the loop prime, then churn. The digest bump is racy with the
	// ticker only in timing, not correctness: whichever tick sees it marks.
	time.Sleep(30 * time.Millisecond)
	f.store.AddEdge(graph.Edge{Src: f.ids[1], Dst: f.ids[2], Weight: 3})
	src.bump(0)

	deadline := time.Now().Add(5 * time.Second)
	for m.Refreshed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run loop never refreshed after churn")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit on context cancellation")
	}
	if m.RefreshPolls.Load() < 2 {
		t.Fatalf("RefreshPolls = %d, want >= 2", m.RefreshPolls.Load())
	}
}
