// Package serve is the online inference tier: forward-pass-only GNN
// embedding over a live GraphView, plus k-nearest-neighbor retrieval over an
// in-process HNSW index of those embeddings.
//
// Training (cmd/platod2gl-train) produces checkpoints; serving loads the
// latest one, freezes the weights, and answers two questions about the
// *current* graph: "what is this vertex's embedding right now?" (Embed —
// neighborhoods are re-sampled per request, so topology updates are
// reflected immediately) and "which vertices look like this one?" (KNN over
// the index). A background Refresher (refresh.go) keeps the index from
// going stale as the graph mutates underneath it.
//
// The engine is safe for concurrent use: weights are read-only after New,
// the per-request forward pass runs on gnn's free matrix functions (layer
// objects cache intermediates and are not shareable), and admission is a
// bounded worker pool with a per-request deadline — the same
// budget-and-shed discipline the cluster's RPC tier applies, so an
// overloaded serving process degrades by rejecting, not by collapsing.
package serve

import (
	"context"
	"fmt"
	"math"
	"time"

	"platod2gl/internal/ann"
	"platod2gl/internal/checkpoint"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/view"
)

// model is a frozen 2-layer GraphSAGE parameter set. Unlike gnn.SAGELayer it
// carries no forward caches or gradients, so any number of goroutines can
// run inference against it.
type model struct {
	w1self, w1neigh, b1 *gnn.Matrix
	w2self, w2neigh, b2 *gnn.Matrix
	inDim, hidden       int
	classes             int
}

// modelFromState freezes a training checkpoint into an inference model,
// inferring every dimension from the tensor shapes — serving needs no
// -hidden/-classes flags that could drift from what was actually trained.
// The tensor order is Model.Params(): L1.{Wself,Wneigh,Bias},
// L2.{Wself,Wneigh,Bias}.
func modelFromState(st *checkpoint.State) (*model, error) {
	if len(st.Params) != 6 {
		return nil, fmt.Errorf("serve: checkpoint has %d tensors, a 2-layer SAGE model has 6", len(st.Params))
	}
	mat := func(t checkpoint.Tensor) *gnn.Matrix {
		return gnn.NewMatrixFrom(t.Rows, t.Cols, append([]float32(nil), t.Data...))
	}
	m := &model{
		w1self: mat(st.Params[0]), w1neigh: mat(st.Params[1]), b1: mat(st.Params[2]),
		w2self: mat(st.Params[3]), w2neigh: mat(st.Params[4]), b2: mat(st.Params[5]),
	}
	m.inDim, m.hidden = m.w1self.Rows, m.w1self.Cols
	m.classes = m.b2.Cols
	if m.w1neigh.Rows != m.inDim || m.w1neigh.Cols != m.hidden || m.b1.Cols != m.hidden ||
		m.w2self.Rows != m.hidden || m.w2neigh.Rows != m.hidden {
		return nil, fmt.Errorf("serve: checkpoint tensor shapes are not a consistent 2-layer SAGE model")
	}
	return m, nil
}

// layer applies one frozen SAGE layer with the stateless matrix kernels.
func layer(xSelf, xNeigh, wSelf, wNeigh, bias *gnn.Matrix, relu bool) *gnn.Matrix {
	z := gnn.MatMul(xSelf, wSelf)
	gnn.AddInPlace(z, gnn.MatMul(xNeigh, wNeigh))
	gnn.AddBiasRow(z, bias)
	if relu {
		gnn.ReluInPlace(z)
	}
	return z
}

// Config wires an Engine.
type Config struct {
	// View answers sampling and feature pulls for interactive requests.
	View view.GraphView
	// State is the trained checkpoint to freeze and serve.
	State *checkpoint.State
	// Rel is the relation expanded over both hops; F1/F2 the per-hop
	// fanouts. These should match training — the embedding geometry depends
	// on them.
	Rel    graph.EdgeType
	F1, F2 int
	// Workers bounds concurrent forward passes (default 4). Requests beyond
	// the bound queue until a slot frees or their deadline fires.
	Workers int
	// Timeout is the per-request budget applied when the caller's context
	// has no earlier deadline (default 2s, 0 keeps the default; negative
	// disables).
	Timeout time.Duration
	// IndexSeed seeds the HNSW level generator (reproducible tests).
	IndexSeed int64
	// Metrics receives request counters and latencies (nil = unmetered).
	Metrics *Metrics
}

// Engine computes embeddings and serves k-NN over them.
type Engine struct {
	view    view.GraphView
	mdl     *model
	rel     graph.EdgeType
	f1, f2  int
	sem     chan struct{}
	timeout time.Duration
	index   *ann.Index
	metrics *Metrics
}

// New freezes the checkpoint and builds an empty index sized to the
// embedding dimension. Call Warm (or the Refresher) to populate it.
func New(cfg Config) (*Engine, error) {
	if cfg.View == nil {
		return nil, fmt.Errorf("serve: Config.View is required")
	}
	if cfg.State == nil {
		return nil, fmt.Errorf("serve: Config.State is required")
	}
	mdl, err := modelFromState(cfg.State)
	if err != nil {
		return nil, err
	}
	if cfg.F1 <= 0 || cfg.F2 <= 0 {
		return nil, fmt.Errorf("serve: fanouts must be positive (F1 %d, F2 %d)", cfg.F1, cfg.F2)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	ix, err := ann.New(ann.Config{Dim: mdl.hidden, Seed: cfg.IndexSeed, Metrics: cfg.Metrics.annMetrics()})
	if err != nil {
		return nil, err
	}
	return &Engine{
		view: cfg.View, mdl: mdl, rel: cfg.Rel, f1: cfg.F1, f2: cfg.F2,
		sem: make(chan struct{}, workers), timeout: timeout,
		index: ix, metrics: cfg.Metrics,
	}, nil
}

// Dim is the embedding dimensionality (the model's hidden width).
func (e *Engine) Dim() int { return e.mdl.hidden }

// Classes is the label-space width the checkpoint was trained with.
func (e *Engine) Classes() int { return e.mdl.classes }

// Index exposes the underlying ANN index (for gauges and tests).
func (e *Engine) Index() *ann.Index { return e.index }

// acquire admits the request into the bounded worker pool, returning the
// release func and a possibly deadline-narrowed context.
func (e *Engine) acquire(ctx context.Context) (context.Context, context.CancelFunc, error) {
	cancel := context.CancelFunc(func() {})
	if e.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			ctx, cancel = context.WithTimeout(ctx, e.timeout)
		}
	}
	select {
	case e.sem <- struct{}{}:
		return ctx, cancel, nil
	case <-ctx.Done():
		cancel()
		e.metrics.incShed()
		return nil, nil, fmt.Errorf("serve: request shed waiting for a worker: %w", ctx.Err())
	}
}

func (e *Engine) release() { <-e.sem }

// Embed computes current embeddings for ids: one row per id, L2-normalized,
// Dim() wide. Neighborhoods are sampled from the live view at call time.
func (e *Engine) Embed(ctx context.Context, ids []graph.VertexID) ([][]float32, error) {
	start := time.Now()
	ctx, cancel, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer e.release()
	out, err := e.embedLocked(ctx, e.view, ids)
	e.metrics.observeEmbed(start, err)
	return out, err
}

// embedLocked runs the forward pass; the caller holds a worker slot. v is
// passed explicitly so the refresher can route its sampling through a
// background-priority view without a second pool.
func (e *Engine) embedLocked(ctx context.Context, v view.GraphView, ids []graph.VertexID) ([][]float32, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	layers, err := v.SampleSubgraph(ids, graph.MetaPath{e.rel, e.rel}, []int{e.f1, e.f2})
	if err != nil {
		return nil, fmt.Errorf("serve: sample subgraph: %w", err)
	}
	hop1, hop2 := layers[0], layers[1]
	nodes := make([]graph.VertexID, 0, len(ids)+len(hop1)+len(hop2))
	nodes = append(nodes, ids...)
	nodes = append(nodes, hop1...)
	nodes = append(nodes, hop2...)
	x, err := v.Features(nodes, e.mdl.inDim)
	if err != nil {
		return nil, fmt.Errorf("serve: gather features: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dim := e.mdl.inDim
	nS, n1 := len(ids)*dim, len(hop1)*dim
	xSeeds := gnn.NewMatrixFrom(len(ids), dim, x[:nS])
	xHop1 := gnn.NewMatrixFrom(len(hop1), dim, x[nS:nS+n1])
	xHop2 := gnn.NewMatrixFrom(len(hop2), dim, x[nS+n1:])

	// Layer 1 jointly over [seeds; hop1] against their pooled children —
	// the same dataflow Trainer.Forward uses, minus layer 2's projection to
	// logits: the embedding is the hidden representation, combining each
	// seed's own hidden state with its pooled hop-1 hidden states so two
	// hops of structure land in the vector.
	selfX := gnn.VStack(xSeeds, xHop1)
	neighX := gnn.VStack(gnn.MeanPool(xHop1, e.f1), gnn.MeanPool(xHop2, e.f2))
	h1 := layer(selfX, neighX, e.mdl.w1self, e.mdl.w1neigh, e.mdl.b1, true)
	h1Seeds := gnn.SliceRows(h1, 0, len(ids))
	h1Pooled := gnn.MeanPool(gnn.SliceRows(h1, len(ids), h1.Rows), e.f1)

	out := make([][]float32, len(ids))
	for i := range out {
		row := make([]float32, e.mdl.hidden)
		s, p := h1Seeds.Row(i), h1Pooled.Row(i)
		for j := range row {
			row[j] = 0.5 * (s[j] + p[j])
		}
		normalize(row)
		out[i] = row
	}
	return out, nil
}

// normalize scales v to unit L2 norm in place (zero vectors stay zero).
func normalize(v []float32) {
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range v {
		v[i] *= inv
	}
}

// Result is one k-NN hit.
type Result struct {
	ID   graph.VertexID
	Dist float32
}

// KNN returns the k nearest indexed vertices to id's *current* embedding —
// computed fresh, so a vertex whose neighborhood just changed is queried by
// where it is now, not where the index last saw it. The vertex itself is
// excluded from the hits. The query embedding is returned alongside so HTTP
// callers get both for one forward pass.
func (e *Engine) KNN(ctx context.Context, id graph.VertexID, k int) ([]Result, []float32, error) {
	start := time.Now()
	ctx, cancel, err := e.acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer cancel()
	defer e.release()
	embs, err := e.embedLocked(ctx, e.view, []graph.VertexID{id})
	if err != nil {
		e.metrics.observeKNN(start, err)
		return nil, nil, err
	}
	res, err := e.searchIndex(embs[0], k, id, true)
	e.metrics.observeKNN(start, err)
	return res, embs[0], err
}

// KNNVector searches the index around an externally supplied embedding.
func (e *Engine) KNNVector(ctx context.Context, vec []float32, k int) ([]Result, error) {
	start := time.Now()
	ctx, cancel, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer e.release()
	if err := ctx.Err(); err != nil {
		e.metrics.observeKNN(start, err)
		return nil, err
	}
	res, err := e.searchIndex(vec, k, 0, false)
	e.metrics.observeKNN(start, err)
	return res, err
}

// searchIndex widens the search by one to absorb the excluded self hit.
func (e *Engine) searchIndex(vec []float32, k int, exclude graph.VertexID, hasExclude bool) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("serve: k must be positive, got %d", k)
	}
	hits, err := e.index.Search(vec, k+1)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, k)
	for _, h := range hits {
		if hasExclude && graph.VertexID(h.ID) == exclude {
			continue
		}
		out = append(out, Result{ID: graph.VertexID(h.ID), Dist: h.Dist})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// IndexVertices embeds ids through v and upserts them into the index in one
// worker slot. It is the refresher's unit of work and Warm's inner loop.
func (e *Engine) IndexVertices(ctx context.Context, v view.GraphView, ids []graph.VertexID) error {
	ctx, cancel, err := e.acquire(ctx)
	if err != nil {
		return err
	}
	defer cancel()
	defer e.release()
	embs, err := e.embedLocked(ctx, v, ids)
	if err != nil {
		return err
	}
	for i, id := range ids {
		if err := e.index.Insert(uint64(id), embs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Warm bulk-indexes every source vertex of the serving relation in batches,
// so the index answers from the first query. Returns the number indexed.
func (e *Engine) Warm(ctx context.Context, batch int) (int, error) {
	if batch <= 0 {
		batch = 256
	}
	srcs, err := e.view.Sources(e.rel)
	if err != nil {
		return 0, fmt.Errorf("serve: list sources: %w", err)
	}
	done := 0
	for lo := 0; lo < len(srcs); lo += batch {
		hi := lo + batch
		if hi > len(srcs) {
			hi = len(srcs)
		}
		if err := e.IndexVertices(ctx, e.view, srcs[lo:hi]); err != nil {
			return done, err
		}
		done = hi
	}
	return done, nil
}
