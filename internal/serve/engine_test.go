package serve

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"platod2gl/internal/checkpoint"
	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/gnn"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// fixture is a small trained world: a homophilous graph (edges mostly
// connect same-class vertices), a briefly trained checkpoint over it, and
// the stores to mutate in refresher tests.
type fixture struct {
	store *storage.DynamicStore
	attrs *kvstore.Store
	view  *view.Local
	state *checkpoint.State
	ids   []graph.VertexID
	n     int
	cls   int
}

func newFixture(t *testing.T, n, dim, classes, epochs int, seed int64) *fixture {
	t.Helper()
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Compress: true}, Workers: 2})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, uint64(n), dim, classes, 2.0, seed)
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]graph.VertexID, classes)
	ids := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		id := graph.MakeVertexID(0, uint64(i))
		ids[i] = id
		l, _ := attrs.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	for _, id := range ids {
		l, _ := attrs.Label(id)
		peers := byClass[l]
		for j := 0; j < 6; j++ {
			store.AddEdge(graph.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
	}
	gv := view.NewLocal(store, attrs, sampler.Options{Parallelism: 2, Seed: seed})
	model := gnn.NewModel(dim, 16, classes, rng)
	tr := gnn.NewTrainer(model, gv, 0, 4, 3, 0.02)
	for e := 0; e < epochs; e++ {
		if _, err := tr.TrainEpoch(e, ids, 64, rng); err != nil {
			t.Fatalf("fixture training: %v", err)
		}
	}
	return &fixture{
		store: store, attrs: attrs, view: gv,
		state: checkpoint.Capture(checkpoint.Manifest{Seed: seed}, model.Params(), nil),
		ids:   ids, n: n, cls: classes,
	}
}

func (f *fixture) engine(t *testing.T, m *Metrics) *Engine {
	t.Helper()
	e, err := New(Config{View: f.view, State: f.state, Rel: 0, F1: 4, F2: 3, IndexSeed: 5, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEmbedShapeAndNorm(t *testing.T) {
	f := newFixture(t, 300, 8, 3, 1, 2)
	e := f.engine(t, nil)
	embs, err := e.Embed(context.Background(), f.ids[:7])
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 7 {
		t.Fatalf("got %d rows, want 7", len(embs))
	}
	for i, v := range embs {
		if len(v) != e.Dim() {
			t.Fatalf("row %d: dim %d, want %d", i, len(v), e.Dim())
		}
		var sum float64
		for _, x := range v {
			sum += float64(x) * float64(x)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("row %d: squared norm %.4f, want 1", i, sum)
		}
	}
	if _, err := e.Embed(context.Background(), nil); err != nil {
		t.Fatalf("empty embed: %v", err)
	}
}

// TestKNNSameClassAffinity is the end-to-end semantic check: after warming
// the index, a vertex's nearest neighbors should be dominated by its own
// class — the embedding carries graph structure, and the graph is
// homophilous. Random assignment would land ~1/classes.
func TestKNNSameClassAffinity(t *testing.T) {
	f := newFixture(t, 400, 8, 4, 3, 3)
	m := &Metrics{}
	e := f.engine(t, m)
	n, err := e.Warm(context.Background(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if n != e.Index().Len() || n == 0 {
		t.Fatalf("warmed %d, index holds %d", n, e.Index().Len())
	}
	same, total := 0, 0
	for i := 0; i < 40; i++ {
		id := f.ids[i*7%f.n]
		res, emb, err := e.KNN(context.Background(), id, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(emb) != e.Dim() {
			t.Fatalf("query embedding dim %d, want %d", len(emb), e.Dim())
		}
		want, _ := f.attrs.Label(id)
		for _, r := range res {
			if r.ID == id {
				t.Fatalf("KNN returned the query vertex %v", id)
			}
			got, _ := f.attrs.Label(r.ID)
			if got == want {
				same++
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no neighbors returned")
	}
	if share := float64(same) / float64(total); share < 0.5 {
		t.Fatalf("same-class share %.3f, want >= 0.5 (random = 0.25)", share)
	}
	if m.KNNRequests.Load() != 40 {
		t.Fatalf("KNNRequests = %d, want 40", m.KNNRequests.Load())
	}
	snap := m.Snapshot()
	if snap.Errors != 0 || snap.Ann.Searches == 0 {
		t.Fatalf("unexpected metrics: %+v", snap)
	}
}

// blockingView parks SampleSubgraph until released, to wedge a worker slot.
type blockingView struct {
	view.GraphView
	gate chan struct{}
}

func (b *blockingView) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) ([][]graph.VertexID, error) {
	<-b.gate
	return b.GraphView.SampleSubgraph(seeds, path, fanouts)
}

// TestAdmissionShedsOnDeadline fills the single worker slot with a wedged
// request; the next request must be rejected when its deadline fires while
// queued, and the shed counter must say so.
func TestAdmissionShedsOnDeadline(t *testing.T) {
	f := newFixture(t, 100, 8, 2, 0, 4)
	bv := &blockingView{GraphView: f.view, gate: make(chan struct{})}
	m := &Metrics{}
	e, err := New(Config{View: bv, State: f.state, Rel: 0, F1: 4, F2: 3, Workers: 1, Timeout: time.Minute, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := e.Embed(context.Background(), f.ids[:1])
		done <- err
	}()
	<-started
	// Wait until the wedged request actually holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(e.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the worker slot")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := e.Embed(ctx, f.ids[1:2]); err == nil {
		t.Fatal("queued request beyond the pool was not shed")
	}
	if m.Shed.Load() != 1 {
		t.Fatalf("Shed = %d, want 1", m.Shed.Load())
	}
	close(bv.gate)
	if err := <-done; err != nil {
		t.Fatalf("wedged request failed after release: %v", err)
	}
}

func TestModelFromStateRejectsGarbage(t *testing.T) {
	if _, err := modelFromState(&checkpoint.State{}); err == nil {
		t.Fatal("empty state accepted")
	}
	bad := &checkpoint.State{Params: make([]checkpoint.Tensor, 6)}
	for i := range bad.Params {
		bad.Params[i] = checkpoint.Tensor{Rows: 2, Cols: 2, Data: make([]float32, 4)}
	}
	bad.Params[1] = checkpoint.Tensor{Rows: 3, Cols: 2, Data: make([]float32, 6)}
	if _, err := modelFromState(bad); err == nil {
		t.Fatal("inconsistent shapes accepted")
	}
}
