package serve

import (
	"expvar"
	"time"

	"platod2gl/internal/ann"
	"platod2gl/internal/obs"
)

// Metrics is the serving tier's instrumentation. All inc/observe helpers are
// nil-safe so tests can run unmetered engines. The staleness pair is the
// contract the nightly churn drill asserts on: EmbeddingsStale counts
// vertices known-dirty but not yet re-embedded, RefreshLag measures how long
// each one stayed dirty.
type Metrics struct {
	EmbedRequests obs.Counter   // Embed calls admitted
	KNNRequests   obs.Counter   // KNN/KNNVector calls admitted
	Errors        obs.Counter   // requests that returned an error
	Shed          obs.Counter   // requests rejected at admission (deadline fired queueing)
	EmbedLatency  obs.Histogram // ns, Embed end-to-end
	KNNLatency    obs.Histogram // ns, KNN end-to-end (includes the fresh embed)

	EmbeddingsStale obs.Gauge     // dirty vertices awaiting re-embedding
	RefreshLag      obs.Histogram // ns from dirty-mark to re-indexed
	Refreshed       obs.Counter   // vertices re-embedded by the refresher
	RefreshPolls    obs.Counter   // digest polls completed
	RefreshErrors   obs.Counter   // poll or re-embed rounds that failed

	// Ann carries the index's own mutation counters.
	Ann ann.Metrics
}

// annMetrics returns the embedded index counters, nil-safely.
func (m *Metrics) annMetrics() *ann.Metrics {
	if m == nil {
		return nil
	}
	return &m.Ann
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	EmbedRequests   int64
	KNNRequests     int64
	Errors          int64
	Shed            int64
	EmbedP99Ns      float64
	KNNP99Ns        float64
	EmbeddingsStale int64
	RefreshLagP99Ns float64
	Refreshed       int64
	RefreshPolls    int64
	RefreshErrors   int64
	Ann             ann.MetricsSnapshot
}

// Snapshot copies the current values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		EmbedRequests:   m.EmbedRequests.Load(),
		KNNRequests:     m.KNNRequests.Load(),
		Errors:          m.Errors.Load(),
		Shed:            m.Shed.Load(),
		EmbedP99Ns:      m.EmbedLatency.Snapshot().P99(),
		KNNP99Ns:        m.KNNLatency.Snapshot().P99(),
		EmbeddingsStale: m.EmbeddingsStale.Load(),
		RefreshLagP99Ns: m.RefreshLag.Snapshot().P99(),
		Refreshed:       m.Refreshed.Load(),
		RefreshPolls:    m.RefreshPolls.Load(),
		RefreshErrors:   m.RefreshErrors.Load(),
		Ann:             m.Ann.Snapshot(),
	}
}

// Expvar exposes the snapshot as one JSON object.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register attaches everything to r under the stable platod2gl_serve_*
// names documented in docs/OPERATIONS.md. Histograms are recorded in
// nanoseconds and exposed in seconds (scale 1e-9), matching the repo's
// exposition convention.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	r.RegisterCounter("platod2gl_serve_embed_requests_total", "Embed requests admitted.", nil, &m.EmbedRequests)
	r.RegisterCounter("platod2gl_serve_knn_requests_total", "k-NN requests admitted.", nil, &m.KNNRequests)
	r.RegisterCounter("platod2gl_serve_errors_total", "Serving requests that returned an error.", nil, &m.Errors)
	r.RegisterCounter("platod2gl_serve_shed_total", "Requests rejected at admission (deadline fired while queued).", nil, &m.Shed)
	r.RegisterHistogram("platod2gl_serve_embed_seconds", "Embed latency.", nil, 1e-9, &m.EmbedLatency)
	r.RegisterHistogram("platod2gl_serve_knn_seconds", "k-NN latency (includes the fresh query embed).", nil, 1e-9, &m.KNNLatency)
	r.RegisterGauge("platod2gl_serve_embeddings_stale", "Vertices known-dirty and awaiting re-embedding.", nil, &m.EmbeddingsStale)
	r.RegisterHistogram("platod2gl_serve_refresh_lag_seconds", "Time from a vertex turning dirty to its embedding re-indexed.", nil, 1e-9, &m.RefreshLag)
	r.RegisterCounter("platod2gl_serve_refreshed_total", "Vertices re-embedded by the refresher.", nil, &m.Refreshed)
	r.RegisterCounter("platod2gl_serve_refresh_polls_total", "Change-source digest polls completed.", nil, &m.RefreshPolls)
	r.RegisterCounter("platod2gl_serve_refresh_errors_total", "Refresher rounds that failed (poll or re-embed).", nil, &m.RefreshErrors)
	m.Ann.Register(r)
}

// RegisterIndexGauges exposes the engine's index size and tombstone count as
// computed gauges — the index already tracks both, so no second copy drifts.
func (e *Engine) RegisterIndexGauges(r *obs.Registry) {
	r.GaugeFunc("platod2gl_serve_index_size", "Live vectors in the serving ANN index.", nil,
		func() float64 { return float64(e.index.Len()) })
	r.GaugeFunc("platod2gl_serve_index_tombstones", "Tombstoned vectors awaiting compaction.", nil,
		func() float64 { return float64(e.index.Tombstones()) })
}

func (m *Metrics) observeEmbed(start time.Time, err error) {
	if m == nil {
		return
	}
	m.EmbedRequests.Inc()
	m.EmbedLatency.ObserveSince(start)
	if err != nil {
		m.Errors.Inc()
	}
}

func (m *Metrics) observeKNN(start time.Time, err error) {
	if m == nil {
		return
	}
	m.KNNRequests.Inc()
	m.KNNLatency.ObserveSince(start)
	if err != nil {
		m.Errors.Inc()
	}
}

func (m *Metrics) incShed() {
	if m != nil {
		m.Shed.Inc()
	}
}

func (m *Metrics) setStale(n int) {
	if m != nil {
		m.EmbeddingsStale.Set(int64(n))
	}
}

func (m *Metrics) observeRefresh(lag time.Duration, n int) {
	if m != nil {
		m.RefreshLag.Observe(lag.Nanoseconds())
		m.Refreshed.Add(int64(n))
	}
}

func (m *Metrics) incPoll() {
	if m != nil {
		m.RefreshPolls.Inc()
	}
}

func (m *Metrics) incRefreshErr() {
	if m != nil {
		m.RefreshErrors.Inc()
	}
}
