package serve

import (
	"context"
	"fmt"
	"time"

	"platod2gl/internal/cluster"
	"platod2gl/internal/graph"
	"platod2gl/internal/view"
)

// ChangeSource reports one coarse digest per logical shard. The refresher
// treats any digest change as "everything in that shard may have moved" —
// deliberately coarse, because the digests are O(1) to serve (the cluster
// maintains them incrementally for anti-entropy) while per-vertex change
// tracking would need a new write-path feed. Implementations must return
// the same slice length on every call.
type ChangeSource interface {
	Digests(ctx context.Context) ([]uint64, error)
}

// ChangeFunc adapts a closure (the local backend's single-shard digest).
type ChangeFunc func(ctx context.Context) ([]uint64, error)

// Digests implements ChangeSource.
func (f ChangeFunc) Digests(ctx context.Context) ([]uint64, error) { return f(ctx) }

// ClusterChanges polls every shard's anti-entropy digest through the
// fan-out client. Polls ride the background admission class by way of the
// ShardDigest method's own priority, so a busy cluster sheds them first.
type ClusterChanges struct {
	Client *cluster.Client
}

// Digests implements ChangeSource: Topology ⊕ Attrs per shard, so both
// edge and feature mutations surface.
func (c ClusterChanges) Digests(ctx context.Context) ([]uint64, error) {
	n := c.Client.NumShards()
	out := make([]uint64, n)
	for s := 0; s < n; s++ {
		rep, err := c.Client.ShardDigestCtx(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("serve: digest shard %d: %w", s, err)
		}
		out[s] = rep.Topology ^ rep.Attrs
	}
	return out, nil
}

// RefreshConfig wires a Refresher.
type RefreshConfig struct {
	Engine *Engine
	Source ChangeSource
	// View routes the refresher's sampling and feature pulls; pass a
	// background-priority view (view.Cluster.Background) so index
	// maintenance yields to live queries. Nil uses the engine's view.
	View view.GraphView
	// Interval between digest polls (default 2s).
	Interval time.Duration
	// Batch bounds vertices per re-embed call (default 128).
	Batch   int
	Metrics *Metrics
}

// Refresher closes the dynamic loop: it polls shard digests, marks every
// indexed-or-current vertex of a changed shard dirty, and re-embeds the
// dirty set in background batches — bounding how stale the ANN index can
// drift from the live graph. It also retires vertices that left the graph:
// an indexed ID no longer among the changed shard's sources is deleted.
type Refresher struct {
	engine   *Engine
	src      ChangeSource
	view     view.GraphView
	interval time.Duration
	batch    int
	metrics  *Metrics

	lastSeen []uint64
	primed   bool
	dirty    map[graph.VertexID]time.Time
}

// NewRefresher validates and wires the refresher. It does not start it;
// call Run.
func NewRefresher(cfg RefreshConfig) (*Refresher, error) {
	if cfg.Engine == nil || cfg.Source == nil {
		return nil, fmt.Errorf("serve: RefreshConfig needs Engine and Source")
	}
	v := cfg.View
	if v == nil {
		v = cfg.Engine.view
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 128
	}
	return &Refresher{
		engine: cfg.Engine, src: cfg.Source, view: v,
		interval: interval, batch: batch, metrics: cfg.Metrics,
		dirty: make(map[graph.VertexID]time.Time),
	}, nil
}

// Run polls until ctx is done. The first poll only records the baseline
// digests: the index is assumed freshly warmed, so pre-existing state is
// not treated as churn.
func (r *Refresher) Run(ctx context.Context) {
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	r.poll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			r.poll(ctx)
		}
	}
}

// poll runs one detect-and-repair round.
func (r *Refresher) poll(ctx context.Context) {
	digests, err := r.src.Digests(ctx)
	if err != nil {
		if ctx.Err() == nil {
			r.metrics.incRefreshErr()
		}
		return
	}
	r.metrics.incPoll()
	if !r.primed || len(digests) != len(r.lastSeen) {
		r.lastSeen = digests
		r.primed = true
		return
	}
	changed := make([]int, 0, len(digests))
	for s := range digests {
		if digests[s] != r.lastSeen[s] {
			changed = append(changed, s)
		}
	}
	r.lastSeen = digests
	if len(changed) > 0 {
		if err := r.mark(changed, len(digests)); err != nil {
			r.metrics.incRefreshErr()
		}
	}
	r.metrics.setStale(len(r.dirty))
	if len(r.dirty) > 0 {
		r.sweep(ctx)
		r.metrics.setStale(len(r.dirty))
	}
}

// mark turns a changed shard into dirty vertices: every current source of
// the serving relation hashing into the shard is (re)marked, and indexed
// vertices that vanished from the shard's source set are deleted.
func (r *Refresher) mark(changed []int, numShards int) error {
	srcs, err := r.view.Sources(r.engine.rel)
	if err != nil {
		return fmt.Errorf("serve: refresh sources: %w", err)
	}
	changedSet := make(map[int]bool, len(changed))
	for _, s := range changed {
		changedSet[s] = true
	}
	now := time.Now()
	current := make(map[graph.VertexID]bool)
	for _, id := range srcs {
		if !changedSet[cluster.ShardOf(id, numShards)] {
			continue
		}
		current[id] = true
		if _, already := r.dirty[id]; !already {
			r.dirty[id] = now
		}
	}
	var gone []uint64
	r.engine.index.ForEach(func(raw uint64, _ []float32) bool {
		id := graph.VertexID(raw)
		if changedSet[cluster.ShardOf(id, numShards)] && !current[id] {
			gone = append(gone, raw)
		}
		return true
	})
	for _, raw := range gone {
		r.engine.index.Delete(raw)
		delete(r.dirty, graph.VertexID(raw))
	}
	return nil
}

// sweep re-embeds the dirty set in batches, observing per-vertex lag. A
// failed batch stays dirty and is retried next round.
func (r *Refresher) sweep(ctx context.Context) {
	ids := make([]graph.VertexID, 0, len(r.dirty))
	for id := range r.dirty {
		ids = append(ids, id)
	}
	for lo := 0; lo < len(ids); lo += r.batch {
		hi := lo + r.batch
		if hi > len(ids) {
			hi = len(ids)
		}
		batch := ids[lo:hi]
		if err := r.engine.IndexVertices(ctx, r.view, batch); err != nil {
			if ctx.Err() == nil {
				r.metrics.incRefreshErr()
			}
			return
		}
		now := time.Now()
		for _, id := range batch {
			r.metrics.observeRefresh(now.Sub(r.dirty[id]), 1)
			delete(r.dirty, id)
		}
	}
}
