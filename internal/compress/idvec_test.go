package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperFigure7(t *testing.T) {
	// Figure 7: IDs 16, 129, 43, 90 share the first 7 bytes (all zero),
	// suffixes 0x10, 0x81, 0x2b, 0x5a.
	ids := []uint64{0x10, 0x81, 0x2b, 0x5a}
	v := NewIDVec(ids)
	if v.Z() != 7 {
		t.Fatalf("Z = %d, want 7", v.Z())
	}
	for i, want := range ids {
		if got := v.Get(i); got != want {
			t.Fatalf("Get(%d) = %#x, want %#x", i, got, want)
		}
	}
	// 24 (header) + 1 (z) + 7 (prefix) + 4 suffix bytes.
	if got := v.MemoryBytes(); got != 24+1+7+4 {
		t.Fatalf("MemoryBytes = %d, want %d", got, 24+1+7+4)
	}
}

func TestEmptyVec(t *testing.T) {
	var v IDVec
	if v.Len() != 0 {
		t.Fatalf("Len = %d, want 0", v.Len())
	}
	v.Append(42)
	if v.Len() != 1 || v.Get(0) != 42 {
		t.Fatalf("after Append: len=%d v[0]=%d", v.Len(), v.Get(0))
	}
}

func TestDemotionOnAppend(t *testing.T) {
	v := NewIDVec([]uint64{0x0100, 0x0101}) // share 7 bytes
	if v.Z() != 7 {
		t.Fatalf("initial Z = %d, want 7", v.Z())
	}
	v.Append(0x0201) // differs in byte 7 -> z must shrink to 6
	if v.Z() != 6 {
		t.Fatalf("Z after demotion = %d, want 6", v.Z())
	}
	want := []uint64{0x0100, 0x0101, 0x0201}
	for i, w := range want {
		if got := v.Get(i); got != w {
			t.Fatalf("Get(%d) = %#x, want %#x", i, got, w)
		}
	}
	// Force demotion to z=0 with a very distant ID.
	v.Append(0xffffffffffffffff)
	if v.Z() != 0 {
		t.Fatalf("Z = %d, want 0", v.Z())
	}
	if v.Get(3) != 0xffffffffffffffff || v.Get(0) != 0x0100 {
		t.Fatalf("values corrupted after full demotion: %v", v.All())
	}
}

func TestDemotionSteps(t *testing.T) {
	// IDs differing only in the low 4 bytes should keep z=4.
	v := NewIDVec([]uint64{0xAABBCCDD_00000001, 0xAABBCCDD_F0000002})
	if v.Z() != 4 {
		t.Fatalf("Z = %d, want 4", v.Z())
	}
	got := v.All()
	if got[0] != 0xAABBCCDD_00000001 || got[1] != 0xAABBCCDD_F0000002 {
		t.Fatalf("All() = %#x", got)
	}
}

func TestSetAndSwap(t *testing.T) {
	v := NewIDVec([]uint64{1, 2, 3})
	v.Set(1, 9)
	if v.Get(1) != 9 {
		t.Fatalf("Set failed: %v", v.All())
	}
	v.Swap(0, 2)
	want := []uint64{3, 9, 1}
	got := v.All()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Swap result = %v, want %v", got, want)
		}
	}
	v.Swap(1, 1) // no-op
	if v.Get(1) != 9 {
		t.Fatal("self-swap corrupted data")
	}
}

func TestSetWithDemotion(t *testing.T) {
	v := NewIDVec([]uint64{0x10, 0x20})
	v.Set(0, 0xAA00000000000010)
	if v.Get(0) != 0xAA00000000000010 || v.Get(1) != 0x20 {
		t.Fatalf("Set demotion failed: %#x", v.All())
	}
}

func TestRemoveLast(t *testing.T) {
	v := NewIDVec([]uint64{1, 2, 3})
	v.RemoveLast()
	if v.Len() != 2 || v.Get(1) != 2 {
		t.Fatalf("RemoveLast: %v", v.All())
	}
	v.RemoveLast()
	v.RemoveLast()
	if v.Len() != 0 {
		t.Fatalf("Len = %d, want 0", v.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on RemoveLast of empty vector")
		}
	}()
	v.RemoveLast()
}

func TestIndexOf(t *testing.T) {
	v := NewIDVec([]uint64{10, 20, 30})
	if got := v.IndexOf(20); got != 1 {
		t.Fatalf("IndexOf(20) = %d, want 1", got)
	}
	if got := v.IndexOf(99); got != -1 {
		t.Fatalf("IndexOf(99) = %d, want -1", got)
	}
	// An ID outside the prefix cannot be present: quick reject.
	if got := v.IndexOf(0xFF00000000000000); got != -1 {
		t.Fatalf("IndexOf(far) = %d, want -1", got)
	}
}

func TestRecompress(t *testing.T) {
	v := NewIDVec([]uint64{0x10, 0xAA00000000000000})
	if v.Z() != 0 {
		t.Fatalf("Z = %d, want 0", v.Z())
	}
	// Drop the distant element, recompress: back to z=7.
	v.RemoveLast()
	v.Recompress()
	if v.Z() != 7 {
		t.Fatalf("Z after Recompress = %d, want 7", v.Z())
	}
	if v.Get(0) != 0x10 {
		t.Fatalf("value corrupted: %#x", v.Get(0))
	}
}

func TestUncompressed(t *testing.T) {
	ids := []uint64{0x10, 0x11, 0x12}
	v := NewUncompressed(ids)
	if v.Z() != 0 {
		t.Fatalf("Z = %d, want 0", v.Z())
	}
	for i, want := range ids {
		if v.Get(i) != want {
			t.Fatalf("Get(%d) = %#x, want %#x", i, v.Get(i), want)
		}
	}
	// 3 IDs * 8 bytes each, vs 3 bytes compressed.
	if v.MemoryBytes() <= NewIDVec(ids).MemoryBytes() {
		t.Fatal("uncompressed should cost more than compressed for clustered IDs")
	}
}

func TestCompressionSavings(t *testing.T) {
	// 256 clustered IDs: compressed ~ 1+7+256 bytes vs 2048 raw.
	ids := make([]uint64, 256)
	for i := range ids {
		ids[i] = 0xAB00000000000000 | uint64(i)
	}
	c := NewIDVec(ids)
	u := NewUncompressed(ids)
	if c.Z() != 7 {
		t.Fatalf("Z = %d, want 7", c.Z())
	}
	ratio := float64(c.MemoryBytes()) / float64(u.MemoryBytes())
	if ratio > 0.25 {
		t.Fatalf("compression ratio %.2f, want <= 0.25", ratio)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(ids []uint64) bool {
		v := NewIDVec(ids)
		if v.Len() != len(ids) {
			return false
		}
		got := v.All()
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAppendRoundTrip(t *testing.T) {
	prop := func(ids []uint64) bool {
		var v IDVec
		for _, id := range ids {
			v.Append(id)
		}
		got := v.All()
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMutationAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var v IDVec
	var ref []uint64
	randID := func() uint64 {
		// Mostly clustered IDs with occasional outliers, to exercise
		// demotion.
		if rng.Intn(20) == 0 {
			return rng.Uint64()
		}
		return 0x7700000000000000 | uint64(rng.Intn(100000))
	}
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(ref) == 0:
			id := randID()
			v.Append(id)
			ref = append(ref, id)
		case op == 1:
			i := rng.Intn(len(ref))
			id := randID()
			v.Set(i, id)
			ref[i] = id
		case op == 2:
			i, j := rng.Intn(len(ref)), rng.Intn(len(ref))
			v.Swap(i, j)
			ref[i], ref[j] = ref[j], ref[i]
		case op == 3:
			v.RemoveLast()
			ref = ref[:len(ref)-1]
		}
		if v.Len() != len(ref) {
			t.Fatalf("step %d: len %d vs %d", step, v.Len(), len(ref))
		}
		if step%211 == 0 {
			got := v.All()
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("step %d: [%d] %#x vs %#x", step, i, got[i], ref[i])
				}
			}
		}
	}
}

func BenchmarkAppendClustered(b *testing.B) {
	var v IDVec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Append(0x4200000000000000 | uint64(i&0xFFFF))
	}
}

func BenchmarkGet(b *testing.B) {
	ids := make([]uint64, 256)
	for i := range ids {
		ids[i] = 0x4200000000000000 | uint64(i)
	}
	v := NewIDVec(ids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Get(i & 255)
	}
}

func TestInsertAtRemoveAt(t *testing.T) {
	v := NewIDVec([]uint64{10, 30})
	v.InsertAt(1, 20)
	want := []uint64{10, 20, 30}
	got := v.All()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InsertAt middle: %v, want %v", got, want)
		}
	}
	v.InsertAt(0, 5)
	v.InsertAt(4, 40)
	want = []uint64{5, 10, 20, 30, 40}
	got = v.All()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InsertAt ends: %v, want %v", got, want)
		}
	}
	// Insert with demotion.
	v.InsertAt(2, 0xEE00000000000000)
	if v.Get(2) != 0xEE00000000000000 || v.Get(1) != 10 || v.Get(3) != 20 {
		t.Fatalf("InsertAt with demotion: %#x", v.All())
	}
	v.RemoveAt(2)
	want = []uint64{5, 10, 20, 30, 40}
	got = v.All()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RemoveAt: %v, want %v", got, want)
		}
	}
	v.RemoveAt(0)
	v.RemoveAt(3)
	want = []uint64{10, 20, 30}
	got = v.All()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RemoveAt ends: %v, want %v", got, want)
		}
	}
}

func TestInsertAtEmpty(t *testing.T) {
	var v IDVec
	v.InsertAt(0, 99)
	if v.Len() != 1 || v.Get(0) != 99 {
		t.Fatalf("InsertAt into empty: %v", v.All())
	}
}

func TestInsertRemovePanics(t *testing.T) {
	v := NewIDVec([]uint64{1})
	for name, fn := range map[string]func(){
		"InsertAt": func() { v.InsertAt(3, 5) },
		"RemoveAt": func() { v.RemoveAt(1) },
		"Get":      func() { v.Get(7) },
		"Set":      func() { v.Set(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
