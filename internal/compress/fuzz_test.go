package compress

import "testing"

// FuzzIDVec drives mutation tapes against a plain slice reference,
// exercising prefix demotion across arbitrary ID patterns.
func FuzzIDVec(f *testing.F) {
	f.Add([]byte{0, 1, 0, 200, 1, 0, 2, 1}, uint64(0x0100000000000000))
	f.Add([]byte{0, 0, 0, 255, 3, 0}, uint64(0xFFFFFFFF00000000))
	f.Fuzz(func(t *testing.T, tape []byte, base uint64) {
		var v IDVec
		var ref []uint64
		mkID := func(b byte) uint64 {
			if b%5 == 0 {
				return base ^ (uint64(b) << 56) // distant IDs force demotion
			}
			return base | uint64(b)
		}
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i]%4, tape[i+1]
			switch {
			case op == 0 || len(ref) == 0:
				id := mkID(arg)
				v.Append(id)
				ref = append(ref, id)
			case op == 1:
				idx := int(arg) % len(ref)
				id := mkID(arg ^ 0x5a)
				v.Set(idx, id)
				ref[idx] = id
			case op == 2:
				i1 := int(arg) % len(ref)
				i2 := (int(arg) / 3) % len(ref)
				v.Swap(i1, i2)
				ref[i1], ref[i2] = ref[i2], ref[i1]
			case op == 3:
				v.RemoveLast()
				ref = ref[:len(ref)-1]
			}
		}
		if v.Len() != len(ref) {
			t.Fatalf("len %d vs %d", v.Len(), len(ref))
		}
		got := v.All()
		for i, id := range ref {
			if got[i] != id {
				t.Fatalf("[%d] %#x vs %#x (z=%d)", i, got[i], id, v.Z())
			}
			if v.IndexOf(id) < 0 {
				t.Fatalf("IndexOf(%#x) = -1 but present", id)
			}
		}
	})
}
