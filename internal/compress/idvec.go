// Package compress implements the CP-IDs dynamic prefix compression of
// Sec. VI-A of the PlatoD2GL paper.
//
// Vertex IDs inside one samtree node tend to share high-order bytes (IDs are
// allocated densely per vertex type). Instead of storing each ID as 8 bytes,
// a node stores, per Eq. (7),
//
//	z | prefix | suf(v_0) | suf(v_1) | ... | suf(v_n)
//
// where z is the number of shared leading bytes, prefix those z bytes, and
// suf(v) the remaining 8-z bytes of each ID. z is chosen from {0, 4, 6, 7}
// for fast (byte-aligned, word-friendly) compression. When an inserted ID
// does not share the current prefix, the vector demotes itself to the widest
// prefix that still covers every element (Appendix A).
package compress

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// AllowedZ lists the prefix lengths (bytes) the paper permits, in descending
// preference order.
var AllowedZ = [...]uint8{7, 6, 4, 0}

// IDVec is a compact vector of uint64 IDs sharing a z-byte prefix. The
// element order is preserved; like a plain slice it supports positional get,
// set, swap-remove and append. The zero value is an empty vector with z=7
// (maximal compression until proven otherwise).
//
// IDVec is not safe for concurrent mutation.
type IDVec struct {
	z        uint8 // shared prefix length in bytes (0, 4, 6 or 7)
	prefix   uint64
	suffixes []byte // n * (8-z) big-endian suffixes
	n        int
	inited   bool
	// noCompress pins z to 0 permanently (the "w/o CP" ablation).
	noCompress bool
}

// suffixBytes returns the per-element suffix width for prefix length z.
func suffixBytes(z uint8) int { return 8 - int(z) }

// splitID returns the z-byte prefix (right-aligned) and the (8-z)-byte suffix
// of v.
func splitID(v uint64, z uint8) (prefix, suffix uint64) {
	if z == 0 {
		return 0, v
	}
	shift := uint(8 * (8 - z))
	return v >> shift, v & ((1 << shift) - 1)
}

// joinID reassembles an ID from prefix and suffix under prefix length z.
func joinID(prefix, suffix uint64, z uint8) uint64 {
	if z == 0 {
		return suffix
	}
	return prefix<<(8*(8-uint(z))) | suffix
}

// fitZ returns the largest allowed z such that every ID in ids shares the
// same z-byte prefix as ref.
func fitZ(ref uint64, ids []uint64) uint8 {
	for _, z := range AllowedZ {
		if z == 0 {
			return 0
		}
		p, _ := splitID(ref, z)
		ok := true
		for _, v := range ids {
			if q, _ := splitID(v, z); q != p {
				ok = false
				break
			}
		}
		if ok {
			return z
		}
	}
	return 0
}

// NewIDVec builds a compressed vector from ids, choosing the widest prefix
// that covers all of them.
func NewIDVec(ids []uint64) *IDVec {
	v := &IDVec{}
	if len(ids) == 0 {
		return v
	}
	z := fitZ(ids[0], ids)
	v.z = z
	v.prefix, _ = splitID(ids[0], z)
	v.inited = true
	sb := suffixBytes(z)
	v.suffixes = make([]byte, 0, len(ids)*sb)
	for _, id := range ids {
		_, suf := splitID(id, z)
		v.suffixes = appendSuffix(v.suffixes, suf, sb)
	}
	v.n = len(ids)
	return v
}

// NewUncompressed builds a vector that always stores full 8-byte IDs — the
// "w/o CP" ablation configuration.
func NewUncompressed(ids []uint64) *IDVec {
	v := &IDVec{inited: true, z: 0, noCompress: true}
	sb := 8
	v.suffixes = make([]byte, 0, len(ids)*sb)
	for _, id := range ids {
		v.suffixes = appendSuffix(v.suffixes, id, sb)
	}
	v.n = len(ids)
	return v
}

// appendSuffix encodes one big-endian suffix. The paper restricts z to
// {0, 4, 6, 7} "for fast compression": the resulting suffix widths are
// exactly the machine word sizes {8, 4, 2, 1}, so every codec path is a
// single fixed-width store.
func appendSuffix(dst []byte, suf uint64, sb int) []byte {
	switch sb {
	case 1:
		return append(dst, byte(suf))
	case 2:
		return binary.BigEndian.AppendUint16(dst, uint16(suf))
	case 4:
		return binary.BigEndian.AppendUint32(dst, uint32(suf))
	default:
		return binary.BigEndian.AppendUint64(dst, suf)
	}
}

func (v *IDVec) readSuffix(i int) uint64 {
	sb := suffixBytes(v.z)
	off := i * sb
	switch sb {
	case 1:
		return uint64(v.suffixes[off])
	case 2:
		return uint64(binary.BigEndian.Uint16(v.suffixes[off:]))
	case 4:
		return uint64(binary.BigEndian.Uint32(v.suffixes[off:]))
	default:
		return binary.BigEndian.Uint64(v.suffixes[off:])
	}
}

func (v *IDVec) writeSuffix(i int, suf uint64) {
	sb := suffixBytes(v.z)
	off := i * sb
	switch sb {
	case 1:
		v.suffixes[off] = byte(suf)
	case 2:
		binary.BigEndian.PutUint16(v.suffixes[off:], uint16(suf))
	case 4:
		binary.BigEndian.PutUint32(v.suffixes[off:], uint32(suf))
	default:
		binary.BigEndian.PutUint64(v.suffixes[off:], suf)
	}
}

// Len returns the number of IDs.
func (v *IDVec) Len() int { return v.n }

// Z returns the current shared prefix length in bytes.
func (v *IDVec) Z() uint8 { return v.z }

// Get returns the ID at index i.
func (v *IDVec) Get(i int) uint64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("compress: Get index %d out of range [0,%d)", i, v.n))
	}
	return joinID(v.prefix, v.readSuffix(i), v.z)
}

// Append adds id at the end. If id does not share the current prefix the
// vector demotes to a narrower prefix first (the Appendix-A update rule).
func (v *IDVec) Append(id uint64) {
	if !v.inited {
		v.inited = true
		if !v.noCompress {
			v.z = 7
		}
		v.prefix, _ = splitID(id, v.z)
	}
	p, suf := splitID(id, v.z)
	if v.n > 0 && p != v.prefix {
		v.demoteFor(id)
		_, suf = splitID(id, v.z)
	} else if v.n == 0 {
		if !v.noCompress {
			v.z = 7
		}
		v.prefix, _ = splitID(id, v.z)
		_, suf = splitID(id, v.z)
	}
	v.suffixes = appendSuffix(v.suffixes, suf, suffixBytes(v.z))
	v.n++
}

// Set overwrites the ID at index i, demoting the prefix if necessary.
func (v *IDVec) Set(i int, id uint64) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("compress: Set index %d out of range [0,%d)", i, v.n))
	}
	p, suf := splitID(id, v.z)
	if p != v.prefix {
		v.demoteFor(id)
		_, suf = splitID(id, v.z)
	}
	v.writeSuffix(i, suf)
}

// demoteFor re-encodes the vector with the widest allowed prefix that covers
// both the existing elements and id. Existing elements all share v.prefix,
// so checking one reconstructed element suffices.
func (v *IDVec) demoteFor(id uint64) {
	ids := v.All()
	ids = append(ids, id)
	z := fitZ(id, ids)
	ids = ids[:len(ids)-1]
	sb := suffixBytes(z)
	newSuf := make([]byte, 0, (len(ids)+1)*sb)
	for _, e := range ids {
		_, s := splitID(e, z)
		newSuf = appendSuffix(newSuf, s, sb)
	}
	v.z = z
	v.prefix, _ = splitID(id, z)
	v.suffixes = newSuf
}

// Swap exchanges the IDs at i and j.
func (v *IDVec) Swap(i, j int) {
	if i == j {
		return
	}
	a, b := v.readSuffix(i), v.readSuffix(j)
	v.writeSuffix(i, b)
	v.writeSuffix(j, a)
}

// InsertAt inserts id at position i, shifting later elements right. Demotes
// the prefix first if id does not share it. Used by ordered (internal-node)
// ID lists.
func (v *IDVec) InsertAt(i int, id uint64) {
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("compress: InsertAt index %d out of range [0,%d]", i, v.n))
	}
	if !v.inited {
		v.inited = true
		if !v.noCompress {
			v.z = 7
		}
		v.prefix, _ = splitID(id, v.z)
	}
	p, suf := splitID(id, v.z)
	if v.n > 0 && p != v.prefix {
		v.demoteFor(id)
		_, suf = splitID(id, v.z)
	} else if v.n == 0 {
		if !v.noCompress {
			v.z = 7
		}
		v.prefix, _ = splitID(id, v.z)
		_, suf = splitID(id, v.z)
	}
	sb := suffixBytes(v.z)
	v.suffixes = append(v.suffixes, make([]byte, sb)...)
	copy(v.suffixes[(i+1)*sb:], v.suffixes[i*sb:])
	v.n++
	v.writeSuffix(i, suf)
}

// RemoveAt removes the ID at position i, shifting later elements left.
func (v *IDVec) RemoveAt(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("compress: RemoveAt index %d out of range [0,%d)", i, v.n))
	}
	sb := suffixBytes(v.z)
	copy(v.suffixes[i*sb:], v.suffixes[(i+1)*sb:])
	v.suffixes = v.suffixes[:len(v.suffixes)-sb]
	v.n--
}

// RemoveLast drops the final ID (used with swap-delete).
func (v *IDVec) RemoveLast() {
	if v.n == 0 {
		panic("compress: RemoveLast on empty vector")
	}
	sb := suffixBytes(v.z)
	v.suffixes = v.suffixes[:len(v.suffixes)-sb]
	v.n--
}

// All decodes every ID into a fresh slice.
func (v *IDVec) All() []uint64 {
	out := make([]uint64, v.n)
	for i := range out {
		out[i] = joinID(v.prefix, v.readSuffix(i), v.z)
	}
	return out
}

// IndexOf returns the position of id, or -1. Linear scan — leaf ID lists are
// unordered by design (samtree constraint 2).
func (v *IDVec) IndexOf(id uint64) int {
	p, suf := splitID(id, v.z)
	if v.n > 0 && p != v.prefix {
		return -1
	}
	s := v.suffixes
	switch suffixBytes(v.z) {
	case 1:
		return bytes.IndexByte(s, byte(suf))
	case 2:
		t := uint16(suf)
		for i, off := 0, 0; i < v.n; i, off = i+1, off+2 {
			if binary.BigEndian.Uint16(s[off:]) == t {
				return i
			}
		}
	case 4:
		t := uint32(suf)
		for i, off := 0, 0; i < v.n; i, off = i+1, off+4 {
			if binary.BigEndian.Uint32(s[off:]) == t {
				return i
			}
		}
	default:
		for i, off := 0, 0; i < v.n; i, off = i+1, off+8 {
			if binary.BigEndian.Uint64(s[off:]) == suf {
				return i
			}
		}
	}
	return -1
}

// Recompress re-selects the widest prefix covering the current elements
// (used after splits, when a node's ID range narrows).
func (v *IDVec) Recompress() {
	if v.noCompress {
		return
	}
	if v.n == 0 {
		v.z = 7
		v.suffixes = v.suffixes[:0]
		return
	}
	ids := v.All()
	z := fitZ(ids[0], ids)
	if z == v.z {
		return
	}
	sb := suffixBytes(z)
	newSuf := make([]byte, 0, len(ids)*sb)
	for _, e := range ids {
		_, s := splitID(e, z)
		newSuf = appendSuffix(newSuf, s, sb)
	}
	v.z = z
	v.prefix, _ = splitID(ids[0], z)
	v.suffixes = newSuf
}

// MemoryBytes returns the structural footprint: the z byte, the prefix, and
// the suffix array (Eq. 7's string layout plus the Go slice header).
func (v *IDVec) MemoryBytes() int64 {
	return int64(24 /* slice header */ + 1 /* z */ + int(v.z) /* prefix bytes */ + cap(v.suffixes))
}
