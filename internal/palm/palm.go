// Package palm implements the batch-based latch-free concurrent update
// mechanism of Sec. VI-B / Appendix B of the PlatoD2GL paper, in the style
// of the PALM tree.
//
// Instead of latching samtree nodes, a batch of update queries is (1) sorted
// by vertex IDs, (2) grouped so all queries touching one source vertex's
// samtree are contiguous, and (3) the groups are partitioned across worker
// threads by source hash — every samtree is therefore modified by exactly
// one thread and no latches are needed. Within a group the queries arrive
// sorted by destination ID, which serializes the per-tree modifications
// bottom-up with good leaf locality (consecutive queries tend to land in the
// same leaf).
package palm

import (
	"runtime"
	"slices"
	"sync"

	"platod2gl/internal/graph"
)

// DefaultWorkers returns the default worker count (one per CPU, capped so a
// tiny batch is not over-parallelized).
func DefaultWorkers(batch int) int {
	w := runtime.GOMAXPROCS(0)
	if batch < 1024 && w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Group is a maximal run of events sharing one (EdgeType, Src) pair, i.e.
// all updates destined for one samtree.
type Group struct {
	Type   graph.EdgeType
	Src    graph.VertexID
	Events []graph.Event
}

// Plan sorts events by (EdgeType, Src, Dst) and cuts them into per-samtree
// groups. The input slice is sorted in place.
func Plan(events []graph.Event) []Group {
	slices.SortFunc(events, func(x, y graph.Event) int {
		a, b := &x.Edge, &y.Edge
		switch {
		case a.Type != b.Type:
			if a.Type < b.Type {
				return -1
			}
			return 1
		case a.Src != b.Src:
			if a.Src < b.Src {
				return -1
			}
			return 1
		case a.Dst != b.Dst:
			if a.Dst < b.Dst {
				return -1
			}
			return 1
		default:
			// Preserve operation order between updates to the same edge.
			if x.Timestamp < y.Timestamp {
				return -1
			}
			if x.Timestamp > y.Timestamp {
				return 1
			}
			return 0
		}
	})
	groups := make([]Group, 0, 64)
	for i := 0; i < len(events); {
		j := i + 1
		for j < len(events) &&
			events[j].Edge.Type == events[i].Edge.Type &&
			events[j].Edge.Src == events[i].Edge.Src {
			j++
		}
		groups = append(groups, Group{
			Type:   events[i].Edge.Type,
			Src:    events[i].Edge.Src,
			Events: events[i:j],
		})
		i = j
	}
	return groups
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Run executes a batch of topology updates: it plans the batch and invokes
// apply once per group, partitioning groups across workers by source hash so
// that each samtree is touched by exactly one goroutine. apply must be safe
// for concurrent invocation on *different* sources. The events slice is
// reordered in place.
func Run(events []graph.Event, workers int, apply func(Group)) {
	if len(events) == 0 {
		return
	}
	groups := Plan(events)
	if workers <= 1 || len(groups) == 1 {
		for _, g := range groups {
			apply(g)
		}
		return
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	// Shard groups by source hash: deterministic, and any future groups for
	// the same source land on the same worker.
	shards := make([][]Group, workers)
	for _, g := range groups {
		w := int(mix(uint64(g.Src)^uint64(g.Type)<<56) % uint64(workers))
		shards[w] = append(shards[w], g)
	}
	var wg sync.WaitGroup
	for _, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard []Group) {
			defer wg.Done()
			for _, g := range shard {
				apply(g)
			}
		}(shard)
	}
	wg.Wait()
}
