package palm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"platod2gl/internal/graph"
)

func ev(et graph.EdgeType, src, dst uint64, ts int64) graph.Event {
	return graph.Event{
		Kind:      graph.AddEdge,
		Edge:      graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst), Type: et, Weight: 1},
		Timestamp: ts,
	}
}

func TestPlanGroupsBySource(t *testing.T) {
	events := []graph.Event{
		ev(0, 5, 1, 0), ev(0, 3, 2, 1), ev(0, 5, 9, 2), ev(1, 5, 1, 3), ev(0, 3, 1, 4),
	}
	groups := Plan(events)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	// Sorted by (type, src): (0,3) then (0,5) then (1,5).
	if groups[0].Src != 3 || groups[0].Type != 0 || len(groups[0].Events) != 2 {
		t.Fatalf("group 0 = %+v", groups[0])
	}
	if groups[1].Src != 5 || groups[1].Type != 0 || len(groups[1].Events) != 2 {
		t.Fatalf("group 1 = %+v", groups[1])
	}
	if groups[2].Src != 5 || groups[2].Type != 1 || len(groups[2].Events) != 1 {
		t.Fatalf("group 2 = %+v", groups[2])
	}
}

func TestPlanPreservesPerEdgeOrder(t *testing.T) {
	// Two updates to the same edge must keep timestamp order.
	events := []graph.Event{
		{Kind: graph.AddEdge, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 5}, Timestamp: 2},
		{Kind: graph.AddEdge, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 3}, Timestamp: 1},
	}
	groups := Plan(events)
	if len(groups) != 1 {
		t.Fatalf("got %d groups", len(groups))
	}
	g := groups[0].Events
	if g[0].Timestamp != 1 || g[1].Timestamp != 2 {
		t.Fatalf("order not preserved: %v, %v", g[0].Timestamp, g[1].Timestamp)
	}
}

func TestPlanEmpty(t *testing.T) {
	if got := Plan(nil); len(got) != 0 {
		t.Fatalf("Plan(nil) = %v", got)
	}
}

func TestRunAppliesEveryEventExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var events []graph.Event
	for i := 0; i < 10000; i++ {
		events = append(events, ev(graph.EdgeType(rng.Intn(3)),
			uint64(rng.Intn(500)), uint64(rng.Intn(1000)), int64(i)))
	}
	var applied atomic.Int64
	Run(events, 8, func(g Group) {
		applied.Add(int64(len(g.Events)))
	})
	if applied.Load() != 10000 {
		t.Fatalf("applied %d events, want 10000", applied.Load())
	}
}

func TestRunOneTreeOneWorker(t *testing.T) {
	// Concurrent apply calls must never see the same (type, src) pair.
	rng := rand.New(rand.NewSource(9))
	var events []graph.Event
	for i := 0; i < 20000; i++ {
		events = append(events, ev(0, uint64(rng.Intn(50)), uint64(i), int64(i)))
	}
	var mu sync.Mutex
	seen := map[uint64]int{} // src -> number of groups (should be 1 each)
	inFlight := map[uint64]bool{}
	Run(events, 8, func(g Group) {
		mu.Lock()
		if inFlight[uint64(g.Src)] {
			mu.Unlock()
			t.Error("two workers touched the same source concurrently")
			return
		}
		inFlight[uint64(g.Src)] = true
		seen[uint64(g.Src)]++
		mu.Unlock()

		mu.Lock()
		inFlight[uint64(g.Src)] = false
		mu.Unlock()
	})
	for src, n := range seen {
		if n != 1 {
			t.Fatalf("source %d split into %d groups", src, n)
		}
	}
}

func TestRunSingleWorkerSequential(t *testing.T) {
	events := []graph.Event{ev(0, 1, 1, 0), ev(0, 2, 1, 1)}
	order := []graph.VertexID{}
	Run(events, 1, func(g Group) { order = append(order, g.Src) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if w := DefaultWorkers(10); w < 1 {
		t.Fatalf("DefaultWorkers = %d", w)
	}
	if w := DefaultWorkers(1 << 20); w < 1 {
		t.Fatalf("DefaultWorkers(big) = %d", w)
	}
}
