// Package kvstore implements the attribute storage of PlatoD2GL's dynamic
// graph storage layer (Fig. 2): a sharded in-memory key-value store mapping
// vertices to dense float32 feature vectors and integer labels. The paper
// keeps attributes in a conventional key-value store — only the *topology*
// moves to the non-key-value samtree — so this store is deliberately plain.
package kvstore

import (
	"sync"

	"platod2gl/internal/graph"
)

const shardCount = 64

// EdgeKey addresses edge attributes.
type EdgeKey struct {
	Src, Dst graph.VertexID
	Type     graph.EdgeType
}

type shard struct {
	mu       sync.RWMutex
	features map[graph.VertexID][]float32
	labels   map[graph.VertexID]int32
	edges    map[EdgeKey][]float32
	// digest is the XOR of every entry's checksum (see digest.go), kept
	// current by each mutation under mu.
	digest uint64
}

// Store is a concurrent vertex-attribute store.
type Store struct {
	shards [shardCount]shard
}

// New returns an empty attribute store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].features = make(map[graph.VertexID][]float32)
		s.shards[i].labels = make(map[graph.VertexID]int32)
		s.shards[i].edges = make(map[EdgeKey][]float32)
	}
	return s
}

func (s *Store) shardFor(id graph.VertexID) *shard {
	x := uint64(id)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return &s.shards[x&(shardCount-1)]
}

// SetFeatures stores the feature vector for id. The slice is retained; the
// caller must not mutate it afterwards.
func (s *Store) SetFeatures(id graph.VertexID, f []float32) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if old, ok := sh.features[id]; ok {
		sh.digest ^= featureSum(id, old)
	}
	sh.features[id] = f
	sh.digest ^= featureSum(id, f)
	sh.mu.Unlock()
}

// Features returns the stored feature vector for id (shared, do not mutate).
func (s *Store) Features(id graph.VertexID) ([]float32, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	f, ok := sh.features[id]
	sh.mu.RUnlock()
	return f, ok
}

// GatherFeatures copies the feature vectors of ids row-by-row into a dense
// matrix of shape (len(ids), dim). Vertices without features produce zero
// rows.
func (s *Store) GatherFeatures(ids []graph.VertexID, dim int) []float32 {
	out := make([]float32, len(ids)*dim)
	for i, id := range ids {
		if f, ok := s.Features(id); ok {
			copy(out[i*dim:(i+1)*dim], f)
		}
	}
	return out
}

// GatherLabels copies the labels of ids into a dense vector. Vertices
// without labels produce 0, matching GatherFeatures' zero-row convention.
func (s *Store) GatherLabels(ids []graph.VertexID) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		if l, ok := s.Label(id); ok {
			out[i] = l
		}
	}
	return out
}

// SetLabel stores the class label for id.
func (s *Store) SetLabel(id graph.VertexID, label int32) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if old, ok := sh.labels[id]; ok {
		sh.digest ^= labelSum(id, old)
	}
	sh.labels[id] = label
	sh.digest ^= labelSum(id, label)
	sh.mu.Unlock()
}

// Label returns the stored label for id.
func (s *Store) Label(id graph.VertexID) (int32, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	l, ok := sh.labels[id]
	sh.mu.RUnlock()
	return l, ok
}

// SetEdgeFeatures stores the feature vector for an edge (Fig. 2's "attributes
// information of nodes or edges"). The slice is retained. Edge attributes are
// sharded by source so they colocate with the source's topology.
func (s *Store) SetEdgeFeatures(k EdgeKey, f []float32) {
	sh := s.shardFor(k.Src)
	sh.mu.Lock()
	if old, ok := sh.edges[k]; ok {
		sh.digest ^= edgeSum(k, old)
	}
	sh.edges[k] = f
	sh.digest ^= edgeSum(k, f)
	sh.mu.Unlock()
}

// EdgeFeatures returns the stored edge feature vector (shared, do not
// mutate).
func (s *Store) EdgeFeatures(k EdgeKey) ([]float32, bool) {
	sh := s.shardFor(k.Src)
	sh.mu.RLock()
	f, ok := sh.edges[k]
	sh.mu.RUnlock()
	return f, ok
}

// DeleteEdgeFeatures removes an edge's attributes (call on edge deletion).
func (s *Store) DeleteEdgeFeatures(k EdgeKey) {
	sh := s.shardFor(k.Src)
	sh.mu.Lock()
	if old, ok := sh.edges[k]; ok {
		sh.digest ^= edgeSum(k, old)
		delete(sh.edges, k)
	}
	sh.mu.Unlock()
}

// DeleteVertex removes all attributes of id.
func (s *Store) DeleteVertex(id graph.VertexID) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if old, ok := sh.features[id]; ok {
		sh.digest ^= featureSum(id, old)
		delete(sh.features, id)
	}
	if old, ok := sh.labels[id]; ok {
		sh.digest ^= labelSum(id, old)
		delete(sh.labels, id)
	}
	sh.mu.Unlock()
}

// RangeVertices calls fn for every vertex holding features and/or a label,
// until fn returns false. Feature slices are the stored ones (do not
// mutate); hasLabel distinguishes "label 0" from "no label". Iteration is
// per-shard consistent but not a global snapshot — concurrent writes may or
// may not be observed. The shard-migration path uses this to enumerate
// attribute state, which the plain map-based store never needed to expose.
func (s *Store) RangeVertices(fn func(id graph.VertexID, features []float32, label int32, hasLabel bool) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		ids := make([]graph.VertexID, 0, len(sh.features)+len(sh.labels))
		for id := range sh.features {
			ids = append(ids, id)
		}
		for id := range sh.labels {
			if _, ok := sh.features[id]; !ok {
				ids = append(ids, id)
			}
		}
		sh.mu.RUnlock()
		for _, id := range ids {
			sh.mu.RLock()
			f := sh.features[id]
			l, hasL := sh.labels[id]
			sh.mu.RUnlock()
			if f == nil && !hasL {
				continue // deleted between the scans
			}
			if !fn(id, f, l, hasL) {
				return
			}
		}
	}
}

// RangeEdges calls fn for every edge holding features, until fn returns
// false. The same consistency caveats as RangeVertices apply.
func (s *Store) RangeEdges(fn func(k EdgeKey, features []float32) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		keys := make([]EdgeKey, 0, len(sh.edges))
		for k := range sh.edges {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
		for _, k := range keys {
			sh.mu.RLock()
			f, ok := sh.edges[k]
			sh.mu.RUnlock()
			if !ok {
				continue
			}
			if !fn(k, f) {
				return
			}
		}
	}
}

// Len returns the number of vertices holding features.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.features)
		sh.mu.RUnlock()
	}
	return n
}

// MemoryBytes returns the approximate structural footprint: per-entry map
// overhead plus feature payloads.
func (s *Store) MemoryBytes() int64 {
	const mapEntryOverhead = 48 // bucket slot + key + value header, amortized
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += int64(len(sh.labels)) * (mapEntryOverhead - 24)
		for _, f := range sh.features {
			total += mapEntryOverhead + int64(4*cap(f))
		}
		for _, f := range sh.edges {
			total += mapEntryOverhead + 17 + int64(4*cap(f))
		}
		sh.mu.RUnlock()
	}
	return total
}
