package kvstore

import (
	"math/rand"
	"testing"

	"platod2gl/internal/graph"
)

// applyOps performs a fixed set of attribute writes in the given order.
func applyOps(s *Store, order []int) {
	type op func(*Store)
	ops := []op{
		func(s *Store) { s.SetFeatures(1, []float32{1, 2, 3}) },
		func(s *Store) { s.SetFeatures(2, []float32{4, 5}) },
		func(s *Store) { s.SetLabel(1, 7) },
		func(s *Store) { s.SetLabel(3, -1) },
		func(s *Store) { s.SetEdgeFeatures(EdgeKey{Src: 1, Dst: 2, Type: 0}, []float32{0.5}) },
		func(s *Store) { s.SetEdgeFeatures(EdgeKey{Src: 2, Dst: 1, Type: 1}, []float32{0.25, 0.75}) },
		func(s *Store) { s.SetFeatures(9, []float32{9}) },
	}
	for _, i := range order {
		ops[i](s)
	}
}

// TestDigestOrderIndependent: the digest depends on final state, not on the
// order writes arrived — replicas apply fan-out writes in different
// interleavings and must still digest equal.
func TestDigestOrderIndependent(t *testing.T) {
	a, b := New(), New()
	applyOps(a, []int{0, 1, 2, 3, 4, 5, 6})
	applyOps(b, []int{6, 4, 2, 0, 5, 3, 1})
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ across apply orders: %x vs %x", a.Digest(), b.Digest())
	}
	if a.Digest() == 0 {
		t.Fatal("digest of a non-empty store is 0")
	}
}

// TestDigestIncrementalMatchesRecompute: the incrementally maintained digest
// must equal a from-scratch recomputation (DigestWhere over everything)
// after a random churn of sets, overwrites, and deletes.
func TestDigestIncrementalMatchesRecompute(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		id := graph.VertexID(rng.Intn(100))
		switch rng.Intn(6) {
		case 0, 1:
			f := make([]float32, 1+rng.Intn(4))
			for j := range f {
				f[j] = rng.Float32()
			}
			s.SetFeatures(id, f)
		case 2:
			s.SetLabel(id, int32(rng.Intn(10)))
		case 3:
			k := EdgeKey{Src: id, Dst: graph.VertexID(rng.Intn(100)), Type: graph.EdgeType(rng.Intn(2))}
			s.SetEdgeFeatures(k, []float32{rng.Float32()})
		case 4:
			k := EdgeKey{Src: id, Dst: graph.VertexID(rng.Intn(100)), Type: graph.EdgeType(rng.Intn(2))}
			s.DeleteEdgeFeatures(k)
		case 5:
			s.DeleteVertex(id)
		}
	}
	want := s.DigestWhere(func(graph.VertexID) bool { return true })
	if got := s.Digest(); got != want {
		t.Fatalf("incremental digest %x != recomputed %x", got, want)
	}
}

// TestDigestDetectsDivergence: two stores that differ in exactly one entry
// digest differently; converging the entry restores equality.
func TestDigestDetectsDivergence(t *testing.T) {
	a, b := New(), New()
	applyOps(a, []int{0, 1, 2, 3, 4, 5, 6})
	applyOps(b, []int{0, 1, 2, 3, 4, 5, 6})
	b.SetFeatures(2, []float32{4, 5.000001}) // one float differs
	if a.Digest() == b.Digest() {
		t.Fatal("digest failed to detect a single-float divergence")
	}
	b.SetFeatures(2, []float32{4, 5})
	if a.Digest() != b.Digest() {
		t.Fatal("digests differ after convergence")
	}
}

// TestDigestDeleteRestoresBaseline: adding then deleting an entry returns
// the digest to its prior value (XOR round-trip), and Reset zeroes it.
func TestDigestDeleteRestoresBaseline(t *testing.T) {
	s := New()
	s.SetFeatures(1, []float32{1})
	base := s.Digest()
	s.SetLabel(5, 3)
	s.SetEdgeFeatures(EdgeKey{Src: 5, Dst: 6}, []float32{2})
	if s.Digest() == base {
		t.Fatal("digest unchanged by new entries")
	}
	s.DeleteVertex(5)
	s.DeleteEdgeFeatures(EdgeKey{Src: 5, Dst: 6})
	if s.Digest() != base {
		t.Fatalf("digest %x after delete, want baseline %x", s.Digest(), base)
	}
	s.Reset()
	if s.Digest() != 0 || s.Len() != 0 {
		t.Fatalf("post-Reset digest=%x len=%d, want 0/0", s.Digest(), s.Len())
	}
}

// TestDigestWhereSubset: DigestWhere partitions cleanly — the XOR of the
// per-partition digests equals the whole-store digest.
func TestDigestWhereSubset(t *testing.T) {
	s := New()
	applyOps(s, []int{0, 1, 2, 3, 4, 5, 6})
	even := s.DigestWhere(func(id graph.VertexID) bool { return id%2 == 0 })
	odd := s.DigestWhere(func(id graph.VertexID) bool { return id%2 == 1 })
	if even^odd != s.Digest() {
		t.Fatalf("partition digests %x^%x != whole %x", even, odd, s.Digest())
	}
}
