package kvstore

import (
	"sync"
	"testing"

	"platod2gl/internal/graph"
)

func TestSetGetFeatures(t *testing.T) {
	s := New()
	id := graph.MakeVertexID(1, 42)
	if _, ok := s.Features(id); ok {
		t.Fatal("empty store returned features")
	}
	f := []float32{1, 2, 3}
	s.SetFeatures(id, f)
	got, ok := s.Features(id)
	if !ok || len(got) != 3 || got[2] != 3 {
		t.Fatalf("Features = %v,%v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestLabels(t *testing.T) {
	s := New()
	id := graph.MakeVertexID(0, 7)
	if _, ok := s.Label(id); ok {
		t.Fatal("empty store returned a label")
	}
	s.SetLabel(id, 3)
	if l, ok := s.Label(id); !ok || l != 3 {
		t.Fatalf("Label = %d,%v", l, ok)
	}
}

func TestDeleteVertex(t *testing.T) {
	s := New()
	id := graph.MakeVertexID(0, 9)
	s.SetFeatures(id, []float32{1})
	s.SetLabel(id, 1)
	s.DeleteVertex(id)
	if _, ok := s.Features(id); ok {
		t.Fatal("features survived delete")
	}
	if _, ok := s.Label(id); ok {
		t.Fatal("label survived delete")
	}
}

func TestGatherFeatures(t *testing.T) {
	s := New()
	a := graph.MakeVertexID(0, 1)
	b := graph.MakeVertexID(0, 2)
	missing := graph.MakeVertexID(0, 3)
	s.SetFeatures(a, []float32{1, 2})
	s.SetFeatures(b, []float32{3, 4})
	m := s.GatherFeatures([]graph.VertexID{a, missing, b}, 2)
	want := []float32{1, 2, 0, 0, 3, 4}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("GatherFeatures = %v, want %v", m, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				id := graph.MakeVertexID(graph.VertexType(g), uint64(i))
				s.SetFeatures(id, []float32{float32(i)})
				s.SetLabel(id, int32(i))
				if f, ok := s.Features(id); !ok || f[0] != float32(i) {
					t.Errorf("lost features for %v", id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*5000 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*5000)
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	s := New()
	before := s.MemoryBytes()
	for i := uint64(0); i < 1000; i++ {
		s.SetFeatures(graph.MakeVertexID(0, i), make([]float32, 64))
	}
	after := s.MemoryBytes()
	if after <= before || after < 1000*64*4 {
		t.Fatalf("MemoryBytes %d -> %d, expected growth >= payload", before, after)
	}
}

func TestEdgeFeatures(t *testing.T) {
	s := New()
	k := EdgeKey{Src: graph.MakeVertexID(0, 1), Dst: graph.MakeVertexID(1, 2), Type: 3}
	if _, ok := s.EdgeFeatures(k); ok {
		t.Fatal("empty store returned edge features")
	}
	s.SetEdgeFeatures(k, []float32{9, 8})
	f, ok := s.EdgeFeatures(k)
	if !ok || f[1] != 8 {
		t.Fatalf("EdgeFeatures = %v,%v", f, ok)
	}
	// Distinct type = distinct edge.
	k2 := k
	k2.Type = 4
	if _, ok := s.EdgeFeatures(k2); ok {
		t.Fatal("edge type not part of key")
	}
	s.DeleteEdgeFeatures(k)
	if _, ok := s.EdgeFeatures(k); ok {
		t.Fatal("edge features survived delete")
	}
}
