// Attribute-state digests: every mutation maintains a per-shard incremental
// digest — an order-independent XOR over per-entry checksums — so "do two
// replicas hold byte-identical attributes?" is an O(shards) read, not an
// O(entries) walk. XOR makes insertion order irrelevant (replicas apply
// fan-out writes in different interleavings) and makes updates cheap: an
// overwrite XORs the old entry's sum out and the new one in. The
// anti-entropy scrubber (internal/cluster) compares these digests across a
// replica group to detect silent divergence.
package kvstore

import (
	"math"

	"platod2gl/internal/graph"
)

// Entry-kind tags keep a feature row, a label, and an edge-feature row with
// identical bytes from cancelling in the XOR.
const (
	tagFeature = 0x9e3779b97f4a7c15
	tagLabel   = 0xc2b2ae3d27d4eb4f
	tagEdge    = 0x165667b19e3779f9
)

// mix64 is the splitmix64 finalizer — a cheap, well-distributed 64-bit hash
// step.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// floatsSum folds a feature vector into a running hash. Exact bit patterns
// are hashed, so two stores agree iff the stored floats are byte-identical.
func floatsSum(h uint64, f []float32) uint64 {
	h = mix64(h ^ uint64(len(f)))
	for _, v := range f {
		h = mix64(h ^ uint64(math.Float32bits(v)))
	}
	return h
}

func featureSum(id graph.VertexID, f []float32) uint64 {
	return floatsSum(mix64(uint64(id)^tagFeature), f)
}

func labelSum(id graph.VertexID, label int32) uint64 {
	return mix64(mix64(uint64(id)^tagLabel) ^ uint64(uint32(label)))
}

func edgeSum(k EdgeKey, f []float32) uint64 {
	h := mix64(uint64(k.Src) ^ tagEdge)
	h = mix64(h ^ uint64(k.Dst))
	h = mix64(h ^ uint64(k.Type))
	return floatsSum(h, f)
}

// Digest returns the order-independent checksum of the whole store: XOR of
// every entry's sum, independent of internal shard layout and of the order
// mutations were applied in. Two stores digest equal iff they hold the same
// entries with byte-identical values (modulo XOR collisions). Cost: O(shard
// count), not O(entries) — the digest is maintained incrementally.
func (s *Store) Digest() uint64 {
	var d uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		d ^= sh.digest
		sh.mu.RUnlock()
	}
	return d
}

// DigestWhere recomputes the digest over the subset of entries whose owning
// vertex (the vertex for features/labels, the source for edge features)
// passes keep. This is the per-logical-shard form used by integrity checks
// on routed clusters; unlike Digest it walks entries, so it is O(entries).
func (s *Store) DigestWhere(keep func(id graph.VertexID) bool) uint64 {
	var d uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, f := range sh.features {
			if keep(id) {
				d ^= featureSum(id, f)
			}
		}
		for id, l := range sh.labels {
			if keep(id) {
				d ^= labelSum(id, l)
			}
		}
		for k, f := range sh.edges {
			if keep(k.Src) {
				d ^= edgeSum(k, f)
			}
		}
		sh.mu.RUnlock()
	}
	return d
}

// Reset drops every entry and zeroes the digests — the first step of a
// repair that rebuilds this store from a healthy peer (stale entries the
// peer deleted must not survive the rebuild).
func (s *Store) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.features = make(map[graph.VertexID][]float32)
		sh.labels = make(map[graph.VertexID]int32)
		sh.edges = make(map[EdgeKey][]float32)
		sh.digest = 0
		sh.mu.Unlock()
	}
}
