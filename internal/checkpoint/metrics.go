// Checkpoint observability: how often the session persisted, how much it
// wrote, and whether resume ever had to skip a torn file. Counters follow
// the repo's conventions: cheap atomics, nil-safe helpers, expvar-ready —
// plus save/load latency histograms on the unified internal/obs registry.
package checkpoint

import (
	"expvar"
	"fmt"

	"platod2gl/internal/obs"
)

// Metrics aggregates checkpoint counters and latency histograms. The zero
// value is ready to use; all methods are safe on a nil receiver so metrics
// stay optional.
type Metrics struct {
	Saves      obs.Counter // checkpoints written successfully
	SaveErrors obs.Counter // failed save attempts
	SaveBytes  obs.Counter // total bytes written
	Pruned     obs.Counter // old checkpoints removed by rotation
	Loads      obs.Counter // checkpoints loaded successfully
	Skipped    obs.Counter // torn/corrupt files skipped by LoadLatest

	SaveLatency obs.Histogram // nanoseconds per successful save (write + fsync + rename)
	LoadLatency obs.Histogram // nanoseconds per successful LoadLatest
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	Saves      int64
	SaveErrors int64
	SaveBytes  int64
	Pruned     int64
	Loads      int64
	Skipped    int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Saves:      m.Saves.Load(),
		SaveErrors: m.SaveErrors.Load(),
		SaveBytes:  m.SaveBytes.Load(),
		Pruned:     m.Pruned.Load(),
		Loads:      m.Loads.Load(),
		Skipped:    m.Skipped.Load(),
	}
}

// String renders the snapshot compactly for logs and session reports.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("saves=%d save_errors=%d bytes=%d pruned=%d loads=%d skipped=%d",
		s.Saves, s.SaveErrors, s.SaveBytes, s.Pruned, s.Loads, s.Skipped)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object, for
// expvar.Publish under the caller's chosen name.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register attaches every counter and histogram to r under the stable
// platod2gl_checkpoint_* names documented in docs/OPERATIONS.md.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	for _, c := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"platod2gl_checkpoint_saves_total", "Checkpoints written successfully.", &m.Saves},
		{"platod2gl_checkpoint_save_errors_total", "Failed checkpoint save attempts.", &m.SaveErrors},
		{"platod2gl_checkpoint_save_bytes_total", "Total checkpoint bytes written.", &m.SaveBytes},
		{"platod2gl_checkpoint_pruned_total", "Old checkpoints removed by rotation.", &m.Pruned},
		{"platod2gl_checkpoint_loads_total", "Checkpoints loaded successfully.", &m.Loads},
		{"platod2gl_checkpoint_skipped_total", "Torn or corrupt checkpoint files skipped on resume.", &m.Skipped},
	} {
		r.RegisterCounter(c.name, c.help, nil, c.c)
	}
	r.RegisterHistogram("platod2gl_checkpoint_save_latency_seconds",
		"Latency of one successful checkpoint save (write + fsync + rename).", nil, 1e-9, &m.SaveLatency)
	r.RegisterHistogram("platod2gl_checkpoint_load_latency_seconds",
		"Latency of one successful checkpoint resume.", nil, 1e-9, &m.LoadLatency)
}

func (m *Metrics) addSave(bytes int64) {
	if m != nil {
		m.Saves.Add(1)
		m.SaveBytes.Add(bytes)
	}
}

func (m *Metrics) incSaveError() {
	if m != nil {
		m.SaveErrors.Add(1)
	}
}

func (m *Metrics) incPruned() {
	if m != nil {
		m.Pruned.Add(1)
	}
}

func (m *Metrics) incLoad() {
	if m != nil {
		m.Loads.Add(1)
	}
}

func (m *Metrics) incSkipped() {
	if m != nil {
		m.Skipped.Add(1)
	}
}

func (m *Metrics) observeSave(d int64) {
	if m != nil {
		m.SaveLatency.Observe(d)
	}
}

func (m *Metrics) observeLoad(d int64) {
	if m != nil {
		m.LoadLatency.Observe(d)
	}
}
