// Checkpoint observability: how often the session persisted, how much it
// wrote, and whether resume ever had to skip a torn file. Counters follow
// the repo's conventions: cheap atomics, nil-safe helpers, expvar-ready.
package checkpoint

import (
	"expvar"
	"fmt"
	"sync/atomic"
)

// Metrics aggregates checkpoint counters. The zero value is ready to use;
// all methods are safe on a nil receiver so metrics stay optional.
type Metrics struct {
	Saves      atomic.Int64 // checkpoints written successfully
	SaveErrors atomic.Int64 // failed save attempts
	SaveBytes  atomic.Int64 // total bytes written
	Pruned     atomic.Int64 // old checkpoints removed by rotation
	Loads      atomic.Int64 // checkpoints loaded successfully
	Skipped    atomic.Int64 // torn/corrupt files skipped by LoadLatest
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	Saves      int64
	SaveErrors int64
	SaveBytes  int64
	Pruned     int64
	Loads      int64
	Skipped    int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Saves:      m.Saves.Load(),
		SaveErrors: m.SaveErrors.Load(),
		SaveBytes:  m.SaveBytes.Load(),
		Pruned:     m.Pruned.Load(),
		Loads:      m.Loads.Load(),
		Skipped:    m.Skipped.Load(),
	}
}

// String renders the snapshot compactly for logs and session reports.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("saves=%d save_errors=%d bytes=%d pruned=%d loads=%d skipped=%d",
		s.Saves, s.SaveErrors, s.SaveBytes, s.Pruned, s.Loads, s.Skipped)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object, for
// expvar.Publish under the caller's chosen name.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

func (m *Metrics) addSave(bytes int64) {
	if m != nil {
		m.Saves.Add(1)
		m.SaveBytes.Add(bytes)
	}
}

func (m *Metrics) incSaveError() {
	if m != nil {
		m.SaveErrors.Add(1)
	}
}

func (m *Metrics) incPruned() {
	if m != nil {
		m.Pruned.Add(1)
	}
}

func (m *Metrics) incLoad() {
	if m != nil {
		m.Loads.Add(1)
	}
}

func (m *Metrics) incSkipped() {
	if m != nil {
		m.Skipped.Add(1)
	}
}
