// Package checkpoint persists resilient training sessions to disk: model
// tensors plus a manifest (epoch, step, RNG seed, sampling cursor) and the
// full optimizer state, so a trainer killed mid-run — SIGTERM, OOM, node
// loss — resumes exactly where it stopped instead of restarting the session.
// The paper's setting is continuous dynamic-GNN retraining (Sec. II-A's
// evolving M^(t)): sessions are long-lived and restarts are routine, so
// durability is part of the training loop, not an afterthought.
//
// Durability discipline:
//
//   - Writes are atomic: encode to a temp file in the target directory,
//     fsync, rename into place, fsync the directory. A crash mid-write
//     leaves at worst an ignorable *.tmp, never a half-written checkpoint
//     under the real name.
//   - Every file ends in an 8-byte footer (magic + CRC32 of the payload).
//     Torn or bit-rotted files fail verification and are skipped.
//   - Rotation keeps the newest N checkpoints; LoadLatest walks newest to
//     oldest and returns the first intact one, so one bad file costs one
//     checkpoint interval, not the session.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"platod2gl/internal/gnn"
)

const (
	fileMagic   = "platod2gl-ckpt"
	fileVersion = 1
	// footerMagic marks the last 8 bytes as [magic uint32][crc32 uint32].
	footerMagic uint32 = 0x434b5031 // "CKP1"
	footerLen          = 8

	filePrefix = "ckpt-"
	fileSuffix = ".ckpt"
)

// ErrNoCheckpoint is returned by LoadLatest when the directory holds no
// intact checkpoint (empty, missing, or every candidate corrupt).
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint found")

// ErrCorrupt wraps verification failures: truncated files, bad footers, CRC
// mismatches, undecodable payloads.
var ErrCorrupt = errors.New("checkpoint: corrupt or torn file")

// Manifest is the training-position metadata saved alongside the tensors.
// Epoch/Step name the position training resumes FROM: Step batches of Epoch
// are already applied to the model (Step 0 = start of Epoch).
type Manifest struct {
	Version int
	// Epoch is the epoch in progress (or about to start when Step == 0).
	Epoch int
	// Step is the number of mini-batches of Epoch already trained.
	Step int
	// Seed is the session's base RNG seed; resume verifies it so a
	// checkpoint is never silently applied to a differently-seeded run.
	Seed int64
	// SamplePos is the view's sampling-seed cursor (view.SamplePos) at save
	// time. Restoring it replays the same per-call sampling seed sequence,
	// which is what makes a resumed deterministic run bit-identical.
	SamplePos int64
}

// Tensor is one parameter matrix in serialized form.
type Tensor struct {
	Rows, Cols int
	Data       []float32
}

// State is everything one checkpoint carries.
type State struct {
	Manifest Manifest
	Params   []Tensor
	Opt      gnn.AdamState
}

// fileHeader opens the gob payload so foreign files are rejected before any
// structural decoding.
type fileHeader struct {
	Magic   string
	Version int
}

// Capture snapshots the current model parameters and optimizer state under
// the given manifest. Tensor data is copied, so the caller may keep training
// while the state is encoded or written.
func Capture(m Manifest, params []*gnn.Matrix, opt *gnn.Adam) *State {
	m.Version = fileVersion
	st := &State{Manifest: m, Params: make([]Tensor, len(params))}
	for i, p := range params {
		st.Params[i] = Tensor{Rows: p.Rows, Cols: p.Cols, Data: append([]float32(nil), p.Data...)}
	}
	if opt != nil {
		st.Opt = opt.State()
	}
	return st
}

// Apply restores the state into a model's parameter tensors and optimizer,
// validating shapes first so a mismatched checkpoint fails loudly with the
// offending tensor index and both shapes.
func (s *State) Apply(params []*gnn.Matrix, opt *gnn.Adam) error {
	if len(s.Params) != len(params) {
		return fmt.Errorf("checkpoint: %d tensors, model expects %d", len(s.Params), len(params))
	}
	for i, t := range s.Params {
		p := params[i]
		if t.Rows != p.Rows || t.Cols != p.Cols {
			return fmt.Errorf("checkpoint: tensor %d: checkpoint shape %dx%d, model expects %dx%d",
				i, t.Rows, t.Cols, p.Rows, p.Cols)
		}
	}
	if s.Opt.M != nil {
		if len(s.Opt.M) != len(params) || len(s.Opt.V) != len(params) {
			return fmt.Errorf("checkpoint: optimizer has %d moment tensors, model expects %d", len(s.Opt.M), len(params))
		}
		for i, m := range s.Opt.M {
			if len(m) != len(params[i].Data) || len(s.Opt.V[i]) != len(params[i].Data) {
				return fmt.Errorf("checkpoint: optimizer moment %d has %d values, tensor holds %d",
					i, len(m), len(params[i].Data))
			}
		}
	}
	for i, t := range s.Params {
		copy(params[i].Data, t.Data)
	}
	if opt != nil {
		opt.SetState(s.Opt)
	}
	return nil
}

// encode renders the state as header + gob payload + CRC footer.
func encode(s *State) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: fileVersion}); err != nil {
		return nil, fmt.Errorf("checkpoint: encode header: %w", err)
	}
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode state: %w", err)
	}
	payload := buf.Bytes()
	footer := make([]byte, footerLen)
	binary.LittleEndian.PutUint32(footer[0:], footerMagic)
	binary.LittleEndian.PutUint32(footer[4:], crc32.ChecksumIEEE(payload))
	return append(payload, footer...), nil
}

// decode verifies the footer and CRC, then decodes the payload.
func decode(b []byte) (*State, error) {
	if len(b) < footerLen {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the footer", ErrCorrupt, len(b))
	}
	payload, footer := b[:len(b)-footerLen], b[len(b)-footerLen:]
	if got := binary.LittleEndian.Uint32(footer[0:]); got != footerMagic {
		return nil, fmt.Errorf("%w: bad footer magic %08x", ErrCorrupt, got)
	}
	want := binary.LittleEndian.Uint32(footer[4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("%w: decode header: %v", ErrCorrupt, err)
	}
	if h.Magic != fileMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrCorrupt, h.Magic)
	}
	if h.Version != fileVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", h.Version)
	}
	st := new(State)
	if err := dec.Decode(st); err != nil {
		return nil, fmt.Errorf("%w: decode state: %v", ErrCorrupt, err)
	}
	return st, nil
}

// SaveOptions tune Save.
type SaveOptions struct {
	// Keep bounds how many checkpoint files remain after a successful save
	// (newest first). <= 0 keeps everything.
	Keep int
	// Metrics, if set, receives save/prune counters.
	Metrics *Metrics
}

// Save atomically writes a new checkpoint into dir (created if missing) and
// prunes rotation beyond opts.Keep. The returned path names the new file.
func Save(dir string, s *State, opts SaveOptions) (string, error) {
	start := time.Now()
	b, err := encode(s)
	if err != nil {
		opts.Metrics.incSaveError()
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		opts.Metrics.incSaveError()
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	seqs, err := listSeqs(dir)
	if err != nil {
		opts.Metrics.incSaveError()
		return "", err
	}
	next := 1
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%09d%s", filePrefix, next, fileSuffix))
	if err := writeAtomic(dir, final, b); err != nil {
		opts.Metrics.incSaveError()
		return "", err
	}
	opts.Metrics.addSave(int64(len(b)))
	opts.Metrics.observeSave(int64(time.Since(start)))
	if opts.Keep > 0 {
		// Prune oldest-first so the newest Keep files (including the one just
		// written) survive. Prune failures are non-fatal: the new checkpoint
		// is durable, extra old files only cost disk.
		for i := 0; i < len(seqs)-(opts.Keep-1); i++ {
			path := filepath.Join(dir, fmt.Sprintf("%s%09d%s", filePrefix, seqs[i], fileSuffix))
			if os.Remove(path) == nil {
				opts.Metrics.incPruned()
			}
		}
	}
	return final, nil
}

// writeAtomic lands b at path via temp file + fsync + rename + dir fsync.
func writeAtomic(dir, path string, b []byte) error {
	tmp, err := os.CreateTemp(dir, filePrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(b); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	// Make the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and verifies one checkpoint file.
func Load(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st, err := decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return st, nil
}

// LoadLatest returns the newest intact checkpoint in dir plus its path,
// skipping (and counting) torn or corrupt files. A missing or empty
// directory — or one with only corrupt files — returns ErrNoCheckpoint.
func LoadLatest(dir string, m *Metrics) (*State, string, error) {
	start := time.Now()
	seqs, err := listSeqs(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", ErrNoCheckpoint
		}
		return nil, "", err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, fmt.Sprintf("%s%09d%s", filePrefix, seqs[i], fileSuffix))
		st, err := Load(path)
		if err != nil {
			m.incSkipped()
			continue
		}
		m.incLoad()
		m.observeLoad(int64(time.Since(start)))
		return st, path, nil
	}
	return nil, "", ErrNoCheckpoint
}

// listSeqs returns the sequence numbers of the checkpoint files in dir,
// ascending. Files that do not match the naming scheme are ignored.
func listSeqs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		var seq int
		if _, err := fmt.Sscanf(name, filePrefix+"%d"+fileSuffix, &seq); err != nil {
			continue
		}
		// Reject trailing junk like ckpt-000000001.ckpt.tmp.
		if fmt.Sprintf("%s%09d%s", filePrefix, seq, fileSuffix) != name {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}
