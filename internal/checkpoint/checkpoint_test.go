package checkpoint

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"platod2gl/internal/gnn"
)

// trainedModel returns a model plus an optimizer that has taken a few steps,
// so checkpoints carry non-trivial moment vectors.
func trainedModel(t *testing.T, seed int64) (*gnn.Model, *gnn.Adam) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := gnn.NewModel(6, 12, 3, rng)
	opt := gnn.NewAdam(0.02)
	grads := make([]*gnn.Matrix, len(m.Params()))
	for i, p := range m.Params() {
		grads[i] = gnn.NewMatrix(p.Rows, p.Cols).Glorot(rng)
	}
	for i := 0; i < 3; i++ {
		opt.Step(m.Params(), grads)
	}
	return m, opt
}

func save(t *testing.T, dir string, st *State, opts SaveOptions) string {
	t.Helper()
	path, err := Save(dir, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSaveLoadLatestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	model, opt := trainedModel(t, 1)
	man := Manifest{Epoch: 3, Step: 7, Seed: 42, SamplePos: 99}
	save(t, dir, Capture(man, model.Params(), opt), SaveOptions{})

	var m Metrics
	st, path, err := LoadLatest(dir, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, ".ckpt") {
		t.Fatalf("odd path %q", path)
	}
	if st.Manifest.Epoch != 3 || st.Manifest.Step != 7 || st.Manifest.Seed != 42 || st.Manifest.SamplePos != 99 {
		t.Fatalf("manifest mangled: %+v", st.Manifest)
	}
	fresh, freshOpt := trainedModel(t, 2)
	if err := st.Apply(fresh.Params(), freshOpt); err != nil {
		t.Fatal(err)
	}
	for i, p := range model.Params() {
		for j := range p.Data {
			if p.Data[j] != fresh.Params()[i].Data[j] {
				t.Fatalf("tensor %d[%d] differs after apply", i, j)
			}
		}
	}
	a, b := opt.State(), freshOpt.State()
	if a.T != b.T {
		t.Fatalf("optimizer step count %d vs %d", a.T, b.T)
	}
	for i := range a.M {
		for j := range a.M[i] {
			if a.M[i][j] != b.M[i][j] || a.V[i][j] != b.V[i][j] {
				t.Fatalf("optimizer moments differ at %d[%d]", i, j)
			}
		}
	}
	if m.Snapshot().Loads != 1 {
		t.Fatalf("metrics: %s", m.Snapshot())
	}
}

// TestTornWriteFallsBack truncates the newest checkpoint mid-file (a crash
// during write that somehow landed under the real name) and checks
// LoadLatest skips it and returns the previous intact one.
func TestTornWriteFallsBack(t *testing.T) {
	dir := t.TempDir()
	model, opt := trainedModel(t, 3)
	save(t, dir, Capture(Manifest{Epoch: 1, Seed: 7}, model.Params(), opt), SaveOptions{})
	newest := save(t, dir, Capture(Manifest{Epoch: 2, Seed: 7}, model.Params(), opt), SaveOptions{})

	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var m Metrics
	st, path, err := LoadLatest(dir, &m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifest.Epoch != 1 {
		t.Fatalf("resumed from epoch %d, want the intact epoch-1 checkpoint", st.Manifest.Epoch)
	}
	if path == newest {
		t.Fatal("LoadLatest returned the torn file")
	}
	if s := m.Snapshot(); s.Skipped != 1 || s.Loads != 1 {
		t.Fatalf("metrics: %s", s)
	}
}

// TestCorruptPayloadFallsBack flips a payload byte so the CRC fails.
func TestCorruptPayloadFallsBack(t *testing.T) {
	dir := t.TempDir()
	model, opt := trainedModel(t, 4)
	save(t, dir, Capture(Manifest{Epoch: 5, Seed: 9}, model.Params(), opt), SaveOptions{})
	newest := save(t, dir, Capture(Manifest{Epoch: 6, Seed: 9}, model.Params(), opt), SaveOptions{})

	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0xff
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(newest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of corrupt file: %v", err)
	}
	st, _, err := LoadLatest(dir, nil) // nil metrics must be safe
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifest.Epoch != 5 {
		t.Fatalf("resumed from epoch %d, want 5", st.Manifest.Epoch)
	}
}

func TestRotationKeepsNewestN(t *testing.T) {
	dir := t.TempDir()
	model, opt := trainedModel(t, 5)
	var m Metrics
	for e := 0; e < 5; e++ {
		save(t, dir, Capture(Manifest{Epoch: e, Seed: 1}, model.Params(), opt), SaveOptions{Keep: 3, Metrics: &m})
	}
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("rotation kept %d files, want 3: %v", len(files), files)
	}
	st, _, err := LoadLatest(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifest.Epoch != 4 {
		t.Fatalf("latest is epoch %d, want 4", st.Manifest.Epoch)
	}
	// The three survivors must be the three newest epochs.
	for _, f := range files {
		st, err := Load(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Manifest.Epoch < 2 {
			t.Fatalf("rotation kept old epoch %d", st.Manifest.Epoch)
		}
	}
	if s := m.Snapshot(); s.Saves != 5 || s.Pruned != 2 {
		t.Fatalf("metrics: %s", s)
	}
}

func TestLoadLatestEmptyAndMissing(t *testing.T) {
	if _, _, err := LoadLatest(t.TempDir(), nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "nope"), nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestApplyShapeMismatch(t *testing.T) {
	model, opt := trainedModel(t, 6)
	st := Capture(Manifest{}, model.Params(), opt)
	other := gnn.NewModel(6, 24, 3, rand.New(rand.NewSource(7)))
	err := st.Apply(other.Params(), gnn.NewAdam(0.02))
	if err == nil {
		t.Fatal("expected shape mismatch")
	}
	for _, want := range []string{"tensor 0", "6x12", "6x24", "expects"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// A wrong-length optimizer moment must also be rejected.
	st.Opt.M[0] = st.Opt.M[0][:3]
	if err := st.Apply(model.Params(), gnn.NewAdam(0.02)); err == nil || !strings.Contains(err.Error(), "moment") {
		t.Fatalf("optimizer mismatch not caught: %v", err)
	}
}

// TestTempFilesIgnored checks stray temp files (a crash mid-write) never
// shadow real checkpoints.
func TestTempFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	model, opt := trainedModel(t, 8)
	save(t, dir, Capture(Manifest{Epoch: 2, Seed: 3}, model.Params(), opt), SaveOptions{})
	if err := os.WriteFile(filepath.Join(dir, "ckpt-999999999.ckpt.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := LoadLatest(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifest.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", st.Manifest.Epoch)
	}
	if s := (MetricsSnapshot{}); s.String() == "" {
		t.Fatal("empty snapshot rendering")
	}
}
