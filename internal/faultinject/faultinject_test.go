package faultinject

import (
	"errors"
	"net"
	"testing"
	"time"
)

// echoPipe returns a wrapped client conn whose peer echoes everything back.
func echoPipe(t *testing.T, in *Injector) net.Conn {
	t.Helper()
	cli, srv := in.Pipe()
	go func() {
		buf := make([]byte, 1024)
		for {
			n, err := srv.Read(buf)
			if err != nil {
				return
			}
			if _, err := srv.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli
}

func roundTrip(c net.Conn, payload []byte) error {
	if _, err := c.Write(payload); err != nil {
		return err
	}
	buf := make([]byte, len(payload))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err := c.Read(buf)
	return err
}

func TestCleanConnPassesTraffic(t *testing.T) {
	in := New(1, Config{})
	c := echoPipe(t, in)
	for i := 0; i < 50; i++ {
		if err := roundTrip(c, []byte("hello")); err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
	}
	if d, r := in.Stats(); d != 0 || r != 0 {
		t.Fatalf("injected %d drops, %d resets on a clean config", d, r)
	}
}

func TestDropBreaksConnection(t *testing.T) {
	in := New(7, Config{DropProb: 1})
	c := echoPipe(t, in)
	n, err := c.Write([]byte("doomed"))
	if err != nil || n != len("doomed") {
		t.Fatalf("dropped write should look successful, got n=%d err=%v", n, err)
	}
	// The connection is now broken: further ops fail with the drop error.
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("post-drop write err = %v, want ErrInjectedDrop", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("post-drop read err = %v, want ErrInjectedDrop", err)
	}
	if d, _ := in.Stats(); d != 1 {
		t.Fatalf("drops = %d, want 1", d)
	}
}

func TestResetFailsOperation(t *testing.T) {
	in := New(3, Config{ResetProb: 1})
	c := echoPipe(t, in)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write err = %v, want ErrInjectedReset", err)
	}
	if _, r := in.Stats(); r != 1 {
		t.Fatalf("resets = %d, want 1", r)
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	const lat = 30 * time.Millisecond
	in := New(5, Config{Latency: lat})
	c := echoPipe(t, in)
	start := time.Now()
	if err := roundTrip(c, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < lat {
		t.Fatalf("round trip took %v, want >= %v", got, lat)
	}
}

func TestPartitionBlocksUntilHealed(t *testing.T) {
	in := New(9, Config{PartitionOut: true})
	c := echoPipe(t, in)
	done := make(chan error, 1)
	go func() { done <- roundTrip(c, []byte("stuck")) }()
	select {
	case err := <-done:
		t.Fatalf("write completed through a partition: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.Partition(false, false) // heal
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after partition healed")
	}
}

func TestPartitionOneSided(t *testing.T) {
	// Outbound-only partition: the inbound direction still works, which is
	// what makes one-sided partitions nastier than clean disconnects.
	in := New(11, Config{})
	cli, srv := in.Pipe()
	defer cli.Close()
	defer srv.Close()
	in.Partition(true, false) // inbound blackholed, outbound open
	go func() {
		buf := make([]byte, 8)
		srv.Read(buf)
		srv.Write([]byte("reply"))
	}()
	if _, err := cli.Write([]byte("ping")); err != nil {
		t.Fatalf("outbound write through in-only partition: %v", err)
	}
	got := make(chan struct{})
	go func() {
		cli.Read(make([]byte, 8))
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("read returned through an inbound partition")
	case <-time.After(50 * time.Millisecond):
	}
	in.Partition(false, false)
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after heal")
	}
}

func TestDeterministicFaultSequence(t *testing.T) {
	// Same seed + same single-goroutine op sequence = same fault pattern.
	run := func(seed int64) []bool {
		in := New(seed, Config{DropProb: 0.3})
		var drops []bool
		for i := 0; i < 64; i++ {
			cli, srv := in.Pipe()
			go func() { // drain until the conn dies so writes never block
				buf := make([]byte, 16)
				for {
					if _, err := srv.Read(buf); err != nil {
						return
					}
				}
			}()
			_, werr := cli.Write([]byte("probe"))
			_ = werr
			_, err := cli.Write([]byte("check"))
			drops = append(drops, err != nil)
			cli.Close()
			srv.Close()
		}
		return drops
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestCloseAll(t *testing.T) {
	in := New(1, Config{})
	c1 := echoPipe(t, in)
	c2 := echoPipe(t, in)
	in.CloseAll()
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded on a force-closed conn")
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded on a force-closed conn")
	}
}

func TestWrapListener(t *testing.T) {
	in := New(1, Config{ResetProb: 1})
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := in.WrapListener(base)
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		// Server-side conn is fault injected: this write resets.
		conn.Write([]byte("hello"))
		conn.Close()
	}()
	cli, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := cli.Read(make([]byte, 8)); err == nil {
		t.Fatal("expected reset server write to kill the connection")
	}
}
