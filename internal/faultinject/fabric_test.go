package faultinject

import (
	"net"
	"testing"
	"time"
)

// pipeThrough builds a pipe whose client endpoint is wrapped on the
// fabric's from→to link, with an echo server on the far side.
func pipeThrough(t *testing.T, f *Fabric, from, to int) net.Conn {
	t.Helper()
	c, s := net.Pipe()
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := s.Read(buf)
			if err != nil {
				return
			}
			if _, err := s.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	wrapped := f.Wrap(from, to, c)
	t.Cleanup(func() { wrapped.Close() })
	return wrapped
}

func fabricRoundTrip(c net.Conn) error {
	if _, err := c.Write([]byte("ping")); err != nil {
		return err
	}
	buf := make([]byte, 4)
	_, err := c.Read(buf)
	return err
}

func TestFabricLinkIsolation(t *testing.T) {
	f := NewFabric(1, Config{})
	f.Partition(0, 1, true, true)

	// The partitioned link blocks; an unrelated link is untouched.
	ok := pipeThrough(t, f, 0, 2)
	if err := fabricRoundTrip(ok); err != nil {
		t.Fatalf("healthy link 0->2 failed: %v", err)
	}
	blocked := pipeThrough(t, f, 0, 1)
	done := make(chan error, 1)
	go func() { done <- fabricRoundTrip(blocked) }()
	select {
	case err := <-done:
		t.Fatalf("partitioned link 0->1 completed a round trip (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	f.Heal()
	if err := <-done; err != nil {
		t.Fatalf("healed link 0->1 failed: %v", err)
	}
}

func TestFabricAsymmetricPartition(t *testing.T) {
	f := NewFabric(2, Config{})
	// Outbound-only blackhole: 0's requests to 1 vanish, so the round trip
	// stalls on the write; the reverse direction 1->0 is a different link
	// and keeps working.
	f.Partition(0, 1, false, true)

	reverse := pipeThrough(t, f, 1, 0)
	if err := fabricRoundTrip(reverse); err != nil {
		t.Fatalf("reverse link 1->0 failed under asymmetric partition: %v", err)
	}
	stalled := pipeThrough(t, f, 0, 1)
	done := make(chan error, 1)
	go func() { done <- fabricRoundTrip(stalled) }()
	select {
	case err := <-done:
		t.Fatalf("outbound-partitioned link completed (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	f.Heal()
	<-done
}

func TestFabricPartitionNode(t *testing.T) {
	f := NewFabric(3, Config{})
	// An existing link to the node and one created after the isolation both
	// blackhole; a link not touching the node is unaffected.
	pre := pipeThrough(t, f, 0, 1)
	f.PartitionNode(1)
	post := pipeThrough(t, f, 2, 1)
	bystander := pipeThrough(t, f, 0, 2)

	if err := fabricRoundTrip(bystander); err != nil {
		t.Fatalf("bystander link 0->2 failed: %v", err)
	}
	for name, c := range map[string]net.Conn{"pre-existing 0->1": pre, "post-isolation 2->1": post} {
		done := make(chan error, 1)
		go func() { done <- fabricRoundTrip(c) }()
		select {
		case err := <-done:
			t.Fatalf("%s link completed through isolated node (err=%v)", name, err)
		case <-time.After(50 * time.Millisecond):
		}
		f.Heal()
		if err := <-done; err != nil {
			t.Fatalf("%s link failed after heal: %v", name, err)
		}
		f.PartitionNode(1) // re-isolate for the second iteration
	}
}

func TestFabricDeterministicPerLink(t *testing.T) {
	// The same seed yields the same drop pattern on a link, regardless of
	// traffic on other links (each link has its own derived RNG).
	run := func(noise bool) []bool {
		f := NewFabric(42, Config{DropProb: 0.3})
		if noise {
			// Burn randomness on an unrelated link first.
			n := pipeThrough(t, f, 5, 6)
			for i := 0; i < 20; i++ {
				fabricRoundTrip(n) // errors fine: drops break the conn
			}
		}
		var outcomes []bool
		for i := 0; i < 30; i++ {
			c := pipeThrough(t, f, 0, 1)
			outcomes = append(outcomes, fabricRoundTrip(c) == nil)
			c.Close()
		}
		return outcomes
	}
	base := run(false)
	noisy := run(true)
	for i := range base {
		if base[i] != noisy[i] {
			t.Fatalf("link 0->1 fault sequence changed with unrelated traffic at op %d: %v vs %v", i, base, noisy)
		}
	}
	someDrop := false
	for _, ok := range base {
		if !ok {
			someDrop = true
		}
	}
	if !someDrop {
		t.Fatalf("DropProb 0.3 injected no faults in 30 round trips: %v", base)
	}
}

func TestLinkSeedDistinct(t *testing.T) {
	if linkSeed(7, 1, 2) == linkSeed(7, 2, 1) {
		t.Fatal("linkSeed symmetric in (from, to); directed links must get independent streams")
	}
	if linkSeed(7, 1, 2) == linkSeed(8, 1, 2) {
		t.Fatal("linkSeed ignores the fabric seed")
	}
}
