// Package faultinject wraps net.Conn and net.Listener with deterministic,
// seedable fault injection: added latency, message drops, connection resets,
// and one-sided partitions. It exists so the cluster fault-tolerance layer
// (internal/cluster: timeouts, retries, redial, circuit breakers) can be
// exercised by ordinary `go test` runs instead of requiring a real flaky
// network — the same role tc/netem or a proxy like toxiproxy plays for
// process-level chaos testing.
//
// Faults are decided by a single seeded RNG shared across all connections an
// Injector has wrapped, so a fixed seed yields a reproducible fault sequence
// for a fixed operation order. Configuration can be swapped at runtime
// (SetConfig, Partition) to script scenarios: run clean, partition one shard,
// heal it, raise the drop rate, and so on.
package faultinject

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by operations on a connection the injector
// has reset. It satisfies net.Error (non-temporary, non-timeout) so callers
// treat it like a peer-closed connection.
var ErrInjectedReset = &injectedError{msg: "faultinject: connection reset"}

// ErrInjectedDrop is the terminal error of a connection whose write was
// dropped: the bytes vanished, and rather than desync the stream the
// connection is broken, the way a TCP connection dies when retransmission
// gives up.
var ErrInjectedDrop = &injectedError{msg: "faultinject: message dropped, connection broken"}

type injectedError struct{ msg string }

func (e *injectedError) Error() string   { return e.msg }
func (e *injectedError) Timeout() bool   { return false }
func (e *injectedError) Temporary() bool { return false }

var _ net.Error = (*injectedError)(nil)

// Config holds the fault probabilities and delays applied to wrapped
// connections. The zero value injects nothing.
type Config struct {
	// Latency is added before every Write, plus a uniform random extra in
	// [0, LatencyJitter).
	Latency       time.Duration
	LatencyJitter time.Duration
	// DropProb is the per-Write probability that the payload is silently
	// swallowed. A dropped write breaks the connection (both directions):
	// a stream protocol cannot survive missing bytes, so the conn behaves
	// like a TCP session that lost a segment and timed out — subsequent
	// operations fail with ErrInjectedDrop and the peer side unblocks with
	// an error. Retry-with-redial layers recover; naive callers hang or
	// fail, which is the point.
	DropProb float64
	// ResetProb is the per-operation (Read and Write) probability that the
	// connection is reset immediately: the operation fails with
	// ErrInjectedReset and the conn is closed.
	ResetProb float64
	// PartitionIn blackholes the inbound direction: Reads block (until the
	// partition lifts or the conn closes) instead of delivering data.
	// PartitionOut blackholes outbound Writes the same way. Blocking — not
	// erroring — is deliberate: a partition looks like silence, and only a
	// deadline or per-call timeout can detect it.
	PartitionIn  bool
	PartitionOut bool
}

// Injector produces fault-injecting wrappers that share one seeded RNG and
// one mutable Config.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	cfg     Config
	healed  chan struct{} // closed + replaced whenever cfg changes, to wake partition waiters
	conns   map[*Conn]struct{}
	nDrops  int
	nResets int
}

// New returns an Injector with the given seed and initial config.
func New(seed int64, cfg Config) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		cfg:    cfg,
		healed: make(chan struct{}),
		conns:  make(map[*Conn]struct{}),
	}
}

// SetConfig replaces the fault configuration and wakes any partition-blocked
// operations so they re-evaluate.
func (in *Injector) SetConfig(cfg Config) {
	in.mu.Lock()
	in.cfg = cfg
	close(in.healed)
	in.healed = make(chan struct{})
	in.mu.Unlock()
}

// Config returns the current configuration.
func (in *Injector) Config() Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg
}

// Partition toggles the two blackhole directions, keeping other faults.
func (in *Injector) Partition(inbound, outbound bool) {
	in.mu.Lock()
	in.cfg.PartitionIn = inbound
	in.cfg.PartitionOut = outbound
	close(in.healed)
	in.healed = make(chan struct{})
	in.mu.Unlock()
}

// Stats reports how many drops and resets have been injected so far.
func (in *Injector) Stats() (drops, resets int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nDrops, in.nResets
}

// CloseAll force-closes every live wrapped connection (a crash of the whole
// link layer). New connections wrapped afterwards work normally.
func (in *Injector) CloseAll() {
	in.mu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (in *Injector) forget(c *Conn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
}

// writeFaults samples the per-Write faults under the injector lock so the
// fault sequence is a pure function of (seed, operation order). A drop
// preempts a reset: at most one fault fires per write.
func (in *Injector) writeFaults() (latency time.Duration, drop, reset bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	cfg := in.cfg
	latency = cfg.Latency
	if cfg.LatencyJitter > 0 {
		latency += time.Duration(in.rng.Int63n(int64(cfg.LatencyJitter)))
	}
	if cfg.DropProb > 0 && in.rng.Float64() < cfg.DropProb {
		in.nDrops++
		return latency, true, false
	}
	if cfg.ResetProb > 0 && in.rng.Float64() < cfg.ResetProb {
		in.nResets++
		return latency, false, true
	}
	return latency, false, false
}

func (in *Injector) readFaults() (reset bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.ResetProb > 0 && in.rng.Float64() < in.cfg.ResetProb {
		in.nResets++
		return true
	}
	return false
}

// partitionState reports whether the given direction is blackholed, along
// with the channel that will be closed on the next config change.
func (in *Injector) partitionState(isWrite bool) (blocked bool, healed chan struct{}) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if isWrite {
		return in.cfg.PartitionOut, in.healed
	}
	return in.cfg.PartitionIn, in.healed
}

// Conn is a net.Conn with injected faults. Both directions of the wrapped
// conn pass through it, so wrapping one endpoint is enough to disturb a
// whole request/response exchange.
type Conn struct {
	net.Conn
	in        *Injector
	closeOnce sync.Once
	closed    chan struct{}
	brokenMu  sync.Mutex
	broken    error
}

// WrapConn wraps c with fault injection driven by the injector.
func (in *Injector) WrapConn(c net.Conn) *Conn {
	fc := &Conn{Conn: c, in: in, closed: make(chan struct{})}
	in.mu.Lock()
	in.conns[fc] = struct{}{}
	in.mu.Unlock()
	return fc
}

// breakConn marks the connection permanently failed and closes the
// underlying conn so the peer unblocks.
func (c *Conn) breakConn(err error) {
	c.brokenMu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	c.brokenMu.Unlock()
	c.Close()
}

func (c *Conn) brokenErr() error {
	c.brokenMu.Lock()
	defer c.brokenMu.Unlock()
	return c.broken
}

// waitPartition blocks while the direction is blackholed, returning an error
// only if the connection closed while blocked.
func (c *Conn) waitPartition(isWrite bool) error {
	for {
		blocked, healed := c.in.partitionState(isWrite)
		if !blocked {
			return nil
		}
		select {
		case <-c.closed:
			return net.ErrClosed
		case <-healed:
		}
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.brokenErr(); err != nil {
		return 0, err
	}
	if err := c.waitPartition(false); err != nil {
		return 0, err
	}
	if c.in.readFaults() {
		c.breakConn(ErrInjectedReset)
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.brokenErr(); err != nil {
		return 0, err
	}
	if err := c.waitPartition(true); err != nil {
		return 0, err
	}
	latency, drop, reset := c.in.writeFaults()
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-c.closed:
			t.Stop()
			return 0, net.ErrClosed
		case <-t.C:
		}
	}
	if drop {
		c.breakConn(ErrInjectedDrop)
		// The caller believes the write succeeded; the bytes are gone.
		return len(p), nil
	}
	if reset {
		c.breakConn(ErrInjectedReset)
		return 0, ErrInjectedReset
	}
	return c.Conn.Write(p)
}

// Close closes the underlying connection once and unblocks partition waits.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		c.in.forget(c)
		err = c.Conn.Close()
	})
	return err
}

// Listener wraps accepted connections with fault injection.
type Listener struct {
	net.Listener
	in *Injector
}

// WrapListener returns a listener whose accepted conns are fault-injected.
func (in *Injector) WrapListener(l net.Listener) *Listener {
	return &Listener{Listener: l, in: in}
}

// Accept accepts and wraps the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// Pipe returns an in-memory connection pair whose client endpoint is fault
// injected — the standard wiring for chaos-testing an in-process cluster.
func (in *Injector) Pipe() (client net.Conn, server net.Conn) {
	c, s := net.Pipe()
	return in.WrapConn(c), s
}
