// Fabric: deterministic fault injection for a whole cluster's link
// topology. A single Injector disturbs every connection it wraps
// identically; partition chaos needs finer grain — "replica 2 cannot reach
// anyone, but everyone else is fine", or the nastier asymmetric case where
// A hears B but B never hears A. The Fabric keys one Injector per directed
// (from, to) link, each with its own RNG seeded deterministically from
// (fabric seed, from, to), so the fault sequence on one link is a pure
// function of that link's own operation order — traffic on other links
// cannot perturb it, and a fixed seed reproduces a scenario exactly.
package faultinject

import (
	"net"
	"sync"
)

// linkKey identifies a directed link: the node that dialed and the node it
// dialed. Node numbering is the caller's (test harness indices; -1 is a
// conventional choice for "the external client").
type linkKey struct{ from, to int }

// Fabric hands out per-link Injectors with derived seeds and scripts
// partitions across them.
type Fabric struct {
	seed int64
	base Config

	mu       sync.Mutex
	links    map[linkKey]*Injector
	isolated map[int]bool // nodes currently cut off from everyone
}

// NewFabric returns a fabric whose links start with the base config. Links
// are created lazily on first use, seeded from (seed, from, to).
func NewFabric(seed int64, base Config) *Fabric {
	return &Fabric{
		seed:     seed,
		base:     base,
		links:    make(map[linkKey]*Injector),
		isolated: make(map[int]bool),
	}
}

// linkSeed derives a per-link seed: splitmix64 over the fabric seed and
// both endpoints, so (from, to) and (to, from) get independent streams.
func linkSeed(seed int64, from, to int) int64 {
	x := uint64(seed)
	for _, v := range [...]uint64{uint64(int64(from)), uint64(int64(to))} {
		x ^= v + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	return int64(x)
}

// Link returns the Injector for the directed link from → to, creating it
// (with any standing node isolation applied) on first use.
func (f *Fabric) Link(from, to int) *Injector {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.linkLocked(from, to)
}

func (f *Fabric) linkLocked(from, to int) *Injector {
	k := linkKey{from, to}
	if in, ok := f.links[k]; ok {
		return in
	}
	cfg := f.base
	if f.isolated[from] || f.isolated[to] {
		cfg.PartitionIn = true
		cfg.PartitionOut = true
	}
	in := New(linkSeed(f.seed, from, to), cfg)
	f.links[k] = in
	return in
}

// Wrap fault-injects one connection on the from → to link — the hook to
// hand to a dialer or a harness's WrapConn.
func (f *Fabric) Wrap(from, to int, c net.Conn) net.Conn {
	return f.Link(from, to).WrapConn(c)
}

// SetLink replaces the from → to link's whole config (latency, drops,
// resets, partitions), waking any partition-blocked operations on it.
func (f *Fabric) SetLink(from, to int, cfg Config) {
	f.Link(from, to).SetConfig(cfg)
}

// Partition blackholes the from → to link's directions independently:
// outbound blocks data flowing to `to` (the dialer's writes), inbound
// blocks the responses. Partition(a, b, false, true) is the classic
// asymmetric fault — a's requests vanish while b's answers (to whatever
// arrived earlier) still flow.
func (f *Fabric) Partition(from, to int, inbound, outbound bool) {
	f.Link(from, to).Partition(inbound, outbound)
}

// PartitionNode cuts node off from everyone: every existing link touching
// it is blackholed in both directions, and links created while the
// isolation stands inherit the blackhole. Heal (or a fresh PartitionNode
// set) lifts it.
func (f *Fabric) PartitionNode(node int) {
	f.mu.Lock()
	f.isolated[node] = true
	var touched []*Injector
	for k, in := range f.links {
		if k.from == node || k.to == node {
			touched = append(touched, in)
		}
	}
	f.mu.Unlock()
	for _, in := range touched {
		in.Partition(true, true)
	}
}

// Heal lifts every partition — per-link and node isolation — leaving the
// other fault settings (latency, drops, resets) as they were.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.isolated = make(map[int]bool)
	ins := make([]*Injector, 0, len(f.links))
	for _, in := range f.links {
		ins = append(ins, in)
	}
	f.mu.Unlock()
	for _, in := range ins {
		in.Partition(false, false)
	}
}

// Stats sums injected drops and resets across every link.
func (f *Fabric) Stats() (drops, resets int) {
	f.mu.Lock()
	ins := make([]*Injector, 0, len(f.links))
	for _, in := range f.links {
		ins = append(ins, in)
	}
	f.mu.Unlock()
	for _, in := range ins {
		d, r := in.Stats()
		drops += d
		resets += r
	}
	return drops, resets
}
