package sampler

import (
	"math/rand"
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
)

func buildStore(t testing.TB) *storage.DynamicStore {
	t.Helper()
	s := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
	// Relation 0: vertices 0..99 each with 20 neighbors.
	for src := uint64(0); src < 100; src++ {
		for j := uint64(0); j < 20; j++ {
			s.AddEdge(graph.Edge{
				Src: graph.VertexID(src), Dst: graph.VertexID(1000 + src*20 + j),
				Type: 0, Weight: float64(j + 1),
			})
		}
	}
	// Relation 1: second-hop edges from the 1000.. range.
	for src := uint64(1000); src < 3000; src++ {
		for j := uint64(0); j < 5; j++ {
			s.AddEdge(graph.Edge{
				Src: graph.VertexID(src), Dst: graph.VertexID(10000 + src*5 + j),
				Type: 1, Weight: 1,
			})
		}
	}
	return s
}

func TestSampleNodes(t *testing.T) {
	s := New(buildStore(t), Options{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	nodes := s.SampleNodes(0, 50, rng)
	if len(nodes) != 50 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for _, n := range nodes {
		if uint64(n) >= 100 {
			t.Fatalf("sampled non-source node %v", n)
		}
	}
	if got := s.SampleNodes(7, 5, rng); got != nil {
		t.Fatalf("sampled from empty relation: %v", got)
	}
}

func TestSampleNeighborsShape(t *testing.T) {
	st := buildStore(t)
	for _, par := range []int{0, 4} {
		s := New(st, Options{Parallelism: par, Seed: 3})
		seeds := []graph.VertexID{0, 1, 2, 99}
		nb := s.SampleNeighbors(seeds, 0, 7)
		if len(nb.Neighbors) != len(seeds)*7 {
			t.Fatalf("par=%d: %d neighbors", par, len(nb.Neighbors))
		}
		for i, seed := range seeds {
			for j := 0; j < 7; j++ {
				got := nb.Neighbors[i*7+j]
				lo := 1000 + uint64(seed)*20
				if uint64(got) < lo || uint64(got) >= lo+20 {
					t.Fatalf("par=%d: seed %v sampled foreign neighbor %v", par, seed, got)
				}
			}
		}
	}
}

func TestSampleNeighborsSelfLoopFallback(t *testing.T) {
	st := storage.NewDynamicStore(storage.Options{})
	st.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 1})
	s := New(st, Options{Seed: 1})
	// Seed 42 has no out-edges: all slots must fall back to itself.
	nb := s.SampleNeighbors([]graph.VertexID{42}, 0, 4)
	for _, id := range nb.Neighbors {
		if id != 42 {
			t.Fatalf("fallback neighbor = %v, want 42", id)
		}
	}
}

func TestSampleNeighborsWeighted(t *testing.T) {
	st := storage.NewDynamicStore(storage.Options{})
	st.AddEdge(graph.Edge{Src: 1, Dst: 10, Weight: 9})
	st.AddEdge(graph.Edge{Src: 1, Dst: 20, Weight: 1})
	s := New(st, Options{Seed: 5})
	nb := s.SampleNeighbors([]graph.VertexID{1}, 0, 20000)
	count10 := 0
	for _, id := range nb.Neighbors {
		if id == 10 {
			count10++
		}
	}
	frac := float64(count10) / 20000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("heavy neighbor sampled %.3f of the time, want ~0.9", frac)
	}
}

func TestSampleSubgraphTwoHop(t *testing.T) {
	st := buildStore(t)
	for _, par := range []int{0, 4} {
		s := New(st, Options{Parallelism: par, Seed: 9})
		seeds := []graph.VertexID{0, 5, 10}
		sg := s.SampleSubgraph(seeds, graph.MetaPath{0, 1}, []int{4, 3})
		if len(sg.Layers) != 2 {
			t.Fatalf("layers = %d", len(sg.Layers))
		}
		if len(sg.Layers[0].Nodes) != 3*4 || len(sg.Layers[1].Nodes) != 3*4*3 {
			t.Fatalf("layer sizes = %d/%d", len(sg.Layers[0].Nodes), len(sg.Layers[1].Nodes))
		}
		if sg.NumNodes() != 3+12+36 {
			t.Fatalf("NumNodes = %d", sg.NumNodes())
		}
		// Hop-1 nodes expand their parent seeds.
		for i, n := range sg.Layers[0].Nodes {
			seed := seeds[i/4]
			lo := 1000 + uint64(seed)*20
			if uint64(n) < lo || uint64(n) >= lo+20 {
				t.Fatalf("par=%d hop1[%d]=%v not a neighbor of %v", par, i, n, seed)
			}
		}
		// Hop-2 nodes are relation-1 neighbors of their hop-1 parents.
		for i, n := range sg.Layers[1].Nodes {
			parent := sg.Layers[0].Nodes[i/3]
			lo := 10000 + uint64(parent)*5
			if uint64(n) < lo || uint64(n) >= lo+5 {
				t.Fatalf("hop2[%d]=%v not rel-1 neighbor of %v", i, n, parent)
			}
		}
	}
}

func TestSampleSubgraphPanicsOnLengthMismatch(t *testing.T) {
	s := New(buildStore(t), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SampleSubgraph([]graph.VertexID{1}, graph.MetaPath{0, 1}, []int{5})
}

func TestDeterministicWithSameSeed(t *testing.T) {
	st := buildStore(t)
	a := New(st, Options{Seed: 42}).SampleNeighbors([]graph.VertexID{1, 2, 3}, 0, 5)
	b := New(st, Options{Seed: 42}).SampleNeighbors([]graph.VertexID{1, 2, 3}, 0, 5)
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestParallelMatchesSerialCoverage(t *testing.T) {
	// Parallel sampling cannot be bitwise-equal to serial (different rng
	// streams), but every sample must still be a valid neighbor.
	st := buildStore(t)
	s := New(st, Options{Parallelism: 8, Seed: 11})
	seeds := make([]graph.VertexID, 100)
	for i := range seeds {
		seeds[i] = graph.VertexID(i)
	}
	nb := s.SampleNeighbors(seeds, 0, 10)
	for i, seed := range seeds {
		for j := 0; j < 10; j++ {
			got := nb.Neighbors[i*10+j]
			lo := 1000 + uint64(seed)*20
			if uint64(got) < lo || uint64(got) >= lo+20 {
				t.Fatalf("invalid parallel sample %v for seed %v", got, seed)
			}
		}
	}
}

func BenchmarkNeighborSamplingBatch1024(b *testing.B) {
	st := buildStore(b)
	s := New(st, Options{Parallelism: 4, Seed: 1})
	seeds := make([]graph.VertexID, 1024)
	for i := range seeds {
		seeds[i] = graph.VertexID(i % 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleNeighbors(seeds, 0, 50)
	}
}

func TestSampleNeighborsUniformIgnoresWeights(t *testing.T) {
	st := storage.NewDynamicStore(storage.Options{})
	st.AddEdge(graph.Edge{Src: 1, Dst: 10, Weight: 1000})
	st.AddEdge(graph.Edge{Src: 1, Dst: 20, Weight: 1})
	s := New(st, Options{Seed: 2})
	nb := s.SampleNeighborsUniform([]graph.VertexID{1}, 0, 40000)
	count10 := 0
	for _, id := range nb.Neighbors {
		if id == 10 {
			count10++
		}
	}
	frac := float64(count10) / 40000
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("uniform sampling skewed: %.3f", frac)
	}
	// Fallback for unknown seed.
	nb = s.SampleNeighborsUniform([]graph.VertexID{99}, 0, 3)
	for _, id := range nb.Neighbors {
		if id != 99 {
			t.Fatalf("fallback = %v", id)
		}
	}
}

func TestRandomWalk(t *testing.T) {
	st := storage.NewDynamicStore(storage.Options{})
	// A path graph 0 -> 1 -> 2 -> 3; 3 is a sink.
	for i := uint64(0); i < 3; i++ {
		st.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Weight: 1})
	}
	s := New(st, Options{Seed: 4})
	walks := s.RandomWalk([]graph.VertexID{0, 2}, 0, 5)
	if len(walks) != 2 {
		t.Fatalf("got %d walks", len(walks))
	}
	for _, w := range walks {
		if len(w) != 6 {
			t.Fatalf("walk length %d, want 6", len(w))
		}
	}
	// Walk from 0 deterministically follows the path then parks at 3.
	want := []graph.VertexID{0, 1, 2, 3, 3, 3}
	for i, v := range walks[0] {
		if v != want[i] {
			t.Fatalf("walk[0] = %v, want %v", walks[0], want)
		}
	}
	// Walk from an isolated vertex stays put.
	walks = s.RandomWalk([]graph.VertexID{42}, 0, 3)
	for _, v := range walks[0] {
		if v != 42 {
			t.Fatalf("isolated walk moved: %v", walks[0])
		}
	}
}

func TestRandomWalkWeighted(t *testing.T) {
	st := storage.NewDynamicStore(storage.Options{})
	st.AddEdge(graph.Edge{Src: 1, Dst: 2, Weight: 99})
	st.AddEdge(graph.Edge{Src: 1, Dst: 3, Weight: 1})
	s := New(st, Options{Seed: 6})
	seeds := make([]graph.VertexID, 5000)
	for i := range seeds {
		seeds[i] = 1
	}
	walks := s.RandomWalk(seeds, 0, 1)
	hit2 := 0
	for _, w := range walks {
		if w[1] == 2 {
			hit2++
		}
	}
	if frac := float64(hit2) / 5000; frac < 0.95 {
		t.Fatalf("heavy edge followed only %.3f of walks", frac)
	}
}

func TestSubgraphCompact(t *testing.T) {
	sg := &Subgraph{
		Seeds: []graph.VertexID{1, 2},
		Layers: []Layer{
			{Nodes: []graph.VertexID{2, 3, 1, 3}, Fanout: 2},
		},
	}
	nodes, index := sg.Compact()
	// Distinct: 1, 2, 3 in first-appearance order.
	if len(nodes) != 3 || nodes[0] != 1 || nodes[1] != 2 || nodes[2] != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	wantIdx := []int32{0, 1, 1, 2, 0, 2}
	if len(index) != len(wantIdx) {
		t.Fatalf("index len = %d", len(index))
	}
	for i, w := range wantIdx {
		if index[i] != w {
			t.Fatalf("index = %v, want %v", index, wantIdx)
		}
	}
	// Reconstruction: nodes[index[k]] equals the original flattened node k.
	flat := append(append([]graph.VertexID{}, sg.Seeds...), sg.Layers[0].Nodes...)
	for k, orig := range flat {
		if nodes[index[k]] != orig {
			t.Fatalf("reconstruction broke at %d", k)
		}
	}
}

func TestSampleNodesByDegree(t *testing.T) {
	st := storage.NewDynamicStore(storage.Options{})
	// Source 1: degree 90; source 2: degree 10.
	for i := uint64(0); i < 90; i++ {
		st.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(100 + i), Weight: 1})
	}
	for i := uint64(0); i < 10; i++ {
		st.AddEdge(graph.Edge{Src: 2, Dst: graph.VertexID(500 + i), Weight: 1})
	}
	s := New(st, Options{Seed: 1})
	rng := rand.New(rand.NewSource(7))
	counts := map[graph.VertexID]int{}
	for _, v := range s.SampleNodesByDegree(0, 20000, rng) {
		counts[v]++
	}
	frac := float64(counts[1]) / 20000
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("degree-weighted sampling: source 1 drawn %.3f, want ~0.9", frac)
	}
	if got := s.SampleNodesByDegree(9, 5, rng); got != nil {
		t.Fatalf("empty relation returned %v", got)
	}
}
