// Package sampler implements the TF-operator-layer sampling primitives of
// PlatoD2GL (Sec. III): node sampling (draw vertices from the whole graph),
// neighbor sampling (fixed-fanout weighted neighbors for a batch of seeds),
// and subgraph sampling (multi-hop meta-path expansion pivoted at a seed,
// Sec. VII-C). All three operate against any storage.TopologyStore, so the
// benchmark harness can compare engines under identical query plans.
package sampler

import (
	"math/rand"
	"sync"

	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
)

// Options configure batch samplers.
type Options struct {
	// Parallelism bounds worker goroutines for batch queries; 0 = serial.
	Parallelism int
	// Seed makes sampling deterministic; worker w derives seed+w.
	Seed int64
}

// Sampler executes sampling operators against a topology store.
type Sampler struct {
	store storage.TopologyStore
	opt   Options
}

// New returns a sampler over the given store.
func New(store storage.TopologyStore, opt Options) *Sampler {
	return &Sampler{store: store, opt: opt}
}

// SampleNodes draws k source vertices of relation et uniformly at random
// (with replacement). This is the paper's node-sampling operator, used to
// form mini-batch seeds.
func (s *Sampler) SampleNodes(et graph.EdgeType, k int, rng *rand.Rand) []graph.VertexID {
	srcs := s.store.Sources(et)
	if len(srcs) == 0 {
		return nil
	}
	out := make([]graph.VertexID, k)
	for i := range out {
		out[i] = srcs[rng.Intn(len(srcs))]
	}
	return out
}

// NeighborBatch is the result of batched neighbor sampling: for seed i,
// Neighbors[i*Fanout:(i+1)*Fanout] holds its samples. Seeds without
// out-neighbors fall back to the seed itself (a self-loop), keeping the
// result dense for tensor consumption.
type NeighborBatch struct {
	Seeds     []graph.VertexID
	Fanout    int
	Neighbors []graph.VertexID
}

// SampleNeighbors draws fanout weighted neighbors (with replacement) for
// each seed under relation et, in parallel for large batches.
func (s *Sampler) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int) *NeighborBatch {
	out := &NeighborBatch{
		Seeds:     seeds,
		Fanout:    fanout,
		Neighbors: make([]graph.VertexID, len(seeds)*fanout),
	}
	s.forEachSeed(len(seeds), func(w int, i int, rng *rand.Rand) {
		base := i * fanout
		got := s.store.SampleNeighbors(seeds[i], et, fanout, rng, out.Neighbors[base:base])
		for j := len(got); j < fanout; j++ {
			out.Neighbors[base+j] = seeds[i] // self-loop fallback
		}
	})
	return out
}

// SampleNeighborsUniform draws fanout unweighted neighbors (each with
// probability 1/degree) per seed — the sampling mode plain GraphSAGE uses.
func (s *Sampler) SampleNeighborsUniform(seeds []graph.VertexID, et graph.EdgeType, fanout int) *NeighborBatch {
	out := &NeighborBatch{
		Seeds:     seeds,
		Fanout:    fanout,
		Neighbors: make([]graph.VertexID, len(seeds)*fanout),
	}
	s.forEachSeed(len(seeds), func(w int, i int, rng *rand.Rand) {
		base := i * fanout
		got := s.store.SampleNeighborsUniform(seeds[i], et, fanout, rng, out.Neighbors[base:base])
		for j := len(got); j < fanout; j++ {
			out.Neighbors[base+j] = seeds[i]
		}
	})
	return out
}

// RandomWalk performs length steps of a weighted random walk from every
// seed over relation et (the KnightKing-style primitive, ref. [34] of the
// paper), returning the walks as rows of length+1 vertices (seed included).
// A walk that reaches a sink vertex stays there.
func (s *Sampler) RandomWalk(seeds []graph.VertexID, et graph.EdgeType, length int) [][]graph.VertexID {
	walks := make([][]graph.VertexID, len(seeds))
	s.forEachSeed(len(seeds), func(w int, i int, rng *rand.Rand) {
		walk := make([]graph.VertexID, 0, length+1)
		cur := seeds[i]
		walk = append(walk, cur)
		var buf [1]graph.VertexID
		for step := 0; step < length; step++ {
			got := s.store.SampleNeighbors(cur, et, 1, rng, buf[:0])
			if len(got) == 0 {
				walk = append(walk, cur) // sink: stay put
				continue
			}
			cur = got[0]
			walk = append(walk, cur)
		}
		walks[i] = walk
	})
	return walks
}

// Layer is one hop of a sampled subgraph.
type Layer struct {
	// Type is the relation traversed to reach this layer.
	Type graph.EdgeType
	// Nodes holds the sampled frontier: node j expands seed-layer node
	// j/Fanout.
	Nodes  []graph.VertexID
	Fanout int
}

// Subgraph is the result of meta-path subgraph sampling: Layers[0] expands
// the seeds, Layers[i] expands Layers[i-1].
type Subgraph struct {
	Seeds  []graph.VertexID
	Layers []Layer
}

// NumNodes returns the total node count across seeds and layers.
func (g *Subgraph) NumNodes() int {
	n := len(g.Seeds)
	for _, l := range g.Layers {
		n += len(l.Nodes)
	}
	return n
}

// Compact deduplicates the subgraph's node set: Nodes lists every distinct
// vertex (seeds first, in first-appearance order) and Index maps each
// original position (seeds, then layers in order, concatenated) to its row
// in Nodes. GNN feature gathering over a compacted subgraph touches each
// vertex once instead of once per appearance.
func (g *Subgraph) Compact() (nodes []graph.VertexID, index []int32) {
	total := g.NumNodes()
	index = make([]int32, 0, total)
	rowOf := make(map[graph.VertexID]int32, total)
	appendID := func(id graph.VertexID) {
		row, ok := rowOf[id]
		if !ok {
			row = int32(len(nodes))
			rowOf[id] = row
			nodes = append(nodes, id)
		}
		index = append(index, row)
	}
	for _, id := range g.Seeds {
		appendID(id)
	}
	for _, l := range g.Layers {
		for _, id := range l.Nodes {
			appendID(id)
		}
	}
	return nodes, index
}

// SampleSubgraph expands each seed along the meta-path with the given
// per-hop fanouts (the paper's subgraph-sampling operator; Fig. 10(d-f) uses
// 2-hop meta-paths). len(path) must equal len(fanouts).
func (s *Sampler) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int) *Subgraph {
	if len(path) != len(fanouts) {
		panic("sampler: meta-path and fanout lengths differ")
	}
	sg := &Subgraph{Seeds: seeds, Layers: make([]Layer, len(path))}
	frontier := seeds
	for hop, et := range path {
		fanout := fanouts[hop]
		nodes := make([]graph.VertexID, len(frontier)*fanout)
		// Capture per-hop loop state for the closure.
		fr := frontier
		s.forEachSeed(len(fr), func(w int, i int, rng *rand.Rand) {
			base := i * fanout
			got := s.store.SampleNeighbors(fr[i], et, fanout, rng, nodes[base:base])
			for j := len(got); j < fanout; j++ {
				nodes[base+j] = fr[i]
			}
		})
		sg.Layers[hop] = Layer{Type: et, Nodes: nodes, Fanout: fanout}
		frontier = nodes
	}
	return sg
}

// forEachSeed runs fn(worker, index, rng) for indexes [0, n), either
// serially or across the configured parallelism. Each worker owns a
// deterministic rng derived from the seed.
func (s *Sampler) forEachSeed(n int, fn func(w, i int, rng *rand.Rand)) {
	p := s.opt.Parallelism
	if p <= 1 || n < 64 {
		rng := rand.New(rand.NewSource(s.opt.Seed + 1))
		for i := 0; i < n; i++ {
			fn(0, i, rng)
		}
		return
	}
	if p > n {
		p = n
	}
	var wg sync.WaitGroup
	chunk := (n + p - 1) / p
	for w := 0; w < p; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s.opt.Seed + int64(w) + 1))
			for i := lo; i < hi; i++ {
				fn(w, i, rng)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// SampleNodesByDegree draws k source vertices of relation et with
// probability proportional to out-degree — the standard seed distribution
// when mini-batches should reflect edge mass rather than vertex count.
func (s *Sampler) SampleNodesByDegree(et graph.EdgeType, k int, rng *rand.Rand) []graph.VertexID {
	srcs := s.store.Sources(et)
	if len(srcs) == 0 {
		return nil
	}
	cum := make([]int64, len(srcs))
	var total int64
	for i, src := range srcs {
		total += int64(s.store.Degree(src, et))
		cum[i] = total
	}
	if total == 0 {
		return nil
	}
	out := make([]graph.VertexID, k)
	for i := range out {
		r := rng.Int63n(total)
		lo, hi := 0, len(cum)
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > r {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[i] = srcs[lo]
	}
	return out
}
