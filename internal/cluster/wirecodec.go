// Hand-rolled wire codecs for every RPC payload struct. Layouts exploit
// what gob cannot: vertex ids are a type byte plus a varint of the 56-bit
// local id (frontier ids are small, so 2-4 bytes instead of 8+), counts and
// shard/epoch fields are varints, and the bulk payloads — feature matrices,
// label vectors, snapshot bytes — are flat little-endian copies with no
// per-element reflection. Checksums (Sum fields) ride as fixed 8-byte
// words, preserving the end-to-end integrity protocol unchanged.
//
// Every struct encodes with appendWire and decodes with decodeWire against
// a bounds-checked wire.Reader; decode failures surface through
// Reader.Err/Done, never panics. The layouts are protocol version 1; a
// future version bump negotiates at handshake and switches here.
package cluster

import (
	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/wire"
)

// wireMessage is implemented by every RPC arg/reply struct.
type wireMessage interface {
	appendWire(b []byte) []byte
	decodeWire(r *wire.Reader)
}

// --- shared sub-codecs ---------------------------------------------------

// appendVertexID packs id as its type byte plus a varint local id.
func appendVertexID(b []byte, id graph.VertexID) []byte {
	b = append(b, byte(id.Type()))
	return wire.AppendUvarint(b, id.Local())
}

func readVertexID(r *wire.Reader) graph.VertexID {
	t := r.Byte()
	local := r.Uvarint()
	if local > graph.MaxLocalID {
		// Poison the decode instead of letting MakeVertexID panic on a
		// corrupt frame.
		r.Invalidate()
		return 0
	}
	return graph.VertexID(uint64(t)<<56 | local)
}

func appendVertexIDs(b []byte, ids []graph.VertexID) []byte {
	b = wire.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = appendVertexID(b, id)
	}
	return b
}

func readVertexIDs(r *wire.Reader) []graph.VertexID {
	// Each id is at least 2 bytes (type byte + 1 varint byte).
	n := r.Count(2)
	if r.Err() != nil || n == 0 {
		return nil
	}
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = readVertexID(r)
	}
	return ids
}

// appendEvent lays an event out in ~15-21 bytes (vs ~34 under gob): kind,
// edge type, packed src/dst, fixed weight, varint timestamp.
func appendEvent(b []byte, ev graph.Event) []byte {
	b = append(b, byte(ev.Kind), byte(ev.Edge.Type))
	b = appendVertexID(b, ev.Edge.Src)
	b = appendVertexID(b, ev.Edge.Dst)
	b = wire.AppendFloat64(b, ev.Edge.Weight)
	return wire.AppendVarint(b, ev.Timestamp)
}

func readEvent(r *wire.Reader) graph.Event {
	var ev graph.Event
	ev.Kind = graph.EventKind(r.Byte())
	ev.Edge.Type = graph.EdgeType(r.Byte())
	ev.Edge.Src = readVertexID(r)
	ev.Edge.Dst = readVertexID(r)
	ev.Edge.Weight = r.Float64()
	ev.Timestamp = r.Varint()
	return ev
}

func appendEvents(b []byte, evs []graph.Event) []byte {
	b = wire.AppendUvarint(b, uint64(len(evs)))
	for _, ev := range evs {
		b = appendEvent(b, ev)
	}
	return b
}

func readEvents(r *wire.Reader) []graph.Event {
	// Minimum event size: kind + type + two 2-byte ids + weight + timestamp.
	n := r.Count(15)
	if r.Err() != nil || n == 0 {
		return nil
	}
	evs := make([]graph.Event, n)
	for i := range evs {
		evs[i] = readEvent(r)
	}
	return evs
}

func appendDedup(b []byte, entries []DedupEntry) []byte {
	b = wire.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = wire.AppendUvarint(b, e.ClientID)
		b = wire.AppendUvarint(b, e.Seq)
	}
	return b
}

func readDedup(r *wire.Reader) []DedupEntry {
	n := r.Count(2)
	if r.Err() != nil || n == 0 {
		return nil
	}
	entries := make([]DedupEntry, n)
	for i := range entries {
		entries[i].ClientID = r.Uvarint()
		entries[i].Seq = r.Uvarint()
	}
	return entries
}

func appendShardMap(b []byte, m *ShardMap) []byte {
	b = wire.AppendUvarint(b, m.Epoch)
	b = wire.AppendVarint(b, int64(m.NumShards))
	b = wire.AppendVarint(b, int64(m.Replicas))
	b = wire.AppendUvarint(b, uint64(len(m.Servers)))
	for _, s := range m.Servers {
		b = wire.AppendString(b, s)
	}
	b = wire.AppendUvarint(b, uint64(len(m.Assign)))
	for _, a := range m.Assign {
		b = wire.AppendVarint(b, int64(a))
	}
	return b
}

func readShardMap(r *wire.Reader, m *ShardMap) {
	m.Epoch = r.Uvarint()
	m.NumShards = int(r.Varint())
	m.Replicas = int(r.Varint())
	if n := r.Count(1); r.Err() == nil && n > 0 {
		m.Servers = make([]string, n)
		for i := range m.Servers {
			m.Servers[i] = r.String()
		}
	}
	if n := r.Count(1); r.Err() == nil && n > 0 {
		m.Assign = make([]int, n)
		for i := range m.Assign {
			m.Assign[i] = int(r.Varint())
		}
	}
}

func appendStrings(b []byte, v []string) []byte {
	b = wire.AppendUvarint(b, uint64(len(v)))
	for _, s := range v {
		b = wire.AppendString(b, s)
	}
	return b
}

func readStrings(r *wire.Reader) []string {
	n := r.Count(1)
	if r.Err() != nil || n == 0 {
		return nil
	}
	v := make([]string, n)
	for i := range v {
		v[i] = r.String()
	}
	return v
}

// --- data plane ----------------------------------------------------------

func (a *BatchArgs) appendWire(b []byte) []byte {
	b = appendEvents(b, a.Events)
	b = wire.AppendUvarint(b, a.ClientID)
	b = wire.AppendUvarint(b, a.Seq)
	b = wire.AppendVarint(b, int64(a.Shard))
	b = wire.AppendUvarint(b, a.RouteEpoch)
	return wire.AppendUint64(b, a.Sum)
}

func (a *BatchArgs) decodeWire(r *wire.Reader) {
	a.Events = readEvents(r)
	a.ClientID = r.Uvarint()
	a.Seq = r.Uvarint()
	a.Shard = int(r.Varint())
	a.RouteEpoch = r.Uvarint()
	a.Sum = r.Uint64()
}

func (a *BatchReply) appendWire(b []byte) []byte {
	b = wire.AppendVarint(b, a.NumEdges)
	return wire.AppendBool(b, a.Duplicate)
}

func (a *BatchReply) decodeWire(r *wire.Reader) {
	a.NumEdges = r.Varint()
	a.Duplicate = r.Bool()
}

func (a *SampleArgs) appendWire(b []byte) []byte {
	b = appendVertexIDs(b, a.Seeds)
	b = append(b, byte(a.Type))
	b = wire.AppendVarint(b, int64(a.Fanout))
	b = wire.AppendVarint(b, a.Seed)
	b = wire.AppendVarint(b, int64(a.Shard))
	return wire.AppendUvarint(b, a.RouteEpoch)
}

func (a *SampleArgs) decodeWire(r *wire.Reader) {
	a.Seeds = readVertexIDs(r)
	a.Type = graph.EdgeType(r.Byte())
	a.Fanout = int(r.Varint())
	a.Seed = r.Varint()
	a.Shard = int(r.Varint())
	a.RouteEpoch = r.Uvarint()
}

func (a *SampleReply) appendWire(b []byte) []byte { return appendVertexIDs(b, a.Neighbors) }

func (a *SampleReply) decodeWire(r *wire.Reader) { a.Neighbors = readVertexIDs(r) }

func (a *DegreeArgs) appendWire(b []byte) []byte {
	b = appendVertexIDs(b, a.Nodes)
	b = append(b, byte(a.Type))
	b = wire.AppendVarint(b, int64(a.Shard))
	return wire.AppendUvarint(b, a.RouteEpoch)
}

func (a *DegreeArgs) decodeWire(r *wire.Reader) {
	a.Nodes = readVertexIDs(r)
	a.Type = graph.EdgeType(r.Byte())
	a.Shard = int(r.Varint())
	a.RouteEpoch = r.Uvarint()
}

func (a *DegreeReply) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(a.Degrees)))
	for _, d := range a.Degrees {
		b = wire.AppendVarint(b, int64(d))
	}
	return b
}

func (a *DegreeReply) decodeWire(r *wire.Reader) {
	n := r.Count(1)
	if r.Err() != nil || n == 0 {
		return
	}
	a.Degrees = make([]int, n)
	for i := range a.Degrees {
		a.Degrees[i] = int(r.Varint())
	}
}

func (a *FeatureArgs) appendWire(b []byte) []byte {
	b = appendVertexIDs(b, a.Nodes)
	b = wire.AppendVarint(b, int64(a.Dim))
	b = wire.AppendBool(b, a.WithLabels)
	b = wire.AppendVarint(b, int64(a.Shard))
	return wire.AppendUvarint(b, a.RouteEpoch)
}

func (a *FeatureArgs) decodeWire(r *wire.Reader) {
	a.Nodes = readVertexIDs(r)
	a.Dim = int(r.Varint())
	a.WithLabels = r.Bool()
	a.Shard = int(r.Varint())
	a.RouteEpoch = r.Uvarint()
}

func (a *FeatureReply) appendWire(b []byte) []byte {
	b = wire.AppendFloat32s(b, a.Data)
	return wire.AppendInt32s(b, a.Labels)
}

func (a *FeatureReply) decodeWire(r *wire.Reader) {
	a.Data = r.Float32s()
	a.Labels = r.Int32s()
}

func (a *SourcesArgs) appendWire(b []byte) []byte {
	b = append(b, byte(a.Type))
	b = wire.AppendVarint(b, int64(a.Shard))
	return wire.AppendUvarint(b, a.RouteEpoch)
}

func (a *SourcesArgs) decodeWire(r *wire.Reader) {
	a.Type = graph.EdgeType(r.Byte())
	a.Shard = int(r.Varint())
	a.RouteEpoch = r.Uvarint()
}

func (a *SourcesReply) appendWire(b []byte) []byte { return appendVertexIDs(b, a.Nodes) }

func (a *SourcesReply) decodeWire(r *wire.Reader) { a.Nodes = readVertexIDs(r) }

func (a *SetFeaturesArgs) appendWire(b []byte) []byte {
	b = appendVertexIDs(b, a.Nodes)
	b = wire.AppendVarint(b, int64(a.Dim))
	b = wire.AppendFloat32s(b, a.Data)
	b = wire.AppendInt32s(b, a.Labels)
	b = wire.AppendVarint(b, int64(a.Shard))
	return wire.AppendUvarint(b, a.RouteEpoch)
}

func (a *SetFeaturesArgs) decodeWire(r *wire.Reader) {
	a.Nodes = readVertexIDs(r)
	a.Dim = int(r.Varint())
	a.Data = r.Float32s()
	a.Labels = r.Int32s()
	a.Shard = int(r.Varint())
	a.RouteEpoch = r.Uvarint()
}

func (a *SetFeaturesReply) appendWire(b []byte) []byte { return b }

func (a *SetFeaturesReply) decodeWire(*wire.Reader) {}

func (a *StatsArgs) appendWire(b []byte) []byte { return b }

func (a *StatsArgs) decodeWire(*wire.Reader) {}

func (a *StatsReply) appendWire(b []byte) []byte {
	b = wire.AppendVarint(b, a.NumEdges)
	b = wire.AppendVarint(b, a.MemoryBytes)
	return wire.AppendVarint(b, int64(a.NumSources))
}

func (a *StatsReply) decodeWire(r *wire.Reader) {
	a.NumEdges = r.Varint()
	a.MemoryBytes = r.Varint()
	a.NumSources = int(r.Varint())
}

// --- replica sync --------------------------------------------------------

func (a *SyncStateArgs) appendWire(b []byte) []byte { return b }

func (a *SyncStateArgs) decodeWire(*wire.Reader) {}

func (a *SyncStateReply) appendWire(b []byte) []byte {
	b = wire.AppendBool(b, a.Ready)
	b = wire.AppendUvarint(b, a.SyncEpoch)
	b = wire.AppendUvarint(b, a.WALSeq)
	return wire.AppendVarint(b, a.NumEdges)
}

func (a *SyncStateReply) decodeWire(r *wire.Reader) {
	a.Ready = r.Bool()
	a.SyncEpoch = r.Uvarint()
	a.WALSeq = r.Uvarint()
	a.NumEdges = r.Varint()
}

func (a *SnapshotArgs) appendWire(b []byte) []byte { return b }

func (a *SnapshotArgs) decodeWire(*wire.Reader) {}

func (a *SnapshotReply) appendWire(b []byte) []byte {
	b = wire.AppendBytes(b, a.Snapshot)
	b = wire.AppendUvarint(b, a.WALSeq)
	b = appendDedup(b, a.Dedup)
	return wire.AppendUint64(b, a.Sum)
}

func (a *SnapshotReply) decodeWire(r *wire.Reader) {
	a.Snapshot = r.Bytes()
	a.WALSeq = r.Uvarint()
	a.Dedup = readDedup(r)
	a.Sum = r.Uint64()
}

func (a *WALTailArgs) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, a.AfterSeq)
	return wire.AppendVarint(b, int64(a.MaxBatches))
}

func (a *WALTailArgs) decodeWire(r *wire.Reader) {
	a.AfterSeq = r.Uvarint()
	a.MaxBatches = int(r.Varint())
}

func (a *WALTailReply) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(a.Records)))
	for _, rec := range a.Records {
		b = wire.AppendUvarint(b, rec.Seq)
		b = wire.AppendUvarint(b, rec.ClientID)
		b = wire.AppendUvarint(b, rec.ClientSeq)
		b = appendEvents(b, rec.Events)
	}
	b = wire.AppendUvarint(b, a.EndSeq)
	b = wire.AppendUvarint(b, a.WriterSeq)
	return wire.AppendUint64(b, a.Sum)
}

func (a *WALTailReply) decodeWire(r *wire.Reader) {
	n := r.Count(4)
	if n > 0 {
		a.Records = make([]eventlog.BatchRecord, n)
		for i := range a.Records {
			a.Records[i].Seq = r.Uvarint()
			a.Records[i].ClientID = r.Uvarint()
			a.Records[i].ClientSeq = r.Uvarint()
			a.Records[i].Events = readEvents(r)
		}
	}
	a.EndSeq = r.Uvarint()
	a.WriterSeq = r.Uvarint()
	a.Sum = r.Uint64()
}

// --- routing -------------------------------------------------------------

func (a *RoutingArgs) appendWire(b []byte) []byte { return b }

func (a *RoutingArgs) decodeWire(*wire.Reader) {}

func (a *RoutingReply) appendWire(b []byte) []byte {
	b = wire.AppendBool(b, a.Has)
	return appendShardMap(b, &a.Map)
}

func (a *RoutingReply) decodeWire(r *wire.Reader) {
	a.Has = r.Bool()
	readShardMap(r, &a.Map)
}

func (a *UpdateRoutingArgs) appendWire(b []byte) []byte { return appendShardMap(b, &a.Map) }

func (a *UpdateRoutingArgs) decodeWire(r *wire.Reader) { readShardMap(r, &a.Map) }

func (a *UpdateRoutingReply) appendWire(b []byte) []byte { return wire.AppendUvarint(b, a.Epoch) }

func (a *UpdateRoutingReply) decodeWire(r *wire.Reader) { a.Epoch = r.Uvarint() }

// --- migration -----------------------------------------------------------

func (a *ShardSnapshotArgs) appendWire(b []byte) []byte { return wire.AppendVarint(b, int64(a.Shard)) }

func (a *ShardSnapshotArgs) decodeWire(r *wire.Reader) { a.Shard = int(r.Varint()) }

func (a *ShardSnapshotReply) appendWire(b []byte) []byte {
	b = appendEvents(b, a.Events)
	b = wire.AppendUvarint(b, a.WALSeq)
	b = wire.AppendVarint(b, int64(a.NumShards))
	b = appendDedup(b, a.Dedup)
	return wire.AppendUint64(b, a.Sum)
}

func (a *ShardSnapshotReply) decodeWire(r *wire.Reader) {
	a.Events = readEvents(r)
	a.WALSeq = r.Uvarint()
	a.NumShards = int(r.Varint())
	a.Dedup = readDedup(r)
	a.Sum = r.Uint64()
}

func (a *ShardFeaturesArgs) appendWire(b []byte) []byte { return wire.AppendVarint(b, int64(a.Shard)) }

func (a *ShardFeaturesArgs) decodeWire(r *wire.Reader) { a.Shard = int(r.Varint()) }

func (a *ShardFeaturesReply) appendWire(b []byte) []byte {
	b = appendVertexIDs(b, a.Nodes)
	b = wire.AppendInt32s(b, a.RowLens)
	b = wire.AppendFloat32s(b, a.Data)
	b = wire.AppendInt32s(b, a.Labels)
	b = wire.AppendBools(b, a.HasLabel)
	b = wire.AppendUvarint(b, uint64(len(a.EdgeKeys)))
	for _, k := range a.EdgeKeys {
		b = appendVertexID(b, k.Src)
		b = appendVertexID(b, k.Dst)
		b = append(b, byte(k.Type))
	}
	b = wire.AppendInt32s(b, a.EdgeLens)
	return wire.AppendFloat32s(b, a.EdgeData)
}

func (a *ShardFeaturesReply) decodeWire(r *wire.Reader) {
	a.Nodes = readVertexIDs(r)
	a.RowLens = r.Int32s()
	a.Data = r.Float32s()
	a.Labels = r.Int32s()
	a.HasLabel = r.Bools()
	// Minimum edge key: two 2-byte ids + the type byte.
	n := r.Count(5)
	if n > 0 {
		a.EdgeKeys = make([]kvstore.EdgeKey, n)
		for i := range a.EdgeKeys {
			a.EdgeKeys[i].Src = readVertexID(r)
			a.EdgeKeys[i].Dst = readVertexID(r)
			a.EdgeKeys[i].Type = graph.EdgeType(r.Byte())
		}
	}
	a.EdgeLens = r.Int32s()
	a.EdgeData = r.Float32s()
}

func (a *ParkShardArgs) appendWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(a.Shard))
	return wire.AppendVarint(b, a.TTLMillis)
}

func (a *ParkShardArgs) decodeWire(r *wire.Reader) {
	a.Shard = int(r.Varint())
	a.TTLMillis = r.Varint()
}

func (a *ParkShardReply) appendWire(b []byte) []byte { return wire.AppendUvarint(b, a.WALSeq) }

func (a *ParkShardReply) decodeWire(r *wire.Reader) { a.WALSeq = r.Uvarint() }

func (a *ReleaseShardArgs) appendWire(b []byte) []byte { return wire.AppendVarint(b, int64(a.Shard)) }

func (a *ReleaseShardArgs) decodeWire(r *wire.Reader) { a.Shard = int(r.Varint()) }

func (a *ReleaseShardReply) appendWire(b []byte) []byte { return b }

func (a *ReleaseShardReply) decodeWire(*wire.Reader) {}

func (a *DropShardArgs) appendWire(b []byte) []byte { return wire.AppendVarint(b, int64(a.Shard)) }

func (a *DropShardArgs) decodeWire(r *wire.Reader) { a.Shard = int(r.Varint()) }

func (a *DropShardReply) appendWire(b []byte) []byte {
	b = wire.AppendVarint(b, a.DroppedEdges)
	return wire.AppendVarint(b, a.DroppedVertices)
}

func (a *DropShardReply) decodeWire(r *wire.Reader) {
	a.DroppedEdges = r.Varint()
	a.DroppedVertices = r.Varint()
}

func (a *PullShardArgs) appendWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(a.Shard))
	b = wire.AppendString(b, a.Source)
	b = wire.AppendUvarint(b, a.AfterSeq)
	b = wire.AppendUvarint(b, a.UntilSeq)
	b = wire.AppendBool(b, a.Features)
	b = wire.AppendVarint(b, a.CallTimeoutMillis)
	return wire.AppendVarint(b, int64(a.MaxBatches))
}

func (a *PullShardArgs) decodeWire(r *wire.Reader) {
	a.Shard = int(r.Varint())
	a.Source = r.String()
	a.AfterSeq = r.Uvarint()
	a.UntilSeq = r.Uvarint()
	a.Features = r.Bool()
	a.CallTimeoutMillis = r.Varint()
	a.MaxBatches = int(r.Varint())
}

func (a *PullShardReply) appendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, a.EndSeq)
	b = wire.AppendVarint(b, a.Bytes)
	return wire.AppendVarint(b, a.Batches)
}

func (a *PullShardReply) decodeWire(r *wire.Reader) {
	a.EndSeq = r.Uvarint()
	a.Bytes = r.Varint()
	a.Batches = r.Varint()
}

// --- anti-entropy --------------------------------------------------------

func (a *DigestArgs) appendWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(a.Shard))
	return wire.AppendVarint(b, int64(a.NumShards))
}

func (a *DigestArgs) decodeWire(r *wire.Reader) {
	a.Shard = int(r.Varint())
	a.NumShards = int(r.Varint())
}

func appendDigest(b []byte, d *DigestReply) []byte {
	b = wire.AppendUint64(b, d.Topology)
	b = wire.AppendUint64(b, d.Attrs)
	b = wire.AppendVarint(b, d.NumEdges)
	b = wire.AppendUvarint(b, d.WALSeq)
	b = wire.AppendUvarint(b, d.SyncEpoch)
	return wire.AppendBool(b, d.Ready)
}

func readDigest(r *wire.Reader, d *DigestReply) {
	d.Topology = r.Uint64()
	d.Attrs = r.Uint64()
	d.NumEdges = r.Varint()
	d.WALSeq = r.Uvarint()
	d.SyncEpoch = r.Uvarint()
	d.Ready = r.Bool()
}

func (a *DigestReply) appendWire(b []byte) []byte { return appendDigest(b, a) }

func (a *DigestReply) decodeWire(r *wire.Reader) { readDigest(r, a) }

func (a *AttrsArgs) appendWire(b []byte) []byte { return b }

func (a *AttrsArgs) decodeWire(*wire.Reader) {}

func (a *AttrsReply) appendWire(b []byte) []byte {
	b = a.Attrs.appendWire(b)
	return wire.AppendUint64(b, a.Sum)
}

func (a *AttrsReply) decodeWire(r *wire.Reader) {
	a.Attrs.decodeWire(r)
	a.Sum = r.Uint64()
}

func (a *ScrubArgs) appendWire(b []byte) []byte { return b }

func (a *ScrubArgs) decodeWire(*wire.Reader) {}

func (a *ScrubReply) appendWire(b []byte) []byte {
	rep := &a.Report
	b = wire.AppendVarint(b, rep.DurationNanos)
	b = appendDigest(b, &rep.Local)
	b = wire.AppendUvarint(b, uint64(len(rep.Peers)))
	for i := range rep.Peers {
		p := &rep.Peers[i]
		b = wire.AppendString(b, p.Addr)
		b = wire.AppendString(b, p.Err)
		b = appendDigest(b, &p.Digest)
	}
	b = appendStrings(b, rep.DiskErrors)
	b = wire.AppendBool(b, rep.Diverged)
	b = wire.AppendBool(b, rep.Corrupt)
	b = wire.AppendString(b, rep.RepairPeer)
	b = wire.AppendBool(b, rep.Repaired)
	b = wire.AppendString(b, rep.RepairErr)
	return wire.AppendVarint(b, rep.RepairBytes)
}

func (a *ScrubReply) decodeWire(r *wire.Reader) {
	rep := &a.Report
	rep.DurationNanos = r.Varint()
	readDigest(r, &rep.Local)
	n := r.Count(20)
	if n > 0 {
		rep.Peers = make([]PeerDigest, n)
		for i := range rep.Peers {
			rep.Peers[i].Addr = r.String()
			rep.Peers[i].Err = r.String()
			readDigest(r, &rep.Peers[i].Digest)
		}
	}
	rep.DiskErrors = readStrings(r)
	rep.Diverged = r.Bool()
	rep.Corrupt = r.Bool()
	rep.RepairPeer = r.String()
	rep.Repaired = r.Bool()
	rep.RepairErr = r.String()
	rep.RepairBytes = r.Varint()
}
