package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/wire"
)

// wireFixtures returns one populated instance of every RPC payload struct.
// Every field is non-zero so a codec that silently drops a field fails the
// DeepEqual, and every slice is non-empty so element codecs are exercised.
func wireFixtures() []wireMessage {
	vid := func(typ, local uint64) graph.VertexID {
		return graph.VertexID(typ<<56 | local)
	}
	ids := []graph.VertexID{vid(0, 0), vid(1, 42), vid(7, graph.MaxLocalID)}
	evs := []graph.Event{
		{Kind: graph.AddEdge, Edge: graph.Edge{Src: vid(1, 5), Dst: vid(2, 9), Type: 3, Weight: 1.5}, Timestamp: 1234567},
		{Kind: graph.DeleteEdge, Edge: graph.Edge{Src: vid(0, 1), Dst: vid(0, 2), Type: 1, Weight: -2.25}, Timestamp: -5},
	}
	dedup := []DedupEntry{{ClientID: 1, Seq: 2}, {ClientID: 3, Seq: 4}}
	sm := ShardMap{Epoch: 9, NumShards: 4, Replicas: 2,
		Servers: []string{"a:1", "b:2", "c:3", "d:4"}, Assign: []int{0, 1, 1, 0}}
	sfr := ShardFeaturesReply{
		Nodes:    ids,
		RowLens:  []int32{1, 2, 0},
		Data:     []float32{0.5, -1.25, 3},
		Labels:   []int32{-1, 0, 7},
		HasLabel: []bool{true, false, true},
		EdgeKeys: []kvstore.EdgeKey{{Src: vid(1, 8), Dst: vid(2, 9), Type: 5}},
		EdgeLens: []int32{2},
		EdgeData: []float32{0.25, 0.125},
	}
	dig := DigestReply{Topology: 11, Attrs: 22, NumEdges: 33, WALSeq: 44, SyncEpoch: 55, Ready: true}
	return []wireMessage{
		&BatchArgs{Events: evs, ClientID: 7, Seq: 9, Shard: 2, RouteEpoch: 5, Sum: 0xdeadbeef},
		&BatchReply{NumEdges: 42, Duplicate: true},
		&SampleArgs{Seeds: ids, Type: 3, Fanout: 5, Seed: -12, Shard: 1, RouteEpoch: 8},
		&SampleReply{Neighbors: ids},
		&DegreeArgs{Nodes: ids, Type: 2, Shard: 3, RouteEpoch: 1},
		&DegreeReply{Degrees: []int{0, 5, 123456}},
		&FeatureArgs{Nodes: ids, Dim: 64, WithLabels: true, Shard: 3, RouteEpoch: 2},
		&FeatureReply{Data: []float32{1, 2.5, -3}, Labels: []int32{-1, 0, 7}},
		&SourcesArgs{Type: 1, Shard: 2, RouteEpoch: 3},
		&SourcesReply{Nodes: ids},
		&SetFeaturesArgs{Nodes: ids, Dim: 2, Data: []float32{1, 2, 3, 4, 5, 6}, Labels: []int32{1, 2, 3}, Shard: 1, RouteEpoch: 4},
		&SetFeaturesReply{},
		&StatsArgs{},
		&StatsReply{NumEdges: 10, MemoryBytes: 1 << 30, NumSources: 3},
		&SyncStateArgs{},
		&SyncStateReply{Ready: true, SyncEpoch: 4, WALSeq: 99, NumEdges: 5},
		&SnapshotArgs{},
		&SnapshotReply{Snapshot: []byte{1, 2, 3}, WALSeq: 7, Dedup: dedup, Sum: 11},
		&WALTailArgs{AfterSeq: 3, MaxBatches: 10},
		&WALTailReply{Records: []eventlog.BatchRecord{{Seq: 1, ClientID: 2, ClientSeq: 3, Events: evs}},
			EndSeq: 9, WriterSeq: 10, Sum: 12},
		&RoutingArgs{},
		&RoutingReply{Has: true, Map: sm},
		&UpdateRoutingArgs{Map: sm},
		&UpdateRoutingReply{Epoch: 6},
		&ShardSnapshotArgs{Shard: 4},
		&ShardSnapshotReply{Events: evs, WALSeq: 3, NumShards: 8, Dedup: dedup, Sum: 13},
		&ShardFeaturesArgs{Shard: 1},
		&sfr,
		&ParkShardArgs{Shard: 2, TTLMillis: 5000},
		&ParkShardReply{WALSeq: 77},
		&ReleaseShardArgs{Shard: 3},
		&ReleaseShardReply{},
		&DropShardArgs{Shard: 6},
		&DropShardReply{DroppedEdges: 5, DroppedVertices: 2},
		&PullShardArgs{Shard: 1, Source: "mem://2", AfterSeq: 8, UntilSeq: 9, Features: true,
			CallTimeoutMillis: 1500, MaxBatches: 32},
		&PullShardReply{EndSeq: 9, Bytes: 1 << 20, Batches: 4},
		&DigestArgs{Shard: -1, NumShards: 8},
		&dig,
		&AttrsArgs{},
		&AttrsReply{Attrs: sfr, Sum: 9},
		&ScrubArgs{},
		&ScrubReply{Report: RoundReport{
			DurationNanos: 100,
			Local:         dig,
			Peers:         []PeerDigest{{Addr: "mem://1", Err: "probe: refused", Digest: dig}},
			DiskErrors:    []string{"crc mismatch segment 3"},
			Diverged:      true,
			Corrupt:       true,
			RepairPeer:    "mem://2",
			Repaired:      true,
			RepairErr:     "partial",
			RepairBytes:   9,
		}},
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	for _, msg := range wireFixtures() {
		name := fmt.Sprintf("%T", msg)
		b := msg.appendWire(nil)
		out := freshWireLike(msg)
		r := wire.NewReader(b)
		out.decodeWire(r)
		if err := r.Done(); err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(msg, out) {
			t.Errorf("%s round trip mismatch:\n in  %+v\n out %+v", name, msg, out)
		}
	}
}

// TestWireCodecZeroRoundTrip: the zero value of every payload must encode
// and decode back to itself (nil slices stay nil — important because
// DeepEqual-based tests elsewhere and gob both distinguish nil from empty).
func TestWireCodecZeroRoundTrip(t *testing.T) {
	for _, msg := range wireFixtures() {
		zero := freshWireLike(msg)
		name := fmt.Sprintf("%T", zero)
		b := zero.appendWire(nil)
		out := freshWireLike(msg)
		r := wire.NewReader(b)
		out.decodeWire(r)
		if err := r.Done(); err != nil {
			t.Errorf("%s: zero decode: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(zero, out) {
			t.Errorf("%s zero round trip mismatch:\n out %+v", name, out)
		}
	}
}

// TestWireCodecTruncation: every strict prefix of a valid encoding must
// fail decode cleanly (no panic, Done reports an error).
func TestWireCodecTruncation(t *testing.T) {
	for _, msg := range wireFixtures() {
		name := fmt.Sprintf("%T", msg)
		b := msg.appendWire(nil)
		for cut := 0; cut < len(b); cut++ {
			out := freshWireLike(msg)
			r := wire.NewReader(b[:cut])
			out.decodeWire(r)
			if r.Done() == nil {
				t.Fatalf("%s: decode of %d/%d-byte prefix succeeded", name, cut, len(b))
			}
		}
	}
}

// TestWireFixturesCoverDispatchTable guards fixture completeness: every
// args/reply type reachable through the method table has a fixture, so a
// new RPC cannot land without codec tests.
func TestWireFixturesCoverDispatchTable(t *testing.T) {
	have := map[reflect.Type]bool{}
	for _, m := range wireFixtures() {
		have[reflect.TypeOf(m)] = true
	}
	for _, wm := range wireMethods {
		for _, m := range []wireMessage{wm.newArgs(), wm.newReply()} {
			if !have[reflect.TypeOf(m)] {
				t.Errorf("method %s: no wire fixture for %T", wm.name, m)
			}
		}
	}
}

// TestWireMethodIDsStable pins the method-id assignment. These ids are
// wire-protocol surface: reordering wireMethods breaks mixed-version
// clusters, so any id change must come with a protocol version bump.
func TestWireMethodIDsStable(t *testing.T) {
	want := []string{
		"ApplyBatch", "SampleNeighbors", "Degree", "Features", "SetFeatures",
		"Sources", "Stats", "FetchSnapshot", "FetchWALTail", "SyncState",
		"Routing", "UpdateRouting", "FetchShardSnapshot", "FetchShardFeatures",
		"ParkShard", "ReleaseShard", "DropShard", "PullShard", "ShardDigest",
		"Scrub", "FetchAttrs",
	}
	if len(wireMethods) != len(want) {
		t.Fatalf("wireMethods has %d entries, want %d", len(wireMethods), len(want))
	}
	for id, name := range want {
		if wireMethods[id].name != name {
			t.Errorf("method id %d = %q, want %q", id, wireMethods[id].name, name)
		}
		if got := wireMethodID[ServiceName+"."+name]; got != id {
			t.Errorf("wireMethodID[%s] = %d, want %d", name, got, id)
		}
	}
}

// FuzzWireDecode feeds arbitrary bytes to every payload decoder. Corrupt
// frames must surface as Reader errors — never panics, never multi-GiB
// allocations from forged counts (Count bounds every slice length against
// the bytes actually present).
func FuzzWireDecode(f *testing.F) {
	for _, msg := range wireFixtures() {
		f.Add(msg.appendWire(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, wm := range wireMethods {
			for _, m := range []wireMessage{wm.newArgs(), wm.newReply()} {
				r := wire.NewReader(data)
				m.decodeWire(r)
				_ = r.Done()
			}
		}
	})
}
