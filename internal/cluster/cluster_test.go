package cluster

import (
	"net"
	"net/rpc"
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

func newCluster(t testing.TB, n int) (*Client, func()) {
	t.Helper()
	client, shutdown := NewLocalCluster(n, func(int) (storage.TopologyStore, *kvstore.Store) {
		return storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16, Compress: true}}),
			kvstore.New()
	})
	return client, shutdown
}

func TestApplyBatchAndStats(t *testing.T) {
	client, shutdown := newCluster(t, 4)
	defer shutdown()
	var events []graph.Event
	for i := uint64(0); i < 1000; i++ {
		events = append(events, graph.Event{
			Kind:      graph.AddEdge,
			Edge:      graph.Edge{Src: graph.VertexID(i % 100), Dst: graph.VertexID(1000 + i), Weight: 1},
			Timestamp: int64(i),
		})
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumEdges != 1000 {
		t.Fatalf("NumEdges = %d, want 1000", stats.NumEdges)
	}
	if stats.MemoryBytes <= 0 {
		t.Fatalf("MemoryBytes = %d", stats.MemoryBytes)
	}
	// Sources are partitioned hash-by-source, so per-server NumSources sum
	// to the 100 distinct sources in the stream.
	if stats.NumSources != 100 {
		t.Fatalf("NumSources = %d, want 100", stats.NumSources)
	}
}

func TestDistributedDegreeAndSampling(t *testing.T) {
	client, shutdown := newCluster(t, 3)
	defer shutdown()
	var events []graph.Event
	for src := uint64(0); src < 50; src++ {
		for j := uint64(0); j < 10; j++ {
			events = append(events, graph.Event{
				Kind: graph.AddEdge,
				Edge: graph.Edge{
					Src: graph.VertexID(src), Dst: graph.VertexID(1000 + src*10 + j),
					Weight: float64(j + 1),
				},
			})
		}
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	nodes := []graph.VertexID{0, 25, 49, 999}
	degs, err := client.Degree(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 10, 10, 0}
	for i := range want {
		if degs[i] != want[i] {
			t.Fatalf("Degree(%v) = %d, want %d", nodes[i], degs[i], want[i])
		}
	}
	seeds := []graph.VertexID{0, 10, 20, 30, 40}
	got, err := client.SampleNeighbors(seeds, 0, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seeds)*6 {
		t.Fatalf("got %d samples", len(got))
	}
	for i, seed := range seeds {
		for j := 0; j < 6; j++ {
			n := got[i*6+j]
			lo := 1000 + uint64(seed)*10
			if uint64(n) < lo || uint64(n) >= lo+10 {
				t.Fatalf("seed %v sampled foreign neighbor %v", seed, n)
			}
		}
	}
	// Unknown seed falls back to itself.
	fb, err := client.SampleNeighbors([]graph.VertexID{7777}, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fb {
		if n != 7777 {
			t.Fatalf("fallback = %v", n)
		}
	}
}

func TestDistributedSubgraph(t *testing.T) {
	client, shutdown := newCluster(t, 2)
	defer shutdown()
	var events []graph.Event
	for src := uint64(0); src < 20; src++ {
		for j := uint64(0); j < 5; j++ {
			dst := 100 + src*5 + j
			events = append(events,
				graph.Event{Kind: graph.AddEdge, Edge: graph.Edge{
					Src: graph.VertexID(src), Dst: graph.VertexID(dst), Type: 0, Weight: 1}},
				graph.Event{Kind: graph.AddEdge, Edge: graph.Edge{
					Src: graph.VertexID(dst), Dst: graph.VertexID(10000 + dst), Type: 1, Weight: 1}},
			)
		}
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	layers, err := client.SampleSubgraph([]graph.VertexID{1, 2}, graph.MetaPath{0, 1}, []int{3, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 2 || len(layers[0]) != 6 || len(layers[1]) != 12 {
		t.Fatalf("layer sizes: %d/%d", len(layers[0]), len(layers[1]))
	}
	for i, n := range layers[1] {
		parent := layers[0][i/2]
		if uint64(n) != 10000+uint64(parent) {
			t.Fatalf("hop2[%d] = %v, parent %v", i, n, parent)
		}
	}
	// Mismatched fanouts error.
	if _, err := client.SampleSubgraph([]graph.VertexID{1}, graph.MetaPath{0}, []int{1, 2}, 0); err == nil {
		t.Fatal("expected meta-path mismatch error")
	}
}

func TestFeaturesRPC(t *testing.T) {
	attrsByServer := make([]*kvstore.Store, 2)
	_, shutdown := NewLocalCluster(2, func(i int) (storage.TopologyStore, *kvstore.Store) {
		attrsByServer[i] = kvstore.New()
		return storage.NewDynamicStore(storage.Options{}), attrsByServer[i]
	})
	defer shutdown()
	// Place features on every server (replicated attributes).
	id := graph.MakeVertexID(0, 5)
	for _, a := range attrsByServer {
		a.SetFeatures(id, []float32{1, 2, 3})
	}
	var reply FeatureReply
	// Direct service-level call through one peer.
	svcStore := storage.NewDynamicStore(storage.Options{})
	svc := NewService(svcStore, attrsByServer[0])
	if err := svc.Features(&FeatureArgs{Nodes: []graph.VertexID{id}, Dim: 3}, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Data) != 3 || reply.Data[2] != 3 {
		t.Fatalf("Features = %v", reply.Data)
	}
	// Missing attribute store errors.
	noAttrs := NewService(svcStore, nil)
	if err := noAttrs.Features(&FeatureArgs{}, &reply); err == nil {
		t.Fatal("expected error without attribute store")
	}
}

func TestDistributedMatchesLocalStore(t *testing.T) {
	// The same event stream through a 4-server cluster and a local store
	// must produce identical total edge counts and degrees.
	client, shutdown := newCluster(t, 4)
	defer shutdown()
	local := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})

	gen := dataset.NewGenerator(dataset.OGBNSim().Scale(2e-5), dataset.DynamicMix, 3)
	for batch := 0; batch < 5; batch++ {
		events := gen.Next(2000)
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Fatal(err)
		}
		local.ApplyBatch(events)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumEdges != local.NumEdges() {
		t.Fatalf("edges: cluster %d vs local %d", stats.NumEdges, local.NumEdges())
	}
	srcs := local.Sources(0)
	if len(srcs) > 200 {
		srcs = srcs[:200]
	}
	degs, err := client.Degree(srcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range srcs {
		if degs[i] != local.Degree(src, 0) {
			t.Fatalf("degree(%v): cluster %d vs local %d", src, degs[i], local.Degree(src, 0))
		}
	}
}

func TestNegativeFanoutRejected(t *testing.T) {
	client, shutdown := newCluster(t, 1)
	defer shutdown()
	client.ApplyBatch([]graph.Event{{Kind: graph.AddEdge, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}})
	if _, err := client.SampleNeighbors([]graph.VertexID{1}, 0, -1, 0); err == nil {
		t.Fatal("expected error for negative fanout")
	}
}

func TestSetAndGetFeaturesAcrossCluster(t *testing.T) {
	client, shutdown := newCluster(t, 3)
	defer shutdown()
	const dim = 4
	nodes := make([]graph.VertexID, 50)
	data := make([]float32, len(nodes)*dim)
	labels := make([]int32, len(nodes))
	for i := range nodes {
		nodes[i] = graph.MakeVertexID(0, uint64(i))
		for d := 0; d < dim; d++ {
			data[i*dim+d] = float32(i*10 + d)
		}
		labels[i] = int32(i % 3)
	}
	if err := client.SetFeatures(nodes, dim, data, labels); err != nil {
		t.Fatal(err)
	}
	got, err := client.Features(nodes, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("feature[%d] = %v, want %v", i, got[i], data[i])
		}
	}
	// Payload size validation.
	if err := client.SetFeatures(nodes, dim, data[:3], nil); err == nil {
		t.Fatal("expected payload-size error")
	}
}

func TestDistributedTrainingDataPath(t *testing.T) {
	// End-to-end distributed mini-batch assembly: topology updates, feature
	// push, neighbor sampling, and feature gather all through the cluster.
	client, shutdown := newCluster(t, 4)
	defer shutdown()
	const dim = 8
	var events []graph.Event
	nodes := make([]graph.VertexID, 100)
	data := make([]float32, len(nodes)*dim)
	for i := range nodes {
		nodes[i] = graph.MakeVertexID(0, uint64(i))
		data[i*dim] = float32(i)
		for j := 0; j < 5; j++ {
			events = append(events, graph.Event{Kind: graph.AddEdge, Edge: graph.Edge{
				Src: nodes[i], Dst: nodes[(i+j+1)%len(nodes)], Weight: 1}})
		}
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := client.SetFeatures(nodes, dim, data, nil); err != nil {
		t.Fatal(err)
	}
	seeds := nodes[:16]
	neigh, err := client.SampleNeighbors(seeds, 0, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	feats, err := client.Features(neigh, dim)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != len(neigh)*dim {
		t.Fatalf("gathered %d floats for %d nodes", len(feats), len(neigh))
	}
	// Every gathered row must match its node's pushed feature.
	for i, n := range neigh {
		if feats[i*dim] != float32(n.Local()) {
			t.Fatalf("row %d: feature %v for node %v", i, feats[i*dim], n)
		}
	}
}

func TestServerFailureSurfacesError(t *testing.T) {
	// Kill one of three servers mid-session: calls routed to it must fail
	// loudly rather than silently dropping data.
	peers := make([]*rpc.Client, 3)
	var conns []net.Conn
	for i := 0; i < 3; i++ {
		store := storage.NewDynamicStore(storage.Options{})
		srv := NewServer(NewService(store, kvstore.New()))
		cliConn, srvConn := net.Pipe()
		go srv.ServeConn(srvConn)
		peers[i] = rpc.NewClient(cliConn)
		conns = append(conns, cliConn, srvConn)
	}
	client := NewClient(peers)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var events []graph.Event
	for i := uint64(0); i < 300; i++ {
		events = append(events, graph.Event{Kind: graph.AddEdge,
			Edge: graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1000), Weight: 1}})
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	// Kill server 1.
	peers[1].Close()
	if err := client.ApplyBatch(events); err == nil {
		t.Fatal("ApplyBatch succeeded with a dead server")
	}
	seeds := make([]graph.VertexID, 50)
	for i := range seeds {
		seeds[i] = graph.VertexID(i)
	}
	if _, err := client.SampleNeighbors(seeds, 0, 3, 1); err == nil {
		t.Fatal("SampleNeighbors succeeded with a dead server")
	}
	if _, err := client.Stats(); err == nil {
		t.Fatal("Stats succeeded with a dead server")
	}
}
