// Epoch-versioned shard routing: the placement artifact that makes the
// cluster elastic. Placement used to be frozen at boot — shard(src) =
// h(src) mod NumServers — so a hot or full cluster could only be fixed with
// downtime. A ShardMap decouples the two halves of that formula: the hash
// space stays fixed at NumShards logical shards for the cluster's lifetime,
// while the assignment of logical shards to server groups is a versioned,
// changeable artifact (DistDGL and GLISP both treat placement this way).
//
// Every routed request carries its logical shard and the map epoch the
// client routed under. A server that does not own that shard rejects with a
// NotOwner error carrying its own epoch; the client refreshes its map from
// any live server (the Routing RPC) and re-routes with a bounded retry
// budget, so a cutover is a handful of transparent re-routes rather than a
// failed operation. Epoch-0 requests bypass the check entirely — that is
// the legacy protocol, still spoken by unrouted clusters.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"platod2gl/internal/graph"
)

// ShardOf maps a source vertex to its logical shard under a numShards-way
// hash partitioning. This is the one hash both sides of the protocol share:
// clients use it to partition fan-outs, servers use it to filter and
// migrate per-shard state.
func ShardOf(src graph.VertexID, numShards int) int {
	return int(mix(uint64(src)) % uint64(numShards))
}

// ShardMap is the cluster's routing table: an epoch-versioned assignment of
// logical shards to server groups. NumShards is fixed for the lifetime of a
// cluster (it defines the hash space); Servers and Assign change across
// epochs as servers join and shards migrate. With Replicas = R, Servers is
// grouped consecutively exactly like client peer lists: group g's replicas
// are Servers[g*R:(g+1)*R].
type ShardMap struct {
	Epoch     uint64
	NumShards int
	Replicas  int
	Servers   []string // flat, grouped by Replicas
	Assign    []int    // len NumShards; Assign[s] = owning server group
}

// IdentityMap builds the epoch-1 map equivalent to the legacy frozen
// placement: shard s lives on server group s mod groups (with as many
// logical shards as requested — typically a small multiple of the server
// count, so there is something to move when the cluster grows).
func IdentityMap(servers []string, replicas, numShards int) (*ShardMap, error) {
	if replicas < 1 {
		replicas = 1
	}
	if len(servers) == 0 || len(servers)%replicas != 0 {
		return nil, fmt.Errorf("cluster: %d servers not divisible into replica groups of %d", len(servers), replicas)
	}
	groups := len(servers) / replicas
	if numShards <= 0 {
		numShards = groups
	}
	if numShards < groups {
		return nil, fmt.Errorf("cluster: %d logical shards cannot cover %d server groups", numShards, groups)
	}
	m := &ShardMap{
		Epoch:     1,
		NumShards: numShards,
		Replicas:  replicas,
		Servers:   append([]string(nil), servers...),
		Assign:    make([]int, numShards),
	}
	for s := range m.Assign {
		m.Assign[s] = s % groups
	}
	return m, nil
}

// NumGroups returns the number of server groups in the map.
func (m *ShardMap) NumGroups() int {
	if m.Replicas <= 0 {
		return len(m.Servers)
	}
	return len(m.Servers) / m.Replicas
}

// Group returns the addresses of server group g.
func (m *ShardMap) Group(g int) []string {
	r := m.Replicas
	if r <= 0 {
		r = 1
	}
	return m.Servers[g*r : (g+1)*r]
}

// GroupOf returns the index of the server group containing addr, or -1.
func (m *ShardMap) GroupOf(addr string) int {
	r := m.Replicas
	if r <= 0 {
		r = 1
	}
	for i, a := range m.Servers {
		if a == addr {
			return i / r
		}
	}
	return -1
}

// OwnedBy lists the logical shards assigned to server group g, ascending.
func (m *ShardMap) OwnedBy(g int) []int {
	var owned []int
	for s, a := range m.Assign {
		if a == g {
			owned = append(owned, s)
		}
	}
	return owned
}

// Clone deep-copies the map (the driver mutates clones, never a live map).
func (m *ShardMap) Clone() *ShardMap {
	cp := *m
	cp.Servers = append([]string(nil), m.Servers...)
	cp.Assign = append([]int(nil), m.Assign...)
	return &cp
}

// Validate checks structural invariants.
func (m *ShardMap) Validate() error {
	if m.Epoch == 0 {
		return fmt.Errorf("cluster: shard map epoch 0 is reserved for unrouted requests")
	}
	r := m.Replicas
	if r < 1 {
		return fmt.Errorf("cluster: shard map replicas %d < 1", m.Replicas)
	}
	if len(m.Servers) == 0 || len(m.Servers)%r != 0 {
		return fmt.Errorf("cluster: %d servers not divisible into replica groups of %d", len(m.Servers), r)
	}
	if m.NumShards <= 0 || len(m.Assign) != m.NumShards {
		return fmt.Errorf("cluster: shard map has %d assignments for %d shards", len(m.Assign), m.NumShards)
	}
	groups := len(m.Servers) / r
	seen := make(map[string]bool, len(m.Servers))
	for _, a := range m.Servers {
		if a == "" {
			return fmt.Errorf("cluster: shard map contains an empty server address")
		}
		if seen[a] {
			return fmt.Errorf("cluster: shard map lists server %s twice", a)
		}
		seen[a] = true
	}
	for s, g := range m.Assign {
		if g < 0 || g >= groups {
			return fmt.Errorf("cluster: shard %d assigned to group %d of %d", s, g, groups)
		}
	}
	return nil
}

// String renders the map compactly for logs and the rebalance CLI.
func (m *ShardMap) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d, %d shards x %d replicas over %d groups:", m.Epoch, m.NumShards, m.Replicas, m.NumGroups())
	for g := 0; g < m.NumGroups(); g++ {
		owned := m.OwnedBy(g)
		fmt.Fprintf(&b, " [%s:", strings.Join(m.Group(g), ","))
		for i, s := range owned {
			if i > 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// CountBalancePlan computes the migrations that bring per-group shard
// counts within one of each other, moving shards from the most-loaded
// groups to the least-loaded. This is the pluggable placement policy's
// trivial instance — a locality-aware (min-cut / power-law) policy slots in
// here later by proposing different (shard, to) pairs.
type Move struct {
	Shard    int
	From, To int
}

// CountBalancePlan returns the moves to count-balance m (empty when already
// balanced). Moves are ordered and independent; the driver executes them
// one at a time.
func CountBalancePlan(m *ShardMap) []Move {
	groups := m.NumGroups()
	if groups <= 1 {
		return nil
	}
	owned := make([][]int, groups)
	for g := range owned {
		owned[g] = m.OwnedBy(g)
	}
	var moves []Move
	for {
		// Recompute extremes each round; ties break toward lower indices so
		// the plan is deterministic.
		maxG, minG := 0, 0
		for g := 1; g < groups; g++ {
			if len(owned[g]) > len(owned[maxG]) {
				maxG = g
			}
			if len(owned[g]) < len(owned[minG]) {
				minG = g
			}
		}
		if len(owned[maxG])-len(owned[minG]) <= 1 {
			return moves
		}
		// Move the highest-numbered shard off the fullest group: stable and
		// leaves low shards (often the oldest/hottest) in place.
		src := owned[maxG]
		shard := src[len(src)-1]
		owned[maxG] = src[:len(src)-1]
		owned[minG] = append(owned[minG], shard)
		sort.Ints(owned[minG])
		moves = append(moves, Move{Shard: shard, From: maxG, To: minG})
	}
}

// ---------------------------------------------------------------------------
// Server-side routing state.

// serviceRouting is a Service's installed view of the shard map: the map,
// which group this server is (or -1 when it is joining and owns nothing
// yet), and the derived per-shard ownership bitmap.
type serviceRouting struct {
	m     *ShardMap
	self  int
	owned []bool
}

func newServiceRouting(m *ShardMap, self int) *serviceRouting {
	rt := &serviceRouting{m: m, self: self, owned: make([]bool, m.NumShards)}
	if self >= 0 {
		for s, g := range m.Assign {
			if g == self {
				rt.owned[s] = true
			}
		}
	}
	return rt
}

// SetAdvertise records the address this server appears under in shard maps;
// UpdateRouting resolves the server's own group by this address. The server
// binary sets it from -advertise (defaulting to -addr); in-process clusters
// use their pseudo-addresses.
func (s *Service) SetAdvertise(addr string) { s.advertise.Store(&addr) }

// Advertise returns the server's advertised address ("" when unset).
func (s *Service) Advertise() string {
	if p := s.advertise.Load(); p != nil {
		return *p
	}
	return ""
}

// SetDialResolver installs the transport factory PullShard uses to reach a
// migration source by address: TCP in the server binary, in-memory pipes in
// LocalCluster.
func (s *Service) SetDialResolver(resolve func(addr string) Dialer) {
	s.routeMu.Lock()
	s.dialFor = resolve
	s.routeMu.Unlock()
}

func (s *Service) resolveDialer(addr string) (Dialer, error) {
	s.routeMu.Lock()
	resolve := s.dialFor
	s.routeMu.Unlock()
	if resolve == nil {
		return nil, fmt.Errorf("cluster: server has no dial resolver for %s (SetDialResolver not called)", addr)
	}
	d := resolve(addr)
	if d == nil {
		return nil, fmt.Errorf("cluster: dial resolver cannot reach %s", addr)
	}
	return d, nil
}

// SetRouting installs a shard map with an explicit self group index (-1:
// owns nothing). Used by in-process clusters and at boot; remote pushes go
// through UpdateRouting, which resolves self by advertised address. Parked
// shards this server no longer owns are released.
func (s *Service) SetRouting(m *ShardMap, self int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if self >= m.NumGroups() {
		return fmt.Errorf("cluster: self group %d out of range (%d groups)", self, m.NumGroups())
	}
	s.installRouting(newServiceRouting(m.Clone(), self))
	return nil
}

// RoutingSnapshot returns the installed map (a private copy) and self group
// index, or nil when the server is unrouted.
func (s *Service) RoutingSnapshot() (*ShardMap, int) {
	rt := s.routing.Load()
	if rt == nil {
		return nil, -1
	}
	return rt.m.Clone(), rt.self
}

// installRouting swaps the routing state in and releases any parked shard
// this server stopped owning — the parked writers wake, re-check ownership,
// and bounce their clients to the new owner with NotOwner.
func (s *Service) installRouting(rt *serviceRouting) {
	s.routing.Store(rt)
	s.parkMu.Lock()
	for shard, gate := range s.parked {
		if shard >= len(rt.owned) || !rt.owned[shard] {
			close(gate.ch)
			if gate.timer != nil {
				gate.timer.Stop()
			}
			delete(s.parked, shard)
		}
	}
	s.parkMu.Unlock()
}

// notOwnerPrefix is the wire form of a routed request landing on a server
// that does not own its shard. It travels as an rpc.ServerError string;
// the routing epoch rides in the message so the client knows whether a map
// refresh can help.
const notOwnerPrefix = "cluster: not owner of shard "

func notOwnerError(shard int, epoch uint64) error {
	return fmt.Errorf("%s%d (routing epoch %d)", notOwnerPrefix, shard, epoch)
}

// notOwnerEpoch reports whether err is a NotOwner rejection and extracts
// the rejecting server's routing epoch.
func notOwnerEpoch(err error) (uint64, bool) {
	if err == nil {
		return 0, false
	}
	msg := err.Error()
	i := strings.Index(msg, notOwnerPrefix)
	if i < 0 {
		return 0, false
	}
	var shard int
	var epoch uint64
	if _, serr := fmt.Sscanf(msg[i+len(notOwnerPrefix):], "%d (routing epoch %d)", &shard, &epoch); serr != nil {
		return 0, true // malformed tail; still a NotOwner, refresh unconditionally
	}
	return epoch, true
}

// checkRoute is the server-side ownership gate: epoch-0 requests (legacy
// unrouted clients) and unrouted servers pass; otherwise the shard must be
// owned under the installed map. The rejection carries this server's epoch
// so a stale client knows to refresh.
func (s *Service) checkRoute(shard int, epoch uint64) error {
	if epoch == 0 {
		return nil
	}
	rt := s.routing.Load()
	if rt == nil {
		return nil
	}
	if shard < 0 || shard >= rt.m.NumShards {
		return fmt.Errorf("cluster: shard %d out of range (%d logical shards)", shard, rt.m.NumShards)
	}
	if !rt.owned[shard] {
		s.metrics.incNotOwnerReject()
		return notOwnerError(shard, rt.m.Epoch)
	}
	return nil
}

// routedNumShards returns the logical shard count the server routes under,
// or 0 when unrouted.
func (s *Service) routedNumShards() int {
	if rt := s.routing.Load(); rt != nil {
		return rt.m.NumShards
	}
	return 0
}

// ---------------------------------------------------------------------------
// Per-shard write parking (the cutover gate).

// shardGate parks writes to one migrating shard. The TTL timer is the
// dead-driver backstop: if the migration driver vanishes between park and
// cutover, the gate self-releases instead of wedging the shard's writes
// until every client times out forever.
type shardGate struct {
	ch    chan struct{}
	timer *time.Timer
}

// gateShardWrite parks a routed write to a shard that is mid-cutover until
// the gate releases (cutover routing push, explicit ReleaseShard, or TTL
// expiry), then re-checks ownership — after a cutover the shard has a new
// owner and the parked write must bounce, not apply. Called before pauseMu
// so parked writes cannot deadlock ParkShard's own drain barrier. Legacy
// (epoch-0) writes bypass the gate, exactly as they bypass routing.
func (s *Service) gateShardWrite(shard int, epoch uint64) error {
	if epoch == 0 {
		return nil
	}
	s.parkMu.Lock()
	gate, ok := s.parked[shard]
	s.parkMu.Unlock()
	if !ok {
		return nil
	}
	<-gate.ch
	return s.checkRoute(shard, epoch)
}

// parkShard installs the gate for one shard (idempotent) and returns after
// every in-flight write has drained into the WAL: the Pause round-trip is a
// barrier on pauseMu, which every applying batch holds for reading.
func (s *Service) parkShard(shard int, ttl time.Duration) {
	s.parkMu.Lock()
	if _, ok := s.parked[shard]; !ok {
		gate := &shardGate{ch: make(chan struct{})}
		if ttl > 0 {
			gate.timer = time.AfterFunc(ttl, func() { s.releaseShard(shard) })
		}
		s.parked[shard] = gate
	}
	s.parkMu.Unlock()
	resume := s.Pause()
	resume()
}

// releaseShard opens the gate (idempotent).
func (s *Service) releaseShard(shard int) {
	s.parkMu.Lock()
	if gate, ok := s.parked[shard]; ok {
		close(gate.ch)
		if gate.timer != nil {
			gate.timer.Stop()
		}
		delete(s.parked, shard)
	}
	s.parkMu.Unlock()
}

// ReleaseAllShards opens every parked write gate. Servers call it on
// shutdown and restart: a park belongs to a migration driver's in-flight
// cutover, and neither the gate channels nor the TTL timers survive the
// process, so a restarted server that rebuilt `parked` entries from nothing
// must not leave old parks wedging writes until clients give up — the
// restart already aborted whatever migration the park served.
func (s *Service) ReleaseAllShards() {
	s.parkMu.Lock()
	for shard, gate := range s.parked {
		close(gate.ch)
		if gate.timer != nil {
			gate.timer.Stop()
		}
		delete(s.parked, shard)
	}
	s.parkMu.Unlock()
}

// ---------------------------------------------------------------------------
// Routing RPCs.

// RoutingArgs is empty.
type RoutingArgs struct{}

// RoutingReply carries the server's installed shard map. Has is false on an
// unrouted (legacy) server.
type RoutingReply struct {
	Has bool
	Map ShardMap
}

// Routing reports this server's shard map — the handshake and refresh RPC.
// Always served, even while catching up: routing state is control-plane.
func (s *Service) Routing(_ *RoutingArgs, reply *RoutingReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("Routing", start) }()
	defer guard("Routing", &err)
	if rt := s.routing.Load(); rt != nil {
		reply.Has = true
		reply.Map = *rt.m.Clone()
	}
	return nil
}

// UpdateRoutingArgs pushes a new shard map to a server.
type UpdateRoutingArgs struct {
	Map ShardMap
}

// UpdateRoutingReply reports the server's routing epoch after the push —
// equal to the pushed epoch when it was installed, higher when the server
// already knew a newer map (the push is then a no-op).
type UpdateRoutingReply struct {
	Epoch uint64
}

// UpdateRouting installs a newer shard map. The server resolves its own
// group by its advertised address; a server absent from the map owns
// nothing (it keeps serving legacy traffic and NotOwner-bounces routed
// requests). Stale pushes (epoch <= installed) are ignored, making the
// driver's fan-out push idempotent and unordered-safe.
func (s *Service) UpdateRouting(args *UpdateRoutingArgs, reply *UpdateRoutingReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("UpdateRouting", start) }()
	defer guard("UpdateRouting", &err)
	m := args.Map.Clone()
	if verr := m.Validate(); verr != nil {
		return verr
	}
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if cur := s.routing.Load(); cur != nil {
		if m.Epoch <= cur.m.Epoch {
			reply.Epoch = cur.m.Epoch
			return nil
		}
		if m.NumShards != cur.m.NumShards {
			return fmt.Errorf("cluster: shard map push changes NumShards %d -> %d (fixed for the cluster's lifetime)",
				cur.m.NumShards, m.NumShards)
		}
	}
	self := -1
	if addr := s.Advertise(); addr != "" {
		self = m.GroupOf(addr)
	} else if cur := s.routing.Load(); cur != nil {
		self = cur.self // address-less in-process server keeps its identity
	}
	s.installRouting(newServiceRouting(m, self))
	reply.Epoch = m.Epoch
	return nil
}

// approxMapBytes sizes a shard map payload for the RPC histograms.
func approxMapBytes(m *ShardMap) int64 {
	n := int64(24 + 8*len(m.Assign))
	for _, a := range m.Servers {
		n += int64(len(a)) + 8
	}
	return n
}

// ---------------------------------------------------------------------------
// Routed request stamping (client side).

// routedArgs is implemented by every per-shard request payload: the client
// stamps the target shard and its map epoch immediately before each routing
// attempt, so a re-route after a refresh carries the new epoch.
type routedArgs interface {
	setRoute(shard int, epoch uint64)
}

func (a *BatchArgs) setRoute(s int, e uint64)       { a.Shard, a.RouteEpoch = s, e }
func (a *SampleArgs) setRoute(s int, e uint64)      { a.Shard, a.RouteEpoch = s, e }
func (a *DegreeArgs) setRoute(s int, e uint64)      { a.Shard, a.RouteEpoch = s, e }
func (a *FeatureArgs) setRoute(s int, e uint64)     { a.Shard, a.RouteEpoch = s, e }
func (a *SetFeaturesArgs) setRoute(s int, e uint64) { a.Shard, a.RouteEpoch = s, e }
func (a *SourcesArgs) setRoute(s int, e uint64)     { a.Shard, a.RouteEpoch = s, e }

// stampRoute stamps args when it is a routed payload.
func stampRoute(args any, shard int, epoch uint64) {
	if ra, ok := args.(routedArgs); ok {
		ra.setRoute(shard, epoch)
	}
}

// ---------------------------------------------------------------------------
// Client-side routing: adoption, refresh, re-route.

// clientRoute is the client's resolved view of a shard map: the map plus
// each server group's peers and a per-group read-rotation counter.
type clientRoute struct {
	m      *ShardMap
	groups [][]*peer
	rr     []atomic.Uint64
}

// maxReroutes bounds how many map-refresh-and-retry hops one operation may
// take chasing a moving shard. Each cutover advances the epoch by one, so
// anything beyond a few hops means the map is churning faster than the
// client can follow — surface the error.
const maxReroutes = 4

// rerouteSettleDelay is the wait before retrying when a NotOwner rejection
// arrived but no newer map is visible yet — the cutover push is mid-flight
// across the server set.
const rerouteSettleDelay = 10 * time.Millisecond

// AdoptRouting installs a shard map on the client: peers are created for
// any servers the client has not dialed yet (via Options.DialServer, TCP by
// default), and all per-shard operations route through the map from the
// next call on. NumShards is fixed once adopted; only newer epochs of the
// same hash space are accepted.
func (c *Client) AdoptRouting(m *ShardMap) error {
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	return c.adoptLocked(m)
}

func (c *Client) adoptLocked(m *ShardMap) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.Replicas != c.replicas {
		return fmt.Errorf("cluster: shard map has %d replicas per group, client is configured for %d", m.Replicas, c.replicas)
	}
	if cur := c.route.Load(); cur != nil {
		if m.NumShards != cur.m.NumShards {
			return fmt.Errorf("cluster: shard map changes NumShards %d -> %d", cur.m.NumShards, m.NumShards)
		}
		if m.Epoch <= cur.m.Epoch {
			return nil // already current
		}
	}
	m = m.Clone()
	groups := make([][]*peer, m.NumGroups())
	for g := range groups {
		ps := make([]*peer, 0, c.replicas)
		for _, addr := range m.Group(g) {
			pe, err := c.peerFor(addr)
			if err != nil {
				return err
			}
			ps = append(ps, pe)
		}
		groups[g] = ps
	}
	c.route.Store(&clientRoute{m: m, groups: groups, rr: make([]atomic.Uint64, len(groups))})
	return nil
}

// RoutingMap returns the client's adopted shard map (a copy), or nil for an
// unrouted client.
func (c *Client) RoutingMap() *ShardMap {
	if rt := c.route.Load(); rt != nil {
		return rt.m.Clone()
	}
	return nil
}

// peerFor returns the peer for addr, creating it (with a lazy dialer) on
// first sight — how the client grows from N to N+1 servers without
// redialing.
func (c *Client) peerFor(addr string) (*peer, error) {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	if idx, ok := c.peerByAddr[addr]; ok {
		return c.peers[idx], nil
	}
	dial := c.dialServer(addr)
	if dial == nil {
		return nil, fmt.Errorf("cluster: no dialer for new server %s (set Options.DialServer)", addr)
	}
	idx := len(c.peers)
	pe := &peer{
		idx: idx, shard: idx / c.replicas, replica: idx % c.replicas,
		addr: addr, dial: dial,
		br: newBreaker(c.opts.BreakerThreshold, c.opts.BreakerCooldown, c.metrics),
	}
	c.peers = append(c.peers, pe)
	c.peerByAddr[addr] = idx
	return pe, nil
}

// dialServer builds a dialer for a server address: Options.DialServer when
// set (in-process clusters), TCP otherwise.
func (c *Client) dialServer(addr string) Dialer {
	if c.opts.DialServer != nil {
		return c.opts.DialServer(addr)
	}
	return TCPDialer(addr, c.opts.CallTimeout)
}

// RefreshRouting polls the cluster for a shard map newer than minEpoch and
// adopts the newest one found, reporting whether the client's epoch
// advanced. Concurrent refreshes coalesce on refreshMu; the scan stops at
// the first map strictly newer than the client's (bounded re-route hops
// handle multi-step cutovers).
func (c *Client) RefreshRouting(minEpoch uint64) bool {
	cur := c.route.Load()
	if cur == nil {
		return false
	}
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	if now := c.route.Load(); now.m.Epoch > cur.m.Epoch && now.m.Epoch >= minEpoch {
		return true // a concurrent refresh already advanced past the hint
	}
	cur = c.route.Load()
	for g := 0; g < len(cur.groups); g++ {
		for _, pe := range cur.groups[g] {
			var reply RoutingReply
			if err := c.callPe(pe, ServiceName+".Routing", &RoutingArgs{}, &reply, 0); err != nil || !reply.Has {
				continue
			}
			if reply.Map.Epoch > cur.m.Epoch {
				if err := c.adoptLocked(&reply.Map); err == nil {
					c.metrics.incRoutingRefresh()
					return true
				}
			}
			break // this group answered; move on to the next group
		}
	}
	return false
}

// handshake validates and adopts routing state at dial time. Every replica
// group is asked for its map; the cluster must be uniformly routed or
// uniformly legacy — a mix means some server lost (or never received) the
// map and would silently mis-route writes, so the dial fails fast with the
// repair instruction instead.
func (c *Client) handshake(addrs []string) error {
	type report struct {
		addr string
		m    *ShardMap
	}
	var routed []report
	var legacy []string
	groups := len(addrs) / c.replicas
	for g := 0; g < groups; g++ {
		answered := false
		for r := 0; r < c.replicas && !answered; r++ {
			idx := g*c.replicas + r
			var reply RoutingReply
			if err := c.callPeerBudget(idx, ServiceName+".Routing", &RoutingArgs{}, &reply, 0); err != nil {
				continue // unreachable replica; Dial already ensured one live per group
			}
			answered = true
			if reply.Has {
				routed = append(routed, report{addr: addrs[idx], m: &reply.Map})
			} else {
				legacy = append(legacy, addrs[idx])
			}
		}
	}
	if len(routed) == 0 {
		return nil // uniformly legacy: frozen hash placement, as before
	}
	if len(legacy) > 0 {
		return fmt.Errorf("cluster: handshake: server(s) %s have no shard map while %s is at routing epoch %d — "+
			"re-push the map (platod2gl-rebalance -servers ... push) before serving traffic",
			strings.Join(legacy, ","), routed[0].addr, routed[0].m.Epoch)
	}
	best := routed[0]
	for _, rep := range routed[1:] {
		if rep.m.NumShards != best.m.NumShards || rep.m.Replicas != best.m.Replicas {
			return fmt.Errorf("cluster: handshake: mismatched shard maps: %s reports %d shards x %d replicas, %s reports %d x %d",
				best.addr, best.m.NumShards, best.m.Replicas, rep.addr, rep.m.NumShards, rep.m.Replicas)
		}
		if rep.m.Epoch > best.m.Epoch {
			best = rep
		}
	}
	if err := c.AdoptRouting(best.m); err != nil {
		return fmt.Errorf("cluster: handshake: %w", err)
	}
	return nil
}

// roundTrip dials one control RPC to addr outside the peer machinery (used
// by the rebalance driver and join mode, where no Client exists yet). The
// codec is auto-negotiated per dial, so these control paths work against
// both upgraded and legacy servers.
func roundTrip(dial Dialer, method string, args, reply any, timeout time.Duration) error {
	tc, err := dialTransport(dial, ProtoAuto, timeout, nil, 0)
	if err != nil {
		return err
	}
	defer tc.Close()
	return tc.Call(ServiceName+"."+method, args, reply, timeout)
}
