// Live shard migration: moving one logical shard's topology and attribute
// state from a source server to a destination while both keep serving, then
// flipping routing atomically via the epoch-versioned shard map
// (shardmap.go). This is ROADMAP item 3 — the step that makes the cluster
// genuinely elastic (grow N→N+1, rebalance a hot server) — built on the
// machinery replica catch-up already proved out: snapshot + WAL-tail
// streaming and write gating.
//
// A migration runs in three phases, driven by the control-plane Driver:
//
//  1. Bulk copy (under live writes). The destination pulls a shard-filtered
//     snapshot of the source's topology (plus the source's dedup table, so
//     retried batches stay at-most-once across the move), then drains the
//     source's WAL tail — filtered to the shard — until it has momentarily
//     caught up. Writes keep flowing to the source the whole time; anything
//     applied there lands in its WAL and therefore in the tail stream.
//
//  2. Park and deterministic drain. The source parks the shard's writes on
//     a gate *before* they touch the store or WAL, then executes a Pause
//     barrier: every write already past the gate is drained into the WAL
//     before ParkShard returns its WAL position. The destination then
//     drains the tail to exactly that position — a deterministic "caught
//     up" condition, no quiet-window heuristics — and pulls the shard's
//     feature vectors and labels (copied at park time, so no feature write
//     can slip between copy and cutover). Parked writes are not lost: they
//     wait on the gate and either proceed on the source (abort) or bounce
//     with NotOwner and transparently re-route to the destination
//     (cutover). A park TTL self-releases the gate if the driver dies.
//
//  3. Cutover. The driver installs an epoch+1 map assigning the shard to
//     the destination, pushing it destination-first (so re-routed writes
//     land), source second (installing the map releases the park, bouncing
//     parked writes into the re-route path), then the remaining servers.
//     The source's copy is then dropped (unless kept for forensics).
//
// Any failure before cutover aborts cleanly: the park is released, the
// destination's staged copy is dropped, and the cluster continues under the
// old placement — data loss is impossible because the source's copy is
// never touched until after the routing flip.
//
// Replicated deployments (Replicas > 1) are out of scope for migration:
// a replica group already tolerates member loss, and a group is rebuilt by
// SyncFromPeer, not migrated. The driver rejects them explicitly.
package cluster

import (
	"fmt"
	"time"

	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// defaultParkTTL is the self-release backstop on a parked shard: if the
// migration driver dies between park and cutover, writes resume on the
// source after this long instead of stalling until every client times out.
const defaultParkTTL = 30 * time.Second

// migrateChunk bounds the events per batch when staging snapshot data or
// dropping a shard, keeping single WAL records and lock hold times sane.
const migrateChunk = 4096

// MigrationHooks instrument the destination-side pull path for chaos tests:
// each hook runs at a phase boundary and may return an error to abort the
// pull (simulating a crash at exactly that point). Zero value: no hooks.
type MigrationHooks struct {
	// AfterShardSnapshot runs after the shard snapshot has been staged,
	// before WAL-tail draining starts.
	AfterShardSnapshot func(shard int) error
	// AfterTailChunk runs after each applied WAL-tail chunk.
	AfterTailChunk func(shard int) error
}

// SetMigrationHooks installs chaos-test instrumentation. Call before the
// service starts serving.
func (s *Service) SetMigrationHooks(h MigrationHooks) { s.hooks = h }

// applyChunked applies events through the WAL-durable applyBatch path in
// bounded chunks, bypassing routing and gates (migration staging must
// proceed while the shard is owned elsewhere).
func (s *Service) applyChunked(events []graph.Event) error {
	for len(events) > 0 {
		n := len(events)
		if n > migrateChunk {
			n = migrateChunk
		}
		var reply BatchReply
		if err := s.applyBatch(&BatchArgs{Events: events[:n]}, &reply); err != nil {
			return err
		}
		events = events[n:]
	}
	return nil
}

// filterShard keeps only events whose source hashes into shard. Returns the
// input slice unchanged when everything matches (the common case: routed
// clients send single-shard batches).
func filterShard(events []graph.Event, shard, numShards int) []graph.Event {
	for i, ev := range events {
		if ShardOf(ev.Edge.Src, numShards) != shard {
			out := make([]graph.Event, i, len(events))
			copy(out, events[:i])
			for _, ev := range events[i:] {
				if ShardOf(ev.Edge.Src, numShards) == shard {
					out = append(out, ev)
				}
			}
			return out
		}
	}
	return events
}

// relationTypes lists the store's populated relations, for shard export.
func relationTypes(store storage.TopologyStore) ([]graph.EdgeType, error) {
	rs, ok := store.(interface {
		AllStats() []storage.RelationStats
	})
	if !ok {
		return nil, fmt.Errorf("cluster: store %T cannot enumerate relations for shard export", store)
	}
	stats := rs.AllStats()
	types := make([]graph.EdgeType, 0, len(stats))
	for _, st := range stats {
		types = append(types, st.Type)
	}
	return types, nil
}

// ---------------------------------------------------------------------------
// Source-side migration RPCs.

// ShardSnapshotArgs requests a shard-filtered topology snapshot.
type ShardSnapshotArgs struct {
	Shard int
}

// ShardSnapshotReply carries one shard's topology as AddEdge events, the
// WAL position the export is consistent with (tail streaming starts past
// it), the hash space it was filtered under, and the source's dedup table.
// Sum checksums Events end-to-end (0 = legacy sender).
type ShardSnapshotReply struct {
	Events    []graph.Event
	WALSeq    uint64
	NumShards int
	Dedup     []DedupEntry
	Sum       uint64
}

// FetchShardSnapshot exports one logical shard's topology under a write
// quiesce (Pause), so the event set and the returned WAL position agree.
// Only the shard's current owner serves this — exporting from a non-owner
// would stage a stale or partial copy.
func (s *Service) FetchShardSnapshot(args *ShardSnapshotArgs, reply *ShardSnapshotReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("FetchShardSnapshot", start) }()
	defer guard("FetchShardSnapshot", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	rt := s.routing.Load()
	if rt == nil {
		return fmt.Errorf("cluster: cannot export shard %d: server has no shard map installed", args.Shard)
	}
	if args.Shard < 0 || args.Shard >= rt.m.NumShards {
		return fmt.Errorf("cluster: shard %d out of range (%d logical shards)", args.Shard, rt.m.NumShards)
	}
	if !rt.owned[args.Shard] {
		return notOwnerError(args.Shard, rt.m.Epoch)
	}
	if s.syncWAL == nil {
		return fmt.Errorf("cluster: cannot export shard %d: server has no WAL to stream a tail from", args.Shard)
	}
	types, err := relationTypes(s.store)
	if err != nil {
		return err
	}
	resume := s.Pause()
	defer resume()
	reply.WALSeq = s.syncWAL.Seq()
	reply.NumShards = rt.m.NumShards
	for _, et := range types {
		for _, src := range s.store.Sources(et) {
			if ShardOf(src, rt.m.NumShards) != args.Shard {
				continue
			}
			nbrs, weights := s.store.Neighbors(src, et)
			for i, dst := range nbrs {
				reply.Events = append(reply.Events, graph.Event{
					Kind: graph.AddEdge,
					Edge: graph.Edge{Src: src, Dst: dst, Type: et, Weight: weights[i]},
				})
			}
		}
	}
	reply.Dedup = s.dedup.export()
	reply.Sum = checksumEvents(reply.Events)
	return nil
}

// ShardFeaturesArgs requests a shard's attribute state.
type ShardFeaturesArgs struct {
	Shard int
}

// ShardFeaturesReply carries one shard's vertex features, labels, and edge
// features. Nodes aligns with RowLens (0 = the node has a label but no
// feature vector), Labels, and HasLabel; Data concatenates the rows.
type ShardFeaturesReply struct {
	Nodes    []graph.VertexID
	RowLens  []int32
	Data     []float32
	Labels   []int32
	HasLabel []bool
	EdgeKeys []kvstore.EdgeKey
	EdgeLens []int32
	EdgeData []float32
}

// approxBytes sizes the reply for metrics.
func (r *ShardFeaturesReply) approxBytes() int64 {
	return approxIDs(len(r.Nodes)) + approxFloats(len(r.Data)+len(r.EdgeData)) +
		approxLabels(len(r.Labels)) + int64(len(r.EdgeKeys))*17
}

// FetchShardFeatures exports one shard's attribute state. The driver calls
// it after ParkShard, whose Pause barrier has drained every in-flight
// feature write, so the export is complete — the feature path has no WAL,
// making park-time copy the only loss-free window.
func (s *Service) FetchShardFeatures(args *ShardFeaturesArgs, reply *ShardFeaturesReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("FetchShardFeatures", start) }()
	defer guard("FetchShardFeatures", &err)
	rt := s.routing.Load()
	if rt == nil {
		return fmt.Errorf("cluster: cannot export shard %d features: server has no shard map installed", args.Shard)
	}
	if !rt.owned[args.Shard] {
		return notOwnerError(args.Shard, rt.m.Epoch)
	}
	if s.attrs == nil {
		return nil // no attribute store: nothing to move
	}
	v := rt.m.NumShards
	s.attrs.RangeVertices(func(id graph.VertexID, features []float32, label int32, hasLabel bool) bool {
		if ShardOf(id, v) != args.Shard {
			return true
		}
		reply.Nodes = append(reply.Nodes, id)
		reply.RowLens = append(reply.RowLens, int32(len(features)))
		reply.Data = append(reply.Data, features...)
		reply.Labels = append(reply.Labels, label)
		reply.HasLabel = append(reply.HasLabel, hasLabel)
		return true
	})
	s.attrs.RangeEdges(func(k kvstore.EdgeKey, features []float32) bool {
		if ShardOf(k.Src, v) != args.Shard {
			return true
		}
		reply.EdgeKeys = append(reply.EdgeKeys, k)
		reply.EdgeLens = append(reply.EdgeLens, int32(len(features)))
		reply.EdgeData = append(reply.EdgeData, features...)
		return true
	})
	return nil
}

// ParkShardArgs parks one shard's writes for cutover. TTLMillis bounds the
// park (0: default 30s) — the dead-driver backstop.
type ParkShardArgs struct {
	Shard     int
	TTLMillis int64
}

// ParkShardReply returns the WAL position after the park barrier: every
// write to the shard that will ever be in this server's WAL is at or before
// this sequence, so draining the tail to it is an exact catch-up condition.
type ParkShardReply struct {
	WALSeq uint64
}

// ParkShard gates the shard's writes (they wait, not fail) and drains every
// in-flight write into the WAL via a Pause barrier before returning the WAL
// position. Idempotent; re-parking does not extend a pending TTL.
func (s *Service) ParkShard(args *ParkShardArgs, reply *ParkShardReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("ParkShard", start) }()
	defer guard("ParkShard", &err)
	if s.syncWAL == nil {
		return fmt.Errorf("cluster: cannot park shard %d: server has no WAL to drain against", args.Shard)
	}
	ttl := time.Duration(args.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = defaultParkTTL
	}
	s.parkShard(args.Shard, ttl)
	reply.WALSeq = s.syncWAL.Seq()
	return nil
}

// ReleaseShardArgs releases a parked shard (migration abort).
type ReleaseShardArgs struct {
	Shard int
}

// ReleaseShardReply is empty.
type ReleaseShardReply struct{}

// ReleaseShard opens a parked shard's write gate; parked writes proceed on
// this server under the unchanged routing. Idempotent.
func (s *Service) ReleaseShard(args *ReleaseShardArgs, _ *ReleaseShardReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("ReleaseShard", start) }()
	defer guard("ReleaseShard", &err)
	s.releaseShard(args.Shard)
	return nil
}

// DropShardArgs removes one shard's local state (post-cutover source
// cleanup, or destination rollback after an abort).
type DropShardArgs struct {
	Shard int
}

// DropShardReply reports what was removed.
type DropShardReply struct {
	DroppedEdges    int64
	DroppedVertices int64
}

// DropShard deletes one shard's topology and attributes from this server.
// It refuses when this server owns the shard under its installed map (or
// has no map at all): dropping owned data is the one mistake the routing
// layer exists to prevent. Deletions go through the WAL-durable batch path,
// so a restart does not resurrect the dropped shard.
func (s *Service) DropShard(args *DropShardArgs, reply *DropShardReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("DropShard", start) }()
	defer guard("DropShard", &err)
	rt := s.routing.Load()
	if rt == nil {
		return fmt.Errorf("cluster: refusing to drop shard %d: server has no shard map to verify ownership against", args.Shard)
	}
	if args.Shard < 0 || args.Shard >= rt.m.NumShards {
		return fmt.Errorf("cluster: shard %d out of range (%d logical shards)", args.Shard, rt.m.NumShards)
	}
	if rt.owned[args.Shard] {
		return fmt.Errorf("cluster: refusing to drop shard %d: this server owns it at routing epoch %d", args.Shard, rt.m.Epoch)
	}
	v := rt.m.NumShards
	types, err := relationTypes(s.store)
	if err != nil {
		return err
	}
	var dels []graph.Event
	for _, et := range types {
		for _, src := range s.store.Sources(et) {
			if ShardOf(src, v) != args.Shard {
				continue
			}
			nbrs, _ := s.store.Neighbors(src, et)
			for _, dst := range nbrs {
				dels = append(dels, graph.Event{
					Kind: graph.DeleteEdge,
					Edge: graph.Edge{Src: src, Dst: dst, Type: et},
				})
			}
		}
	}
	if err := s.applyChunked(dels); err != nil {
		return fmt.Errorf("cluster: drop shard %d topology: %w", args.Shard, err)
	}
	reply.DroppedEdges = int64(len(dels))
	if s.attrs != nil {
		var ids []graph.VertexID
		s.attrs.RangeVertices(func(id graph.VertexID, _ []float32, _ int32, _ bool) bool {
			if ShardOf(id, v) == args.Shard {
				ids = append(ids, id)
			}
			return true
		})
		for _, id := range ids {
			s.attrs.DeleteVertex(id)
		}
		var keys []kvstore.EdgeKey
		s.attrs.RangeEdges(func(k kvstore.EdgeKey, _ []float32) bool {
			if ShardOf(k.Src, v) == args.Shard {
				keys = append(keys, k)
			}
			return true
		})
		for _, k := range keys {
			s.attrs.DeleteEdgeFeatures(k)
		}
		reply.DroppedVertices = int64(len(ids))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Destination-side pull.

// PullShardArgs tell a destination server to pull shard state from Source.
// AfterSeq 0 starts with a snapshot; nonzero resumes tail draining past it.
// UntilSeq 0 drains until momentarily caught up with the source's writer;
// nonzero (the post-park call) drains to exactly that position. Features
// additionally pulls the shard's attribute state after the drain.
type PullShardArgs struct {
	Shard             int
	Source            string
	AfterSeq          uint64
	UntilSeq          uint64
	Features          bool
	CallTimeoutMillis int64
	MaxBatches        int
}

// PullShardReply reports the drained WAL position (the next call's
// AfterSeq) and the copy volume.
type PullShardReply struct {
	EndSeq  uint64
	Bytes   int64
	Batches int64
}

// PullShard stages one shard's state from a source server: shard snapshot
// (WAL-durable via the batch path, so a destination restart re-recovers the
// staged copy), then shard-filtered WAL-tail draining, then optionally the
// feature state. The staged copy is invisible to clients until cutover:
// routed reads for the shard bounce off this server with NotOwner, and
// routed Sources requests filter by ownership. One pull runs at a time.
func (s *Service) PullShard(args *PullShardArgs, reply *PullShardReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("PullShard", start) }()
	defer guard("PullShard", &err)
	s.migMu.Lock()
	defer s.migMu.Unlock()
	rt := s.routing.Load()
	if rt == nil {
		return fmt.Errorf("cluster: cannot pull shard %d: server has no shard map installed", args.Shard)
	}
	v := rt.m.NumShards
	if args.Shard < 0 || args.Shard >= v {
		return fmt.Errorf("cluster: shard %d out of range (%d logical shards)", args.Shard, v)
	}
	dial, err := s.resolveDialer(args.Source)
	if err != nil {
		return err
	}
	timeout := time.Duration(args.CallTimeoutMillis) * time.Millisecond
	tc, err := dialTransport(dial, ProtoAuto, timeout, s.metrics, 0)
	if err != nil {
		return fmt.Errorf("cluster: migration dial %s: %w", args.Source, err)
	}
	defer tc.Close()
	call := func(method string, a, r any) error {
		return tc.Call(ServiceName+"."+method, a, r, timeout)
	}

	after := args.AfterSeq
	if after == 0 {
		var snap ShardSnapshotReply
		if err := call("FetchShardSnapshot", &ShardSnapshotArgs{Shard: args.Shard}, &snap); err != nil {
			return fmt.Errorf("cluster: fetch shard %d snapshot from %s: %w", args.Shard, args.Source, err)
		}
		if err := verifySum(s.metrics, "FetchShardSnapshot events", checksumEvents(snap.Events), snap.Sum); err != nil {
			return err
		}
		if snap.NumShards != v {
			return fmt.Errorf("cluster: source %s exports %d logical shards, this server routes %d", args.Source, snap.NumShards, v)
		}
		if err := s.applyChunked(snap.Events); err != nil {
			return fmt.Errorf("cluster: stage shard %d snapshot: %w", args.Shard, err)
		}
		s.dedup.importEntries(snap.Dedup)
		reply.Bytes += approxEvents(len(snap.Events))
		after = snap.WALSeq
		if h := s.hooks.AfterShardSnapshot; h != nil {
			if err := h(args.Shard); err != nil {
				return fmt.Errorf("cluster: migration hook after snapshot: %w", err)
			}
		}
	}

	limit := args.MaxBatches
	if limit <= 0 {
		limit = defaultSyncBatches
	}
	polls := 0
	for {
		var tail WALTailReply
		if err := call("FetchWALTail", &WALTailArgs{AfterSeq: after, MaxBatches: limit}, &tail); err != nil {
			return fmt.Errorf("cluster: fetch shard %d wal tail after %d: %w", args.Shard, after, err)
		}
		if err := verifySum(s.metrics, "FetchWALTail records", checksumRecords(tail.Records), tail.Sum); err != nil {
			return err
		}
		if tail.WriterSeq < after {
			return fmt.Errorf("%w: writer at %d, stream at %d", ErrSyncWALReset, tail.WriterSeq, after)
		}
		for i := range tail.Records {
			rec := &tail.Records[i]
			evs := filterShard(rec.Events, args.Shard, v)
			if len(evs) == 0 {
				continue
			}
			var br BatchReply
			if err := s.applyBatch(&BatchArgs{Events: evs, ClientID: rec.ClientID, Seq: rec.ClientSeq}, &br); err != nil {
				return fmt.Errorf("cluster: apply shard %d wal record %d: %w", args.Shard, rec.Seq, err)
			}
			reply.Batches++
			reply.Bytes += approxEvents(len(evs))
		}
		if len(tail.Records) > 0 {
			after = tail.EndSeq
			polls = 0
			if h := s.hooks.AfterTailChunk; h != nil {
				if err := h(args.Shard); err != nil {
					return fmt.Errorf("cluster: migration hook after tail chunk: %w", err)
				}
			}
		}
		if args.UntilSeq > 0 {
			if after >= args.UntilSeq {
				break // drained to the park point: exactly caught up
			}
		} else if tail.WriterSeq <= after {
			break // momentarily caught up with the live writer
		}
		if len(tail.Records) == 0 {
			polls++
			if polls > syncTailMaxPolls {
				return fmt.Errorf("cluster: shard %d wal tail stalled at %d (writer at %d)", args.Shard, after, tail.WriterSeq)
			}
			time.Sleep(syncTailPollDelay)
		}
	}

	if args.Features {
		var feats ShardFeaturesReply
		if err := call("FetchShardFeatures", &ShardFeaturesArgs{Shard: args.Shard}, &feats); err != nil {
			return fmt.Errorf("cluster: fetch shard %d features from %s: %w", args.Shard, args.Source, err)
		}
		s.importAttrs(&feats)
		reply.Bytes += feats.approxBytes()
	}
	reply.EndSeq = after
	return nil
}

// importAttrs merges an attribute export into this server's attribute
// store — the shared import path for shard migration and whole-store
// repair. Rows are copied (the decoded reply's backing arrays are shared).
func (s *Service) importAttrs(feats *ShardFeaturesReply) {
	if s.attrs == nil {
		return
	}
	off := 0
	for i, id := range feats.Nodes {
		n := int(feats.RowLens[i])
		if n > 0 {
			row := make([]float32, n)
			copy(row, feats.Data[off:off+n])
			s.attrs.SetFeatures(id, row)
			off += n
		}
		if feats.HasLabel[i] {
			s.attrs.SetLabel(id, feats.Labels[i])
		}
	}
	off = 0
	for i, k := range feats.EdgeKeys {
		n := int(feats.EdgeLens[i])
		row := make([]float32, n)
		copy(row, feats.EdgeData[off:off+n])
		s.attrs.SetEdgeFeatures(k, row)
		off += n
	}
}

// ---------------------------------------------------------------------------
// The control-plane migration driver.

// Driver orchestrates shard migrations and cluster growth from outside the
// data path: it speaks only control RPCs (Routing/UpdateRouting, ParkShard,
// PullShard, ...) to servers by address. The rebalance CLI and the chaos
// tests both drive migrations through it.
type Driver struct {
	// Dial builds the transport to a server address. nil: TCP.
	Dial func(addr string) Dialer
	// CallTimeout bounds control RPCs (park, release, routing). 0: 10s.
	CallTimeout time.Duration
	// PullTimeout bounds the data-moving steps (PullShard, DropShard),
	// which scale with shard size. 0: 2m.
	PullTimeout time.Duration
	// ParkTTL is the source's park self-release backstop. 0: 30s.
	ParkTTL time.Duration
	// KeepSource skips dropping the source's copy after cutover (forensics;
	// the copy is unreachable — routing points elsewhere — but occupies
	// memory until dropped).
	KeepSource bool
	// Metrics receives migration counters. May be nil.
	Metrics *Metrics
	// Logf receives human-oriented progress lines. nil: silent.
	Logf func(format string, args ...any)
	// BeforeCutover, if set, runs after the destination has fully converged
	// but before any server sees the new map. Returning an error aborts the
	// migration — the no-data-loss rollback path chaos tests exercise.
	BeforeCutover func(shard int, next *ShardMap) error
}

func (d *Driver) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

func (d *Driver) ctlTimeout() time.Duration {
	if d.CallTimeout > 0 {
		return d.CallTimeout
	}
	return 10 * time.Second
}

func (d *Driver) pullTimeout() time.Duration {
	if d.PullTimeout > 0 {
		return d.PullTimeout
	}
	return 2 * time.Minute
}

func (d *Driver) parkTTL() time.Duration {
	if d.ParkTTL > 0 {
		return d.ParkTTL
	}
	return defaultParkTTL
}

func (d *Driver) dialer(addr string) Dialer {
	if d.Dial != nil {
		return d.Dial(addr)
	}
	return TCPDialer(addr, d.ctlTimeout())
}

// call performs one RPC round trip to addr.
func (d *Driver) call(addr, method string, args, reply any, timeout time.Duration) error {
	return roundTrip(d.dialer(addr), method, args, reply, timeout)
}

// ServerRouting is one server's routing state in a Survey.
type ServerRouting struct {
	Addr  string
	Err   error  // unreachable
	Has   bool   // has a shard map installed
	Epoch uint64 // its map's epoch when Has
	Map   *ShardMap
}

// Survey queries every server's installed shard map.
func (d *Driver) Survey(addrs []string) []ServerRouting {
	out := make([]ServerRouting, len(addrs))
	for i, addr := range addrs {
		out[i] = ServerRouting{Addr: addr}
		var reply RoutingReply
		if err := d.call(addr, "Routing", &RoutingArgs{}, &reply, d.ctlTimeout()); err != nil {
			out[i].Err = err
			continue
		}
		if reply.Has {
			m := reply.Map
			out[i].Has = true
			out[i].Epoch = m.Epoch
			out[i].Map = &m
		}
	}
	return out
}

// FetchMap returns the newest shard map any of addrs reports. Errors when
// no reachable server has one (run InitRouting first) or when the maps
// disagree on the hash space.
func (d *Driver) FetchMap(addrs []string) (*ShardMap, error) {
	var best *ShardMap
	var lastErr error
	for _, sr := range d.Survey(addrs) {
		if sr.Err != nil {
			lastErr = sr.Err
			continue
		}
		if !sr.Has {
			continue
		}
		if best != nil && (sr.Map.NumShards != best.NumShards || sr.Map.Replicas != best.Replicas) {
			return nil, fmt.Errorf("cluster: servers report incompatible shard maps (%d shards x %d vs %d x %d)",
				best.NumShards, best.Replicas, sr.Map.NumShards, sr.Map.Replicas)
		}
		if best == nil || sr.Map.Epoch > best.Epoch {
			best = sr.Map
		}
	}
	if best == nil {
		if lastErr != nil {
			return nil, fmt.Errorf("cluster: no shard map found (last server error: %w)", lastErr)
		}
		return nil, fmt.Errorf("cluster: no server has a shard map installed; initialize routing first")
	}
	return best, nil
}

// Push installs m on every server it lists, in plain order. Servers already
// at a newer epoch ignore the push (idempotent). Returns the first error
// after attempting every server.
func (d *Driver) Push(m *ShardMap) error {
	var first error
	for _, addr := range m.Servers {
		var reply UpdateRoutingReply
		if err := d.call(addr, "UpdateRouting", &UpdateRoutingArgs{Map: *m}, &reply, d.ctlTimeout()); err != nil {
			d.logf("routing: push epoch %d to %s failed: %v", m.Epoch, addr, err)
			if first == nil {
				first = fmt.Errorf("cluster: push shard map to %s: %w", addr, err)
			}
		}
	}
	return first
}

// InitRouting builds the identity map over addrs (numShards logical shards,
// <= 0: one per server group) and installs it everywhere. The cluster must
// be initialized exactly once; after that, maps evolve by epoch.
func (d *Driver) InitRouting(addrs []string, replicas, numShards int) (*ShardMap, error) {
	m, err := IdentityMap(addrs, replicas, numShards)
	if err != nil {
		return nil, err
	}
	for _, sr := range d.Survey(addrs) {
		if sr.Has {
			return nil, fmt.Errorf("cluster: %s already has a shard map (epoch %d, %d shards x %d replicas); routing is initialized once — evolve it with grow/move/rebalance",
				sr.Addr, sr.Epoch, sr.Map.NumShards, sr.Map.Replicas)
		}
	}
	if err := d.Push(m); err != nil {
		return nil, err
	}
	d.logf("routing: initialized %s", m)
	return m, nil
}

// AddServer extends m with a new server group (Replicas addresses) that
// owns nothing yet, bumps the epoch, and pushes the result everywhere —
// including the new servers, which learn the map (and their own emptiness)
// from the push. Rebalance or MigrateShard then gives the group shards.
func (d *Driver) AddServer(m *ShardMap, addrs []string) (*ShardMap, error) {
	if len(addrs) != m.Replicas {
		return nil, fmt.Errorf("cluster: a server group needs %d addresses (got %d)", m.Replicas, len(addrs))
	}
	next := m.Clone()
	next.Epoch++
	next.Servers = append(next.Servers, addrs...)
	if err := next.Validate(); err != nil {
		return nil, err
	}
	if err := d.Push(next); err != nil {
		return nil, err
	}
	d.logf("routing: added server group %v at epoch %d", addrs, next.Epoch)
	return next, nil
}

// MigrateShard moves one logical shard to toGroup: bulk copy under live
// writes, park + deterministic drain + feature copy, cutover, source drop.
// Any pre-cutover failure aborts with the old placement intact. Returns the
// new map after cutover (or m unchanged when the shard is already there).
func (d *Driver) MigrateShard(m *ShardMap, shard, toGroup int) (*ShardMap, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Replicas != 1 {
		return nil, fmt.Errorf("cluster: live shard migration supports Replicas=1 deployments (got %d): a replica group is rebuilt by SyncFromPeer, not migrated", m.Replicas)
	}
	if shard < 0 || shard >= m.NumShards {
		return nil, fmt.Errorf("cluster: shard %d out of range (%d logical shards)", shard, m.NumShards)
	}
	if toGroup < 0 || toGroup >= m.NumGroups() {
		return nil, fmt.Errorf("cluster: destination group %d out of range (%d groups)", toGroup, m.NumGroups())
	}
	from := m.Assign[shard]
	if from == toGroup {
		return m, nil
	}
	src := m.Group(from)[0]
	dst := m.Group(toGroup)[0]
	d.logf("migration: shard %d: %s -> %s (from epoch %d)", shard, src, dst, m.Epoch)

	abort := func(stage string, cause error) error {
		d.Metrics.incMigrationAbort()
		var rel ReleaseShardReply
		if rerr := d.call(src, "ReleaseShard", &ReleaseShardArgs{Shard: shard}, &rel, d.ctlTimeout()); rerr != nil {
			d.logf("migration: shard %d: abort: release on %s failed (park TTL will self-release): %v", shard, src, rerr)
		}
		var drop DropShardReply
		if derr := d.call(dst, "DropShard", &DropShardArgs{Shard: shard}, &drop, d.pullTimeout()); derr != nil {
			d.logf("migration: shard %d: abort: drop staged copy on %s failed: %v", shard, dst, derr)
		} else {
			d.logf("migration: shard %d: abort: dropped staged copy on %s (%d edges)", shard, dst, drop.DroppedEdges)
		}
		return fmt.Errorf("cluster: migrate shard %d (%s): %w", shard, stage, cause)
	}

	ctlMillis := d.ctlTimeout().Milliseconds()

	// Phase 1: bulk copy under live writes.
	var bulk PullShardReply
	if err := d.call(dst, "PullShard",
		&PullShardArgs{Shard: shard, Source: src, CallTimeoutMillis: ctlMillis}, &bulk, d.pullTimeout()); err != nil {
		return nil, abort("bulk copy", err)
	}
	d.Metrics.addMigrationBytes(bulk.Bytes)
	d.Metrics.addMigrationBatches(bulk.Batches)
	d.logf("migration: shard %d: bulk copy done (%d bytes, %d tail batches, wal seq %d)", shard, bulk.Bytes, bulk.Batches, bulk.EndSeq)

	// Phase 2: park the shard's writes on the source, drain the tail to the
	// park point, copy features.
	cutStart := time.Now()
	var park ParkShardReply
	if err := d.call(src, "ParkShard",
		&ParkShardArgs{Shard: shard, TTLMillis: d.parkTTL().Milliseconds()}, &park, d.ctlTimeout()); err != nil {
		return nil, abort("park", err)
	}
	var fin PullShardReply
	if err := d.call(dst, "PullShard",
		&PullShardArgs{Shard: shard, Source: src, AfterSeq: bulk.EndSeq, UntilSeq: park.WALSeq,
			Features: true, CallTimeoutMillis: ctlMillis}, &fin, d.pullTimeout()); err != nil {
		return nil, abort("final drain", err)
	}
	d.Metrics.addMigrationBytes(fin.Bytes)
	d.Metrics.addMigrationBatches(fin.Batches)

	next := m.Clone()
	next.Epoch++
	next.Assign[shard] = toGroup

	if d.BeforeCutover != nil {
		if err := d.BeforeCutover(shard, next); err != nil {
			return nil, abort("before cutover", err)
		}
	}

	// Phase 3: cutover. Destination first, so re-routed traffic lands; the
	// source second — installing the new map releases its park, bouncing
	// parked writes into the clients' re-route path; everyone else after.
	var ur UpdateRoutingReply
	if err := d.call(dst, "UpdateRouting", &UpdateRoutingArgs{Map: *next}, &ur, d.ctlTimeout()); err != nil {
		return nil, abort("cutover push to destination", err)
	}
	if err := d.call(src, "UpdateRouting", &UpdateRoutingArgs{Map: *next}, &ur, d.ctlTimeout()); err != nil {
		// The destination already owns the shard at epoch+1; the old map on
		// the source will keep bouncing clients (via its park TTL and their
		// refresh scans) until a re-push lands. Not abortable — surface it.
		d.Metrics.addCutover(time.Since(cutStart))
		return next, fmt.Errorf("cluster: migrate shard %d: cutover installed on %s but push to source %s failed (re-run a routing push): %w",
			shard, dst, src, err)
	}
	d.Metrics.addCutover(time.Since(cutStart))
	for _, addr := range next.Servers {
		if addr == src || addr == dst {
			continue
		}
		var r UpdateRoutingReply
		if err := d.call(addr, "UpdateRouting", &UpdateRoutingArgs{Map: *next}, &r, d.ctlTimeout()); err != nil {
			d.logf("migration: shard %d: routing push to %s failed (clients will learn epoch %d via NotOwner refresh): %v",
				shard, addr, next.Epoch, err)
		}
	}
	d.Metrics.incShardMigrated()
	d.logf("migration: shard %d: cutover to %s at epoch %d (%.1fms park-to-flip)",
		shard, dst, next.Epoch, float64(time.Since(cutStart))/float64(time.Millisecond))

	// Phase 4: retire the source's copy.
	if !d.KeepSource {
		var drop DropShardReply
		if err := d.call(src, "DropShard", &DropShardArgs{Shard: shard}, &drop, d.pullTimeout()); err != nil {
			d.logf("migration: shard %d: post-cutover drop on %s failed (copy is unreachable but resident): %v", shard, src, err)
		} else {
			d.logf("migration: shard %d: dropped source copy on %s (%d edges, %d vertices)",
				shard, src, drop.DroppedEdges, drop.DroppedVertices)
		}
	}
	return next, nil
}

// Rebalance count-balances m by migrating shards one at a time, recomputing
// the plan after each move. Returns the final map and the number of shards
// moved; on error the map reflects every migration that completed.
func (d *Driver) Rebalance(m *ShardMap) (*ShardMap, int, error) {
	moved := 0
	for {
		plan := CountBalancePlan(m)
		if len(plan) == 0 {
			return m, moved, nil
		}
		mv := plan[0]
		next, err := d.MigrateShard(m, mv.Shard, mv.To)
		if err != nil {
			return m, moved, err
		}
		m = next
		moved++
	}
}

// Grow is the N→N+1 scale-out: add a server group, then rebalance shards
// onto it. Returns the final map and shards moved.
func (d *Driver) Grow(m *ShardMap, addrs []string) (*ShardMap, int, error) {
	next, err := d.AddServer(m, addrs)
	if err != nil {
		return m, 0, err
	}
	return d.Rebalance(next)
}
