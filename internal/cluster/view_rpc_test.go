// Tests for the GraphView-facing RPC surface: the labels round-trip added
// to the Features RPC, the Sources fan-out, and duplicate-seed coalescing
// in the sampling payloads.
package cluster

import (
	"testing"

	"platod2gl/internal/graph"
)

func TestFeaturesLabelsRoundTrip(t *testing.T) {
	client, shutdown := newCluster(t, 2)
	defer shutdown()
	const dim = 3
	nodes := []graph.VertexID{
		graph.MakeVertexID(0, 1), graph.MakeVertexID(0, 2),
		graph.MakeVertexID(0, 3), graph.MakeVertexID(0, 4),
	}
	data := make([]float32, len(nodes)*dim)
	labels := make([]int32, len(nodes))
	for i := range nodes {
		for d := 0; d < dim; d++ {
			data[i*dim+d] = float32(i*10 + d)
		}
		labels[i] = int32(i % 3)
	}
	if err := client.SetFeatures(nodes, dim, data, labels); err != nil {
		t.Fatal(err)
	}

	// One fan-out returns both features and labels, in node order.
	gotData, gotLabels, err := client.FeaturesLabels(nodes, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if gotData[i] != data[i] {
			t.Fatalf("feature[%d] = %v, want %v", i, gotData[i], data[i])
		}
	}
	for i := range labels {
		if gotLabels[i] != labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, gotLabels[i], labels[i])
		}
	}

	// Labels-only read skips the feature payload.
	onlyLabels, err := client.Labels(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if onlyLabels[i] != labels[i] {
			t.Fatalf("Labels[%d] = %d, want %d", i, onlyLabels[i], labels[i])
		}
	}

	// Unknown vertices keep the dense conventions: zero rows, label 0.
	unknown := []graph.VertexID{graph.MakeVertexID(7, 99)}
	d, l, err := client.FeaturesLabels(unknown, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if v != 0 {
			t.Fatalf("unknown feature[%d] = %v", i, v)
		}
	}
	if l[0] != 0 {
		t.Fatalf("unknown label = %d", l[0])
	}
}

func TestSourcesAcrossShards(t *testing.T) {
	client, shutdown := newCluster(t, 3)
	defer shutdown()
	var events []graph.Event
	want := map[graph.VertexID]bool{}
	for i := uint64(0); i < 40; i++ {
		src := graph.MakeVertexID(0, i)
		want[src] = true
		events = append(events, graph.Event{
			Kind:      graph.AddEdge,
			Edge:      graph.Edge{Src: src, Dst: graph.MakeVertexID(1, i), Type: 2, Weight: 1},
			Timestamp: int64(i),
		})
	}
	// An edge of a different type must not surface under type 2.
	events = append(events, graph.Event{
		Kind: graph.AddEdge,
		Edge: graph.Edge{Src: graph.MakeVertexID(0, 999), Dst: 1, Type: 5, Weight: 1},
	})
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	srcs, err := client.Sources(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != len(want) {
		t.Fatalf("Sources returned %d vertices, want %d", len(srcs), len(want))
	}
	for i, s := range srcs {
		if !want[s] {
			t.Fatalf("unexpected source %v", s)
		}
		if i > 0 && srcs[i-1] >= s {
			t.Fatalf("Sources not sorted ascending at %d: %v >= %v", i, srcs[i-1], s)
		}
	}
}

func TestSampleNeighborsCoalescesDuplicateSeeds(t *testing.T) {
	client, shutdown := newCluster(t, 2)
	defer shutdown()
	var events []graph.Event
	for i := uint64(0); i < 8; i++ {
		src := graph.MakeVertexID(0, i)
		for j := uint64(0); j < 4; j++ {
			events = append(events, graph.Event{
				Kind: graph.AddEdge,
				Edge: graph.Edge{Src: src, Dst: graph.MakeVertexID(1, 100+j), Weight: 1},
			})
		}
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}

	// 3 distinct seeds, each repeated 4 times.
	distinct := []graph.VertexID{
		graph.MakeVertexID(0, 0), graph.MakeVertexID(0, 1), graph.MakeVertexID(0, 2),
	}
	var seeds []graph.VertexID
	for r := 0; r < 4; r++ {
		seeds = append(seeds, distinct...)
	}
	const fanout = 5
	before := client.Metrics().Snapshot()
	out, err := client.SampleNeighbors(seeds, 0, fanout, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(seeds)*fanout {
		t.Fatalf("result length %d, want %d", len(out), len(seeds)*fanout)
	}
	// Every occurrence of a seed shares the one coalesced sample block.
	for i, s := range seeds {
		first := -1
		for j, s2 := range seeds[:i] {
			if s2 == s {
				first = j
				break
			}
		}
		if first < 0 {
			continue
		}
		for k := 0; k < fanout; k++ {
			if out[i*fanout+k] != out[first*fanout+k] {
				t.Fatalf("seed %v occurrence %d diverged from occurrence %d at slot %d", s, i, first, k)
			}
		}
	}
	// All samples are genuine out-neighbors (dst range 100..103).
	for i, v := range out {
		vt, idx := v.Type(), v.Local()
		if vt != 1 || idx < 100 || idx > 103 {
			t.Fatalf("sample[%d] = %v not a neighbor", i, v)
		}
	}
	after := client.Metrics().Snapshot()
	dups := int64(len(seeds) - len(distinct))
	if got := after.CoalescedSeeds - before.CoalescedSeeds; got != dups {
		t.Fatalf("CoalescedSeeds += %d, want %d", got, dups)
	}
	wantBytes := dups * 8 * int64(1+fanout)
	if got := after.CoalescedBytes - before.CoalescedBytes; got != wantBytes {
		t.Fatalf("CoalescedBytes += %d, want %d", got, wantBytes)
	}

	// SampleSubgraph frontiers repeat vertices heavily; the hop-2 fan-out
	// must keep coalescing (counter strictly grows).
	layers, err := client.SampleSubgraph(distinct, graph.MetaPath{0, 0}, []int{4, 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(layers[0]) != len(distinct)*4 || len(layers[1]) != len(distinct)*4*2 {
		t.Fatalf("layer sizes %d/%d", len(layers[0]), len(layers[1]))
	}
}
