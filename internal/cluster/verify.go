// Cluster-wide integrity verification: the control-plane face of
// anti-entropy. Where the Scrubber runs on each server comparing itself
// against its own replica group, VerifyIntegrity runs from outside the data
// path (the `platod2gl-rebalance verify` verb): it fetches every server's
// whole-store state digest, compares them within each replica group of the
// shard map, and on a group mismatch drills down per logical shard to name
// exactly which shards diverged. Optionally it also drives one on-demand
// scrub round per server, surfacing on-disk CRC failures (and any
// auto-repairs) in the same report.
package cluster

import "fmt"

// MemberDigest is one server's whole-store digest probe in an integrity
// check.
type MemberDigest struct {
	Addr   string
	Err    string // probe failure ("" on success)
	Digest DigestReply
}

// ok reports whether this member's digest is usable evidence: probe
// succeeded and the replica is serving (not mid-catch-up).
func (m *MemberDigest) ok() bool { return m.Err == "" && m.Digest.Ready }

// GroupIntegrity is one replica group's digest comparison.
type GroupIntegrity struct {
	Group   int
	Members []MemberDigest
	// Mismatch is true when two serving members disagree. BadShards then
	// names the diverged logical shards (per-shard digest drill-down).
	Mismatch  bool
	BadShards []int
}

// ScrubResult is one server's on-demand scrub round in an integrity check.
type ScrubResult struct {
	Addr   string
	Err    string // RPC failure or no scrubber installed
	Report RoundReport
}

// IntegrityReport is a whole-cluster integrity verification outcome.
type IntegrityReport struct {
	Groups []GroupIntegrity
	Scrubs []ScrubResult // only when scrubbing was requested
}

// Healthy reports whether the verification found nothing wrong and reached
// everything it needed to: every member probed, no group mismatched, and
// every requested scrub round came back clean (a repaired round counts as
// unhealthy — it proves state had rotted).
func (r *IntegrityReport) Healthy() bool {
	for _, g := range r.Groups {
		if g.Mismatch {
			return false
		}
		for _, m := range g.Members {
			if m.Err != "" {
				return false
			}
		}
	}
	for _, s := range r.Scrubs {
		if s.Err != "" || !s.Report.healthy() || s.Report.Repaired {
			return false
		}
	}
	return true
}

// DigestOf fetches one server's state digest. shard < 0 digests the whole
// store; shard >= 0 restricts to one logical shard under numShards.
func (d *Driver) DigestOf(addr string, shard, numShards int) (DigestReply, error) {
	var reply DigestReply
	err := d.call(addr, "ShardDigest", &DigestArgs{Shard: shard, NumShards: numShards}, &reply, d.ctlTimeout())
	return reply, err
}

// ScrubNow triggers one scrub round on addr and returns its report (errors
// if the server has no scrubber installed).
func (d *Driver) ScrubNow(addr string) (RoundReport, error) {
	var reply ScrubReply
	// Scrub rounds walk the store and may repair; give them the data budget.
	err := d.call(addr, "Scrub", &ScrubArgs{}, &reply, d.pullTimeout())
	return reply.Report, err
}

// VerifyIntegrity compares state digests across every replica group of m.
// With m == nil (an unrouted cluster) each address forms its own group of
// one: digests are collected and reported but nothing can be compared.
// With scrub set, every server additionally runs one on-demand scrub round.
func (d *Driver) VerifyIntegrity(m *ShardMap, addrs []string, scrub bool) *IntegrityReport {
	rep := &IntegrityReport{}
	groups := make([][]string, 0)
	if m == nil {
		for _, a := range addrs {
			groups = append(groups, []string{a})
		}
	} else {
		for g := 0; g < m.NumGroups(); g++ {
			groups = append(groups, m.Group(g))
		}
	}
	for g, members := range groups {
		gi := GroupIntegrity{Group: g}
		for _, addr := range members {
			md := MemberDigest{Addr: addr}
			var err error
			if md.Digest, err = d.DigestOf(addr, -1, 0); err != nil {
				md.Err = err.Error()
			}
			gi.Members = append(gi.Members, md)
		}
		// Compare serving members pairwise against the first serving one.
		var ref *MemberDigest
		for i := range gi.Members {
			mem := &gi.Members[i]
			if !mem.ok() {
				continue
			}
			if ref == nil {
				ref = mem
				continue
			}
			if mem.Digest.Topology != ref.Digest.Topology || mem.Digest.Attrs != ref.Digest.Attrs {
				gi.Mismatch = true
			}
		}
		if gi.Mismatch && m != nil {
			gi.BadShards = d.divergedShards(m, g, gi.Members)
		}
		rep.Groups = append(rep.Groups, gi)
		if d.Logf != nil && gi.Mismatch {
			d.Logf("verify: group %d digests mismatch (diverged shards %v)", g, gi.BadShards)
		}
	}
	if scrub {
		for _, members := range groups {
			for _, addr := range members {
				sr := ScrubResult{Addr: addr}
				var err error
				if sr.Report, err = d.ScrubNow(addr); err != nil {
					sr.Err = err.Error()
				}
				rep.Scrubs = append(rep.Scrubs, sr)
			}
		}
	}
	return rep
}

// divergedShards re-probes a mismatched group per logical shard to name the
// shards whose digests disagree.
func (d *Driver) divergedShards(m *ShardMap, g int, members []MemberDigest) []int {
	var bad []int
	for _, shard := range m.OwnedBy(g) {
		var ref *DigestReply
		mismatch := false
		for _, mem := range members {
			if !mem.ok() {
				continue
			}
			dg, err := d.DigestOf(mem.Addr, shard, m.NumShards)
			if err != nil || !dg.Ready {
				continue
			}
			if ref == nil {
				cp := dg
				ref = &cp
				continue
			}
			if dg.Topology != ref.Topology || dg.Attrs != ref.Attrs {
				mismatch = true
				break
			}
		}
		if mismatch {
			bad = append(bad, shard)
		}
	}
	return bad
}

// String renders the report for the CLI, one line per member and scrub.
func (r *IntegrityReport) String() string {
	out := ""
	for _, g := range r.Groups {
		state := "ok"
		if g.Mismatch {
			state = fmt.Sprintf("MISMATCH (shards %v)", g.BadShards)
		}
		out += fmt.Sprintf("group %d: %s\n", g.Group, state)
		for _, m := range g.Members {
			if m.Err != "" {
				out += fmt.Sprintf("  %-24s unreachable: %s\n", m.Addr, m.Err)
				continue
			}
			out += fmt.Sprintf("  %-24s topo=%016x attrs=%016x edges=%d wal_seq=%d ready=%v\n",
				m.Addr, m.Digest.Topology, m.Digest.Attrs, m.Digest.NumEdges, m.Digest.WALSeq, m.Digest.Ready)
		}
	}
	for _, s := range r.Scrubs {
		if s.Err != "" {
			out += fmt.Sprintf("scrub %-18s error: %s\n", s.Addr, s.Err)
			continue
		}
		out += fmt.Sprintf("scrub %-18s diverged=%v corrupt=%v disk_errors=%d repaired=%v\n",
			s.Addr, s.Report.Diverged, s.Report.Corrupt, len(s.Report.DiskErrors), s.Report.Repaired)
	}
	return out
}
