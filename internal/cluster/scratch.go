// Pooled per-fan-out scratch state. Every sampling / degree / feature
// fan-out used to allocate its per-shard partition slices and the seed
// coalescing map afresh; with gob's reflection garbage gone those
// allocations became the client hot path's dominant source of GC pressure.
// The pools recycle the whole scratch structure, including the inner
// per-shard slices and occurrence lists, so a steady-state training loop's
// fan-outs run allocation-free on the client side.
//
// Safety: scratch slices are referenced by the args structs handed to the
// transport. The wire transport encodes args synchronously inside Call, so
// by the time a fan-out returns no reference survives. The gob transport,
// however, abandons its encoder goroutine on timeout — that goroutine may
// still be reading args — so recycling is gated on Metrics.encBusy, which
// counts abandoned-encoder windows. False "busy" just skips one recycle.
package cluster

import (
	"sync"

	"platod2gl/internal/graph"
)

// sampleScratch is the coalescing state of one SampleNeighbors fan-out.
type sampleScratch struct {
	partSeeds [][]graph.VertexID     // distinct seeds per shard
	partOcc   [][][]int              // original indices per distinct seed
	uniqOf    map[graph.VertexID]int // seed -> index within its shard slice
}

var sampleScratchPool = sync.Pool{New: func() any {
	return &sampleScratch{uniqOf: make(map[graph.VertexID]int)}
}}

// getSampleScratch returns a scratch sized for shards, with inner slices
// emptied but their capacity retained.
func getSampleScratch(shards int) *sampleScratch {
	s := sampleScratchPool.Get().(*sampleScratch)
	if cap(s.partSeeds) < shards {
		s.partSeeds = make([][]graph.VertexID, shards)
		s.partOcc = make([][][]int, shards)
	}
	s.partSeeds = s.partSeeds[:shards]
	s.partOcc = s.partOcc[:shards]
	for p := range s.partSeeds {
		s.partSeeds[p] = s.partSeeds[p][:0]
		s.partOcc[p] = s.partOcc[p][:0]
	}
	clear(s.uniqOf)
	return s
}

// addOcc grows shard p's occurrence list by one reused (emptied) slot and
// returns its index.
func (s *sampleScratch) addOcc(p int) int {
	occ := s.partOcc[p]
	if len(occ) < cap(occ) {
		occ = occ[:len(occ)+1]
		occ[len(occ)-1] = occ[len(occ)-1][:0]
	} else {
		occ = append(occ, nil)
	}
	s.partOcc[p] = occ
	return len(occ) - 1
}

// recycleSampleScratch returns the scratch to the pool unless an abandoned
// gob encoder may still hold references into it.
func (c *Client) recycleSampleScratch(s *sampleScratch) {
	if c.metrics.encBusy() {
		return
	}
	sampleScratchPool.Put(s)
}

// fanoutScratch is the partitioning state of a Degree/Features fan-out:
// per-shard node slices plus the original index of each partitioned node.
type fanoutScratch struct {
	partNodes [][]graph.VertexID
	partIdx   [][]int
}

var fanoutScratchPool = sync.Pool{New: func() any { return new(fanoutScratch) }}

// getFanoutScratch returns a scratch sized for shards with emptied inner
// slices.
func getFanoutScratch(shards int) *fanoutScratch {
	s := fanoutScratchPool.Get().(*fanoutScratch)
	if cap(s.partNodes) < shards {
		s.partNodes = make([][]graph.VertexID, shards)
		s.partIdx = make([][]int, shards)
	}
	s.partNodes = s.partNodes[:shards]
	s.partIdx = s.partIdx[:shards]
	for p := range s.partNodes {
		s.partNodes[p] = s.partNodes[p][:0]
		s.partIdx[p] = s.partIdx[p][:0]
	}
	return s
}

// add partitions node i into shard p.
func (s *fanoutScratch) add(p int, n graph.VertexID, i int) {
	s.partNodes[p] = append(s.partNodes[p], n)
	s.partIdx[p] = append(s.partIdx[p], i)
}

// recycleFanoutScratch returns the scratch to the pool unless an abandoned
// gob encoder may still hold references into it.
func (c *Client) recycleFanoutScratch(s *fanoutScratch) {
	if c.metrics.encBusy() {
		return
	}
	fanoutScratchPool.Put(s)
}
