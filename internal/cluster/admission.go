// Overload protection for the cluster tier: priority classes carried in the
// protocol-v2 request envelope, a server-side admission gate with weighted
// per-priority concurrency limits and bounded queues, typed shed errors that
// clients treat as backpressure rather than failure, and a per-peer AIMD
// concurrency limiter on the client transport pool. Together these keep
// interactive sampling latency bounded when offered load exceeds capacity:
// background traffic (migration copy, WAL catch-up, scrub) yields first,
// then prefetch, and only then are interactive requests shed — with a
// retry-after hint so the retrying client neither hammers the server nor
// trips its circuit breaker on a peer that is healthy but busy.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Priority classifies a request for admission control. Lower value = more
// latency-sensitive. On the wire the envelope carries priority+1 so that 0
// can mean "use the method's default class".
type Priority uint8

const (
	// PriorityInteractive is latency-sensitive read traffic: sampling,
	// degrees, feature lookups — the requests a training step or an online
	// inference blocks on.
	PriorityInteractive Priority = 0
	// PriorityPrefetch is training prefetch and bulk ingest: ApplyBatch,
	// SetFeatures, and pipeline-tagged sampling that runs ahead of the
	// consumer and can absorb delay.
	PriorityPrefetch Priority = 1
	// PriorityBackground is cluster maintenance: migration copies, WAL
	// catch-up, scrub digests, shard control-plane operations.
	PriorityBackground Priority = 2

	numPriorities = 3
)

// String returns the stable label used in metrics and error messages.
func (p Priority) String() string {
	switch p {
	case PriorityInteractive:
		return "interactive"
	case PriorityPrefetch:
		return "prefetch"
	case PriorityBackground:
		return "background"
	}
	return "unknown"
}

// priorityNames is the label set used to pre-seed per-priority metric
// families.
var priorityNames = []string{"interactive", "prefetch", "background"}

type priorityCtxKey struct{}

// WithPriority tags ctx with an explicit priority class. Calls made under
// the returned context carry the class in the request envelope instead of
// the method's default — the prefetch pipeline uses this to demote its
// sampling traffic below interactive callers of the very same RPCs.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return context.WithValue(ctx, priorityCtxKey{}, p)
}

// PriorityFromContext extracts a priority set by WithPriority.
func PriorityFromContext(ctx context.Context) (Priority, bool) {
	p, ok := ctx.Value(priorityCtxKey{}).(Priority)
	return p, ok
}

// overloadedPrefix is the stable prefix OverloadedError crosses the wire
// with; like notReadyMsg, it survives the trip through rpc.ServerError so
// both sides classify shed responses identically.
const overloadedPrefix = "cluster: overloaded:"

// OverloadedError is the server's admission gate shedding a request: the
// server is healthy but saturated, and the client should back off for
// RetryAfter before retrying — against this peer or a sibling replica. It
// is deliberately distinct from transport failure so circuit breakers never
// open on load.
type OverloadedError struct {
	Method     string
	Priority   Priority
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%s %s (%s): retry after %dms",
		overloadedPrefix, e.Method, e.Priority, e.RetryAfter.Milliseconds())
}

// IsOverloaded reports whether err is a shed response — typed locally or
// carried across either transport as an rpc.ServerError string.
func IsOverloaded(err error) bool {
	if err == nil {
		return false
	}
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return true
	}
	var se rpc.ServerError
	return errors.As(err, &se) && strings.Contains(string(se), overloadedPrefix)
}

// OverloadRetryAfter extracts the server's retry-after hint from a shed
// response, or 0 when err is not one (or carries no parseable hint).
func OverloadRetryAfter(err error) time.Duration {
	if err == nil {
		return 0
	}
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	var se rpc.ServerError
	if !errors.As(err, &se) {
		return 0
	}
	s := string(se)
	const marker = "retry after "
	i := strings.LastIndex(s, marker)
	if i < 0 {
		return 0
	}
	ms := strings.TrimSuffix(s[i+len(marker):], "ms")
	n, perr := strconv.ParseInt(ms, 10, 64)
	if perr != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Millisecond
}

// budgetExpiredPrefix marks fast-rejects: the request's propagated budget
// was already below the observed service time, so running it would only
// produce a response nobody is waiting for.
const budgetExpiredPrefix = "cluster: deadline:"

// BudgetExpiredError is the admission gate's fast-reject of a request whose
// remaining deadline budget cannot cover the method's observed service
// time. Unlike OverloadedError it is not worth retrying — the caller's
// deadline is effectively spent.
type BudgetExpiredError struct {
	Method   string
	Budget   time.Duration
	Expected time.Duration
}

func (e *BudgetExpiredError) Error() string {
	return fmt.Sprintf("%s %s budget %dms below observed service time %dms",
		budgetExpiredPrefix, e.Method, e.Budget.Milliseconds(), e.Expected.Milliseconds())
}

// IsBudgetExpired reports whether err is a server fast-reject for an
// exhausted deadline budget.
func IsBudgetExpired(err error) bool {
	if err == nil {
		return false
	}
	var be *BudgetExpiredError
	if errors.As(err, &be) {
		return true
	}
	var se rpc.ServerError
	return errors.As(err, &se) && strings.Contains(string(se), budgetExpiredPrefix)
}

// AdmissionConfig tunes the server-side admission gate.
type AdmissionConfig struct {
	// MaxConcurrent is the total number of in-flight handler slots.
	// Interactive requests may use all of them; prefetch is capped at 3/4
	// and background at 1/4, so maintenance traffic yields as soon as the
	// server is a quarter busy. <= 0 disables the gate entirely.
	MaxConcurrent int
	// MaxQueue bounds each priority class's admission queue; a request
	// arriving at a full queue is shed immediately. <= 0 defaults to
	// 2*MaxConcurrent.
	MaxQueue int
	// MaxQueueWait bounds how long a request may wait for a slot before
	// being shed (further capped by the request's own remaining budget).
	// <= 0 defaults to 100ms.
	MaxQueueWait time.Duration
}

// DefaultAdmission is the gate every NewServer starts with: generous enough
// that lightly loaded servers never queue, tight enough that a storm cannot
// run the handler count unbounded.
func DefaultAdmission() AdmissionConfig {
	return AdmissionConfig{MaxConcurrent: 256, MaxQueue: 512, MaxQueueWait: 100 * time.Millisecond}
}

const (
	minRetryAfter = 5 * time.Millisecond
	maxRetryAfter = time.Second
)

// admitWaiter is one queued request parked until a slot frees or its wait
// budget expires.
type admitWaiter struct {
	enqueued time.Time
	done     chan struct{} // closed when admitted
	admitted bool          // guarded by the gate mutex
}

// admissionGate is the server's per-priority admission controller. All
// state is under one short-held mutex: admission decisions are a few
// comparisons, and the queues are bounded.
type admissionGate struct {
	cfg      AdmissionConfig
	caps     [numPriorities]int
	maxQueue int
	maxWait  time.Duration
	m        *Metrics

	mu       sync.Mutex
	inflight int
	queues   [numPriorities][]*admitWaiter
	svcTime  map[string]time.Duration // per-method EWMA of handler time
}

// newAdmissionGate builds a gate, or returns nil (gate disabled) when
// MaxConcurrent <= 0.
func newAdmissionGate(cfg AdmissionConfig, m *Metrics) *admissionGate {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 2 * cfg.MaxConcurrent
	}
	if cfg.MaxQueueWait <= 0 {
		cfg.MaxQueueWait = 100 * time.Millisecond
	}
	g := &admissionGate{cfg: cfg, maxQueue: cfg.MaxQueue, maxWait: cfg.MaxQueueWait,
		m: m, svcTime: make(map[string]time.Duration)}
	n := cfg.MaxConcurrent
	g.caps[PriorityInteractive] = n
	g.caps[PriorityPrefetch] = max(1, n*3/4)
	g.caps[PriorityBackground] = max(1, n/4)
	return g
}

// acquire admits, queues, fast-rejects, or sheds one request. A nil error
// means the request holds a handler slot and must release() it.
func (g *admissionGate) acquire(method string, pri Priority, budget time.Duration) error {
	if g == nil {
		return nil
	}
	if pri >= numPriorities {
		pri = PriorityBackground
	}
	g.mu.Lock()
	// Fast-reject: if the caller's remaining budget is already below this
	// method's observed service time, the reply would arrive after the
	// caller gave up — shed now, before burning a slot on dead work.
	if budget > 0 {
		if est := g.svcTime[method]; est > 0 && budget < est {
			g.mu.Unlock()
			g.m.incDeadlineExpired()
			return &BudgetExpiredError{Method: method, Budget: budget, Expected: est}
		}
	}
	// Immediate admission: a free slot under this class's cap and nobody of
	// the same class already waiting (FIFO within a class; strict priority
	// across classes is enforced at release time).
	if g.inflight < g.caps[pri] && len(g.queues[pri]) == 0 {
		g.inflight++
		g.mu.Unlock()
		g.m.observeAdmissionWait(pri, 0)
		return nil
	}
	if len(g.queues[pri]) >= g.maxQueue {
		ra := g.retryAfterLocked(method)
		g.mu.Unlock()
		g.m.incShed(method, pri)
		return &OverloadedError{Method: method, Priority: pri, RetryAfter: ra}
	}
	w := &admitWaiter{enqueued: time.Now(), done: make(chan struct{})}
	g.queues[pri] = append(g.queues[pri], w)
	g.m.setQueueDepth(pri, int64(len(g.queues[pri])))
	g.mu.Unlock()

	wait := g.maxWait
	if budget > 0 && budget < wait {
		wait = budget
	}
	tm := time.NewTimer(wait)
	defer tm.Stop()
	select {
	case <-w.done:
		g.m.observeAdmissionWait(pri, time.Since(w.enqueued))
		return nil
	case <-tm.C:
		g.mu.Lock()
		if w.admitted {
			// Lost the race: a release admitted us as the timer fired. Keep
			// the slot rather than leak it.
			g.mu.Unlock()
			g.m.observeAdmissionWait(pri, time.Since(w.enqueued))
			return nil
		}
		q := g.queues[pri]
		for i, qw := range q {
			if qw == w {
				g.queues[pri] = append(q[:i], q[i+1:]...)
				break
			}
		}
		g.m.setQueueDepth(pri, int64(len(g.queues[pri])))
		ra := g.retryAfterLocked(method)
		g.mu.Unlock()
		g.m.incShed(method, pri)
		return &OverloadedError{Method: method, Priority: pri, RetryAfter: ra}
	}
}

// release returns a slot, folds the observed service time into the
// per-method EWMA, and promotes queued waiters in strict priority order.
func (g *admissionGate) release(method string, start time.Time) {
	if g == nil {
		return
	}
	elapsed := time.Since(start)
	g.mu.Lock()
	if old := g.svcTime[method]; old == 0 {
		g.svcTime[method] = elapsed
	} else {
		// EWMA with alpha 1/4: responsive to load shifts, stable under noise.
		g.svcTime[method] = old + (elapsed-old)/4
	}
	g.inflight--
	for pri := Priority(0); pri < numPriorities; pri++ {
		for len(g.queues[pri]) > 0 && g.inflight < g.caps[pri] {
			w := g.queues[pri][0]
			g.queues[pri] = g.queues[pri][1:]
			g.inflight++
			w.admitted = true
			close(w.done)
		}
		g.m.setQueueDepth(pri, int64(len(g.queues[pri])))
	}
	g.mu.Unlock()
}

// retryAfterLocked scales the hint with queue pressure: roughly "how long
// until the backlog ahead of you drains at the observed service rate",
// clamped to keep clients neither hammering nor stalling.
func (g *admissionGate) retryAfterLocked(method string) time.Duration {
	base := g.svcTime[method]
	if base <= 0 {
		base = minRetryAfter
	}
	queued := 0
	for i := range g.queues {
		queued += len(g.queues[i])
	}
	ra := time.Duration(float64(base) * float64(g.inflight+queued+1) / float64(g.cfg.MaxConcurrent))
	if ra < minRetryAfter {
		ra = minRetryAfter
	}
	if ra > maxRetryAfter {
		ra = maxRetryAfter
	}
	return ra
}

// errClientSaturated is returned by the client transport when a call could
// not acquire a slot under the peer's adaptive concurrency limit within its
// budget. It is self-inflicted backpressure: the retry loop backs off and
// retries without feeding the circuit breaker or tearing down connections.
var errClientSaturated = errors.New("cluster: client concurrency limit saturated")

const (
	aimdMinLimit = 1.0
	aimdMaxLimit = 64.0
	aimdBackoff  = 0.7
)

// aimdLimiter is the per-peer adaptive concurrency limiter: additive
// increase (+1/limit per success, so one full limit's worth of successes
// grows it by ~1), multiplicative decrease (×0.7 on timeout or shed).
// It converges on the concurrency the peer can actually absorb, which
// keeps a saturated server's queues short enough that its retry-after
// hints stay honest.
type aimdLimiter struct {
	m *Metrics

	mu       sync.Mutex
	limit    float64
	inflight int
	waiters  []chan struct{}
}

func newAIMDLimiter(m *Metrics) *aimdLimiter {
	return &aimdLimiter{m: m, limit: aimdMaxLimit}
}

// acquire claims a concurrency slot, waiting up to maxWait for one.
func (l *aimdLimiter) acquire(maxWait time.Duration) error {
	l.mu.Lock()
	if l.inflight < int(l.limit) {
		l.inflight++
		l.mu.Unlock()
		return nil
	}
	ch := make(chan struct{}, 1)
	l.waiters = append(l.waiters, ch)
	l.mu.Unlock()
	if maxWait <= 0 {
		maxWait = time.Second
	}
	tm := time.NewTimer(maxWait)
	defer tm.Stop()
	select {
	case <-ch:
		return nil // slot transferred by a releaser
	case <-tm.C:
		l.mu.Lock()
		for i, w := range l.waiters {
			if w == ch {
				l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
				l.mu.Unlock()
				l.m.incClientSaturation()
				return errClientSaturated
			}
		}
		// Already granted between timer fire and lock: keep the slot.
		l.mu.Unlock()
		return nil
	}
}

// release returns the slot; degrade is true when the call ended in a
// timeout or a shed response (the peer signalled overload).
func (l *aimdLimiter) release(degrade bool) {
	l.mu.Lock()
	if degrade {
		l.limit *= aimdBackoff
		if l.limit < aimdMinLimit {
			l.limit = aimdMinLimit
		}
	} else {
		l.limit += 1 / l.limit
		if l.limit > aimdMaxLimit {
			l.limit = aimdMaxLimit
		}
	}
	if len(l.waiters) > 0 && l.inflight <= int(l.limit) {
		// Hand the slot to the oldest waiter instead of releasing it.
		ch := l.waiters[0]
		l.waiters = l.waiters[1:]
		ch <- struct{}{}
	} else {
		l.inflight--
	}
	lim := l.limit
	l.mu.Unlock()
	l.m.setAdaptiveLimit(lim)
}

// current returns the present limit, for summaries and tests.
func (l *aimdLimiter) current() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}
