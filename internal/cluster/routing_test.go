// Routing layer tests: the epoch-versioned shard map, NotOwner rejection
// wire format, server-side push semantics, client-side re-route after a
// cutover, and the dial-time routing handshake over real TCP.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

func TestShardOfStable(t *testing.T) {
	// The placement hash is part of the wire contract: every client and
	// server must agree, forever. Pin a few values.
	if ShardOf(0, 4) != ShardOf(0, 4) {
		t.Fatal("ShardOf not deterministic")
	}
	counts := make([]int, 8)
	for v := graph.VertexID(0); v < 10_000; v++ {
		s := ShardOf(v, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%d, 8) = %d out of range", v, s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 1000 || n > 1500 {
			t.Fatalf("shard %d holds %d of 10k sequential vertices — mixing is broken", s, n)
		}
	}
}

func TestIdentityMapAndValidate(t *testing.T) {
	m, err := IdentityMap([]string{"a", "b"}, 1, 4)
	if err != nil {
		t.Fatalf("IdentityMap: %v", err)
	}
	if m.Epoch != 1 || m.NumShards != 4 || m.NumGroups() != 2 {
		t.Fatalf("unexpected identity map: %+v", m)
	}
	for s, g := range m.Assign {
		if g != s%2 {
			t.Fatalf("Assign[%d] = %d, want %d", s, g, s%2)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	bad := m.Clone()
	bad.Epoch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("epoch 0 must be invalid (reserved for legacy)")
	}
	bad = m.Clone()
	bad.Assign[0] = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range assignment must be invalid")
	}
	bad = m.Clone()
	bad.Servers = []string{"a", "a"}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate server must be invalid")
	}
	if _, err := IdentityMap([]string{"a", "b", "c"}, 2, 4); err == nil {
		t.Fatal("3 servers with replicas=2 must be invalid")
	}
}

func TestCountBalancePlan(t *testing.T) {
	m, _ := IdentityMap([]string{"a", "b"}, 1, 6)
	if plan := CountBalancePlan(m); len(plan) != 0 {
		t.Fatalf("balanced map produced plan %v", plan)
	}
	// Grow: a third, empty group appears; the plan must move 2 shards to it.
	m.Servers = append(m.Servers, "c")
	m.Epoch++
	plan := CountBalancePlan(m)
	if len(plan) != 2 {
		t.Fatalf("grow plan = %v, want 2 moves", plan)
	}
	counts := make([]int, 3)
	for s, g := range m.Assign {
		_ = s
		counts[g]++
	}
	for _, mv := range plan {
		if mv.To != 2 {
			t.Fatalf("move %v does not target the empty group", mv)
		}
		counts[mv.From]--
		counts[mv.To]++
	}
	for g, n := range counts {
		if n != 2 {
			t.Fatalf("group %d ends with %d shards after plan, want 2", g, n)
		}
	}
}

func TestNotOwnerErrorRoundTrip(t *testing.T) {
	// NotOwner crosses the wire as an rpc.ServerError string; the parser must
	// recover the epoch from the flattened form.
	err := notOwnerError(3, 17)
	wire := rpc.ServerError(err.Error()) // what the client actually sees
	epoch, ok := notOwnerEpoch(wire)
	if !ok || epoch != 17 {
		t.Fatalf("notOwnerEpoch(%q) = (%d, %v), want (17, true)", wire, epoch, ok)
	}
	if _, ok := notOwnerEpoch(errors.New("cluster: something else")); ok {
		t.Fatal("unrelated error parsed as NotOwner")
	}
	if _, ok := notOwnerEpoch(nil); ok {
		t.Fatal("nil error parsed as NotOwner")
	}
	// A wrapped NotOwner (retry layers add context) still parses.
	wrapped := fmt.Errorf("call failed after 2 attempts: %w", err)
	if epoch, ok := notOwnerEpoch(wrapped); !ok || epoch != 17 {
		t.Fatalf("wrapped NotOwner not recognized: (%d, %v)", epoch, ok)
	}
}

func newTestService(t *testing.T) *Service {
	t.Helper()
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
	return NewService(store, kvstore.New())
}

func TestUpdateRoutingSemantics(t *testing.T) {
	svc := newTestService(t)
	svc.SetAdvertise("b")
	m, _ := IdentityMap([]string{"a", "b"}, 1, 4)

	var reply UpdateRoutingReply
	if err := svc.UpdateRouting(&UpdateRoutingArgs{Map: *m}, &reply); err != nil {
		t.Fatalf("install: %v", err)
	}
	if reply.Epoch != 1 {
		t.Fatalf("install epoch = %d", reply.Epoch)
	}
	got, self := svc.RoutingSnapshot()
	if got == nil || got.Epoch != 1 || self != 1 {
		t.Fatalf("snapshot = (%v, %d), want epoch 1 self 1", got, self)
	}

	// Newer epoch installs; re-push of the same or older is a no-op.
	next := m.Clone()
	next.Epoch = 3
	next.Assign[0] = 1 // migrate shard 0 onto group 1
	if err := svc.UpdateRouting(&UpdateRoutingArgs{Map: *next}, &reply); err != nil || reply.Epoch != 3 {
		t.Fatalf("newer push: %v epoch %d", err, reply.Epoch)
	}
	if err := svc.UpdateRouting(&UpdateRoutingArgs{Map: *m}, &reply); err != nil {
		t.Fatalf("stale push errored: %v", err)
	}
	if reply.Epoch != 3 {
		t.Fatalf("stale push changed epoch to %d", reply.Epoch)
	}
	if got, _ := svc.RoutingSnapshot(); got.Assign[0] != 1 {
		t.Fatal("stale push overwrote assignment")
	}

	// The hash space is fixed for the cluster's lifetime.
	resized, _ := IdentityMap([]string{"a", "b"}, 1, 8)
	resized.Epoch = 9
	if err := svc.UpdateRouting(&UpdateRoutingArgs{Map: *resized}, &reply); err == nil {
		t.Fatal("NumShards change accepted")
	}

	// Ownership checks follow the installed map; legacy epoch-0 bypasses.
	var owned, notOwned int
	for s := 0; s < 4; s++ {
		if err := svc.checkRoute(s, 3); err == nil {
			owned++
		} else if _, ok := notOwnerEpoch(err); ok {
			notOwned++
		} else {
			t.Fatalf("checkRoute(%d): %v", s, err)
		}
	}
	if owned != 3 || notOwned != 1 { // self=1 owns shards 0 (migrated), 1, 3
		t.Fatalf("owned=%d notOwned=%d, want 3/1", owned, notOwned)
	}
	if err := svc.checkRoute(0, 0); err != nil {
		t.Fatalf("legacy request rejected: %v", err)
	}
}

// TestClientReRouteOnCutover drives a live migration and asserts a client
// holding the pre-cutover map transparently follows the shard: its next
// operations hit the old owner, bounce with NotOwner, refresh the map, and
// succeed against the new owner — zero surfaced errors.
func TestClientReRouteOnCutover(t *testing.T) {
	const servers = 2
	const numShards = 4
	metrics := &Metrics{}
	lc, oracle := newMigrationCluster(t, servers, metrics)
	defer lc.Shutdown()
	client := lc.Client()

	d := &Driver{Dial: lc.DialAddr, Metrics: metrics, Logf: t.Logf}
	addrs := []string{LocalAddr(0), LocalAddr(1)}
	m, err := d.InitRouting(addrs, 1, numShards)
	if err != nil {
		t.Fatalf("init routing: %v", err)
	}
	if err := client.AdoptRouting(m); err != nil {
		t.Fatalf("adopt: %v", err)
	}

	apply := func(events []graph.Event) {
		t.Helper()
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Fatalf("apply: %v", err)
		}
		oracle.ApplyBatch(events)
	}
	var events []graph.Event
	for v := graph.VertexID(0); v < 400; v++ {
		events = append(events, graph.Event{Kind: graph.AddEdge,
			Edge: graph.Edge{Src: v, Dst: v + 1000, Type: 0, Weight: 1}})
	}
	apply(events)

	// Move shard 0 from group 0 to group 1. The client is not told.
	if _, err := d.MigrateShard(m, 0, 1); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// Reads and writes for shard 0 re-route transparently.
	var probe []graph.VertexID
	for v := graph.VertexID(0); len(probe) < 16; v++ {
		if ShardOf(v, numShards) == 0 {
			probe = append(probe, v)
		}
	}
	degs, err := client.Degree(probe, 0)
	if err != nil {
		t.Fatalf("degree after cutover: %v", err)
	}
	for i, v := range probe {
		if want := oracle.Degree(v, 0); degs[i] != want {
			t.Fatalf("degree(%v) = %d, want %d", v, degs[i], want)
		}
	}
	var more []graph.Event
	for _, v := range probe {
		more = append(more, graph.Event{Kind: graph.AddEdge,
			Edge: graph.Edge{Src: v, Dst: v + 2000, Type: 0, Weight: 1}})
	}
	apply(more)

	rm := client.RoutingMap()
	if rm == nil || rm.Epoch != m.Epoch+1 {
		t.Fatalf("client did not adopt the cutover map: %+v", rm)
	}
	snap := metrics.Snapshot()
	if snap.Reroutes == 0 || snap.RoutingRefreshes == 0 || snap.NotOwnerRejects == 0 {
		t.Fatalf("re-route path not exercised: %s", snap)
	}
	if snap.ShardsMigrated != 1 || snap.MigrationBytes == 0 {
		t.Fatalf("migration not accounted: %s", snap)
	}
}

// TestDialHandshake covers the routing-epoch handshake over real TCP: a
// uniformly legacy cluster dials fine; a mixed cluster (one server lost the
// map) fails fast with the re-push instruction; a uniformly routed cluster
// adopts the newest map at dial time.
func TestDialHandshake(t *testing.T) {
	newTCPServer := func() (addr string, svc *Service, closeFn func()) {
		svc = newTestService(t)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(svc)
		go srv.Serve(lis)
		return lis.Addr().String(), svc, func() { lis.Close() }
	}
	addr0, svc0, close0 := newTCPServer()
	defer close0()
	addr1, svc1, close1 := newTCPServer()
	defer close1()
	addrs := []string{addr0, addr1}
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second

	// Uniformly legacy: dial succeeds, no map adopted.
	c, err := Dial(addrs, opts)
	if err != nil {
		t.Fatalf("legacy dial: %v", err)
	}
	if c.RoutingMap() != nil {
		t.Fatal("legacy dial adopted a map from nowhere")
	}
	c.Close()

	// Mixed: server 0 routed, server 1 legacy — fail fast, name the laggard.
	m, err := IdentityMap(addrs, 1, 4)
	if err != nil {
		t.Fatalf("IdentityMap: %v", err)
	}
	svc0.SetAdvertise(addr0)
	svc1.SetAdvertise(addr1)
	var ur UpdateRoutingReply
	if err := svc0.UpdateRouting(&UpdateRoutingArgs{Map: *m}, &ur); err != nil {
		t.Fatalf("push to svc0: %v", err)
	}
	if _, err := Dial(addrs, opts); err == nil {
		t.Fatal("mixed routed/legacy dial succeeded")
	} else if !strings.Contains(err.Error(), addr1) || !strings.Contains(err.Error(), "re-push") {
		t.Fatalf("mixed dial error unhelpful: %v", err)
	}

	// Uniformly routed: dial adopts the map.
	if err := svc1.UpdateRouting(&UpdateRoutingArgs{Map: *m}, &ur); err != nil {
		t.Fatalf("push to svc1: %v", err)
	}
	c, err = Dial(addrs, opts)
	if err != nil {
		t.Fatalf("routed dial: %v", err)
	}
	defer c.Close()
	rm := c.RoutingMap()
	if rm == nil || rm.Epoch != m.Epoch || rm.NumShards != 4 {
		t.Fatalf("routed dial adopted %+v, want epoch %d x 4 shards", rm, m.Epoch)
	}
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d under routing, want 4", c.NumShards())
	}
}
