// Replica groups: each logical shard maps to R peers instead of one, so a
// single replica loss is a non-event rather than a degraded mode. Writes
// fan out to every replica of the owning shard — the existing (ClientID,
// Seq) at-most-once identity makes all replicas converge despite
// independent retries — and succeed once any replica acknowledges; reads
// rotate across live replicas and fail over automatically on timeout,
// circuit-open, or a replica still catching up, so sampling stays exact
// with any single replica down. This mirrors what production GNN stores do
// (AliGraph replicates important vertices across servers; DistDGL
// co-locates replicated halo nodes) scaled down to whole-shard groups.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// staleProbeMinInterval rate-limits SyncState probes of a stale replica so
// every read does not re-probe a dead peer.
const staleProbeMinInterval = 50 * time.Millisecond

// NumShards returns the number of logical shards: the adopted shard map's
// hash space when routed, one shard per replica group otherwise.
func (c *Client) NumShards() int { return c.numShards() }

// NumReplicas returns the replica-group size R.
func (c *Client) NumReplicas() int { return c.replicas }

// group returns the peers serving logical shard s under the legacy frozen
// placement (shard s = peer group s). Routed calls resolve groups through
// the shard map instead.
func (c *Client) group(s int) []*peer {
	c.peerMu.RLock()
	defer c.peerMu.RUnlock()
	return c.peers[s*c.replicas : (s+1)*c.replicas]
}

// notReadyMsg is the wire form of a replica rejecting reads mid-catch-up.
// It travels as an rpc.ServerError string, so detection is by prefix.
const notReadyMsg = "cluster: replica not ready (catching up)"

// ErrReplicaNotReady is returned by read RPCs on a replica that has not yet
// converged with its group; the client treats it as a failover signal, not
// a request error.
var ErrReplicaNotReady = errors.New(notReadyMsg)

// isNotReady reports whether err is a replica's not-ready rejection
// (possibly wrapped in an rpc.ServerError on the client side).
func isNotReady(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrReplicaNotReady) {
		return true
	}
	var serverErr rpc.ServerError
	return errors.As(err, &serverErr) && strings.Contains(string(serverErr), notReadyMsg)
}

// failoverWorthy reports whether a per-replica error should move the read
// on to the next replica. Transport failures, open breakers, and not-ready
// replicas fail over; other application errors (rpc.ServerError, e.g. a
// negative fanout) are deterministic — every replica would reject them — so
// they surface immediately.
func failoverWorthy(err error) bool {
	return retryable(err) || isNotReady(err) || IsOverloaded(err)
}

// shardTarget resolves logical shard s to the peers that serve it right
// now: the shard map's owning group when routing is adopted, the frozen
// placement's group s otherwise. It also returns the group's read-rotation
// counter and the routing epoch to stamp on the request (0 = legacy).
func (c *Client) shardTarget(s int) (group []*peer, rrc *atomic.Uint64, epoch uint64) {
	if rt := c.route.Load(); rt != nil {
		g := rt.m.Assign[s]
		return rt.groups[g], &rt.rr[g], rt.m.Epoch
	}
	return c.group(s), &c.rr[s], 0
}

// readShard performs one read RPC against logical shard s, resolving it
// through the shard map (when adopted) and bouncing on NotOwner: a
// rejection with a newer routing epoch triggers a map refresh and a re-route
// to the new owner, bounded by maxReroutes hops, so a mid-read cutover
// costs a transparent retry instead of a failed operation.
func (c *Client) readShard(ctx context.Context, s int, method string, args, reply any) error {
	var lastErr error
	for hop := 0; ; hop++ {
		group, rrc, epoch := c.shardTarget(s)
		stampRoute(args, s, epoch)
		err := c.readGroup(ctx, s, group, rrc, method, args, reply)
		if err == nil {
			return nil
		}
		lastErr = err
		if _, ok := notOwnerEpoch(err); !ok || epoch == 0 || hop >= maxReroutes {
			break
		}
		c.metrics.incReroute()
		if !c.RefreshRouting(epoch + 1) {
			// Rejected, but no newer map visible yet: the cutover push is
			// mid-flight across the server set. Let it land.
			time.Sleep(rerouteSettleDelay)
		}
	}
	return lastErr
}

// readGroup performs one read RPC against a replica group, load-balancing
// across its replicas and failing over on transport failure, open breaker,
// or a replica that is still catching up. Stale replicas (ones that missed
// a write from this client) are skipped until a SyncState probe shows they
// re-synced. Returns the first success, a deterministic application error
// as soon as any replica reports one, or — when every replica failed — the
// last failover-worthy error.
func (c *Client) readGroup(ctx context.Context, s int, group []*peer, rrc *atomic.Uint64, method string, args, reply any) error {
	start := int(rrc.Add(1)-1) % len(group)
	var lastErr error
	for k := 0; k < len(group); k++ {
		pe := group[(start+k)%len(group)]
		if pe.stale.Load() && !c.tryClearStale(pe) {
			lastErr = fmt.Errorf("cluster: replica %d (shard %d) is stale", pe.idx, pe.shard)
			continue
		}
		err := c.callPeCtx(ctx, pe, method, args, reply, c.opts.MaxRetries)
		if err == nil {
			return nil
		}
		if !failoverWorthy(err) {
			return err
		}
		lastErr = err
		if k < len(group)-1 {
			c.metrics.incFailover()
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: shard %d has no replicas", s)
	}
	return fmt.Errorf("cluster: shard %d: all %d replicas failed: %w", s, len(group), lastErr)
}

// writeShard routes one write to logical shard s, re-routing on NotOwner
// exactly like readShard: args is re-stamped with the refreshed epoch before
// every hop, and the server-side (ClientID, Seq) dedup makes the repeated
// delivery at-most-once even when the first attempt did apply before the
// reply was lost.
func (c *Client) writeShard(ctx context.Context, s int, args any, call func(ctx context.Context, pe *peer, maxRetries int) error) error {
	var lastErr error
	for hop := 0; ; hop++ {
		group, _, epoch := c.shardTarget(s)
		stampRoute(args, s, epoch)
		err := c.writeGroup(ctx, s, group, call)
		if err == nil {
			return nil
		}
		lastErr = err
		if _, ok := notOwnerEpoch(err); !ok || epoch == 0 || hop >= maxReroutes {
			break
		}
		c.metrics.incReroute()
		if !c.RefreshRouting(epoch + 1) {
			time.Sleep(rerouteSettleDelay)
		}
	}
	return lastErr
}

// writeGroup fans a write out to every replica of a group concurrently. The
// write succeeds once at least one replica acknowledges; replicas that
// failed every attempt are marked stale (out of the read rotation until
// they demonstrably re-sync) rather than failing the batch — a missed write
// is repaired by WAL-shipped catch-up, not by stalling training. If every
// replica fails, the first error is returned (preferring a NotOwner
// rejection, which the caller can cure by re-routing).
//
// call is invoked with the replica peer and that peer's retry budget;
// already-stale replicas get a single attempt so a down replica does not
// tax every batch with a full retry cycle.
func (c *Client) writeGroup(ctx context.Context, s int, group []*peer, call func(ctx context.Context, pe *peer, maxRetries int) error) error {
	errs := make([]error, len(group))
	var wg sync.WaitGroup
	for r, pe := range group {
		wg.Add(1)
		go func(r int, pe *peer) {
			defer wg.Done()
			budget := c.opts.MaxRetries
			if pe.stale.Load() {
				budget = 0
			}
			errs[r] = call(ctx, pe, budget)
		}(r, pe)
	}
	wg.Wait()
	acked := 0
	for _, err := range errs {
		if err == nil {
			acked++
		}
	}
	if acked == 0 {
		for _, err := range errs {
			if _, ok := notOwnerEpoch(err); ok {
				return err
			}
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return fmt.Errorf("cluster: shard %d has no replicas", s)
	}
	for r, err := range errs {
		if err == nil {
			continue
		}
		if _, ok := notOwnerEpoch(err); ok {
			// A routing disagreement inside the group (a push still landing),
			// not a missed write: the replica converges via its own map
			// update, so keep it in the read rotation.
			continue
		}
		c.markStale(group[r])
	}
	return nil
}

// markStale pulls a replica out of the read rotation after it missed one of
// this client's writes, and records the sync epoch it must move past to
// rejoin. A best-effort synchronous probe captures the replica's current
// epoch; if the replica is unreachable (the usual crash case) the epoch
// stays 0 and any subsequent ready state is accepted — a replicated server
// only reports ready after its boot-time catch-up.
func (c *Client) markStale(pe *peer) {
	if pe.stale.Swap(true) {
		return // already stale; keep the original epoch requirement
	}
	c.metrics.incStaleMark()
	pe.staleEpoch.Store(0)
	var reply SyncStateReply
	if err := c.callPeerBudget(pe.idx, ServiceName+".SyncState", &SyncStateArgs{}, &reply, 0); err == nil {
		pe.staleEpoch.Store(reply.SyncEpoch)
	}
}

// tryClearStale probes a stale replica's sync state (rate-limited) and
// clears the stale mark when the replica reports ready under a sync epoch
// different from the one recorded at the miss — i.e. it has completed a
// catch-up since. Returns whether the replica is usable for reads now.
func (c *Client) tryClearStale(pe *peer) bool {
	now := time.Now().UnixNano()
	last := pe.lastProbe.Load()
	if now-last < int64(staleProbeMinInterval) || !pe.lastProbe.CompareAndSwap(last, now) {
		return false
	}
	var reply SyncStateReply
	if err := c.callPeerBudget(pe.idx, ServiceName+".SyncState", &SyncStateArgs{}, &reply, 0); err != nil {
		return false
	}
	if !reply.Ready || reply.SyncEpoch == pe.staleEpoch.Load() {
		return false
	}
	pe.stale.Store(false)
	return true
}
