package cluster

import (
	"net"
	"net/rpc"
	"testing"
	"time"

	"platod2gl/internal/graph"
)

// startWireServer runs the sniffing Server (wire + gob fallback) on a real
// TCP listener and returns its address plus the service's metrics.
func startWireServer(t *testing.T) (addr string, m *Metrics, svc *Service) {
	t.Helper()
	svc = newTestService(t)
	m = &Metrics{}
	svc.SetMetrics(m)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(svc)
	go srv.Serve(lis)
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String(), m, svc
}

// startLegacyGobServer runs a plain net/rpc gob server — a pre-wire binary.
// It has no sniffing: a wire hello is garbage to it and kills the conn.
func startLegacyGobServer(t *testing.T) (addr string) {
	t.Helper()
	svc := newTestService(t)
	rs := rpc.NewServer()
	if err := rs.RegisterName(ServiceName, svc); err != nil {
		t.Fatalf("register: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go rs.ServeConn(conn)
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String()
}

func testEvents(n int) []graph.Event {
	evs := make([]graph.Event, n)
	for i := range evs {
		evs[i] = graph.Event{Kind: graph.AddEdge,
			Edge: graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1000), Weight: 1}}
	}
	return evs
}

// exerciseClient pushes a batch and reads it back through sampling + stats.
func exerciseClient(t *testing.T, c *Client) {
	t.Helper()
	if err := c.ApplyBatch(testEvents(200)); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	seeds := []graph.VertexID{1, 2, 3}
	neigh, err := c.SampleNeighbors(seeds, 0, 4, 7)
	if err != nil {
		t.Fatalf("SampleNeighbors: %v", err)
	}
	if len(neigh) != len(seeds)*4 {
		t.Fatalf("SampleNeighbors returned %d ids, want %d", len(neigh), len(seeds)*4)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.NumEdges == 0 {
		t.Fatal("Stats reports zero edges after ApplyBatch")
	}
}

// TestInteropWireToWire: current client against current server negotiates
// the binary protocol, serves traffic, and records exact payload bytes.
func TestInteropWireToWire(t *testing.T) {
	addr, sm, _ := startWireServer(t)
	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.Metrics = cm
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)

	if n := cm.WireHandshakes.Load(); n == 0 {
		t.Fatal("client recorded no wire handshakes")
	}
	if n := sm.WireHandshakes.Load(); n == 0 {
		t.Fatal("server recorded no wire handshakes")
	}
	if n := cm.WireNegotiateDowns.Load(); n != 0 {
		t.Fatalf("client negotiated down %d times against a wire server", n)
	}
	if n := sm.GobFallbacks.Load(); n != 0 {
		t.Fatalf("server sniffed %d gob conns from a wire client", n)
	}
	for _, method := range []string{"Handshake", "ApplyBatch", "SampleNeighbors", "Stats"} {
		if sm.PayloadBytes.With(method).Count() == 0 {
			t.Errorf("no payload bytes recorded for %s", method)
		}
	}
	// A 200-event batch is ~20 bytes/event on the wire; the gob equivalent
	// is ~34 bytes/event plus type descriptors. Assert the wire encoding
	// actually landed in the compact range.
	snap := sm.PayloadBytes.With("ApplyBatch").Snapshot()
	if snap.Sum > 200*25 {
		t.Errorf("ApplyBatch payload %d bytes for 200 events — wire codec not in effect?", snap.Sum)
	}
}

// TestInteropAutoClientLegacyServer: a ProtoAuto client dialing a pre-wire
// gob server must negotiate down per peer and serve identically — the
// rolling-upgrade path where clients upgrade first.
func TestInteropAutoClientLegacyServer(t *testing.T) {
	addr := startLegacyGobServer(t)
	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.Metrics = cm
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("dial legacy server: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)

	if n := cm.WireNegotiateDowns.Load(); n == 0 {
		t.Fatal("client never negotiated down against a gob-only server")
	}
	if n := cm.WireHandshakes.Load(); n != 0 {
		t.Fatalf("client recorded %d wire handshakes against a gob-only server", n)
	}
}

// TestInteropLegacyClientWireServer: a pre-wire gob rpc.Client against the
// sniffing server — the rolling-upgrade path where servers upgrade first.
func TestInteropLegacyClientWireServer(t *testing.T) {
	addr, sm, _ := startWireServer(t)
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("gob dial: %v", err)
	}
	defer rc.Close()

	var br BatchReply
	if err := rc.Call(ServiceName+".ApplyBatch", &BatchArgs{Events: testEvents(50)}, &br); err != nil {
		t.Fatalf("gob ApplyBatch: %v", err)
	}
	var sr StatsReply
	if err := rc.Call(ServiceName+".Stats", &StatsArgs{}, &sr); err != nil {
		t.Fatalf("gob Stats: %v", err)
	}
	if sr.NumEdges != 50 {
		t.Fatalf("gob Stats = %d edges, want 50", sr.NumEdges)
	}
	if n := sm.GobFallbacks.Load(); n == 0 {
		t.Fatal("server never sniffed the gob connection")
	}
	if n := sm.WireHandshakes.Load(); n != 0 {
		t.Fatalf("server recorded %d wire handshakes from a gob client", n)
	}
	// The counting codec must still deliver per-method payload sizes.
	for _, method := range []string{"ApplyBatch", "Stats"} {
		if sm.PayloadBytes.With(method).Count() == 0 {
			t.Errorf("no payload bytes recorded for gob-served %s", method)
		}
	}
}

// TestInteropWireOnlyClientLegacyServer: ProtoWire pins the binary protocol;
// against a gob-only server the dial must fail instead of degrading.
func TestInteropWireOnlyClientLegacyServer(t *testing.T) {
	addr := startLegacyGobServer(t)
	opts := DefaultOptions()
	opts.CallTimeout = 2 * time.Second
	opts.Protocol = ProtoWire
	if c, err := Dial([]string{addr}, opts); err == nil {
		c.Close()
		t.Fatal("ProtoWire dial of a gob-only server succeeded")
	}
}

// TestInteropGobOnlyClientWireServer: ProtoGob skips the wire handshake
// entirely — the escape hatch if a wire regression ships.
func TestInteropGobOnlyClientWireServer(t *testing.T) {
	addr, sm, _ := startWireServer(t)
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.Protocol = ProtoGob
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("ProtoGob dial: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)
	if n := sm.GobFallbacks.Load(); n == 0 {
		t.Fatal("server never sniffed the forced-gob connection")
	}
}
