package cluster

import (
	"context"
	"net"
	"net/rpc"
	"testing"
	"time"

	"platod2gl/internal/graph"
)

// startWireServer runs the sniffing Server (wire + gob fallback) on a real
// TCP listener and returns its address plus the service's metrics.
func startWireServer(t *testing.T) (addr string, m *Metrics, svc *Service) {
	t.Helper()
	return startConfiguredWireServer(t, nil)
}

// startConfiguredWireServer is startWireServer with a hook to tune the
// Server (version cap, admission gate, accept limits) before it serves.
func startConfiguredWireServer(t *testing.T, configure func(*Server)) (addr string, m *Metrics, svc *Service) {
	t.Helper()
	svc = newTestService(t)
	m = &Metrics{}
	svc.SetMetrics(m)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(svc)
	if configure != nil {
		configure(srv)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String(), m, svc
}

// startLegacyGobServer runs a plain net/rpc gob server — a pre-wire binary.
// It has no sniffing: a wire hello is garbage to it and kills the conn.
func startLegacyGobServer(t *testing.T) (addr string) {
	t.Helper()
	svc := newTestService(t)
	rs := rpc.NewServer()
	if err := rs.RegisterName(ServiceName, svc); err != nil {
		t.Fatalf("register: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go rs.ServeConn(conn)
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String()
}

func testEvents(n int) []graph.Event {
	evs := make([]graph.Event, n)
	for i := range evs {
		evs[i] = graph.Event{Kind: graph.AddEdge,
			Edge: graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1000), Weight: 1}}
	}
	return evs
}

// exerciseClient pushes a batch and reads it back through sampling + stats.
func exerciseClient(t *testing.T, c *Client) {
	t.Helper()
	if err := c.ApplyBatch(testEvents(200)); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	seeds := []graph.VertexID{1, 2, 3}
	neigh, err := c.SampleNeighbors(seeds, 0, 4, 7)
	if err != nil {
		t.Fatalf("SampleNeighbors: %v", err)
	}
	if len(neigh) != len(seeds)*4 {
		t.Fatalf("SampleNeighbors returned %d ids, want %d", len(neigh), len(seeds)*4)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.NumEdges == 0 {
		t.Fatal("Stats reports zero edges after ApplyBatch")
	}
}

// TestInteropWireToWire: current client against current server negotiates
// the binary protocol, serves traffic, and records exact payload bytes.
func TestInteropWireToWire(t *testing.T) {
	addr, sm, _ := startWireServer(t)
	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.Metrics = cm
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)

	if n := cm.WireHandshakes.Load(); n == 0 {
		t.Fatal("client recorded no wire handshakes")
	}
	if n := sm.WireHandshakes.Load(); n == 0 {
		t.Fatal("server recorded no wire handshakes")
	}
	if n := cm.WireNegotiateDowns.Load(); n != 0 {
		t.Fatalf("client negotiated down %d times against a wire server", n)
	}
	if n := sm.GobFallbacks.Load(); n != 0 {
		t.Fatalf("server sniffed %d gob conns from a wire client", n)
	}
	for _, method := range []string{"Handshake", "ApplyBatch", "SampleNeighbors", "Stats"} {
		if sm.PayloadBytes.With(method).Count() == 0 {
			t.Errorf("no payload bytes recorded for %s", method)
		}
	}
	// A 200-event batch is ~20 bytes/event on the wire; the gob equivalent
	// is ~34 bytes/event plus type descriptors. Assert the wire encoding
	// actually landed in the compact range.
	snap := sm.PayloadBytes.With("ApplyBatch").Snapshot()
	if snap.Sum > 200*25 {
		t.Errorf("ApplyBatch payload %d bytes for 200 events — wire codec not in effect?", snap.Sum)
	}
}

// TestInteropAutoClientLegacyServer: a ProtoAuto client dialing a pre-wire
// gob server must negotiate down per peer and serve identically — the
// rolling-upgrade path where clients upgrade first.
func TestInteropAutoClientLegacyServer(t *testing.T) {
	addr := startLegacyGobServer(t)
	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.Metrics = cm
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("dial legacy server: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)

	if n := cm.WireNegotiateDowns.Load(); n == 0 {
		t.Fatal("client never negotiated down against a gob-only server")
	}
	if n := cm.WireHandshakes.Load(); n != 0 {
		t.Fatalf("client recorded %d wire handshakes against a gob-only server", n)
	}
}

// TestInteropLegacyClientWireServer: a pre-wire gob rpc.Client against the
// sniffing server — the rolling-upgrade path where servers upgrade first.
func TestInteropLegacyClientWireServer(t *testing.T) {
	addr, sm, _ := startWireServer(t)
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("gob dial: %v", err)
	}
	defer rc.Close()

	var br BatchReply
	if err := rc.Call(ServiceName+".ApplyBatch", &BatchArgs{Events: testEvents(50)}, &br); err != nil {
		t.Fatalf("gob ApplyBatch: %v", err)
	}
	var sr StatsReply
	if err := rc.Call(ServiceName+".Stats", &StatsArgs{}, &sr); err != nil {
		t.Fatalf("gob Stats: %v", err)
	}
	if sr.NumEdges != 50 {
		t.Fatalf("gob Stats = %d edges, want 50", sr.NumEdges)
	}
	if n := sm.GobFallbacks.Load(); n == 0 {
		t.Fatal("server never sniffed the gob connection")
	}
	if n := sm.WireHandshakes.Load(); n != 0 {
		t.Fatalf("server recorded %d wire handshakes from a gob client", n)
	}
	// The counting codec must still deliver per-method payload sizes.
	for _, method := range []string{"ApplyBatch", "Stats"} {
		if sm.PayloadBytes.With(method).Count() == 0 {
			t.Errorf("no payload bytes recorded for gob-served %s", method)
		}
	}
}

// TestInteropWireOnlyClientLegacyServer: ProtoWire pins the binary protocol;
// against a gob-only server the dial must fail instead of degrading.
func TestInteropWireOnlyClientLegacyServer(t *testing.T) {
	addr := startLegacyGobServer(t)
	opts := DefaultOptions()
	opts.CallTimeout = 2 * time.Second
	opts.Protocol = ProtoWire
	if c, err := Dial([]string{addr}, opts); err == nil {
		c.Close()
		t.Fatal("ProtoWire dial of a gob-only server succeeded")
	}
}

// exerciseClientWithEnvelope drives the calls that would carry a v2 request
// envelope — a deadline-bearing context and an explicit priority tag — and
// requires them to succeed. Against a v1 peer the envelope must be
// suppressed, not sent-and-rejected.
func exerciseClientWithEnvelope(t *testing.T, c *Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.ApplyBatchCtx(WithPriority(ctx, PriorityPrefetch), testEvents(100)); err != nil {
		t.Fatalf("ApplyBatchCtx with budget+priority: %v", err)
	}
	if _, err := c.SampleNeighborsCtx(ctx, []graph.VertexID{1, 2}, 0, 4, 7); err != nil {
		t.Fatalf("SampleNeighborsCtx with budget: %v", err)
	}
	bg := WithPriority(context.Background(), PriorityBackground)
	if _, err := c.StatsCtx(bg); err != nil {
		t.Fatalf("StatsCtx with background priority: %v", err)
	}
}

// TestInteropV2ClientV1Server: a current client against a server pinned to
// protocol version 1 (the rollback lever) negotiates down to v1 and must
// suppress the request envelope — deadline- and priority-tagged calls still
// succeed, with the metadata simply not propagated.
func TestInteropV2ClientV1Server(t *testing.T) {
	addr, sm, _ := startConfiguredWireServer(t, func(s *Server) { s.SetMaxWireVersion(1) })
	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.Metrics = cm
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("dial v1-capped server: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)
	exerciseClientWithEnvelope(t, c)
	if n := sm.WireHandshakes.Load(); n == 0 {
		t.Fatal("server recorded no wire handshakes")
	}
	if n := sm.GobFallbacks.Load(); n != 0 {
		t.Fatalf("server sniffed %d gob conns — version cap must not force gob", n)
	}
}

// TestInteropV1ClientV2Server: a client capped at version 1 (an old binary)
// against a current server — the other rolling-upgrade direction. The
// client never emits envelope frames; the server classifies by method
// default and serves identically.
func TestInteropV1ClientV2Server(t *testing.T) {
	addr, sm, _ := startWireServer(t)
	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.MaxWireVersion = 1
	opts.Metrics = cm
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("v1-capped dial: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)
	exerciseClientWithEnvelope(t, c)
	if n := sm.WireHandshakes.Load(); n == 0 {
		t.Fatal("server recorded no wire handshakes")
	}
}

// TestServerMaxConns: connections past ServerLimits.MaxConns are refused
// immediately — the accept loop must not spawn a goroutine per flood conn.
func TestServerMaxConns(t *testing.T) {
	addr, sm, _ := startConfiguredWireServer(t, func(s *Server) {
		s.SetLimits(ServerLimits{MaxConns: 1})
	})
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	// Pin the one allowed connection with real traffic.
	if err := c.ApplyBatch(testEvents(10)); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	// A second raw connection must be closed by the server without service.
	deadline := time.Now().Add(10 * time.Second)
	rejected := false
	for time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			rejected = true
			break
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, rerr := conn.Read(buf); rerr != nil {
			// Immediate EOF/reset: the server refused us before any protocol.
			conn.Close()
			rejected = true
			break
		}
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !rejected {
		t.Fatal("second connection was served despite MaxConns=1")
	}
	if n := sm.ConnectionsRejected.Load(); n == 0 {
		t.Fatal("ConnectionsRejected counter never incremented")
	}
}

// TestServerHandshakeTimeout: a connection that opens and goes silent is
// closed once HandshakeTimeout elapses instead of pinning a handshake token
// forever.
func TestServerHandshakeTimeout(t *testing.T) {
	addr, _, _ := startConfiguredWireServer(t, func(s *Server) {
		s.SetLimits(ServerLimits{HandshakeTimeout: 50 * time.Millisecond})
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Send nothing. The server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("silent connection was served past the handshake timeout")
	}
}

// TestInteropGobOnlyClientWireServer: ProtoGob skips the wire handshake
// entirely — the escape hatch if a wire regression ships.
func TestInteropGobOnlyClientWireServer(t *testing.T) {
	addr, sm, _ := startWireServer(t)
	opts := DefaultOptions()
	opts.CallTimeout = 5 * time.Second
	opts.Protocol = ProtoGob
	c, err := Dial([]string{addr}, opts)
	if err != nil {
		t.Fatalf("ProtoGob dial: %v", err)
	}
	defer c.Close()
	exerciseClient(t, c)
	if n := sm.GobFallbacks.Load(); n == 0 {
		t.Fatal("server never sniffed the forced-gob connection")
	}
}
