// Fault-tolerance and RPC observability for the cluster tier, built on the
// unified internal/obs primitives: counters for the retry/breaker/failover
// machinery and the replica catch-up path, plus per-method latency and
// payload-size histograms on both sides of every RPC. Counters and histogram
// observations are cheap atomics on the hot path; a Metrics value may be
// shared between a client and a service (the server binary does exactly
// that) so one endpoint reports both sides.
package cluster

import (
	"expvar"
	"fmt"
	"sync/atomic"
	"time"

	"platod2gl/internal/obs"
)

// rpcMethods is the full RPC surface, used to pre-seed the per-method
// histogram families so a scrape sees every series from the first request.
// "Handshake" is the wire-protocol version negotiation (see transport.go),
// which has client latency and a fixed 16-byte payload but no server handler.
var rpcMethods = []string{
	"ApplyBatch", "SampleNeighbors", "Degree", "Features", "SetFeatures",
	"Sources", "Stats", "FetchSnapshot", "FetchWALTail", "SyncState",
	"Routing", "UpdateRouting", "FetchShardSnapshot", "FetchShardFeatures",
	"ParkShard", "ReleaseShard", "DropShard", "PullShard",
	"ShardDigest", "Scrub", "FetchAttrs", "Handshake",
}

// Metrics aggregates fault-tolerance counters and RPC histograms. The zero
// value is ready to use; all methods are safe on a nil receiver so metrics
// stay optional on every path.
type Metrics struct {
	// Client call path.
	RPCAttempts  obs.Counter // network attempts (including retries)
	RPCTimeouts  obs.Counter // attempts that hit Options.CallTimeout
	RPCRetries   obs.Counter // attempts beyond the first for one call
	BreakerOpens obs.Counter // circuit-breaker closed->open transitions

	// Replica read/write fan-out.
	ReadFailovers obs.Counter // reads that moved on past a failed replica
	StaleMarks    obs.Counter // replicas marked stale after a missed write

	// Sampling-payload coalescing: duplicate seeds deduplicated out of
	// SampleNeighbors/SampleSubgraph fan-outs (multi-hop frontiers repeat
	// vertices heavily) and the approximate wire bytes that saved.
	CoalescedSeeds obs.Counter // duplicate seeds removed from payloads
	CoalescedBytes obs.Counter // request+reply bytes saved by coalescing

	// Catch-up (both directions: served by a live peer, pulled by a
	// rejoining replica).
	CatchUps          obs.Counter // completed SyncFromPeer runs
	CatchUpBytes      obs.Counter // snapshot bytes pulled during catch-up
	CatchUpBatches    obs.Counter // WAL-tail batches applied during catch-up
	SnapshotsServed   obs.Counter // FetchSnapshot calls answered
	TailBatchesServed obs.Counter // WAL-tail batches streamed to replicas

	// Routing and live shard migration (see shardmap.go, migrate.go).
	Reroutes         obs.Counter // operations re-routed after a NotOwner bounce
	RoutingRefreshes obs.Counter // shard-map refreshes that advanced the epoch
	NotOwnerRejects  obs.Counter // routed requests rejected for wrong ownership
	ShardsMigrated   obs.Counter // shard migrations completed through cutover
	MigrationBytes   obs.Counter // snapshot+feature bytes copied by migrations
	MigrationBatches obs.Counter // WAL-tail batches replayed by migrations
	MigrationAborts  obs.Counter // migrations aborted (or failed) before cutover
	CutoverNanos     obs.Counter // cumulative park-to-routing-flip time, ns

	// Anti-entropy (see antientropy.go): periodic digest comparison across
	// replica groups, on-disk CRC verification, and divergence repair.
	ScrubRounds        obs.Counter // completed scrub rounds
	DigestMismatches   obs.Counter // replica digest comparisons that disagreed
	CorruptionDetected obs.Counter // payload-checksum or on-disk CRC failures
	RepairsTriggered   obs.Counter // SyncFromPeer repairs launched by the scrubber
	RepairBytes        obs.Counter // snapshot+attr bytes pulled by repairs

	// Wire-protocol negotiation (see transport.go, dispatch.go).
	WireHandshakes     obs.Counter // successful binary-protocol handshakes (both sides)
	GobFallbacks       obs.Counter // server connections sniffed as legacy gob
	WireNegotiateDowns obs.Counter // client dials downgraded to gob after a refused hello

	// Overload protection (see admission.go). Server side: shed requests by
	// method and priority, budget fast-rejects, refused connections, queue
	// depth and wait per priority class. Client side: shed responses seen,
	// adaptive-limit saturations, calls fast-failed on an exhausted budget,
	// and the current AIMD limit (most recent peer to change it).
	RequestsShed        obs.CounterVec   // key "method|priority"
	DeadlineExpired     obs.Counter      // requests fast-rejected: budget < observed service time
	ConnectionsRejected obs.Counter      // connections refused at the accept-side caps
	AdmissionQueueDepth [3]obs.Gauge     // queued requests, indexed by Priority
	AdmissionWait       obs.HistogramVec // admission queue wait, ns, label = priority
	ShedSeen            obs.Counter      // shed responses observed by the client
	ClientSaturations   obs.Counter      // calls that hit the client-side adaptive limit
	BudgetExhausted     obs.Counter      // calls fast-failed client-side, deadline spent
	AdaptiveLimitMilli  obs.Gauge        // current per-peer AIMD limit ×1000

	// Per-method histograms. Client latency covers one network attempt
	// (dial + call, excluding backoff sleeps); server latency covers one
	// handler execution; payload bytes are the exact framed request+reply
	// wire size per served call (transport-recorded; gob connections count
	// codec bytes through a counting ServerCodec).
	ClientLatency obs.HistogramVec // nanoseconds, label = method
	ServerLatency obs.HistogramVec // nanoseconds, label = method
	PayloadBytes  obs.HistogramVec // bytes, label = method

	// ScrubLatency tracks whole scrub-round duration (digest fetches +
	// disk verification, excluding any repair it triggers), nanoseconds.
	ScrubLatency obs.Histogram

	// encInflight counts gob-encoder goroutines that may still be reading a
	// call's args after the caller's deadline fired. Pooled-scratch callers
	// consult encBusy before recycling buffers an abandoned encoder could
	// still see. The wire transport encodes synchronously and never
	// contributes here.
	encInflight atomic.Int64
}

// MetricsSnapshot is a plain-value copy of the counters for printing and
// JSON encoding.
type MetricsSnapshot struct {
	RPCAttempts        int64
	RPCTimeouts        int64
	RPCRetries         int64
	BreakerOpens       int64
	ReadFailovers      int64
	StaleMarks         int64
	CoalescedSeeds     int64
	CoalescedBytes     int64
	CatchUps           int64
	CatchUpBytes       int64
	CatchUpBatches     int64
	SnapshotsServed    int64
	TailBatchesServed  int64
	Reroutes           int64
	RoutingRefreshes   int64
	NotOwnerRejects    int64
	ShardsMigrated     int64
	MigrationBytes     int64
	MigrationBatches   int64
	MigrationAborts    int64
	CutoverNanos       int64
	ScrubRounds        int64
	DigestMismatches   int64
	CorruptionDetected int64
	RepairsTriggered   int64
	RepairBytes        int64
	WireHandshakes     int64
	GobFallbacks       int64
	WireNegotiateDowns int64
	RequestsShed       int64
	DeadlineExpired    int64
	ConnsRejected      int64
	ShedSeen           int64
	ClientSaturations  int64
	BudgetExhausted    int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		RPCAttempts:        m.RPCAttempts.Load(),
		RPCTimeouts:        m.RPCTimeouts.Load(),
		RPCRetries:         m.RPCRetries.Load(),
		BreakerOpens:       m.BreakerOpens.Load(),
		ReadFailovers:      m.ReadFailovers.Load(),
		StaleMarks:         m.StaleMarks.Load(),
		CoalescedSeeds:     m.CoalescedSeeds.Load(),
		CoalescedBytes:     m.CoalescedBytes.Load(),
		CatchUps:           m.CatchUps.Load(),
		CatchUpBytes:       m.CatchUpBytes.Load(),
		CatchUpBatches:     m.CatchUpBatches.Load(),
		SnapshotsServed:    m.SnapshotsServed.Load(),
		TailBatchesServed:  m.TailBatchesServed.Load(),
		Reroutes:           m.Reroutes.Load(),
		RoutingRefreshes:   m.RoutingRefreshes.Load(),
		NotOwnerRejects:    m.NotOwnerRejects.Load(),
		ShardsMigrated:     m.ShardsMigrated.Load(),
		MigrationBytes:     m.MigrationBytes.Load(),
		MigrationBatches:   m.MigrationBatches.Load(),
		MigrationAborts:    m.MigrationAborts.Load(),
		CutoverNanos:       m.CutoverNanos.Load(),
		ScrubRounds:        m.ScrubRounds.Load(),
		DigestMismatches:   m.DigestMismatches.Load(),
		CorruptionDetected: m.CorruptionDetected.Load(),
		RepairsTriggered:   m.RepairsTriggered.Load(),
		RepairBytes:        m.RepairBytes.Load(),
		WireHandshakes:     m.WireHandshakes.Load(),
		GobFallbacks:       m.GobFallbacks.Load(),
		WireNegotiateDowns: m.WireNegotiateDowns.Load(),
		RequestsShed:       m.RequestsShed.Sum(),
		DeadlineExpired:    m.DeadlineExpired.Load(),
		ConnsRejected:      m.ConnectionsRejected.Load(),
		ShedSeen:           m.ShedSeen.Load(),
		ClientSaturations:  m.ClientSaturations.Load(),
		BudgetExhausted:    m.BudgetExhausted.Load(),
	}
}

// String renders the snapshot compactly for loadgen summaries and logs.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"attempts=%d timeouts=%d retries=%d breaker_opens=%d failovers=%d stale_marks=%d coalesced_seeds=%d coalesced_bytes=%d catchups=%d catchup_bytes=%d catchup_batches=%d "+
			"reroutes=%d routing_refreshes=%d not_owner_rejects=%d shards_migrated=%d migration_bytes=%d migration_batches=%d migration_aborts=%d cutover_ms=%d "+
			"scrub_rounds=%d digest_mismatches=%d corruption_detected=%d repairs_triggered=%d repair_bytes=%d "+
			"wire_handshakes=%d gob_fallbacks=%d wire_negotiate_downs=%d "+
			"shed=%d deadline_expired=%d conns_rejected=%d shed_seen=%d client_saturations=%d budget_exhausted=%d",
		s.RPCAttempts, s.RPCTimeouts, s.RPCRetries, s.BreakerOpens,
		s.ReadFailovers, s.StaleMarks, s.CoalescedSeeds, s.CoalescedBytes,
		s.CatchUps, s.CatchUpBytes, s.CatchUpBatches,
		s.Reroutes, s.RoutingRefreshes, s.NotOwnerRejects, s.ShardsMigrated,
		s.MigrationBytes, s.MigrationBatches, s.MigrationAborts,
		s.CutoverNanos/int64(time.Millisecond),
		s.ScrubRounds, s.DigestMismatches, s.CorruptionDetected,
		s.RepairsTriggered, s.RepairBytes,
		s.WireHandshakes, s.GobFallbacks, s.WireNegotiateDowns,
		s.RequestsShed, s.DeadlineExpired, s.ConnsRejected,
		s.ShedSeen, s.ClientSaturations, s.BudgetExhausted)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object, for
// expvar.Publish under the server's or loadgen's chosen name. (Histograms
// are exposed through Register + the obs registry's /metrics endpoint.)
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Register attaches every counter and histogram to r under the stable
// platod2gl_cluster_* names documented in docs/OPERATIONS.md. The per-method
// histogram families are pre-seeded with the full RPC surface so /metrics
// exposes every series from the first scrape.
func (m *Metrics) Register(r *obs.Registry) {
	if m == nil {
		return
	}
	for _, c := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"platod2gl_cluster_rpc_attempts_total", "Client RPC network attempts, including retries.", &m.RPCAttempts},
		{"platod2gl_cluster_rpc_timeouts_total", "Client RPC attempts that hit the per-call timeout.", &m.RPCTimeouts},
		{"platod2gl_cluster_rpc_retries_total", "Client RPC attempts beyond the first for one call.", &m.RPCRetries},
		{"platod2gl_cluster_breaker_opens_total", "Circuit-breaker closed-to-open transitions.", &m.BreakerOpens},
		{"platod2gl_cluster_read_failovers_total", "Reads that moved past a failed replica.", &m.ReadFailovers},
		{"platod2gl_cluster_stale_marks_total", "Replicas marked stale after a missed write.", &m.StaleMarks},
		{"platod2gl_cluster_coalesced_seeds_total", "Duplicate seeds removed from sampling payloads.", &m.CoalescedSeeds},
		{"platod2gl_cluster_coalesced_bytes_total", "Approximate wire bytes saved by seed coalescing.", &m.CoalescedBytes},
		{"platod2gl_cluster_catchups_total", "Completed SyncFromPeer catch-up runs.", &m.CatchUps},
		{"platod2gl_cluster_catchup_bytes_total", "Snapshot bytes pulled during catch-up.", &m.CatchUpBytes},
		{"platod2gl_cluster_catchup_batches_total", "WAL-tail batches applied during catch-up.", &m.CatchUpBatches},
		{"platod2gl_cluster_snapshots_served_total", "FetchSnapshot calls answered for rejoining replicas.", &m.SnapshotsServed},
		{"platod2gl_cluster_tail_batches_served_total", "WAL-tail batches streamed to rejoining replicas.", &m.TailBatchesServed},
		{"platod2gl_cluster_reroutes_total", "Operations re-routed after a NotOwner bounce.", &m.Reroutes},
		{"platod2gl_cluster_routing_refreshes_total", "Shard-map refreshes that advanced the client's epoch.", &m.RoutingRefreshes},
		{"platod2gl_cluster_not_owner_rejects_total", "Routed requests rejected for wrong shard ownership.", &m.NotOwnerRejects},
		{"platod2gl_cluster_shards_migrated_total", "Shard migrations completed through cutover.", &m.ShardsMigrated},
		{"platod2gl_cluster_migration_bytes_total", "Snapshot and feature bytes copied by shard migrations.", &m.MigrationBytes},
		{"platod2gl_cluster_migration_batches_total", "WAL-tail batches replayed by shard migrations.", &m.MigrationBatches},
		{"platod2gl_cluster_migration_aborts_total", "Shard migrations aborted or failed before cutover.", &m.MigrationAborts},
		{"platod2gl_cluster_cutover_nanoseconds_total", "Cumulative shard-cutover (park to routing flip) time.", &m.CutoverNanos},
		{"platod2gl_cluster_scrub_rounds_total", "Completed anti-entropy scrub rounds.", &m.ScrubRounds},
		{"platod2gl_cluster_digest_mismatches_total", "Replica digest comparisons that disagreed.", &m.DigestMismatches},
		{"platod2gl_cluster_corruption_detected_total", "Payload-checksum and on-disk CRC failures detected.", &m.CorruptionDetected},
		{"platod2gl_cluster_repairs_triggered_total", "Replica repairs launched by the scrubber.", &m.RepairsTriggered},
		{"platod2gl_cluster_repair_bytes_total", "Snapshot and attribute bytes pulled by repairs.", &m.RepairBytes},
		{"platod2gl_cluster_wire_handshakes_total", "Successful binary wire-protocol handshakes.", &m.WireHandshakes},
		{"platod2gl_cluster_gob_fallbacks_total", "Server connections served as legacy net/rpc gob.", &m.GobFallbacks},
		{"platod2gl_cluster_wire_negotiate_downs_total", "Client dials downgraded from wire to gob.", &m.WireNegotiateDowns},
		{"platod2gl_cluster_deadline_expired_total", "Requests fast-rejected because the propagated budget was below observed service time.", &m.DeadlineExpired},
		{"platod2gl_cluster_connections_rejected_total", "Connections refused at the server's accept-side caps.", &m.ConnectionsRejected},
		{"platod2gl_cluster_shed_seen_total", "Shed responses observed by the client.", &m.ShedSeen},
		{"platod2gl_cluster_client_saturations_total", "Calls that hit the client-side adaptive concurrency limit.", &m.ClientSaturations},
		{"platod2gl_cluster_budget_exhausted_total", "Calls fast-failed client-side because the caller's deadline budget was spent.", &m.BudgetExhausted},
	} {
		r.RegisterCounter(c.name, c.help, nil, c.c)
	}
	for _, meth := range rpcMethods {
		m.ClientLatency.With(meth)
		m.ServerLatency.With(meth)
		m.PayloadBytes.With(meth)
		for _, pri := range priorityNames {
			m.RequestsShed.With(meth + "|" + pri)
		}
	}
	for _, pri := range priorityNames {
		m.AdmissionWait.With(pri)
	}
	r.RegisterCounterVec2("platod2gl_cluster_requests_shed_total",
		"Requests shed by the server's admission gate.", "method", "priority", &m.RequestsShed)
	r.RegisterHistogramVec("platod2gl_cluster_admission_wait_seconds",
		"Time requests spent queued at the admission gate.", "priority", 1e-9, &m.AdmissionWait)
	for i, pri := range priorityNames {
		r.RegisterGauge("platod2gl_cluster_admission_queue_depth",
			"Requests queued at the admission gate.", obs.Labels{"priority": pri}, &m.AdmissionQueueDepth[i])
	}
	r.GaugeFunc("platod2gl_cluster_adaptive_limit",
		"Client-side AIMD concurrency limit (most recent peer to change it).", nil,
		func() float64 { return float64(m.AdaptiveLimitMilli.Load()) / 1000 })
	r.RegisterHistogramVec("platod2gl_cluster_rpc_client_latency_seconds",
		"Per-attempt client-side RPC latency.", "method", 1e-9, &m.ClientLatency)
	r.RegisterHistogramVec("platod2gl_cluster_rpc_server_latency_seconds",
		"Server-side RPC handler latency.", "method", 1e-9, &m.ServerLatency)
	r.RegisterHistogramVec("platod2gl_cluster_rpc_payload_bytes",
		"Exact framed request+reply wire bytes per served RPC.", "method", 1, &m.PayloadBytes)
	r.RegisterHistogram("platod2gl_cluster_scrub_latency_seconds",
		"Whole scrub-round duration, excluding triggered repairs.", nil, 1e-9, &m.ScrubLatency)
}

// Nil-tolerant increment helpers keep call sites unconditional about
// whether metrics were configured.
func (m *Metrics) incAttempt() {
	if m != nil {
		m.RPCAttempts.Add(1)
	}
}

func (m *Metrics) incTimeout() {
	if m != nil {
		m.RPCTimeouts.Add(1)
	}
}

func (m *Metrics) incRetry() {
	if m != nil {
		m.RPCRetries.Add(1)
	}
}

func (m *Metrics) incBreakerOpen() {
	if m != nil {
		m.BreakerOpens.Add(1)
	}
}

func (m *Metrics) incFailover() {
	if m != nil {
		m.ReadFailovers.Add(1)
	}
}

func (m *Metrics) incStaleMark() {
	if m != nil {
		m.StaleMarks.Add(1)
	}
}

func (m *Metrics) addCoalesced(seeds, bytes int64) {
	if m != nil {
		m.CoalescedSeeds.Add(seeds)
		m.CoalescedBytes.Add(bytes)
	}
}

func (m *Metrics) incCatchUp() {
	if m != nil {
		m.CatchUps.Add(1)
	}
}

func (m *Metrics) addCatchUpBytes(n int64) {
	if m != nil {
		m.CatchUpBytes.Add(n)
	}
}

func (m *Metrics) addCatchUpBatches(n int64) {
	if m != nil {
		m.CatchUpBatches.Add(n)
	}
}

func (m *Metrics) incSnapshotServed() {
	if m != nil {
		m.SnapshotsServed.Add(1)
	}
}

func (m *Metrics) addTailServed(n int64) {
	if m != nil {
		m.TailBatchesServed.Add(n)
	}
}

func (m *Metrics) incReroute() {
	if m != nil {
		m.Reroutes.Add(1)
	}
}

func (m *Metrics) incRoutingRefresh() {
	if m != nil {
		m.RoutingRefreshes.Add(1)
	}
}

func (m *Metrics) incNotOwnerReject() {
	if m != nil {
		m.NotOwnerRejects.Add(1)
	}
}

func (m *Metrics) incShardMigrated() {
	if m != nil {
		m.ShardsMigrated.Add(1)
	}
}

func (m *Metrics) addMigrationBytes(n int64) {
	if m != nil {
		m.MigrationBytes.Add(n)
	}
}

func (m *Metrics) addMigrationBatches(n int64) {
	if m != nil {
		m.MigrationBatches.Add(n)
	}
}

func (m *Metrics) incMigrationAbort() {
	if m != nil {
		m.MigrationAborts.Add(1)
	}
}

func (m *Metrics) addCutover(d time.Duration) {
	if m != nil {
		m.CutoverNanos.Add(int64(d))
	}
}

func (m *Metrics) incScrubRound() {
	if m != nil {
		m.ScrubRounds.Add(1)
	}
}

func (m *Metrics) incDigestMismatch() {
	if m != nil {
		m.DigestMismatches.Add(1)
	}
}

func (m *Metrics) incCorruptionDetected() {
	if m != nil {
		m.CorruptionDetected.Add(1)
	}
}

func (m *Metrics) incRepairTriggered() {
	if m != nil {
		m.RepairsTriggered.Add(1)
	}
}

func (m *Metrics) addRepairBytes(n int64) {
	if m != nil {
		m.RepairBytes.Add(n)
	}
}

// observeScrub records one completed scrub round's duration.
func (m *Metrics) observeScrub(start time.Time) {
	if m != nil {
		m.ScrubLatency.ObserveSince(start)
	}
}

// observeClientCall records one client-side network attempt's latency.
// method carries the ServiceName prefix ("PlatoD2GL.ApplyBatch").
func (m *Metrics) observeClientCall(method string, start time.Time) {
	if m != nil {
		m.ClientLatency.With(shortMethod(method)).ObserveSince(start)
	}
}

// observeServed records one served RPC handler's latency. Payload bytes are
// recorded separately by the transport (observePayload), which sees the
// exact framed wire size; the handler does not.
func (m *Metrics) observeServed(method string, start time.Time) {
	if m != nil {
		m.ServerLatency.With(method).ObserveSince(start)
	}
}

// observePayload records the exact request+reply wire bytes of one served
// RPC: frame prefixes + kind + method id + payload for wire connections,
// codec-counted bytes for gob connections.
func (m *Metrics) observePayload(method string, bytes int64) {
	if m != nil {
		m.PayloadBytes.With(method).Observe(bytes)
	}
}

func (m *Metrics) incWireHandshake() {
	if m != nil {
		m.WireHandshakes.Add(1)
	}
}

func (m *Metrics) incGobFallback() {
	if m != nil {
		m.GobFallbacks.Add(1)
	}
}

func (m *Metrics) incNegotiateDown() {
	if m != nil {
		m.WireNegotiateDowns.Add(1)
	}
}

func (m *Metrics) incShed(method string, pri Priority) {
	if m != nil {
		m.RequestsShed.With(method + "|" + pri.String()).Add(1)
	}
}

func (m *Metrics) incDeadlineExpired() {
	if m != nil {
		m.DeadlineExpired.Add(1)
	}
}

func (m *Metrics) incConnRejected() {
	if m != nil {
		m.ConnectionsRejected.Add(1)
	}
}

func (m *Metrics) setQueueDepth(pri Priority, n int64) {
	if m != nil && int(pri) < len(m.AdmissionQueueDepth) {
		m.AdmissionQueueDepth[pri].Set(n)
	}
}

func (m *Metrics) observeAdmissionWait(pri Priority, d time.Duration) {
	if m != nil {
		m.AdmissionWait.With(pri.String()).Observe(int64(d))
	}
}

func (m *Metrics) incShedSeen() {
	if m != nil {
		m.ShedSeen.Add(1)
	}
}

func (m *Metrics) incClientSaturation() {
	if m != nil {
		m.ClientSaturations.Add(1)
	}
}

func (m *Metrics) incBudgetExhausted() {
	if m != nil {
		m.BudgetExhausted.Add(1)
	}
}

func (m *Metrics) setAdaptiveLimit(limit float64) {
	if m != nil {
		m.AdaptiveLimitMilli.Set(int64(limit * 1000))
	}
}

// encAdd adjusts the gob-encoder inflight count (see Metrics.encInflight).
func (m *Metrics) encAdd(d int64) {
	if m != nil {
		m.encInflight.Add(d)
	}
}

// encBusy reports whether an abandoned gob encoder goroutine may still be
// reading some call's args. A nil Metrics cannot track encoders, so it
// conservatively reports busy — pooled scratch is then never recycled.
func (m *Metrics) encBusy() bool {
	return m == nil || m.encInflight.Load() != 0
}

// shortMethod strips the RPC receiver prefix: "PlatoD2GL.Stats" -> "Stats".
func shortMethod(method string) string {
	for i := len(method) - 1; i >= 0; i-- {
		if method[i] == '.' {
			return method[i+1:]
		}
	}
	return method
}

// Approximate wire sizes of the variable-length payload components, used
// only for byte *accounting* counters (coalescing savings, migration and
// repair byte totals) — the rpc_payload_bytes histogram records exact framed
// sizes from the transport instead.
const (
	approxVertexIDBytes = 8
	approxEventBytes    = 34 // kind + src + dst + type + weight + timestamp
	approxFloat32Bytes  = 4
	approxLabelBytes    = 4
)

func approxIDs(n int) int64    { return int64(n) * approxVertexIDBytes }
func approxEvents(n int) int64 { return int64(n) * approxEventBytes }
func approxFloats(n int) int64 { return int64(n) * approxFloat32Bytes }
func approxLabels(n int) int64 { return int64(n) * approxLabelBytes }
