// Fault-tolerance observability: counters for the retry/breaker/failover
// machinery and the replica catch-up path, exposed in a form expvar can
// publish (the server's -metrics-addr endpoint) and the loadgen can print.
// Counters are cheap atomics on the hot path; a Metrics value may be shared
// between a client and a service (the server binary does exactly that) so
// one endpoint reports both sides.
package cluster

import (
	"expvar"
	"fmt"
	"sync/atomic"
)

// Metrics aggregates fault-tolerance counters. The zero value is ready to
// use; all methods are safe on a nil receiver so metrics stay optional on
// every path.
type Metrics struct {
	// Client call path.
	RPCAttempts  atomic.Int64 // network attempts (including retries)
	RPCTimeouts  atomic.Int64 // attempts that hit Options.CallTimeout
	RPCRetries   atomic.Int64 // attempts beyond the first for one call
	BreakerOpens atomic.Int64 // circuit-breaker closed->open transitions

	// Replica read/write fan-out.
	ReadFailovers atomic.Int64 // reads that moved on past a failed replica
	StaleMarks    atomic.Int64 // replicas marked stale after a missed write

	// Sampling-payload coalescing: duplicate seeds deduplicated out of
	// SampleNeighbors/SampleSubgraph fan-outs (multi-hop frontiers repeat
	// vertices heavily) and the approximate wire bytes that saved.
	CoalescedSeeds atomic.Int64 // duplicate seeds removed from payloads
	CoalescedBytes atomic.Int64 // request+reply bytes saved by coalescing

	// Catch-up (both directions: served by a live peer, pulled by a
	// rejoining replica).
	CatchUps         atomic.Int64 // completed SyncFromPeer runs
	CatchUpBytes     atomic.Int64 // snapshot bytes pulled during catch-up
	CatchUpBatches   atomic.Int64 // WAL-tail batches applied during catch-up
	SnapshotsServed  atomic.Int64 // FetchSnapshot calls answered
	TailBatchesServed atomic.Int64 // WAL-tail batches streamed to replicas
}

// MetricsSnapshot is a plain-value copy for printing and JSON encoding.
type MetricsSnapshot struct {
	RPCAttempts       int64
	RPCTimeouts       int64
	RPCRetries        int64
	BreakerOpens      int64
	ReadFailovers     int64
	StaleMarks        int64
	CoalescedSeeds    int64
	CoalescedBytes    int64
	CatchUps          int64
	CatchUpBytes      int64
	CatchUpBatches    int64
	SnapshotsServed   int64
	TailBatchesServed int64
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		RPCAttempts:       m.RPCAttempts.Load(),
		RPCTimeouts:       m.RPCTimeouts.Load(),
		RPCRetries:        m.RPCRetries.Load(),
		BreakerOpens:      m.BreakerOpens.Load(),
		ReadFailovers:     m.ReadFailovers.Load(),
		StaleMarks:        m.StaleMarks.Load(),
		CoalescedSeeds:    m.CoalescedSeeds.Load(),
		CoalescedBytes:    m.CoalescedBytes.Load(),
		CatchUps:          m.CatchUps.Load(),
		CatchUpBytes:      m.CatchUpBytes.Load(),
		CatchUpBatches:    m.CatchUpBatches.Load(),
		SnapshotsServed:   m.SnapshotsServed.Load(),
		TailBatchesServed: m.TailBatchesServed.Load(),
	}
}

// String renders the snapshot compactly for loadgen summaries and logs.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"attempts=%d timeouts=%d retries=%d breaker_opens=%d failovers=%d stale_marks=%d coalesced_seeds=%d coalesced_bytes=%d catchups=%d catchup_bytes=%d catchup_batches=%d",
		s.RPCAttempts, s.RPCTimeouts, s.RPCRetries, s.BreakerOpens,
		s.ReadFailovers, s.StaleMarks, s.CoalescedSeeds, s.CoalescedBytes,
		s.CatchUps, s.CatchUpBytes, s.CatchUpBatches)
}

// Expvar returns an expvar.Var rendering the counters as a JSON object, for
// expvar.Publish under the server's or loadgen's chosen name.
func (m *Metrics) Expvar() expvar.Var {
	return expvar.Func(func() any { return m.Snapshot() })
}

// Nil-tolerant increment helpers keep call sites unconditional about
// whether metrics were configured.
func (m *Metrics) incAttempt() {
	if m != nil {
		m.RPCAttempts.Add(1)
	}
}

func (m *Metrics) incTimeout() {
	if m != nil {
		m.RPCTimeouts.Add(1)
	}
}

func (m *Metrics) incRetry() {
	if m != nil {
		m.RPCRetries.Add(1)
	}
}

func (m *Metrics) incBreakerOpen() {
	if m != nil {
		m.BreakerOpens.Add(1)
	}
}

func (m *Metrics) incFailover() {
	if m != nil {
		m.ReadFailovers.Add(1)
	}
}

func (m *Metrics) incStaleMark() {
	if m != nil {
		m.StaleMarks.Add(1)
	}
}

func (m *Metrics) addCoalesced(seeds, bytes int64) {
	if m != nil {
		m.CoalescedSeeds.Add(seeds)
		m.CoalescedBytes.Add(bytes)
	}
}

func (m *Metrics) incCatchUp() {
	if m != nil {
		m.CatchUps.Add(1)
	}
}

func (m *Metrics) addCatchUpBytes(n int64) {
	if m != nil {
		m.CatchUpBytes.Add(n)
	}
}

func (m *Metrics) addCatchUpBatches(n int64) {
	if m != nil {
		m.CatchUpBatches.Add(n)
	}
}

func (m *Metrics) incSnapshotServed() {
	if m != nil {
		m.SnapshotsServed.Add(1)
	}
}

func (m *Metrics) addTailServed(n int64) {
	if m != nil {
		m.TailBatchesServed.Add(n)
	}
}
