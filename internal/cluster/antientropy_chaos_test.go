// Anti-entropy chaos suite: the scrubber against the two silent-divergence
// scenarios nothing on the request path catches. (1) An asymmetric network
// partition blackholes one replica's inbound writes while the group keeps
// accepting on single acks; after the partition heals, one scrub round must
// flag the lagging replica as diverged (and only that replica — its
// advanced sibling must classify the mismatch as the peer's problem and
// hold state), auto-repair it from the healthy peer, and converge it
// byte-identically to the oracle, features included. (2) On-disk rot: a bit
// flipped in a snapshot's body or a WAL frame must be caught by the
// scrubber's CRC pass, repaired from a peer, and the durable files
// rewritten clean via the PostRepair hook.
package cluster

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/faultinject"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// antiEntropyHarness is the shared fixture for the scrub chaos tests: one
// logical shard replicated on two servers, each with an on-disk WAL, plus a
// whole-graph oracle (topology and attributes) fed the same traffic.
type antiEntropyHarness struct {
	lc          *LocalCluster
	metrics     *Metrics
	stores      []*storage.DynamicStore
	attrsStores []*kvstore.Store
	wals        []*eventlog.Writer
	walPath     func(i int) string
	snapPath    func(i int) string
	oracle      *storage.DynamicStore
	oracleAttrs *kvstore.Store
	gen         *dataset.Generator
}

func newAntiEntropyHarness(t *testing.T, wrap func(shard int, c net.Conn) net.Conn) *antiEntropyHarness {
	t.Helper()
	const peers = 2
	dir := t.TempDir()
	h := &antiEntropyHarness{
		metrics:     &Metrics{},
		stores:      make([]*storage.DynamicStore, peers),
		attrsStores: make([]*kvstore.Store, peers),
		wals:        make([]*eventlog.Writer, peers),
		walPath:     func(i int) string { return filepath.Join(dir, fmt.Sprintf("peer%d.wal", i)) },
		snapPath:    func(i int) string { return filepath.Join(dir, fmt.Sprintf("peer%d.snap", i)) },
		oracle:      storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}}),
		oracleAttrs: kvstore.New(),
		gen:         dataset.NewGenerator(dataset.OGBNSim().Scale(2e-5), dataset.DynamicMix, 13),
	}
	factory := func(i int) *Service {
		store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
		attrs := kvstore.New()
		svc := NewService(store, attrs)
		svc.SetMetrics(h.metrics)
		w, err := eventlog.Create(h.walPath(i))
		if err != nil {
			t.Fatalf("peer %d wal: %v", i, err)
		}
		svc.SetBatchHook(func(clientID, seq uint64, events []graph.Event) error {
			_, err := w.AppendBatch(clientID, seq, events)
			return err
		})
		svc.EnableSync(w)
		h.stores[i], h.attrsStores[i], h.wals[i] = store, attrs, w
		return svc
	}
	h.lc = NewLocalClusterOptions(peers, LocalOptions{
		Client: Options{
			CallTimeout:      500 * time.Millisecond,
			MaxRetries:       2,
			RetryBaseDelay:   time.Millisecond,
			RetryMaxDelay:    10 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  50 * time.Millisecond,
			Replicas:         peers, // one logical shard, two replicas
			Metrics:          h.metrics,
			Seed:             1,
		},
		WrapConn:       wrap,
		ServiceFactory: factory,
	})
	t.Cleanup(h.lc.Shutdown)
	return h
}

// applyBoth pushes n generated events through the cluster client and the
// oracle.
func (h *antiEntropyHarness) applyBoth(t *testing.T, n int) {
	t.Helper()
	events := h.gen.Next(n)
	cp := make([]graph.Event, len(events))
	copy(cp, events)
	if err := h.lc.Client().ApplyBatch(cp); err != nil {
		t.Fatalf("apply: %v", err)
	}
	h.oracle.ApplyBatch(events)
}

// setFeaturesBoth writes deterministic feature rows and labels for ids
// [lo, hi) through the client and into the attribute oracle.
func (h *antiEntropyHarness) setFeaturesBoth(t *testing.T, lo, hi, dim int) {
	t.Helper()
	var ids []graph.VertexID
	var data []float32
	var labels []int32
	for v := lo; v < hi; v++ {
		id := graph.VertexID(v)
		ids = append(ids, id)
		row := make([]float32, dim)
		for k := range row {
			row[k] = float32(v)*0.5 + float32(k)
		}
		data = append(data, row...)
		labels = append(labels, int32(v%7))
		h.oracleAttrs.SetFeatures(id, row)
		h.oracleAttrs.SetLabel(id, int32(v%7))
	}
	if err := h.lc.Client().SetFeatures(ids, dim, data, labels); err != nil {
		t.Fatalf("set features [%d,%d): %v", lo, hi, err)
	}
}

// scrubber builds replica i's scrubber with fast test cadences. dial routes
// peer probes and repair pulls (nil: straight through the harness pipes).
func (h *antiEntropyHarness) scrubber(t *testing.T, i int, dial func(addr string) Dialer, snapshotPath bool) *Scrubber {
	t.Helper()
	if dial == nil {
		dial = func(addr string) Dialer { return h.lc.DialAddr(addr) }
	}
	cfg := ScrubConfig{
		Self:          LocalAddr(i),
		Peers:         []string{LocalAddr(0), LocalAddr(1)},
		Dial:          dial,
		CallTimeout:   2 * time.Second,
		RepairTimeout: 10 * time.Second,
		SettleRetries: 1,
		SettleDelay:   10 * time.Millisecond,
		WALPath:       h.walPath(i),
		AutoRepair:    true,
		Metrics:       h.metrics,
		Logf:          t.Logf,
	}
	if snapshotPath {
		cfg.SnapshotPath = h.snapPath(i)
		idx := i
		cfg.PostRepair = func() error { return h.writeCleanDisk(idx) }
	}
	return NewScrubber(h.lc.Service(i), cfg)
}

// writeCleanDisk rewrites replica i's durable state from its in-memory
// store — snapshot first, then WAL reset — the same barrier order the
// server binary uses so a crash between the two replays harmlessly.
func (h *antiEntropyHarness) writeCleanDisk(i int) error {
	svc := h.lc.Service(i)
	resume := svc.Pause()
	defer resume()
	f, err := os.Create(h.snapPath(i))
	if err != nil {
		return err
	}
	if err := h.stores[i].Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return h.wals[i].Reset()
}

// verifyConverged asserts replica i holds exactly the oracle's state:
// topology byte-identical, weights within Fenwick tolerance, attribute
// digest equal.
func (h *antiEntropyHarness) verifyConverged(t *testing.T, phase string, i int) {
	t.Helper()
	got := canonicalDump(h.stores[i], nil)
	want := canonicalDump(h.oracle, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: replica %d topology diverged from oracle (%d vs %d bytes)", phase, i, len(got), len(want))
	}
	weightsMatch(t, fmt.Sprintf("%s: replica %d", phase, i), h.stores[i], h.oracle, nil)
	if got, want := h.attrsStores[i].Digest(), h.oracleAttrs.Digest(); got != want {
		t.Fatalf("%s: replica %d attrs digest %x, want oracle %x", phase, i, got, want)
	}
}

// waitHealthy polls reads until no replica is stale (MarkSynced re-admits a
// repaired replica lazily, on the next health probe).
func (h *antiEntropyHarness) waitHealthy(t *testing.T) {
	t.Helper()
	client := h.lc.Client()
	probe := make([]graph.VertexID, 16)
	for i := range probe {
		probe[i] = graph.VertexID(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := client.SampleNeighbors(probe, 0, 4, 7); err != nil {
			t.Fatalf("post-repair sampling: %v", err)
		}
		stale := 0
		for _, st := range client.Health() {
			if st.Stale {
				stale++
			}
		}
		if stale == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replicas still stale after repair: %+v", stale, client.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitWALSeq polls replica i's WAL until it reaches seq. Write fan-out
// returns on the first replica ack, so the other replica's append can still
// be in flight when the client call returns — anything poking that WAL file
// must wait for the frames to actually land.
func (h *antiEntropyHarness) waitWALSeq(t *testing.T, i int, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.wals[i].Seq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("replica %d WAL stuck at seq %d, want %d", i, h.wals[i].Seq(), seq)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// flipByte XORs one byte of a file in place — the disk-rot injector.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatalf("read %s@%d: %v", path, off, err)
	}
	buf[0] ^= 0x10
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatalf("write %s@%d: %v", path, off, err)
	}
}

// TestChaosPartitionScrubRepair is the anti-entropy acceptance test: an
// asymmetric partition (client requests to replica 1 blackhole; nothing is
// torn down, bytes just stop arriving) during write load leaves replica 1
// silently behind while writes keep succeeding on replica 0's ack. After
// the heal, the advanced replica's scrub round must classify the mismatch
// as the peer's problem and hold state; the lagging replica's round must
// flag itself diverged and auto-repair from its sibling, converging
// byte-identically to the oracle — features included — within that one
// round.
func TestChaosPartitionScrubRepair(t *testing.T) {
	fabric := faultinject.NewFabric(99, faultinject.Config{})
	// Every harness dial is attributed to the external client (node -1);
	// scrub probes and repair pulls run post-heal, where attribution is moot.
	h := newAntiEntropyHarness(t, func(shard int, c net.Conn) net.Conn {
		return fabric.Wrap(-1, shard, c)
	})
	const featDim = 8

	// Phase 1: healthy traffic, both replicas in lockstep.
	for b := 0; b < 4; b++ {
		h.applyBoth(t, 400)
	}
	h.setFeaturesBoth(t, 0, 64, featDim)

	// Phase 2: asymmetric partition of the client->replica-1 link, write
	// load continues. Writes must keep succeeding (replica 0 acks); replica
	// 1 silently misses everything and is marked stale.
	fabric.Partition(-1, 1, false, true)
	for b := 0; b < 4; b++ {
		h.applyBoth(t, 400)
	}
	h.setFeaturesBoth(t, 64, 128, featDim)
	fabric.Heal()
	if got := h.metrics.Snapshot().StaleMarks; got < 1 {
		t.Fatalf("StaleMarks = %d after partitioned write load", got)
	}
	d0, err := h.lc.Service(0).localDigest(-1, 0)
	if err != nil {
		t.Fatalf("replica 0 digest: %v", err)
	}
	d1, err := h.lc.Service(1).localDigest(-1, 0)
	if err != nil {
		t.Fatalf("replica 1 digest: %v", err)
	}
	if d0.Topology == d1.Topology && d0.Attrs == d1.Attrs {
		t.Fatal("partition injected no divergence; chaos scenario is vacuous")
	}
	if d0.WALSeq <= d1.WALSeq {
		t.Fatalf("replica 0 WAL %d not ahead of partitioned replica 1's %d", d0.WALSeq, d1.WALSeq)
	}

	// Phase 3: the advanced replica scrubs first. It must see the mismatch
	// but classify it as the peer's divergence — hold state, repair nothing.
	rep0 := h.scrubber(t, 0, nil, false).RunRound()
	if rep0.Diverged || rep0.Repaired || rep0.Corrupt {
		t.Fatalf("advanced replica self-classified: %+v", rep0)
	}
	if len(rep0.Peers) != 1 || rep0.Peers[0].Err != "" || !rep0.Peers[0].Digest.Ready {
		t.Fatalf("advanced replica's peer probe: %+v", rep0.Peers)
	}

	// Phase 4: the lagging replica's round must flag itself diverged and
	// auto-repair from its sibling — all within this one round.
	rep1 := h.scrubber(t, 1, nil, false).RunRound()
	if !rep1.Diverged {
		t.Fatalf("lagging replica not flagged diverged: %+v", rep1)
	}
	if rep1.RepairPeer != LocalAddr(0) {
		t.Fatalf("repair peer = %q, want %q", rep1.RepairPeer, LocalAddr(0))
	}
	if !rep1.Repaired || rep1.RepairErr != "" {
		t.Fatalf("auto-repair did not complete: %+v", rep1)
	}
	if rep1.RepairBytes == 0 {
		t.Fatal("repair moved zero bytes")
	}

	// Convergence: byte-identical topology and attrs on both replicas, and
	// matching digests over the wire.
	for i := 0; i < 2; i++ {
		h.verifyConverged(t, "after repair", i)
	}
	g0, _ := h.lc.Service(0).localDigest(-1, 0)
	g1, _ := h.lc.Service(1).localDigest(-1, 0)
	if g0.Topology != g1.Topology || g0.Attrs != g1.Attrs {
		t.Fatalf("digests still differ after repair: %+v vs %+v", g0, g1)
	}

	// The repaired replica must re-enter the read rotation, and reads must
	// serve the partition-era features from either replica.
	h.waitHealthy(t)
	ids := make([]graph.VertexID, 0, 128)
	for v := 0; v < 128; v++ {
		ids = append(ids, graph.VertexID(v))
	}
	data, labels, err := h.lc.Client().FeaturesLabels(ids, featDim)
	if err != nil {
		t.Fatalf("features after repair: %v", err)
	}
	for v := 0; v < 128; v++ {
		for k := 0; k < featDim; k++ {
			if want := float32(v)*0.5 + float32(k); data[v*featDim+k] != want {
				t.Fatalf("feature[%d][%d] = %v, want %v", v, k, data[v*featDim+k], want)
			}
		}
		if labels[v] != int32(v%7) {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], v%7)
		}
	}

	snap := h.metrics.Snapshot()
	if snap.ScrubRounds < 2 || snap.DigestMismatches < 1 {
		t.Fatalf("scrub accounting: %+v", snap)
	}
	if snap.RepairsTriggered != 1 || snap.RepairBytes == 0 {
		t.Fatalf("repair accounting: %+v", snap)
	}
	t.Logf("metrics: %s", snap)
}

// TestChaosScrubRepairsDiskCorruption bit-flips replica 1's durable state —
// first the snapshot body, then a WAL frame — and asserts each flip is
// caught by the scrubber's CRC pass (corruption, not divergence: the
// in-memory digests still agree), repaired from the healthy peer, and the
// durable files rewritten clean by the PostRepair hook.
func TestChaosScrubRepairsDiskCorruption(t *testing.T) {
	h := newAntiEntropyHarness(t, nil)
	for b := 0; b < 4; b++ {
		h.applyBoth(t, 400)
	}
	h.setFeaturesBoth(t, 0, 64, 8)
	h.waitWALSeq(t, 1, 4)
	scrub := h.scrubber(t, 1, nil, true)

	// Flip a byte mid-snapshot. The scrub round must classify it as local
	// corruption (digests agree — memory is fine, the disk rotted), repair
	// from the peer, and leave a clean snapshot + empty WAL behind.
	if err := h.writeCleanDisk(1); err != nil {
		t.Fatalf("snapshot replica 1: %v", err)
	}
	fi, err := os.Stat(h.snapPath(1))
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, h.snapPath(1), fi.Size()/2)

	rep := scrub.RunRound()
	if !rep.Corrupt || len(rep.DiskErrors) == 0 {
		t.Fatalf("snapshot bit-flip not detected: %+v", rep)
	}
	if rep.Diverged {
		t.Fatalf("disk corruption misclassified as divergence: %+v", rep)
	}
	if !rep.Repaired || rep.RepairPeer != LocalAddr(0) || rep.RepairErr != "" {
		t.Fatalf("corruption repair did not complete: %+v", rep)
	}
	h.verifyConverged(t, "after snapshot repair", 1)
	f, err := os.Open(h.snapPath(1))
	if err != nil {
		t.Fatal(err)
	}
	verr := storage.VerifySnapshot(f)
	f.Close()
	if verr != nil {
		t.Fatalf("snapshot still corrupt after PostRepair: %v", verr)
	}
	if vr, err := eventlog.Verify(h.walPath(1)); err != nil || vr.Corrupt || vr.Frames != 0 {
		t.Fatalf("WAL not reset clean after PostRepair: %+v err=%v", vr, err)
	}

	// Grow the fresh WAL some frames, then flip a byte in one. Same story:
	// detected as corruption, repaired, durable state rewritten clean.
	for b := 0; b < 2; b++ {
		h.applyBoth(t, 400)
	}
	h.waitWALSeq(t, 1, 2)
	fi, err = os.Stat(h.walPath(1))
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, h.walPath(1), fi.Size()-3)

	rep = scrub.RunRound()
	if !rep.Corrupt || rep.Diverged || !rep.Repaired || rep.RepairErr != "" {
		t.Fatalf("WAL bit-flip round: %+v", rep)
	}
	h.verifyConverged(t, "after WAL repair", 1)
	if vr, err := eventlog.Verify(h.walPath(1)); err != nil || vr.Corrupt {
		t.Fatalf("WAL still corrupt after repair: %+v err=%v", vr, err)
	}
	h.waitHealthy(t)

	snap := h.metrics.Snapshot()
	if snap.CorruptionDetected < 2 || snap.RepairsTriggered < 2 || snap.RepairBytes == 0 {
		t.Fatalf("corruption accounting: %+v", snap)
	}
	t.Logf("metrics: %s", snap)
}
