// Replication chaos suite: replica groups under replica kills and rejoins.
// The invariants: (1) with any single replica of each shard down, writes
// keep succeeding and sampling stays exact — correct neighbors, no degraded
// self-fills, no errors; (2) a killed replica that rejoins via snapshot +
// WAL-tail catch-up converges to a store whose topology is byte-identical
// to its live sibling's and to a shard-filtered single-store oracle, with
// edge weights equal up to Fenwick reconstruction rounding.
package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// canonicalDump renders a store's topology in a canonical order (relations,
// sources, and neighbor IDs all ascending — samtree leaves are physically
// unordered), so two stores hold identical topology iff their dumps are
// byte-equal. Weights are deliberately excluded: FSTable leaves store
// Fenwick partial sums and reconstruct raw weights by subtraction, so two
// stores holding the same logical graph via different operation histories
// (direct writes vs snapshot+WAL rebuild) agree only up to accumulated
// float64 rounding — weightsMatch checks them with a tolerance instead.
// keep filters sources (nil keeps all) — how the whole-graph oracle is
// projected onto one shard. Zero-degree sources are skipped: a replica
// rebuilt from a snapshot has no empty tree entries for edges deleted
// before the snapshot, while a directly-written one does, and both are the
// same graph.
func canonicalDump(st *storage.DynamicStore, keep func(graph.VertexID) bool) []byte {
	var buf bytes.Buffer
	stats := st.AllStats()
	types := make([]graph.EdgeType, 0, len(stats))
	for _, rs := range stats {
		types = append(types, rs.Type)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, et := range types {
		srcs := st.Sources(et)
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		for _, src := range srcs {
			if keep != nil && !keep(src) {
				continue
			}
			ids, _ := st.Neighbors(src, et)
			if len(ids) == 0 {
				continue
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			fmt.Fprintf(&buf, "t%d s%d:", et, src)
			for _, id := range ids {
				fmt.Fprintf(&buf, " %d", id)
			}
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// weightTol is the allowed relative deviation between two stores' weights
// for the same edge. Reconstructing a weight from an FSTable's Fenwick sums
// loses a few ULPs per update, so ~1e-12 of drift accumulates; any real
// divergence (a missed or double-applied update) moves a weight by ~0.1.
const weightTol = 1e-9

// weightsMatch asserts every kept edge carries the same weight in got as in
// want, within weightTol.
func weightsMatch(t *testing.T, label string, got, want *storage.DynamicStore, keep func(graph.VertexID) bool) {
	t.Helper()
	for _, rs := range want.AllStats() {
		et := rs.Type
		for _, src := range want.Sources(et) {
			if keep != nil && !keep(src) {
				continue
			}
			ids, ws := want.Neighbors(src, et)
			gids, gws := got.Neighbors(src, et)
			gw := make(map[graph.VertexID]float64, len(gids))
			for i, id := range gids {
				gw[id] = gws[i]
			}
			for i, id := range ids {
				g, ok := gw[id]
				if !ok {
					t.Fatalf("%s: edge %d->%d (type %d) missing", label, src, id, et)
				}
				if d := g - ws[i]; d > weightTol || d < -weightTol {
					t.Fatalf("%s: edge %d->%d (type %d) weight %v, want %v", label, src, id, et, g, ws[i])
				}
			}
		}
	}
}

// TestChaosReplicaFailoverAndCatchUp is the replication acceptance test:
// a 2-shard x 2-replica cluster under a dynamic event stream; one replica
// per shard is killed mid-run (writes keep flowing on single acks, reads
// fail over), then restarted with an empty store to rejoin via SyncFromPeer
// while traffic continues. At the end every replica must hold the oracle's
// exact topology for its shard (and weights within tolerance), and sampling
// must be exact throughout.
func TestChaosReplicaFailoverAndCatchUp(t *testing.T) {
	const (
		shards   = 2
		replicas = 2
		peers    = shards * replicas
	)
	dir := t.TempDir()
	walPath := func(i int) string { return filepath.Join(dir, fmt.Sprintf("peer%d.wal", i)) }
	storeOpts := storage.Options{Tree: core.Options{Capacity: 16}}

	metrics := &Metrics{}
	var (
		lc        *LocalCluster
		mu        sync.Mutex
		stores    = make([]*storage.DynamicStore, peers)
		wals      = make([]*eventlog.Writer, peers)
		restarted = make([]bool, peers)
		catchups  sync.WaitGroup
	)
	factory := func(i int) *Service {
		mu.Lock()
		if old := wals[i]; old != nil {
			old.Close()
		}
		rejoin := restarted[i]
		mu.Unlock()
		if rejoin {
			// A rejoining replica rebuilds from its live sibling, not from its
			// own stale history: empty store, fresh WAL.
			os.Remove(walPath(i))
		}
		store := storage.NewDynamicStore(storeOpts)
		svc := NewService(store, kvstore.New())
		svc.SetMetrics(metrics)
		w, err := eventlog.Create(walPath(i))
		if err != nil {
			t.Fatalf("peer %d wal: %v", i, err)
		}
		svc.SetBatchHook(func(clientID, seq uint64, events []graph.Event) error {
			_, err := w.AppendBatch(clientID, seq, events)
			return err
		})
		svc.EnableSync(w)
		mu.Lock()
		stores[i] = store
		wals[i] = w
		mu.Unlock()
		if rejoin {
			svc.BeginCatchUp()
			sibling := i ^ 1 // same group, other replica (consecutive grouping, R=2)
			catchups.Add(1)
			go func() {
				defer catchups.Done()
				err := SyncFromPeer(svc, lc.Dialer(sibling), SyncOptions{
					CallTimeout: 10 * time.Second,
					MaxBatches:  64,
					Metrics:     metrics,
				})
				if err != nil {
					t.Errorf("peer %d catch-up from %d: %v", i, sibling, err)
				}
			}()
		}
		return svc
	}

	lc = NewLocalClusterOptions(peers, LocalOptions{
		Client: Options{
			CallTimeout:      2 * time.Second,
			MaxRetries:       3,
			RetryBaseDelay:   time.Millisecond,
			RetryMaxDelay:    10 * time.Millisecond,
			BreakerThreshold: 6,
			BreakerCooldown:  10 * time.Millisecond,
			Replicas:         replicas,
			Metrics:          metrics,
			Seed:             1,
		},
		ServiceFactory: factory,
	})
	defer lc.Shutdown()
	client := lc.Client()
	if client.NumShards() != shards || client.NumReplicas() != replicas {
		t.Fatalf("topology = %dx%d, want %dx%d", client.NumShards(), client.NumReplicas(), shards, replicas)
	}

	oracle := storage.NewDynamicStore(storeOpts)
	gen := dataset.NewGenerator(dataset.OGBNSim().Scale(2e-5), dataset.DynamicMix, 13)
	applyBoth := func(n int) {
		events := gen.Next(n)
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Fatalf("apply: %v", err)
		}
		oracle.ApplyBatch(events)
	}
	probeSeeds := make([]graph.VertexID, 64)
	for i := range probeSeeds {
		probeSeeds[i] = graph.VertexID(i)
	}

	// verifyExact asserts (against a quiescent oracle) that degrees match
	// exactly and every sampled neighbor is a true neighbor — a degraded
	// self-fill for a vertex with out-edges would fail the membership check.
	verifyExact := func(phase string) {
		t.Helper()
		const fanout = 4
		for _, rs := range oracle.AllStats() {
			et := rs.Type
			srcs := oracle.Sources(et)
			if len(srcs) > 150 {
				srcs = srcs[:150]
			}
			degs, err := client.Degree(srcs, et)
			if err != nil {
				t.Fatalf("%s: degree: %v", phase, err)
			}
			samples, err := client.SampleNeighbors(srcs, et, fanout, 12345)
			if err != nil {
				t.Fatalf("%s: sample: %v", phase, err)
			}
			for i, src := range srcs {
				if want := oracle.Degree(src, et); degs[i] != want {
					t.Fatalf("%s: degree(%v, %d) = %d, want %d", phase, src, et, degs[i], want)
				}
				ids, _ := oracle.Neighbors(src, et)
				set := make(map[graph.VertexID]bool, len(ids))
				for _, id := range ids {
					set[id] = true
				}
				for j := 0; j < fanout; j++ {
					got := samples[i*fanout+j]
					if len(ids) == 0 {
						if got != src {
							t.Fatalf("%s: empty seed %v sampled %v, want self", phase, src, got)
						}
					} else if !set[got] {
						t.Fatalf("%s: seed %v sampled %v — not a neighbor (degraded fill?)", phase, src, got)
					}
				}
			}
		}
	}

	// Phase 1: healthy cluster accumulates state.
	for b := 0; b < 6; b++ {
		applyBoth(800)
	}
	verifyExact("healthy")

	// Phase 2: kill replica 1 of every shard mid-run. Writes must keep
	// succeeding on the surviving replica's ack, reads must fail over, and
	// sampling must stay exact — not degraded.
	for s := 0; s < shards; s++ {
		lc.StopShard(s*replicas + 1)
	}
	for b := 0; b < 6; b++ {
		applyBoth(800)
		if _, err := client.SampleNeighbors(probeSeeds, 0, 4, int64(b)); err != nil {
			t.Fatalf("sampling with one replica per shard down: %v", err)
		}
	}
	verifyExact("one replica per shard down")
	if got := metrics.Snapshot().StaleMarks; got < int64(shards) {
		t.Fatalf("StaleMarks = %d after killing %d replicas under writes", got, shards)
	}

	// Phase 3: restart the killed replicas; they rejoin empty and catch up
	// from their siblings via snapshot + WAL tail while traffic continues.
	for s := 0; s < shards; s++ {
		i := s*replicas + 1
		mu.Lock()
		restarted[i] = true
		mu.Unlock()
		lc.RestartShard(i)
	}
	for b := 0; b < 6; b++ {
		applyBoth(800)
	}
	catchups.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// A little post-rejoin traffic lands on both replicas directly.
	for b := 0; b < 2; b++ {
		applyBoth(800)
	}

	// The rejoined replicas must be ready and re-enter the read rotation:
	// reads probe stale peers (rate-limited), so poll until health clears.
	for s := 0; s < shards; s++ {
		i := s*replicas + 1
		svc := lc.Service(i)
		if svc == nil || !svc.Ready() {
			t.Fatalf("peer %d not ready after catch-up", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		stale := 0
		if _, err := client.SampleNeighbors(probeSeeds, 0, 4, 7); err != nil {
			t.Fatalf("post-rejoin sampling: %v", err)
		}
		for _, h := range client.Health() {
			if h.Stale {
				stale++
			}
		}
		if stale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replicas still stale after rejoin: %+v", stale, client.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}
	verifyExact("after rejoin")

	// Convergence: each replica's topology must be byte-identical to the
	// oracle's projection onto its shard (hence to its sibling's), and every
	// edge weight must match within Fenwick reconstruction tolerance.
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < shards; s++ {
		shard := s
		keep := func(src graph.VertexID) bool { return client.shardFor(src) == shard }
		want := canonicalDump(oracle, keep)
		for r := 0; r < replicas; r++ {
			st := stores[s*replicas+r]
			got := canonicalDump(st, nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("shard %d replica %d topology diverged from oracle (%d vs %d bytes)", s, r, len(got), len(want))
			}
			weightsMatch(t, fmt.Sprintf("shard %d replica %d", s, r), st, oracle, keep)
		}
	}

	snap := metrics.Snapshot()
	if snap.CatchUps != shards {
		t.Fatalf("CatchUps = %d, want %d", snap.CatchUps, shards)
	}
	if snap.CatchUpBytes == 0 || snap.SnapshotsServed != shards {
		t.Fatalf("catch-up traffic not accounted: %+v", snap)
	}
	t.Logf("metrics: %s", snap)
}
