package cluster

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"platod2gl/internal/graph"
	"platod2gl/internal/wire"
)

// Codec micro-benchmarks: gob vs the hand-rolled wire codec over the hot
// payloads (sampling fan-out, batch ingest, feature pull). Run with
// -benchmem; B/op and allocs/op are the point. The bytes/msg metric is the
// encoded size — the wire protocol's density claim, measured.

func benchSampleArgs() *SampleArgs {
	seeds := make([]graph.VertexID, 256)
	for i := range seeds {
		seeds[i] = graph.VertexID(uint64(1)<<56 | uint64(i*7919))
	}
	return &SampleArgs{Seeds: seeds, Type: 1, Fanout: 10, Seed: 42, Shard: 3, RouteEpoch: 9}
}

func benchSampleReply() *SampleReply {
	neigh := make([]graph.VertexID, 256*10)
	for i := range neigh {
		neigh[i] = graph.VertexID(uint64(2)<<56 | uint64(i*31))
	}
	return &SampleReply{Neighbors: neigh}
}

func benchBatchArgs() *BatchArgs {
	evs := make([]graph.Event, 512)
	for i := range evs {
		evs[i] = graph.Event{Kind: graph.AddEdge,
			Edge:      graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1000), Type: 2, Weight: 1.5},
			Timestamp: int64(1_700_000_000 + i)}
	}
	return &BatchArgs{Events: evs, ClientID: 7, Seq: 99, Shard: 1, RouteEpoch: 4, Sum: 0xfeed}
}

func benchFeatureReply() *FeatureReply {
	data := make([]float32, 128*64)
	for i := range data {
		data[i] = float32(i) * 0.5
	}
	labels := make([]int32, 128)
	for i := range labels {
		labels[i] = int32(i % 40)
	}
	return &FeatureReply{Data: data, Labels: labels}
}

func codecBenchMessages() []struct {
	name string
	msg  wireMessage
} {
	return []struct {
		name string
		msg  wireMessage
	}{
		{"SampleArgs", benchSampleArgs()},
		{"SampleReply", benchSampleReply()},
		{"BatchArgs", benchBatchArgs()},
		{"FeatureReply", benchFeatureReply()},
	}
}

func BenchmarkCodecEncodeWire(b *testing.B) {
	for _, c := range codecBenchMessages() {
		b.Run(c.name, func(b *testing.B) {
			b.ReportMetric(float64(len(c.msg.appendWire(nil))), "bytes/msg")
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = c.msg.appendWire(buf[:0])
			}
		})
	}
}

func BenchmarkCodecEncodeGob(b *testing.B) {
	for _, c := range codecBenchMessages() {
		b.Run(c.name, func(b *testing.B) {
			var size bytes.Buffer
			if err := gob.NewEncoder(&size).Encode(c.msg); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(size.Len()), "bytes/msg")
			// One persistent encoder, like one net/rpc connection: type
			// descriptors are paid once and amortized over b.N.
			enc := gob.NewEncoder(io.Discard)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(c.msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCodecDecodeWire(b *testing.B) {
	for _, c := range codecBenchMessages() {
		b.Run(c.name, func(b *testing.B) {
			buf := c.msg.appendWire(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := freshWireLike(c.msg)
				r := wire.NewReader(buf)
				out.decodeWire(r)
				if err := r.Done(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCodecDecodeGob(b *testing.B) {
	const chunk = 1024 // values per pre-encoded stream
	for _, c := range codecBenchMessages() {
		b.Run(c.name, func(b *testing.B) {
			var stream bytes.Buffer
			enc := gob.NewEncoder(&stream)
			for i := 0; i < chunk; i++ {
				if err := enc.Encode(c.msg); err != nil {
					b.Fatal(err)
				}
			}
			data := stream.Bytes()
			dec := gob.NewDecoder(bytes.NewReader(data))
			left := chunk
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if left == 0 {
					b.StopTimer()
					dec = gob.NewDecoder(bytes.NewReader(data))
					left = chunk
					b.StartTimer()
				}
				out := freshWireLike(c.msg)
				if err := dec.Decode(out); err != nil {
					b.Fatal(err)
				}
				left--
			}
		})
	}
}
