// Unit tests for the control-plane integrity check behind
// `platod2gl-rebalance verify`: whole-group digest comparison, per-shard
// divergence drill-down, and on-demand scrub rounds over RPC.
package cluster

import (
	"path/filepath"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

func TestVerifyIntegrityNamesDivergedShardsAndScrubs(t *testing.T) {
	dir := t.TempDir()
	stores := make([]*storage.DynamicStore, 2)
	svcs := make([]*Service, 2)
	wals := make([]*eventlog.Writer, 2)
	lc := NewLocalClusterOptions(2, LocalOptions{
		Client: Options{Replicas: 2, Seed: 1},
		ServiceFactory: func(i int) *Service {
			st := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
			stores[i] = st
			svcs[i] = NewService(st, kvstore.New())
			w, err := eventlog.Create(filepath.Join(dir, LocalAddr(i)[len("mem://"):]+".wal"))
			if err != nil {
				t.Fatalf("wal %d: %v", i, err)
			}
			wals[i] = w
			svcs[i].EnableSync(w)
			return svcs[i]
		},
	})
	defer lc.Shutdown()

	// Identical baseline on both replicas.
	base := [][3]int{{1, 2, 0}, {9, 10, 1}}
	for i := range stores {
		addEdges(stores[i], base...)
		if _, err := wals[i].Append(nil); err != nil {
			t.Fatalf("wal append: %v", err)
		}
	}

	const numShards = 4
	m, err := IdentityMap([]string{LocalAddr(0), LocalAddr(1)}, 2, numShards)
	if err != nil {
		t.Fatalf("identity map: %v", err)
	}
	d := &Driver{Dial: lc.DialAddr, CallTimeout: 2 * time.Second}

	rep := d.VerifyIntegrity(m, m.Servers, false)
	if !rep.Healthy() {
		t.Fatalf("matched replicas reported unhealthy:\n%s", rep)
	}
	if len(rep.Groups) != 1 || rep.Groups[0].Mismatch {
		t.Fatalf("unexpected groups: %+v", rep.Groups)
	}

	// Replica 1 misses one batch: replica 0 gets an extra edge and a WAL
	// append it never saw. The drill-down must name exactly that edge's
	// source shard.
	const missed = graph.VertexID(5)
	addEdges(stores[0], [3]int{int(missed), 6, 0})
	if _, err := wals[0].Append(nil); err != nil {
		t.Fatalf("wal append: %v", err)
	}
	rep = d.VerifyIntegrity(m, m.Servers, false)
	if rep.Healthy() {
		t.Fatal("diverged replicas reported healthy")
	}
	g := rep.Groups[0]
	if !g.Mismatch {
		t.Fatalf("mismatch not flagged: %+v", g)
	}
	want := ShardOf(missed, numShards)
	if len(g.BadShards) != 1 || g.BadShards[0] != want {
		t.Fatalf("diverged shards = %v, want [%d]", g.BadShards, want)
	}

	// Scrub without a scrubber installed must fail the check loudly, not
	// silently pass.
	rep = d.VerifyIntegrity(m, m.Servers, true)
	if len(rep.Scrubs) != 2 {
		t.Fatalf("scrubs = %d, want 2", len(rep.Scrubs))
	}
	for _, s := range rep.Scrubs {
		if s.Err == "" {
			t.Fatalf("scrub on %s succeeded with no scrubber installed", s.Addr)
		}
	}

	// With scrubbers installed, the requested rounds run over RPC: the
	// lagging replica repairs itself from its peer, the advanced replica
	// holds state, and the group converges.
	for i, svc := range svcs {
		svc.SetScrubber(NewScrubber(svc, ScrubConfig{
			Self:        LocalAddr(i),
			Peers:       []string{LocalAddr(0), LocalAddr(1)},
			Dial:        lc.DialAddr,
			CallTimeout: 2 * time.Second,
			SettleDelay: 10 * time.Millisecond,
			AutoRepair:  true,
			Logf:        t.Logf,
		}))
	}
	rep = d.VerifyIntegrity(m, m.Servers, true)
	if rep.Healthy() {
		t.Fatal("round that repaired state must report unhealthy")
	}
	repaired := 0
	for _, s := range rep.Scrubs {
		if s.Err != "" {
			t.Fatalf("scrub on %s: %s", s.Addr, s.Err)
		}
		if s.Report.Repaired {
			if s.Addr != LocalAddr(1) {
				t.Fatalf("advanced replica %s repaired itself", s.Addr)
			}
			repaired++
		}
	}
	if repaired != 1 {
		t.Fatalf("repaired rounds = %d, want 1", repaired)
	}
	// After the repair, a fresh verification is clean.
	rep = d.VerifyIntegrity(m, m.Servers, true)
	if !rep.Healthy() {
		t.Fatalf("post-repair cluster still unhealthy:\n%s", rep)
	}
}

func TestScrubTieBreakOnEqualWALPositions(t *testing.T) {
	// Replicas that applied every write but in different interleavings end
	// up with equal WAL positions and differing digests. Neither is "more
	// correct"; the tie-break must converge them deterministically — the
	// lexically smallest address holds, the other rebuilds from it —
	// instead of both holding forever.
	dir := t.TempDir()
	stores := make([]*storage.DynamicStore, 2)
	svcs := make([]*Service, 2)
	lc := NewLocalClusterOptions(2, LocalOptions{
		Client: Options{Replicas: 2, Seed: 1},
		ServiceFactory: func(i int) *Service {
			st := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
			stores[i] = st
			svcs[i] = NewService(st, kvstore.New())
			w, err := eventlog.Create(filepath.Join(dir, LocalAddr(i)[len("mem://"):]+".wal"))
			if err != nil {
				t.Fatalf("wal %d: %v", i, err)
			}
			if _, err := w.Append(nil); err != nil {
				t.Fatalf("wal append: %v", err)
			}
			svcs[i].EnableSync(w)
			return svcs[i]
		},
	})
	defer lc.Shutdown()

	// Same writes, different effective order: an add/delete race resolved
	// differently on each side. Equal WAL seq, differing digests.
	addEdges(stores[0], [3]int{1, 2, 0}, [3]int{5, 6, 0})
	addEdges(stores[1], [3]int{1, 2, 0}, [3]int{7, 8, 0})

	newScrub := func(i int) *Scrubber {
		sc := NewScrubber(svcs[i], ScrubConfig{
			Self:        LocalAddr(i),
			Peers:       []string{LocalAddr(0), LocalAddr(1)},
			Dial:        lc.DialAddr,
			CallTimeout: 2 * time.Second,
			SettleDelay: 10 * time.Millisecond,
			AutoRepair:  true,
			Logf:        t.Logf,
		})
		svcs[i].SetScrubber(sc)
		return sc
	}
	sc0, sc1 := newScrub(0), newScrub(1)

	// mem://0 sorts first: it holds.
	if rep := sc0.RunRound(); rep.Diverged || rep.Repaired {
		t.Fatalf("tie winner did not hold: %+v", rep)
	}
	// mem://1 yields and rebuilds from mem://0.
	rep := sc1.RunRound()
	if !rep.Diverged || rep.RepairPeer != LocalAddr(0) || !rep.Repaired {
		t.Fatalf("tie loser did not repair from winner: %+v", rep)
	}
	d0, err := svcs[0].localDigest(-1, 0)
	if err != nil {
		t.Fatalf("digest 0: %v", err)
	}
	d1, err := svcs[1].localDigest(-1, 0)
	if err != nil {
		t.Fatalf("digest 1: %v", err)
	}
	if d0.Topology != d1.Topology || d0.Attrs != d1.Attrs {
		t.Fatalf("tie-break did not converge: %+v vs %+v", d0, d1)
	}
}

func TestVerifyIntegrityUngroupedCluster(t *testing.T) {
	stores := make([]*storage.DynamicStore, 2)
	lc := NewLocalClusterOptions(2, LocalOptions{
		Client: Options{Replicas: 1, Seed: 1},
		StoreFactory: func(i int) (storage.TopologyStore, *kvstore.Store) {
			stores[i] = storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
			return stores[i], kvstore.New()
		},
	})
	defer lc.Shutdown()
	addEdges(stores[0], [3]int{1, 2, 0})

	d := &Driver{Dial: lc.DialAddr, CallTimeout: 2 * time.Second}
	// No shard map: every server is its own group of one; nothing compares,
	// so deliberately different stores still verify healthy.
	rep := d.VerifyIntegrity(nil, []string{LocalAddr(0), LocalAddr(1)}, false)
	if !rep.Healthy() {
		t.Fatalf("ungrouped cluster unhealthy:\n%s", rep)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(rep.Groups))
	}
	if rep.Groups[0].Members[0].Digest.Topology == rep.Groups[1].Members[0].Digest.Topology {
		t.Fatal("distinct stores produced equal digests")
	}
}
