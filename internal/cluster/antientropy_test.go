// Unit tests for the anti-entropy building blocks: state digests, the
// ShardDigest/FetchAttrs/Scrub RPC surface, payload checksums, and the
// parked-shard release paths. The partition/corruption drills live in
// antientropy_chaos_test.go.
package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

func newAntiEntropyService() (*Service, *storage.DynamicStore, *kvstore.Store) {
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
	attrs := kvstore.New()
	return NewService(store, attrs), store, attrs
}

func addEdges(store *storage.DynamicStore, edges ...[3]int) {
	var evs []graph.Event
	for _, e := range edges {
		evs = append(evs, graph.Event{Kind: graph.AddEdge, Edge: graph.Edge{
			Src: graph.VertexID(e[0]), Dst: graph.VertexID(e[1]), Type: graph.EdgeType(e[2]), Weight: 1,
		}})
	}
	store.ApplyBatch(evs)
}

func TestShardDigestMatchesAcrossEqualStores(t *testing.T) {
	svcA, storeA, attrsA := newAntiEntropyService()
	svcB, storeB, attrsB := newAntiEntropyService()
	// Same logical state, different insertion orders.
	addEdges(storeA, [3]int{1, 2, 0}, [3]int{1, 3, 0}, [3]int{4, 5, 1})
	addEdges(storeB, [3]int{4, 5, 1}, [3]int{1, 3, 0}, [3]int{1, 2, 0})
	attrsA.SetFeatures(1, []float32{0.5, 0.25})
	attrsB.SetFeatures(1, []float32{0.5, 0.25})

	var a, b DigestReply
	if err := svcA.ShardDigest(&DigestArgs{Shard: -1}, &a); err != nil {
		t.Fatalf("digest A: %v", err)
	}
	if err := svcB.ShardDigest(&DigestArgs{Shard: -1}, &b); err != nil {
		t.Fatalf("digest B: %v", err)
	}
	if a.Topology != b.Topology || a.Attrs != b.Attrs {
		t.Fatalf("equal stores digest differently: %+v vs %+v", a, b)
	}
	if a.Topology == 0 {
		t.Fatal("topology digest is zero for a non-empty store")
	}

	// Any single difference — an extra edge, a changed weight is excluded,
	// a feature bit — must separate the digests.
	addEdges(storeB, [3]int{9, 9, 0})
	var b2 DigestReply
	svcB.ShardDigest(&DigestArgs{Shard: -1}, &b2)
	if b2.Topology == a.Topology {
		t.Fatal("extra edge not reflected in topology digest")
	}
	attrsA.SetFeatures(1, []float32{0.5, 0.250001})
	var a2 DigestReply
	svcA.ShardDigest(&DigestArgs{Shard: -1}, &a2)
	if a2.Attrs == a.Attrs {
		t.Fatal("feature change not reflected in attrs digest")
	}
}

func TestTopologyDigestIgnoresDuplicateEdges(t *testing.T) {
	// The samtree can report an edge with different multiplicity after a
	// snapshot save/load cycle (parallel copies are not replica-stable), so
	// the digest must cover the distinct edge set only — otherwise a
	// replica repaired via snapshot would immediately re-flag as diverged
	// against the very peer it was rebuilt from.
	svcA, storeA, _ := newAntiEntropyService()
	svcB, storeB, _ := newAntiEntropyService()
	addEdges(storeA, [3]int{1, 2, 0}, [3]int{4, 5, 1})
	// Same distinct edges, one applied twice.
	addEdges(storeB, [3]int{1, 2, 0}, [3]int{1, 2, 0}, [3]int{4, 5, 1})

	var a, b DigestReply
	if err := svcA.ShardDigest(&DigestArgs{Shard: -1}, &a); err != nil {
		t.Fatalf("digest A: %v", err)
	}
	if err := svcB.ShardDigest(&DigestArgs{Shard: -1}, &b); err != nil {
		t.Fatalf("digest B: %v", err)
	}
	if a.Topology != b.Topology {
		t.Fatalf("duplicate edge changed the digest: %016x vs %016x", a.Topology, b.Topology)
	}
}

func TestTopologyDigestStableAcrossSnapshotRoundTrip(t *testing.T) {
	// A repaired replica is materialized by loading its peer's snapshot, so
	// the digest of load(save(store)) must equal the live store's — or
	// every repair would immediately re-flag as diverged against the very
	// peer it was rebuilt from. This workload (realistic mixed add/delete
	// traffic at small node capacity) makes the samtree duplicate a source
	// run across leaves, which a save/load cycle redistributes; the digest
	// must not see that.
	st := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 256, Compress: true}})
	gen := dataset.NewGenerator(dataset.WeChatSim().Scale(1.2e-6), dataset.DynamicMix, 7)
	for i := 0; i < 320; i++ {
		st.ApplyBatch(gen.Next(500))
	}
	live, err := topologyDigest(st, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 256, Compress: true}})
	if err := st2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	loaded, err := topologyDigest(st2, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if live != loaded {
		t.Fatalf("snapshot round trip changed the digest: %016x -> %016x (edges %d -> %d)",
			live, loaded, st.NumEdges(), st2.NumEdges())
	}
}

func TestShardDigestPerShardFilter(t *testing.T) {
	svc, store, attrs := newAntiEntropyService()
	const numShards = 4
	for i := 1; i <= 40; i++ {
		addEdges(store, [3]int{i, i + 1, 0})
		attrs.SetLabel(graph.VertexID(i), int32(i))
	}
	var whole DigestReply
	if err := svc.ShardDigest(&DigestArgs{Shard: -1}, &whole); err != nil {
		t.Fatalf("whole digest: %v", err)
	}
	var topoXOR, attrsXOR uint64
	for sh := 0; sh < numShards; sh++ {
		var part DigestReply
		if err := svc.ShardDigest(&DigestArgs{Shard: sh, NumShards: numShards}, &part); err != nil {
			t.Fatalf("shard %d digest: %v", sh, err)
		}
		topoXOR ^= part.Topology
		attrsXOR ^= part.Attrs
	}
	// Per-shard digests are an exact partition of the whole-store digest.
	if topoXOR != whole.Topology || attrsXOR != whole.Attrs {
		t.Fatalf("shard digests do not compose: topo %016x vs %016x, attrs %016x vs %016x",
			topoXOR, whole.Topology, attrsXOR, whole.Attrs)
	}
	var bad DigestReply
	if err := svc.ShardDigest(&DigestArgs{Shard: 1, NumShards: 0}, &bad); err == nil {
		t.Fatal("shard digest without a hash space must error")
	}
}

func TestTopologyDigestExcludesWeights(t *testing.T) {
	_, storeA, _ := newAntiEntropyService()
	_, storeB, _ := newAntiEntropyService()
	addEdges(storeA, [3]int{1, 2, 0})
	storeB.ApplyBatch([]graph.Event{{Kind: graph.AddEdge, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 7.5}}})
	a, err := topologyDigest(storeA, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := topologyDigest(storeB, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("weight difference changed the topology digest; weights are not replica-stable and must be excluded")
	}
}

func TestFetchAttrsRoundTrip(t *testing.T) {
	svc, _, attrs := newAntiEntropyService()
	attrs.SetFeatures(1, []float32{1, 2, 3})
	attrs.SetLabel(1, 9)
	attrs.SetEdgeFeatures(kvstore.EdgeKey{Src: 1, Dst: 2, Type: 0}, []float32{0.5})

	var reply AttrsReply
	if err := svc.FetchAttrs(&AttrsArgs{}, &reply); err != nil {
		t.Fatalf("FetchAttrs: %v", err)
	}
	if reply.Sum == 0 || reply.Sum != checksumFeatures(&reply.Attrs) {
		t.Fatalf("FetchAttrs sum %016x does not verify", reply.Sum)
	}
	// Importing the export into a fresh service reproduces the digest.
	dst, _, dstAttrs := newAntiEntropyService()
	dst.importAttrs(&reply.Attrs)
	if dstAttrs.Digest() != attrs.Digest() {
		t.Fatal("attrs export/import round trip changed the digest")
	}
}

func TestScrubRPCRequiresScrubber(t *testing.T) {
	svc, _, _ := newAntiEntropyService()
	var reply ScrubReply
	if err := svc.Scrub(&ScrubArgs{}, &reply); err == nil {
		t.Fatal("Scrub without an installed scrubber must error")
	}
	svc.SetScrubber(NewScrubber(svc, ScrubConfig{}))
	if err := svc.Scrub(&ScrubArgs{}, &reply); err != nil {
		t.Fatalf("Scrub with scrubber: %v", err)
	}
	if !reply.Report.healthy() {
		t.Fatalf("peerless scrub round reported unhealthy: %+v", reply.Report)
	}
}

func TestChecksumMismatchIsRetryable(t *testing.T) {
	err := checksumError("ApplyBatch events", 1, 2)
	if !isChecksumMismatch(err) {
		t.Fatal("checksumError not recognized")
	}
	if !retryable(err) {
		t.Fatal("a checksum mismatch must be retryable: transit corruption, the retry re-sends intact bytes")
	}
	// Crossing the wire as a bare string (rpc.ServerError) must still match.
	wire := errors.New(err.Error())
	if !isChecksumMismatch(wire) || !retryable(wire) {
		t.Fatal("string-typed checksum mismatch not recognized")
	}
}

func TestApplyBatchRejectsCorruptPayloadBeforeDedup(t *testing.T) {
	svc, store, _ := newAntiEntropyService()
	events := []graph.Event{{Kind: graph.AddEdge, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}}
	bad := &BatchArgs{Events: events, ClientID: 7, Seq: 1, Sum: checksumEvents(events) ^ 0xdead}
	var reply BatchReply
	if err := svc.ApplyBatch(bad, &reply); !isChecksumMismatch(err) {
		t.Fatalf("corrupt batch error = %v, want checksum mismatch", err)
	}
	if store.NumEdges() != 0 {
		t.Fatal("corrupt batch mutated the store")
	}
	// The clean retry must apply — the corrupt attempt must not have
	// consumed the (ClientID, Seq) dedup identity.
	good := &BatchArgs{Events: events, ClientID: 7, Seq: 1, Sum: checksumEvents(events)}
	if err := svc.ApplyBatch(good, &reply); err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	if reply.Duplicate {
		t.Fatal("clean retry reported duplicate: corrupt attempt consumed the dedup identity")
	}
	if store.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after clean retry, want 1", store.NumEdges())
	}
}

func TestReleaseAllShardsUnparksWrites(t *testing.T) {
	svc, _, _ := newAntiEntropyService()
	m, err := IdentityMap([]string{"a", "b"}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetAdvertise("a")
	var ur UpdateRoutingReply
	if err := svc.UpdateRouting(&UpdateRoutingArgs{Map: *m}, &ur); err != nil {
		t.Fatalf("install routing: %v", err)
	}
	// Park with a long TTL — the backstop a dead driver would leave behind.
	svc.parkShard(0, time.Hour)
	done := make(chan error, 1)
	go func() {
		var reply BatchReply
		events := []graph.Event{{Kind: graph.AddEdge, Edge: graph.Edge{Src: idForShard(t, m.NumShards, 0), Dst: 2, Weight: 1}}}
		done <- svc.ApplyBatch(&BatchArgs{Events: events, Shard: 0, RouteEpoch: m.Epoch}, &reply)
	}()
	select {
	case err := <-done:
		t.Fatalf("write to parked shard completed early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	svc.ReleaseAllShards()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after ReleaseAllShards: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still parked after ReleaseAllShards")
	}
	// Idempotent on an empty park table.
	svc.ReleaseAllShards()
}

// idForShard finds a vertex ID hashing into the given logical shard.
func idForShard(t *testing.T, numShards, shard int) graph.VertexID {
	t.Helper()
	for id := graph.VertexID(1); id < 10_000; id++ {
		if ShardOf(id, numShards) == shard {
			return id
		}
	}
	t.Fatalf("no vertex id found for shard %d/%d", shard, numShards)
	return 0
}

func TestLocalClusterRestartClearsParks(t *testing.T) {
	// Satellite regression: a shard parked for a migration whose driver died
	// must accept writes promptly after the server restarts — the restart
	// releases the park instead of leaving writes wedged behind a stale gate
	// on the old service.
	lc := NewLocalClusterOptions(1, LocalOptions{
		Client: Options{CallTimeout: 2 * time.Second, MaxRetries: 3, RetryBaseDelay: time.Millisecond, Seed: 1},
		StoreFactory: func(i int) (storage.TopologyStore, *kvstore.Store) {
			return storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}}), kvstore.New()
		},
	})
	defer lc.Shutdown()
	svc := lc.Service(0)
	svc.parkShard(3, time.Hour)
	lc.RestartShard(0)
	// The old service's gate must be open: a goroutine parked on it from
	// before the restart resolves rather than hanging forever.
	done := make(chan struct{})
	go func() {
		svc.gateShardWrite(3, 1) // epoch 1: routed write path
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("write parked on pre-restart gate still wedged after restart")
	}
	if lc.Service(0) == svc {
		t.Fatal("restart did not replace the service")
	}
}

func TestScrubberStartStop(t *testing.T) {
	svc, store, _ := newAntiEntropyService()
	addEdges(store, [3]int{1, 2, 0})
	sc := NewScrubber(svc, ScrubConfig{Interval: 5 * time.Millisecond})
	svc.SetScrubber(sc)
	sc.Start()
	sc.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for sc.LastReport().Local.Topology == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never completed a round")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sc.Stop()
	sc.Stop() // idempotent
	if rep := sc.LastReport(); !rep.healthy() {
		t.Fatalf("healthy single-node round reported unhealthy: %+v", rep)
	}
}

func TestRoundReportGobEncodable(t *testing.T) {
	// The Scrub RPC ships RoundReport over net/rpc gob; a field that gob
	// cannot encode would break the verify verb at runtime.
	lc := NewLocalClusterOptions(1, LocalOptions{
		Client: Options{CallTimeout: 2 * time.Second, Seed: 1},
		ServiceFactory: func(i int) *Service {
			svc, store, _ := newAntiEntropyService()
			addEdges(store, [3]int{1, 2, 0})
			svc.SetScrubber(NewScrubber(svc, ScrubConfig{}))
			return svc
		},
	})
	defer lc.Shutdown()
	var reply ScrubReply
	if err := roundTrip(lc.Dialer(0), "Scrub", &ScrubArgs{}, &reply, 2*time.Second); err != nil {
		t.Fatalf("Scrub over the wire: %v", err)
	}
	if reply.Report.Local.Topology == 0 {
		t.Fatalf("wire round report lost the digest: %+v", reply.Report)
	}
	var dig DigestReply
	if err := roundTrip(lc.Dialer(0), "ShardDigest", &DigestArgs{Shard: -1}, &dig, 2*time.Second); err != nil {
		t.Fatalf("ShardDigest over the wire: %v", err)
	}
	if dig.Topology != reply.Report.Local.Topology {
		t.Fatalf("wire digest %016x != scrub-local digest %016x", dig.Topology, reply.Report.Local.Topology)
	}
}
