// Fault-tolerant call path for the cluster client: per-call timeouts on top
// of rpc.Client.Go, exponential backoff with jitter, bounded retries for
// idempotent calls, and automatic redial of dead peers through a pluggable
// Dialer. The paper's deployment (54 storage servers under continuous
// training traffic, Sec. VI) makes slow or crashed shards an expected
// condition, not an exception: without this layer one wedged shard stalls
// every training step forever.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCallTimeout is returned when a single RPC attempt exceeds
// Options.CallTimeout. The underlying connection is torn down (the reply
// could arrive arbitrarily late and must not be mistaken for a later
// call's), so the next attempt redials.
var ErrCallTimeout = errors.New("cluster: rpc call timed out")

// Dialer establishes a transport to one graph server. The client invokes it
// on first use and again whenever the previous connection died, so it must
// be safe to call repeatedly.
type Dialer func() (net.Conn, error)

// TCPDialer returns a Dialer for addr with a connect timeout.
func TCPDialer(addr string, timeout time.Duration) Dialer {
	return func() (net.Conn, error) {
		if timeout <= 0 {
			return net.Dial("tcp", addr)
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
}

// Options tune the client's fault-tolerance behavior. The zero value means
// "legacy": no timeouts, no retries, no breaker, fail the whole fan-out on
// the first shard error — exactly the pre-fault-tolerance client.
// DefaultOptions is the production starting point.
type Options struct {
	// CallTimeout bounds each RPC attempt. 0 disables (not recommended:
	// a partitioned peer then blocks forever).
	CallTimeout time.Duration
	// MaxRetries is the number of additional attempts after the first, for
	// idempotent calls (SampleNeighbors, Degree, Features, Stats,
	// SetFeatures) and for ApplyBatch, whose at-most-once batch sequence
	// numbers make retries safe. 0 disables retries.
	MaxRetries int
	// RetryBaseDelay scales the backoff before the first retry; the
	// exponential ceiling doubles per retry up to RetryMaxDelay, and each
	// delay is drawn uniformly from [0, ceiling) — "full jitter", which
	// decorrelates the retry times of the many clients that all failed at
	// the same instant (a partition heal, a server restart) instead of
	// having them re-arrive in synchronized waves.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold consecutive transport failures open a peer's circuit
	// breaker; while open, calls to that peer fail fast. <= 0 disables.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// letting a probe through.
	BreakerCooldown time.Duration
	// Degraded enables graceful degradation for sampling fan-outs: if a
	// shard is down, SampleNeighbors fills its slots with the seed itself
	// (the protocol's existing fallback for unknown vertices) and reports
	// the failure in a FanoutReport instead of failing the whole batch.
	// With replica groups, degradation only engages after every replica of
	// a shard has failed — a single replica loss is absorbed by failover
	// and never degrades results.
	Degraded bool
	// Replicas is the replica-group size R. The peer list is grouped
	// consecutively: logical shard s owns peers [s*R, (s+1)*R). Writes fan
	// out to every replica of the owning shard (converging through the
	// at-most-once batch identity); reads rotate across live replicas and
	// fail over on timeout, circuit-open, or a replica that is still
	// catching up. 0 or 1 means unreplicated (every peer is its own shard).
	Replicas int
	// DialServer, if set, builds the transport to a server address when the
	// client meets one it has no dialer for — which happens when an adopted
	// shard map (see shardmap.go) lists a server that joined after the
	// client dialed. Defaults to TCP with CallTimeout as the connect
	// timeout; in-process clusters plug their pipe factory in here.
	DialServer func(addr string) Dialer
	// Protocol selects the codec negotiated with peers: ProtoAuto (default)
	// probes the binary wire protocol and falls back to gob per peer,
	// ProtoWire requires it, ProtoGob forces legacy gob. See transport.go.
	Protocol Protocol
	// MaxWireVersion caps the wire-protocol version advertised in the
	// handshake — a rollback hook (pin a cluster to v1 if a v2 feature
	// misbehaves) and the lever interop tests use to stand up a v1 client
	// from current code. 0 advertises the newest version.
	MaxWireVersion byte
	// Metrics, if set, receives fault-tolerance counters (attempts,
	// timeouts, retries, breaker opens, failovers, catch-up traffic). May
	// be shared with a Service and published via expvar.
	Metrics *Metrics
	// Seed seeds the retry-jitter RNG and the client's dedup identity.
	// 0 draws an unpredictable seed.
	Seed int64
}

// DefaultOptions are sane production defaults: 2s per-attempt timeout,
// 4 retries starting at 25ms backoff, breaker at 5 failures / 1s cooldown.
func DefaultOptions() Options {
	return Options{
		CallTimeout:      2 * time.Second,
		MaxRetries:       4,
		RetryBaseDelay:   25 * time.Millisecond,
		RetryMaxDelay:    time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  time.Second,
	}
}

// peer is one replica endpoint: its current RPC connection (if any), the
// dialer that can replace it, its circuit breaker, and the client-side
// staleness tracking that keeps a replica which missed one of our writes
// out of the read rotation until it has demonstrably re-synced.
type peer struct {
	idx     int    // global peer index
	shard   int    // logical shard this replica belongs to (legacy placement)
	replica int    // position within the replica group
	addr    string // advertised server address; "" for conn-only legacy peers
	dial    Dialer // nil: no redial — a dead connection stays dead (legacy mode)
	br      *breaker

	// stale is set when a write fan-out could not reach this replica while
	// a sibling acknowledged it: the replica may be missing data, so reads
	// skip it. staleEpoch records the replica's sync epoch observed at (or
	// nearest after) the miss; the peer re-enters the rotation only when a
	// SyncState probe reports Ready with a different epoch — i.e. it
	// completed a catch-up — or, when no epoch could be observed (the
	// typical crashed-replica case), with any ready state, since a
	// replicated server always catches up before declaring itself ready.
	stale      atomic.Bool
	staleEpoch atomic.Uint64
	lastProbe  atomic.Int64 // unix nanos of the last stale probe, rate-limiting

	mu sync.Mutex
	tc Transport
}

// transportFor returns peer p's established transport, dialing (and codec
// handshaking, per Options.Protocol) if necessary.
func (c *Client) transportFor(p *peer) (Transport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tc != nil {
		return p.tc, nil
	}
	if p.dial == nil {
		return nil, fmt.Errorf("cluster: peer %d: connection closed and no dialer configured", p.idx)
	}
	t, err := dialTransport(p.dial, c.opts.Protocol, c.opts.CallTimeout, c.metrics, c.opts.MaxWireVersion)
	if err != nil {
		return nil, fmt.Errorf("cluster: redial peer %d: %w", p.idx, err)
	}
	p.tc = t
	return t, nil
}

// fail discards tc if it is still the peer's current transport, closing it
// so any stuck goroutines unblock. Safe to call with an already-replaced
// transport: a concurrent call that failed on the old one must not kill the
// new one. The next dial re-negotiates the codec, so a peer upgraded while
// we were speaking gob gets picked back up on wire.
func (p *peer) fail(tc Transport) {
	p.mu.Lock()
	if p.tc == tc {
		p.tc = nil
	}
	p.mu.Unlock()
	if tc != nil {
		tc.Close()
	}
}

// close shuts down the current transport without forgetting the dialer.
func (p *peer) close() error {
	p.mu.Lock()
	tc := p.tc
	p.tc = nil
	p.mu.Unlock()
	if tc != nil {
		return tc.Close()
	}
	return nil
}

// Transient reports whether err is plausibly transient — a transport
// failure, per-call timeout, failed dial, or open circuit breaker — as
// opposed to a deterministic application rejection (rpc.ServerError), which
// no amount of retrying fixes. Higher layers (view.Resilient, the training
// pipeline's batch retry) use it to decide whether a failed call is worth
// repeating.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var serverErr rpc.ServerError
	return !errors.As(err, &serverErr)
}

// retryable reports whether err is a transport-level failure worth retrying
// on a fresh connection. Application errors returned by the service
// (rpc.ServerError) are deterministic — retrying them wastes a round trip —
// with one exception: a payload checksum rejection means the bytes were
// damaged in flight, and a retry re-sends them intact.
func retryable(err error) bool { return Transient(err) || isChecksumMismatch(err) }

// backoff returns the delay before retry attempt (1-based): full jitter,
// i.e. uniform in [0, ceiling) where the ceiling grows exponentially from
// base and caps at max. Full jitter (vs the previous fixed-multiplier
// jitter in [d/2, d)) spreads the retries of clients that failed together —
// after a partition heals, every client's first retry lands at a different
// instant instead of hammering the recovering server in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.opts.RetryBaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	d := base << (attempt - 1)
	if maxD := c.opts.RetryMaxDelay; maxD > 0 && d > maxD {
		d = maxD
	}
	c.jitterMu.Lock()
	f := c.jitter.Float64()
	c.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// callPeer performs one fault-tolerant RPC against peer p: breaker check,
// (re)dial, per-attempt timeout, and bounded retries with backoff for
// transport failures. Transport outcomes feed the breaker; application
// errors do not (the peer is healthy, the request was bad).
func (c *Client) callPeer(p int, method string, args, reply any) error {
	return c.callPeerBudget(p, method, args, reply, c.opts.MaxRetries)
}

// callPeerBudget is callPeer with an explicit retry budget, so replica
// fan-outs can spend fewer retries on a peer already marked stale (the
// catch-up path will repair it) while reads keep the full budget.
func (c *Client) callPeerBudget(p int, method string, args, reply any, maxRetries int) error {
	return c.callPe(c.peerAt(p), method, args, reply, maxRetries)
}

// callPe is callPeerBudget addressed by peer object — the form routing-aware
// call sites use, since a shard map resolves to peers, not indices.
func (c *Client) callPe(pe *peer, method string, args, reply any, maxRetries int) error {
	return c.callPeCtx(context.Background(), pe, method, args, reply, maxRetries)
}

// callPeCtx is the fault-tolerant call loop with end-to-end deadline and
// priority propagation. The caller's context bounds the *total* elapsed
// time — per-attempt timeouts are clipped to the remaining budget, backoff
// sleeps never overrun the deadline, and an attempt whose budget is already
// spent fails fast before dialing — so a 500ms caller can never be held for
// MaxRetries × CallTimeout. Two outcomes are backpressure, not failure, and
// never feed the circuit breaker: a server shed (OverloadedError — the
// retry delay honors its retry-after hint) and the client's own adaptive
// concurrency limit (errClientSaturated).
func (c *Client) callPeCtx(ctx context.Context, pe *peer, method string, args, reply any, maxRetries int) error {
	pri, hasPri := PriorityFromContext(ctx)
	deadline, hasDL := ctx.Deadline()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > maxRetries {
				return lastErr
			}
			delay := c.backoff(attempt)
			if ra := OverloadRetryAfter(lastErr); ra > 0 {
				// The server told us when to come back; our jittered backoff
				// would either hammer it early or waste budget.
				delay = ra
			}
			if hasDL && time.Until(deadline) <= delay {
				c.metrics.incBudgetExhausted()
				return fmt.Errorf("cluster: %s: %w (budget spent after %d attempts, last: %v)",
					method, context.DeadlineExceeded, attempt, lastErr)
			}
			c.metrics.incRetry()
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				c.metrics.incBudgetExhausted()
				return fmt.Errorf("cluster: %s: %w (last: %v)", method, ctx.Err(), lastErr)
			}
		}
		// Fast-fail before dialing when the budget is already exhausted: a
		// reply we cannot wait for is not worth a connection.
		var budget time.Duration
		if hasDL {
			budget = time.Until(deadline)
			if budget <= 0 {
				c.metrics.incBudgetExhausted()
				if lastErr != nil {
					return fmt.Errorf("cluster: %s: %w (last: %v)", method, context.DeadlineExceeded, lastErr)
				}
				return fmt.Errorf("cluster: %s: %w", method, context.DeadlineExceeded)
			}
		}
		if err := pe.br.allow(time.Now()); err != nil {
			lastErr = err
			// An open breaker rejects without consuming a network attempt,
			// but still honors the retry budget: the cooldown may expire
			// between attempts, letting a later probe through.
			continue
		}
		c.metrics.incAttempt()
		attemptStart := time.Now()
		tc, err := c.transportFor(pe)
		if err != nil {
			pe.br.failure(time.Now(), err)
			lastErr = err
			continue
		}
		timeout := c.opts.CallTimeout
		if budget > 0 && (timeout <= 0 || budget < timeout) {
			timeout = budget
		}
		if et, ok := tc.(envTransport); ok && (hasPri || budget > 0) {
			err = et.CallEnv(method, args, reply, timeout, callEnv{pri: pri, hasPri: hasPri, budget: budget})
		} else {
			err = tc.Call(method, args, reply, timeout)
		}
		c.metrics.observeClientCall(method, attemptStart)
		if err == nil {
			pe.br.success()
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrCallTimeout) {
			c.metrics.incTimeout()
		}
		if errors.Is(err, errClientSaturated) {
			// Our own adaptive limit, not the peer: back off and retry
			// without touching the connection or the breaker.
			continue
		}
		if IsOverloaded(err) {
			// Server shed: the transport and the peer are healthy, the
			// server is just full. Count it as a breaker success so load
			// can never cascade into breaker trips.
			c.metrics.incShedSeen()
			pe.br.success()
			continue
		}
		if !retryable(err) {
			pe.br.success() // the transport worked; the request was rejected
			return err
		}
		// Transport failure: drop the connection so the next attempt
		// redials, and record it against the breaker.
		pe.fail(tc)
		pe.br.failure(time.Now(), err)
	}
}

// newJitterRNG builds the retry-jitter RNG from Options.Seed, falling back
// to an unpredictable seed.
func newJitterRNG(seed int64) *rand.Rand {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed))
}
