// In-process codec micro-benchmark, exported so the machine-readable
// performance report (cmd/platod2gl-bench -json) can carry gob-vs-wire
// encode/decode cost alongside the end-to-end RPC numbers. The Go benchmark
// variants in codec_bench_test.go cover the same ground interactively; this
// hook exists because BENCH_<rev>.json is what CI's regression gate reads.
package cluster

import (
	"bytes"
	"encoding/gob"
	"io"
	"reflect"
	"runtime"
	"time"

	"platod2gl/internal/graph"
	"platod2gl/internal/wire"
)

// freshWireLike allocates a zero value of msg's concrete type.
func freshWireLike(msg wireMessage) wireMessage {
	return reflect.New(reflect.TypeOf(msg).Elem()).Interface().(wireMessage)
}

// codecBenchIters is small enough to keep the perf experiment fast and
// large enough to amortize timer and descriptor overhead.
const codecBenchIters = 500

// CodecBenchMetrics times both codecs over the two payload shapes that
// dominate training traffic: a 2560-neighbor SampleReply (id-heavy) and an
// 8K-float FeatureReply (bulk-heavy). Keys follow the regression-gate
// naming: *_ns gates lower-better; the *_per_op allocation metrics are
// informational (they carry B/op and allocs/op without gating on them).
func CodecBenchMetrics() map[string]float64 {
	out := make(map[string]float64)
	neigh := make([]graph.VertexID, 2560)
	for i := range neigh {
		neigh[i] = graph.VertexID(uint64(2)<<56 | uint64(i*31))
	}
	data := make([]float32, 8192)
	for i := range data {
		data[i] = float32(i) * 0.37
	}
	labels := make([]int32, 128)
	for i := range labels {
		labels[i] = int32(i % 40)
	}
	benchCodecMessage(out, "codec_sample", &SampleReply{Neighbors: neigh})
	benchCodecMessage(out, "codec_feature", &FeatureReply{Data: data, Labels: labels})
	return out
}

// benchCodecMessage fills out with encode/decode timings, allocation
// counts, and bytes allocated per op for msg under both codecs.
func benchCodecMessage(out map[string]float64, prefix string, msg wireMessage) {
	// Wire encode: buffer reused across iterations, as the transport does.
	var buf []byte
	measure(out, prefix+"_encode_wire", func() {
		buf = msg.appendWire(buf[:0])
	})
	// Wire decode into a fresh struct each op, as the server does.
	encoded := msg.appendWire(nil)
	measure(out, prefix+"_decode_wire", func() {
		dst := freshWireLike(msg)
		r := wire.NewReader(encoded)
		dst.decodeWire(r)
		if err := r.Done(); err != nil {
			panic(err)
		}
	})
	// Gob encode on a persistent encoder, like one net/rpc connection.
	enc := gob.NewEncoder(io.Discard)
	measure(out, prefix+"_encode_gob", func() {
		if err := enc.Encode(msg); err != nil {
			panic(err)
		}
	})
	// Gob decode from a pre-encoded stream of the same value.
	var stream bytes.Buffer
	senc := gob.NewEncoder(&stream)
	for i := 0; i < codecBenchIters+1; i++ {
		if err := senc.Encode(msg); err != nil {
			panic(err)
		}
	}
	dec := gob.NewDecoder(bytes.NewReader(stream.Bytes()))
	measure(out, prefix+"_decode_gob", func() {
		dst := freshWireLike(msg)
		if err := dec.Decode(dst); err != nil {
			panic(err)
		}
	})
}

// measure runs fn codecBenchIters times and records ns/op, allocs/op, and
// bytes-allocated/op under name.
func measure(out map[string]float64, name string, fn func()) {
	fn() // warm up: pool fills, gob type descriptors transmit
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < codecBenchIters; i++ {
		fn()
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	out[name+"_ns"] = float64(wall.Nanoseconds()) / codecBenchIters
	out[name+"_allocs_per_op"] = float64(after.Mallocs-before.Mallocs) / codecBenchIters
	out[name+"_alloc_bytes_per_op"] = float64(after.TotalAlloc-before.TotalAlloc) / codecBenchIters
}
