// Per-peer health tracking: a small circuit breaker in front of each graph
// server so a dead shard fails fast instead of eating a full
// timeout-and-retry cycle on every training step, plus the health snapshot
// the client exposes for operators.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrPeerUnavailable wraps failures rejected by an open circuit breaker.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable (circuit open)")

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: all calls pass
	breakerOpen                         // tripped: calls fail fast until cooldown
	breakerHalfOpen                     // probing: one call allowed through
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// breaker is a per-peer circuit breaker. Threshold consecutive failures trip
// it open; after Cooldown it lets one probe through (half-open); the probe's
// outcome closes or re-opens it. A Threshold <= 0 disables the breaker.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	metrics   *Metrics // counts open transitions; may be nil
	state     breakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the circuit last tripped
	lastErr   error     // the failure that tripped it, for reporting
}

func newBreaker(threshold int, cooldown time.Duration, metrics *Metrics) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, metrics: metrics}
}

// allow reports whether a call may proceed now. When the breaker is open and
// the cooldown has elapsed it transitions to half-open and admits exactly
// one probe; concurrent callers during the probe are rejected.
func (b *breaker) allow(now time.Time) error {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return nil // the probe
		}
		return fmt.Errorf("%w: %v", ErrPeerUnavailable, b.lastErr)
	case breakerHalfOpen:
		return fmt.Errorf("%w: probe in flight", ErrPeerUnavailable)
	}
	return nil
}

// success records a completed call, closing the circuit.
func (b *breaker) success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.lastErr = nil
	b.mu.Unlock()
}

// failure records a transport-level failure; enough of them in a row trip
// the circuit. A failed half-open probe re-opens it immediately.
func (b *breaker) failure(now time.Time, err error) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = err
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.metrics.incBreakerOpen()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.metrics.incBreakerOpen()
		}
	case breakerOpen:
		// Already open (e.g. a call that started before the trip); keep the
		// original openedAt so the cooldown is not extended forever under
		// a stream of stragglers.
	}
}

// snapshot returns the current state for health reporting.
func (b *breaker) snapshot() (state breakerState, consecutiveFailures int, lastErr error) {
	if b == nil || b.threshold <= 0 {
		return breakerClosed, 0, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures, b.lastErr
}

// PeerHealth is one replica's view in a Client health report.
type PeerHealth struct {
	Peer      int    // global peer index
	Shard     int    // logical shard the replica serves
	Replica   int    // position within the replica group
	Connected bool   // an RPC connection is currently established
	Breaker   string // "closed", "open", or "half-open"
	Failures  int    // consecutive transport failures
	Stale     bool   // missed a write; out of the read rotation pending re-sync
	LastErr   string // failure that tripped (or is accumulating on) the breaker
}

// Health reports per-replica connection, breaker, and staleness state.
func (c *Client) Health() []PeerHealth {
	peers := c.allPeers()
	out := make([]PeerHealth, len(peers))
	for i, p := range peers {
		p.mu.Lock()
		connected := p.tc != nil
		p.mu.Unlock()
		st, fails, lastErr := p.br.snapshot()
		out[i] = PeerHealth{
			Peer: i, Shard: p.shard, Replica: p.replica,
			Connected: connected, Breaker: st.String(), Failures: fails,
			Stale: p.stale.Load(),
		}
		if lastErr != nil {
			out[i].LastErr = lastErr.Error()
		}
	}
	return out
}
