package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"

	"platod2gl/internal/wire"
)

// TestWireMethodPriorityTableComplete pins the priority table to the method
// table: a new wire method without an admission class would silently default
// to interactive (the zero Priority), quietly letting bulk traffic starve
// real interactive work. Force the author to choose.
func TestWireMethodPriorityTableComplete(t *testing.T) {
	names := make(map[string]bool, len(wireMethods))
	for _, m := range wireMethods {
		names[m.name] = true
		if _, ok := wireMethodPriorities[m.name]; !ok {
			t.Errorf("wire method %s has no entry in wireMethodPriorities", m.name)
		}
	}
	for name := range wireMethodPriorities {
		if !names[name] {
			t.Errorf("wireMethodPriorities lists %s, which is not a wire method", name)
		}
	}
}

func TestPriorityStringAndContext(t *testing.T) {
	for pri, want := range map[Priority]string{
		PriorityInteractive: "interactive",
		PriorityPrefetch:    "prefetch",
		PriorityBackground:  "background",
		Priority(9):         "unknown",
	} {
		if got := pri.String(); got != want {
			t.Errorf("Priority(%d).String() = %q, want %q", pri, got, want)
		}
	}
	if _, ok := PriorityFromContext(context.Background()); ok {
		t.Error("PriorityFromContext reported a priority on a bare context")
	}
	ctx := WithPriority(context.Background(), PriorityBackground)
	if p, ok := PriorityFromContext(ctx); !ok || p != PriorityBackground {
		t.Errorf("PriorityFromContext = (%v, %v), want (background, true)", p, ok)
	}
}

// TestOverloadedErrorRoundTrip: the typed error and its rpc.ServerError wire
// form must classify identically and both carry the retry-after hint —
// that is what keeps a shed from tripping breakers on either transport.
func TestOverloadedErrorRoundTrip(t *testing.T) {
	oe := &OverloadedError{Method: "SampleNeighbors", Priority: PriorityPrefetch, RetryAfter: 42 * time.Millisecond}
	if !IsOverloaded(oe) {
		t.Error("IsOverloaded(typed) = false")
	}
	if !IsOverloaded(fmt.Errorf("fan-out: %w", oe)) {
		t.Error("IsOverloaded(wrapped typed) = false")
	}
	if got := OverloadRetryAfter(oe); got != 42*time.Millisecond {
		t.Errorf("OverloadRetryAfter(typed) = %v, want 42ms", got)
	}
	// The form the error takes after crossing either transport.
	se := rpc.ServerError(oe.Error())
	if !IsOverloaded(se) {
		t.Errorf("IsOverloaded(rpc.ServerError %q) = false", se)
	}
	if got := OverloadRetryAfter(se); got != 42*time.Millisecond {
		t.Errorf("OverloadRetryAfter(rpc.ServerError) = %v, want 42ms", got)
	}
	if IsOverloaded(errors.New("cluster: something else")) {
		t.Error("IsOverloaded matched an unrelated error")
	}
	if got := OverloadRetryAfter(rpc.ServerError("no hint here")); got != 0 {
		t.Errorf("OverloadRetryAfter(no hint) = %v, want 0", got)
	}
}

func TestBudgetExpiredErrorRoundTrip(t *testing.T) {
	be := &BudgetExpiredError{Method: "Features", Budget: 3 * time.Millisecond, Expected: 20 * time.Millisecond}
	if !IsBudgetExpired(be) {
		t.Error("IsBudgetExpired(typed) = false")
	}
	se := rpc.ServerError(be.Error())
	if !IsBudgetExpired(se) {
		t.Errorf("IsBudgetExpired(rpc.ServerError %q) = false", se)
	}
	if IsBudgetExpired(errors.New("cluster: overloaded: x")) {
		t.Error("IsBudgetExpired matched an overload error")
	}
	if IsOverloaded(se) {
		t.Error("IsOverloaded matched a budget-expired error")
	}
}

// TestAdmissionGateDisabled: a nil gate (MaxConcurrent <= 0) admits
// everything and all methods are nil-safe.
func TestAdmissionGateDisabled(t *testing.T) {
	g := newAdmissionGate(AdmissionConfig{MaxConcurrent: 0}, nil)
	if g != nil {
		t.Fatal("MaxConcurrent 0 built a live gate")
	}
	if err := g.acquire("X", PriorityInteractive, 0); err != nil {
		t.Fatalf("nil gate acquire: %v", err)
	}
	g.release("X", time.Now()) // must not panic
}

func TestAdmissionImmediateAdmit(t *testing.T) {
	g := newAdmissionGate(AdmissionConfig{MaxConcurrent: 2}, nil)
	for i := 0; i < 2; i++ {
		if err := g.acquire("X", PriorityInteractive, 0); err != nil {
			t.Fatalf("acquire %d under capacity: %v", i, err)
		}
	}
	g.release("X", time.Now())
	g.release("X", time.Now())
}

// TestAdmissionQueueFullShed: with one slot held and the queue full, the
// next arrival is shed immediately with a retry-after hint.
func TestAdmissionQueueFullShed(t *testing.T) {
	g := newAdmissionGate(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, MaxQueueWait: 30 * time.Second}, nil)
	if err := g.acquire("X", PriorityInteractive, 0); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	queued := make(chan error, 1)
	go func() { queued <- g.acquire("X", PriorityInteractive, 0) }()
	// Wait for the second request to actually enter the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		n := len(g.queues[PriorityInteractive])
		g.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	err := g.acquire("X", PriorityInteractive, 0)
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("queue-full acquire = %v, want OverloadedError", err)
	}
	if oe.RetryAfter < minRetryAfter {
		t.Errorf("RetryAfter = %v, want >= %v", oe.RetryAfter, minRetryAfter)
	}
	// Releasing the held slot must admit the queued waiter.
	g.release("X", time.Now())
	select {
	case werr := <-queued:
		if werr != nil {
			t.Fatalf("queued waiter got %v, want admission", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never admitted after release")
	}
	g.release("X", time.Now())
}

// TestAdmissionQueueWaitShed: a waiter that outlives MaxQueueWait is shed
// as overloaded rather than parked forever.
func TestAdmissionQueueWaitShed(t *testing.T) {
	g := newAdmissionGate(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4, MaxQueueWait: 20 * time.Millisecond}, nil)
	if err := g.acquire("X", PriorityInteractive, 0); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	start := time.Now()
	err := g.acquire("X", PriorityInteractive, 0)
	if !IsOverloaded(err) {
		t.Fatalf("queued acquire = %v, want overloaded after wait cap", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("queue-wait shed took %v", time.Since(start))
	}
	// The timed-out waiter must have left the queue.
	g.mu.Lock()
	n := len(g.queues[PriorityInteractive])
	g.mu.Unlock()
	if n != 0 {
		t.Fatalf("queue holds %d waiters after timeout shed, want 0", n)
	}
	g.release("X", time.Now())
}

// TestAdmissionBackgroundYieldsFirst: with MaxConcurrent 4 the background
// cap is 1, so a single busy slot already starves further background work
// while interactive requests still sail through — the brownout ordering.
func TestAdmissionBackgroundYieldsFirst(t *testing.T) {
	g := newAdmissionGate(AdmissionConfig{MaxConcurrent: 4, MaxQueue: 4, MaxQueueWait: 15 * time.Millisecond}, nil)
	if err := g.acquire("Scrub", PriorityBackground, 0); err != nil {
		t.Fatalf("first background acquire: %v", err)
	}
	if err := g.acquire("Scrub", PriorityBackground, 0); !IsOverloaded(err) {
		t.Fatalf("second background acquire = %v, want shed at background cap", err)
	}
	if err := g.acquire("SampleNeighbors", PriorityInteractive, 0); err != nil {
		t.Fatalf("interactive acquire while background capped: %v", err)
	}
	g.release("SampleNeighbors", time.Now())
	g.release("Scrub", time.Now())
}

// TestAdmissionFastReject: once a method's observed service time exceeds a
// request's remaining budget, the gate sheds it before it burns a slot.
func TestAdmissionFastReject(t *testing.T) {
	g := newAdmissionGate(AdmissionConfig{MaxConcurrent: 4}, nil)
	// Seed the EWMA: one release observing ~50ms of service time.
	if err := g.acquire("Slow", PriorityInteractive, 0); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	g.release("Slow", time.Now().Add(-50*time.Millisecond))
	err := g.acquire("Slow", PriorityInteractive, 5*time.Millisecond)
	var be *BudgetExpiredError
	if !errors.As(err, &be) {
		t.Fatalf("acquire with 5ms budget against 50ms service time = %v, want BudgetExpiredError", err)
	}
	// No budget means no fast-reject, regardless of service time.
	if err := g.acquire("Slow", PriorityInteractive, 0); err != nil {
		t.Fatalf("acquire without budget: %v", err)
	}
	g.release("Slow", time.Now())
	// A generous budget admits too.
	if err := g.acquire("Slow", PriorityInteractive, time.Second); err != nil {
		t.Fatalf("acquire with ample budget: %v", err)
	}
	g.release("Slow", time.Now())
}

// TestAIMDLimiterSaturation: past the limit, acquire parks and then fails
// with errClientSaturated — the client's own backpressure signal.
func TestAIMDLimiterSaturation(t *testing.T) {
	l := newAIMDLimiter(nil)
	for i := 0; i < int(aimdMaxLimit); i++ {
		if err := l.acquire(time.Millisecond); err != nil {
			t.Fatalf("acquire %d under the limit: %v", i, err)
		}
	}
	if err := l.acquire(10 * time.Millisecond); !errors.Is(err, errClientSaturated) {
		t.Fatalf("acquire past the limit = %v, want errClientSaturated", err)
	}
	for i := 0; i < int(aimdMaxLimit); i++ {
		l.release(false)
	}
}

// TestAIMDLimiterAdaptation: multiplicative decrease on degrade, additive
// increase on success, clamped to [aimdMinLimit, aimdMaxLimit].
func TestAIMDLimiterAdaptation(t *testing.T) {
	l := newAIMDLimiter(nil)
	if got := l.current(); got != aimdMaxLimit {
		t.Fatalf("initial limit = %v, want %v", got, aimdMaxLimit)
	}
	if err := l.acquire(time.Second); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	l.release(true)
	if got := l.current(); got >= aimdMaxLimit || got < aimdMaxLimit*aimdBackoff-0.01 {
		t.Fatalf("limit after one degrade = %v, want ~%v", got, aimdMaxLimit*aimdBackoff)
	}
	// Hammer degrades: the limit must floor at aimdMinLimit, never below.
	for i := 0; i < 50; i++ {
		if err := l.acquire(time.Second); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		l.release(true)
	}
	if got := l.current(); got != aimdMinLimit {
		t.Fatalf("limit after degrade storm = %v, want floor %v", got, aimdMinLimit)
	}
	// Successes grow it back (additive, so just check direction).
	if err := l.acquire(time.Second); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	l.release(false)
	if got := l.current(); got <= aimdMinLimit {
		t.Fatalf("limit after success = %v, want > %v", got, aimdMinLimit)
	}
}

// TestAIMDLimiterHandoff: a release hands its slot to the oldest parked
// waiter instead of dropping inflight — no thundering herd, no lost slot.
func TestAIMDLimiterHandoff(t *testing.T) {
	l := &aimdLimiter{limit: 1}
	if err := l.acquire(time.Second); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	got := make(chan error, 1)
	go func() {
		defer wg.Done()
		got <- l.acquire(30 * time.Second)
	}()
	// Wait until the goroutine is parked in the waiter list.
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		n := len(l.waiters)
		l.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second acquire never parked")
		}
		time.Sleep(time.Millisecond)
	}
	l.release(false)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("parked waiter got %v, want handed-off slot", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked waiter never received the released slot")
	}
	wg.Wait()
	l.release(false)
}

// TestAdmissionControlPlaneExempt: with the gate fully saturated, control
// RPCs like Routing must still serve. Shedding them turns overload into an
// unrecoverable state — the priority inversion the brownout drill caught,
// where shedding ReleaseShard left writers parked and slots pinned.
func TestAdmissionControlPlaneExempt(t *testing.T) {
	for name := range admissionExempt {
		if _, ok := wireMethodPriorities[name]; !ok {
			t.Errorf("admissionExempt lists %s, which is not a wire method", name)
		}
	}
	s := NewServer(newTestService(t))
	s.SetAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, MaxQueueWait: 5 * time.Millisecond})
	if err := s.admit.acquire("Stats", PriorityInteractive, 0); err != nil {
		t.Fatalf("hold slot: %v", err)
	}
	id, ok := wireMethodID[ServiceName+".Routing"]
	if !ok {
		t.Fatal("Routing has no wire method id")
	}
	frame := []byte{wire.KindRequest, byte(id)}
	resp, method := s.handleWireFrame(frame, 2)
	if method != "Routing" {
		t.Errorf("method = %q, want Routing", method)
	}
	if len(resp) == 0 || resp[0] != wire.KindResponse {
		t.Fatalf("saturated gate shed an exempt control RPC: frame %q", resp)
	}
	s.admit.release("Stats", time.Now())
}

// TestHandleWireFrameEnvelopeOnV1: a negotiated-v1 connection must reject
// envelope frames — the negotiation said they would not be sent.
func TestHandleWireFrameEnvelopeOnV1(t *testing.T) {
	s := NewServer(newTestService(t))
	frame := []byte{wire.KindRequestEnv, 0x01, 0x00, 0x00} // pri=interactive, no budget, method 0
	resp, method := s.handleWireFrame(frame, 1)
	if method != "" {
		t.Errorf("method = %q, want empty for a rejected frame", method)
	}
	if len(resp) == 0 || resp[0] != wire.KindError {
		t.Fatalf("response kind = %v, want KindError", resp)
	}
	if !strings.Contains(string(resp), "envelope frame on a version-1 connection") {
		t.Errorf("error frame %q does not name the version violation", resp)
	}
}

// TestHandleWireFrameUnknownPriority: a priority byte past the known classes
// is a protocol error, not a silent default.
func TestHandleWireFrameUnknownPriority(t *testing.T) {
	s := NewServer(newTestService(t))
	frame := []byte{wire.KindRequestEnv, numPriorities + 1, 0x00, 0x00}
	resp, _ := s.handleWireFrame(frame, 2)
	if len(resp) == 0 || resp[0] != wire.KindError {
		t.Fatalf("response kind = %v, want KindError", resp)
	}
	if !strings.Contains(string(resp), "unknown priority class") {
		t.Errorf("error frame %q does not name the unknown priority", resp)
	}
}

// TestHandleWireFrameShedCrossesAsError: with a zero-capacity-equivalent
// gate (one slot held), a wire request frame comes back as an error frame
// whose text the client-side classifiers recognize as a shed.
func TestHandleWireFrameShedCrossesAsError(t *testing.T) {
	s := NewServer(newTestService(t))
	s.SetAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, MaxQueueWait: 10 * time.Millisecond})
	// Hold the only slot: the frame's request queues, outlives the 10ms wait
	// cap, and sheds.
	if err := s.admit.acquire("Stats", PriorityInteractive, 0); err != nil {
		t.Fatalf("hold slot: %v", err)
	}
	frame := []byte{wire.KindRequest, 0x00} // method id 0 — sheds before arg decode
	resp, _ := s.handleWireFrame(frame, 2)
	if len(resp) == 0 || resp[0] != wire.KindError {
		t.Fatalf("response kind = %v, want KindError", resp)
	}
	if !strings.Contains(string(resp), overloadedPrefix) {
		t.Errorf("shed frame %q does not carry the overloaded prefix", resp)
	}
	if !strings.Contains(string(resp), "retry after ") {
		t.Errorf("shed frame %q carries no retry-after hint", resp)
	}
	s.admit.release("Stats", time.Now())
}
