// Anti-entropy: detecting and repairing replica divergence that slipped
// past the synchronous write path. Replication here is client-driven
// fan-out — a network partition, a crashed-then-restored process, or plain
// disk corruption can leave one replica silently holding different state
// than its group, and nothing on the request path would ever notice (reads
// fail over, writes mark stale and move on). The scrubber closes that gap:
//
//   - Every store maintains cheap incremental state digests — an
//     order-independent XOR over per-entry checksums, O(1) per mutation —
//     for attributes (kvstore) and a walk-computed one for topology. The
//     ShardDigest RPC exposes them.
//   - A background Scrubber on each server periodically compares its own
//     digests against its replica peers', re-checking a few times with
//     delays so in-flight write skew settles before anything is declared
//     divergent. It also re-verifies the on-disk WAL (per-frame CRC) and
//     shutdown snapshot (CRC trailer), so latent disk corruption is found
//     before the next restart would load it.
//   - A mismatch is classified: if this replica disagrees with the healthy
//     majority (ties broken by WAL position), it is diverged and — with
//     AutoRepair — rebuilds itself from a healthy peer via the proven
//     catch-up path (SyncFromPeer with Attrs), converging byte-identically,
//     features included. Local disk corruption triggers the same repair:
//     the PostRepair hook lets the server rewrite a clean snapshot and WAL.
//
// Topology digests cover the edge set (type, src, dst), not weights: the
// sampling trees reconstruct weights through float summation whose rounding
// depends on insertion order, so weight bits are not replica-stable even
// when the logical state is identical. Weight divergence with an identical
// edge set would require a lost UpdateWeight, which the WAL-shipped
// catch-up path already covers.
package cluster

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// ---------------------------------------------------------------------------
// Digests.

// topoSeed keeps the topology digest domain-separated from attribute sums.
const topoSeed = 0x746f706f6c6f6779

// edgeDigest is one edge's contribution to the topology digest.
func edgeDigest(et graph.EdgeType, src, dst graph.VertexID) uint64 {
	h := mix64(topoSeed ^ uint64(et))
	h = mix64(h ^ uint64(src))
	return mix64(h ^ uint64(dst))
}

// topologyDigest XORs edgeDigest over the store's *distinct* edge set —
// optionally filtered to one logical shard — so identical edge sets produce
// identical digests regardless of insertion order or internal layout.
// Duplicate entries are digested once: the samtree can transiently hold an
// edge — or a whole source run — in more than one leaf, and which copies a
// walk reports is not replica-stable (a snapshot save/load cycle
// redistributes them), so multiplicity — like the weight bits — must stay
// out of the digest or byte-equal replicas would scrub as diverged. A
// repeated source is skipped outright: Neighbors is a key lookup, so both
// occurrences resolve to the same full list.
func topologyDigest(store storage.TopologyStore, shard, numShards int) (uint64, error) {
	types, err := relationTypes(store)
	if err != nil {
		return 0, err
	}
	var d uint64
	seenSrc := make(map[graph.VertexID]struct{})
	seenDst := make(map[graph.VertexID]struct{})
	for _, et := range types {
		clear(seenSrc)
		for _, src := range store.Sources(et) {
			if shard >= 0 && ShardOf(src, numShards) != shard {
				continue
			}
			if _, dup := seenSrc[src]; dup {
				continue
			}
			seenSrc[src] = struct{}{}
			nbrs, _ := store.Neighbors(src, et)
			clear(seenDst)
			for _, dst := range nbrs {
				if _, dup := seenDst[dst]; dup {
					continue
				}
				seenDst[dst] = struct{}{}
				d ^= edgeDigest(et, src, dst)
			}
		}
	}
	return d, nil
}

// DigestArgs requests a server's state digests. Shard < 0 digests the whole
// store; Shard >= 0 restricts to one logical shard under a NumShards hash
// space (used by the rebalance CLI to compare per-shard across owners).
type DigestArgs struct {
	Shard     int
	NumShards int
}

// DigestReply carries one server's state digests plus the context a
// comparator needs: convergence state (skip replicas mid-catch-up), WAL
// position (tie-break two-replica divergence), and the sync epoch.
type DigestReply struct {
	Topology  uint64 // order-independent edge-set digest
	Attrs     uint64 // attribute-store digest (features, labels, edge feats)
	NumEdges  int64
	WALSeq    uint64
	SyncEpoch uint64
	Ready     bool
}

// localDigest computes this server's digests under a write quiesce, so a
// digest is never torn mid-batch. The Pause barrier is the same one
// snapshots use; the walk is O(edges) but only the scrubber cadence pays it.
func (s *Service) localDigest(shard, numShards int) (DigestReply, error) {
	var reply DigestReply
	if shard >= 0 && numShards <= 0 {
		return reply, fmt.Errorf("cluster: shard digest needs a hash space (shard %d, numShards %d)", shard, numShards)
	}
	resume := s.Pause()
	defer resume()
	topo, err := topologyDigest(s.store, shard, numShards)
	if err != nil {
		return reply, err
	}
	reply.Topology = topo
	if s.attrs != nil {
		if shard < 0 {
			reply.Attrs = s.attrs.Digest()
		} else {
			reply.Attrs = s.attrs.DigestWhere(func(id graph.VertexID) bool {
				return ShardOf(id, numShards) == shard
			})
		}
	}
	reply.NumEdges = s.store.NumEdges()
	if s.syncWAL != nil {
		reply.WALSeq = s.syncWAL.Seq()
	}
	reply.SyncEpoch = s.syncEpoch.Load()
	reply.Ready = s.ready.Load()
	return reply, nil
}

// ShardDigestCtx fetches the digest of one logical shard through the fan-out
// client, riding the same routing, failover, and admission machinery as data
// reads. The serving tier's refresher polls it to detect shard-level change
// without walking edges over the wire.
func (c *Client) ShardDigestCtx(ctx context.Context, shard int) (DigestReply, error) {
	var reply DigestReply
	args := &DigestArgs{Shard: shard, NumShards: c.numShards()}
	err := c.readShard(ctx, shard, ServiceName+".ShardDigest", args, &reply)
	return reply, err
}

// ShardDigest serves this server's state digests. Served even while not
// ready — the Ready flag tells comparators to skip it — because a scrubber
// probing a catching-up sibling must not error out the whole round.
func (s *Service) ShardDigest(args *DigestArgs, reply *DigestReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("ShardDigest", start) }()
	defer guard("ShardDigest", &err)
	*reply, err = s.localDigest(args.Shard, args.NumShards)
	return err
}

// ---------------------------------------------------------------------------
// Whole-store attribute export (the repair path's feature transfer).

// AttrsArgs is empty.
type AttrsArgs struct{}

// AttrsReply carries the server's complete attribute state in the same
// shape shard migration uses, checksummed end-to-end.
type AttrsReply struct {
	Attrs ShardFeaturesReply
	Sum   uint64
}

// FetchAttrs exports the whole attribute store under a write quiesce.
// Repair pulls it after the WAL drain so a rebuilt replica converges on
// features too — the topology WAL does not cover them.
func (s *Service) FetchAttrs(_ *AttrsArgs, reply *AttrsReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("FetchAttrs", start) }()
	defer guard("FetchAttrs", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	resume := s.Pause()
	defer resume()
	if s.attrs != nil {
		r := &reply.Attrs
		s.attrs.RangeVertices(func(id graph.VertexID, features []float32, label int32, hasLabel bool) bool {
			r.Nodes = append(r.Nodes, id)
			r.RowLens = append(r.RowLens, int32(len(features)))
			r.Data = append(r.Data, features...)
			r.Labels = append(r.Labels, label)
			r.HasLabel = append(r.HasLabel, hasLabel)
			return true
		})
		s.attrs.RangeEdges(func(k kvstore.EdgeKey, features []float32) bool {
			r.EdgeKeys = append(r.EdgeKeys, k)
			r.EdgeLens = append(r.EdgeLens, int32(len(features)))
			r.EdgeData = append(r.EdgeData, features...)
			return true
		})
	}
	reply.Sum = checksumFeatures(&reply.Attrs)
	return nil
}

// ---------------------------------------------------------------------------
// The scrubber.

// ScrubConfig configures a Scrubber.
type ScrubConfig struct {
	// Interval between background rounds (Start). <= 0: 30s.
	Interval time.Duration
	// Self is this server's address as it appears in Peers; it is skipped
	// when fanning digest probes out.
	Self string
	// Peers are the replica group's member addresses (may include Self).
	// Empty: digest comparison is skipped and only disk checks run.
	Peers []string
	// Dial builds the transport to a peer address. nil: TCP.
	Dial func(addr string) Dialer
	// CallTimeout bounds each digest probe. 0: 10s. (Repair pulls use
	// RepairTimeout.)
	CallTimeout time.Duration
	// RepairTimeout bounds each repair RPC (snapshot fetches move the whole
	// store). 0: 2m.
	RepairTimeout time.Duration
	// SettleRetries re-checks a digest mismatch this many times before
	// declaring divergence, absorbing in-flight write skew. <= 0: 3.
	SettleRetries int
	// SettleDelay is the wait between settle re-checks. <= 0: 100ms.
	SettleDelay time.Duration
	// WALPath, when set, is CRC-verified on disk every round.
	WALPath string
	// SnapshotPath, when set and existing, is CRC-verified every round.
	SnapshotPath string
	// AutoRepair rebuilds this replica from a healthy peer when a round
	// finds it diverged or locally corrupt. Off: rounds only report.
	AutoRepair bool
	// PostRepair runs after a successful repair — the server binary uses it
	// to write a fresh snapshot and reset the WAL so the repaired state is
	// also what disk recovers to.
	PostRepair func() error
	// Metrics receives scrub counters. May be nil.
	Metrics *Metrics
	// Logf receives human-oriented scrub lines. nil: silent.
	Logf func(format string, args ...any)
}

// PeerDigest is one peer's answer (or failure) in a scrub round.
type PeerDigest struct {
	Addr   string
	Err    string // probe failure ("" on success)
	Digest DigestReply
}

// RoundReport is one scrub round's outcome, gob-encodable for the Scrub RPC.
type RoundReport struct {
	DurationNanos int64
	Local         DigestReply
	Peers         []PeerDigest
	DiskErrors    []string // on-disk CRC failures found this round
	Diverged      bool     // this replica disagrees with the healthy majority
	Corrupt       bool     // local disk corruption detected
	RepairPeer    string   // peer a repair pulled from ("" when none ran)
	Repaired      bool
	RepairErr     string
	RepairBytes   int64
}

// healthy reports whether the round found nothing wrong.
func (r *RoundReport) healthy() bool {
	return !r.Diverged && !r.Corrupt && len(r.DiskErrors) == 0
}

// Scrubber runs anti-entropy rounds for one service: digest comparison
// across its replica group, on-disk CRC verification, and (optionally)
// self-repair from a healthy peer.
type Scrubber struct {
	svc *Service
	cfg ScrubConfig

	mu      sync.Mutex // serializes rounds (background loop vs Scrub RPC)
	last    atomic.Pointer[RoundReport]
	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool
}

// NewScrubber builds a scrubber for svc. Call Start for the background
// loop, or RunRound (directly or via the Scrub RPC) for on-demand rounds.
func NewScrubber(svc *Service, cfg ScrubConfig) *Scrubber {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.RepairTimeout <= 0 {
		cfg.RepairTimeout = 2 * time.Minute
	}
	if cfg.SettleRetries <= 0 {
		cfg.SettleRetries = 3
	}
	if cfg.SettleDelay <= 0 {
		cfg.SettleDelay = 100 * time.Millisecond
	}
	return &Scrubber{svc: svc, cfg: cfg}
}

func (sc *Scrubber) logf(format string, args ...any) {
	if sc.cfg.Logf != nil {
		sc.cfg.Logf(format, args...)
	}
}

func (sc *Scrubber) dialer(addr string) Dialer {
	if sc.cfg.Dial != nil {
		return sc.cfg.Dial(addr)
	}
	return TCPDialer(addr, sc.cfg.CallTimeout)
}

// Start launches the background scrub loop. Idempotent.
func (sc *Scrubber) Start() {
	sc.mu.Lock()
	if sc.started {
		sc.mu.Unlock()
		return
	}
	sc.started = true
	sc.stopCh = make(chan struct{})
	sc.doneCh = make(chan struct{})
	stop, done := sc.stopCh, sc.doneCh
	sc.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(sc.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sc.RunRound()
			}
		}
	}()
}

// Stop halts the background loop and waits for an in-flight round.
func (sc *Scrubber) Stop() {
	sc.mu.Lock()
	if !sc.started {
		sc.mu.Unlock()
		return
	}
	sc.started = false
	close(sc.stopCh)
	done := sc.doneCh
	sc.mu.Unlock()
	<-done
}

// LastReport returns the most recent round's report (zero before any round).
func (sc *Scrubber) LastReport() RoundReport {
	if r := sc.last.Load(); r != nil {
		return *r
	}
	return RoundReport{}
}

// RunRound executes one scrub round and returns its report. Rounds are
// serialized: a Scrub RPC arriving mid-background-round waits.
func (sc *Scrubber) RunRound() RoundReport {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	start := time.Now()
	var rep RoundReport

	sc.checkDisk(&rep)
	sc.compareDigests(&rep)

	// Latency covers detection only; a triggered repair is accounted by its
	// own counters.
	sc.cfg.Metrics.observeScrub(start)
	sc.cfg.Metrics.incScrubRound()

	if (rep.Diverged || rep.Corrupt) && sc.cfg.AutoRepair {
		sc.repair(&rep)
	}
	rep.DurationNanos = int64(time.Since(start))
	sc.last.Store(&rep)
	if !rep.healthy() || rep.Repaired {
		sc.logf("scrub: diverged=%v corrupt=%v disk_errors=%d repaired=%v repair_peer=%q repair_err=%q",
			rep.Diverged, rep.Corrupt, len(rep.DiskErrors), rep.Repaired, rep.RepairPeer, rep.RepairErr)
	}
	return rep
}

// checkDisk re-verifies the on-disk WAL frames and snapshot trailer.
func (sc *Scrubber) checkDisk(rep *RoundReport) {
	if p := sc.cfg.WALPath; p != "" {
		if vr, err := eventlog.Verify(p); err != nil {
			if !os.IsNotExist(err) {
				rep.DiskErrors = append(rep.DiskErrors, fmt.Sprintf("wal %s: %v", p, err))
			}
		} else if vr.Corrupt {
			rep.Corrupt = true
			rep.DiskErrors = append(rep.DiskErrors, fmt.Sprintf("wal %s: corrupt frame at offset %d (last good seq %d)", p, vr.BadOffset, vr.LastSeq))
			sc.cfg.Metrics.incCorruptionDetected()
		}
	}
	if p := sc.cfg.SnapshotPath; p != "" {
		f, err := os.Open(p)
		switch {
		case os.IsNotExist(err):
			// No snapshot yet: nothing to verify.
		case err != nil:
			rep.DiskErrors = append(rep.DiskErrors, fmt.Sprintf("snapshot %s: %v", p, err))
		default:
			verr := storage.VerifySnapshot(f)
			f.Close()
			if verr != nil {
				rep.Corrupt = true
				rep.DiskErrors = append(rep.DiskErrors, fmt.Sprintf("snapshot %s: %v", p, verr))
				sc.cfg.Metrics.incCorruptionDetected()
			}
		}
	}
}

// digestKey is the comparable pair replicas are grouped by.
type digestKey struct{ topo, attrs uint64 }

// compareDigests probes the replica group and classifies any persistent
// mismatch. A transient mismatch (writes in flight during the probe) is
// absorbed by re-checking SettleRetries times: divergence is only declared
// when the group still disagrees after the skew had time to settle.
func (sc *Scrubber) compareDigests(rep *RoundReport) {
	if !sc.svc.ready.Load() {
		return // mid-catch-up: nothing meaningful to compare yet
	}
	local, err := sc.svc.localDigest(-1, 0)
	if err != nil {
		rep.DiskErrors = append(rep.DiskErrors, fmt.Sprintf("local digest: %v", err))
		return
	}
	rep.Local = local
	if len(sc.cfg.Peers) == 0 {
		return // nothing to compare against; the digest still reports state
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if local, err = sc.svc.localDigest(-1, 0); err != nil {
				rep.DiskErrors = append(rep.DiskErrors, fmt.Sprintf("local digest: %v", err))
				return
			}
		}
		peers := sc.probePeers()
		rep.Local, rep.Peers = local, peers
		if digestsAgree(local, peers) {
			rep.Diverged = false
			return
		}
		if attempt >= sc.cfg.SettleRetries {
			break
		}
		time.Sleep(sc.cfg.SettleDelay)
	}
	sc.cfg.Metrics.incDigestMismatch()
	sc.classify(rep)
}

// probePeers fetches every peer's whole-store digest.
func (sc *Scrubber) probePeers() []PeerDigest {
	var out []PeerDigest
	for _, addr := range sc.cfg.Peers {
		if addr == sc.cfg.Self {
			continue
		}
		pd := PeerDigest{Addr: addr}
		if err := roundTrip(sc.dialer(addr), "ShardDigest",
			&DigestArgs{Shard: -1}, &pd.Digest, sc.cfg.CallTimeout); err != nil {
			pd.Err = err.Error()
		}
		out = append(out, pd)
	}
	return out
}

// digestsAgree reports whether every reachable, ready peer matches local.
func digestsAgree(local DigestReply, peers []PeerDigest) bool {
	for _, p := range peers {
		if p.Err != "" || !p.Digest.Ready {
			continue // unreachable or catching up: not evidence either way
		}
		if p.Digest.Topology != local.Topology || p.Digest.Attrs != local.Attrs {
			return false
		}
	}
	return true
}

// classify decides, after a persistent mismatch, whether this replica is
// the diverged one: the digest value held by the majority of ready group
// members (local included) is presumed healthy; with no majority — the
// two-replica case — the member with the higher WAL position wins, since a
// partitioned replica missed appends rather than invented them. An exact
// WAL tie falls through to a deterministic address-order tie-break so the
// group converges instead of splitting forever.
func (sc *Scrubber) classify(rep *RoundReport) {
	localKey := digestKey{rep.Local.Topology, rep.Local.Attrs}
	votes := map[digestKey]int{localKey: 1}
	bestPeer := map[digestKey]string{}
	var maxPeerWAL uint64
	var maxPeerKey digestKey
	var maxPeerAddr string
	for _, p := range rep.Peers {
		if p.Err != "" || !p.Digest.Ready {
			continue
		}
		k := digestKey{p.Digest.Topology, p.Digest.Attrs}
		votes[k]++
		if _, ok := bestPeer[k]; !ok || p.Digest.WALSeq > maxPeerWAL {
			bestPeer[k] = p.Addr
		}
		if p.Digest.WALSeq >= maxPeerWAL {
			maxPeerWAL, maxPeerKey, maxPeerAddr = p.Digest.WALSeq, k, p.Addr
		}
	}
	// Deterministic winner: most votes, ties by key order.
	keys := make([]digestKey, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if votes[keys[i]] != votes[keys[j]] {
			return votes[keys[i]] > votes[keys[j]]
		}
		if keys[i].topo != keys[j].topo {
			return keys[i].topo < keys[j].topo
		}
		return keys[i].attrs < keys[j].attrs
	})
	winner := keys[0]
	if votes[winner] > 1 && winner == localKey {
		return // local agrees with the majority: a peer is diverged, its own scrubber repairs it
	}
	if votes[winner] == 1 {
		// No majority (the R=2 case, or total disagreement): trust the
		// highest WAL position.
		if maxPeerAddr == "" || maxPeerWAL < rep.Local.WALSeq {
			return // local is strictly the most advanced copy: hold state, let the peer repair
		}
		if maxPeerWAL == rep.Local.WALSeq {
			// Exact WAL tie with differing digests: both sides applied
			// every write but in different interleavings (racing batches on
			// the fan-out), so neither is "more correct" — converging on
			// either beats a permanent split. The tied member with the
			// lexically smallest address holds; everyone else rebuilds from
			// it. Every scrubber computes the same winner independently, so
			// exactly one side yields without coordination.
			tieAddr, tieKey := sc.cfg.Self, localKey
			for _, p := range rep.Peers {
				if p.Err != "" || !p.Digest.Ready || p.Digest.WALSeq != rep.Local.WALSeq {
					continue
				}
				if p.Addr < tieAddr {
					tieAddr, tieKey = p.Addr, digestKey{p.Digest.Topology, p.Digest.Attrs}
				}
			}
			if tieAddr == sc.cfg.Self || tieKey == localKey {
				return // local holds (or already matches the tie winner)
			}
			rep.Diverged = true
			rep.RepairPeer = tieAddr
			return
		}
		winner = maxPeerKey
	}
	rep.Diverged = true
	rep.RepairPeer = bestPeer[winner]
	if rep.RepairPeer == "" {
		rep.RepairPeer = maxPeerAddr
	}
}

// pickRepairPeer returns the peer a corruption-only repair pulls from: any
// reachable ready peer (they all agree when nothing diverged).
func (sc *Scrubber) pickRepairPeer(rep *RoundReport) string {
	if rep.RepairPeer != "" {
		return rep.RepairPeer
	}
	peers := rep.Peers
	if len(peers) == 0 {
		peers = sc.probePeers()
	}
	for _, p := range peers {
		if p.Err == "" && p.Digest.Ready {
			return p.Addr
		}
	}
	return ""
}

// repair rebuilds this replica from a healthy peer: reset the local stores
// (Load and replay merge, so stale local state must go first), then run the
// full catch-up path with attribute transfer, then let the owner rewrite
// its durable state via PostRepair.
func (sc *Scrubber) repair(rep *RoundReport) {
	peer := sc.pickRepairPeer(rep)
	if peer == "" {
		rep.RepairErr = "no healthy peer to repair from"
		sc.logf("scrub: repair needed but %s", rep.RepairErr)
		return
	}
	rep.RepairPeer = peer
	sc.cfg.Metrics.incRepairTriggered()
	sc.logf("scrub: repairing from %s (diverged=%v corrupt=%v)", peer, rep.Diverged, rep.Corrupt)

	svc := sc.svc
	// Take the replica out of service before wiping it; SyncFromPeer keeps
	// it not-ready until converged.
	svc.BeginCatchUp()
	resume := svc.Pause()
	if r, ok := svc.store.(interface{ Reset() }); ok {
		r.Reset()
	} else {
		resume()
		rep.RepairErr = fmt.Sprintf("store %T cannot be reset for repair", svc.store)
		return
	}
	if svc.attrs != nil {
		svc.attrs.Reset()
	}
	resume()

	stats, err := SyncFromPeerStats(svc, sc.dialer(peer), SyncOptions{
		CallTimeout: sc.cfg.RepairTimeout,
		Attrs:       true,
		Metrics:     sc.cfg.Metrics,
	})
	if err != nil {
		rep.RepairErr = err.Error()
		sc.logf("scrub: repair from %s failed (replica stays out of rotation; next round retries): %v", peer, err)
		return
	}
	rep.RepairBytes = stats.SnapshotBytes + stats.AttrBytes
	sc.cfg.Metrics.addRepairBytes(rep.RepairBytes)
	if sc.cfg.PostRepair != nil {
		if err := sc.cfg.PostRepair(); err != nil {
			rep.RepairErr = fmt.Sprintf("post-repair: %v", err)
			sc.logf("scrub: post-repair hook failed: %v", err)
			return
		}
	}
	rep.Repaired = true
	sc.logf("scrub: repaired from %s (%d bytes)", peer, rep.RepairBytes)
}

// ---------------------------------------------------------------------------
// The Scrub RPC.

// SetScrubber installs sc as the scrubber the Scrub RPC drives. Call before
// serving.
func (s *Service) SetScrubber(sc *Scrubber) { s.scrubber.Store(sc) }

// ScrubArgs is empty.
type ScrubArgs struct{}

// ScrubReply carries the on-demand round's report.
type ScrubReply struct {
	Report RoundReport
}

// Scrub runs one scrub round on demand (the rebalance CLI's verify verb and
// tests use it) and returns the report.
func (s *Service) Scrub(_ *ScrubArgs, reply *ScrubReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("Scrub", start) }()
	defer guard("Scrub", &err)
	sc := s.scrubber.Load()
	if sc == nil {
		return fmt.Errorf("cluster: no scrubber installed on this server")
	}
	reply.Report = sc.RunRound()
	return nil
}
