// In-process cluster harness: N graph servers connected through in-memory
// pipes, with per-shard stop/restart and pluggable connection wrapping so
// chaos tests (internal/faultinject) can disturb the links. This simulates
// the paper's 54-storage-server deployment inside one test process.
//
// Servers are addressable as "mem://<i>" pseudo-addresses, so the routing
// layer (shard maps carry addresses, PullShard dials its source by address)
// and the migration Driver work unchanged over in-memory pipes, and
// AddServer grows the cluster N→N+1 mid-test — the in-process mirror of
// booting a new platod2gl-server with -join.
package cluster

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// LocalOptions configure an in-process cluster.
type LocalOptions struct {
	// Client tunes the fan-out client's fault tolerance.
	Client Options
	// WrapConn, if set, wraps each new client-side connection to shard i —
	// the hook where faultinject.Injector.WrapConn plugs in.
	WrapConn func(shard int, c net.Conn) net.Conn
	// ServiceFactory builds shard i's service; called at startup and again
	// on RestartShard. When nil, StoreFactory must be set and the service
	// is NewService(StoreFactory(i)).
	ServiceFactory func(i int) *Service
	// StoreFactory builds shard i's stores when ServiceFactory is nil.
	StoreFactory func(i int) (storage.TopologyStore, *kvstore.Store)
}

// LocalCluster is a restartable, growable in-process cluster.
type LocalCluster struct {
	opts   LocalOptions
	client *Client
	mu     sync.RWMutex // guards shards growth (AddServer)
	shards []*localShard
}

// localShard hosts one in-process graph server. Stopping it severs every
// live connection and fails future dials until restart; the server's state
// is discarded on restart (the service factory decides what, if anything,
// is recovered — e.g. by replaying a WAL).
type localShard struct {
	idx  int
	mu   sync.Mutex
	srv  *Server
	svc  *Service
	down bool
	// conns holds both endpoints of every live pipe so StopShard can sever
	// them (unblocking client calls with EOF, terminating server goroutines).
	conns []net.Conn
}

func (sh *localShard) dial(wrap func(int, net.Conn) net.Conn) (net.Conn, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down {
		return nil, fmt.Errorf("cluster: local shard %d is down", sh.idx)
	}
	cliConn, srvConn := net.Pipe()
	var cli net.Conn = cliConn
	if wrap != nil {
		cli = wrap(sh.idx, cliConn)
	}
	sh.conns = append(sh.conns, cli, srvConn)
	go sh.srv.ServeConn(srvConn)
	return cli, nil
}

func (sh *localShard) stop() {
	sh.mu.Lock()
	sh.down = true
	svc := sh.svc
	conns := sh.conns
	sh.conns = nil
	sh.mu.Unlock()
	// Release any parked shard gates before severing connections: a write
	// goroutine parked on a gate would otherwise outlive the "crashed"
	// server (its TTL timer fires into a dead service), and the migration
	// the park served died with the process anyway.
	if svc != nil {
		svc.ReleaseAllShards()
	}
	for _, c := range conns {
		c.Close()
	}
}

func (sh *localShard) restart(svc *Service) {
	sh.mu.Lock()
	old := sh.svc
	sh.svc = svc
	sh.srv = NewServer(svc)
	sh.down = false
	sh.mu.Unlock()
	if old != nil && old != svc {
		old.ReleaseAllShards() // a restart without a prior stop must not leak parked writes
	}
}

// LocalAddr returns server i's pseudo-address ("mem://<i>") — what shard
// maps list for in-process servers.
func LocalAddr(i int) string { return fmt.Sprintf("mem://%d", i) }

// parseLocalAddr inverts LocalAddr.
func parseLocalAddr(addr string) (int, error) {
	rest, ok := strings.CutPrefix(addr, "mem://")
	if !ok {
		return 0, fmt.Errorf("cluster: %q is not a local pseudo-address", addr)
	}
	i, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("cluster: bad local pseudo-address %q", addr)
	}
	return i, nil
}

// NewLocalClusterOptions spins up n in-process graph servers and a
// fault-tolerant client wired to them through (optionally wrapped)
// in-memory pipes. Dead shard connections are redialed automatically, so
// StopShard + RestartShard round-trips are transparent to the client modulo
// the errors surfaced while the shard was down. With Client.Replicas = R,
// index i is a global peer index (logical shard i/R, replica i%R) — the
// Stop/Restart/Service methods then address individual replicas.
//
// Every server advertises LocalAddr(i) and can dial its siblings by that
// address, so the shard-migration protocol runs unmodified in-process.
func NewLocalClusterOptions(n int, opts LocalOptions) *LocalCluster {
	if opts.ServiceFactory == nil {
		if opts.StoreFactory == nil {
			panic("cluster: LocalOptions needs ServiceFactory or StoreFactory")
		}
		sf := opts.StoreFactory
		opts.ServiceFactory = func(i int) *Service { return NewService(sf(i)) }
	}
	lc := &LocalCluster{opts: opts, shards: make([]*localShard, n)}
	if opts.Client.DialServer == nil {
		opts.Client.DialServer = func(addr string) Dialer {
			return lc.DialAddr(addr)
		}
	}
	lc.opts = opts
	dialers := make([]Dialer, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		sh := &localShard{idx: i}
		sh.restart(lc.newService(i))
		lc.shards[i] = sh
		dialers[i] = func() (net.Conn, error) { return sh.dial(opts.WrapConn) }
		addrs[i] = LocalAddr(i)
	}
	lc.client = NewClientOptions(nil, dialers, opts.Client)
	lc.client.SetPeerAddrs(addrs)
	return lc
}

// newService builds server i's service with its local address and the
// mem:// dial resolver wired in.
func (lc *LocalCluster) newService(i int) *Service {
	svc := lc.opts.ServiceFactory(i)
	svc.SetAdvertise(LocalAddr(i))
	svc.SetDialResolver(func(addr string) Dialer { return lc.DialAddr(addr) })
	return svc
}

// shard returns server i's host, or nil when i is out of range.
func (lc *LocalCluster) shard(i int) *localShard {
	lc.mu.RLock()
	defer lc.mu.RUnlock()
	if i < 0 || i >= len(lc.shards) {
		return nil
	}
	return lc.shards[i]
}

// Client returns the cluster's fan-out client.
func (lc *LocalCluster) Client() *Client { return lc.client }

// NumServers returns the current server count (grows with AddServer).
func (lc *LocalCluster) NumServers() int {
	lc.mu.RLock()
	defer lc.mu.RUnlock()
	return len(lc.shards)
}

// Dialer returns a Dialer to peer i through the cluster's in-memory pipes,
// wrapped like client connections — what a restarted replica passes to
// SyncFromPeer to catch up from a live sibling.
func (lc *LocalCluster) Dialer(i int) Dialer {
	sh := lc.shard(i)
	return func() (net.Conn, error) {
		if sh == nil {
			return nil, fmt.Errorf("cluster: no local server %d", i)
		}
		return sh.dial(lc.opts.WrapConn)
	}
}

// DialAddr returns a Dialer to the server advertising the given mem://
// pseudo-address. Resolution happens per dial, so an address minted by
// AddServer works even if the Dialer was built earlier.
func (lc *LocalCluster) DialAddr(addr string) Dialer {
	return func() (net.Conn, error) {
		i, err := parseLocalAddr(addr)
		if err != nil {
			return nil, err
		}
		sh := lc.shard(i)
		if sh == nil {
			return nil, fmt.Errorf("cluster: no local server at %s", addr)
		}
		return sh.dial(lc.opts.WrapConn)
	}
}

// AddServer boots one more in-process graph server (index NumServers) and
// returns its pseudo-address — the harness analogue of starting a new
// platod2gl-server -join. The new server owns no shards until a migration
// Driver assigns it some (AddServer + Rebalance, or Grow).
func (lc *LocalCluster) AddServer() string {
	lc.mu.Lock()
	i := len(lc.shards)
	sh := &localShard{idx: i}
	sh.restart(lc.newService(i))
	lc.shards = append(lc.shards, sh)
	lc.mu.Unlock()
	return LocalAddr(i)
}

// Service returns shard i's current service (nil while stopped).
func (lc *LocalCluster) Service(i int) *Service {
	sh := lc.shard(i)
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down {
		return nil
	}
	return sh.svc
}

// StopShard simulates a shard crash: every live connection is severed and
// new dials fail until RestartShard.
func (lc *LocalCluster) StopShard(i int) { lc.shard(i).stop() }

// RestartShard brings shard i back with a fresh service from the factory
// (which may recover state from a snapshot or WAL).
func (lc *LocalCluster) RestartShard(i int) {
	lc.shard(i).restart(lc.newService(i))
}

// Shutdown closes the client and stops every shard.
func (lc *LocalCluster) Shutdown() {
	lc.client.Close()
	lc.mu.RLock()
	shards := append([]*localShard(nil), lc.shards...)
	lc.mu.RUnlock()
	for _, sh := range shards {
		sh.stop()
	}
}

// NewLocalCluster spins up n in-process graph servers connected through
// in-memory pipes and returns a client plus a shutdown function, with
// legacy (no-retry) client semantics. factory builds each server's
// topology store.
func NewLocalCluster(n int, factory func(i int) (storage.TopologyStore, *kvstore.Store)) (*Client, func()) {
	lc := NewLocalClusterOptions(n, LocalOptions{StoreFactory: factory})
	return lc.Client(), lc.Shutdown
}
