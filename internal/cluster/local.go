// In-process cluster harness: N graph servers connected through in-memory
// pipes, with per-shard stop/restart and pluggable connection wrapping so
// chaos tests (internal/faultinject) can disturb the links. This simulates
// the paper's 54-storage-server deployment inside one test process.
package cluster

import (
	"fmt"
	"net"
	"sync"

	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// LocalOptions configure an in-process cluster.
type LocalOptions struct {
	// Client tunes the fan-out client's fault tolerance.
	Client Options
	// WrapConn, if set, wraps each new client-side connection to shard i —
	// the hook where faultinject.Injector.WrapConn plugs in.
	WrapConn func(shard int, c net.Conn) net.Conn
	// ServiceFactory builds shard i's service; called at startup and again
	// on RestartShard. When nil, StoreFactory must be set and the service
	// is NewService(StoreFactory(i)).
	ServiceFactory func(i int) *Service
	// StoreFactory builds shard i's stores when ServiceFactory is nil.
	StoreFactory func(i int) (storage.TopologyStore, *kvstore.Store)
}

// LocalCluster is a restartable in-process cluster.
type LocalCluster struct {
	opts   LocalOptions
	client *Client
	shards []*localShard
}

// localShard hosts one in-process graph server. Stopping it severs every
// live connection and fails future dials until restart; the server's state
// is discarded on restart (the service factory decides what, if anything,
// is recovered — e.g. by replaying a WAL).
type localShard struct {
	idx  int
	mu   sync.Mutex
	srv  *Server
	svc  *Service
	down bool
	// conns holds both endpoints of every live pipe so StopShard can sever
	// them (unblocking client calls with EOF, terminating server goroutines).
	conns []net.Conn
}

func (sh *localShard) dial(wrap func(int, net.Conn) net.Conn) (net.Conn, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down {
		return nil, fmt.Errorf("cluster: local shard %d is down", sh.idx)
	}
	cliConn, srvConn := net.Pipe()
	var cli net.Conn = cliConn
	if wrap != nil {
		cli = wrap(sh.idx, cliConn)
	}
	sh.conns = append(sh.conns, cli, srvConn)
	go sh.srv.ServeConn(srvConn)
	return cli, nil
}

func (sh *localShard) stop() {
	sh.mu.Lock()
	sh.down = true
	conns := sh.conns
	sh.conns = nil
	sh.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (sh *localShard) restart(svc *Service) {
	sh.mu.Lock()
	sh.svc = svc
	sh.srv = NewServer(svc)
	sh.down = false
	sh.mu.Unlock()
}

// NewLocalClusterOptions spins up n in-process graph servers and a
// fault-tolerant client wired to them through (optionally wrapped)
// in-memory pipes. Dead shard connections are redialed automatically, so
// StopShard + RestartShard round-trips are transparent to the client modulo
// the errors surfaced while the shard was down. With Client.Replicas = R,
// index i is a global peer index (logical shard i/R, replica i%R) — the
// Stop/Restart/Service methods then address individual replicas.
func NewLocalClusterOptions(n int, opts LocalOptions) *LocalCluster {
	if opts.ServiceFactory == nil {
		if opts.StoreFactory == nil {
			panic("cluster: LocalOptions needs ServiceFactory or StoreFactory")
		}
		sf := opts.StoreFactory
		opts.ServiceFactory = func(i int) *Service { return NewService(sf(i)) }
	}
	lc := &LocalCluster{opts: opts, shards: make([]*localShard, n)}
	dialers := make([]Dialer, n)
	for i := 0; i < n; i++ {
		svc := opts.ServiceFactory(i)
		sh := &localShard{idx: i, svc: svc, srv: NewServer(svc)}
		lc.shards[i] = sh
		dialers[i] = func() (net.Conn, error) { return sh.dial(opts.WrapConn) }
	}
	lc.client = NewClientOptions(nil, dialers, opts.Client)
	return lc
}

// Client returns the cluster's fan-out client.
func (lc *LocalCluster) Client() *Client { return lc.client }

// Dialer returns a Dialer to peer i through the cluster's in-memory pipes,
// wrapped like client connections — what a restarted replica passes to
// SyncFromPeer to catch up from a live sibling.
func (lc *LocalCluster) Dialer(i int) Dialer {
	sh := lc.shards[i]
	return func() (net.Conn, error) { return sh.dial(lc.opts.WrapConn) }
}

// Service returns shard i's current service (nil while stopped).
func (lc *LocalCluster) Service(i int) *Service {
	sh := lc.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.down {
		return nil
	}
	return sh.svc
}

// StopShard simulates a shard crash: every live connection is severed and
// new dials fail until RestartShard.
func (lc *LocalCluster) StopShard(i int) { lc.shards[i].stop() }

// RestartShard brings shard i back with a fresh service from the factory
// (which may recover state from a snapshot or WAL).
func (lc *LocalCluster) RestartShard(i int) {
	lc.shards[i].restart(lc.opts.ServiceFactory(i))
}

// Shutdown closes the client and stops every shard.
func (lc *LocalCluster) Shutdown() {
	lc.client.Close()
	for _, sh := range lc.shards {
		sh.stop()
	}
}

// NewLocalCluster spins up n in-process graph servers connected through
// in-memory pipes and returns a client plus a shutdown function, with
// legacy (no-retry) client semantics. factory builds each server's
// topology store.
func NewLocalCluster(n int, factory func(i int) (storage.TopologyStore, *kvstore.Store)) (*Client, func()) {
	lc := NewLocalClusterOptions(n, LocalOptions{StoreFactory: factory})
	return lc.Client(), lc.Shutdown
}
