// Migration chaos suite: live shard migration and N→N+1 elastic growth
// under write load, plus seeded failure drills at every dangerous moment of
// a migration — source killed mid-copy, destination killed mid-WAL-replay,
// abort just before cutover. The invariants: client operations never fail
// (writes park or re-route, never error), the post-migration cluster's
// per-server topology is byte-identical to a single-store oracle projected
// by the final shard map, and every failed migration aborts back to the old
// placement with the staged copy dropped and zero data loss.
package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// migHarness is a WAL-backed LocalCluster with restart-replays-WAL server
// semantics (matching the platod2gl-server binary) plus a single-store
// oracle for convergence checks.
type migHarness struct {
	t       *testing.T
	lc      *LocalCluster
	metrics *Metrics
	oracle  *storage.DynamicStore

	mu     sync.Mutex
	stores map[int]*storage.DynamicStore
	wals   map[int]*eventlog.Writer
}

func newMigHarness(t *testing.T, n int, metrics *Metrics) *migHarness {
	t.Helper()
	dir := t.TempDir()
	storeOpts := storage.Options{Tree: core.Options{Capacity: 16}}
	h := &migHarness{
		t: t, metrics: metrics,
		oracle: storage.NewDynamicStore(storeOpts),
		stores: map[int]*storage.DynamicStore{},
		wals:   map[int]*eventlog.Writer{},
	}
	walPath := func(i int) string { return filepath.Join(dir, fmt.Sprintf("server%d.wal", i)) }
	factory := func(i int) *Service {
		h.mu.Lock()
		if old := h.wals[i]; old != nil {
			old.Close()
		}
		h.mu.Unlock()
		store := storage.NewDynamicStore(storeOpts)
		svc := NewService(store, kvstore.New())
		svc.SetMetrics(metrics)
		// Restart semantics match the server binary: replay the surviving
		// WAL (topology + at-most-once identities), then keep appending.
		if _, err := os.Stat(walPath(i)); err == nil {
			if _, err := eventlog.ReplayBatches(walPath(i), func(rec eventlog.BatchRecord) error {
				store.ApplyBatch(rec.Events)
				svc.MarkApplied(rec.ClientID, rec.ClientSeq)
				return nil
			}); err != nil {
				t.Errorf("server %d wal replay: %v", i, err)
			}
		}
		w, err := eventlog.Create(walPath(i))
		if err != nil {
			t.Fatalf("server %d wal: %v", i, err)
		}
		svc.SetBatchHook(func(clientID, seq uint64, events []graph.Event) error {
			_, err := w.AppendBatch(clientID, seq, events)
			return err
		})
		svc.EnableSync(w)
		h.mu.Lock()
		h.stores[i] = store
		h.wals[i] = w
		h.mu.Unlock()
		return svc
	}
	h.lc = NewLocalClusterOptions(n, LocalOptions{
		Client: Options{
			CallTimeout:      5 * time.Second,
			MaxRetries:       3,
			RetryBaseDelay:   time.Millisecond,
			RetryMaxDelay:    10 * time.Millisecond,
			BreakerThreshold: 0, // drills kill servers on purpose; don't trip on it
			Metrics:          metrics,
			Seed:             1,
		},
		ServiceFactory: factory,
	})
	return h
}

func (h *migHarness) store(i int) *storage.DynamicStore {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stores[i]
}

// newMigrationCluster is the slim variant routing_test.go shares: a
// WAL-backed cluster plus its oracle.
func newMigrationCluster(t *testing.T, n int, metrics *Metrics) (*LocalCluster, *storage.DynamicStore) {
	h := newMigHarness(t, n, metrics)
	return h.lc, h.oracle
}

// driver builds a Driver wired to the harness's in-memory transport.
func (h *migHarness) driver() *Driver {
	return &Driver{Dial: h.lc.DialAddr, Metrics: h.metrics, Logf: h.t.Logf,
		CallTimeout: 10 * time.Second, PullTimeout: 30 * time.Second}
}

// verifyConverged asserts each listed server's topology is byte-identical
// to the oracle projected onto the shards the final map assigns it, with
// weights within Fenwick-reconstruction tolerance.
func (h *migHarness) verifyConverged(m *ShardMap, servers []int) {
	h.t.Helper()
	for _, i := range servers {
		g := m.GroupOf(LocalAddr(i))
		if g < 0 {
			h.t.Fatalf("server %d not in map %s", i, m)
		}
		ownedSet := map[int]bool{}
		for _, s := range m.OwnedBy(g) {
			ownedSet[s] = true
		}
		keep := func(src graph.VertexID) bool { return ownedSet[ShardOf(src, m.NumShards)] }
		st := h.store(i)
		want := canonicalDump(h.oracle, keep)
		got := canonicalDump(st, nil)
		if !bytes.Equal(got, want) {
			h.t.Fatalf("server %d topology diverged from oracle projection (%d vs %d bytes; owns %v)",
				i, len(got), len(want), m.OwnedBy(g))
		}
		weightsMatch(h.t, fmt.Sprintf("server %d", i), st, h.oracle, keep)
	}
}

// TestChaosElasticGrow is the elasticity acceptance test: a 2-server
// cluster hosting 8 logical shards grows to 3 servers while a writer
// streams dynamic batches and a sampler reads concurrently. Zero client
// operations may fail across the grow; afterwards every server's topology
// must be exactly the oracle's projection under the final map, features
// must have moved with their shards, and sampling must be exact.
func TestChaosElasticGrow(t *testing.T) {
	const numShards = 8
	metrics := &Metrics{}
	h := newMigHarness(t, 2, metrics)
	defer h.lc.Shutdown()
	client := h.lc.Client()
	d := h.driver()

	m, err := d.InitRouting([]string{LocalAddr(0), LocalAddr(1)}, 1, numShards)
	if err != nil {
		t.Fatalf("init routing: %v", err)
	}
	if err := client.AdoptRouting(m); err != nil {
		t.Fatalf("adopt: %v", err)
	}

	// Seed state, including features/labels for the first vertices so the
	// attribute-migration path is exercised.
	// apply serializes generator + client + oracle under one mutex so the
	// two write paths (background writer, snapshot hook) see one history;
	// concurrency-under-migration comes from the driver running alongside.
	gen := dataset.NewGenerator(dataset.OGBNSim().Scale(2e-5), dataset.DynamicMix, 41)
	var oracleMu sync.Mutex
	apply := func(n int) {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		events := gen.Next(n)
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Errorf("apply: %v", err)
		}
		h.oracle.ApplyBatch(events)
	}
	for b := 0; b < 4; b++ {
		apply(800)
	}
	const dim = 4
	featNodes := make([]graph.VertexID, 64)
	featData := make([]float32, len(featNodes)*dim)
	featLabels := make([]int32, len(featNodes))
	for i := range featNodes {
		featNodes[i] = graph.VertexID(i)
		featLabels[i] = int32(i % 7)
		for j := 0; j < dim; j++ {
			featData[i*dim+j] = float32(i*10 + j)
		}
	}
	if err := client.SetFeatures(featNodes, dim, featData, featLabels); err != nil {
		t.Fatalf("set features: %v", err)
	}

	// Concurrent load during the grow: one writer, one sampler. Any error
	// from either is a test failure — elasticity must be invisible.
	probeSeeds := make([]graph.VertexID, 64)
	for i := range probeSeeds {
		probeSeeds[i] = graph.VertexID(i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes, reads atomic.Int64
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			apply(300)
			writes.Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := client.SampleNeighbors(probeSeeds, 0, 4, i); err != nil {
				t.Errorf("sample during grow: %v", err)
				return
			}
			reads.Add(1)
		}
	}()

	// Grow 2 → 3 servers: new empty server joins, shards migrate onto it.
	// The destination hook injects a burst of live writes right after each
	// snapshot stages, guaranteeing the WAL-tail replay path carries real
	// records (the background writer alone can lose that race).
	addr := h.lc.AddServer()
	h.lc.Service(2).SetMigrationHooks(MigrationHooks{
		AfterShardSnapshot: func(shard int) error {
			apply(300)
			return nil
		},
	})
	final, moved, err := d.Grow(m, []string{addr})
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	if moved < 2 {
		t.Fatalf("grow moved %d shards, want >= 2 (8 shards over 3 groups)", moved)
	}
	// Keep traffic flowing a little on the new topology, then stop.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	t.Logf("grow complete: %d shards moved, %d writer batches, %d sampler rounds, final %s",
		moved, writes.Load(), reads.Load(), final)
	if writes.Load() == 0 || reads.Load() == 0 {
		t.Fatal("concurrent load did not overlap the grow")
	}

	// The new group must own shards; counts must be balanced within 1.
	counts := make([]int, final.NumGroups())
	for _, g := range final.Assign {
		counts[g]++
	}
	for g, n := range counts {
		if n < 2 || n > 3 {
			t.Fatalf("group %d owns %d shards after grow: %v", g, n, counts)
		}
	}

	// Exactness after the dust settles: degrees and sampled neighbors match
	// the oracle through the routed client.
	oracleMu.Lock()
	defer oracleMu.Unlock()
	for _, rs := range h.oracle.AllStats() {
		et := rs.Type
		srcs := h.oracle.Sources(et)
		if len(srcs) > 120 {
			srcs = srcs[:120]
		}
		degs, err := client.Degree(srcs, et)
		if err != nil {
			t.Fatalf("degree: %v", err)
		}
		for i, src := range srcs {
			if want := h.oracle.Degree(src, et); degs[i] != want {
				t.Fatalf("degree(%v, %d) = %d, want %d", src, et, degs[i], want)
			}
		}
	}

	// Features and labels moved with their shards.
	gotFeats, gotLabels, err := client.FeaturesLabels(featNodes, dim)
	if err != nil {
		t.Fatalf("features after grow: %v", err)
	}
	for i := range featNodes {
		if gotLabels[i] != featLabels[i] {
			t.Fatalf("label(%v) = %d, want %d", featNodes[i], gotLabels[i], featLabels[i])
		}
		for j := 0; j < dim; j++ {
			if gotFeats[i*dim+j] != featData[i*dim+j] {
				t.Fatalf("feature(%v)[%d] = %v, want %v", featNodes[i], j, gotFeats[i*dim+j], featData[i*dim+j])
			}
		}
	}

	// Topology-exact convergence per server against the oracle projection.
	h.verifyConverged(final, []int{0, 1, 2})

	snap := metrics.Snapshot()
	if snap.ShardsMigrated != int64(moved) || snap.MigrationAborts != 0 {
		t.Fatalf("migration accounting off: %s", snap)
	}
	if snap.MigrationBytes == 0 || snap.MigrationBatches == 0 || snap.CutoverNanos == 0 {
		t.Fatalf("migration volume not accounted: %s", snap)
	}
	t.Logf("metrics: %s", snap)
}

// TestChaosMigrationKillSourceMidCopy kills the migration source right
// after the destination staged its snapshot. The migration must abort (the
// WAL-tail stream is gone), the staged copy must be dropped, and after the
// source restarts (WAL replay) the cluster must serve the old placement
// with zero data loss.
func TestChaosMigrationKillSourceMidCopy(t *testing.T) {
	const numShards = 4
	metrics := &Metrics{}
	h := newMigHarness(t, 2, metrics)
	defer h.lc.Shutdown()
	client := h.lc.Client()
	d := h.driver()
	d.CallTimeout = time.Second // fail fast against the killed source

	m, err := d.InitRouting([]string{LocalAddr(0), LocalAddr(1)}, 1, numShards)
	if err != nil {
		t.Fatalf("init routing: %v", err)
	}
	if err := client.AdoptRouting(m); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	gen := dataset.NewGenerator(dataset.OGBNSim().Scale(1e-5), dataset.BuildMix, 7)
	apply := func(n int) {
		events := gen.Next(n)
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Fatalf("apply: %v", err)
		}
		h.oracle.ApplyBatch(events)
	}
	apply(2000)

	// Destination hook: the moment the snapshot is staged, the source dies.
	h.lc.Service(1).SetMigrationHooks(MigrationHooks{
		AfterShardSnapshot: func(shard int) error {
			h.lc.StopShard(0)
			return nil
		},
	})
	if _, err := d.MigrateShard(m, 0, 1); err == nil {
		t.Fatal("migration succeeded with its source dead")
	} else {
		t.Logf("migration aborted as expected: %v", err)
	}
	if got := metrics.Snapshot().MigrationAborts; got != 1 {
		t.Fatalf("MigrationAborts = %d, want 1", got)
	}
	// Old placement still installed on the survivor; its shards still serve.
	if rm, _ := h.lc.Service(1).RoutingSnapshot(); rm.Epoch != m.Epoch {
		t.Fatalf("survivor advanced to epoch %d during an aborted migration", rm.Epoch)
	}
	var probe1 []graph.VertexID
	for v := graph.VertexID(0); len(probe1) < 8; v++ {
		if m.Assign[ShardOf(v, numShards)] == 1 {
			probe1 = append(probe1, v)
		}
	}
	if _, err := client.Degree(probe1, 0); err != nil {
		t.Fatalf("surviving group unreadable after abort: %v", err)
	}

	// Source restarts, replays its WAL, and is re-pushed the map (a
	// restarted server boots unrouted — routing is cluster state, not disk
	// state). The cluster then serves the old placement in full.
	h.lc.RestartShard(0)
	if err := d.Push(m); err != nil {
		t.Fatalf("re-push after restart: %v", err)
	}
	apply(500)
	h.verifyConverged(m, []int{0, 1})
}

// TestChaosMigrationKillDestMidReplay kills the destination mid-WAL-tail
// replay during a grow. The migration must abort, the cluster must keep
// serving on the old placement (the destination owned nothing), and the
// restarted destination's WAL-resurrected staging residue must be removable
// with DropShard, leaving it empty for a clean retry.
func TestChaosMigrationKillDestMidReplay(t *testing.T) {
	const numShards = 4
	metrics := &Metrics{}
	h := newMigHarness(t, 2, metrics)
	defer h.lc.Shutdown()
	client := h.lc.Client()
	d := h.driver()
	d.CallTimeout = time.Second

	m, err := d.InitRouting([]string{LocalAddr(0), LocalAddr(1)}, 1, numShards)
	if err != nil {
		t.Fatalf("init routing: %v", err)
	}
	if err := client.AdoptRouting(m); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	gen := dataset.NewGenerator(dataset.OGBNSim().Scale(1e-5), dataset.BuildMix, 11)
	apply := func(n int) {
		events := gen.Next(n)
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Fatalf("apply: %v", err)
		}
		h.oracle.ApplyBatch(events)
	}
	apply(2000)

	// Grow to a third server, but rig its pull: after the snapshot lands,
	// inject more live writes (so the WAL tail is non-empty), and die on the
	// first replayed tail chunk.
	addr := h.lc.AddServer()
	destIdx := 2
	h.lc.Service(destIdx).SetMigrationHooks(MigrationHooks{
		AfterShardSnapshot: func(shard int) error {
			apply(400) // live writes the tail must carry
			return nil
		},
		AfterTailChunk: func(shard int) error {
			h.lc.StopShard(destIdx)
			return fmt.Errorf("destination killed mid-replay (chaos)")
		},
	})
	grown, moved, err := d.Grow(m, []string{addr})
	if err == nil {
		t.Fatal("grow succeeded with its destination dying mid-replay")
	}
	t.Logf("grow aborted after %d moves as expected: %v", moved, err)
	if moved != 0 {
		t.Fatalf("moved = %d before the rigged failure, want 0", moved)
	}
	if got := metrics.Snapshot().MigrationAborts; got != 1 {
		t.Fatalf("MigrationAborts = %d, want 1", got)
	}
	// grown is the post-AddServer map (epoch+1, destination owns nothing);
	// the data-owning servers never saw a cutover and keep serving.
	apply(500)
	if grown.GroupOf(addr) < 0 {
		t.Fatalf("new server missing from map %s", grown)
	}
	if len(grown.OwnedBy(grown.GroupOf(addr))) != 0 {
		t.Fatalf("dead destination owns shards in %s", grown)
	}
	h.verifyConverged(grown, []int{0, 1})

	// Restart the destination: WAL replay resurrects its staging residue;
	// the operator runbook says re-push the map, then DropShard the residue.
	h.lc.RestartShard(destIdx)
	if err := d.Push(grown); err != nil {
		t.Fatalf("re-push after restart: %v", err)
	}
	var drop DropShardReply
	for s := 0; s < numShards; s++ {
		var dr DropShardReply
		if err := h.lc.Service(destIdx).DropShard(&DropShardArgs{Shard: s}, &dr); err != nil {
			t.Fatalf("drop staged shard %d: %v", s, err)
		}
		drop.DroppedEdges += dr.DroppedEdges
	}
	if got := canonicalDump(h.store(destIdx), nil); len(got) != 0 {
		t.Fatalf("destination not empty after residue drop: %d bytes", len(got))
	}
	t.Logf("dropped %d residual staged edges from restarted destination", drop.DroppedEdges)

	// A clean retry now succeeds end to end.
	h.lc.Service(destIdx).SetMigrationHooks(MigrationHooks{})
	final, moved, err := d.Rebalance(grown)
	if err != nil {
		t.Fatalf("retry rebalance: %v", err)
	}
	if moved == 0 {
		t.Fatal("retry rebalance moved nothing")
	}
	h.verifyConverged(final, []int{0, 1, 2})
}

// TestChaosMigrationAbortBeforeCutover aborts a migration at the last
// possible moment — destination fully converged, routing flip not yet
// pushed — while a write to the migrating shard is parked on the source.
// The abort must release the park (the write completes on the source under
// the old placement), drop the staged copy, and leave the cluster exactly
// where it started.
func TestChaosMigrationAbortBeforeCutover(t *testing.T) {
	const numShards = 4
	metrics := &Metrics{}
	h := newMigHarness(t, 2, metrics)
	defer h.lc.Shutdown()
	client := h.lc.Client()
	d := h.driver()

	m, err := d.InitRouting([]string{LocalAddr(0), LocalAddr(1)}, 1, numShards)
	if err != nil {
		t.Fatalf("init routing: %v", err)
	}
	if err := client.AdoptRouting(m); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	gen := dataset.NewGenerator(dataset.OGBNSim().Scale(1e-5), dataset.BuildMix, 23)
	var oracleMu sync.Mutex
	apply := func(events []graph.Event) error {
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			return err
		}
		oracleMu.Lock()
		h.oracle.ApplyBatch(events)
		oracleMu.Unlock()
		return nil
	}
	if err := apply(gen.Next(2000)); err != nil {
		t.Fatalf("seed: %v", err)
	}

	// Shard-0 events to write while the shard is parked.
	var parkedEvents []graph.Event
	for v := graph.VertexID(0); len(parkedEvents) < 8; v++ {
		if ShardOf(v, numShards) == 0 {
			parkedEvents = append(parkedEvents, graph.Event{Kind: graph.AddEdge,
				Edge: graph.Edge{Src: v, Dst: v + 50_000, Type: 0, Weight: 2}})
		}
	}
	parkedDone := make(chan error, 1)
	d.BeforeCutover = func(shard int, next *ShardMap) error {
		// The shard is parked right now. Launch a write into the park, give
		// it a moment to block on the gate, then abort the migration.
		go func() { parkedDone <- apply(parkedEvents) }()
		time.Sleep(30 * time.Millisecond)
		select {
		case err := <-parkedDone:
			t.Errorf("write to parked shard completed before release (err=%v)", err)
			parkedDone <- nil
		default:
		}
		return fmt.Errorf("operator abort (chaos)")
	}
	if _, err := d.MigrateShard(m, 0, 1); err == nil {
		t.Fatal("migration succeeded past a BeforeCutover abort")
	}
	// The parked write must complete successfully on the source.
	select {
	case err := <-parkedDone:
		if err != nil {
			t.Fatalf("parked write failed after abort: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked write still blocked after abort (park not released)")
	}

	snap := metrics.Snapshot()
	if snap.MigrationAborts != 1 || snap.ShardsMigrated != 0 {
		t.Fatalf("abort accounting off: %s", snap)
	}
	// Nothing moved: epoch unchanged everywhere, client map unchanged.
	for i := 0; i < 2; i++ {
		if rm, _ := h.lc.Service(i).RoutingSnapshot(); rm.Epoch != m.Epoch {
			t.Fatalf("server %d at epoch %d after aborted migration, want %d", i, rm.Epoch, m.Epoch)
		}
	}
	// Both servers converge to the oracle under the old placement — the
	// staged copy on the destination is gone, the parked write landed on the
	// source.
	oracleMu.Lock()
	defer oracleMu.Unlock()
	h.verifyConverged(m, []int{0, 1})
}
