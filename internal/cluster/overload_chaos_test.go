// Overload chaos suite: an open-loop mixed-priority workload pushed past a
// deliberately tiny admission gate, with a live shard migration running
// through the same brownout. The invariants: interactive latency stays
// bounded (the gate sheds instead of queueing unboundedly), background and
// prefetch traffic yield before interactive traffic is shed, shed responses
// never trip client circuit breakers, the migration still completes, and
// after the storm the process is back to its baseline goroutine count — no
// leaked waiters, workers, or connections.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// slowStore embeds a real DynamicStore (so migration export, AllStats, and
// snapshot paths all promote through) and adds a fixed service delay to the
// operations the overload workload exercises — the knob that lets a tiny
// admission gate saturate with modest request counts.
type slowStore struct {
	*storage.DynamicStore
	sampleDelay time.Duration
	applyDelay  time.Duration
}

func (s *slowStore) SampleNeighbors(src graph.VertexID, et graph.EdgeType, k int, rng *rand.Rand, dst []graph.VertexID) []graph.VertexID {
	time.Sleep(s.sampleDelay)
	return s.DynamicStore.SampleNeighbors(src, et, k, rng, dst)
}

func (s *slowStore) ApplyBatch(events []graph.Event) {
	time.Sleep(s.applyDelay)
	s.DynamicStore.ApplyBatch(events)
}

// overloadServer is one WAL-backed TCP graph server with a tuned admission
// gate — the real platod2gl-server wiring (advertise address, TCP dial
// resolver for migration pulls, sync enabled) at test scale.
type overloadServer struct {
	addr string
	svc  *Service
	m    *Metrics
}

func startOverloadServer(t *testing.T, dir string, i int, admit AdmissionConfig, sampleDelay, applyDelay time.Duration) *overloadServer {
	t.Helper()
	store := &slowStore{
		DynamicStore: storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}}),
		sampleDelay:  sampleDelay,
		applyDelay:   applyDelay,
	}
	svc := NewService(store, kvstore.New())
	m := &Metrics{}
	svc.SetMetrics(m)
	w, err := eventlog.Create(filepath.Join(dir, fmt.Sprintf("server%d.wal", i)))
	if err != nil {
		t.Fatalf("server %d wal: %v", i, err)
	}
	t.Cleanup(func() { w.Close() })
	svc.SetBatchHook(func(clientID, seq uint64, events []graph.Event) error {
		_, err := w.AppendBatch(clientID, seq, events)
		return err
	})
	svc.EnableSync(w)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	svc.SetAdvertise(addr)
	svc.SetDialResolver(func(a string) Dialer { return TCPDialer(a, 2*time.Second) })
	srv := NewServer(svc)
	srv.SetAdmission(admit)
	srv.SetLimits(DefaultServerLimits())
	go srv.Serve(lis)
	t.Cleanup(func() { lis.Close() })
	return &overloadServer{addr: addr, svc: svc, m: m}
}

// shedByPriority sums a server's RequestsShed family per priority label.
func shedByPriority(servers ...*overloadServer) map[string]int64 {
	out := map[string]int64{}
	for _, s := range servers {
		for _, label := range s.m.RequestsShed.Labels() {
			if i := strings.LastIndex(label, "|"); i >= 0 {
				out[label[i+1:]] += s.m.RequestsShed.With(label).Load()
			}
		}
	}
	return out
}

func p99(durations []time.Duration) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// waitGoroutineBaseline polls until the goroutine count drops back to at
// most baseline+slack, failing with a full stack dump if it never does.
func waitGoroutineBaseline(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines never returned to baseline: %d > %d+%d\n%s",
				runtime.NumGoroutine(), baseline, slack, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosOverloadBrownout is the overload acceptance drill: two slow
// servers behind a tiny admission gate, an open-loop mixed-priority storm
// well past capacity, and a live shard migration riding through it.
func TestChaosOverloadBrownout(t *testing.T) {
	dir := t.TempDir()
	admit := AdmissionConfig{MaxConcurrent: 8, MaxQueue: 16, MaxQueueWait: 25 * time.Millisecond}
	s0 := startOverloadServer(t, dir, 0, admit, time.Millisecond, 2*time.Millisecond)
	s1 := startOverloadServer(t, dir, 1, admit, time.Millisecond, 2*time.Millisecond)
	addrs := []string{s0.addr, s1.addr}
	baseline := runtime.NumGoroutine()

	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 2 * time.Second
	opts.MaxRetries = 3
	opts.RetryBaseDelay = time.Millisecond
	opts.RetryMaxDelay = 20 * time.Millisecond
	opts.Metrics = cm
	opts.Seed = 1
	client, err := Dial(addrs, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	closeClient := sync.OnceFunc(func() { client.Close() })
	defer closeClient()

	d := &Driver{Metrics: cm, Logf: t.Logf, CallTimeout: 5 * time.Second, PullTimeout: 30 * time.Second}
	const numShards = 4
	m, err := d.InitRouting(addrs, 1, numShards)
	if err != nil {
		t.Fatalf("init routing: %v", err)
	}
	if err := client.AdoptRouting(m); err != nil {
		t.Fatalf("adopt: %v", err)
	}
	if err := client.ApplyBatch(testEvents(500)); err != nil {
		t.Fatalf("seed: %v", err)
	}

	// Unloaded reference: sequential interactive sampling with no
	// competition. Its p99 anchors the brownout latency bound.
	var unloaded []time.Duration
	for i := 0; i < 40; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		start := time.Now()
		_, err := client.SampleNeighborsCtx(ctx, []graph.VertexID{graph.VertexID(i % 500)}, 0, 4, int64(i))
		cancel()
		if err != nil {
			t.Fatalf("unloaded sample %d: %v", i, err)
		}
		unloaded = append(unloaded, time.Since(start))
	}
	unloadedP99 := p99(unloaded)

	// The storm: 8 interactive samplers, 4 prefetch writers, 2 background
	// pollers — far past MaxConcurrent=8 given the store's built-in delays —
	// while shard 0 migrates from group 0 to group 1.
	const (
		stormDuration      = 1500 * time.Millisecond
		interactiveWorkers = 8
		prefetchWorkers    = 4
		backgroundWorkers  = 2
		interactiveBudget  = 150 * time.Millisecond
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var latMu sync.Mutex
	var loaded []time.Duration
	var intOK, intFail, bgOK, bgFail atomic.Int64

	for w := 0; w < interactiveWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), interactiveBudget)
				start := time.Now()
				_, err := client.SampleNeighborsCtx(ctx,
					[]graph.VertexID{graph.VertexID((w*131 + i) % 500)}, 0, 4, int64(w*10_000+i))
				cancel()
				elapsed := time.Since(start)
				latMu.Lock()
				loaded = append(loaded, elapsed)
				latMu.Unlock()
				if err != nil {
					intFail.Add(1)
				} else {
					intOK.Add(1)
				}
			}
		}(w)
	}
	for w := 0; w < prefetchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(
					WithPriority(context.Background(), PriorityPrefetch), 250*time.Millisecond)
				events := make([]graph.Event, 50)
				for j := range events {
					v := graph.VertexID((w*997 + i*53 + j) % 2000)
					events[j] = graph.Event{Kind: graph.AddEdge,
						Edge: graph.Edge{Src: v, Dst: v + 5000, Weight: 1}}
				}
				client.ApplyBatchCtx(ctx, events) // failures are the point under overload
				cancel()
			}
		}(w)
	}
	for w := 0; w < backgroundWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(
					WithPriority(context.Background(), PriorityBackground), 100*time.Millisecond)
				_, err := client.StatsCtx(ctx)
				cancel()
				if err != nil {
					bgFail.Add(1)
				} else {
					bgOK.Add(1)
				}
			}
		}()
	}

	// The migration rides through the brownout. Control RPCs are background
	// class, so individual steps may be shed mid-storm; the driver loop
	// retries until the move lands (long after the storm ends if need be).
	migDone := make(chan error, 1)
	go func() {
		time.Sleep(200 * time.Millisecond) // let the storm establish first
		deadline := time.Now().Add(30 * time.Second)
		cur := m
		for {
			next, err := d.MigrateShard(cur, 0, 1)
			if err == nil {
				if next.GroupOf(s1.addr) < 0 || next.Assign[0] != next.GroupOf(s1.addr) {
					migDone <- fmt.Errorf("post-migration map does not place shard 0 on %s: %s", s1.addr, next)
					return
				}
				migDone <- nil
				return
			}
			if time.Now().After(deadline) {
				migDone <- fmt.Errorf("migration never completed: %w", err)
				return
			}
			time.Sleep(50 * time.Millisecond)
			if fresh, ferr := d.FetchMap(addrs); ferr == nil {
				cur = fresh
			}
		}
	}()

	time.Sleep(stormDuration)
	close(stop)
	wg.Wait()
	if err := <-migDone; err != nil {
		t.Errorf("migration under overload: %v", err)
	}

	// Invariant 1: interactive latency stays bounded through the brownout —
	// the admission gate sheds rather than queueing without bound, and the
	// propagated budget caps every call's total elapsed time.
	loadedP99 := p99(loaded)
	bound := 3 * unloadedP99
	if floor := 250 * time.Millisecond; bound < floor {
		// Absolute floor absorbs scheduler noise at race-test speeds: the
		// budget (150ms) plus client-side retry overhead bounds every call.
		bound = floor
	}
	t.Logf("interactive p99: unloaded %v, loaded %v (bound %v); %d ok / %d failed",
		unloadedP99, loadedP99, bound, intOK.Load(), intFail.Load())
	if loadedP99 > bound {
		t.Errorf("interactive p99 under overload = %v, want <= %v (3x unloaded %v)", loadedP99, bound, unloadedP99)
	}
	if intOK.Load() == 0 {
		t.Error("no interactive call succeeded during the storm — shedding everything is not brownout")
	}

	// Invariant 2: the gate actually shed (the storm was real), and lower
	// classes yielded at least as much as interactive traffic.
	sheds := shedByPriority(s0, s1)
	total := sheds["interactive"] + sheds["prefetch"] + sheds["background"]
	t.Logf("server sheds by priority: %v; background %d ok / %d failed", sheds, bgOK.Load(), bgFail.Load())
	if total == 0 {
		t.Error("no requests were shed — the workload never saturated the gate")
	}
	if sheds["prefetch"]+sheds["background"] < sheds["interactive"] {
		t.Errorf("interactive shed %d times vs %d prefetch+background — priorities inverted",
			sheds["interactive"], sheds["prefetch"]+sheds["background"])
	}

	// Invariant 3: shed is backpressure, not failure — client breakers must
	// never open on a healthy-but-saturated cluster, and the client must
	// have classified the sheds it saw.
	snap := cm.Snapshot()
	if snap.BreakerOpens != 0 {
		t.Errorf("client opened circuit breakers %d times under pure overload", snap.BreakerOpens)
	}
	if snap.ShedSeen == 0 && total > 0 {
		t.Error("servers shed requests but the client's ShedSeen counter never moved")
	}

	// The cluster still works after the storm and the migration.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.SampleNeighborsCtx(ctx, []graph.VertexID{1, 2, 3}, 0, 4, 99); err != nil {
		t.Fatalf("post-storm sample: %v", err)
	}

	// Invariant 4: no goroutine blowup survives the storm.
	closeClient()
	waitGoroutineBaseline(t, baseline, 8)
}

// TestOverloadGoroutineLeakRegression storms a deliberately slow server with
// short-budget calls so nearly everything times out or sheds, then requires
// the goroutine count to return to baseline — the regression test for
// leaked admission waiters, AIMD waiters, timed-out call goroutines, and
// abandoned connections.
func TestOverloadGoroutineLeakRegression(t *testing.T) {
	dir := t.TempDir()
	admit := AdmissionConfig{MaxConcurrent: 2, MaxQueue: 4, MaxQueueWait: 20 * time.Millisecond}
	srv := startOverloadServer(t, dir, 0, admit, 20*time.Millisecond, 20*time.Millisecond)
	baseline := runtime.NumGoroutine()

	cm := &Metrics{}
	opts := DefaultOptions()
	opts.CallTimeout = 30 * time.Millisecond
	opts.MaxRetries = 2
	opts.RetryBaseDelay = time.Millisecond
	opts.RetryMaxDelay = 5 * time.Millisecond
	opts.Metrics = cm
	opts.Seed = 1
	client, err := Dial([]string{srv.addr}, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	closeClient := sync.OnceFunc(func() { client.Close() })
	defer closeClient()
	if err := client.ApplyBatch(testEvents(50)); err != nil {
		t.Fatalf("seed: %v", err)
	}

	var wg sync.WaitGroup
	var failed atomic.Int64
	for g := 0; g < 100; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
				_, err := client.SampleNeighborsCtx(ctx, []graph.VertexID{graph.VertexID(g % 50)}, 0, 4, int64(g))
				cancel()
				if err != nil {
					failed.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if failed.Load() == 0 {
		t.Log("storm produced no failures — server kept up; leak check still meaningful")
	}
	closeClient()
	waitGoroutineBaseline(t, baseline, 8)
}
