// WAL-shipped replica catch-up: a rejoining replica converges with its
// group by pulling a live sibling's snapshot plus the WAL tail past it,
// instead of requiring the full event history. The protocol is three RPCs —
// SyncState (am I converged? which epoch?), FetchSnapshot (quiesced store
// image + dedup table + WAL position), FetchWALTail (length-framed records
// past a sequence number) — driven client-side by SyncFromPeer.
//
// Convergence argument. While catching up, the replica is "not ready":
// reads are rejected (the cluster client fails over to a converged
// sibling), and direct writes are first rejected, then — once the tail is
// nearly drained — parked on a gate until ready. Rejected writes are not
// lost: the cluster client only reports a batch written after a sibling
// acked it, which puts the batch in that sibling's WAL, which the tail
// stream delivers. A batch that arrives twice — directly and via the tail —
// applies once, because both paths go through ApplyBatch's (ClientID, Seq)
// dedup, and the snapshot carries the serving peer's dedup table so
// batches already inside the snapshot are recognized too. The final drain
// runs in blocking mode precisely so a write racing the ready transition
// parks and applies instead of vanishing into the gap between "last tail
// fetch" and "accepting writes again".
//
// Feature attributes are transferred only when SyncOptions.Attrs is set
// (the FetchAttrs RPC, used by repair paths so replicas converge features
// included): the repo's durability layer (snapshot + WAL) covers topology
// only, so by default feature state on a restarted replica — exactly as on
// a restarted single node — repairs via the next absolute SetFeatures push.
// See docs/OPERATIONS.md.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"platod2gl/internal/eventlog"
)

// Sync epochs: every completed catch-up (and every fresh Service) gets a
// distinct epoch, so a client that recorded a replica's epoch when marking
// it stale can tell "this replica has re-synced since" from "this is still
// the replica that missed my write". The process-start base makes epochs
// from different incarnations of the same server distinct too.
var (
	syncEpochBase    = uint64(time.Now().UnixNano())
	syncEpochCounter atomic.Uint64
)

func nextSyncEpoch() uint64 { return syncEpochBase + syncEpochCounter.Add(1) }

// SetMetrics installs shared fault-tolerance counters (snapshots served,
// WAL batches streamed). May be the same Metrics instance a Client uses.
func (s *Service) SetMetrics(m *Metrics) { s.metrics = m }

// EnableSync designates wal as the WAL this server streams to catching-up
// replicas (FetchWALTail re-reads its file, so the writer must keep
// appending to the same path). Typically the same Writer installed as the
// batch hook.
func (s *Service) EnableSync(wal *eventlog.Writer) { s.syncWAL = wal }

// Ready reports whether this replica serves reads (i.e. is converged).
func (s *Service) Ready() bool { return s.ready.Load() }

// SyncEpoch returns the epoch of the last completed catch-up.
func (s *Service) SyncEpoch() uint64 { return s.syncEpoch.Load() }

// BeginCatchUp takes the replica out of read service: reads and writes are
// rejected with ErrReplicaNotReady until MarkSynced. Idempotent.
func (s *Service) BeginCatchUp() {
	s.syncMu.Lock()
	if s.readyCh == nil {
		s.readyCh = make(chan struct{})
	}
	s.syncBlock.Store(false)
	s.ready.Store(false)
	s.syncMu.Unlock()
}

// beginBlockingDrain switches the write gate from rejecting to parking:
// incoming writes wait for MarkSynced instead of failing. Used for the
// final WAL drain so a write racing the ready transition cannot be missed.
func (s *Service) beginBlockingDrain() { s.syncBlock.Store(true) }

// MarkSynced declares the replica converged: bumps the sync epoch, resumes
// read service, and releases any writes parked on the catch-up gate.
func (s *Service) MarkSynced() {
	s.syncMu.Lock()
	s.syncEpoch.Store(nextSyncEpoch())
	s.ready.Store(true)
	if s.readyCh != nil {
		close(s.readyCh)
		s.readyCh = nil
	}
	s.syncBlock.Store(false)
	s.syncMu.Unlock()
}

// gateWrite is the write-path catch-up gate: a no-op when ready, a fast
// rejection during bulk catch-up, and a park-until-ready during the final
// blocking drain. Called before pauseMu so parked writes cannot deadlock
// the catch-up's own Pause.
func (s *Service) gateWrite() error {
	if s.ready.Load() {
		return nil
	}
	if !s.syncBlock.Load() {
		return ErrReplicaNotReady
	}
	s.syncMu.Lock()
	ch := s.readyCh
	s.syncMu.Unlock()
	if ch == nil {
		return nil // MarkSynced won the race
	}
	<-ch
	return nil
}

// SyncStateArgs is empty.
type SyncStateArgs struct{}

// SyncStateReply reports a replica's convergence state: whether it serves
// reads, the epoch of its last completed catch-up, its WAL position, and
// its edge count (diagnostics).
type SyncStateReply struct {
	Ready     bool
	SyncEpoch uint64
	WALSeq    uint64
	NumEdges  int64
}

// SyncState reports this replica's convergence state. Always served, even
// while not ready — it is how clients and siblings probe progress.
func (s *Service) SyncState(_ *SyncStateArgs, reply *SyncStateReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("SyncState", start) }()
	defer guard("SyncState", &err)
	reply.Ready = s.ready.Load()
	reply.SyncEpoch = s.syncEpoch.Load()
	if s.syncWAL != nil {
		reply.WALSeq = s.syncWAL.Seq()
	}
	reply.NumEdges = s.store.NumEdges()
	return nil
}

// SnapshotArgs is empty.
type SnapshotArgs struct{}

// SnapshotReply carries a quiesced store image, the WAL sequence the image
// is consistent with (tail streaming starts past it), and the serving
// replica's dedup table so batches inside the snapshot stay at-most-once on
// the loading side.
type SnapshotReply struct {
	Snapshot []byte
	WALSeq   uint64
	Dedup    []DedupEntry
	// Sum checksums Snapshot end-to-end (the image also carries its own
	// internal CRC trailer; this one catches corruption of the byte slice in
	// flight before the loader even parses it). 0 = legacy sender.
	Sum uint64
}

// FetchSnapshot serves a catch-up snapshot: writes drain (Pause), the WAL
// position is recorded, and the store plus dedup table are captured, all
// under the same quiescent point so image and tail agree. A replica that is
// itself not ready refuses — two empty booting replicas must not "catch up"
// from each other.
func (s *Service) FetchSnapshot(_ *SnapshotArgs, reply *SnapshotReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("FetchSnapshot", start) }()
	defer guard("FetchSnapshot", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	saver, ok := s.store.(interface{ Save(io.Writer) error })
	if !ok {
		return fmt.Errorf("cluster: store %T does not support snapshots", s.store)
	}
	resume := s.Pause()
	defer resume()
	if s.syncWAL != nil {
		reply.WALSeq = s.syncWAL.Seq()
	}
	var buf bytes.Buffer
	if err := saver.Save(&buf); err != nil {
		return fmt.Errorf("cluster: snapshot: %w", err)
	}
	reply.Snapshot = buf.Bytes()
	reply.Sum = checksumBytes(reply.Snapshot)
	reply.Dedup = s.dedup.export()
	s.metrics.incSnapshotServed()
	return nil
}

// WALTailArgs requests complete WAL records with Seq > AfterSeq, at most
// MaxBatches of them (<= 0: unlimited).
type WALTailArgs struct {
	AfterSeq   uint64
	MaxBatches int
}

// WALTailReply returns the records plus the log positions the caller needs
// to drive the stream: EndSeq to resume from, WriterSeq to decide whether
// the tail is drained (WriterSeq <= the caller's AfterSeq) or was reset
// (WriterSeq < AfterSeq).
type WALTailReply struct {
	Records   []eventlog.BatchRecord
	EndSeq    uint64
	WriterSeq uint64
	// Sum checksums Records (checksumRecords). 0 = legacy sender.
	Sum uint64
}

// FetchWALTail streams a chunk of this server's WAL past AfterSeq. Safe
// against concurrent appends: a torn frame mid-file ends the chunk cleanly
// and a later call picks it up once complete.
func (s *Service) FetchWALTail(args *WALTailArgs, reply *WALTailReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("FetchWALTail", start) }()
	defer guard("FetchWALTail", &err)
	if s.syncWAL == nil {
		return fmt.Errorf("cluster: server has no WAL to stream")
	}
	recs, err := eventlog.ReadTail(s.syncWAL.Path(), args.AfterSeq, args.MaxBatches)
	if err != nil {
		return fmt.Errorf("cluster: wal tail: %w", err)
	}
	reply.Records = recs
	reply.Sum = checksumRecords(recs)
	reply.EndSeq = args.AfterSeq
	if n := len(recs); n > 0 {
		reply.EndSeq = recs[n-1].Seq
	}
	// Read the writer position after the file scan: anything appended in
	// between just makes the caller loop once more.
	reply.WriterSeq = s.syncWAL.Seq()
	s.metrics.addTailServed(int64(len(recs)))
	return nil
}

// ErrSyncWALReset reports that the peer's WAL was reset (snapshot +
// truncate) mid-catch-up, invalidating the stream position. The caller
// restarts the catch-up from a fresh snapshot.
var ErrSyncWALReset = errors.New("cluster: peer WAL reset during catch-up")

// SyncOptions tune SyncFromPeer.
type SyncOptions struct {
	// CallTimeout bounds each sync RPC. Snapshot fetches move the whole
	// store image, so this is typically much larger than the regular
	// Options.CallTimeout. 0 disables.
	CallTimeout time.Duration
	// MaxBatches is the WAL-tail chunk size per fetch. <= 0: 256.
	MaxBatches int
	// Attrs additionally transfers the peer's whole attribute store
	// (features, labels, edge features) after the final drain. The topology
	// WAL does not cover attributes, so without this a rebuilt replica only
	// repairs its features via the next absolute SetFeatures push; repair
	// paths set Attrs so the replica converges byte-identically, features
	// included.
	Attrs bool
	// Metrics receives catch-up counters. May be nil.
	Metrics *Metrics
}

// SyncStats reports what a catch-up moved — repair metrics feed on it.
type SyncStats struct {
	SnapshotBytes int64
	Batches       int64
	AttrBytes     int64
}

const (
	defaultSyncBatches = 256
	// syncTailPollDelay is the wait between tail polls when the peer's
	// writer is ahead but no complete frame is readable yet (an append in
	// flight); syncTailMaxPolls bounds how long that state may persist.
	syncTailPollDelay = 5 * time.Millisecond
	syncTailMaxPolls  = 400
	// The blocking drain requires syncDrainConfirms consecutive drained
	// fetches spaced by syncDrainPollDelay (~250ms of quiet) before declaring
	// convergence. At the moment the gate switches to blocking, at most one
	// batch per client can be in the hazard window — rejected here while its
	// sibling ack (hence its WAL record) is still in flight — because a
	// client issues a batch only after its predecessor's fan-out completed,
	// and once a successor parks on the gate the predecessor is provably in
	// the WAL. The quiet window only needs to outlast that single sibling
	// apply; parked writes quiesce the stream, so the window always arrives.
	syncDrainPollDelay = 25 * time.Millisecond
	syncDrainConfirms  = 10
)

// SyncFromPeer converges svc with a live replica of the same shard: fetch
// the peer's quiesced snapshot, load it (svc's store must be empty — Load
// merges), then drain the peer's WAL tail past the snapshot point, applying
// every record through ApplyBatch so the dedup identity keeps records that
// also arrived directly at-most-once. The final drain runs with direct
// writes parked on the catch-up gate (instead of rejected), closing the
// window where a write could land on the peer after the last tail fetch yet
// be rejected here; MarkSynced then re-enters the replica into read
// rotation under a fresh sync epoch.
//
// On error the replica stays not ready; the caller may retry against the
// same or another peer (the store must be discarded and rebuilt empty if a
// snapshot had already been loaded).
func SyncFromPeer(svc *Service, dial Dialer, opts SyncOptions) error {
	_, err := SyncFromPeerStats(svc, dial, opts)
	return err
}

// SyncFromPeerStats is SyncFromPeer reporting what it moved.
func SyncFromPeerStats(svc *Service, dial Dialer, opts SyncOptions) (SyncStats, error) {
	var stats SyncStats
	svc.BeginCatchUp()
	tc, err := dialTransport(dial, ProtoAuto, opts.CallTimeout, opts.Metrics, 0)
	if err != nil {
		return stats, fmt.Errorf("cluster: sync dial: %w", err)
	}
	defer tc.Close()
	call := func(method string, args, reply any) error {
		return tc.Call(ServiceName+"."+method, args, reply, opts.CallTimeout)
	}

	var snap SnapshotReply
	if err := call("FetchSnapshot", &SnapshotArgs{}, &snap); err != nil {
		return stats, fmt.Errorf("cluster: fetch snapshot: %w", err)
	}
	if err := verifySum(opts.Metrics, "FetchSnapshot image", checksumBytes(snap.Snapshot), snap.Sum); err != nil {
		return stats, err
	}
	loader, ok := svc.store.(interface{ Load(io.Reader) error })
	if !ok {
		return stats, fmt.Errorf("cluster: store %T cannot load snapshots", svc.store)
	}
	resume := svc.Pause()
	svc.dedup.importEntries(snap.Dedup)
	err = loader.Load(bytes.NewReader(snap.Snapshot))
	resume()
	if err != nil {
		return stats, fmt.Errorf("cluster: load snapshot: %w", err)
	}
	stats.SnapshotBytes = int64(len(snap.Snapshot))

	limit := opts.MaxBatches
	if limit <= 0 {
		limit = defaultSyncBatches
	}
	after := snap.WALSeq
	polls := 0
	confirms := 0
	blocking := false
	for {
		var tail WALTailReply
		if err := call("FetchWALTail", &WALTailArgs{AfterSeq: after, MaxBatches: limit}, &tail); err != nil {
			return stats, fmt.Errorf("cluster: fetch wal tail after %d: %w", after, err)
		}
		if err := verifySum(opts.Metrics, "FetchWALTail records", checksumRecords(tail.Records), tail.Sum); err != nil {
			return stats, err
		}
		if tail.WriterSeq < after {
			return stats, fmt.Errorf("%w: writer at %d, stream at %d", ErrSyncWALReset, tail.WriterSeq, after)
		}
		for i := range tail.Records {
			rec := &tail.Records[i]
			var reply BatchReply
			if err := svc.applyBatch(&BatchArgs{Events: rec.Events, ClientID: rec.ClientID, Seq: rec.ClientSeq}, &reply); err != nil {
				return stats, fmt.Errorf("cluster: apply wal record %d: %w", rec.Seq, err)
			}
			stats.Batches++
		}
		if len(tail.Records) > 0 {
			after = tail.EndSeq
			polls, confirms = 0, 0
			continue
		}
		if tail.WriterSeq > after {
			// Writer ahead but no complete frame readable: append in flight.
			polls++
			if polls > syncTailMaxPolls {
				return stats, fmt.Errorf("cluster: wal tail stalled at %d (writer at %d)", after, tail.WriterSeq)
			}
			time.Sleep(syncTailPollDelay)
			continue
		}
		if !blocking {
			// Drained under rejection. Park direct writes and keep draining:
			// once a write parks here, the client's fan-out for it cannot
			// complete, so the sibling's WAL quiesces and the remaining tail
			// is finite.
			blocking = true
			svc.beginBlockingDrain()
			confirms = 0
			continue
		}
		confirms++
		if confirms >= syncDrainConfirms {
			break
		}
		time.Sleep(syncDrainPollDelay)
	}
	if opts.Attrs {
		// Pull the peer's full attribute state after the drain, while direct
		// writes are still parked on the gate: the peer's store is quiescent
		// modulo in-flight absolute writes, which converge on both sides.
		var attrs AttrsReply
		if err := call("FetchAttrs", &AttrsArgs{}, &attrs); err != nil {
			return stats, fmt.Errorf("cluster: fetch attrs: %w", err)
		}
		if err := verifySum(opts.Metrics, "FetchAttrs payload", checksumFeatures(&attrs.Attrs), attrs.Sum); err != nil {
			return stats, err
		}
		svc.importAttrs(&attrs.Attrs)
		stats.AttrBytes = attrs.Attrs.approxBytes()
	}
	svc.MarkSynced()
	opts.Metrics.incCatchUp()
	opts.Metrics.addCatchUpBytes(stats.SnapshotBytes)
	opts.Metrics.addCatchUpBatches(stats.Batches)
	return stats, nil
}
