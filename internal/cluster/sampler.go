package cluster

import (
	"math/rand"

	"platod2gl/internal/graph"
	"platod2gl/internal/storage"
)

// serverSampler performs the server-side half of distributed neighbor
// sampling: fixed-fanout weighted draws with self-loop fallback for seeds
// without out-neighbors, matching internal/sampler semantics so local and
// distributed results are interchangeable.
type serverSampler struct {
	store storage.TopologyStore
	rng   *rand.Rand
}

func newServerSampler(store storage.TopologyStore, seed int64) *serverSampler {
	return &serverSampler{store: store, rng: rand.New(rand.NewSource(seed + 1))}
}

func (s *serverSampler) sample(seeds []graph.VertexID, et graph.EdgeType, fanout int) []graph.VertexID {
	out := make([]graph.VertexID, len(seeds)*fanout)
	for i, seed := range seeds {
		base := i * fanout
		got := s.store.SampleNeighbors(seed, et, fanout, s.rng, out[base:base])
		for j := len(got); j < fanout; j++ {
			out[base+j] = seed
		}
	}
	return out
}
