// Package cluster implements PlatoD2GL's distributed deployment (Sec. I:
// billion-edge graphs "cannot be stored in a single machine"): a set of
// graph servers, each owning the samtrees of the sources hashed to it
// (hash-by-source partitioning, the same scheme the paper configures for
// AliGraph), plus a fan-out client that partitions update batches and
// reassembles sampling results.
//
// Transport is net/rpc over any net.Conn: TCP for the standalone server
// binary, in-memory pipes for tests and single-process clusters — the
// paper's cluster of 54 storage servers is simulated as N in-process servers
// (see DESIGN.md, substitutions).
package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// ServiceName is the registered RPC receiver name.
const ServiceName = "PlatoD2GL"

// BatchArgs carries a topology update batch.
type BatchArgs struct {
	Events []graph.Event
}

// BatchReply reports the resulting edge count on the server.
type BatchReply struct {
	NumEdges int64
}

// SampleArgs requests fanout weighted neighbor samples for each seed.
type SampleArgs struct {
	Seeds  []graph.VertexID
	Type   graph.EdgeType
	Fanout int
	Seed   int64
}

// SampleReply returns, per seed, its samples flattened: seed i owns
// Neighbors[i*Fanout:(i+1)*Fanout]. Slots that could not be filled hold the
// seed itself.
type SampleReply struct {
	Neighbors []graph.VertexID
}

// DegreeArgs queries out-degrees.
type DegreeArgs struct {
	Nodes []graph.VertexID
	Type  graph.EdgeType
}

// DegreeReply returns the degrees aligned with the request.
type DegreeReply struct {
	Degrees []int
}

// FeatureArgs requests dense feature rows.
type FeatureArgs struct {
	Nodes []graph.VertexID
	Dim   int
}

// FeatureReply returns a row-major (len(Nodes) × Dim) matrix.
type FeatureReply struct {
	Data []float32
}

// SetFeaturesArgs pushes dense feature rows and labels to a server.
type SetFeaturesArgs struct {
	Nodes  []graph.VertexID
	Dim    int
	Data   []float32 // row-major (len(Nodes) x Dim)
	Labels []int32   // optional, aligned with Nodes (empty = none)
}

// SetFeaturesReply is empty.
type SetFeaturesReply struct{}

// StatsArgs is empty.
type StatsArgs struct{}

// StatsReply reports server-level statistics.
type StatsReply struct {
	NumEdges    int64
	MemoryBytes int64
	NumSources  int
}

// Service is the RPC receiver for one graph server.
type Service struct {
	store   storage.TopologyStore
	attrs   *kvstore.Store
	onBatch func([]graph.Event) error
}

// NewService wraps a topology store and an attribute store.
func NewService(store storage.TopologyStore, attrs *kvstore.Store) *Service {
	return &Service{store: store, attrs: attrs}
}

// SetBatchHook installs a durability hook invoked before every applied
// batch (e.g. a write-ahead log append). A hook error rejects the batch.
func (s *Service) SetBatchHook(fn func([]graph.Event) error) { s.onBatch = fn }

// ApplyBatch applies a topology update batch, invoking the durability hook
// first.
func (s *Service) ApplyBatch(args *BatchArgs, reply *BatchReply) error {
	if s.onBatch != nil {
		if err := s.onBatch(args.Events); err != nil {
			return fmt.Errorf("cluster: batch hook: %w", err)
		}
	}
	s.store.ApplyBatch(args.Events)
	reply.NumEdges = s.store.NumEdges()
	return nil
}

// SampleNeighbors draws weighted neighbor samples for each seed.
func (s *Service) SampleNeighbors(args *SampleArgs, reply *SampleReply) error {
	if args.Fanout < 0 {
		return fmt.Errorf("cluster: negative fanout %d", args.Fanout)
	}
	smp := newServerSampler(s.store, args.Seed)
	reply.Neighbors = smp.sample(args.Seeds, args.Type, args.Fanout)
	return nil
}

// Degree returns out-degrees.
func (s *Service) Degree(args *DegreeArgs, reply *DegreeReply) error {
	reply.Degrees = make([]int, len(args.Nodes))
	for i, n := range args.Nodes {
		reply.Degrees[i] = s.store.Degree(n, args.Type)
	}
	return nil
}

// Features gathers feature rows.
func (s *Service) Features(args *FeatureArgs, reply *FeatureReply) error {
	if s.attrs == nil {
		return fmt.Errorf("cluster: server has no attribute store")
	}
	reply.Data = s.attrs.GatherFeatures(args.Nodes, args.Dim)
	return nil
}

// SetFeatures stores feature rows (and optional labels) on this server.
func (s *Service) SetFeatures(args *SetFeaturesArgs, _ *SetFeaturesReply) error {
	if s.attrs == nil {
		return fmt.Errorf("cluster: server has no attribute store")
	}
	if len(args.Data) != len(args.Nodes)*args.Dim {
		return fmt.Errorf("cluster: feature payload %d != %d nodes x %d dim",
			len(args.Data), len(args.Nodes), args.Dim)
	}
	if len(args.Labels) != 0 && len(args.Labels) != len(args.Nodes) {
		return fmt.Errorf("cluster: %d labels for %d nodes", len(args.Labels), len(args.Nodes))
	}
	for i, n := range args.Nodes {
		row := make([]float32, args.Dim)
		copy(row, args.Data[i*args.Dim:(i+1)*args.Dim])
		s.attrs.SetFeatures(n, row)
		if len(args.Labels) != 0 {
			s.attrs.SetLabel(n, args.Labels[i])
		}
	}
	return nil
}

// Stats reports server statistics.
func (s *Service) Stats(_ *StatsArgs, reply *StatsReply) error {
	reply.NumEdges = s.store.NumEdges()
	reply.MemoryBytes = s.store.MemoryBytes()
	return nil
}

// Server serves the RPC service over accepted connections.
type Server struct {
	rpcServer *rpc.Server
}

// NewServer registers the service.
func NewServer(svc *Service) *Server {
	rs := rpc.NewServer()
	if err := rs.RegisterName(ServiceName, svc); err != nil {
		panic(fmt.Sprintf("cluster: register: %v", err))
	}
	return &Server{rpcServer: rs}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go s.rpcServer.ServeConn(conn)
	}
}

// ServeConn serves a single connection (blocking).
func (s *Server) ServeConn(conn net.Conn) { s.rpcServer.ServeConn(conn) }

// Client is the fan-out client over a set of graph servers. Sources are
// partitioned hash-by-source: server(src) = h(src) mod N.
type Client struct {
	peers []*rpc.Client
}

// NewClient wraps established per-server RPC connections.
func NewClient(peers []*rpc.Client) *Client {
	if len(peers) == 0 {
		panic("cluster: client needs at least one peer")
	}
	return &Client{peers: peers}
}

// NumServers returns the cluster size.
func (c *Client) NumServers() int { return len(c.peers) }

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (c *Client) serverFor(src graph.VertexID) int {
	return int(mix(uint64(src)) % uint64(len(c.peers)))
}

// ApplyBatch partitions events by source and applies the per-server
// sub-batches in parallel.
func (c *Client) ApplyBatch(events []graph.Event) error {
	parts := make([][]graph.Event, len(c.peers))
	for _, ev := range events {
		p := c.serverFor(ev.Edge.Src)
		parts[p] = append(parts[p], ev)
	}
	return c.fanOut(func(p int) error {
		if len(parts[p]) == 0 {
			return nil
		}
		var reply BatchReply
		return c.peers[p].Call(ServiceName+".ApplyBatch", &BatchArgs{Events: parts[p]}, &reply)
	})
}

// SampleNeighbors draws fanout samples per seed across the cluster,
// reassembling results in seed order. Missing slots hold the seed itself.
func (c *Client) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int, seed int64) ([]graph.VertexID, error) {
	if fanout < 0 {
		return nil, fmt.Errorf("cluster: negative fanout %d", fanout)
	}
	out := make([]graph.VertexID, len(seeds)*fanout)
	partSeeds := make([][]graph.VertexID, len(c.peers))
	partIdx := make([][]int, len(c.peers))
	for i, s := range seeds {
		p := c.serverFor(s)
		partSeeds[p] = append(partSeeds[p], s)
		partIdx[p] = append(partIdx[p], i)
	}
	err := c.fanOut(func(p int) error {
		if len(partSeeds[p]) == 0 {
			return nil
		}
		args := &SampleArgs{Seeds: partSeeds[p], Type: et, Fanout: fanout, Seed: seed + int64(p)}
		var reply SampleReply
		if err := c.peers[p].Call(ServiceName+".SampleNeighbors", args, &reply); err != nil {
			return err
		}
		if len(reply.Neighbors) != len(partSeeds[p])*fanout {
			return fmt.Errorf("cluster: server %d returned %d samples, want %d",
				p, len(reply.Neighbors), len(partSeeds[p])*fanout)
		}
		for j, origIdx := range partIdx[p] {
			copy(out[origIdx*fanout:(origIdx+1)*fanout], reply.Neighbors[j*fanout:(j+1)*fanout])
		}
		return nil
	})
	return out, err
}

// SampleSubgraph expands seeds along a meta-path hop by hop across the
// cluster.
func (c *Client) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int, seed int64) ([][]graph.VertexID, error) {
	if len(path) != len(fanouts) {
		return nil, fmt.Errorf("cluster: meta-path length %d != fanouts %d", len(path), len(fanouts))
	}
	layers := make([][]graph.VertexID, len(path))
	frontier := seeds
	for hop, et := range path {
		next, err := c.SampleNeighbors(frontier, et, fanouts[hop], seed+int64(hop)*7919)
		if err != nil {
			return nil, err
		}
		layers[hop] = next
		frontier = next
	}
	return layers, nil
}

// Degree queries out-degrees across the cluster.
func (c *Client) Degree(nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	out := make([]int, len(nodes))
	partNodes := make([][]graph.VertexID, len(c.peers))
	partIdx := make([][]int, len(c.peers))
	for i, n := range nodes {
		p := c.serverFor(n)
		partNodes[p] = append(partNodes[p], n)
		partIdx[p] = append(partIdx[p], i)
	}
	err := c.fanOut(func(p int) error {
		if len(partNodes[p]) == 0 {
			return nil
		}
		var reply DegreeReply
		if err := c.peers[p].Call(ServiceName+".Degree", &DegreeArgs{Nodes: partNodes[p], Type: et}, &reply); err != nil {
			return err
		}
		for j, origIdx := range partIdx[p] {
			out[origIdx] = reply.Degrees[j]
		}
		return nil
	})
	return out, err
}

// SetFeatures pushes features (and optional labels) to the servers owning
// each node under hash-by-source partitioning.
func (c *Client) SetFeatures(nodes []graph.VertexID, dim int, data []float32, labels []int32) error {
	if len(data) != len(nodes)*dim {
		return fmt.Errorf("cluster: feature payload %d != %d nodes x %d dim", len(data), len(nodes), dim)
	}
	type part struct {
		nodes  []graph.VertexID
		data   []float32
		labels []int32
	}
	parts := make([]part, len(c.peers))
	for i, n := range nodes {
		p := c.serverFor(n)
		parts[p].nodes = append(parts[p].nodes, n)
		parts[p].data = append(parts[p].data, data[i*dim:(i+1)*dim]...)
		if len(labels) != 0 {
			parts[p].labels = append(parts[p].labels, labels[i])
		}
	}
	return c.fanOut(func(p int) error {
		if len(parts[p].nodes) == 0 {
			return nil
		}
		args := &SetFeaturesArgs{Nodes: parts[p].nodes, Dim: dim, Data: parts[p].data, Labels: parts[p].labels}
		var reply SetFeaturesReply
		return c.peers[p].Call(ServiceName+".SetFeatures", args, &reply)
	})
}

// Features gathers feature rows for nodes from their owning servers into a
// dense row-major (len(nodes) x dim) matrix.
func (c *Client) Features(nodes []graph.VertexID, dim int) ([]float32, error) {
	out := make([]float32, len(nodes)*dim)
	partNodes := make([][]graph.VertexID, len(c.peers))
	partIdx := make([][]int, len(c.peers))
	for i, n := range nodes {
		p := c.serverFor(n)
		partNodes[p] = append(partNodes[p], n)
		partIdx[p] = append(partIdx[p], i)
	}
	err := c.fanOut(func(p int) error {
		if len(partNodes[p]) == 0 {
			return nil
		}
		var reply FeatureReply
		if err := c.peers[p].Call(ServiceName+".Features", &FeatureArgs{Nodes: partNodes[p], Dim: dim}, &reply); err != nil {
			return err
		}
		if len(reply.Data) != len(partNodes[p])*dim {
			return fmt.Errorf("cluster: server %d returned %d floats", p, len(reply.Data))
		}
		for j, origIdx := range partIdx[p] {
			copy(out[origIdx*dim:(origIdx+1)*dim], reply.Data[j*dim:(j+1)*dim])
		}
		return nil
	})
	return out, err
}

// Stats aggregates statistics across all servers.
func (c *Client) Stats() (StatsReply, error) {
	var mu sync.Mutex
	var agg StatsReply
	err := c.fanOut(func(p int) error {
		var reply StatsReply
		if err := c.peers[p].Call(ServiceName+".Stats", &StatsArgs{}, &reply); err != nil {
			return err
		}
		mu.Lock()
		agg.NumEdges += reply.NumEdges
		agg.MemoryBytes += reply.MemoryBytes
		mu.Unlock()
		return nil
	})
	return agg, err
}

// Close closes all peer connections.
func (c *Client) Close() error {
	var first error
	for _, p := range c.peers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fanOut runs fn(p) for every peer concurrently, returning the first error.
func (c *Client) fanOut(fn func(p int) error) error {
	errs := make([]error, len(c.peers))
	var wg sync.WaitGroup
	for p := range c.peers {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = fn(p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// NewLocalCluster spins up n in-process graph servers connected through
// in-memory pipes and returns a client plus a shutdown function. factory
// builds each server's topology store.
func NewLocalCluster(n int, factory func(i int) (storage.TopologyStore, *kvstore.Store)) (*Client, func()) {
	peers := make([]*rpc.Client, n)
	var conns []net.Conn
	for i := 0; i < n; i++ {
		store, attrs := factory(i)
		srv := NewServer(NewService(store, attrs))
		cliConn, srvConn := net.Pipe()
		go srv.ServeConn(srvConn)
		peers[i] = rpc.NewClient(cliConn)
		conns = append(conns, cliConn, srvConn)
	}
	client := NewClient(peers)
	return client, func() {
		client.Close()
		for _, c := range conns {
			c.Close()
		}
	}
}
