// Package cluster implements PlatoD2GL's distributed deployment (Sec. I:
// billion-edge graphs "cannot be stored in a single machine"): a set of
// graph servers, each owning the samtrees of the sources hashed to it
// (hash-by-source partitioning, the same scheme the paper configures for
// AliGraph), plus a fan-out client that partitions update batches and
// reassembles sampling results.
//
// Transport is net/rpc over any net.Conn: TCP for the standalone server
// binary, in-memory pipes for tests and single-process clusters — the
// paper's cluster of 54 storage servers is simulated as N in-process servers
// (see DESIGN.md, substitutions).
//
// The client side is fault tolerant (see retry.go, health.go): per-call
// timeouts, bounded retries with exponential backoff and jitter, automatic
// redial of dead peers, per-peer circuit breakers, and optional graceful
// degradation for sampling fan-outs. ApplyBatch is at-most-once: batches
// carry client-assigned sequence numbers deduplicated server-side (see
// dedup.go), so retries never double-apply deletes. The server side
// survives accept-loop hiccups and recovers handler panics into RPC errors.
//
// Shards can be replicated (see replica.go, sync.go): with Options.Replicas
// = R each logical shard maps to a group of R peers. Writes fan out to the
// whole group and converge through the at-most-once identity; reads
// load-balance across live replicas and fail over on timeout, circuit-open,
// or a replica still catching up. A rejoining replica converges by pulling
// a live peer's snapshot plus WAL tail (SyncFromPeer) before re-entering
// the read rotation.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
	"platod2gl/internal/wire"
)

// ServiceName is the registered RPC receiver name.
const ServiceName = "PlatoD2GL"

// BatchArgs carries a topology update batch. ClientID and Seq identify the
// batch for server-side at-most-once deduplication: a retried batch carries
// the same pair and is applied at most once. Zero values bypass dedup
// (legacy clients). Shard and RouteEpoch route the batch under an adopted
// shard map (see shardmap.go): a server that does not own Shard at
// RouteEpoch rejects with NotOwner instead of applying. RouteEpoch 0 is the
// legacy unrouted protocol.
type BatchArgs struct {
	Events     []graph.Event
	ClientID   uint64
	Seq        uint64
	Shard      int
	RouteEpoch uint64
	// Sum is the sender's checksum over Events (checksumEvents); the server
	// recomputes it before applying so a batch corrupted in flight is
	// rejected instead of poisoning the store. 0 = unchecksummed (legacy).
	Sum uint64
}

// BatchReply reports the resulting edge count on the server. Duplicate is
// set when the batch had already been applied and was skipped.
type BatchReply struct {
	NumEdges  int64
	Duplicate bool
}

// SampleArgs requests fanout weighted neighbor samples for each seed.
// Shard/RouteEpoch: see BatchArgs.
type SampleArgs struct {
	Seeds      []graph.VertexID
	Type       graph.EdgeType
	Fanout     int
	Seed       int64
	Shard      int
	RouteEpoch uint64
}

// SampleReply returns, per seed, its samples flattened: seed i owns
// Neighbors[i*Fanout:(i+1)*Fanout]. Slots that could not be filled hold the
// seed itself.
type SampleReply struct {
	Neighbors []graph.VertexID
}

// DegreeArgs queries out-degrees. Shard/RouteEpoch: see BatchArgs.
type DegreeArgs struct {
	Nodes      []graph.VertexID
	Type       graph.EdgeType
	Shard      int
	RouteEpoch uint64
}

// DegreeReply returns the degrees aligned with the request.
type DegreeReply struct {
	Degrees []int
}

// FeatureArgs requests dense feature rows, and optionally the nodes'
// labels — supervised training against a cluster needs the labels pushed by
// SetFeatures back out. Shard/RouteEpoch: see BatchArgs.
type FeatureArgs struct {
	Nodes      []graph.VertexID
	Dim        int
	WithLabels bool
	Shard      int
	RouteEpoch uint64
}

// FeatureReply returns a row-major (len(Nodes) × Dim) matrix, plus one
// label per node (unlabeled = 0) when WithLabels was set.
type FeatureReply struct {
	Data   []float32
	Labels []int32
}

// SourcesArgs requests the source vertices of one relation. Routed requests
// (RouteEpoch > 0) ask per logical shard and the server filters its answer
// to sources hashing into Shard — which keeps a migration destination's
// staged copy invisible until cutover, and lets one server own several
// logical shards without double-reporting.
type SourcesArgs struct {
	Type       graph.EdgeType
	Shard      int
	RouteEpoch uint64
}

// SourcesReply lists this server's sources for the relation.
type SourcesReply struct {
	Nodes []graph.VertexID
}

// SetFeaturesArgs pushes dense feature rows and labels to a server.
// Shard/RouteEpoch: see BatchArgs.
type SetFeaturesArgs struct {
	Nodes      []graph.VertexID
	Dim        int
	Data       []float32 // row-major (len(Nodes) x Dim)
	Labels     []int32   // optional, aligned with Nodes (empty = none)
	Shard      int
	RouteEpoch uint64
}

// SetFeaturesReply is empty.
type SetFeaturesReply struct{}

// StatsArgs is empty.
type StatsArgs struct{}

// StatsReply reports server-level statistics.
type StatsReply struct {
	NumEdges    int64
	MemoryBytes int64
	NumSources  int
}

// BatchHook is the durability hook invoked before every applied batch. It
// receives the batch's dedup identity so write-ahead logs can persist it and
// rebuild the dedup table on recovery.
type BatchHook func(clientID, seq uint64, events []graph.Event) error

// Service is the RPC receiver for one graph server.
type Service struct {
	store   storage.TopologyStore
	attrs   *kvstore.Store
	onBatch BatchHook
	dedup   *batchDedup
	metrics *Metrics     // catch-up/snapshot counters; may be nil
	pauseMu sync.RWMutex // held for writing while the server drains for shutdown

	// Replica sync state (see sync.go). ready gates reads: a replica that is
	// still catching up rejects them so the client fails over to a converged
	// sibling. syncEpoch changes on every completed catch-up, letting clients
	// distinguish "re-synced since my write was missed" from "still the
	// replica that missed it". syncWAL, set via EnableSync, is the local WAL
	// this server streams to catching-up siblings.
	ready     atomic.Bool
	syncBlock atomic.Bool // writes park on readyCh instead of being rejected
	syncMu    sync.Mutex  // guards readyCh and the ready/epoch transitions
	readyCh   chan struct{}
	syncEpoch atomic.Uint64
	syncWAL   *eventlog.Writer

	// Routing and migration state (see shardmap.go, migrate.go). routing is
	// the installed shard map view (nil: unrouted legacy server); parked maps
	// mid-cutover shards to their write gates; dialFor resolves a migration
	// source address to a transport for PullShard.
	advertise atomic.Pointer[string]
	routing   atomic.Pointer[serviceRouting]
	routeMu   sync.Mutex // serializes routing installs; guards dialFor
	dialFor   func(addr string) Dialer
	parkMu    sync.Mutex
	parked    map[int]*shardGate
	migMu     sync.Mutex     // one inbound migration pull at a time
	hooks     MigrationHooks // chaos-test instrumentation; zero in production

	// scrubber, when installed (SetScrubber), serves on-demand anti-entropy
	// rounds via the Scrub RPC. See antientropy.go.
	scrubber atomic.Pointer[Scrubber]
}

// NewService wraps a topology store and an attribute store. The service
// starts ready (serving reads); replicated deployments that must catch up
// first call BeginCatchUp before exposing it.
func NewService(store storage.TopologyStore, attrs *kvstore.Store) *Service {
	s := &Service{store: store, attrs: attrs, dedup: newBatchDedup(), parked: make(map[int]*shardGate)}
	s.ready.Store(true)
	s.syncEpoch.Store(nextSyncEpoch())
	return s
}

// SetBatchHook installs a durability hook invoked before every applied
// batch (e.g. a write-ahead log append). A hook error rejects the batch.
func (s *Service) SetBatchHook(fn BatchHook) { s.onBatch = fn }

// MarkApplied seeds the dedup table with a batch identity recovered from a
// write-ahead log, so client retries that straddle a server restart stay
// at-most-once.
func (s *Service) MarkApplied(clientID, seq uint64) { s.dedup.markApplied(clientID, seq) }

// Pause blocks new batch applications (in-flight ones drain first) and
// returns a resume function. Used to quiesce the store before a shutdown
// snapshot so the snapshot and the truncated WAL agree.
func (s *Service) Pause() (resume func()) {
	s.pauseMu.Lock()
	var once sync.Once
	return func() { once.Do(s.pauseMu.Unlock) }
}

// guard converts a handler panic into an RPC error so one poisoned request
// cannot kill the connection goroutine (and with it every multiplexed
// in-flight call on that conn).
func guard(method string, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("cluster: %s: recovered panic: %v", method, r)
	}
}

// ApplyBatch applies a topology update batch at most once, invoking the
// durability hook first. Duplicate (ClientID, Seq) pairs are skipped and
// reported as success.
func (s *Service) ApplyBatch(args *BatchArgs, reply *BatchReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("ApplyBatch", start) }()
	if err := s.checkRoute(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	// Verify before the dedup claim: a corrupted batch must not consume its
	// at-most-once identity, or the client's (clean) retry would be skipped
	// as a duplicate.
	if err := verifySum(s.metrics, "ApplyBatch events", checksumEvents(args.Events), args.Sum); err != nil {
		return err
	}
	// Gates before pauseMu: a write parked on the catch-up or migration gate
	// must not hold the read lock, or the gate owner's own Pause() barrier
	// would deadlock against it.
	if err := s.gateWrite(); err != nil {
		return err
	}
	if err := s.gateShardWrite(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	return s.applyBatch(args, reply)
}

// applyBatch is ApplyBatch without the catch-up gate — the entry point for
// WAL-tail records during catch-up, which must apply while the gate holds
// direct writes back.
func (s *Service) applyBatch(args *BatchArgs, reply *BatchReply) (err error) {
	s.pauseMu.RLock()
	defer s.pauseMu.RUnlock()
	var finish func(error)
	if args.ClientID != 0 && args.Seq != 0 {
		var apply bool
		var derr error
		apply, finish, derr = s.dedup.claim(args.ClientID, args.Seq)
		if derr != nil {
			return derr
		}
		if !apply {
			reply.NumEdges = s.store.NumEdges()
			reply.Duplicate = true
			return nil
		}
	}
	defer func() {
		guard("ApplyBatch", &err)
		if finish != nil {
			finish(err)
		}
	}()
	if s.onBatch != nil {
		if err := s.onBatch(args.ClientID, args.Seq, args.Events); err != nil {
			return fmt.Errorf("cluster: batch hook: %w", err)
		}
	}
	s.store.ApplyBatch(args.Events)
	reply.NumEdges = s.store.NumEdges()
	return nil
}

// SampleNeighbors draws weighted neighbor samples for each seed.
func (s *Service) SampleNeighbors(args *SampleArgs, reply *SampleReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("SampleNeighbors", start) }()
	defer guard("SampleNeighbors", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	if err := s.checkRoute(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	if args.Fanout < 0 {
		return fmt.Errorf("cluster: negative fanout %d", args.Fanout)
	}
	smp := newServerSampler(s.store, args.Seed)
	reply.Neighbors = smp.sample(args.Seeds, args.Type, args.Fanout)
	return nil
}

// Degree returns out-degrees.
func (s *Service) Degree(args *DegreeArgs, reply *DegreeReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("Degree", start) }()
	defer guard("Degree", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	if err := s.checkRoute(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	reply.Degrees = make([]int, len(args.Nodes))
	for i, n := range args.Nodes {
		reply.Degrees[i] = s.store.Degree(n, args.Type)
	}
	return nil
}

// Features gathers feature rows.
func (s *Service) Features(args *FeatureArgs, reply *FeatureReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("Features", start) }()
	defer guard("Features", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	if err := s.checkRoute(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	if s.attrs == nil {
		return fmt.Errorf("cluster: server has no attribute store")
	}
	reply.Data = s.attrs.GatherFeatures(args.Nodes, args.Dim)
	if args.WithLabels {
		reply.Labels = s.attrs.GatherLabels(args.Nodes)
	}
	return nil
}

// Sources lists this server's source vertices for a relation. A routed
// request is answered with only the sources hashing into the requested
// shard, so sources staged here by an in-flight migration (owned elsewhere
// until cutover) are never reported early.
func (s *Service) Sources(args *SourcesArgs, reply *SourcesReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("Sources", start) }()
	defer guard("Sources", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	if err := s.checkRoute(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	all := s.store.Sources(args.Type)
	if args.RouteEpoch != 0 {
		if v := s.routedNumShards(); v > 0 {
			kept := make([]graph.VertexID, 0, len(all))
			for _, n := range all {
				if ShardOf(n, v) == args.Shard {
					kept = append(kept, n)
				}
			}
			all = kept
		}
	}
	reply.Nodes = all
	return nil
}

// SetFeatures stores feature rows (and optional labels) on this server.
func (s *Service) SetFeatures(args *SetFeaturesArgs, _ *SetFeaturesReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("SetFeatures", start) }()
	defer guard("SetFeatures", &err)
	if err := s.checkRoute(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	if err := s.gateWrite(); err != nil {
		return err
	}
	if err := s.gateShardWrite(args.Shard, args.RouteEpoch); err != nil {
		return err
	}
	// Hold pauseMu like topology writes do: ParkShard's Pause barrier must
	// drain in-flight feature writes too, or FetchShardFeatures could race a
	// write that passed the gate before the park.
	s.pauseMu.RLock()
	defer s.pauseMu.RUnlock()
	if s.attrs == nil {
		return fmt.Errorf("cluster: server has no attribute store")
	}
	if len(args.Data) != len(args.Nodes)*args.Dim {
		return fmt.Errorf("cluster: feature payload %d != %d nodes x %d dim",
			len(args.Data), len(args.Nodes), args.Dim)
	}
	if len(args.Labels) != 0 && len(args.Labels) != len(args.Nodes) {
		return fmt.Errorf("cluster: %d labels for %d nodes", len(args.Labels), len(args.Nodes))
	}
	for i, n := range args.Nodes {
		row := make([]float32, args.Dim)
		copy(row, args.Data[i*args.Dim:(i+1)*args.Dim])
		s.attrs.SetFeatures(n, row)
		if len(args.Labels) != 0 {
			s.attrs.SetLabel(n, args.Labels[i])
		}
	}
	return nil
}

// Stats reports server statistics. NumSources counts distinct source
// vertices with out-edges across all relations, when the store exposes
// per-relation stats (DynamicStore does).
func (s *Service) Stats(_ *StatsArgs, reply *StatsReply) (err error) {
	start := time.Now()
	defer func() { s.metrics.observeServed("Stats", start) }()
	defer guard("Stats", &err)
	if !s.ready.Load() {
		return ErrReplicaNotReady
	}
	reply.NumEdges = s.store.NumEdges()
	reply.MemoryBytes = s.store.MemoryBytes()
	if rs, ok := s.store.(interface {
		AllStats() []storage.RelationStats
	}); ok {
		for _, st := range rs.AllStats() {
			reply.NumSources += st.Sources
		}
	}
	return nil
}

// Server serves the RPC service over accepted connections, speaking either
// the binary wire protocol or legacy net/rpc gob per connection — the codec
// is sniffed from the first bytes (see dispatch.go). Wire connections pass
// through the admission gate (see admission.go); gob connections bypass it —
// a legacy peer negotiated down to exactly today's behavior.
type Server struct {
	rpcServer *rpc.Server
	svc       *Service
	admit     *admissionGate
	limits    ServerLimits
	maxWire   atomic.Uint32 // negotiation cap; 0 = wire.Version
	conns     atomic.Int64  // live sniffed-or-serving connections
	hsSem     chan struct{} // in-flight handshake tokens; nil = unlimited
}

// ServerLimits bounds the server's accept-side resources. Connections past
// MaxConns, and connections that cannot get a handshake token when
// MaxHandshakes are already sniffing/negotiating, are closed immediately —
// a clean refusal the client sees as a dial/handshake failure — instead of
// each occupying a goroutine forever. The zero value disables all caps
// (in-process pipe clusters want that).
type ServerLimits struct {
	// MaxConns caps concurrently served connections. <= 0: unlimited.
	MaxConns int
	// MaxHandshakes caps connections simultaneously inside the
	// sniff/handshake phase. <= 0: unlimited.
	MaxHandshakes int
	// HandshakeTimeout bounds the sniff + version negotiation of one fresh
	// connection, so a peer that connects and goes silent cannot pin a
	// handshake token. <= 0: no deadline.
	HandshakeTimeout time.Duration
}

// DefaultServerLimits is the production starting point for TCP servers.
func DefaultServerLimits() ServerLimits {
	return ServerLimits{MaxConns: 1024, MaxHandshakes: 128, HandshakeTimeout: 5 * time.Second}
}

// NewServer registers the service. The admission gate starts at
// DefaultAdmission; accept-side limits start disabled (SetLimits).
func NewServer(svc *Service) *Server {
	rs := rpc.NewServer()
	if err := rs.RegisterName(ServiceName, svc); err != nil {
		panic(fmt.Sprintf("cluster: register: %v", err))
	}
	s := &Server{rpcServer: rs, svc: svc}
	s.admit = newAdmissionGate(DefaultAdmission(), svc.metrics)
	return s
}

// SetAdmission replaces the admission gate's configuration.
// cfg.MaxConcurrent <= 0 disables admission control entirely. Call before
// Serve; the gate is swapped without synchronization.
func (s *Server) SetAdmission(cfg AdmissionConfig) {
	s.admit = newAdmissionGate(cfg, s.svc.metrics)
}

// SetLimits installs accept-side resource caps. Call before Serve.
func (s *Server) SetLimits(l ServerLimits) {
	s.limits = l
	if l.MaxHandshakes > 0 {
		s.hsSem = make(chan struct{}, l.MaxHandshakes)
	} else {
		s.hsSem = nil
	}
}

// SetMaxWireVersion caps the protocol version the server negotiates —
// a rollback hook, and the lever interop tests use to stand up a "v1
// server" from current code. 0 restores the default (wire.Version).
func (s *Server) SetMaxWireVersion(v byte) { s.maxWire.Store(uint32(v)) }

func (s *Server) maxWireVersion() byte {
	if v := s.maxWire.Load(); v != 0 {
		return byte(v)
	}
	return wire.Version
}

// acceptBackoffMax caps the accept-loop retry delay.
const acceptBackoffMax = time.Second

// Serve accepts connections until the listener closes. Transient accept
// errors (EMFILE, ECONNABORTED, ...) are retried with exponential backoff
// instead of silently killing the server's accept loop.
func (s *Server) Serve(lis net.Listener) {
	var delay time.Duration
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else if delay *= 2; delay > acceptBackoffMax {
				delay = acceptBackoffMax
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		if maxC := s.limits.MaxConns; maxC > 0 && s.conns.Load() >= int64(maxC) {
			s.svc.metrics.incConnRejected()
			conn.Close()
			continue
		}
		s.conns.Add(1)
		go func(conn net.Conn) {
			defer s.conns.Add(-1)
			s.serveConn(conn)
		}(conn)
	}
}

// ServeConn serves a single connection (blocking), sniffing the codec.
func (s *Server) ServeConn(conn net.Conn) { s.serveConn(conn) }

// ShardError is one shard's failure inside a degraded fan-out.
type ShardError struct {
	Shard int
	Err   error
}

func (e ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

func (e ShardError) Unwrap() error { return e.Err }

// FanoutReport describes a fan-out's per-shard outcome in degradation mode.
type FanoutReport struct {
	Shards int          // shards the request fanned out to
	Errors []ShardError // shards that failed (their slots were backfilled)
}

// Degraded reports whether any shard failed.
func (r *FanoutReport) Degraded() bool { return r != nil && len(r.Errors) > 0 }

// Err returns nil for a clean fan-out, or an error summarizing the failed
// shards.
func (r *FanoutReport) Err() error {
	if !r.Degraded() {
		return nil
	}
	return fmt.Errorf("cluster: %d/%d shards failed (first: %v)", len(r.Errors), r.Shards, r.Errors[0])
}

// Client is the fan-out client over a set of graph servers. Sources are
// partitioned hash-by-source across logical shards: shard(src) = h(src) mod
// NumShards. With Options.Replicas = R, each shard is served by a replica
// group of R peers (consecutive in the peer list): writes fan out to every
// replica, reads load-balance across them with automatic failover.
type Client struct {
	// peerMu guards peers and peerByAddr: the peer list grows when an
	// adopted shard map introduces a server the client has not dialed
	// (elastic scale-out), so every indexed access goes through peerAt or a
	// locked section. Existing entries are never mutated or removed.
	peerMu     sync.RWMutex
	peers      []*peer // grouped: shard s owns peers[s*replicas:(s+1)*replicas]
	peerByAddr map[string]int

	shards   int
	replicas int
	opts     Options
	metrics  *Metrics
	clientID uint64
	seq      atomic.Uint64
	// rr holds one read-rotation counter per logical shard. Per-shard (not
	// global) counters matter: a fan-out touching every shard advances a
	// global counter by exactly NumShards, so with stable goroutine
	// scheduling each shard would see a constant rotation phase — starving
	// some replicas of reads (and stale replicas of re-sync probes) forever.
	rr []atomic.Uint64

	// route is the adopted shard map view (nil: legacy frozen placement);
	// refreshMu single-flights map refreshes and adoption.
	route     atomic.Pointer[clientRoute]
	refreshMu sync.Mutex

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// newClientID draws a nonzero dedup identity for this client.
func newClientID(rng *rand.Rand) uint64 {
	for {
		if id := rng.Uint64(); id != 0 {
			return id
		}
	}
}

// NewClient wraps established per-server RPC connections with legacy
// semantics: no timeouts, no retries, no redial. Prefer Dial or
// NewClientOptions for fault tolerance.
func NewClient(peers []*rpc.Client) *Client {
	return NewClientOptions(peers, nil, Options{})
}

// NewClientOptions builds a fault-tolerant client from established
// connections plus optional per-peer dialers for reconnection. conns[i] may
// be nil when dialers[i] can establish the connection lazily; dialers may be
// nil (no redial) or hold nil entries. With Options.Replicas = R > 1 the
// peer list must be grouped consecutively by shard — shard s's replicas at
// indices [s*R, (s+1)*R) — and its length must be a multiple of R.
func NewClientOptions(conns []*rpc.Client, dialers []Dialer, opts Options) *Client {
	n := len(conns)
	if n == 0 {
		n = len(dialers)
	}
	if n == 0 {
		panic("cluster: client needs at least one peer")
	}
	r := opts.Replicas
	if r <= 0 {
		r = 1
	}
	if n%r != 0 {
		panic(fmt.Sprintf("cluster: %d peers not divisible into replica groups of %d", n, r))
	}
	jitter := newJitterRNG(opts.Seed)
	c := &Client{opts: opts, metrics: opts.Metrics, jitter: jitter, shards: n / r, replicas: r,
		peerByAddr: make(map[string]int)}
	if c.metrics == nil {
		// Allocate eagerly so counters recorded before the first Metrics()
		// call are never lost and the accessor stays race-free.
		c.metrics = &Metrics{}
	}
	c.clientID = newClientID(jitter)
	c.rr = make([]atomic.Uint64, c.shards)
	c.peers = make([]*peer, n)
	for i := range c.peers {
		p := &peer{
			idx: i, shard: i / r, replica: i % r,
			br: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, c.metrics),
		}
		if i < len(conns) && conns[i] != nil {
			// Pre-established rpc.Clients are by construction gob sessions.
			p.tc = &gobTransport{rc: conns[i], m: c.metrics}
		}
		if i < len(dialers) {
			p.dial = dialers[i]
		}
		c.peers[i] = p
	}
	return c
}

// Dial connects to a cluster of graph servers over TCP with fault-tolerant
// options; dead peers are redialed automatically. With Options.Replicas = R
// the address list is grouped consecutively by shard: addrs[s*R:(s+1)*R]
// are shard s's replicas. A replicated cluster is expected to be dialable
// with some replicas down, so with R > 1 an unreachable peer is tolerated —
// it reconnects lazily on first use — as long as every replica group has at
// least one live member; with R = 1 every server must answer.
func Dial(addrs []string, opts Options) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no server addresses")
	}
	r := opts.Replicas
	if r < 1 {
		r = 1
	}
	if len(addrs)%r != 0 {
		return nil, fmt.Errorf("cluster: %d addresses not divisible into replica groups of %d", len(addrs), r)
	}
	if opts.Metrics == nil {
		// Allocate before the eager dials so handshake/negotiation metrics
		// from them land in the same Metrics the client will use.
		opts.Metrics = &Metrics{}
	}
	fail := func(transports []Transport, err error) (*Client, error) {
		for _, t := range transports {
			if t != nil {
				t.Close()
			}
		}
		return nil, err
	}
	transports := make([]Transport, len(addrs))
	dialers := make([]Dialer, len(addrs))
	for i, addr := range addrs {
		dialers[i] = TCPDialer(addr, opts.CallTimeout)
		t, err := dialTransport(dialers[i], opts.Protocol, opts.CallTimeout, opts.Metrics, opts.MaxWireVersion)
		if err != nil {
			if r == 1 {
				return fail(transports, fmt.Errorf("cluster: dial %s: %w", addr, err))
			}
			continue
		}
		transports[i] = t
	}
	for s := 0; s*r < len(addrs); s++ {
		live := 0
		for i := s * r; i < (s+1)*r; i++ {
			if transports[i] != nil {
				live++
			}
		}
		if live == 0 {
			return fail(transports, fmt.Errorf("cluster: no live replica for shard %d (%v)", s, addrs[s*r:(s+1)*r]))
		}
	}
	c := NewClientOptions(nil, dialers, opts)
	for i, t := range transports {
		if t != nil {
			c.peers[i].tc = t
		}
	}
	c.SetPeerAddrs(addrs)
	// Routing handshake: learn the cluster's shard map (if it has one) and
	// fail fast on a torn or stale map instead of silently mis-routing.
	if err := c.handshake(addrs); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// SetPeerAddrs records the server address of peer i as addrs[i], letting an
// adopted shard map (AdoptRouting) match its server list against the peers
// the client already has instead of dialing duplicates. Dial does this
// automatically; NewClientOptions callers (in-process clusters) do it by
// hand with their pseudo-addresses.
func (c *Client) SetPeerAddrs(addrs []string) {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	for i, addr := range addrs {
		if i >= len(c.peers) || addr == "" {
			break
		}
		c.peers[i].addr = addr
		c.peerByAddr[addr] = i
	}
}

// peerAt returns peer i under the read lock (the peer list can grow
// concurrently when a shard map introduces a new server).
func (c *Client) peerAt(i int) *peer {
	c.peerMu.RLock()
	defer c.peerMu.RUnlock()
	return c.peers[i]
}

// allPeers snapshots the peer list.
func (c *Client) allPeers() []*peer {
	c.peerMu.RLock()
	defer c.peerMu.RUnlock()
	return c.peers[:len(c.peers):len(c.peers)]
}

// NumServers returns the total peer count, including servers learned from
// an adopted shard map after the initial dial.
func (c *Client) NumServers() int { return len(c.allPeers()) }

// Metrics returns the client's fault-tolerance counters (never nil; a
// private instance is used when Options.Metrics was unset).
func (c *Client) Metrics() *Metrics { return c.metrics }

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// numShards returns the logical shard count requests partition under: the
// adopted shard map's fixed hash space when routed, one shard per replica
// group otherwise.
func (c *Client) numShards() int {
	if rt := c.route.Load(); rt != nil {
		return rt.m.NumShards
	}
	return c.shards
}

// shardFor maps a source vertex to its owning logical shard. Replication
// and routing do not change the hash: the shard map only changes which
// server group a shard resolves to, never which shard a vertex hashes to.
func (c *Client) shardFor(src graph.VertexID) int {
	return ShardOf(src, c.numShards())
}

// ApplyBatch partitions events by source shard and applies the per-shard
// sub-batches in parallel, fanning each sub-batch out to every replica of
// its shard. All replicas receive the same (ClientID, Seq) identity, so
// server-side dedup both makes retries at-most-once (even for deletes) and
// lets a batch that reaches a replica twice — directly and via catch-up
// WAL streaming — apply exactly once. A sub-batch succeeds when any replica
// acknowledges it; replicas that missed it are marked stale and repaired by
// catch-up.
func (c *Client) ApplyBatch(events []graph.Event) error {
	return c.ApplyBatchCtx(context.Background(), events)
}

// ApplyBatchCtx is ApplyBatch with a caller-supplied context: the deadline
// (when set) propagates to every server as the request's remaining budget and
// bounds the retry loop end to end, and a WithPriority annotation overrides
// the method's default admission class.
func (c *Client) ApplyBatchCtx(ctx context.Context, events []graph.Event) error {
	shards := c.numShards()
	parts := make([][]graph.Event, shards)
	for _, ev := range events {
		p := c.shardFor(ev.Edge.Src)
		parts[p] = append(parts[p], ev)
	}
	seqs := make([]uint64, shards)
	for p := range parts {
		if len(parts[p]) != 0 {
			seqs[p] = c.seq.Add(1)
		}
	}
	return c.fanOut(shards, func(s int) error {
		if len(parts[s]) == 0 {
			return nil
		}
		args := &BatchArgs{Events: parts[s], ClientID: c.clientID, Seq: seqs[s], Sum: checksumEvents(parts[s])}
		return c.writeShard(ctx, s, args, func(ctx context.Context, pe *peer, maxRetries int) error {
			var reply BatchReply
			return c.callPeCtx(ctx, pe, ServiceName+".ApplyBatch", args, &reply, maxRetries)
		})
	})
}

// SampleNeighbors draws fanout samples per seed across the cluster,
// reassembling results in seed order. Missing slots hold the seed itself.
// With Options.Degraded set, a failed shard degrades its seeds to self-loop
// fallbacks instead of failing the batch; use SampleNeighborsDegraded to
// also receive the per-shard error report.
func (c *Client) SampleNeighbors(seeds []graph.VertexID, et graph.EdgeType, fanout int, seed int64) ([]graph.VertexID, error) {
	return c.SampleNeighborsCtx(context.Background(), seeds, et, fanout, seed)
}

// SampleNeighborsCtx is SampleNeighbors with a caller-supplied context whose
// deadline propagates cluster-wide as the request budget.
func (c *Client) SampleNeighborsCtx(ctx context.Context, seeds []graph.VertexID, et graph.EdgeType, fanout int, seed int64) ([]graph.VertexID, error) {
	out, report, err := c.sampleNeighbors(ctx, seeds, et, fanout, seed, c.opts.Degraded)
	if err != nil {
		return nil, err
	}
	_ = report // degradation details available via SampleNeighborsDegraded
	return out, nil
}

// SampleNeighborsDegraded is SampleNeighbors in explicit degradation mode:
// it always returns full-length results — a dead shard's slots fall back to
// the seed itself, exactly the protocol's existing convention for unknown
// vertices — plus a report of which shards failed and why.
func (c *Client) SampleNeighborsDegraded(seeds []graph.VertexID, et graph.EdgeType, fanout int, seed int64) ([]graph.VertexID, *FanoutReport, error) {
	return c.sampleNeighbors(context.Background(), seeds, et, fanout, seed, true)
}

func (c *Client) sampleNeighbors(ctx context.Context, seeds []graph.VertexID, et graph.EdgeType, fanout int, seed int64, degraded bool) ([]graph.VertexID, *FanoutReport, error) {
	if fanout < 0 {
		return nil, nil, fmt.Errorf("cluster: negative fanout %d", fanout)
	}
	out := make([]graph.VertexID, len(seeds)*fanout)
	shards := c.numShards()
	// Coalesce duplicate seeds per shard: multi-hop frontiers repeat
	// vertices heavily, so each shard samples every distinct seed once and
	// the reply block is scattered back to all of its occurrences. The
	// coalescing scratch (per-shard seed slices, occurrence lists, uniq map)
	// is pooled across fan-outs — see scratch.go.
	scratch := getSampleScratch(shards)
	partSeeds, partOcc, uniqOf := scratch.partSeeds, scratch.partOcc, scratch.uniqOf
	uniq := 0
	for i, s := range seeds {
		p := c.shardFor(s)
		j, ok := uniqOf[s]
		if !ok {
			j = len(partSeeds[p])
			uniqOf[s] = j
			partSeeds[p] = append(partSeeds[p], s)
			scratch.addOcc(p)
			uniq++
		}
		partOcc[p][j] = append(partOcc[p][j], i)
	}
	if dups := len(seeds) - uniq; dups > 0 {
		// Savings: 8 bytes per duplicate seed on the request, 8*fanout
		// bytes per duplicate's sample block on the reply.
		c.metrics.addCoalesced(int64(dups), int64(dups)*8*int64(1+fanout))
	}
	report := &FanoutReport{}
	for p := range partSeeds {
		if len(partSeeds[p]) != 0 {
			report.Shards++
		}
	}
	errs := c.fanOutAll(shards, func(p int) error {
		if len(partSeeds[p]) == 0 {
			return nil
		}
		args := &SampleArgs{Seeds: partSeeds[p], Type: et, Fanout: fanout, Seed: seed + int64(p)}
		var reply SampleReply
		if err := c.readShard(ctx, p, ServiceName+".SampleNeighbors", args, &reply); err != nil {
			return err
		}
		if len(reply.Neighbors) != len(partSeeds[p])*fanout {
			return fmt.Errorf("cluster: shard %d returned %d samples, want %d",
				p, len(reply.Neighbors), len(partSeeds[p])*fanout)
		}
		for j := range partSeeds[p] {
			block := reply.Neighbors[j*fanout : (j+1)*fanout]
			for _, origIdx := range partOcc[p][j] {
				copy(out[origIdx*fanout:(origIdx+1)*fanout], block)
			}
		}
		return nil
	})
	for p, err := range errs {
		if err == nil {
			continue
		}
		if !degraded {
			c.recycleSampleScratch(scratch)
			return nil, nil, err
		}
		report.Errors = append(report.Errors, ShardError{Shard: p, Err: err})
		// Graceful degradation: the dead shard's seeds fall back to
		// themselves, keeping the result full-length so training proceeds
		// on partial neighborhoods.
		for _, occ := range partOcc[p] {
			for _, origIdx := range occ {
				base := origIdx * fanout
				for k := 0; k < fanout; k++ {
					out[base+k] = seeds[origIdx]
				}
			}
		}
	}
	c.recycleSampleScratch(scratch)
	return out, report, nil
}

// SampleSubgraph expands seeds along a meta-path hop by hop across the
// cluster.
func (c *Client) SampleSubgraph(seeds []graph.VertexID, path graph.MetaPath, fanouts []int, seed int64) ([][]graph.VertexID, error) {
	return c.SampleSubgraphCtx(context.Background(), seeds, path, fanouts, seed)
}

// SampleSubgraphCtx is SampleSubgraph with a caller-supplied context whose
// deadline bounds the whole multi-hop expansion, not just one hop.
func (c *Client) SampleSubgraphCtx(ctx context.Context, seeds []graph.VertexID, path graph.MetaPath, fanouts []int, seed int64) ([][]graph.VertexID, error) {
	if len(path) != len(fanouts) {
		return nil, fmt.Errorf("cluster: meta-path length %d != fanouts %d", len(path), len(fanouts))
	}
	layers := make([][]graph.VertexID, len(path))
	frontier := seeds
	for hop, et := range path {
		next, err := c.SampleNeighborsCtx(ctx, frontier, et, fanouts[hop], seed+int64(hop)*7919)
		if err != nil {
			return nil, err
		}
		layers[hop] = next
		frontier = next
	}
	return layers, nil
}

// Degree queries out-degrees across the cluster, reading one live replica
// per shard.
func (c *Client) Degree(nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	return c.DegreeCtx(context.Background(), nodes, et)
}

// DegreeCtx is Degree with a caller-supplied context whose deadline
// propagates cluster-wide as the request budget.
func (c *Client) DegreeCtx(ctx context.Context, nodes []graph.VertexID, et graph.EdgeType) ([]int, error) {
	out := make([]int, len(nodes))
	shards := c.numShards()
	scratch := getFanoutScratch(shards)
	for i, n := range nodes {
		scratch.add(c.shardFor(n), n, i)
	}
	partNodes, partIdx := scratch.partNodes, scratch.partIdx
	err := c.fanOut(shards, func(p int) error {
		if len(partNodes[p]) == 0 {
			return nil
		}
		var reply DegreeReply
		if err := c.readShard(ctx, p, ServiceName+".Degree", &DegreeArgs{Nodes: partNodes[p], Type: et}, &reply); err != nil {
			return err
		}
		for j, origIdx := range partIdx[p] {
			out[origIdx] = reply.Degrees[j]
		}
		return nil
	})
	c.recycleFanoutScratch(scratch)
	return out, err
}

// SetFeatures pushes features (and optional labels) to the servers owning
// each node under hash-by-source partitioning. Feature writes are absolute
// (last write wins), so retries are safe without dedup.
func (c *Client) SetFeatures(nodes []graph.VertexID, dim int, data []float32, labels []int32) error {
	return c.SetFeaturesCtx(context.Background(), nodes, dim, data, labels)
}

// SetFeaturesCtx is SetFeatures with a caller-supplied context whose
// deadline propagates cluster-wide as the request budget.
func (c *Client) SetFeaturesCtx(ctx context.Context, nodes []graph.VertexID, dim int, data []float32, labels []int32) error {
	if len(data) != len(nodes)*dim {
		return fmt.Errorf("cluster: feature payload %d != %d nodes x %d dim", len(data), len(nodes), dim)
	}
	type part struct {
		nodes  []graph.VertexID
		data   []float32
		labels []int32
	}
	shards := c.numShards()
	parts := make([]part, shards)
	for i, n := range nodes {
		p := c.shardFor(n)
		parts[p].nodes = append(parts[p].nodes, n)
		parts[p].data = append(parts[p].data, data[i*dim:(i+1)*dim]...)
		if len(labels) != 0 {
			parts[p].labels = append(parts[p].labels, labels[i])
		}
	}
	return c.fanOut(shards, func(s int) error {
		if len(parts[s].nodes) == 0 {
			return nil
		}
		args := &SetFeaturesArgs{Nodes: parts[s].nodes, Dim: dim, Data: parts[s].data, Labels: parts[s].labels}
		return c.writeShard(ctx, s, args, func(ctx context.Context, pe *peer, maxRetries int) error {
			var reply SetFeaturesReply
			return c.callPeCtx(ctx, pe, ServiceName+".SetFeatures", args, &reply, maxRetries)
		})
	})
}

// Features gathers feature rows for nodes from their owning shards into a
// dense row-major (len(nodes) x dim) matrix, reading one live replica per
// shard.
func (c *Client) Features(nodes []graph.VertexID, dim int) ([]float32, error) {
	data, _, err := c.featuresLabels(context.Background(), nodes, dim, false)
	return data, err
}

// FeaturesCtx is Features with a caller-supplied context whose deadline
// propagates cluster-wide as the request budget.
func (c *Client) FeaturesCtx(ctx context.Context, nodes []graph.VertexID, dim int) ([]float32, error) {
	data, _, err := c.featuresLabels(ctx, nodes, dim, false)
	return data, err
}

// FeaturesLabels gathers feature rows and class labels in one fan-out —
// the read half of SetFeatures' (features, labels) push, which supervised
// training needs back out. Unlabeled nodes get label 0.
func (c *Client) FeaturesLabels(nodes []graph.VertexID, dim int) ([]float32, []int32, error) {
	return c.featuresLabels(context.Background(), nodes, dim, true)
}

// FeaturesLabelsCtx is FeaturesLabels with a caller-supplied context whose
// deadline propagates cluster-wide as the request budget.
func (c *Client) FeaturesLabelsCtx(ctx context.Context, nodes []graph.VertexID, dim int) ([]float32, []int32, error) {
	return c.featuresLabels(ctx, nodes, dim, true)
}

// Labels gathers only class labels (one fan-out, no feature payload).
func (c *Client) Labels(nodes []graph.VertexID) ([]int32, error) {
	_, labels, err := c.featuresLabels(context.Background(), nodes, 0, true)
	return labels, err
}

func (c *Client) featuresLabels(ctx context.Context, nodes []graph.VertexID, dim int, withLabels bool) ([]float32, []int32, error) {
	out := make([]float32, len(nodes)*dim)
	var labels []int32
	if withLabels {
		labels = make([]int32, len(nodes))
	}
	shards := c.numShards()
	scratch := getFanoutScratch(shards)
	for i, n := range nodes {
		scratch.add(c.shardFor(n), n, i)
	}
	partNodes, partIdx := scratch.partNodes, scratch.partIdx
	err := c.fanOut(shards, func(p int) error {
		if len(partNodes[p]) == 0 {
			return nil
		}
		var reply FeatureReply
		args := &FeatureArgs{Nodes: partNodes[p], Dim: dim, WithLabels: withLabels}
		if err := c.readShard(ctx, p, ServiceName+".Features", args, &reply); err != nil {
			return err
		}
		if len(reply.Data) != len(partNodes[p])*dim {
			return fmt.Errorf("cluster: shard %d returned %d floats", p, len(reply.Data))
		}
		if withLabels && len(reply.Labels) != len(partNodes[p]) {
			return fmt.Errorf("cluster: shard %d returned %d labels for %d nodes",
				p, len(reply.Labels), len(partNodes[p]))
		}
		for j, origIdx := range partIdx[p] {
			copy(out[origIdx*dim:(origIdx+1)*dim], reply.Data[j*dim:(j+1)*dim])
			if withLabels {
				labels[origIdx] = reply.Labels[j]
			}
		}
		return nil
	})
	c.recycleFanoutScratch(scratch)
	return out, labels, err
}

// Sources lists the cluster's source vertices for a relation, concatenated
// across logical shards (one live replica each) and sorted for determinism.
// Routed clients ask per logical shard and servers filter to the shard's
// hash slice, so a server owning several shards is asked once per shard and
// never double-reports, and migration-staged copies stay invisible.
func (c *Client) Sources(et graph.EdgeType) ([]graph.VertexID, error) {
	return c.SourcesCtx(context.Background(), et)
}

// SourcesCtx is Sources with a caller-supplied context whose deadline
// propagates cluster-wide as the request budget.
func (c *Client) SourcesCtx(ctx context.Context, et graph.EdgeType) ([]graph.VertexID, error) {
	var mu sync.Mutex
	var all []graph.VertexID
	err := c.fanOut(c.numShards(), func(p int) error {
		var reply SourcesReply
		if err := c.readShard(ctx, p, ServiceName+".Sources", &SourcesArgs{Type: et}, &reply); err != nil {
			return err
		}
		mu.Lock()
		all = append(all, reply.Nodes...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, nil
}

// Stats aggregates statistics across the cluster, counting each server
// group once (one live replica per group), so totals match an unreplicated
// deployment of the same data. During an in-flight migration the copy
// staged on the destination is transiently counted too — Stats is a
// capacity view, not a topology oracle.
func (c *Client) Stats() (StatsReply, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats with a caller-supplied context whose deadline propagates
// cluster-wide as the request budget.
func (c *Client) StatsCtx(ctx context.Context) (StatsReply, error) {
	var mu sync.Mutex
	var agg StatsReply
	collect := func(reply *StatsReply) {
		mu.Lock()
		agg.NumEdges += reply.NumEdges
		agg.MemoryBytes += reply.MemoryBytes
		agg.NumSources += reply.NumSources
		mu.Unlock()
	}
	if rt := c.route.Load(); rt != nil {
		errs := make([]error, len(rt.groups))
		var wg sync.WaitGroup
		for g := range rt.groups {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var reply StatsReply
				if err := c.readGroup(ctx, g, rt.groups[g], &rt.rr[g], ServiceName+".Stats", &StatsArgs{}, &reply); err != nil {
					errs[g] = err
					return
				}
				collect(&reply)
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return agg, err
			}
		}
		return agg, nil
	}
	err := c.fanOut(c.shards, func(p int) error {
		var reply StatsReply
		if err := c.readShard(ctx, p, ServiceName+".Stats", &StatsArgs{}, &reply); err != nil {
			return err
		}
		collect(&reply)
		return nil
	})
	return agg, err
}

// Close closes all peer connections.
func (c *Client) Close() error {
	var first error
	for _, p := range c.allPeers() {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// fanOut runs fn(s) for shards logical shards concurrently, returning the
// first error. The caller passes the shard count it partitioned under so a
// concurrent first-time routing adoption cannot skew the fan-out width.
func (c *Client) fanOut(shards int, fn func(s int) error) error {
	for _, err := range c.fanOutAll(shards, fn) {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanOutAll runs fn(s) for shards logical shards concurrently, returning
// every shard's outcome (the degraded-mode building block).
func (c *Client) fanOutAll(shards int, fn func(s int) error) []error {
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	return errs
}
