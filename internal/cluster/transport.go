// Transport seam between the cluster's call sites (fan-out client, replica
// catch-up, migration pulls, scrubber probes, control-plane round trips)
// and the bytes on the wire. Every RPC goes through a Transport, so the
// codec is a per-connection negotiation instead of a compile-time choice:
// new clients speak the internal/wire binary protocol, and fall back to
// net/rpc + gob when the peer predates it — which is what keeps a
// mixed-version cluster serving during a rolling upgrade.
//
// Application errors cross both transports as rpc.ServerError, so the
// error-classification invariants the retry/failover/rerouting layers rely
// on (Transient, isNotReady, notOwnerEpoch, isChecksumMismatch) hold
// identically whichever codec a connection negotiated.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"reflect"
	"sync"
	"syscall"
	"time"

	"platod2gl/internal/wire"
)

// Protocol selects the codec a client negotiates with its peers.
type Protocol int

const (
	// ProtoAuto (the default) speaks the binary wire protocol and falls
	// back to gob when the peer does not answer the handshake — the
	// rolling-upgrade mode.
	ProtoAuto Protocol = iota
	// ProtoWire requires the binary protocol; peers that cannot negotiate
	// it fail the dial.
	ProtoWire
	// ProtoGob forces legacy net/rpc + gob (for talking to old clusters,
	// and for benchmarking the old codec).
	ProtoGob
)

// Transport issues RPCs to one server. Call blocks for at most timeout
// (<= 0: forever); implementations must be safe for concurrent calls.
// Application errors are returned as rpc.ServerError, transport failures as
// anything else (Transient relies on this split).
type Transport interface {
	Call(serviceMethod string, args, reply any, timeout time.Duration) error
	Close() error
}

// callEnv is the admission envelope a call may carry: an explicit priority
// class and the caller's remaining deadline budget. The zero value means
// "no envelope" — the server applies the method's default class.
type callEnv struct {
	pri    Priority
	hasPri bool
	budget time.Duration
}

// envTransport is the optional extension a Transport implements when it can
// carry the protocol-v2 admission envelope. The gob transport does not (a
// legacy peer has no admission gate to read it); call sites type-assert and
// fall back to plain Call.
type envTransport interface {
	CallEnv(serviceMethod string, args, reply any, timeout time.Duration, env callEnv) error
}

// gobTransport is the legacy codec: a multiplexing net/rpc client.
type gobTransport struct {
	rc *rpc.Client
	m  *Metrics
}

func (t *gobTransport) Call(method string, args, reply any, d time.Duration) error {
	if d <= 0 {
		return t.rc.Call(method, args, reply)
	}
	// rpc.Client.Go writes the request synchronously before returning, so a
	// partitioned (blackholed) connection would block it forever — the whole
	// attempt runs in a goroutine and only the select enforces the deadline.
	// On timeout the caller tears the transport down (peer.fail), which
	// unblocks the stuck write and completes the abandoned call with an
	// error. The encoder-inflight count lets pooling layers know an
	// abandoned goroutine may still be reading the args (see encBusy).
	done := make(chan error, 1)
	t.m.encAdd(1)
	go func() {
		defer t.m.encAdd(-1)
		call := t.rc.Go(method, args, reply, make(chan *rpc.Call, 1))
		<-call.Done
		done <- call.Error
	}()
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return ErrCallTimeout
	case err := <-done:
		return err
	}
}

func (t *gobTransport) Close() error { return t.rc.Close() }

// wireConn is one handshaked binary-protocol connection carrying a single
// outstanding call at a time.
type wireConn struct {
	conn    net.Conn
	version byte
}

// wireTransport pools handshaked connections to one server. Concurrency
// comes from the pool (each in-flight call owns a connection), not from
// multiplexing — which keeps frames sequence-number-free and makes a
// timeout's blast radius a single connection.
type wireTransport struct {
	dial    Dialer
	version byte
	maxVer  byte // handshake cap (Options.MaxWireVersion); 0 = wire.Version
	m       *Metrics
	hsTO    time.Duration
	lim     *aimdLimiter // per-peer adaptive concurrency; nil = unlimited

	mu     sync.Mutex
	idle   []*wireConn
	closed bool
}

// maxIdleWireConns bounds the per-server pool; beyond it, finished
// connections are closed rather than kept.
const maxIdleWireConns = 8

var errTransportClosed = errors.New("cluster: transport closed")

// get pops an idle connection or handshakes a fresh one.
func (t *wireTransport) get() (*wireConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errTransportClosed
	}
	if n := len(t.idle); n > 0 {
		wc := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.mu.Unlock()
		return wc, nil
	}
	t.mu.Unlock()
	conn, err := t.dial()
	if err != nil {
		return nil, err
	}
	ver, err := clientHandshake(conn, t.hsTO, t.maxVer)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: wire handshake: %w", err)
	}
	return &wireConn{conn: conn, version: ver}, nil
}

// put returns a healthy connection to the pool.
func (t *wireTransport) put(wc *wireConn) {
	t.mu.Lock()
	if !t.closed && len(t.idle) < maxIdleWireConns {
		t.idle = append(t.idle, wc)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	wc.conn.Close()
}

func (t *wireTransport) Close() error {
	t.mu.Lock()
	idle := t.idle
	t.idle = nil
	t.closed = true
	t.mu.Unlock()
	for _, wc := range idle {
		wc.conn.Close()
	}
	return nil
}

// Call encodes args, performs one request/response exchange, and decodes
// into reply. The encode happens synchronously in the caller (so callers
// may recycle args-backing buffers once Call returns) and a timed-out
// attempt decodes into a private value that is discarded (so callers may
// retry into the same reply struct without racing an abandoned decoder).
func (t *wireTransport) Call(method string, args, reply any, d time.Duration) error {
	return t.CallEnv(method, args, reply, d, callEnv{})
}

// CallEnv is Call carrying the admission envelope. The call first claims a
// slot under the peer's adaptive concurrency limit — waiting at most the
// smaller of the call timeout and the remaining budget — so a client facing
// a saturated peer queues locally (cheap) instead of remotely (a held
// connection and an admission-queue seat).
func (t *wireTransport) CallEnv(method string, args, reply any, d time.Duration, env callEnv) error {
	if t.lim != nil {
		maxWait := d
		if env.budget > 0 && env.budget < maxWait {
			maxWait = env.budget
		}
		if err := t.lim.acquire(maxWait); err != nil {
			return err
		}
		err := t.callEnv(method, args, reply, d, env)
		t.lim.release(errors.Is(err, ErrCallTimeout) || IsOverloaded(err))
		return err
	}
	return t.callEnv(method, args, reply, d, env)
}

func (t *wireTransport) callEnv(method string, args, reply any, d time.Duration, env callEnv) error {
	wa, ok := args.(wireMessage)
	if !ok {
		return fmt.Errorf("cluster: %T does not implement the wire codec", args)
	}
	if _, ok := reply.(wireMessage); !ok {
		return fmt.Errorf("cluster: %T does not implement the wire codec", reply)
	}
	id, ok := wireMethodID[method]
	if !ok {
		return fmt.Errorf("cluster: unknown wire method %q", method)
	}
	wc, err := t.get()
	if err != nil {
		return err
	}
	// The envelope kind exists only in protocol v2; on a v1-negotiated
	// connection the call degrades to a bare request — exactly the
	// "negotiate down to today's behavior" contract.
	frame := wire.GetBuf(0)
	if wc.version >= 2 && (env.hasPri || env.budget > 0) {
		frame = append(frame, wire.KindRequestEnv)
		if env.hasPri {
			frame = append(frame, byte(env.pri)+1)
		} else {
			frame = append(frame, 0) // method-default sentinel
		}
		ms := uint64(env.budget / time.Millisecond)
		if ms == 0 && env.budget > 0 {
			ms = 1
		}
		frame = wire.AppendUvarint(frame, ms)
	} else {
		frame = append(frame, wire.KindRequest)
	}
	frame = wire.AppendUvarint(frame, uint64(id))
	frame = wa.appendWire(frame)

	if d <= 0 {
		err := roundTripWire(wc, frame, reply.(wireMessage))
		wire.PutBuf(frame)
		t.finish(wc, err)
		return err
	}
	// The exchange runs in a goroutine so a blackholed connection cannot
	// outlive the deadline (conns may be wrapped — fault injection, pipes —
	// so SetDeadline is not universally honored; closing the conn is). The
	// goroutine decodes into a fresh struct and the winner of the select
	// copies it out, so an abandoned attempt never writes the caller's reply.
	type result struct {
		tmp wireMessage
		err error
	}
	done := make(chan result, 1)
	go func() {
		tmp := reflect.New(reflect.TypeOf(reply).Elem()).Interface().(wireMessage)
		err := roundTripWire(wc, frame, tmp)
		wire.PutBuf(frame)
		done <- result{tmp, err}
	}()
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		wc.conn.Close() // unblocks the goroutine; the conn is not reusable
		return ErrCallTimeout
	case res := <-done:
		if res.err == nil {
			reflect.ValueOf(reply).Elem().Set(reflect.ValueOf(res.tmp).Elem())
		}
		t.finish(wc, res.err)
		return res.err
	}
}

// finish recycles or discards the connection depending on how the exchange
// ended: application errors leave a healthy framing stream, transport
// errors do not.
func (t *wireTransport) finish(wc *wireConn, err error) {
	var serverErr rpc.ServerError
	if err == nil || errors.As(err, &serverErr) {
		t.put(wc)
		return
	}
	wc.conn.Close()
}

// roundTripWire writes one request frame and decodes the response.
func roundTripWire(wc *wireConn, frame []byte, reply wireMessage) error {
	if err := wire.WriteFrame(wc.conn, frame); err != nil {
		return fmt.Errorf("cluster: wire write: %w", err)
	}
	resp, err := wire.ReadFrame(wc.conn)
	if err != nil {
		return fmt.Errorf("cluster: wire read: %w", err)
	}
	defer wire.PutBuf(resp)
	if len(resp) == 0 {
		return errors.New("cluster: empty wire response")
	}
	kind, body := resp[0], resp[1:]
	switch kind {
	case wire.KindResponse:
		r := wire.NewReader(body)
		reply.decodeWire(r)
		if err := r.Done(); err != nil {
			return fmt.Errorf("cluster: decode %T: %w", reply, err)
		}
		return nil
	case wire.KindError:
		r := wire.NewReader(body)
		msg := r.String()
		if err := r.Done(); err != nil {
			return fmt.Errorf("cluster: decode error frame: %w", err)
		}
		return rpc.ServerError(msg)
	default:
		return fmt.Errorf("cluster: unexpected frame kind 0x%02x", kind)
	}
}

// clientHandshake negotiates the wire protocol on a fresh connection,
// bounded by timeout via close-on-timer (deadline-free for wrapped conns).
// maxVer caps the advertised range (Options.MaxWireVersion); 0 means the
// newest we speak.
func clientHandshake(conn net.Conn, timeout time.Duration, maxVer byte) (byte, error) {
	if maxVer == 0 || maxVer > wire.Version {
		maxVer = wire.Version
	}
	exchange := func() (byte, error) {
		h := wire.Hello(1, maxVer)
		if _, err := conn.Write(h[:]); err != nil {
			return 0, err
		}
		var ack [8]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			return 0, err
		}
		ver, err := wire.ParseAck(ack)
		if err != nil {
			return 0, err
		}
		if ver == 0 {
			return 0, fmt.Errorf("%w: server rejected versions [1,%d]", wire.ErrBadHandshake, maxVer)
		}
		return ver, nil
	}
	if timeout <= 0 {
		return exchange()
	}
	type result struct {
		ver byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		ver, err := exchange()
		done <- result{ver, err}
	}()
	tm := time.NewTimer(timeout)
	defer tm.Stop()
	select {
	case <-tm.C:
		conn.Close()
		return 0, fmt.Errorf("cluster: wire handshake: %w", ErrCallTimeout)
	case res := <-done:
		return res.ver, res.err
	}
}

// peerClosedDuringHandshake classifies handshake failures that mean "the
// peer shut the connection on our hello" — the signature of a legacy gob
// server choking on wire magic — as opposed to timeouts or dial failures,
// which mean the peer is unreachable and gob would hang just the same.
func peerClosedDuringHandshake(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}

// dialTransport establishes a Transport to one server under the given
// protocol policy. In ProtoAuto mode a failed wire handshake whose failure
// signature says "old gob server" triggers a negotiate-down: redial and
// speak legacy gob (counted in WireNegotiateDowns). The next redial probes
// wire again, so a peer upgraded mid-rolling-restart is picked back up.
// maxVer caps the advertised protocol range (0 = newest).
func dialTransport(dial Dialer, proto Protocol, hsTimeout time.Duration, m *Metrics, maxVer byte) (Transport, error) {
	if proto == ProtoGob {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		return &gobTransport{rc: rpc.NewClient(conn), m: m}, nil
	}
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ver, err := clientHandshake(conn, hsTimeout, maxVer)
	if err != nil {
		conn.Close()
		if proto == ProtoAuto && peerClosedDuringHandshake(err) {
			m.incNegotiateDown()
			conn2, derr := dial()
			if derr != nil {
				return nil, derr
			}
			return &gobTransport{rc: rpc.NewClient(conn2), m: m}, nil
		}
		return nil, err
	}
	m.observeClientCall("Handshake", start)
	m.incWireHandshake()
	t := &wireTransport{dial: dial, version: ver, maxVer: maxVer, m: m, hsTO: hsTimeout,
		lim: newAIMDLimiter(m)}
	t.idle = append(t.idle, &wireConn{conn: conn, version: ver})
	return t, nil
}
