// Server-side transport seam: one accept loop that serves both codecs. The
// first four bytes of a connection decide its fate — the wire magic opens a
// version-negotiated binary-protocol session, anything else is replayed into
// a legacy net/rpc gob session — so a mixed-version cluster (old clients,
// new server) keeps working through a rolling upgrade with zero
// configuration.
//
// The wireMethods table is the binary protocol's method numbering. Ids are
// frame-level protocol surface: APPEND ONLY — reordering or removing entries
// breaks every peer speaking protocol version 1.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"platod2gl/internal/wire"
)

// wireMethod is one dispatchable RPC in the binary protocol: its short name
// (the metrics label), typed constructors for the arg/reply structs, and the
// bridge into the Service handler.
type wireMethod struct {
	name     string
	newArgs  func() wireMessage
	newReply func() wireMessage
	invoke   func(s *Service, args, reply wireMessage) error
}

// wireMethodPriorities assigns each method its default admission class.
// Latency-sensitive reads a training step or online lookup blocks on are
// interactive; bulk ingest and feature writes are prefetch; replication,
// migration, scrub, and control-plane traffic is background. Kept as a
// separate table (rather than widening every literal below) so the
// classification is reviewable at a glance.
var wireMethodPriorities = map[string]Priority{
	"ApplyBatch":         PriorityPrefetch,
	"SampleNeighbors":    PriorityInteractive,
	"Degree":             PriorityInteractive,
	"Features":           PriorityInteractive,
	"SetFeatures":        PriorityPrefetch,
	"Sources":            PriorityInteractive,
	"Stats":              PriorityInteractive,
	"FetchSnapshot":      PriorityBackground,
	"FetchWALTail":       PriorityBackground,
	"SyncState":          PriorityBackground,
	"Routing":            PriorityInteractive,
	"UpdateRouting":      PriorityBackground,
	"FetchShardSnapshot": PriorityBackground,
	"FetchShardFeatures": PriorityBackground,
	"ParkShard":          PriorityBackground,
	"ReleaseShard":       PriorityBackground,
	"DropShard":          PriorityBackground,
	"PullShard":          PriorityBackground,
	"ShardDigest":        PriorityBackground,
	"Scrub":              PriorityBackground,
	"FetchAttrs":         PriorityBackground,
}

// admissionExempt lists the control-plane methods that bypass the admission
// gate. They are tiny, rare, and — critically — the very RPCs that relieve
// a saturated or mid-migration server: shedding them turns transient
// overload into a self-sustaining outage. The concrete inversion the chaos
// drill caught: writers parked on a migrating shard pin their handler slots,
// the pinned slots starve the background class, and the background class
// then sheds the ReleaseShard that would unpark the writers — a deadlock
// only the park TTL escapes. The data-moving migration RPCs (snapshots, WAL
// tails, pulls) stay gated; only the control plane is exempt.
var admissionExempt = map[string]bool{
	"Routing":       true,
	"UpdateRouting": true,
	"ParkShard":     true,
	"ReleaseShard":  true,
	"SyncState":     true,
}

// wireMethods assigns each method its frame id (the slice index). Append
// only; ids are wire-protocol surface.
var wireMethods = []wireMethod{
	{"ApplyBatch",
		func() wireMessage { return new(BatchArgs) },
		func() wireMessage { return new(BatchReply) },
		func(s *Service, a, r wireMessage) error { return s.ApplyBatch(a.(*BatchArgs), r.(*BatchReply)) }},
	{"SampleNeighbors",
		func() wireMessage { return new(SampleArgs) },
		func() wireMessage { return new(SampleReply) },
		func(s *Service, a, r wireMessage) error {
			return s.SampleNeighbors(a.(*SampleArgs), r.(*SampleReply))
		}},
	{"Degree",
		func() wireMessage { return new(DegreeArgs) },
		func() wireMessage { return new(DegreeReply) },
		func(s *Service, a, r wireMessage) error { return s.Degree(a.(*DegreeArgs), r.(*DegreeReply)) }},
	{"Features",
		func() wireMessage { return new(FeatureArgs) },
		func() wireMessage { return new(FeatureReply) },
		func(s *Service, a, r wireMessage) error { return s.Features(a.(*FeatureArgs), r.(*FeatureReply)) }},
	{"SetFeatures",
		func() wireMessage { return new(SetFeaturesArgs) },
		func() wireMessage { return new(SetFeaturesReply) },
		func(s *Service, a, r wireMessage) error {
			return s.SetFeatures(a.(*SetFeaturesArgs), r.(*SetFeaturesReply))
		}},
	{"Sources",
		func() wireMessage { return new(SourcesArgs) },
		func() wireMessage { return new(SourcesReply) },
		func(s *Service, a, r wireMessage) error { return s.Sources(a.(*SourcesArgs), r.(*SourcesReply)) }},
	{"Stats",
		func() wireMessage { return new(StatsArgs) },
		func() wireMessage { return new(StatsReply) },
		func(s *Service, a, r wireMessage) error { return s.Stats(a.(*StatsArgs), r.(*StatsReply)) }},
	{"FetchSnapshot",
		func() wireMessage { return new(SnapshotArgs) },
		func() wireMessage { return new(SnapshotReply) },
		func(s *Service, a, r wireMessage) error {
			return s.FetchSnapshot(a.(*SnapshotArgs), r.(*SnapshotReply))
		}},
	{"FetchWALTail",
		func() wireMessage { return new(WALTailArgs) },
		func() wireMessage { return new(WALTailReply) },
		func(s *Service, a, r wireMessage) error {
			return s.FetchWALTail(a.(*WALTailArgs), r.(*WALTailReply))
		}},
	{"SyncState",
		func() wireMessage { return new(SyncStateArgs) },
		func() wireMessage { return new(SyncStateReply) },
		func(s *Service, a, r wireMessage) error {
			return s.SyncState(a.(*SyncStateArgs), r.(*SyncStateReply))
		}},
	{"Routing",
		func() wireMessage { return new(RoutingArgs) },
		func() wireMessage { return new(RoutingReply) },
		func(s *Service, a, r wireMessage) error { return s.Routing(a.(*RoutingArgs), r.(*RoutingReply)) }},
	{"UpdateRouting",
		func() wireMessage { return new(UpdateRoutingArgs) },
		func() wireMessage { return new(UpdateRoutingReply) },
		func(s *Service, a, r wireMessage) error {
			return s.UpdateRouting(a.(*UpdateRoutingArgs), r.(*UpdateRoutingReply))
		}},
	{"FetchShardSnapshot",
		func() wireMessage { return new(ShardSnapshotArgs) },
		func() wireMessage { return new(ShardSnapshotReply) },
		func(s *Service, a, r wireMessage) error {
			return s.FetchShardSnapshot(a.(*ShardSnapshotArgs), r.(*ShardSnapshotReply))
		}},
	{"FetchShardFeatures",
		func() wireMessage { return new(ShardFeaturesArgs) },
		func() wireMessage { return new(ShardFeaturesReply) },
		func(s *Service, a, r wireMessage) error {
			return s.FetchShardFeatures(a.(*ShardFeaturesArgs), r.(*ShardFeaturesReply))
		}},
	{"ParkShard",
		func() wireMessage { return new(ParkShardArgs) },
		func() wireMessage { return new(ParkShardReply) },
		func(s *Service, a, r wireMessage) error {
			return s.ParkShard(a.(*ParkShardArgs), r.(*ParkShardReply))
		}},
	{"ReleaseShard",
		func() wireMessage { return new(ReleaseShardArgs) },
		func() wireMessage { return new(ReleaseShardReply) },
		func(s *Service, a, r wireMessage) error {
			return s.ReleaseShard(a.(*ReleaseShardArgs), r.(*ReleaseShardReply))
		}},
	{"DropShard",
		func() wireMessage { return new(DropShardArgs) },
		func() wireMessage { return new(DropShardReply) },
		func(s *Service, a, r wireMessage) error {
			return s.DropShard(a.(*DropShardArgs), r.(*DropShardReply))
		}},
	{"PullShard",
		func() wireMessage { return new(PullShardArgs) },
		func() wireMessage { return new(PullShardReply) },
		func(s *Service, a, r wireMessage) error {
			return s.PullShard(a.(*PullShardArgs), r.(*PullShardReply))
		}},
	{"ShardDigest",
		func() wireMessage { return new(DigestArgs) },
		func() wireMessage { return new(DigestReply) },
		func(s *Service, a, r wireMessage) error {
			return s.ShardDigest(a.(*DigestArgs), r.(*DigestReply))
		}},
	{"Scrub",
		func() wireMessage { return new(ScrubArgs) },
		func() wireMessage { return new(ScrubReply) },
		func(s *Service, a, r wireMessage) error { return s.Scrub(a.(*ScrubArgs), r.(*ScrubReply)) }},
	{"FetchAttrs",
		func() wireMessage { return new(AttrsArgs) },
		func() wireMessage { return new(AttrsReply) },
		func(s *Service, a, r wireMessage) error { return s.FetchAttrs(a.(*AttrsArgs), r.(*AttrsReply)) }},
}

// wireMethodID maps the fully-qualified method name ("PlatoD2GL.Stats", the
// form every call site already uses) to its frame id.
var wireMethodID = make(map[string]int, len(wireMethods))

// wireMethodPri is the per-id default admission class, resolved from
// wireMethodPriorities at init — used when a request carries no envelope
// (bare v1 frames, or an envelope whose priority byte is the "method
// default" sentinel 0).
var wireMethodPri = make([]Priority, len(wireMethods))

// wireMethodExempt is admissionExempt resolved to frame ids.
var wireMethodExempt = make([]bool, len(wireMethods))

func init() {
	for i, m := range wireMethods {
		wireMethodID[ServiceName+"."+m.name] = i
		wireMethodPri[i] = wireMethodPriorities[m.name]
		wireMethodExempt[i] = admissionExempt[m.name]
	}
}

// serveConn sniffs the codec from the first bytes of a fresh connection and
// serves it to completion: wire magic opens a binary-protocol session,
// anything else (in practice a gob length prefix, which can never start with
// the 0x00 magic byte) replays into a legacy net/rpc session. The sniff +
// negotiation phase runs under a handshake token and read deadline when
// ServerLimits configures them, so silent or slow-connecting peers cannot
// pin unbounded accept-side resources.
func (s *Server) serveConn(conn net.Conn) {
	hsDone := func() {}
	if s.hsSem != nil {
		select {
		case s.hsSem <- struct{}{}:
			var once sync.Once
			hsDone = func() { once.Do(func() { <-s.hsSem }) }
		default:
			s.svc.metrics.incConnRejected()
			conn.Close()
			return
		}
	}
	defer hsDone()
	if to := s.limits.HandshakeTimeout; to > 0 {
		conn.SetReadDeadline(time.Now().Add(to))
	}
	var prefix [4]byte
	if _, err := io.ReadFull(conn, prefix[:]); err != nil {
		conn.Close()
		return
	}
	if prefix == wire.Magic {
		s.serveWire(conn, hsDone)
		return
	}
	if s.limits.HandshakeTimeout > 0 {
		conn.SetReadDeadline(time.Time{})
	}
	hsDone()
	s.svc.metrics.incGobFallback()
	rwc := &replayConn{Reader: io.MultiReader(bytes.NewReader(prefix[:]), conn), conn: conn}
	s.rpcServer.ServeCodec(newCountingGobCodec(rwc, s.svc.metrics))
}

// serveWire completes the handshake (the magic is already consumed) and then
// serves request frames until the connection dies. One frame at a time per
// connection; concurrency comes from the client's connection pool. hsDone
// releases the handshake token once negotiation finishes (either way).
func (s *Server) serveWire(conn net.Conn, hsDone func()) {
	defer conn.Close()
	hsStart := time.Now()
	var hello [8]byte
	copy(hello[:4], wire.Magic[:])
	if _, err := io.ReadFull(conn, hello[4:]); err != nil {
		return
	}
	minVer, maxVer, err := wire.ParseHello(hello)
	if err != nil {
		return
	}
	ver := wire.NegotiateCapped(minVer, maxVer, s.maxWireVersion())
	ack := wire.Ack(ver)
	if _, err := conn.Write(ack[:]); err != nil || ver == 0 {
		// ver == 0: no overlapping version range (a future-only client);
		// the ack tells it so before we hang up.
		return
	}
	if s.limits.HandshakeTimeout > 0 {
		conn.SetReadDeadline(time.Time{})
	}
	hsDone()
	m := s.svc.metrics
	m.incWireHandshake()
	m.observeServed("Handshake", hsStart)
	m.observePayload("Handshake", 16) // hello + ack, both 8 bytes
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		reqBytes := int64(len(req)) + 4
		resp, method := s.handleWireFrame(req, ver)
		wire.PutBuf(req)
		err = wire.WriteFrame(conn, resp)
		respBytes := int64(len(resp)) + 4
		wire.PutBuf(resp)
		if err != nil {
			return
		}
		if method != "" {
			m.observePayload(method, reqBytes+respBytes)
		}
	}
}

// handleWireFrame decodes one request frame, runs it through the admission
// gate, invokes the handler, and encodes the response (or error) frame. ver
// is the connection's negotiated protocol version: envelope frames
// (KindRequestEnv) are only legal on v2+ connections, so a version-1 peer
// can never smuggle priority or budget metadata the negotiation said it
// would not send. It never panics: corrupt frames fail the bounds-checked
// reader, and a recover backstop converts anything that slips through into
// an error frame so one bad request cannot kill the connection loop with a
// half-written frame.
func (s *Server) handleWireFrame(req []byte, ver byte) (resp []byte, method string) {
	fail := func(msg string) []byte {
		b := wire.GetBuf(0)
		b = append(b, wire.KindError)
		return wire.AppendString(b, msg)
	}
	defer func() {
		if p := recover(); p != nil {
			resp = fail(fmt.Sprintf("cluster: %s: internal error: %v", method, p))
		}
	}()
	if len(req) == 0 {
		return fail("cluster: malformed request frame"), ""
	}
	r := wire.NewReader(req[1:])
	var pri Priority
	var hasPri bool
	var budget time.Duration
	switch req[0] {
	case wire.KindRequest:
	case wire.KindRequestEnv:
		if ver < 2 {
			return fail("cluster: envelope frame on a version-1 connection"), ""
		}
		pb := r.Byte()
		budget = time.Duration(r.Uvarint()) * time.Millisecond
		if r.Err() != nil {
			return fail("cluster: malformed request envelope"), ""
		}
		if pb > 0 {
			if pb > numPriorities {
				return fail("cluster: unknown priority class"), ""
			}
			pri = Priority(pb - 1)
			hasPri = true
		}
	default:
		return fail("cluster: malformed request frame"), ""
	}
	id := r.Uvarint()
	if r.Err() != nil || id >= uint64(len(wireMethods)) {
		return fail("cluster: unknown wire method id"), ""
	}
	wm := wireMethods[id]
	method = wm.name
	if !hasPri {
		pri = wireMethodPri[id]
	}
	if !wireMethodExempt[id] {
		if err := s.admit.acquire(wm.name, pri, budget); err != nil {
			// Shed or fast-rejected: the error frame carries the typed message
			// (retry-after hint included) back to the client's classifiers.
			return fail(err.Error()), method
		}
		defer s.admit.release(wm.name, time.Now())
	}
	args := wm.newArgs()
	args.decodeWire(r)
	if err := r.Done(); err != nil {
		return fail(fmt.Sprintf("cluster: decode %s args: %v", wm.name, err)), method
	}
	reply := wm.newReply()
	if err := wm.invoke(s.svc, args, reply); err != nil {
		// Handler errors cross as error frames and resurface client-side as
		// rpc.ServerError — same classification as the gob transport.
		return fail(err.Error()), method
	}
	b := wire.GetBuf(0)
	b = append(b, wire.KindResponse)
	return reply.appendWire(b), method
}

// replayConn splices already-sniffed bytes back in front of a connection's
// read stream for the gob fallback path.
type replayConn struct {
	io.Reader
	conn net.Conn
}

func (r *replayConn) Write(p []byte) (int, error) { return r.conn.Write(p) }
func (r *replayConn) Close() error                { return r.conn.Close() }

// countReader / countWriter meter exact bytes through the gob codec so the
// fallback path reports true wire payload sizes, not approximations.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingGobCodec is net/rpc's stock gob ServerCodec plus byte metering:
// request bytes are measured across header+body reads, parked by sequence
// number (net/rpc pipelines reads ahead of writes), and attributed together
// with the response bytes when the reply for that sequence flushes.
type countingGobCodec struct {
	rwc    io.ReadWriteCloser
	cr     *countReader
	cw     *countWriter
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer
	m      *Metrics

	readStart  int64  // cr.n when the current request's header began
	readSeq    uint64 // sequence of the request being read
	readMethod string

	mu      sync.Mutex
	pending map[uint64]pendingGobReq
	closed  bool
}

type pendingGobReq struct {
	method   string
	reqBytes int64
}

func newCountingGobCodec(rwc io.ReadWriteCloser, m *Metrics) *countingGobCodec {
	cr := &countReader{r: rwc}
	buf := bufio.NewWriter(nil)
	cw := &countWriter{w: rwc}
	buf.Reset(cw)
	return &countingGobCodec{
		rwc:     rwc,
		cr:      cr,
		cw:      cw,
		dec:     gob.NewDecoder(cr),
		enc:     gob.NewEncoder(buf),
		encBuf:  buf,
		m:       m,
		pending: make(map[uint64]pendingGobReq),
	}
}

func (c *countingGobCodec) ReadRequestHeader(r *rpc.Request) error {
	c.readStart = c.cr.n
	if err := c.dec.Decode(r); err != nil {
		return err
	}
	c.readSeq = r.Seq
	c.readMethod = shortMethod(r.ServiceMethod)
	return nil
}

func (c *countingGobCodec) ReadRequestBody(body any) error {
	if err := c.dec.Decode(body); err != nil {
		return err
	}
	c.mu.Lock()
	c.pending[c.readSeq] = pendingGobReq{method: c.readMethod, reqBytes: c.cr.n - c.readStart}
	c.mu.Unlock()
	return nil
}

func (c *countingGobCodec) WriteResponse(r *rpc.Response, body any) error {
	// net/rpc serializes WriteResponse calls under its sending mutex, so the
	// write counter needs no extra locking; only the pending map is shared
	// with the read goroutine.
	start := c.cw.n
	if err := c.enc.Encode(r); err != nil {
		c.encBuf.Flush()
		return err
	}
	if err := c.enc.Encode(body); err != nil {
		c.encBuf.Flush()
		return err
	}
	if err := c.encBuf.Flush(); err != nil {
		return err
	}
	c.mu.Lock()
	req, ok := c.pending[r.Seq]
	delete(c.pending, r.Seq)
	c.mu.Unlock()
	if ok {
		c.m.observePayload(req.method, req.reqBytes+(c.cw.n-start))
	}
	return nil
}

func (c *countingGobCodec) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.rwc.Close()
}
