// At-most-once ApplyBatch: clients stamp every batch with a (ClientID, Seq)
// pair; servers deduplicate so a retry after a lost reply never re-applies
// its events. Idempotence cannot be assumed — re-applying a batch that
// deletes an edge later re-added by another batch corrupts the topology —
// so dedup is the only safe way to retry writes.
//
// With replica groups the same identity does double duty: every replica of
// a shard receives the same (ClientID, Seq) batch, and a rejoining replica
// replays its peer's WAL tail through the same filter, so a batch that
// arrives both directly and via catch-up streaming is still applied exactly
// once per replica.
package cluster

import (
	"fmt"
	"sync"
	"time"
)

// dedupWindow bounds how many completed sequence numbers are remembered per
// client. Retries are immediate (bounded by the client's retry budget), so a
// small window is ample; the cap keeps a long-lived server's memory bounded
// under client churn.
const dedupWindow = 4096

// dedupClientTTL is how long a client's window survives without any new
// batch from that client. Retries arrive within the retry budget (seconds),
// so a generous TTL loses nothing; without it the clients map itself grows
// one entry per client forever — millions of short-lived training jobs
// would leak a map entry (plus up to dedupWindow seqs) each.
const dedupClientTTL = 15 * time.Minute

// dedupSweepEvery bounds how often the lazy TTL sweep runs: at most once
// per this many claim/markApplied operations, keeping the sweep's O(clients)
// cost off the per-batch path.
const dedupSweepEvery = 4096

type dedupKey struct {
	client uint64
	seq    uint64
}

// inflightBatch tracks a batch currently being applied so a concurrent
// duplicate (a retry racing its own abandoned first attempt) waits for the
// outcome instead of double-applying or wrongly reporting success.
type inflightBatch struct {
	done chan struct{}
	err  error
}

// clientWindow is one client's completed-batch history: a FIFO-bounded set
// stamped with its last activity for TTL eviction.
type clientWindow struct {
	seen       map[uint64]struct{}
	order      []uint64 // insertion order, for pruning
	lastActive time.Time
}

func (w *clientWindow) add(seq uint64) {
	if _, ok := w.seen[seq]; ok {
		return
	}
	w.seen[seq] = struct{}{}
	w.order = append(w.order, seq)
	if len(w.order) > dedupWindow {
		old := w.order[0]
		w.order = w.order[1:]
		delete(w.seen, old)
	}
}

// batchDedup is the server-side at-most-once filter.
type batchDedup struct {
	mu       sync.Mutex
	clients  map[uint64]*clientWindow
	inflight map[dedupKey]*inflightBatch
	ttl      time.Duration
	now      func() time.Time // injectable clock for TTL tests
	sinceGC  int              // operations since the last TTL sweep
}

func newBatchDedup() *batchDedup {
	return &batchDedup{
		clients:  make(map[uint64]*clientWindow),
		inflight: make(map[dedupKey]*inflightBatch),
		ttl:      dedupClientTTL,
		now:      time.Now,
	}
}

// window returns (creating if needed) the client's window, stamps its
// activity, and occasionally sweeps idle clients. Callers hold d.mu.
func (d *batchDedup) window(client uint64) *clientWindow {
	w := d.clients[client]
	if w == nil {
		w = &clientWindow{seen: make(map[uint64]struct{})}
		d.clients[client] = w
	}
	w.lastActive = d.now()
	d.maybeSweepLocked()
	return w
}

// maybeSweepLocked evicts clients idle past the TTL, at most once every
// dedupSweepEvery operations. Callers hold d.mu.
func (d *batchDedup) maybeSweepLocked() {
	d.sinceGC++
	if d.sinceGC < dedupSweepEvery || d.ttl <= 0 {
		return
	}
	d.sinceGC = 0
	cutoff := d.now().Add(-d.ttl)
	for client, w := range d.clients {
		if w.lastActive.Before(cutoff) {
			delete(d.clients, client)
		}
	}
}

// claim registers intent to apply (client, seq). It returns:
//   - apply=true: the caller owns the batch and must call finish() with the
//     apply outcome.
//   - apply=false, err=nil: the batch was already applied (duplicate retry);
//     report success without re-applying.
//   - apply=false, err!=nil: a concurrent attempt applied it and failed, or
//     the wait was interrupted; surface err so the client retries.
func (d *batchDedup) claim(client, seq uint64) (apply bool, finish func(error), err error) {
	key := dedupKey{client, seq}
	d.mu.Lock()
	if w, ok := d.clients[client]; ok {
		if _, done := w.seen[seq]; done {
			w.lastActive = d.now()
			d.mu.Unlock()
			return false, nil, nil
		}
	}
	if fl, ok := d.inflight[key]; ok {
		d.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return false, nil, fmt.Errorf("cluster: concurrent attempt for batch %d/%d failed: %w", client, seq, fl.err)
		}
		return false, nil, nil
	}
	fl := &inflightBatch{done: make(chan struct{})}
	d.inflight[key] = fl
	d.mu.Unlock()
	return true, func(applyErr error) {
		d.mu.Lock()
		delete(d.inflight, key)
		if applyErr == nil {
			d.window(client).add(seq)
		}
		fl.err = applyErr
		d.mu.Unlock()
		close(fl.done)
	}, nil
}

// markApplied records (client, seq) as completed without applying anything —
// used when rebuilding dedup state from a write-ahead log at startup, so
// client retries that straddle a server restart stay at-most-once.
func (d *batchDedup) markApplied(client, seq uint64) {
	if client == 0 || seq == 0 {
		return
	}
	d.mu.Lock()
	d.window(client).add(seq)
	d.mu.Unlock()
}

// DedupEntry is one completed batch identity, the unit of dedup-table
// transfer during replica catch-up.
type DedupEntry struct {
	ClientID uint64
	Seq      uint64
}

// export snapshots every remembered identity, for shipping to a rejoining
// replica alongside the store snapshot. Bounded by dedupWindow per client
// and the TTL eviction of idle clients.
func (d *batchDedup) export() []DedupEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []DedupEntry
	for client, w := range d.clients {
		for _, seq := range w.order {
			out = append(out, DedupEntry{ClientID: client, Seq: seq})
		}
	}
	return out
}

// importEntries merges a peer's exported dedup table, so batches the peer's
// snapshot already contains are recognized as duplicates when client
// retries (or the WAL tail) deliver them again.
func (d *batchDedup) importEntries(entries []DedupEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		if e.ClientID == 0 || e.Seq == 0 {
			continue
		}
		d.window(e.ClientID).add(e.Seq)
	}
}
