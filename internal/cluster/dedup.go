// At-most-once ApplyBatch: clients stamp every batch with a (ClientID, Seq)
// pair; servers deduplicate so a retry after a lost reply never re-applies
// its events. Idempotence cannot be assumed — re-applying a batch that
// deletes an edge later re-added by another batch corrupts the topology —
// so dedup is the only safe way to retry writes.
package cluster

import (
	"fmt"
	"sync"
)

// dedupWindow bounds how many completed sequence numbers are remembered per
// client. Retries are immediate (bounded by the client's retry budget), so a
// small window is ample; the cap keeps a long-lived server's memory bounded
// under client churn.
const dedupWindow = 4096

type dedupKey struct {
	client uint64
	seq    uint64
}

// inflightBatch tracks a batch currently being applied so a concurrent
// duplicate (a retry racing its own abandoned first attempt) waits for the
// outcome instead of double-applying or wrongly reporting success.
type inflightBatch struct {
	done chan struct{}
	err  error
}

// clientWindow is one client's completed-batch history: a FIFO-bounded set.
type clientWindow struct {
	seen  map[uint64]struct{}
	order []uint64 // insertion order, for pruning
}

func (w *clientWindow) add(seq uint64) {
	if _, ok := w.seen[seq]; ok {
		return
	}
	w.seen[seq] = struct{}{}
	w.order = append(w.order, seq)
	if len(w.order) > dedupWindow {
		old := w.order[0]
		w.order = w.order[1:]
		delete(w.seen, old)
	}
}

// batchDedup is the server-side at-most-once filter.
type batchDedup struct {
	mu       sync.Mutex
	clients  map[uint64]*clientWindow
	inflight map[dedupKey]*inflightBatch
}

func newBatchDedup() *batchDedup {
	return &batchDedup{
		clients:  make(map[uint64]*clientWindow),
		inflight: make(map[dedupKey]*inflightBatch),
	}
}

// claim registers intent to apply (client, seq). It returns:
//   - apply=true: the caller owns the batch and must call finish() with the
//     apply outcome.
//   - apply=false, err=nil: the batch was already applied (duplicate retry);
//     report success without re-applying.
//   - apply=false, err!=nil: a concurrent attempt applied it and failed, or
//     the wait was interrupted; surface err so the client retries.
func (d *batchDedup) claim(client, seq uint64) (apply bool, finish func(error), err error) {
	key := dedupKey{client, seq}
	d.mu.Lock()
	if w, ok := d.clients[client]; ok {
		if _, done := w.seen[seq]; done {
			d.mu.Unlock()
			return false, nil, nil
		}
	}
	if fl, ok := d.inflight[key]; ok {
		d.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return false, nil, fmt.Errorf("cluster: concurrent attempt for batch %d/%d failed: %w", client, seq, fl.err)
		}
		return false, nil, nil
	}
	fl := &inflightBatch{done: make(chan struct{})}
	d.inflight[key] = fl
	d.mu.Unlock()
	return true, func(applyErr error) {
		d.mu.Lock()
		delete(d.inflight, key)
		if applyErr == nil {
			w := d.clients[client]
			if w == nil {
				w = &clientWindow{seen: make(map[uint64]struct{})}
				d.clients[client] = w
			}
			w.add(seq)
		}
		fl.err = applyErr
		d.mu.Unlock()
		close(fl.done)
	}, nil
}

// markApplied records (client, seq) as completed without applying anything —
// used when rebuilding dedup state from a write-ahead log at startup, so
// client retries that straddle a server restart stay at-most-once.
func (d *batchDedup) markApplied(client, seq uint64) {
	if client == 0 || seq == 0 {
		return
	}
	d.mu.Lock()
	w := d.clients[client]
	if w == nil {
		w = &clientWindow{seen: make(map[uint64]struct{})}
		d.clients[client] = w
	}
	w.add(seq)
	d.mu.Unlock()
}
