// End-to-end payload checksums for the hot RPC surface. gob and TCP each
// have their own framing checks, but neither protects against corruption
// that happens before encoding or after decoding (a flipped bit in a
// buffer, a bad NIC offload, a heap error) — and a corrupted topology batch
// silently poisons training. Every bulk payload (ApplyBatch events,
// snapshots, WAL tails, shard exports) therefore carries a checksum the
// receiver recomputes before applying anything. A zero Sum means "sender
// did not checksum" (legacy peer) and skips verification, so mixed-version
// clusters interoperate.
package cluster

import (
	"fmt"
	"hash/crc32"
	"math"
	"strings"

	"platod2gl/internal/eventlog"
	"platod2gl/internal/graph"
)

// checksumMismatchMsg prefixes every payload-verification failure. Clients
// match on it (the error crosses the wire as a bare string) to classify the
// failure as transient — a retry re-sends the bytes and usually succeeds.
const checksumMismatchMsg = "cluster: payload checksum mismatch"

func checksumError(what string, have, want uint64) error {
	return fmt.Errorf("%s: %s (have %016x, want %016x)", checksumMismatchMsg, what, have, want)
}

// isChecksumMismatch reports whether err is a payload-verification failure,
// possibly crossing the wire as an rpc.ServerError string.
func isChecksumMismatch(err error) bool {
	return err != nil && strings.Contains(err.Error(), checksumMismatchMsg)
}

// nonZero keeps valid checksums out of the "no checksum" sentinel.
func nonZero(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}

// checksumEvents folds an event batch into one checksum. Order-dependent by
// design: this verifies a specific payload, not logical state (state
// comparison is the digests' job).
func checksumEvents(events []graph.Event) uint64 {
	h := mix64(uint64(len(events)) ^ 0x7061796c6f616421)
	for i := range events {
		ev := &events[i]
		h = mix64(h ^ uint64(ev.Kind))
		h = mix64(h ^ uint64(ev.Edge.Src))
		h = mix64(h ^ uint64(ev.Edge.Dst))
		h = mix64(h ^ uint64(ev.Edge.Type))
		h = mix64(h ^ math.Float64bits(ev.Edge.Weight))
		h = mix64(h ^ uint64(ev.Timestamp))
	}
	return nonZero(h)
}

// checksumRecords folds a WAL-tail chunk — each record's identity plus its
// events — into one checksum.
func checksumRecords(recs []eventlog.BatchRecord) uint64 {
	h := mix64(uint64(len(recs)) ^ 0x77616c7461696c21)
	for i := range recs {
		rec := &recs[i]
		h = mix64(h ^ rec.Seq)
		h = mix64(h ^ rec.ClientID)
		h = mix64(h ^ rec.ClientSeq)
		h = mix64(h ^ checksumEvents(rec.Events))
	}
	return nonZero(h)
}

// checksumFeatures folds an attribute export into one checksum.
func checksumFeatures(r *ShardFeaturesReply) uint64 {
	h := mix64(uint64(len(r.Nodes)) ^ 0x6665617473756d21)
	for i, id := range r.Nodes {
		h = mix64(h ^ uint64(id))
		h = mix64(h ^ uint64(uint32(r.RowLens[i])))
		h = mix64(h ^ uint64(uint32(r.Labels[i])))
		if r.HasLabel[i] {
			h = mix64(h ^ 0xb5)
		}
	}
	for _, v := range r.Data {
		h = mix64(h ^ uint64(math.Float32bits(v)))
	}
	for i, k := range r.EdgeKeys {
		h = mix64(h ^ uint64(k.Src))
		h = mix64(h ^ uint64(k.Dst))
		h = mix64(h ^ uint64(k.Type))
		h = mix64(h ^ uint64(uint32(r.EdgeLens[i])))
	}
	for _, v := range r.EdgeData {
		h = mix64(h ^ uint64(math.Float32bits(v)))
	}
	return nonZero(h)
}

var payloadCRCTable = crc32.MakeTable(crc32.Castagnoli)

// checksumBytes checksums an opaque payload (snapshot images).
func checksumBytes(b []byte) uint64 {
	return nonZero(uint64(crc32.Checksum(b, payloadCRCTable)))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// verifySum checks a received payload's checksum against the sender's,
// counting a mismatch as detected corruption. Sum 0 (legacy sender) skips.
func verifySum(m *Metrics, what string, have, want uint64) error {
	if want == 0 || have == want {
		return nil
	}
	m.incCorruptionDetected()
	return checksumError(what, have, want)
}
