// Chaos suite: the fault-tolerance layer under injected network faults —
// message drops, resets, partitions, shard crashes and restarts — asserting
// the two invariants that matter for training: update convergence (retries
// are at-most-once, so the cluster edge count matches a single-store oracle)
// and sampling availability (degradation mode keeps mini-batches flowing
// with per-shard error reports).
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/eventlog"
	"platod2gl/internal/faultinject"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// chaosClientOptions is a retry policy tuned for fast tests: aggressive
// retries with tiny backoff, breaker enabled but quick to recover.
func chaosClientOptions() Options {
	return Options{
		CallTimeout:      2 * time.Second,
		MaxRetries:       16,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    20 * time.Millisecond,
		BreakerThreshold: 8,
		BreakerCooldown:  10 * time.Millisecond,
		Seed:             1,
	}
}

// walBackedFactory builds per-shard services durably backed by WAL files in
// dir: on every (re)start the shard replays its WAL into a fresh store and
// rebuilds its at-most-once dedup table, exactly like the server binary.
type walBackedFactory struct {
	t    *testing.T
	dir  string
	opts storage.Options

	mu   sync.Mutex
	wals map[int]*eventlog.Writer
}

func newWALBackedFactory(t *testing.T, opts storage.Options) *walBackedFactory {
	return &walBackedFactory{t: t, dir: t.TempDir(), opts: opts, wals: make(map[int]*eventlog.Writer)}
}

func (f *walBackedFactory) path(i int) string {
	return filepath.Join(f.dir, fmt.Sprintf("shard%d.wal", i))
}

func (f *walBackedFactory) service(i int) *Service {
	f.mu.Lock()
	if old := f.wals[i]; old != nil {
		old.Close()
	}
	f.mu.Unlock()
	store := storage.NewDynamicStore(f.opts)
	svc := NewService(store, kvstore.New())
	if _, err := os.Stat(f.path(i)); err == nil {
		_, err := eventlog.ReplayBatches(f.path(i), func(rec eventlog.BatchRecord) error {
			store.ApplyBatch(rec.Events)
			svc.MarkApplied(rec.ClientID, rec.ClientSeq)
			return nil
		})
		if err != nil {
			f.t.Fatalf("replay shard %d wal: %v", i, err)
		}
	}
	w, err := eventlog.Create(f.path(i))
	if err != nil {
		f.t.Fatalf("open shard %d wal: %v", i, err)
	}
	f.mu.Lock()
	f.wals[i] = w
	f.mu.Unlock()
	svc.SetBatchHook(func(clientID, seq uint64, events []graph.Event) error {
		_, err := w.AppendBatch(clientID, seq, events)
		return err
	})
	return svc
}

// TestChaosApplyBatchConvergence is the headline acceptance test: a dynamic
// event stream (adds, deletes, weight updates) through a 4-shard cluster
// with 25% message drops and occasional resets, with one shard crashed and
// restarted (recovering from its WAL) mid-run. Client retries must converge
// to exactly the single-store oracle — at-most-once dedup means no retry
// ever double-applies a delete.
func TestChaosApplyBatchConvergence(t *testing.T) {
	inj := faultinject.New(1234, faultinject.Config{
		DropProb:  0.25, // request loss: batch never reaches the shard
		ResetProb: 0.05, // reply loss: batch applied, ack lost → dedup path
	})
	factory := newWALBackedFactory(t, storage.Options{Tree: core.Options{Capacity: 16, Compress: true}})
	lc := NewLocalClusterOptions(4, LocalOptions{
		Client:         chaosClientOptions(),
		ServiceFactory: factory.service,
		WrapConn:       func(_ int, c net.Conn) net.Conn { return inj.WrapConn(c) },
	})
	defer lc.Shutdown()
	client := lc.Client()

	oracle := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}})
	gen := dataset.NewGenerator(dataset.OGBNSim().Scale(2e-5), dataset.DynamicMix, 7)
	const batches = 20
	for b := 0; b < batches; b++ {
		events := gen.Next(1500)
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		oracle.ApplyBatch(events)
		if b == batches/2 {
			// Crash shard 2 mid-run and bring it straight back; it rebuilds
			// from its WAL, and in-flight batches ride the retry path.
			lc.StopShard(2)
			lc.RestartShard(2)
		}
	}

	drops, resets := inj.Stats()
	if drops == 0 {
		t.Fatal("chaos config injected no drops — test exercised nothing")
	}
	t.Logf("chaos: %d drops, %d resets injected", drops, resets)

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEdges != oracle.NumEdges() {
		t.Fatalf("edge count diverged under chaos: cluster %d vs oracle %d", st.NumEdges, oracle.NumEdges())
	}
	// Spot-check per-source degrees, which double-applied deletes would skew
	// even if totals happened to cancel.
	srcs := oracle.Sources(0)
	if len(srcs) > 100 {
		srcs = srcs[:100]
	}
	degs, err := client.Degree(srcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range srcs {
		if want := oracle.Degree(src, 0); degs[i] != want {
			t.Fatalf("degree(%v) diverged: cluster %d vs oracle %d", src, degs[i], want)
		}
	}
}

// TestChaosDegradedSampling: with one shard dead, degradation mode keeps
// sampling available — full-length results, dead-shard seeds falling back to
// themselves, and a per-shard error report — while strict mode fails.
func TestChaosDegradedSampling(t *testing.T) {
	lc := NewLocalClusterOptions(3, LocalOptions{
		Client: Options{
			CallTimeout:    time.Second,
			MaxRetries:     1,
			RetryBaseDelay: time.Millisecond,
			Seed:           1,
		},
		StoreFactory: func(int) (storage.TopologyStore, *kvstore.Store) {
			return storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 16}}), kvstore.New()
		},
	})
	defer lc.Shutdown()
	client := lc.Client()

	var events []graph.Event
	const nSrc = 60
	for src := uint64(0); src < nSrc; src++ {
		for j := uint64(0); j < 8; j++ {
			events = append(events, graph.Event{Kind: graph.AddEdge, Edge: graph.Edge{
				Src: graph.VertexID(src), Dst: graph.VertexID(1000 + src*8 + j), Weight: 1}})
		}
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}

	seeds := make([]graph.VertexID, nSrc)
	for i := range seeds {
		seeds[i] = graph.VertexID(i)
	}
	const fanout = 4
	deadShard := 1
	lc.StopShard(deadShard)

	// Strict mode fails the whole batch.
	if _, err := client.SampleNeighbors(seeds, 0, fanout, 9); err == nil {
		t.Fatal("strict-mode sampling succeeded with a dead shard")
	}

	// Degradation mode: full-length result + per-shard error report.
	out, report, err := client.SampleNeighborsDegraded(seeds, 0, fanout, 9)
	if err != nil {
		t.Fatalf("degraded sampling: %v", err)
	}
	if len(out) != len(seeds)*fanout {
		t.Fatalf("degraded result length %d, want %d", len(out), len(seeds)*fanout)
	}
	if !report.Degraded() {
		t.Fatal("report not marked degraded with a dead shard")
	}
	if len(report.Errors) != 1 || report.Errors[0].Shard != deadShard {
		t.Fatalf("report errors = %+v, want exactly shard %d", report.Errors, deadShard)
	}
	if report.Err() == nil || !strings.Contains(report.Err().Error(), "shards failed") {
		t.Fatalf("report.Err() = %v", report.Err())
	}
	deadSeeds, liveSeeds := 0, 0
	for i, seed := range seeds {
		owner := client.shardFor(seed)
		for j := 0; j < fanout; j++ {
			got := out[i*fanout+j]
			if owner == deadShard {
				if got != seed {
					t.Fatalf("dead-shard seed %v slot %d = %v, want self-fallback", seed, j, got)
				}
			} else {
				lo := 1000 + uint64(seed)*8
				if uint64(got) < lo || uint64(got) >= lo+8 {
					t.Fatalf("live-shard seed %v sampled %v outside its neighbor range", seed, got)
				}
			}
		}
		if owner == deadShard {
			deadSeeds++
		} else {
			liveSeeds++
		}
	}
	if deadSeeds == 0 || liveSeeds == 0 {
		t.Fatalf("degenerate partition: %d dead-shard seeds, %d live", deadSeeds, liveSeeds)
	}

	// Healing the shard restores clean sampling (fresh empty store; its
	// seeds now legitimately self-fallback as unknown vertices).
	lc.RestartShard(deadShard)
	_, report2, err := client.SampleNeighborsDegraded(seeds, 0, fanout, 9)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Degraded() {
		t.Fatalf("still degraded after restart: %+v", report2.Errors)
	}
}

// TestChaosTimeoutOnPartition: a one-sided partition silently blackholes
// requests; only the per-call timeout detects it, and healing the partition
// restores service through a redial.
func TestChaosTimeoutOnPartition(t *testing.T) {
	inj := faultinject.New(5, faultinject.Config{})
	lc := NewLocalClusterOptions(1, LocalOptions{
		Client: Options{
			CallTimeout:    50 * time.Millisecond,
			RetryBaseDelay: time.Millisecond,
			Seed:           1,
		},
		StoreFactory: func(int) (storage.TopologyStore, *kvstore.Store) {
			return storage.NewDynamicStore(storage.Options{}), kvstore.New()
		},
		WrapConn: func(_ int, c net.Conn) net.Conn { return inj.WrapConn(c) },
	})
	defer lc.Shutdown()
	client := lc.Client()

	if err := client.ApplyBatch([]graph.Event{{Kind: graph.AddEdge,
		Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}

	inj.Partition(false, true) // outbound blackhole: requests vanish silently
	start := time.Now()
	_, err := client.Stats()
	if err == nil {
		t.Fatal("call succeeded through a partition")
	}
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("partitioned call error = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v — per-call deadline not enforced", elapsed)
	}

	inj.Partition(false, false)
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if st.NumEdges != 1 {
		t.Fatalf("NumEdges after heal = %d", st.NumEdges)
	}
}

// TestChaosBreakerFailsFast: repeated failures open the per-peer circuit
// breaker, which then rejects instantly; after the cooldown a probe call
// closes it again.
func TestChaosBreakerFailsFast(t *testing.T) {
	opts := Options{
		CallTimeout:      time.Second,
		MaxRetries:       0,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Seed:             1,
	}
	lc := NewLocalClusterOptions(1, LocalOptions{
		Client: opts,
		StoreFactory: func(int) (storage.TopologyStore, *kvstore.Store) {
			return storage.NewDynamicStore(storage.Options{}), kvstore.New()
		},
	})
	defer lc.Shutdown()
	client := lc.Client()

	if _, err := client.Stats(); err != nil {
		t.Fatal(err)
	}
	lc.StopShard(0)
	// Trip the breaker: threshold transport failures.
	for i := 0; i < opts.BreakerThreshold; i++ {
		if _, err := client.Stats(); err == nil {
			t.Fatal("call succeeded against a stopped shard")
		}
	}
	h := client.Health()[0]
	if h.Breaker != "open" {
		t.Fatalf("breaker state = %q after %d failures, want open", h.Breaker, opts.BreakerThreshold)
	}
	// While open, calls fail fast with ErrPeerUnavailable — no dial attempt.
	if _, err := client.Stats(); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("open-breaker error = %v, want ErrPeerUnavailable", err)
	}
	// Recovery: restart the shard, wait out the cooldown, probe closes it.
	lc.RestartShard(0)
	time.Sleep(opts.BreakerCooldown + 10*time.Millisecond)
	if _, err := client.Stats(); err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	if h := client.Health()[0]; h.Breaker != "closed" || !h.Connected {
		t.Fatalf("health after recovery = %+v", h)
	}
}

// panicStore panics on Degree — a poisoned request that must become an RPC
// error, not kill the server's connection goroutine.
type panicStore struct{ storage.TopologyStore }

func (panicStore) Degree(graph.VertexID, graph.EdgeType) int { panic("poisoned request") }

func TestPanicRecoveredAsRPCError(t *testing.T) {
	lc := NewLocalClusterOptions(1, LocalOptions{
		Client: Options{CallTimeout: time.Second, Seed: 1},
		StoreFactory: func(int) (storage.TopologyStore, *kvstore.Store) {
			return panicStore{storage.NewDynamicStore(storage.Options{})}, kvstore.New()
		},
	})
	defer lc.Shutdown()
	client := lc.Client()

	if err := client.ApplyBatch([]graph.Event{{Kind: graph.AddEdge,
		Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	_, err := client.Degree([]graph.VertexID{1}, 0)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Degree error = %v, want recovered panic", err)
	}
	// The connection survived: other methods on the same peer still work.
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("Stats after panic: %v", err)
	}
	if st.NumEdges != 1 {
		t.Fatalf("NumEdges = %d", st.NumEdges)
	}
}

// TestApplyBatchAtMostOnce exercises dedup at the service level: a retried
// delete batch must not double-apply after the edge is re-added.
func TestApplyBatchAtMostOnce(t *testing.T) {
	store := storage.NewDynamicStore(storage.Options{})
	svc := NewService(store, nil)
	apply := func(seq uint64, events []graph.Event) *BatchReply {
		var reply BatchReply
		if err := svc.ApplyBatch(&BatchArgs{Events: events, ClientID: 77, Seq: seq}, &reply); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		return &reply
	}
	add := []graph.Event{{Kind: graph.AddEdge, Edge: graph.Edge{Src: 1, Dst: 2, Weight: 1}}}
	del := []graph.Event{{Kind: graph.DeleteEdge, Edge: graph.Edge{Src: 1, Dst: 2}}}

	apply(1, add)
	r := apply(2, del)
	if r.NumEdges != 0 || r.Duplicate {
		t.Fatalf("after delete: %+v", r)
	}
	// Retry of the delete batch: must be a no-op duplicate.
	if r := apply(2, del); !r.Duplicate {
		t.Fatal("retried batch not detected as duplicate")
	}
	// Re-add the edge, then replay the old delete again: at-most-once means
	// the edge survives.
	apply(3, add)
	r = apply(2, del)
	if !r.Duplicate || r.NumEdges != 1 {
		t.Fatalf("stale delete retry: %+v (edge must survive)", r)
	}
	if store.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after stale retry, want 1", store.NumEdges())
	}
	// Legacy batches (no identity) bypass dedup entirely.
	var reply BatchReply
	if err := svc.ApplyBatch(&BatchArgs{Events: del}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Duplicate || store.NumEdges() != 0 {
		t.Fatalf("legacy batch: dup=%v edges=%d", reply.Duplicate, store.NumEdges())
	}
}

// TestCrashRestartRecovery kills a shard mid-batch-stream, restarts it from
// snapshot + WAL, and asserts the cluster converges to the oracle — the
// full recovery recipe (snapshot, atomic WAL truncation, tail replay, dedup
// rebuild) at the library level.
func TestCrashRestartRecovery(t *testing.T) {
	storeOpts := storage.Options{Tree: core.Options{Capacity: 16}}
	dir := t.TempDir()
	snapPath := func(i int) string { return filepath.Join(dir, fmt.Sprintf("shard%d.snap", i)) }
	walPath := func(i int) string { return filepath.Join(dir, fmt.Sprintf("shard%d.wal", i)) }

	var mu sync.Mutex
	wals := make(map[int]*eventlog.Writer)
	stores := make(map[int]*storage.DynamicStore)
	factory := func(i int) *Service {
		mu.Lock()
		if old := wals[i]; old != nil {
			old.Close()
		}
		mu.Unlock()
		store := storage.NewDynamicStore(storeOpts)
		svc := NewService(store, kvstore.New())
		if f, err := os.Open(snapPath(i)); err == nil {
			if err := store.Load(f); err != nil {
				t.Fatalf("load shard %d snapshot: %v", i, err)
			}
			f.Close()
		}
		if _, err := os.Stat(walPath(i)); err == nil {
			if _, err := eventlog.ReplayBatches(walPath(i), func(rec eventlog.BatchRecord) error {
				store.ApplyBatch(rec.Events)
				svc.MarkApplied(rec.ClientID, rec.ClientSeq)
				return nil
			}); err != nil {
				t.Fatalf("replay shard %d wal: %v", i, err)
			}
		}
		w, err := eventlog.Create(walPath(i))
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		wals[i] = w
		stores[i] = store
		mu.Unlock()
		svc.SetBatchHook(func(clientID, seq uint64, events []graph.Event) error {
			_, err := w.AppendBatch(clientID, seq, events)
			return err
		})
		return svc
	}

	lc := NewLocalClusterOptions(3, LocalOptions{Client: chaosClientOptions(), ServiceFactory: factory})
	defer lc.Shutdown()
	client := lc.Client()

	oracle := storage.NewDynamicStore(storeOpts)
	gen := dataset.NewGenerator(dataset.RedditSim().Scale(3e-5), dataset.DynamicMix, 11)
	applyBoth := func(n int) {
		events := gen.Next(n)
		cp := make([]graph.Event, len(events))
		copy(cp, events)
		if err := client.ApplyBatch(cp); err != nil {
			t.Fatal(err)
		}
		oracle.ApplyBatch(events)
	}

	for b := 0; b < 5; b++ {
		applyBoth(1000)
	}

	// Snapshot shard 0 the way the server binary does on SIGTERM: pause,
	// save, atomically truncate the WAL so restart cannot double-replay.
	const victim = 0
	svc := lc.Service(victim)
	resume := svc.Pause()
	mu.Lock()
	vStore, vWal := stores[victim], wals[victim]
	mu.Unlock()
	f, err := os.Create(snapPath(victim))
	if err != nil {
		t.Fatal(err)
	}
	if err := vStore.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vWal.Reset(); err != nil {
		t.Fatal(err)
	}
	resume()

	// More traffic lands in the post-snapshot WAL tail, then the shard is
	// killed mid-stream: batches in flight ride the retry path while the
	// restarted shard recovers snapshot + tail.
	applyBoth(1000)
	var wg sync.WaitGroup
	wg.Add(1)
	killed := make(chan struct{})
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		time.Sleep(time.Duration(1+rng.Intn(3)) * time.Millisecond)
		lc.StopShard(victim)
		lc.RestartShard(victim)
		close(killed)
	}()
	for b := 0; b < 4; b++ {
		applyBoth(1000)
	}
	wg.Wait()
	<-killed

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEdges != oracle.NumEdges() {
		t.Fatalf("after crash+restart: cluster %d edges vs oracle %d", st.NumEdges, oracle.NumEdges())
	}
	srcs := oracle.Sources(0)
	if len(srcs) > 100 {
		srcs = srcs[:100]
	}
	degs, err := client.Degree(srcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range srcs {
		if want := oracle.Degree(src, 0); degs[i] != want {
			t.Fatalf("degree(%v): cluster %d vs oracle %d", src, degs[i], want)
		}
	}
}

// TestRedialAfterServerRestart: a plain stop/restart with no faults — the
// client's next call redials transparently.
func TestRedialAfterServerRestart(t *testing.T) {
	factory := newWALBackedFactory(t, storage.Options{})
	lc := NewLocalClusterOptions(2, LocalOptions{
		Client:         chaosClientOptions(),
		ServiceFactory: factory.service,
	})
	defer lc.Shutdown()
	client := lc.Client()

	var events []graph.Event
	for i := uint64(0); i < 200; i++ {
		events = append(events, graph.Event{Kind: graph.AddEdge,
			Edge: graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 500), Weight: 1}})
	}
	if err := client.ApplyBatch(events); err != nil {
		t.Fatal(err)
	}
	lc.StopShard(0)
	lc.RestartShard(0)
	lc.StopShard(1)
	lc.RestartShard(1)
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if st.NumEdges != 200 {
		t.Fatalf("NumEdges after WAL recovery = %d, want 200", st.NumEdges)
	}
}
