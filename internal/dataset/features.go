package dataset

import (
	"math/rand"

	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
)

// AssignFeatures populates the attribute store with learnable synthetic
// features and labels for n vertices of type vt: each vertex gets a class
// label from a deterministic hash, and its feature vector is the class
// centroid plus Gaussian noise. A GNN (or even a linear model) can recover
// the labels, which lets the end-to-end training example demonstrate real
// loss decrease on PlatoD2GL-sampled neighborhoods.
func AssignFeatures(store *kvstore.Store, vt graph.VertexType, n uint64, dim, classes int, noise float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// Fixed random centroids, one per class.
	centroids := make([][]float32, classes)
	for c := range centroids {
		centroids[c] = make([]float32, dim)
		for d := range centroids[c] {
			centroids[c][d] = float32(rng.NormFloat64())
		}
	}
	for i := uint64(0); i < n; i++ {
		id := graph.MakeVertexID(vt, i)
		label := int32(labelHash(uint64(id)) % uint64(classes))
		f := make([]float32, dim)
		for d := range f {
			f[d] = centroids[label][d] + float32(rng.NormFloat64()*noise)
		}
		store.SetFeatures(id, f)
		store.SetLabel(id, label)
	}
}

// labelHash is a deterministic vertex→class hash (splitmix64 finalizer).
func labelHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}
