package dataset

import (
	"math"
	"testing"

	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
)

func TestSpecDensitiesMatchTableIII(t *testing.T) {
	cases := []struct {
		spec    *Spec
		rel     int
		density float64
	}{
		{OGBNSim(), 0, 25.8},
		{RedditSim(), 0, 489.3},
		{WeChatSim(), 0, 62.06},
		{WeChatSim(), 1, 1.96},
		{WeChatSim(), 2, 49.62},
		{WeChatSim(), 3, 1.99},
	}
	for _, c := range cases {
		got := c.spec.Relations[c.rel].Density()
		if math.Abs(got-c.density)/c.density > 0.02 {
			t.Errorf("%s rel %d density = %.2f, want %.2f",
				c.spec.Name, c.rel, got, c.density)
		}
	}
}

func TestScalePreservesDensity(t *testing.T) {
	full := WeChatSim()
	small := full.Scale(1e-5)
	for i := range full.Relations {
		f := full.Relations[i].Density()
		s := small.Relations[i].Density()
		if math.Abs(f-s)/f > 0.05 {
			t.Errorf("rel %d density drifted: %.2f -> %.2f", i, f, s)
		}
		if small.Relations[i].NumSrc == 0 || small.Relations[i].NumEdges == 0 {
			t.Errorf("rel %d scaled to zero", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec := OGBNSim().Scale(1e-4)
	a := NewGenerator(spec, DynamicMix, 7).Next(500)
	b := NewGenerator(spec, DynamicMix, 7).Next(500)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorBidirected(t *testing.T) {
	spec := OGBNSim().Scale(1e-4)
	events := NewGenerator(spec, BuildMix, 1).Next(100)
	if len(events) != 200 {
		t.Fatalf("got %d events, want 200 (bi-directed)", len(events))
	}
	for i := 0; i < len(events); i += 2 {
		fwd, rev := events[i], events[i+1]
		if fwd.Edge.Src != rev.Edge.Dst || fwd.Edge.Dst != rev.Edge.Src {
			t.Fatalf("event %d: reverse is not a mirror", i)
		}
		if rev.Edge.Type != fwd.Edge.Type+ReverseOffset {
			t.Fatalf("event %d: reverse type %d", i, rev.Edge.Type)
		}
		if rev.Timestamp <= fwd.Timestamp {
			t.Fatalf("event %d: timestamps not increasing", i)
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	spec := OGBNSim().Scale(1e-4)
	g := NewGenerator(spec, Mix{DeleteFrac: 0.1, UpdateFrac: 0.2}, 3)
	// Warm the reservoir first.
	g.Next(2000)
	events := g.Next(20000)
	var dels, upds, adds int
	for _, ev := range events {
		switch ev.Kind {
		case graph.DeleteEdge:
			dels++
		case graph.UpdateWeight:
			upds++
		default:
			adds++
		}
	}
	n := float64(len(events))
	if f := float64(dels) / n; f < 0.07 || f > 0.13 {
		t.Errorf("delete fraction = %.3f, want ~0.10", f)
	}
	if f := float64(upds) / n; f < 0.16 || f > 0.24 {
		t.Errorf("update fraction = %.3f, want ~0.20", f)
	}
	if adds == 0 {
		t.Error("no adds generated")
	}
}

func TestGeneratorSkewedDegrees(t *testing.T) {
	// Zipf sources: the top source must receive far more edges than the
	// median source.
	spec := OGBNSim().Scale(1e-3) // 2400 sources
	g := NewGenerator(spec, BuildMix, 5)
	counts := map[graph.VertexID]int{}
	for _, ev := range g.Next(50000) {
		if ev.Edge.Type == 0 {
			counts[ev.Edge.Src]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := 50000 / len(counts)
	if max < 5*mean {
		t.Fatalf("degree distribution not skewed: max=%d mean=%d", max, mean)
	}
}

func TestGeneratorVertexTypesPacked(t *testing.T) {
	spec := WeChatSim().Scale(1e-6)
	events := NewGenerator(spec, BuildMix, 9).Next(1000)
	for _, ev := range events {
		if ev.Edge.Type >= ReverseOffset {
			continue // reverse edges swap src/dst types
		}
		r := spec.Relations[ev.Edge.Type]
		if ev.Edge.Src.Type() != r.SrcType || ev.Edge.Dst.Type() != r.DstType {
			t.Fatalf("event has wrong vertex types: %+v (rel %s)", ev.Edge, r.Name)
		}
		if ev.Edge.Src.Local() >= r.NumSrc {
			t.Fatalf("src local %d out of population %d", ev.Edge.Src.Local(), r.NumSrc)
		}
	}
}

func TestAssignFeaturesLearnable(t *testing.T) {
	store := kvstore.New()
	const n, dim, classes = 500, 16, 4
	AssignFeatures(store, VTProduct, n, dim, classes, 0.1, 1)
	if store.Len() != n {
		t.Fatalf("store has %d vertices, want %d", store.Len(), n)
	}
	// Features of same-class vertices must be closer than cross-class ones
	// (tight clusters with noise 0.1).
	type vec = []float32
	byClass := map[int32][]vec{}
	for i := uint64(0); i < n; i++ {
		id := graph.MakeVertexID(VTProduct, i)
		f, _ := store.Features(id)
		l, ok := store.Label(id)
		if !ok {
			t.Fatalf("vertex %d missing label", i)
		}
		byClass[l] = append(byClass[l], f)
	}
	if len(byClass) != classes {
		t.Fatalf("got %d classes, want %d", len(byClass), classes)
	}
	dist := func(a, b vec) float64 {
		s := 0.0
		for i := range a {
			d := float64(a[i] - b[i])
			s += d * d
		}
		return math.Sqrt(s)
	}
	intra := dist(byClass[0][0], byClass[0][1])
	inter := dist(byClass[0][0], byClass[1][0])
	if intra >= inter {
		t.Fatalf("intra-class distance %.3f >= inter-class %.3f", intra, inter)
	}
}
