// Package dataset generates the synthetic stand-ins for the paper's
// evaluation graphs (Table III): OGBN-Products, Reddit, and the WeChat
// production graph with its four heterogeneous relations.
//
// The real datasets are respectively too large to ship and proprietary, so
// each Spec reproduces the *shape* that drives the storage-engine behavior
// the paper measures: the per-relation source/target populations, the
// edge-per-source density, and a Zipf-skewed out-degree distribution (social
// and interaction graphs are heavily skewed — the skew is what exercises
// samtree splits, block chains and fixed-block slack). Specs scale down by a
// configurable factor while preserving density ratios; DESIGN.md documents
// the substitution.
//
// A Generator turns a Spec into a deterministic timestamped stream of
// dynamic update events: new insertions, repeat interactions (in-place
// weight updates — frequent in recommendation traffic and the case that
// punishes CSTable-based baselines), deletions, and explicit weight updates.
package dataset

import (
	"fmt"
	"math/rand"

	"platod2gl/internal/graph"
)

// RelSpec describes one heterogeneous relation at full (paper) scale.
type RelSpec struct {
	Name     string
	Type     graph.EdgeType
	SrcType  graph.VertexType
	DstType  graph.VertexType
	NumSrc   uint64 // source population
	NumDst   uint64 // target population
	NumEdges int64  // directed edge count (before bi-direction)
	// ZipfS is the Zipf skew exponent (>1) of the out-degree distribution.
	ZipfS float64
}

// Density returns edges per source vertex.
func (r RelSpec) Density() float64 { return float64(r.NumEdges) / float64(r.NumSrc) }

// Spec is a full dataset description.
type Spec struct {
	Name      string
	Schema    graph.Schema
	Relations []RelSpec
	// Bidirected mirrors every edge with a reverse event under edge type
	// Type+ReverseOffset (all paper datasets are bi-directed).
	Bidirected bool
}

// ReverseOffset is added to a relation's edge type for its reverse
// direction when the spec is bi-directed.
const ReverseOffset graph.EdgeType = 128

// TotalEvents returns the number of generator events for the spec (forward
// edges; reverse mirrors ride along with their forward event).
func (s *Spec) TotalEvents() int64 {
	var n int64
	for _, r := range s.Relations {
		n += r.NumEdges
	}
	return n
}

// Scale returns a copy of the spec with node and edge populations multiplied
// by f (minimum 1 source, 1 target, 1 edge per relation), preserving density
// ratios.
func (s *Spec) Scale(f float64) *Spec {
	out := *s
	out.Relations = make([]RelSpec, len(s.Relations))
	for i, r := range s.Relations {
		r.NumSrc = maxU64(1, uint64(float64(r.NumSrc)*f))
		r.NumDst = maxU64(1, uint64(float64(r.NumDst)*f))
		r.NumEdges = maxI64(1, int64(float64(r.NumEdges)*f))
		out.Relations[i] = r
	}
	out.Name = fmt.Sprintf("%s(x%.2g)", s.Name, f)
	return &out
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Vertex types shared by the specs.
const (
	VTProduct graph.VertexType = iota
	VTPost
	VTCommunity
	VTUser
	VTLive
	VTAttr
	VTTag
)

// OGBNSim mirrors the OGBN row of Table III: a homogeneous Product-Product
// graph, 2.4M nodes, 61.9M edges, density 25.8.
func OGBNSim() *Spec {
	return &Spec{
		Name: "OGBN",
		Schema: graph.Schema{
			VertexTypes: []string{"Product"},
			Relations:   []graph.Relation{{Name: "Product-Product", Type: 0, Src: VTProduct, Dst: VTProduct}},
		},
		Relations: []RelSpec{{
			Name: "Product-Product", Type: 0,
			SrcType: VTProduct, DstType: VTProduct,
			NumSrc: 2_400_000, NumDst: 2_400_000,
			NumEdges: 61_900_000, ZipfS: 1.3,
		}},
		Bidirected: true,
	}
}

// RedditSim mirrors the Reddit row: Post-Community, 233K nodes each side,
// 114M edges, density 489.3 (an extremely dense graph — deep samtrees).
func RedditSim() *Spec {
	return &Spec{
		Name: "Reddit",
		Schema: graph.Schema{
			VertexTypes: []string{"Post", "Community"},
			Relations:   []graph.Relation{{Name: "Post-Community", Type: 0, Src: VTPost, Dst: VTCommunity}},
		},
		Relations: []RelSpec{{
			Name: "Post-Community", Type: 0,
			SrcType: VTPost, DstType: VTCommunity,
			NumSrc: 233_000, NumDst: 233_000,
			NumEdges: 114_000_000, ZipfS: 1.2,
		}},
		Bidirected: true,
	}
}

// WeChatSim mirrors the WeChat production rows: four heterogeneous
// relations, 2.1B nodes / 63.9B edges in total at full scale.
func WeChatSim() *Spec {
	return &Spec{
		Name: "WeChat",
		Schema: graph.Schema{
			VertexTypes: []string{"", "", "", "User", "Live", "Attr", "Tag"},
			Relations: []graph.Relation{
				{Name: "User-Live", Type: 0, Src: VTUser, Dst: VTLive},
				{Name: "User-Attr", Type: 1, Src: VTUser, Dst: VTAttr},
				{Name: "Live-Live", Type: 2, Src: VTLive, Dst: VTLive},
				{Name: "Live-Tag", Type: 3, Src: VTLive, Dst: VTTag},
			},
		},
		Relations: []RelSpec{
			{Name: "User-Live", Type: 0, SrcType: VTUser, DstType: VTLive,
				NumSrc: 1_020_000_000, NumDst: 1_020_000_000, NumEdges: 63_300_000_000, ZipfS: 1.25},
			{Name: "User-Attr", Type: 1, SrcType: VTUser, DstType: VTAttr,
				NumSrc: 970_000_000, NumDst: 970_000_000, NumEdges: 1_900_000_000, ZipfS: 1.4},
			{Name: "Live-Live", Type: 2, SrcType: VTLive, DstType: VTLive,
				NumSrc: 13_100_000, NumDst: 13_100_000, NumEdges: 650_000_000, ZipfS: 1.25},
			{Name: "Live-Tag", Type: 3, SrcType: VTLive, DstType: VTTag,
				NumSrc: 15_100_000, NumDst: 15_100_000, NumEdges: 30_100_000, ZipfS: 1.4},
		},
		Bidirected: true,
	}
}

// Mix controls the kind distribution of generated events.
type Mix struct {
	// DeleteFrac is the probability an event deletes a recently inserted
	// edge.
	DeleteFrac float64
	// UpdateFrac is the probability an event re-weights a recently inserted
	// edge (an explicit UpdateWeight).
	UpdateFrac float64
	// Repeat interactions (AddEdge on an existing edge — in-place update in
	// every store) arise naturally from Zipf collisions; RepeatBoost makes
	// them more likely by re-emitting a recent edge as an AddEdge.
	RepeatBoost float64
}

// BuildMix is the graph-building mix for Fig. 8: insertions with a modest
// share of repeat interactions. Building happens "in a dynamic manner"
// (Sec. VII-B) from an interaction log, and interaction logs repeat edges —
// a user re-watching a live room updates the existing edge's weight rather
// than growing the graph.
var BuildMix = Mix{RepeatBoost: 0.15}

// InsertOnlyMix is a strictly append-only stream (no repeats), useful for
// isolating pure-insertion behavior.
var InsertOnlyMix = Mix{}

// DynamicMix models recommendation traffic for Fig. 9 / Fig. 11: mostly
// inserts with a realistic share of repeats, updates and deletions.
var DynamicMix = Mix{DeleteFrac: 0.05, UpdateFrac: 0.15, RepeatBoost: 0.2}

// Generator produces a deterministic event stream for a spec.
type Generator struct {
	spec *Spec
	mix  Mix
	rng  *rand.Rand
	// relCum selects a relation proportionally to its edge budget.
	relCum []float64
	zipfs  []*rand.Zipf
	// recent is a bounded uniform reservoir over every edge emitted so far
	// — the candidate pool for deletes / updates / boosted repeats. Uniform
	// (not recency-biased) targeting matters: weight updates to *old* edges
	// are the expensive case for CSTable-based stores (suffix rewrites),
	// and real interaction streams revisit arbitrary-age edges.
	recent []graph.Edge
	seen   int64
	clock  int64
}

const recentCap = 1 << 16

// NewGenerator returns a deterministic generator for the spec.
func NewGenerator(spec *Spec, mix Mix, seed int64) *Generator {
	g := &Generator{
		spec:   spec,
		mix:    mix,
		rng:    rand.New(rand.NewSource(seed)),
		relCum: make([]float64, len(spec.Relations)),
		zipfs:  make([]*rand.Zipf, len(spec.Relations)),
		recent: make([]graph.Edge, 0, recentCap),
	}
	cum := 0.0
	for i, r := range spec.Relations {
		cum += float64(r.NumEdges)
		g.relCum[i] = cum
		g.zipfs[i] = rand.NewZipf(g.rng, r.ZipfS, 8, r.NumSrc-1)
	}
	return g
}

func (g *Generator) pickRelation() int {
	total := g.relCum[len(g.relCum)-1]
	r := g.rng.Float64() * total
	for i, c := range g.relCum {
		if r < c {
			return i
		}
	}
	return len(g.relCum) - 1
}

func (g *Generator) remember(e graph.Edge) {
	g.seen++
	if len(g.recent) < recentCap {
		g.recent = append(g.recent, e)
		return
	}
	// Reservoir sampling keeps the pool uniform over the whole history.
	if j := g.rng.Int63n(g.seen); j < recentCap {
		g.recent[j] = e
	}
}

// newEdge draws a fresh edge from a Zipf-skewed source and a uniform target.
func (g *Generator) newEdge() graph.Edge {
	ri := g.pickRelation()
	r := &g.spec.Relations[ri]
	src := g.zipfs[ri].Uint64()
	dst := g.rng.Uint64() % r.NumDst
	return graph.Edge{
		Src:    graph.MakeVertexID(r.SrcType, src),
		Dst:    graph.MakeVertexID(r.DstType, dst),
		Type:   r.Type,
		Weight: 0.5 + g.rng.Float64(),
	}
}

// Next produces the next n events (2n when the spec is bi-directed: each
// logical edge event carries its reverse mirror).
func (g *Generator) Next(n int) []graph.Event {
	cap := n
	if g.spec.Bidirected {
		cap *= 2
	}
	out := make([]graph.Event, 0, cap)
	for i := 0; i < n; i++ {
		var ev graph.Event
		p := g.rng.Float64()
		switch {
		case p < g.mix.DeleteFrac && len(g.recent) > 0:
			e := g.recent[g.rng.Intn(len(g.recent))]
			ev = graph.Event{Kind: graph.DeleteEdge, Edge: e}
		case p < g.mix.DeleteFrac+g.mix.UpdateFrac && len(g.recent) > 0:
			e := g.recent[g.rng.Intn(len(g.recent))]
			e.Weight = 0.5 + g.rng.Float64()
			ev = graph.Event{Kind: graph.UpdateWeight, Edge: e}
		case p < g.mix.DeleteFrac+g.mix.UpdateFrac+g.mix.RepeatBoost && len(g.recent) > 0:
			e := g.recent[g.rng.Intn(len(g.recent))]
			e.Weight = 0.5 + g.rng.Float64()
			ev = graph.Event{Kind: graph.AddEdge, Edge: e}
		default:
			e := g.newEdge()
			g.remember(e)
			ev = graph.Event{Kind: graph.AddEdge, Edge: e}
		}
		ev.Timestamp = g.clock
		g.clock++
		out = append(out, ev)
		if g.spec.Bidirected {
			rev := ev
			rev.Edge.Src, rev.Edge.Dst = ev.Edge.Dst, ev.Edge.Src
			rev.Edge.Type = ev.Edge.Type + ReverseOffset
			rev.Timestamp = g.clock
			g.clock++
			out = append(out, rev)
		}
	}
	return out
}
