package gnn

import (
	"fmt"
	"math/rand"

	"platod2gl/internal/graph"
	"platod2gl/internal/view"
)

// Model is a two-layer GraphSAGE node classifier (Fig. 1's training phase):
// layer 1 lifts raw features to a hidden representation, layer 2 maps to
// class logits. Dynamic GNN training re-samples neighborhoods from the live
// graph every batch, so topology updates are reflected immediately.
type Model struct {
	L1, L2 *SAGELayer
	InDim  int
	Hidden int
	Out    int
}

// NewModel builds a Glorot-initialized 2-layer model.
func NewModel(inDim, hidden, classes int, rng *rand.Rand) *Model {
	return &Model{
		L1:     NewSAGELayer(inDim, hidden, true, rng),
		L2:     NewSAGELayer(hidden, classes, false, rng),
		InDim:  inDim,
		Hidden: hidden,
		Out:    classes,
	}
}

// Params returns all trainable tensors.
func (m *Model) Params() []*Matrix { return append(m.L1.Params(), m.L2.Params()...) }

// Grads returns all gradient tensors.
func (m *Model) Grads() []*Matrix { return append(m.L1.Grads(), m.L2.Grads()...) }

// ZeroGrads clears gradients.
func (m *Model) ZeroGrads() {
	m.L1.ZeroGrads()
	m.L2.ZeroGrads()
}

// Batch is one sampled mini-batch: seeds plus their 2-hop neighborhood and
// gathered features.
type Batch struct {
	Seeds  []graph.VertexID
	Hop1   []graph.VertexID // len(Seeds) * F1
	Hop2   []graph.VertexID // len(Seeds) * F1 * F2
	F1, F2 int

	XSeeds *Matrix
	XHop1  *Matrix
	XHop2  *Matrix
	Labels []int32
}

// Trainer drives mini-batch GNN training against a GraphView — it never
// touches a concrete store, so the same trainer runs over an in-process
// graph (view.Local) or a sharded cluster (view.Cluster).
type Trainer struct {
	Model *Model
	View  view.GraphView
	Opt   *Adam
	// Rel is the relation to expand over both hops.
	Rel graph.EdgeType
	// F1, F2 are the per-hop fanouts.
	F1, F2 int
}

// NewTrainer wires a trainer to a graph view.
func NewTrainer(model *Model, v view.GraphView, rel graph.EdgeType, f1, f2 int, lr float64) *Trainer {
	return &Trainer{
		Model: model,
		View:  v,
		Opt:   NewAdam(lr),
		Rel:   rel,
		F1:    f1,
		F2:    f2,
	}
}

// SampleBatch expands the seeds two hops and gathers features and labels in
// one view round-trip each (the feature pull covers seeds and both hops in
// a single call, so a remote backend pays one fan-out, not three). Seeds
// without labels get label 0 — callers training on labeled sets should pass
// labeled seeds.
func (t *Trainer) SampleBatch(seeds []graph.VertexID) (*Batch, error) {
	layers, err := t.View.SampleSubgraph(seeds, graph.MetaPath{t.Rel, t.Rel}, []int{t.F1, t.F2})
	if err != nil {
		return nil, fmt.Errorf("gnn: sample subgraph: %w", err)
	}
	hop1, hop2 := layers[0], layers[1]
	dim := t.Model.InDim
	nodes := make([]graph.VertexID, 0, len(seeds)+len(hop1)+len(hop2))
	nodes = append(nodes, seeds...)
	nodes = append(nodes, hop1...)
	nodes = append(nodes, hop2...)
	x, err := t.View.Features(nodes, dim)
	if err != nil {
		return nil, fmt.Errorf("gnn: gather features: %w", err)
	}
	labels, err := t.View.Labels(seeds)
	if err != nil {
		return nil, fmt.Errorf("gnn: gather labels: %w", err)
	}
	nS, n1 := len(seeds)*dim, len(hop1)*dim
	return &Batch{
		Seeds: seeds, Hop1: hop1, Hop2: hop2, F1: t.F1, F2: t.F2,
		XSeeds: NewMatrixFrom(len(seeds), dim, x[:nS]),
		XHop1:  NewMatrixFrom(len(hop1), dim, x[nS:nS+n1]),
		XHop2:  NewMatrixFrom(len(hop2), dim, x[nS+n1:]),
		Labels: labels,
	}, nil
}

// Forward runs the 2-layer model on a batch, returning seed logits.
//
// Layer 1 is applied jointly to [seeds; hop1] (self inputs) against their
// pooled children ([hop1 means; hop2 means]); layer 2 then combines the
// seeds' hidden states with the pooled hop-1 hidden states.
func (t *Trainer) Forward(b *Batch) *Matrix {
	nSeeds := len(b.Seeds)
	selfX := VStack(b.XSeeds, b.XHop1)
	neighX := VStack(MeanPool(b.XHop1, b.F1), MeanPool(b.XHop2, b.F2))
	h1 := t.Model.L1.Forward(selfX, neighX)
	h1Seeds := SliceRows(h1, 0, nSeeds)
	h1Hop1 := SliceRows(h1, nSeeds, h1.Rows)
	return t.Model.L2.Forward(h1Seeds, MeanPool(h1Hop1, b.F1))
}

// TrainStep runs one forward/backward/update pass and returns the batch
// loss.
func (t *Trainer) TrainStep(b *Batch) float64 {
	t.Model.ZeroGrads()
	logits := t.Forward(b)
	loss, dLogits := SoftmaxCrossEntropy(logits, b.Labels)
	t.backward(b, dLogits)
	t.Opt.Step(t.Model.Params(), t.Model.Grads())
	return loss
}

func (t *Trainer) backward(b *Batch, dLogits *Matrix) {
	dH1Seeds, dH1Hop1Pooled := t.Model.L2.Backward(dLogits)
	dH1Hop1 := MeanPoolBackward(dH1Hop1Pooled, b.F1)
	dH1 := VStack(dH1Seeds, dH1Hop1)
	// Layer-1 input gradients are not needed (features are constants), but
	// Backward also accumulates the layer-1 weight gradients.
	t.Model.L1.Backward(dH1)
}

// Loss computes the batch loss without updating parameters.
func (t *Trainer) Loss(b *Batch) float64 {
	logits := t.Forward(b)
	loss, _ := SoftmaxCrossEntropy(logits, b.Labels)
	return loss
}

// Accuracy evaluates classification accuracy on the given seeds.
func (t *Trainer) Accuracy(seeds []graph.VertexID) (float64, error) {
	if len(seeds) == 0 {
		return 0, nil
	}
	b, err := t.SampleBatch(seeds)
	if err != nil {
		return 0, err
	}
	pred := Argmax(t.Forward(b))
	correct := 0
	for i, p := range pred {
		if p == b.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(seeds)), nil
}

// EpochResult summarizes one training epoch.
type EpochResult struct {
	Epoch    int
	MeanLoss float64
	Batches  int
}

func (e EpochResult) String() string {
	return fmt.Sprintf("epoch %d: mean loss %.4f over %d batches", e.Epoch, e.MeanLoss, e.Batches)
}

// TrainEpoch shuffles the seed set, trains on consecutive mini-batches, and
// returns the mean loss. This is the synchronous loop — sample, fetch,
// train, strictly in series; internal/pipeline overlaps the sampling and
// feature I/O of upcoming batches with the current TrainStep.
func (t *Trainer) TrainEpoch(epoch int, seeds []graph.VertexID, batchSize int, rng *rand.Rand) (EpochResult, error) {
	perm := rng.Perm(len(seeds))
	totalLoss := 0.0
	batches := 0
	for lo := 0; lo+batchSize <= len(perm); lo += batchSize {
		batch := make([]graph.VertexID, batchSize)
		for i := 0; i < batchSize; i++ {
			batch[i] = seeds[perm[lo+i]]
		}
		b, err := t.SampleBatch(batch)
		if err != nil {
			return EpochResult{Epoch: epoch}, err
		}
		totalLoss += t.TrainStep(b)
		batches++
	}
	if batches == 0 {
		return EpochResult{Epoch: epoch}, nil
	}
	return EpochResult{Epoch: epoch, MeanLoss: totalLoss / float64(batches), Batches: batches}, nil
}
