package gnn

import (
	"fmt"
	"math/rand"

	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
)

// Model is a two-layer GraphSAGE node classifier (Fig. 1's training phase):
// layer 1 lifts raw features to a hidden representation, layer 2 maps to
// class logits. Dynamic GNN training re-samples neighborhoods from the live
// graph every batch, so topology updates are reflected immediately.
type Model struct {
	L1, L2 *SAGELayer
	InDim  int
	Hidden int
	Out    int
}

// NewModel builds a Glorot-initialized 2-layer model.
func NewModel(inDim, hidden, classes int, rng *rand.Rand) *Model {
	return &Model{
		L1:     NewSAGELayer(inDim, hidden, true, rng),
		L2:     NewSAGELayer(hidden, classes, false, rng),
		InDim:  inDim,
		Hidden: hidden,
		Out:    classes,
	}
}

// Params returns all trainable tensors.
func (m *Model) Params() []*Matrix { return append(m.L1.Params(), m.L2.Params()...) }

// Grads returns all gradient tensors.
func (m *Model) Grads() []*Matrix { return append(m.L1.Grads(), m.L2.Grads()...) }

// ZeroGrads clears gradients.
func (m *Model) ZeroGrads() {
	m.L1.ZeroGrads()
	m.L2.ZeroGrads()
}

// Batch is one sampled mini-batch: seeds plus their 2-hop neighborhood and
// gathered features.
type Batch struct {
	Seeds  []graph.VertexID
	Hop1   []graph.VertexID // len(Seeds) * F1
	Hop2   []graph.VertexID // len(Seeds) * F1 * F2
	F1, F2 int

	XSeeds *Matrix
	XHop1  *Matrix
	XHop2  *Matrix
	Labels []int32
}

// Trainer drives mini-batch GNN training over a dynamic topology store.
type Trainer struct {
	Model   *Model
	Store   storage.TopologyStore
	Attrs   *kvstore.Store
	Sampler *sampler.Sampler
	Opt     *Adam
	// Rel is the relation to expand over both hops.
	Rel graph.EdgeType
	// F1, F2 are the per-hop fanouts.
	F1, F2 int
}

// NewTrainer wires a trainer with standard settings.
func NewTrainer(model *Model, store storage.TopologyStore, attrs *kvstore.Store, rel graph.EdgeType, f1, f2 int, lr float64) *Trainer {
	return &Trainer{
		Model:   model,
		Store:   store,
		Attrs:   attrs,
		Sampler: sampler.New(store, sampler.Options{Parallelism: 4, Seed: 1}),
		Opt:     NewAdam(lr),
		Rel:     rel,
		F1:      f1,
		F2:      f2,
	}
}

// SampleBatch expands the seeds two hops and gathers features and labels.
// Seeds without labels get label 0 — callers training on labeled sets should
// pass labeled seeds.
func (t *Trainer) SampleBatch(seeds []graph.VertexID) *Batch {
	sg := t.Sampler.SampleSubgraph(seeds, graph.MetaPath{t.Rel, t.Rel}, []int{t.F1, t.F2})
	hop1 := sg.Layers[0].Nodes
	hop2 := sg.Layers[1].Nodes
	b := &Batch{
		Seeds: seeds, Hop1: hop1, Hop2: hop2, F1: t.F1, F2: t.F2,
		XSeeds: NewMatrixFrom(len(seeds), t.Model.InDim, t.Attrs.GatherFeatures(seeds, t.Model.InDim)),
		XHop1:  NewMatrixFrom(len(hop1), t.Model.InDim, t.Attrs.GatherFeatures(hop1, t.Model.InDim)),
		XHop2:  NewMatrixFrom(len(hop2), t.Model.InDim, t.Attrs.GatherFeatures(hop2, t.Model.InDim)),
		Labels: make([]int32, len(seeds)),
	}
	for i, s := range seeds {
		if l, ok := t.Attrs.Label(s); ok {
			b.Labels[i] = l
		}
	}
	return b
}

// Forward runs the 2-layer model on a batch, returning seed logits.
//
// Layer 1 is applied jointly to [seeds; hop1] (self inputs) against their
// pooled children ([hop1 means; hop2 means]); layer 2 then combines the
// seeds' hidden states with the pooled hop-1 hidden states.
func (t *Trainer) Forward(b *Batch) *Matrix {
	nSeeds := len(b.Seeds)
	selfX := VStack(b.XSeeds, b.XHop1)
	neighX := VStack(MeanPool(b.XHop1, b.F1), MeanPool(b.XHop2, b.F2))
	h1 := t.Model.L1.Forward(selfX, neighX)
	h1Seeds := SliceRows(h1, 0, nSeeds)
	h1Hop1 := SliceRows(h1, nSeeds, h1.Rows)
	return t.Model.L2.Forward(h1Seeds, MeanPool(h1Hop1, b.F1))
}

// TrainStep runs one forward/backward/update pass and returns the batch
// loss.
func (t *Trainer) TrainStep(b *Batch) float64 {
	t.Model.ZeroGrads()
	logits := t.Forward(b)
	loss, dLogits := SoftmaxCrossEntropy(logits, b.Labels)
	t.backward(b, dLogits)
	t.Opt.Step(t.Model.Params(), t.Model.Grads())
	return loss
}

func (t *Trainer) backward(b *Batch, dLogits *Matrix) {
	dH1Seeds, dH1Hop1Pooled := t.Model.L2.Backward(dLogits)
	dH1Hop1 := MeanPoolBackward(dH1Hop1Pooled, b.F1)
	dH1 := VStack(dH1Seeds, dH1Hop1)
	// Layer-1 input gradients are not needed (features are constants), but
	// Backward also accumulates the layer-1 weight gradients.
	t.Model.L1.Backward(dH1)
}

// Loss computes the batch loss without updating parameters.
func (t *Trainer) Loss(b *Batch) float64 {
	logits := t.Forward(b)
	loss, _ := SoftmaxCrossEntropy(logits, b.Labels)
	return loss
}

// Accuracy evaluates classification accuracy on the given seeds.
func (t *Trainer) Accuracy(seeds []graph.VertexID) float64 {
	if len(seeds) == 0 {
		return 0
	}
	b := t.SampleBatch(seeds)
	pred := Argmax(t.Forward(b))
	correct := 0
	for i, p := range pred {
		if p == b.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(seeds))
}

// EpochResult summarizes one training epoch.
type EpochResult struct {
	Epoch    int
	MeanLoss float64
	Batches  int
}

func (e EpochResult) String() string {
	return fmt.Sprintf("epoch %d: mean loss %.4f over %d batches", e.Epoch, e.MeanLoss, e.Batches)
}

// TrainEpoch shuffles the seed set, trains on consecutive mini-batches, and
// returns the mean loss.
func (t *Trainer) TrainEpoch(epoch int, seeds []graph.VertexID, batchSize int, rng *rand.Rand) EpochResult {
	perm := rng.Perm(len(seeds))
	totalLoss := 0.0
	batches := 0
	for lo := 0; lo+batchSize <= len(perm); lo += batchSize {
		batch := make([]graph.VertexID, batchSize)
		for i := 0; i < batchSize; i++ {
			batch[i] = seeds[perm[lo+i]]
		}
		totalLoss += t.TrainStep(t.SampleBatch(batch))
		batches++
	}
	if batches == 0 {
		return EpochResult{Epoch: epoch}
	}
	return EpochResult{Epoch: epoch, MeanLoss: totalLoss / float64(batches), Batches: batches}
}
