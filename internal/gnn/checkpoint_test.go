package gnn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m1 := NewModel(8, 16, 4, rng)
	m2 := NewModel(8, 16, 4, rng) // different init
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Data {
			if p1[i].Data[j] != p2[i].Data[j] {
				t.Fatalf("tensor %d[%d] differs after load", i, j)
			}
		}
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, NewModel(8, 16, 4, rng).Params()); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(&buf, NewModel(8, 32, 4, rng).Params())
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("expected shape error, got %v", err)
	}
}

func TestCheckpointTensorCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	if err := SaveParams(&buf, NewModel(8, 16, 4, rng).Params()); err != nil {
		t.Fatal(err)
	}
	l := NewSAGELayer(8, 16, true, rng)
	if err := LoadParams(&buf, l.Params()); err == nil {
		t.Fatal("expected tensor-count error")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if err := LoadParams(strings.NewReader("junk"), NewModel(4, 4, 2, rng).Params()); err == nil {
		t.Fatal("expected decode error")
	}
}
