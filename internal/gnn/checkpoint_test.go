package gnn

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m1 := NewModel(8, 16, 4, rng)
	m2 := NewModel(8, 16, 4, rng) // different init
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Data {
			if p1[i].Data[j] != p2[i].Data[j] {
				t.Fatalf("tensor %d[%d] differs after load", i, j)
			}
		}
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, NewModel(8, 16, 4, rng).Params()); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(&buf, NewModel(8, 32, 4, rng).Params())
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("expected shape error, got %v", err)
	}
}

func TestCheckpointTensorCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	if err := SaveParams(&buf, NewModel(8, 16, 4, rng).Params()); err != nil {
		t.Fatal(err)
	}
	l := NewSAGELayer(8, 16, true, rng)
	if err := LoadParams(&buf, l.Params()); err == nil {
		t.Fatal("expected tensor-count error")
	}
}

// TestCheckpointReadsLegacyV1 writes the original footer-less format by hand
// and checks LoadParams still accepts it (magic bump back-compat).
func TestCheckpointReadsLegacyV1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m1 := NewModel(6, 12, 3, rng)
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	params := m1.Params()
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagic, Tensors: len(params)}); err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		if err := enc.Encode(checkpointTensor{Rows: p.Rows, Cols: p.Cols, Data: p.Data}); err != nil {
			t.Fatal(err)
		}
	}
	m2 := NewModel(6, 12, 3, rng)
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatalf("legacy v1 checkpoint rejected: %v", err)
	}
	for i, p := range params {
		for j := range p.Data {
			if p.Data[j] != m2.Params()[i].Data[j] {
				t.Fatalf("tensor %d[%d] differs after v1 load", i, j)
			}
		}
	}
}

// TestCheckpointChecksumMismatch crafts a v2 stream whose footer disagrees
// with the tensor content and expects rejection.
func TestCheckpointChecksumMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewModel(4, 8, 2, rng)
	params := m.Params()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagicV2, Tensors: len(params)}); err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		if err := enc.Encode(checkpointTensor{Rows: p.Rows, Cols: p.Cols, Data: p.Data}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(checkpointFooter{CRC: 0xdeadbeef}); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(&buf, NewModel(4, 8, 2, rng).Params())
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("expected checksum mismatch, got %v", err)
	}
}

func TestCheckpointShapeErrorReportsDims(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	if err := SaveParams(&buf, NewModel(8, 16, 4, rng).Params()); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(&buf, NewModel(8, 32, 4, rng).Params())
	if err == nil {
		t.Fatal("expected shape error")
	}
	for _, want := range []string{"tensor 0", "8x16", "8x32", "expects"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("shape error %q missing %q", err, want)
		}
	}
}

func TestAdamStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	params := []*Matrix{NewMatrix(2, 3).Glorot(rng)}
	grads := []*Matrix{NewMatrix(2, 3).Glorot(rng)}
	a := NewAdam(0.05)
	for i := 0; i < 4; i++ {
		a.Step(params, grads)
	}
	st := a.State()
	if st.T != 4 || len(st.M) != 1 || len(st.M[0]) != 6 {
		t.Fatalf("unexpected state: T=%d M=%v", st.T, st.M)
	}
	// Continuing from a restored state must match continuing the original.
	b := NewAdam(0.05)
	b.SetState(st)
	pa := []*Matrix{params[0].Clone()}
	pb := []*Matrix{params[0].Clone()}
	for i := 0; i < 3; i++ {
		a.Step(pa, grads)
		b.Step(pb, grads)
	}
	for j := range pa[0].Data {
		if pa[0].Data[j] != pb[0].Data[j] {
			t.Fatalf("restored optimizer diverged at %d: %v vs %v", j, pa[0].Data[j], pb[0].Data[j])
		}
	}
	// Mutating the exported state must not alias the optimizer's internals.
	st.M[0][0] = 99
	if a.State().M[0][0] == 99 {
		t.Fatal("State() aliases internal moments")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if err := LoadParams(strings.NewReader("junk"), NewModel(4, 4, 2, rng).Params()); err == nil {
		t.Fatal("expected decode error")
	}
}
