// Package gnn is the "TF-based operators layer" substitute of this
// reproduction (Fig. 2, top): dense float32 tensors with the handful of
// operators GraphSAGE-style training needs (matmul, bias, ReLU, mean
// pooling over fixed-fanout neighbor groups, softmax cross-entropy), manual
// backpropagation, an Adam optimizer, and a mini-batch trainer that consumes
// PlatoD2GL's samplers. Eq. (1) of the paper — aggregate neighbor messages,
// combine with the self embedding — maps to the SAGELayer.
package gnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewMatrixFrom wraps data (retained, not copied) as a rows×cols matrix.
func NewMatrixFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("gnn: data length %d != %d x %d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Glorot fills the matrix with Glorot-uniform initial weights.
func (m *Matrix) Glorot(rng *rand.Rand) *Matrix {
	limit := float32(math.Sqrt(6.0 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a shared slice.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatMul computes a·b into a fresh (a.Rows × b.Cols) matrix.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("gnn: matmul shape mismatch (%dx%d)·(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulAT computes aᵀ·b (a is k×m, b is k×n, result m×n) — the weight
// gradient shape in backprop.
func MatMulAT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("gnn: matmulAT shape mismatch (%dx%d)ᵀ·(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulBT computes a·bᵀ (a is m×k, b is n×k, result m×n) — the input
// gradient shape in backprop.
func MatMulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("gnn: matmulBT shape mismatch (%dx%d)·(%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k := range arow {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// AddInPlace adds b to a elementwise.
func AddInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("gnn: AddInPlace shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddBiasRow adds bias (1×cols) to every row of m in place.
func AddBiasRow(m *Matrix, bias *Matrix) {
	if bias.Rows != 1 || bias.Cols != m.Cols {
		panic("gnn: bias shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias.Data[j]
		}
	}
}

// ColSum returns the column sums of m as a 1×cols matrix (bias gradient).
func ColSum(m *Matrix) *Matrix {
	out := NewMatrix(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// ReluInPlace applies max(0, x) and returns a mask matrix for backprop.
func ReluInPlace(m *Matrix) *Matrix {
	mask := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			mask.Data[i] = 1
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}

// MulMaskInPlace multiplies m by a 0/1 mask elementwise (ReLU backward).
func MulMaskInPlace(m, mask *Matrix) {
	if m.Rows != mask.Rows || m.Cols != mask.Cols {
		panic("gnn: mask shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] *= mask.Data[i]
	}
}

// MeanPool groups the rows of child ((n*fanout)×d) into n groups of fanout
// consecutive rows and returns their means (n×d) — the ⊕ neighbor
// aggregation of Eq. (1) with a mean aggregator.
func MeanPool(child *Matrix, fanout int) *Matrix {
	if fanout <= 0 || child.Rows%fanout != 0 {
		panic(fmt.Sprintf("gnn: MeanPool fanout %d does not divide %d rows", fanout, child.Rows))
	}
	n := child.Rows / fanout
	out := NewMatrix(n, child.Cols)
	inv := 1 / float32(fanout)
	for i := 0; i < n; i++ {
		orow := out.Row(i)
		for j := 0; j < fanout; j++ {
			crow := child.Row(i*fanout + j)
			for k, v := range crow {
				orow[k] += v * inv
			}
		}
	}
	return out
}

// MeanPoolBackward scatters the pooled gradient back to the child rows.
func MeanPoolBackward(dPooled *Matrix, fanout int) *Matrix {
	out := NewMatrix(dPooled.Rows*fanout, dPooled.Cols)
	inv := 1 / float32(fanout)
	for i := 0; i < dPooled.Rows; i++ {
		drow := dPooled.Row(i)
		for j := 0; j < fanout; j++ {
			orow := out.Row(i*fanout + j)
			for k, v := range drow {
				orow[k] = v * inv
			}
		}
	}
	return out
}

// SoftmaxCrossEntropy computes the mean cross-entropy of logits (n×classes)
// against integer labels, returning the loss and dL/dlogits.
func SoftmaxCrossEntropy(logits *Matrix, labels []int32) (float64, *Matrix) {
	if len(labels) != logits.Rows {
		panic("gnn: label count mismatch")
	}
	n := logits.Rows
	grad := NewMatrix(n, logits.Cols)
	loss := 0.0
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		lbl := int(labels[i])
		loss += logSum - float64(row[lbl]-maxv)
		grow := grad.Row(i)
		for j, v := range row {
			p := float32(math.Exp(float64(v-maxv)) / sum)
			if j == lbl {
				p -= 1
			}
			grow[j] = p * invN
		}
	}
	return loss / float64(n), grad
}

// Argmax returns the per-row argmax of m.
func Argmax(m *Matrix) []int32 {
	out := make([]int32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bv := 0, row[0]
		for j, v := range row[1:] {
			if v > bv {
				best, bv = j+1, v
			}
		}
		out[i] = int32(best)
	}
	return out
}

// VStack concatenates a and b row-wise.
func VStack(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("gnn: VStack column mismatch")
	}
	out := NewMatrix(a.Rows+b.Rows, a.Cols)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SliceRows returns rows [lo, hi) of m as a copy.
func SliceRows(m *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("gnn: SliceRows [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	out := NewMatrix(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// MaxPool groups the rows of child ((n*fanout)×d) into n groups and takes
// the elementwise maximum — GraphSAGE's pooling aggregator alternative to
// the mean. The returned argmax matrix records, per output cell, which row
// within the group supplied the max (for backprop).
func MaxPool(child *Matrix, fanout int) (*Matrix, *Matrix) {
	if fanout <= 0 || child.Rows%fanout != 0 {
		panic(fmt.Sprintf("gnn: MaxPool fanout %d does not divide %d rows", fanout, child.Rows))
	}
	n := child.Rows / fanout
	out := NewMatrix(n, child.Cols)
	arg := NewMatrix(n, child.Cols)
	for i := 0; i < n; i++ {
		orow := out.Row(i)
		arow := arg.Row(i)
		copy(orow, child.Row(i*fanout))
		for j := 1; j < fanout; j++ {
			crow := child.Row(i*fanout + j)
			for k, v := range crow {
				if v > orow[k] {
					orow[k] = v
					arow[k] = float32(j)
				}
			}
		}
	}
	return out, arg
}

// MaxPoolBackward routes the pooled gradient to the argmax rows.
func MaxPoolBackward(dPooled, arg *Matrix, fanout int) *Matrix {
	out := NewMatrix(dPooled.Rows*fanout, dPooled.Cols)
	for i := 0; i < dPooled.Rows; i++ {
		drow := dPooled.Row(i)
		arow := arg.Row(i)
		for k, v := range drow {
			j := int(arow[k])
			out.Row(i*fanout + j)[k] = v
		}
	}
	return out
}

// Dropout zeroes each element with probability p (training-time
// regularization), scaling survivors by 1/(1-p) so expectations match
// inference. Returns the mask (already scaled) for backprop via
// MulMaskInPlace.
func Dropout(m *Matrix, p float64, rng *rand.Rand) *Matrix {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("gnn: dropout p=%v out of [0,1)", p))
	}
	mask := NewMatrix(m.Rows, m.Cols)
	scale := float32(1 / (1 - p))
	for i := range m.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
			m.Data[i] *= scale
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}
