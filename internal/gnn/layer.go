package gnn

import (
	"math"
	"math/rand"
)

// SAGELayer is one GraphSAGE layer implementing Eq. (1) with a mean
// aggregator:
//
//	h_out(v) = act( h(v)·Wself + mean_{u∈N(v)} h(u)·Wneigh + b )
//
// g is the combine step, ⊕ the mean pool (computed by the caller with
// MeanPool), and f the identity message function.
type SAGELayer struct {
	Wself, Wneigh *Matrix // in×out
	Bias          *Matrix // 1×out
	Act           bool    // apply ReLU

	// Gradients, accumulated by Backward.
	GWself, GWneigh, GBias *Matrix

	// Forward cache.
	xSelf, xNeigh *Matrix
	mask          *Matrix
}

// NewSAGELayer returns a Glorot-initialized layer.
func NewSAGELayer(in, out int, act bool, rng *rand.Rand) *SAGELayer {
	return &SAGELayer{
		Wself:   NewMatrix(in, out).Glorot(rng),
		Wneigh:  NewMatrix(in, out).Glorot(rng),
		Bias:    NewMatrix(1, out),
		Act:     act,
		GWself:  NewMatrix(in, out),
		GWneigh: NewMatrix(in, out),
		GBias:   NewMatrix(1, out),
	}
}

// Forward combines the self embeddings (n×in) with the pooled neighbor
// embeddings (n×in) into the next representations (n×out), caching
// intermediates for Backward.
func (l *SAGELayer) Forward(xSelf, xNeigh *Matrix) *Matrix {
	l.xSelf, l.xNeigh = xSelf, xNeigh
	z := MatMul(xSelf, l.Wself)
	AddInPlace(z, MatMul(xNeigh, l.Wneigh))
	AddBiasRow(z, l.Bias)
	if l.Act {
		l.mask = ReluInPlace(z)
	} else {
		l.mask = nil
	}
	return z
}

// Backward consumes dL/doutput and returns (dL/dxSelf, dL/dxNeigh),
// accumulating the weight gradients.
func (l *SAGELayer) Backward(dOut *Matrix) (dSelf, dNeigh *Matrix) {
	dz := dOut
	if l.mask != nil {
		dz = dOut.Clone()
		MulMaskInPlace(dz, l.mask)
	}
	AddInPlace(l.GWself, MatMulAT(l.xSelf, dz))
	AddInPlace(l.GWneigh, MatMulAT(l.xNeigh, dz))
	AddInPlace(l.GBias, ColSum(dz))
	return MatMulBT(dz, l.Wself), MatMulBT(dz, l.Wneigh)
}

// Params returns the trainable tensors.
func (l *SAGELayer) Params() []*Matrix { return []*Matrix{l.Wself, l.Wneigh, l.Bias} }

// Grads returns the gradient tensors, aligned with Params.
func (l *SAGELayer) Grads() []*Matrix { return []*Matrix{l.GWself, l.GWneigh, l.GBias} }

// ZeroGrads clears the accumulated gradients.
func (l *SAGELayer) ZeroGrads() {
	l.GWself.Zero()
	l.GWneigh.Zero()
	l.GBias.Zero()
}

// Adam is a standard Adam optimizer over a set of tensors.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  [][]float32
}

// NewAdam returns an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// AdamState is the serializable optimizer state: the step count and both
// moment vectors, aligned with the parameter tensors Step was called with.
// Checkpoints carry it so a resumed training session continues the exact
// update trajectory instead of restarting the moments from zero.
type AdamState struct {
	T    int
	M, V [][]float32
}

// State deep-copies the optimizer state. An optimizer that has not stepped
// yet returns a zero state (T == 0, nil moments).
func (a *Adam) State() AdamState {
	st := AdamState{T: a.t}
	if a.m != nil {
		st.M = make([][]float32, len(a.m))
		st.V = make([][]float32, len(a.v))
		for i := range a.m {
			st.M[i] = append([]float32(nil), a.m[i]...)
			st.V[i] = append([]float32(nil), a.v[i]...)
		}
	}
	return st
}

// SetState restores a previously captured state, deep-copying the moment
// vectors. A zero state resets the optimizer to fresh. Callers are
// responsible for matching the state to the parameter set (the checkpoint
// layer validates shapes before calling this).
func (a *Adam) SetState(st AdamState) {
	a.t = st.T
	if st.M == nil {
		a.m, a.v = nil, nil
		return
	}
	a.m = make([][]float32, len(st.M))
	a.v = make([][]float32, len(st.V))
	for i := range st.M {
		a.m[i] = append([]float32(nil), st.M[i]...)
		a.v[i] = append([]float32(nil), st.V[i]...)
	}
}

// Step applies one update to params from grads (aligned slices of tensors).
func (a *Adam) Step(params, grads []*Matrix) {
	if a.m == nil {
		a.m = make([][]float32, len(params))
		a.v = make([][]float32, len(params))
		for i, p := range params {
			a.m[i] = make([]float32, len(p.Data))
			a.v[i] = make([]float32, len(p.Data))
		}
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i].Data
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := float64(g[j])
			m[j] = float32(a.Beta1)*m[j] + float32(1-a.Beta1)*float32(gj)
			v[j] = float32(a.Beta2)*v[j] + float32(1-a.Beta2)*float32(gj*gj)
			mhat := float64(m[j]) / b1c
			vhat := float64(v[j]) / b2c
			p.Data[j] -= float32(a.LR * mhat / (math.Sqrt(vhat) + a.Eps))
		}
	}
}
