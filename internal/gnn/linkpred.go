package gnn

import (
	"math"
	"math/rand"
	"sort"

	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
)

// Link prediction is the actual training objective of the paper's
// motivating application (live-streaming recommendation): learn embeddings
// such that observed user→item edges score higher than random pairs. This
// trainer implements the standard setup — a shared SAGE encoder embeds both
// endpoints from their sampled neighborhoods, scores pairs by dot product,
// and optimizes binomial cross-entropy against uniform negative samples.

// LinkModel is a one-layer GraphSAGE encoder for link prediction: both
// endpoints are embedded with the same parameters.
type LinkModel struct {
	Enc *SAGELayer
	Dim int
	Out int
}

// NewLinkModel builds a Glorot-initialized encoder (inDim features → outDim
// embedding).
func NewLinkModel(inDim, outDim int, rng *rand.Rand) *LinkModel {
	// No output activation: dot-product scoring needs signed embeddings
	// (a ReLU head can only produce non-negative scores and collapses).
	return &LinkModel{Enc: NewSAGELayer(inDim, outDim, false, rng), Dim: inDim, Out: outDim}
}

// LinkTrainer drives link-prediction training over a dynamic topology
// store.
type LinkTrainer struct {
	Model   *LinkModel
	Store   storage.TopologyStore
	Attrs   *kvstore.Store
	Sampler *sampler.Sampler
	Opt     *Adam
	Rel     graph.EdgeType
	Fanout  int
	// NegativePool is the candidate set for negative destinations.
	NegativePool []graph.VertexID
	rng          *rand.Rand
}

// NewLinkTrainer wires a link-prediction trainer. negativePool supplies the
// corruption candidates (typically all items).
func NewLinkTrainer(model *LinkModel, store storage.TopologyStore, attrs *kvstore.Store,
	rel graph.EdgeType, fanout int, lr float64, negativePool []graph.VertexID, seed int64) *LinkTrainer {
	return &LinkTrainer{
		Model:        model,
		Store:        store,
		Attrs:        attrs,
		Sampler:      sampler.New(store, sampler.Options{Parallelism: 2, Seed: seed}),
		Opt:          NewAdam(lr),
		Rel:          rel,
		Fanout:       fanout,
		NegativePool: negativePool,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// embed encodes nodes from their features and 1-hop sampled neighborhoods.
// Forward caches live in the encoder, so callers must embed all nodes of a
// step in ONE call for backprop to see them.
func (t *LinkTrainer) embed(nodes []graph.VertexID) *Matrix {
	x := NewMatrixFrom(len(nodes), t.Model.Dim, t.Attrs.GatherFeatures(nodes, t.Model.Dim))
	nb := t.Sampler.SampleNeighbors(nodes, t.Rel, t.Fanout)
	xn := NewMatrixFrom(len(nb.Neighbors), t.Model.Dim, t.Attrs.GatherFeatures(nb.Neighbors, t.Model.Dim))
	return t.Model.Enc.Forward(x, MeanPool(xn, t.Fanout))
}

// TrainStep trains on a batch of positive edges plus one uniform negative
// per positive, returning the mean logistic loss.
func (t *LinkTrainer) TrainStep(positives []graph.Edge) float64 {
	n := len(positives)
	if n == 0 {
		return 0
	}
	// Layout: rows [0,n) = sources, [n,2n) = positive dsts, [2n,3n) =
	// negative dsts — one encoder pass over the concatenation.
	nodes := make([]graph.VertexID, 0, 3*n)
	for _, e := range positives {
		nodes = append(nodes, e.Src)
	}
	for _, e := range positives {
		nodes = append(nodes, e.Dst)
	}
	for range positives {
		nodes = append(nodes, t.NegativePool[t.rng.Intn(len(t.NegativePool))])
	}
	t.Model.Enc.ZeroGrads()
	h := t.embed(nodes)
	d := t.Model.Out

	// Pair scores s = <h_src, h_dst>; logistic loss with labels 1 (pos)
	// and 0 (neg). dL/dh accumulates into one gradient matrix.
	dh := NewMatrix(h.Rows, d)
	loss := 0.0
	inv := 1 / float64(2*n)
	for i := 0; i < 2*n; i++ {
		srcRow := i % n
		dstRow := n + i // rows n..3n-1
		label := 1.0
		if i >= n {
			label = 0
		}
		hs := h.Row(srcRow)
		hd := h.Row(dstRow)
		var s float64
		for k := 0; k < d; k++ {
			s += float64(hs[k] * hd[k])
		}
		p := 1 / (1 + math.Exp(-s))
		if label == 1 {
			loss += -math.Log(p + 1e-12)
		} else {
			loss += -math.Log(1 - p + 1e-12)
		}
		g := float32((p - label) * inv)
		ds := dh.Row(srcRow)
		dd := dh.Row(dstRow)
		for k := 0; k < d; k++ {
			ds[k] += g * hd[k]
			dd[k] += g * hs[k]
		}
	}
	t.Model.Enc.Backward(dh)
	t.Opt.Step(t.Model.Enc.Params(), t.Model.Enc.Grads())
	return loss * inv // mean over the 2n scored pairs
}

// Score returns the link score (pre-sigmoid) for each (src, dst) pair.
func (t *LinkTrainer) Score(pairs []graph.Edge) []float64 {
	n := len(pairs)
	nodes := make([]graph.VertexID, 0, 2*n)
	for _, e := range pairs {
		nodes = append(nodes, e.Src)
	}
	for _, e := range pairs {
		nodes = append(nodes, e.Dst)
	}
	h := t.embed(nodes)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		hs := h.Row(i)
		hd := h.Row(n + i)
		var s float64
		for k := 0; k < t.Model.Out; k++ {
			s += float64(hs[k] * hd[k])
		}
		out[i] = s
	}
	return out
}

// AUC estimates ranking quality: the probability a positive edge outscores
// a negative one, over all pos×neg pairs.
func (t *LinkTrainer) AUC(positives, negatives []graph.Edge) float64 {
	ps := t.Score(positives)
	ns := t.Score(negatives)
	if len(ps) == 0 || len(ns) == 0 {
		return 0
	}
	var wins float64
	for _, p := range ps {
		for _, q := range ns {
			switch {
			case p > q:
				wins++
			case p == q:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(ps)*len(ns))
}

// Embed returns the current embeddings for nodes (inference; caches are
// overwritten, do not interleave with TrainStep backprop).
func (t *LinkTrainer) Embed(nodes []graph.VertexID) *Matrix {
	return t.embed(nodes).Clone()
}

// Recommendation holds one scored candidate.
type Recommendation struct {
	ID    graph.VertexID
	Score float64
}

// Recommend scores every candidate against the user's current embedding and
// returns the top-k by dot product — the serving-side use of the trained
// encoder. Embeddings reflect the live topology at call time.
func (t *LinkTrainer) Recommend(u graph.VertexID, candidates []graph.VertexID, k int) []Recommendation {
	if len(candidates) == 0 || k <= 0 {
		return nil
	}
	nodes := append([]graph.VertexID{u}, candidates...)
	h := t.embed(nodes)
	hu := h.Row(0)
	recs := make([]Recommendation, len(candidates))
	for i, c := range candidates {
		hc := h.Row(i + 1)
		var s float64
		for d := 0; d < t.Model.Out; d++ {
			s += float64(hu[d] * hc[d])
		}
		recs[i] = Recommendation{ID: c, Score: s}
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].Score != recs[b].Score {
			return recs[a].Score > recs[b].Score
		}
		return recs[a].ID < recs[b].ID
	})
	if k > len(recs) {
		k = len(recs)
	}
	return recs[:k]
}
