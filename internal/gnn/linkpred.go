package gnn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"platod2gl/internal/graph"
	"platod2gl/internal/view"
)

// Link prediction is the actual training objective of the paper's
// motivating application (live-streaming recommendation): learn embeddings
// such that observed user→item edges score higher than random pairs. This
// trainer implements the standard setup — a shared SAGE encoder embeds both
// endpoints from their sampled neighborhoods, scores pairs by dot product,
// and optimizes binomial cross-entropy against uniform negative samples.

// LinkModel is a one-layer GraphSAGE encoder for link prediction: both
// endpoints are embedded with the same parameters.
type LinkModel struct {
	Enc *SAGELayer
	Dim int
	Out int
}

// NewLinkModel builds a Glorot-initialized encoder (inDim features → outDim
// embedding).
func NewLinkModel(inDim, outDim int, rng *rand.Rand) *LinkModel {
	// No output activation: dot-product scoring needs signed embeddings
	// (a ReLU head can only produce non-negative scores and collapses).
	return &LinkModel{Enc: NewSAGELayer(inDim, outDim, false, rng), Dim: inDim, Out: outDim}
}

// LinkTrainer drives link-prediction training against a GraphView.
type LinkTrainer struct {
	Model  *LinkModel
	View   view.GraphView
	Opt    *Adam
	Rel    graph.EdgeType
	Fanout int
	// NegativePool is the candidate set for negative destinations.
	NegativePool []graph.VertexID
	rng          *rand.Rand
}

// NewLinkTrainer wires a link-prediction trainer. negativePool supplies the
// corruption candidates (typically all items); seed drives negative
// sampling.
func NewLinkTrainer(model *LinkModel, v view.GraphView,
	rel graph.EdgeType, fanout int, lr float64, negativePool []graph.VertexID, seed int64) *LinkTrainer {
	return &LinkTrainer{
		Model:        model,
		View:         v,
		Opt:          NewAdam(lr),
		Rel:          rel,
		Fanout:       fanout,
		NegativePool: negativePool,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// embed encodes nodes from their features and 1-hop sampled neighborhoods.
// The self and neighbor feature pulls share one view call, so a remote
// backend pays a single feature fan-out per step. Forward caches live in
// the encoder, so callers must embed all nodes of a step in ONE call for
// backprop to see them.
func (t *LinkTrainer) embed(nodes []graph.VertexID) (*Matrix, error) {
	neigh, err := t.View.SampleNeighbors(nodes, t.Rel, t.Fanout)
	if err != nil {
		return nil, fmt.Errorf("gnn: sample neighbors: %w", err)
	}
	all := make([]graph.VertexID, 0, len(nodes)+len(neigh))
	all = append(all, nodes...)
	all = append(all, neigh...)
	x, err := t.View.Features(all, t.Model.Dim)
	if err != nil {
		return nil, fmt.Errorf("gnn: gather features: %w", err)
	}
	n := len(nodes) * t.Model.Dim
	xSelf := NewMatrixFrom(len(nodes), t.Model.Dim, x[:n])
	xNeigh := NewMatrixFrom(len(neigh), t.Model.Dim, x[n:])
	return t.Model.Enc.Forward(xSelf, MeanPool(xNeigh, t.Fanout)), nil
}

// TrainStep trains on a batch of positive edges plus one uniform negative
// per positive, returning the mean logistic loss.
func (t *LinkTrainer) TrainStep(positives []graph.Edge) (float64, error) {
	n := len(positives)
	if n == 0 {
		return 0, nil
	}
	// Layout: rows [0,n) = sources, [n,2n) = positive dsts, [2n,3n) =
	// negative dsts — one encoder pass over the concatenation.
	nodes := make([]graph.VertexID, 0, 3*n)
	for _, e := range positives {
		nodes = append(nodes, e.Src)
	}
	for _, e := range positives {
		nodes = append(nodes, e.Dst)
	}
	for range positives {
		nodes = append(nodes, t.NegativePool[t.rng.Intn(len(t.NegativePool))])
	}
	t.Model.Enc.ZeroGrads()
	h, err := t.embed(nodes)
	if err != nil {
		return 0, err
	}
	d := t.Model.Out

	// Pair scores s = <h_src, h_dst>; logistic loss with labels 1 (pos)
	// and 0 (neg). dL/dh accumulates into one gradient matrix.
	dh := NewMatrix(h.Rows, d)
	loss := 0.0
	inv := 1 / float64(2*n)
	for i := 0; i < 2*n; i++ {
		srcRow := i % n
		dstRow := n + i // rows n..3n-1
		label := 1.0
		if i >= n {
			label = 0
		}
		hs := h.Row(srcRow)
		hd := h.Row(dstRow)
		var s float64
		for k := 0; k < d; k++ {
			s += float64(hs[k] * hd[k])
		}
		p := 1 / (1 + math.Exp(-s))
		if label == 1 {
			loss += -math.Log(p + 1e-12)
		} else {
			loss += -math.Log(1 - p + 1e-12)
		}
		g := float32((p - label) * inv)
		ds := dh.Row(srcRow)
		dd := dh.Row(dstRow)
		for k := 0; k < d; k++ {
			ds[k] += g * hd[k]
			dd[k] += g * hs[k]
		}
	}
	t.Model.Enc.Backward(dh)
	t.Opt.Step(t.Model.Enc.Params(), t.Model.Enc.Grads())
	return loss * inv, nil // mean over the 2n scored pairs
}

// Score returns the link score (pre-sigmoid) for each (src, dst) pair.
func (t *LinkTrainer) Score(pairs []graph.Edge) ([]float64, error) {
	n := len(pairs)
	nodes := make([]graph.VertexID, 0, 2*n)
	for _, e := range pairs {
		nodes = append(nodes, e.Src)
	}
	for _, e := range pairs {
		nodes = append(nodes, e.Dst)
	}
	h, err := t.embed(nodes)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		hs := h.Row(i)
		hd := h.Row(n + i)
		var s float64
		for k := 0; k < t.Model.Out; k++ {
			s += float64(hs[k] * hd[k])
		}
		out[i] = s
	}
	return out, nil
}

// AUC estimates ranking quality: the probability a positive edge outscores
// a negative one, over all pos×neg pairs.
func (t *LinkTrainer) AUC(positives, negatives []graph.Edge) (float64, error) {
	ps, err := t.Score(positives)
	if err != nil {
		return 0, err
	}
	ns, err := t.Score(negatives)
	if err != nil {
		return 0, err
	}
	if len(ps) == 0 || len(ns) == 0 {
		return 0, nil
	}
	var wins float64
	for _, p := range ps {
		for _, q := range ns {
			switch {
			case p > q:
				wins++
			case p == q:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(ps)*len(ns)), nil
}

// Embed returns the current embeddings for nodes (inference; caches are
// overwritten, do not interleave with TrainStep backprop).
func (t *LinkTrainer) Embed(nodes []graph.VertexID) (*Matrix, error) {
	h, err := t.embed(nodes)
	if err != nil {
		return nil, err
	}
	return h.Clone(), nil
}

// Recommendation holds one scored candidate.
type Recommendation struct {
	ID    graph.VertexID
	Score float64
}

// Recommend scores every candidate against the user's current embedding and
// returns the top-k by dot product — the serving-side use of the trained
// encoder. Embeddings reflect the live topology at call time.
func (t *LinkTrainer) Recommend(u graph.VertexID, candidates []graph.VertexID, k int) ([]Recommendation, error) {
	if len(candidates) == 0 || k <= 0 {
		return nil, nil
	}
	nodes := append([]graph.VertexID{u}, candidates...)
	h, err := t.embed(nodes)
	if err != nil {
		return nil, err
	}
	hu := h.Row(0)
	recs := make([]Recommendation, len(candidates))
	for i, c := range candidates {
		hc := h.Row(i + 1)
		var s float64
		for d := 0; d < t.Model.Out; d++ {
			s += float64(hu[d] * hc[d])
		}
		recs[i] = Recommendation{ID: c, Score: s}
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].Score != recs[b].Score {
			return recs[a].Score > recs[b].Score
		}
		return recs[a].ID < recs[b].ID
	})
	if k > len(recs) {
		k = len(recs)
	}
	return recs[:k], nil
}
