package gnn

import (
	"math/rand"
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/sampler"
	"platod2gl/internal/storage"
	"platod2gl/internal/view"
)

// testView wraps store+attrs as the GraphView trainers consume, with the
// sampler settings the trainers used to hardcode.
func testView(store storage.TopologyStore, attrs *kvstore.Store, parallelism int, seed int64) view.GraphView {
	return view.NewLocal(store, attrs, sampler.Options{Parallelism: parallelism, Seed: seed})
}

// mustBatch samples a batch from a local view, failing the test on error.
func mustBatch(t testing.TB, sample func([]graph.VertexID) (*Batch, error), seeds []graph.VertexID) *Batch {
	t.Helper()
	b, err := sample(seeds)
	if err != nil {
		t.Fatalf("SampleBatch: %v", err)
	}
	return b
}

// mustEpoch runs one epoch, failing the test on error.
func mustEpoch(t testing.TB, f func() (EpochResult, error)) EpochResult {
	t.Helper()
	res, err := f()
	if err != nil {
		t.Fatalf("TrainEpoch: %v", err)
	}
	return res
}

// mustAccuracy evaluates accuracy, failing the test on error.
func mustAccuracy(t testing.TB, f func([]graph.VertexID) (float64, error), seeds []graph.VertexID) float64 {
	t.Helper()
	acc, err := f(seeds)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	return acc
}

// buildClassGraph creates a small homophilous graph: vertices of the same
// class link to each other, so neighbor aggregation is informative.
func buildClassGraph(t testing.TB, n int, classes int) (*storage.DynamicStore, *kvstore.Store, []graph.VertexID) {
	t.Helper()
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 32}})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, uint64(n), 8, classes, 0.3, 1)
	rng := rand.New(rand.NewSource(2))
	// Link each vertex to 6 random same-class vertices.
	byClass := make([][]graph.VertexID, classes)
	ids := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		id := graph.MakeVertexID(0, uint64(i))
		ids[i] = id
		l, _ := attrs.Label(id)
		byClass[l] = append(byClass[l], id)
	}
	for i := 0; i < n; i++ {
		id := ids[i]
		l, _ := attrs.Label(id)
		peers := byClass[l]
		for j := 0; j < 6; j++ {
			store.AddEdge(graph.Edge{Src: id, Dst: peers[rng.Intn(len(peers))], Weight: 1})
		}
	}
	return store, attrs, ids
}

func TestModelForwardShapes(t *testing.T) {
	store, attrs, ids := buildClassGraph(t, 100, 3)
	rng := rand.New(rand.NewSource(3))
	model := NewModel(8, 16, 3, rng)
	tr := NewTrainer(model, testView(store, attrs, 4, 1), 0, 4, 3, 0.01)
	b := mustBatch(t, tr.SampleBatch, ids[:10])
	if len(b.Hop1) != 40 || len(b.Hop2) != 120 {
		t.Fatalf("hop sizes = %d/%d", len(b.Hop1), len(b.Hop2))
	}
	logits := tr.Forward(b)
	if logits.Rows != 10 || logits.Cols != 3 {
		t.Fatalf("logits shape = %dx%d", logits.Rows, logits.Cols)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	store, attrs, ids := buildClassGraph(t, 300, 3)
	rng := rand.New(rand.NewSource(5))
	model := NewModel(8, 16, 3, rng)
	tr := NewTrainer(model, testView(store, attrs, 4, 1), 0, 5, 5, 0.01)

	initial := tr.Loss(mustBatch(t, tr.SampleBatch, ids[:64]))
	var last EpochResult
	for e := 0; e < 5; e++ {
		e := e
		last = mustEpoch(t, func() (EpochResult, error) { return tr.TrainEpoch(e, ids, 32, rng) })
	}
	if last.MeanLoss >= initial*0.7 {
		t.Fatalf("loss did not drop: initial %.4f, final %.4f", initial, last.MeanLoss)
	}
}

func TestTrainingReachesUsefulAccuracy(t *testing.T) {
	store, attrs, ids := buildClassGraph(t, 400, 4)
	rng := rand.New(rand.NewSource(6))
	model := NewModel(8, 24, 4, rng)
	tr := NewTrainer(model, testView(store, attrs, 4, 1), 0, 5, 5, 0.02)
	train, test := ids[:300], ids[300:]
	for e := 0; e < 8; e++ {
		e := e
		mustEpoch(t, func() (EpochResult, error) { return tr.TrainEpoch(e, train, 32, rng) })
	}
	acc := mustAccuracy(t, tr.Accuracy, test)
	if acc < 0.6 { // random = 0.25
		t.Fatalf("test accuracy %.3f, want >= 0.6", acc)
	}
}

func TestDynamicGraphUpdatesReflectInSampling(t *testing.T) {
	// A dynamic trainer must see topology changes immediately: after
	// rewiring a vertex's edges, its sampled neighborhood changes.
	store, attrs, _ := buildClassGraph(t, 50, 2)
	rng := rand.New(rand.NewSource(7))
	model := NewModel(8, 8, 2, rng)
	tr := NewTrainer(model, testView(store, attrs, 4, 1), 0, 8, 2, 0.01)
	seed := graph.MakeVertexID(0, 0)

	before := mustBatch(t, tr.SampleBatch, []graph.VertexID{seed})
	// Rewire: remove all edges of seed, add one to a sentinel vertex.
	ids, _ := store.Neighbors(seed, 0)
	for _, dst := range ids {
		store.DeleteEdge(seed, dst, 0)
	}
	sentinel := graph.MakeVertexID(0, 49)
	store.AddEdge(graph.Edge{Src: seed, Dst: sentinel, Weight: 1})

	after := mustBatch(t, tr.SampleBatch, []graph.VertexID{seed})
	for _, n := range after.Hop1 {
		if n != sentinel {
			t.Fatalf("sampled stale neighbor %v after rewiring", n)
		}
	}
	_ = before
}

func TestEpochResultString(t *testing.T) {
	r := EpochResult{Epoch: 2, MeanLoss: 0.5, Batches: 3}
	if r.String() != "epoch 2: mean loss 0.5000 over 3 batches" {
		t.Fatalf("String = %q", r.String())
	}
}

func BenchmarkGNNTrainStep(b *testing.B) {
	store, attrs, ids := buildClassGraph(b, 1000, 4)
	rng := rand.New(rand.NewSource(8))
	model := NewModel(8, 32, 4, rng)
	tr := NewTrainer(model, testView(store, attrs, 4, 1), 0, 10, 5, 0.01)
	batch := mustBatch(b, tr.SampleBatch, ids[:64])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainStep(batch)
	}
}
