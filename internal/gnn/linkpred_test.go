package gnn

import (
	"math/rand"
	"testing"

	"platod2gl/internal/core"
	"platod2gl/internal/dataset"
	"platod2gl/internal/graph"
	"platod2gl/internal/kvstore"
	"platod2gl/internal/storage"
)

// mustLinkStep trains one link-prediction step, failing the test on error.
func mustLinkStep(t testing.TB, tr *LinkTrainer, batch []graph.Edge) float64 {
	t.Helper()
	loss, err := tr.TrainStep(batch)
	if err != nil {
		t.Fatalf("TrainStep: %v", err)
	}
	return loss
}

// mustAUC evaluates AUC, failing the test on error.
func mustAUC(t testing.TB, tr *LinkTrainer, pos, neg []graph.Edge) float64 {
	t.Helper()
	auc, err := tr.AUC(pos, neg)
	if err != nil {
		t.Fatalf("AUC: %v", err)
	}
	return auc
}

// buildBipartite creates a user-item graph with two taste communities:
// users of community c interact with items of community c.
func buildBipartite(t testing.TB) (*storage.DynamicStore, *kvstore.Store, []graph.Edge, []graph.VertexID, [2][]graph.VertexID) {
	t.Helper()
	const users, items, dim = 200, 100, 8
	store := storage.NewDynamicStore(storage.Options{Tree: core.Options{Capacity: 32}})
	attrs := kvstore.New()
	dataset.AssignFeatures(attrs, 0, users, dim, 2, 0.3, 1) // user features by community
	dataset.AssignFeatures(attrs, 1, items, dim, 2, 0.3, 2) // item features by community
	rng := rand.New(rand.NewSource(3))
	itemsOf := [2][]graph.VertexID{}
	pool := make([]graph.VertexID, 0, items)
	for i := uint64(0); i < items; i++ {
		id := graph.MakeVertexID(1, i)
		l, _ := attrs.Label(id)
		itemsOf[l] = append(itemsOf[l], id)
		pool = append(pool, id)
	}
	var edges []graph.Edge
	for u := uint64(0); u < users; u++ {
		uid := graph.MakeVertexID(0, u)
		l, _ := attrs.Label(uid)
		own := itemsOf[l]
		for j := 0; j < 6; j++ {
			e := graph.Edge{Src: uid, Dst: own[rng.Intn(len(own))], Weight: 1}
			store.AddEdge(e)
			// Reverse edges give items neighborhoods too.
			store.AddEdge(graph.Edge{Src: e.Dst, Dst: uid, Weight: 1})
			edges = append(edges, e)
		}
	}
	return store, attrs, edges, pool, itemsOf
}

func TestLinkPredictionLearns(t *testing.T) {
	store, attrs, edges, pool, itemsOf := buildBipartite(t)
	rng := rand.New(rand.NewSource(4))
	model := NewLinkModel(8, 16, rng)
	tr := NewLinkTrainer(model, testView(store, attrs, 2, 1), 0, 5, 0.05, pool, 7)

	// Held-out positives; negatives corrupt with the *other* community's
	// items, which are guaranteed non-edges.
	testPos := edges[:50]
	var testNeg []graph.Edge
	for _, e := range testPos {
		l, _ := attrs.Label(e.Src)
		other := itemsOf[1-l]
		testNeg = append(testNeg, graph.Edge{Src: e.Src, Dst: other[rng.Intn(len(other))]})
	}
	before := mustAUC(t, tr, testPos, testNeg)
	var lastLoss float64
	for step := 0; step < 60; step++ {
		batch := make([]graph.Edge, 64)
		for i := range batch {
			batch[i] = edges[rng.Intn(len(edges))]
		}
		lastLoss = mustLinkStep(t, tr, batch)
	}
	after := mustAUC(t, tr, testPos, testNeg)
	if after < 0.8 {
		t.Fatalf("AUC after training = %.3f (before %.3f), want >= 0.8", after, before)
	}
	if after <= before {
		t.Fatalf("AUC did not improve: %.3f -> %.3f", before, after)
	}
	if lastLoss <= 0 || lastLoss > 0.7 {
		t.Fatalf("final loss = %.4f, want in (0, 0.7)", lastLoss)
	}
}

func TestLinkTrainerEmptyBatch(t *testing.T) {
	store, attrs, _, pool, _ := buildBipartite(t)
	rng := rand.New(rand.NewSource(5))
	tr := NewLinkTrainer(NewLinkModel(8, 8, rng), testView(store, attrs, 2, 1), 0, 4, 0.01, pool, 9)
	if loss := mustLinkStep(t, tr, nil); loss != 0 {
		t.Fatalf("empty batch loss = %v", loss)
	}
}

func TestLinkScoreShape(t *testing.T) {
	store, attrs, edges, pool, _ := buildBipartite(t)
	rng := rand.New(rand.NewSource(6))
	tr := NewLinkTrainer(NewLinkModel(8, 8, rng), testView(store, attrs, 2, 1), 0, 4, 0.01, pool, 9)
	scores, err := tr.Score(edges[:7])
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if len(scores) != 7 {
		t.Fatalf("Score returned %d values", len(scores))
	}
}

func TestAUCBounds(t *testing.T) {
	store, attrs, edges, pool, _ := buildBipartite(t)
	rng := rand.New(rand.NewSource(8))
	tr := NewLinkTrainer(NewLinkModel(8, 8, rng), testView(store, attrs, 2, 1), 0, 4, 0.01, pool, 9)
	if auc := mustAUC(t, tr, nil, nil); auc != 0 {
		t.Fatalf("empty AUC = %v", auc)
	}
	auc := mustAUC(t, tr, edges[:10], edges[10:20])
	if auc < 0 || auc > 1 {
		t.Fatalf("AUC out of range: %v", auc)
	}
}

func TestRecommendRanksOwnCommunity(t *testing.T) {
	store, attrs, edges, pool, itemsOf := buildBipartite(t)
	rng := rand.New(rand.NewSource(10))
	tr := NewLinkTrainer(NewLinkModel(8, 16, rng), testView(store, attrs, 2, 1), 0, 5, 0.05, pool, 11)
	for step := 0; step < 60; step++ {
		batch := make([]graph.Edge, 64)
		for i := range batch {
			batch[i] = edges[rng.Intn(len(edges))]
		}
		mustLinkStep(t, tr, batch)
	}
	// Top-10 recommendations for a community-0 user should be dominated by
	// community-0 items.
	var u graph.VertexID
	for i := uint64(0); ; i++ {
		u = graph.MakeVertexID(0, i)
		if l, _ := attrs.Label(u); l == 0 {
			break
		}
	}
	recs, err := tr.Recommend(u, pool, 10)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	own := 0
	for _, r := range recs {
		if l, _ := attrs.Label(r.ID); l == 0 {
			own++
		}
	}
	if own < 8 {
		t.Fatalf("only %d/10 recommendations in the user's community", own)
	}
	_ = itemsOf
	// Scores are sorted descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("recommendations not sorted")
		}
	}
	if empty, err := tr.Recommend(u, nil, 5); err != nil || empty != nil {
		t.Fatalf("empty candidates: recs=%v err=%v", empty, err)
	}
}
