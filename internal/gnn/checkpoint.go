package gnn

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpointing: dynamic GNN models retrain continuously (Sec. II-A's
// M^(t)), so serving systems persist and reload parameters between
// sessions. The format is a gob stream of named tensors.
//
// Two format versions exist. v1 (magic "platod2gl-model") is header +
// tensors with no integrity protection. v2 (magic "platod2gl-model/v2")
// appends a footer carrying a CRC32 over the tensor contents, so a torn or
// bit-rotted checkpoint is rejected instead of silently loading garbage.
// SaveParams always writes v2; LoadParams reads both.

type checkpointHeader struct {
	Magic   string
	Tensors int
}

type checkpointTensor struct {
	Rows, Cols int
	Data       []float32
}

// checkpointFooter closes a v2 stream: CRC is crc32.IEEE over every tensor's
// shape and data (see tensorCRC), computed on the logical content rather than
// the encoded bytes so it is independent of gob's framing.
type checkpointFooter struct {
	CRC uint32
}

const (
	checkpointMagic   = "platod2gl-model"    // v1: no footer
	checkpointMagicV2 = "platod2gl-model/v2" // v2: CRC32 content footer
)

// tensorCRC folds one tensor's shape and raw values into the running CRC.
func tensorCRC(crc uint32, t checkpointTensor) uint32 {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(t.Rows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(t.Cols))
	crc = crc32.Update(crc, crc32.IEEETable, hdr[:])
	var buf [4]byte
	for _, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		crc = crc32.Update(crc, crc32.IEEETable, buf[:])
	}
	return crc
}

// SaveParams serializes a parameter set (as returned by Model.Params or
// SAGELayer.Params) in the v2 checksummed format.
func SaveParams(w io.Writer, params []*Matrix) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagicV2, Tensors: len(params)}); err != nil {
		return fmt.Errorf("gnn: encode header: %w", err)
	}
	var crc uint32
	for i, p := range params {
		t := checkpointTensor{Rows: p.Rows, Cols: p.Cols, Data: p.Data}
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("gnn: encode tensor %d: %w", i, err)
		}
		crc = tensorCRC(crc, t)
	}
	if err := enc.Encode(checkpointFooter{CRC: crc}); err != nil {
		return fmt.Errorf("gnn: encode footer: %w", err)
	}
	return nil
}

// LoadParams restores a parameter set in place. Tensor shapes must match the
// receiving model exactly. Both the current checksummed format and legacy
// footer-less v1 checkpoints are accepted; a v2 stream whose content fails
// its CRC is rejected.
func LoadParams(r io.Reader, params []*Matrix) error {
	dec := gob.NewDecoder(r)
	var h checkpointHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("gnn: decode header: %w", err)
	}
	if h.Magic != checkpointMagic && h.Magic != checkpointMagicV2 {
		return fmt.Errorf("gnn: not a model checkpoint (magic %q)", h.Magic)
	}
	if h.Tensors != len(params) {
		return fmt.Errorf("gnn: checkpoint has %d tensors, model expects %d", h.Tensors, len(params))
	}
	var crc uint32
	for i, p := range params {
		var t checkpointTensor
		if err := dec.Decode(&t); err != nil {
			return fmt.Errorf("gnn: decode tensor %d: %w", i, err)
		}
		if t.Rows != p.Rows || t.Cols != p.Cols {
			return fmt.Errorf("gnn: tensor %d: checkpoint shape %dx%d, model expects %dx%d",
				i, t.Rows, t.Cols, p.Rows, p.Cols)
		}
		crc = tensorCRC(crc, t)
		copy(p.Data, t.Data)
	}
	if h.Magic == checkpointMagicV2 {
		var f checkpointFooter
		if err := dec.Decode(&f); err != nil {
			return fmt.Errorf("gnn: decode footer: %w", err)
		}
		if f.CRC != crc {
			return fmt.Errorf("gnn: checkpoint checksum mismatch (stored %08x, computed %08x)", f.CRC, crc)
		}
	}
	return nil
}
