package gnn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpointing: dynamic GNN models retrain continuously (Sec. II-A's
// M^(t)), so serving systems persist and reload parameters between
// sessions. The format is a gob stream of named tensors.

type checkpointHeader struct {
	Magic   string
	Tensors int
}

type checkpointTensor struct {
	Rows, Cols int
	Data       []float32
}

const checkpointMagic = "platod2gl-model"

// SaveParams serializes a parameter set (as returned by Model.Params or
// SAGELayer.Params).
func SaveParams(w io.Writer, params []*Matrix) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(checkpointHeader{Magic: checkpointMagic, Tensors: len(params)}); err != nil {
		return fmt.Errorf("gnn: encode header: %w", err)
	}
	for i, p := range params {
		if err := enc.Encode(checkpointTensor{Rows: p.Rows, Cols: p.Cols, Data: p.Data}); err != nil {
			return fmt.Errorf("gnn: encode tensor %d: %w", i, err)
		}
	}
	return nil
}

// LoadParams restores a parameter set in place. Tensor shapes must match the
// receiving model exactly.
func LoadParams(r io.Reader, params []*Matrix) error {
	dec := gob.NewDecoder(r)
	var h checkpointHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("gnn: decode header: %w", err)
	}
	if h.Magic != checkpointMagic {
		return fmt.Errorf("gnn: not a model checkpoint (magic %q)", h.Magic)
	}
	if h.Tensors != len(params) {
		return fmt.Errorf("gnn: checkpoint has %d tensors, model expects %d", h.Tensors, len(params))
	}
	for i, p := range params {
		var t checkpointTensor
		if err := dec.Decode(&t); err != nil {
			return fmt.Errorf("gnn: decode tensor %d: %w", i, err)
		}
		if t.Rows != p.Rows || t.Cols != p.Cols {
			return fmt.Errorf("gnn: tensor %d shape %dx%d, model expects %dx%d",
				i, t.Rows, t.Cols, p.Rows, p.Cols)
		}
		copy(p.Data, t.Data)
	}
	return nil
}
