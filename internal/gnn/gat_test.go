package gnn

import (
	"math/rand"
	"testing"
)

func TestGATForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewGATLayer(4, 6, true, rng)
	xs := NewMatrix(3, 4).Glorot(rng)
	xn := NewMatrix(9, 4).Glorot(rng)
	out := l.Forward(xs, xn, 3)
	if out.Rows != 3 || out.Cols != 6 {
		t.Fatalf("out shape %dx%d", out.Rows, out.Cols)
	}
	// Attention rows are probability distributions.
	for i := 0; i < 3; i++ {
		var sum float32
		for j := 0; j < 3; j++ {
			a := l.alpha.At(i, j)
			if a < 0 || a > 1 {
				t.Fatalf("alpha[%d,%d] = %v", i, j, a)
			}
			sum += a
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("alpha row %d sums to %v", i, sum)
		}
	}
}

func TestGATShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewGATLayer(4, 6, true, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched neighbor rows")
		}
	}()
	l.Forward(NewMatrix(3, 4), NewMatrix(8, 4), 3)
}

func TestGATGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const (
		n, in, out, f = 3, 4, 3, 2
	)
	l := NewGATLayer(in, out, true, rng)
	xs := NewMatrix(n, in).Glorot(rng)
	xn := NewMatrix(n*f, in).Glorot(rng)
	labels := []int32{0, 1, 2}

	lossOf := func() float64 {
		y := l.Forward(xs, xn, f)
		loss, _ := SoftmaxCrossEntropy(y, labels)
		return loss
	}
	l.ZeroGrads()
	y := l.Forward(xs, xn, f)
	_, dOut := SoftmaxCrossEntropy(y, labels)
	dXs, dXn := l.Backward(dOut)

	const h = 1e-3
	check := func(name string, param, grad *Matrix) {
		t.Helper()
		for i := range param.Data {
			orig := param.Data[i]
			param.Data[i] = orig + h
			lp := lossOf()
			param.Data[i] = orig - h
			lm := lossOf()
			param.Data[i] = orig
			numeric := (lp - lm) / (2 * h)
			if !approx(numeric, float64(grad.Data[i]), 3e-3) {
				t.Fatalf("%s grad[%d]: numeric %v vs analytic %v", name, i, numeric, grad.Data[i])
			}
		}
	}
	check("W", l.W, l.GW)
	check("AS", l.AS, l.GAS)
	check("AN", l.AN, l.GAN)
	check("Bias", l.Bias, l.GBias)
	check("xSelf", xs, dXs)
	check("xNeigh", xn, dXn)
}

func TestGATLearnsToAttend(t *testing.T) {
	// Each group has one informative neighbor (its feature equals the
	// label signal) and noisy neighbors; GAT must learn to attend to it
	// and classify well where a mean aggregator is diluted.
	rng := rand.New(rand.NewSource(11))
	const (
		n, in, classes, f = 64, 8, 2, 4
	)
	mkBatch := func() (*Matrix, *Matrix, []int32) {
		xs := NewMatrix(n, in)
		xn := NewMatrix(n*f, in)
		labels := make([]int32, n)
		for i := 0; i < n; i++ {
			label := int32(rng.Intn(classes))
			labels[i] = label
			informative := rng.Intn(f)
			for j := 0; j < f; j++ {
				row := xn.Row(i*f + j)
				for k := range row {
					row[k] = float32(rng.NormFloat64())
				}
				if j == informative {
					// Strong class signal on feature 0, marker on feature 1.
					row[0] = float32(label)*4 - 2
					row[1] = 5
				}
			}
		}
		return xs, xn, labels
	}
	gat := NewGATLayer(in, classes, false, rng)
	opt := NewAdam(0.02)
	var lastLoss float64
	for step := 0; step < 300; step++ {
		xs, xn, labels := mkBatch()
		gat.ZeroGrads()
		y := gat.Forward(xs, xn, f)
		loss, dOut := SoftmaxCrossEntropy(y, labels)
		gat.Backward(dOut)
		opt.Step(gat.Params(), gat.Grads())
		lastLoss = loss
	}
	if lastLoss > 0.25 {
		t.Fatalf("GAT failed to learn attention: final loss %.4f", lastLoss)
	}
	// The mean aggregator on the same task plateaus higher: the signal is
	// diluted 1/f.
	sage := NewSAGELayer(in, classes, false, rng)
	sopt := NewAdam(0.02)
	var sageLoss float64
	for step := 0; step < 300; step++ {
		xs, xn, labels := mkBatch()
		sage.ZeroGrads()
		y := sage.Forward(xs, MeanPool(xn, f))
		loss, dOut := SoftmaxCrossEntropy(y, labels)
		sage.Backward(dOut)
		sopt.Step(sage.Params(), sage.Grads())
		sageLoss = loss
	}
	if lastLoss >= sageLoss {
		t.Fatalf("GAT (%.4f) should beat mean aggregation (%.4f) on needle-in-group task",
			lastLoss, sageLoss)
	}
}

func TestGATTrainerLearns(t *testing.T) {
	store, attrs, ids := buildClassGraph(t, 300, 3)
	rng := rand.New(rand.NewSource(13))
	model := NewGATModel(8, 16, 3, rng)
	tr := NewGATTrainer(model, testView(store, attrs, 2, 1), 0, 5, 0.01)

	first := mustEpoch(t, func() (EpochResult, error) { return tr.TrainEpoch(0, ids, 32, rng) })
	var last EpochResult
	for e := 1; e < 5; e++ {
		e := e
		last = mustEpoch(t, func() (EpochResult, error) { return tr.TrainEpoch(e, ids, 32, rng) })
	}
	if last.MeanLoss >= first.MeanLoss*0.7 {
		t.Fatalf("GAT loss did not drop: %.4f -> %.4f", first.MeanLoss, last.MeanLoss)
	}
	if acc := mustAccuracy(t, tr.Accuracy, ids[:100]); acc < 0.6 {
		t.Fatalf("GAT accuracy = %.3f", acc)
	}
}

func TestGATTrainerBatchShapes(t *testing.T) {
	store, attrs, ids := buildClassGraph(t, 60, 2)
	rng := rand.New(rand.NewSource(14))
	tr := NewGATTrainer(NewGATModel(8, 8, 2, rng), testView(store, attrs, 2, 1), 0, 3, 0.01)
	b := mustBatch(t, tr.SampleBatch, ids[:10])
	if len(b.Hop1) != 30 || len(b.Hop2) != 90 {
		t.Fatalf("hops: %d/%d", len(b.Hop1), len(b.Hop2))
	}
	logits := tr.Forward(b)
	if logits.Rows != 10 || logits.Cols != 2 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
}

func TestMultiHeadGATShapesAndGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, in, per, heads, f = 3, 4, 2, 3, 2
	m := NewMultiHeadGAT(heads, in, per, true, rng)
	if m.OutDim() != heads*per {
		t.Fatalf("OutDim = %d", m.OutDim())
	}
	xs := NewMatrix(n, in).Glorot(rng)
	xn := NewMatrix(n*f, in).Glorot(rng)
	labels := []int32{0, 1, 2}

	lossOf := func() float64 {
		y := m.Forward(xs, xn, f)
		loss, _ := SoftmaxCrossEntropy(y, labels)
		return loss
	}
	m.ZeroGrads()
	y := m.Forward(xs, xn, f)
	if y.Rows != n || y.Cols != heads*per {
		t.Fatalf("forward shape %dx%d", y.Rows, y.Cols)
	}
	_, dOut := SoftmaxCrossEntropy(y, labels)
	dXs, dXn := m.Backward(dOut)

	const h = 1e-3
	params, grads := m.Params(), m.Grads()
	if len(params) != heads*4 {
		t.Fatalf("params = %d", len(params))
	}
	for pi, p := range params {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + h
			lp := lossOf()
			p.Data[i] = orig - h
			lm := lossOf()
			p.Data[i] = orig
			numeric := (lp - lm) / (2 * h)
			if !approx(numeric, float64(grads[pi].Data[i]), 3e-3) {
				t.Fatalf("param %d grad[%d]: numeric %v vs analytic %v",
					pi, i, numeric, grads[pi].Data[i])
			}
		}
	}
	// Input gradients too.
	for i := range xs.Data {
		orig := xs.Data[i]
		xs.Data[i] = orig + h
		lp := lossOf()
		xs.Data[i] = orig - h
		lm := lossOf()
		xs.Data[i] = orig
		if numeric := (lp - lm) / (2 * h); !approx(numeric, float64(dXs.Data[i]), 3e-3) {
			t.Fatalf("dXs[%d]: %v vs %v", i, numeric, dXs.Data[i])
		}
	}
	_ = dXn
}

func TestMultiHeadGATPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero heads")
		}
	}()
	NewMultiHeadGAT(0, 4, 2, true, rand.New(rand.NewSource(1)))
}
