package gnn

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMul(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 3).Glorot(rng)
	b := NewMatrix(4, 5).Glorot(rng)
	// aᵀ·b via explicit transpose.
	at := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulAT(a, b)
	for i := range want.Data {
		if !approx(float64(got.Data[i]), float64(want.Data[i]), 1e-5) {
			t.Fatalf("MatMulAT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	// a·bᵀ with b' (5×3).
	b2 := NewMatrix(5, 3).Glorot(rng)
	b2t := NewMatrix(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			b2t.Set(j, i, b2.At(i, j))
		}
	}
	want2 := MatMul(a, b2t)
	got2 := MatMulBT(a, b2)
	for i := range want2.Data {
		if !approx(float64(got2.Data[i]), float64(want2.Data[i]), 1e-5) {
			t.Fatalf("MatMulBT[%d] = %v, want %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func TestShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	for name, fn := range map[string]func(){
		"MatMul":   func() { MatMul(a, b) },
		"Bias":     func() { AddBiasRow(a, NewMatrix(1, 5)) },
		"MeanPool": func() { MeanPool(NewMatrix(5, 2), 2) },
		"VStack":   func() { VStack(a, NewMatrix(2, 4)) },
		"From":     func() { NewMatrixFrom(2, 2, []float32{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReluAndMask(t *testing.T) {
	m := NewMatrixFrom(1, 4, []float32{-1, 2, -3, 4})
	mask := ReluInPlace(m)
	if m.Data[0] != 0 || m.Data[1] != 2 || m.Data[2] != 0 || m.Data[3] != 4 {
		t.Fatalf("relu = %v", m.Data)
	}
	g := NewMatrixFrom(1, 4, []float32{10, 10, 10, 10})
	MulMaskInPlace(g, mask)
	if g.Data[0] != 0 || g.Data[1] != 10 || g.Data[2] != 0 || g.Data[3] != 10 {
		t.Fatalf("masked grad = %v", g.Data)
	}
}

func TestMeanPoolRoundTrip(t *testing.T) {
	child := NewMatrixFrom(4, 2, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	pooled := MeanPool(child, 2)
	if pooled.Rows != 2 || pooled.At(0, 0) != 2 || pooled.At(0, 1) != 3 ||
		pooled.At(1, 0) != 6 || pooled.At(1, 1) != 7 {
		t.Fatalf("MeanPool = %v", pooled.Data)
	}
	back := MeanPoolBackward(pooled, 2)
	if back.Rows != 4 || back.At(0, 0) != 1 || back.At(3, 1) != 3.5 {
		t.Fatalf("MeanPoolBackward = %v", back.Data)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	// Perfectly confident correct logits: loss near zero.
	logits := NewMatrixFrom(2, 3, []float32{100, 0, 0, 0, 100, 0})
	loss, grad := SoftmaxCrossEntropy(logits, []int32{0, 1})
	if loss > 1e-6 {
		t.Fatalf("confident loss = %v", loss)
	}
	if !approx(float64(grad.At(0, 0)), 0, 1e-6) {
		t.Fatalf("grad = %v", grad.Data)
	}
	// Uniform logits: loss = ln(3).
	logits = NewMatrix(1, 3)
	loss, _ = SoftmaxCrossEntropy(logits, []int32{2})
	if !approx(loss, math.Log(3), 1e-6) {
		t.Fatalf("uniform loss = %v, want ln3", loss)
	}
}

func TestSoftmaxGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := NewMatrix(3, 4).Glorot(rng)
	labels := []int32{1, 3, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const h = 1e-3
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - h
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		if !approx(numeric, float64(grad.Data[i]), 1e-3) {
			t.Fatalf("grad[%d]: numeric %v vs analytic %v", i, numeric, grad.Data[i])
		}
	}
}

func TestArgmax(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float32{1, 5, 2, 9, 0, 3})
	got := Argmax(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v", got)
	}
}

func TestVStackSliceRows(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float32{1, 2})
	b := NewMatrixFrom(2, 2, []float32{3, 4, 5, 6})
	s := VStack(a, b)
	if s.Rows != 3 || s.At(2, 1) != 6 {
		t.Fatalf("VStack = %v", s.Data)
	}
	part := SliceRows(s, 1, 3)
	if part.Rows != 2 || part.At(0, 0) != 3 || part.At(1, 1) != 6 {
		t.Fatalf("SliceRows = %v", part.Data)
	}
}

func TestSAGELayerGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewSAGELayer(3, 2, true, rng)
	xs := NewMatrix(4, 3).Glorot(rng)
	xn := NewMatrix(4, 3).Glorot(rng)
	labels := []int32{0, 1, 0, 1}

	lossOf := func() float64 {
		out := l.Forward(xs, xn)
		loss, _ := SoftmaxCrossEntropy(out, labels)
		return loss
	}
	l.ZeroGrads()
	out := l.Forward(xs, xn)
	_, dOut := SoftmaxCrossEntropy(out, labels)
	dXs, dXn := l.Backward(dOut)

	const h = 1e-3
	check := func(name string, param *Matrix, grad *Matrix) {
		for i := range param.Data {
			orig := param.Data[i]
			param.Data[i] = orig + h
			lp := lossOf()
			param.Data[i] = orig - h
			lm := lossOf()
			param.Data[i] = orig
			numeric := (lp - lm) / (2 * h)
			if !approx(numeric, float64(grad.Data[i]), 2e-3) {
				t.Fatalf("%s grad[%d]: numeric %v vs analytic %v", name, i, numeric, grad.Data[i])
			}
		}
	}
	check("Wself", l.Wself, l.GWself)
	check("Wneigh", l.Wneigh, l.GWneigh)
	check("Bias", l.Bias, l.GBias)
	check("xSelf", xs, dXs)
	check("xNeigh", xn, dXn)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||p - target||^2 via Adam using analytic gradient 2(p-t).
	p := NewMatrixFrom(1, 3, []float32{5, -4, 2})
	target := []float32{1, 1, 1}
	g := NewMatrix(1, 3)
	opt := NewAdam(0.1)
	for step := 0; step < 2000; step++ {
		for i := range p.Data {
			g.Data[i] = 2 * (p.Data[i] - target[i])
		}
		opt.Step([]*Matrix{p}, []*Matrix{g})
	}
	for i := range p.Data {
		if !approx(float64(p.Data[i]), float64(target[i]), 1e-2) {
			t.Fatalf("Adam did not converge: %v", p.Data)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	child := NewMatrixFrom(4, 2, []float32{
		1, 9,
		5, 2,
		0, 0,
		3, 7,
	})
	pooled, arg := MaxPool(child, 2)
	if pooled.Rows != 2 || pooled.At(0, 0) != 5 || pooled.At(0, 1) != 9 ||
		pooled.At(1, 0) != 3 || pooled.At(1, 1) != 7 {
		t.Fatalf("MaxPool = %v", pooled.Data)
	}
	dPooled := NewMatrixFrom(2, 2, []float32{10, 20, 30, 40})
	back := MaxPoolBackward(dPooled, arg, 2)
	want := []float32{
		0, 20, // row 0: col 1 max
		10, 0, // row 1: col 0 max
		0, 0,
		30, 40, // row 3: both maxes
	}
	for i := range want {
		if back.Data[i] != want[i] {
			t.Fatalf("MaxPoolBackward = %v, want %v", back.Data, want)
		}
	}
}

func TestMaxPoolGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	child := NewMatrix(6, 3).Glorot(rng)
	labels := []int32{1, 0}
	lossOf := func() float64 {
		pooled, _ := MaxPool(child, 3)
		loss, _ := SoftmaxCrossEntropy(pooled, labels)
		return loss
	}
	pooled, arg := MaxPool(child, 3)
	_, dPooled := SoftmaxCrossEntropy(pooled, labels)
	dChild := MaxPoolBackward(dPooled, arg, 3)
	const h = 1e-3
	for i := range child.Data {
		orig := child.Data[i]
		child.Data[i] = orig + h
		lp := lossOf()
		child.Data[i] = orig - h
		lm := lossOf()
		child.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		if !approx(numeric, float64(dChild.Data[i]), 2e-3) {
			t.Fatalf("dChild[%d]: numeric %v vs analytic %v", i, numeric, dChild.Data[i])
		}
	}
}

func TestMaxPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxPool(NewMatrix(5, 2), 2)
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(100, 100)
	for i := range m.Data {
		m.Data[i] = 1
	}
	mask := Dropout(m, 0.3, rng)
	zeros, kept := 0, 0
	var sum float64
	for i, v := range m.Data {
		if v == 0 {
			zeros++
			if mask.Data[i] != 0 {
				t.Fatal("mask nonzero where output zero")
			}
		} else {
			kept++
			if !approx(float64(v), 1/0.7, 1e-5) {
				t.Fatalf("survivor not scaled: %v", v)
			}
		}
		sum += float64(v)
	}
	frac := float64(zeros) / float64(len(m.Data))
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("dropout rate %.3f, want ~0.30", frac)
	}
	// Expectation preserved: mean stays ~1.
	if mean := sum / float64(len(m.Data)); mean < 0.95 || mean > 1.05 {
		t.Fatalf("mean after dropout = %v", mean)
	}
	// Gradient masking matches forward masking.
	g := NewMatrix(100, 100)
	for i := range g.Data {
		g.Data[i] = 1
	}
	MulMaskInPlace(g, mask)
	for i := range g.Data {
		if (g.Data[i] == 0) != (m.Data[i] == 0) {
			t.Fatal("gradient mask diverges from forward mask")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=1")
		}
	}()
	Dropout(m, 1, rng)
}
