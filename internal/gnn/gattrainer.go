package gnn

import (
	"fmt"
	"math/rand"

	"platod2gl/internal/graph"
	"platod2gl/internal/view"
)

// GATModel is a two-layer graph-attention node classifier: the same
// sample-gather-aggregate pipeline as Model, with learned attention over
// each neighborhood instead of mean pooling. Both hops share one fanout F
// so each layer runs as a single joint forward over [seeds; hop1].
type GATModel struct {
	L1, L2 *GATLayer
	InDim  int
	Hidden int
	Out    int
}

// NewGATModel builds a Glorot-initialized 2-layer attention model.
func NewGATModel(inDim, hidden, classes int, rng *rand.Rand) *GATModel {
	return &GATModel{
		L1:     NewGATLayer(inDim, hidden, true, rng),
		L2:     NewGATLayer(hidden, classes, false, rng),
		InDim:  inDim,
		Hidden: hidden,
		Out:    classes,
	}
}

// Params returns all trainable tensors.
func (m *GATModel) Params() []*Matrix { return append(m.L1.Params(), m.L2.Params()...) }

// Grads returns all gradient tensors.
func (m *GATModel) Grads() []*Matrix { return append(m.L1.Grads(), m.L2.Grads()...) }

// ZeroGrads clears gradients.
func (m *GATModel) ZeroGrads() {
	m.L1.ZeroGrads()
	m.L2.ZeroGrads()
}

// GATTrainer drives mini-batch attention-GNN training against a GraphView.
type GATTrainer struct {
	Model *GATModel
	View  view.GraphView
	Opt   *Adam
	Rel   graph.EdgeType
	// Fanout applies to both hops.
	Fanout int
}

// NewGATTrainer wires an attention trainer to a graph view.
func NewGATTrainer(model *GATModel, v view.GraphView, rel graph.EdgeType, fanout int, lr float64) *GATTrainer {
	return &GATTrainer{
		Model:  model,
		View:   v,
		Opt:    NewAdam(lr),
		Rel:    rel,
		Fanout: fanout,
	}
}

// SampleBatch expands seeds two hops (both at Fanout) and gathers features
// for all three node sets in one view call, plus the seeds' labels.
func (t *GATTrainer) SampleBatch(seeds []graph.VertexID) (*Batch, error) {
	layers, err := t.View.SampleSubgraph(seeds, graph.MetaPath{t.Rel, t.Rel}, []int{t.Fanout, t.Fanout})
	if err != nil {
		return nil, fmt.Errorf("gnn: sample subgraph: %w", err)
	}
	hop1, hop2 := layers[0], layers[1]
	dim := t.Model.InDim
	nodes := make([]graph.VertexID, 0, len(seeds)+len(hop1)+len(hop2))
	nodes = append(nodes, seeds...)
	nodes = append(nodes, hop1...)
	nodes = append(nodes, hop2...)
	x, err := t.View.Features(nodes, dim)
	if err != nil {
		return nil, fmt.Errorf("gnn: gather features: %w", err)
	}
	labels, err := t.View.Labels(seeds)
	if err != nil {
		return nil, fmt.Errorf("gnn: gather labels: %w", err)
	}
	nS, n1 := len(seeds)*dim, len(hop1)*dim
	return &Batch{
		Seeds: seeds, Hop1: hop1, Hop2: hop2, F1: t.Fanout, F2: t.Fanout,
		XSeeds: NewMatrixFrom(len(seeds), dim, x[:nS]),
		XHop1:  NewMatrixFrom(len(hop1), dim, x[nS:nS+n1]),
		XHop2:  NewMatrixFrom(len(hop2), dim, x[nS+n1:]),
		Labels: labels,
	}, nil
}

// Forward runs the 2-layer attention model, returning seed logits. Layer 1
// attends jointly for [seeds; hop1] over their raw neighbor rows
// [hop1; hop2]; layer 2 attends for the seeds over the hop-1 hidden states.
func (t *GATTrainer) Forward(b *Batch) *Matrix {
	nSeeds := len(b.Seeds)
	selfX := VStack(b.XSeeds, b.XHop1)
	neighX := VStack(b.XHop1, b.XHop2)
	h1 := t.Model.L1.Forward(selfX, neighX, t.Fanout)
	h1Seeds := SliceRows(h1, 0, nSeeds)
	h1Hop1 := SliceRows(h1, nSeeds, h1.Rows)
	return t.Model.L2.Forward(h1Seeds, h1Hop1, t.Fanout)
}

// TrainStep runs one forward/backward/update pass, returning the loss.
func (t *GATTrainer) TrainStep(b *Batch) float64 {
	t.Model.ZeroGrads()
	logits := t.Forward(b)
	loss, dLogits := SoftmaxCrossEntropy(logits, b.Labels)
	dH1Seeds, dH1Hop1 := t.Model.L2.Backward(dLogits)
	dH1 := VStack(dH1Seeds, dH1Hop1)
	t.Model.L1.Backward(dH1)
	t.Opt.Step(t.Model.Params(), t.Model.Grads())
	return loss
}

// Accuracy evaluates classification accuracy on the given seeds.
func (t *GATTrainer) Accuracy(seeds []graph.VertexID) (float64, error) {
	if len(seeds) == 0 {
		return 0, nil
	}
	b, err := t.SampleBatch(seeds)
	if err != nil {
		return 0, err
	}
	pred := Argmax(t.Forward(b))
	correct := 0
	for i, p := range pred {
		if p == b.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(seeds)), nil
}

// TrainEpoch shuffles seeds and trains mini-batches, returning mean loss.
func (t *GATTrainer) TrainEpoch(epoch int, seeds []graph.VertexID, batchSize int, rng *rand.Rand) (EpochResult, error) {
	perm := rng.Perm(len(seeds))
	totalLoss := 0.0
	batches := 0
	for lo := 0; lo+batchSize <= len(perm); lo += batchSize {
		batch := make([]graph.VertexID, batchSize)
		for i := 0; i < batchSize; i++ {
			batch[i] = seeds[perm[lo+i]]
		}
		b, err := t.SampleBatch(batch)
		if err != nil {
			return EpochResult{Epoch: epoch}, err
		}
		totalLoss += t.TrainStep(b)
		batches++
	}
	if batches == 0 {
		return EpochResult{Epoch: epoch}, nil
	}
	return EpochResult{Epoch: epoch, MeanLoss: totalLoss / float64(batches), Batches: batches}, nil
}
