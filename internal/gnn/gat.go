package gnn

import (
	"math"
	"math/rand"
)

// GATLayer is a single-head graph attention layer (Veličković et al., the
// paper's ref. [30]) over fixed-fanout sampled neighborhoods: instead of the
// mean aggregator's uniform ⊕, each neighbor's message is weighted by a
// learned attention coefficient
//
//	e_ij   = LeakyReLU(aSᵀ·W·h_i + aNᵀ·W·h_j)
//	α_ij   = softmax_j(e_ij)
//	out_i  = act( W·h_i + Σ_j α_ij · W·h_j + b )
//
// The self term plays the role of GAT's self-loop attention.
type GATLayer struct {
	W    *Matrix // in×out shared projection
	AS   *Matrix // 1×out self attention vector
	AN   *Matrix // 1×out neighbor attention vector
	Bias *Matrix // 1×out
	Act  bool

	GW, GAS, GAN, GBias *Matrix

	// Forward cache.
	xSelf, xNeigh *Matrix
	hs, hn        *Matrix
	alpha         *Matrix // n×fanout
	preMask       *Matrix // LeakyReLU gradient factors, n×fanout
	outMask       *Matrix
	fanout        int
}

// LeakyReLU negative slope.
const gatSlope = 0.2

// NewGATLayer returns a Glorot-initialized attention layer.
func NewGATLayer(in, out int, act bool, rng *rand.Rand) *GATLayer {
	return &GATLayer{
		W:     NewMatrix(in, out).Glorot(rng),
		AS:    NewMatrix(1, out).Glorot(rng),
		AN:    NewMatrix(1, out).Glorot(rng),
		Bias:  NewMatrix(1, out),
		Act:   act,
		GW:    NewMatrix(in, out),
		GAS:   NewMatrix(1, out),
		GAN:   NewMatrix(1, out),
		GBias: NewMatrix(1, out),
	}
}

// Forward combines self embeddings (n×in) with their fanout neighbors
// ((n*fanout)×in) into attention-weighted representations (n×out).
func (l *GATLayer) Forward(xSelf, xNeigh *Matrix, fanout int) *Matrix {
	if xNeigh.Rows != xSelf.Rows*fanout {
		panic("gnn: GAT neighbor rows != n*fanout")
	}
	n := xSelf.Rows
	o := l.W.Cols
	l.xSelf, l.xNeigh, l.fanout = xSelf, xNeigh, fanout
	l.hs = MatMul(xSelf, l.W)
	l.hn = MatMul(xNeigh, l.W)
	l.alpha = NewMatrix(n, fanout)
	l.preMask = NewMatrix(n, fanout)
	out := NewMatrix(n, o)
	for i := 0; i < n; i++ {
		hsRow := l.hs.Row(i)
		var sSelf float32
		for k := 0; k < o; k++ {
			sSelf += l.AS.Data[k] * hsRow[k]
		}
		// Attention logits with LeakyReLU.
		logits := make([]float64, fanout)
		maxv := math.Inf(-1)
		for j := 0; j < fanout; j++ {
			hnRow := l.hn.Row(i*fanout + j)
			var sN float32
			for k := 0; k < o; k++ {
				sN += l.AN.Data[k] * hnRow[k]
			}
			e := float64(sSelf + sN)
			if e >= 0 {
				l.preMask.Set(i, j, 1)
			} else {
				e *= gatSlope
				l.preMask.Set(i, j, gatSlope)
			}
			logits[j] = e
			if e > maxv {
				maxv = e
			}
		}
		// Softmax over the group.
		var sum float64
		for j := 0; j < fanout; j++ {
			logits[j] = math.Exp(logits[j] - maxv)
			sum += logits[j]
		}
		orow := out.Row(i)
		copy(orow, hsRow)
		for j := 0; j < fanout; j++ {
			a := float32(logits[j] / sum)
			l.alpha.Set(i, j, a)
			hnRow := l.hn.Row(i*fanout + j)
			for k := 0; k < o; k++ {
				orow[k] += a * hnRow[k]
			}
		}
		for k := 0; k < o; k++ {
			orow[k] += l.Bias.Data[k]
		}
	}
	if l.Act {
		l.outMask = ReluInPlace(out)
	} else {
		l.outMask = nil
	}
	return out
}

// Backward consumes dL/doutput, accumulates parameter gradients, and
// returns (dL/dxSelf, dL/dxNeigh).
func (l *GATLayer) Backward(dOut *Matrix) (dSelf, dNeigh *Matrix) {
	n := l.xSelf.Rows
	o := l.W.Cols
	f := l.fanout
	dz := dOut
	if l.outMask != nil {
		dz = dOut.Clone()
		MulMaskInPlace(dz, l.outMask)
	}
	dHs := NewMatrix(n, o)
	dHn := NewMatrix(n*f, o)
	for i := 0; i < n; i++ {
		dzRow := dz.Row(i)
		// Bias and self projection.
		for k := 0; k < o; k++ {
			l.GBias.Data[k] += dzRow[k]
			dHs.Row(i)[k] += dzRow[k]
		}
		// dα_ij = <dz_i, hn_ij>; dHn via the attention weights.
		dAlpha := make([]float64, f)
		for j := 0; j < f; j++ {
			hnRow := l.hn.Row(i*f + j)
			a := l.alpha.At(i, j)
			var dot float64
			dhnRow := dHn.Row(i*f + j)
			for k := 0; k < o; k++ {
				dot += float64(dzRow[k] * hnRow[k])
				dhnRow[k] += a * dzRow[k]
			}
			dAlpha[j] = dot
		}
		// Softmax backward: de_j = α_j (dα_j - Σ_k α_k dα_k).
		var mix float64
		for j := 0; j < f; j++ {
			mix += float64(l.alpha.At(i, j)) * dAlpha[j]
		}
		hsRow := l.hs.Row(i)
		dhsRow := dHs.Row(i)
		for j := 0; j < f; j++ {
			de := float64(l.alpha.At(i, j)) * (dAlpha[j] - mix)
			dpre := float32(de) * l.preMask.At(i, j)
			// pre = aSᵀhs_i + aNᵀhn_ij.
			hnRow := l.hn.Row(i*f + j)
			dhnRow := dHn.Row(i*f + j)
			for k := 0; k < o; k++ {
				l.GAS.Data[k] += dpre * hsRow[k]
				l.GAN.Data[k] += dpre * hnRow[k]
				dhsRow[k] += dpre * l.AS.Data[k]
				dhnRow[k] += dpre * l.AN.Data[k]
			}
		}
	}
	// Through the shared projection W.
	AddInPlace(l.GW, MatMulAT(l.xSelf, dHs))
	AddInPlace(l.GW, MatMulAT(l.xNeigh, dHn))
	return MatMulBT(dHs, l.W), MatMulBT(dHn, l.W)
}

// Params returns the trainable tensors.
func (l *GATLayer) Params() []*Matrix { return []*Matrix{l.W, l.AS, l.AN, l.Bias} }

// Grads returns the gradient tensors, aligned with Params.
func (l *GATLayer) Grads() []*Matrix { return []*Matrix{l.GW, l.GAS, l.GAN, l.GBias} }

// ZeroGrads clears accumulated gradients.
func (l *GATLayer) ZeroGrads() {
	l.GW.Zero()
	l.GAS.Zero()
	l.GAN.Zero()
	l.GBias.Zero()
}

// MultiHeadGAT runs H independent attention heads and concatenates their
// outputs (the standard multi-head formulation; output width = heads × out).
type MultiHeadGAT struct {
	Heads []*GATLayer
}

// NewMultiHeadGAT builds heads independent attention heads of width out
// each.
func NewMultiHeadGAT(heads, in, out int, act bool, rng *rand.Rand) *MultiHeadGAT {
	if heads < 1 {
		panic("gnn: need at least one attention head")
	}
	m := &MultiHeadGAT{Heads: make([]*GATLayer, heads)}
	for h := range m.Heads {
		m.Heads[h] = NewGATLayer(in, out, act, rng)
	}
	return m
}

// OutDim returns the concatenated output width.
func (m *MultiHeadGAT) OutDim() int { return len(m.Heads) * m.Heads[0].W.Cols }

// Forward concatenates every head's output column-wise.
func (m *MultiHeadGAT) Forward(xSelf, xNeigh *Matrix, fanout int) *Matrix {
	per := m.Heads[0].W.Cols
	out := NewMatrix(xSelf.Rows, m.OutDim())
	for h, head := range m.Heads {
		y := head.Forward(xSelf, xNeigh, fanout)
		for i := 0; i < y.Rows; i++ {
			copy(out.Row(i)[h*per:(h+1)*per], y.Row(i))
		}
	}
	return out
}

// Backward splits the concatenated gradient per head and sums the input
// gradients.
func (m *MultiHeadGAT) Backward(dOut *Matrix) (dSelf, dNeigh *Matrix) {
	per := m.Heads[0].W.Cols
	for h, head := range m.Heads {
		dHead := NewMatrix(dOut.Rows, per)
		for i := 0; i < dOut.Rows; i++ {
			copy(dHead.Row(i), dOut.Row(i)[h*per:(h+1)*per])
		}
		ds, dn := head.Backward(dHead)
		if dSelf == nil {
			dSelf, dNeigh = ds, dn
		} else {
			AddInPlace(dSelf, ds)
			AddInPlace(dNeigh, dn)
		}
	}
	return dSelf, dNeigh
}

// Params returns every head's trainable tensors.
func (m *MultiHeadGAT) Params() []*Matrix {
	var out []*Matrix
	for _, h := range m.Heads {
		out = append(out, h.Params()...)
	}
	return out
}

// Grads returns every head's gradient tensors, aligned with Params.
func (m *MultiHeadGAT) Grads() []*Matrix {
	var out []*Matrix
	for _, h := range m.Heads {
		out = append(out, h.Grads()...)
	}
	return out
}

// ZeroGrads clears all heads' gradients.
func (m *MultiHeadGAT) ZeroGrads() {
	for _, h := range m.Heads {
		h.ZeroGrads()
	}
}
