package core

import (
	"platod2gl/internal/cstable"
	"platod2gl/internal/fenwick"
)

// WeightTable abstracts the per-leaf weight structure so the FSTable can be
// ablated against a CSTable-in-the-leaf configuration — the head-to-head of
// Table II inside a full samtree. Semantics follow the FSTable: Delete is a
// swap-delete (position i takes the last element's weight), matching the
// unordered leaf ID list.
type WeightTable interface {
	// Len returns the number of weights.
	Len() int
	// Total returns the sum of all weights.
	Total() float64
	// Weight returns the raw weight at index i.
	Weight(i int) float64
	// Update sets the weight at index i.
	Update(i int, w float64)
	// Append adds a weight at the end.
	Append(w float64)
	// Delete removes index i with swap-delete semantics.
	Delete(i int)
	// Sample returns the smallest index whose strict prefix sum exceeds r.
	Sample(r float64) int
	// Weights reconstructs the raw weight array.
	Weights() []float64
	// MemoryBytes returns the structural footprint.
	MemoryBytes() int64
}

// Interface checks.
var (
	_ WeightTable = (*fenwick.FSTable)(nil)
	_ WeightTable = (*itsTable)(nil)
)

// LeafTableKind selects the leaf weight structure.
type LeafTableKind uint8

const (
	// LeafFTS uses the FSTable with Fenwick-tree sampling — the paper's
	// contribution; O(log n) update / delete / sample.
	LeafFTS LeafTableKind = iota
	// LeafITS uses a CSTable with Inverse Transform Sampling — the
	// PlatoGL-style structure; O(n) update / delete, O(log n) sample.
	// Exists for the ablation benchmarks.
	LeafITS
)

func (k LeafTableKind) String() string {
	if k == LeafITS {
		return "ITS"
	}
	return "FTS"
}

// itsTable adapts the CSTable to the WeightTable contract by giving Delete
// the same swap semantics the unordered leaf requires.
type itsTable struct {
	cstable.CSTable
}

// Delete implements swap-delete on the strict prefix-sum table: O(n).
func (t *itsTable) Delete(i int) {
	n := t.Len()
	if i != n-1 {
		t.Update(i, t.Weight(n-1))
	}
	t.Truncate(n - 1)
}

// newLeafTable builds the configured leaf table from raw weights.
func newLeafTable(kind LeafTableKind, weights []float64) WeightTable {
	if kind == LeafITS {
		t := &itsTable{}
		for _, w := range weights {
			t.Append(w)
		}
		return t
	}
	return fenwick.New(weights)
}
