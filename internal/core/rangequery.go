package core

// Range queries: the samtree's ordered internal routing keys make ID-range
// scans efficient even though leaf contents are unordered — only leaves
// whose key range intersects [lo, hi] are visited, and each visited leaf is
// filtered in O(n_L). Used for analytics over packed heterogeneous IDs
// (e.g. "all neighbors of user u that are Live vertices" is a range scan
// over one type's 2^56-wide ID band).

// RangeCount returns the number of neighbors with lo <= id <= hi.
func (t *Tree) RangeCount(lo, hi uint64) int {
	if lo > hi {
		return 0
	}
	count := 0
	t.rangeWalk(t.root, lo, hi, func(id uint64, _ float64) bool {
		count++
		return true
	})
	return count
}

// ForEachRange visits every (neighbor, weight) with lo <= id <= hi until fn
// returns false. Visit order within a leaf is physical (unordered).
func (t *Tree) ForEachRange(lo, hi uint64, fn func(id uint64, w float64) bool) {
	if lo > hi {
		return
	}
	t.rangeWalk(t.root, lo, hi, fn)
}

// RangeNeighbors collects the neighbors and weights with lo <= id <= hi.
func (t *Tree) RangeNeighbors(lo, hi uint64) ([]uint64, []float64) {
	var ids []uint64
	var weights []float64
	t.ForEachRange(lo, hi, func(id uint64, w float64) bool {
		ids = append(ids, id)
		weights = append(weights, w)
		return true
	})
	return ids, weights
}

// rangeWalk visits nodes intersecting [lo, hi]; returns false when fn
// terminated the walk.
func (t *Tree) rangeWalk(n *node, lo, hi uint64, fn func(id uint64, w float64) bool) bool {
	if n.isLeaf() {
		for i := 0; i < n.ids.Len(); i++ {
			id := n.ids.Get(i)
			if id < lo || id > hi {
				continue
			}
			if !fn(id, n.fs.Weight(i)) {
				return false
			}
		}
		return true
	}
	// Child i covers [keys[i], keys[i+1]) — skip children entirely outside
	// [lo, hi]. keys[i] may lag low after deletions (never high), so the
	// lower-bound side over-approximates safely.
	nc := len(n.children)
	for i := 0; i < nc; i++ {
		if n.keys.Get(i) > hi {
			break // all later children start beyond hi
		}
		if i+1 < nc && n.keys.Get(i+1) <= lo {
			continue // child ends at keys[i+1]-1 < lo
		}
		if !t.rangeWalk(n.children[i], lo, hi, fn) {
			return false
		}
	}
	return true
}
