package core

import "sort"

// SplitStrategy selects how a full leaf is divided.
type SplitStrategy uint8

const (
	// SplitAlpha uses the α-Split algorithm (Algorithm 1): expected O(n)
	// approximate-median partitioning. The paper's method.
	SplitAlpha SplitStrategy = iota
	// SplitSort uses the greedy method the paper rejects as too slow
	// (Sec. IV-C "Challenges"): sort the leaf by ID in O(n log n), then cut
	// at the exact median. Exists for the ablation benchmarks.
	SplitSort
)

func (s SplitStrategy) String() string {
	if s == SplitSort {
		return "sort"
	}
	return "alpha"
}

// idWeightSorter sorts parallel id/weight arrays by id.
type idWeightSorter struct {
	ids     []uint64
	weights []float64
}

func (s idWeightSorter) Len() int           { return len(s.ids) }
func (s idWeightSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s idWeightSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.weights[i], s.weights[j] = s.weights[j], s.weights[i]
}

// sortSplit fully sorts the leaf and returns the exact median position; the
// pivot property (left < pivot <= right) holds trivially.
func sortSplit(ids []uint64, weights []float64) int {
	sort.Sort(idWeightSorter{ids, weights})
	return len(ids) / 2
}

// This file implements the α-Split algorithm (Algorithm 1 of the PlatoD2GL
// paper): approximate-median selection over an *unordered* leaf ID list via
// recursive Hoare/Lomuto partitioning, so a full leaf can be split in
// expected O(n) instead of O(n log n) sorting (Theorem 1). The pivot element
// ends at its exact rank, every smaller ID to its left and every larger ID
// to its right, so the pivot's value becomes the exact routing key (smallest
// ID) of the right sibling.
//
// The slackness α relaxes the required rank: any pivot landing within
// [k-α, k+α] of the target rank k terminates the recursion, trading split
// balance for speed (Fig. 11(d)). α = 0 degenerates to exact QuickSelect.

// alphaSplit partitions ids (and weights, kept in tandem) around an
// approximate median and returns the pivot position khat with
// k-α ≤ khat ≤ k+α, where k = len(ids)/2. After the call,
// ids[j] < ids[khat] for all j < khat and ids[j] > ids[khat] for all
// j > khat. IDs must be distinct (samtrees never store a neighbor twice).
// The effective slackness is clamped so that neither side of the split is
// empty. len(ids) must be at least 2.
func alphaSplit(ids []uint64, weights []float64, alpha int) int {
	n := len(ids)
	k := n / 2
	// Keep khat in [1, n-1] so both halves are non-empty.
	if m := k - 1; alpha > m {
		alpha = m
	}
	if m := n - 1 - k; alpha > m {
		alpha = m
	}
	if alpha < 0 {
		alpha = 0
	}
	lo, hi := 0, n-1
	for {
		if lo >= hi {
			return lo
		}
		// Use the median position of the current window as the candidate
		// pivot (Algorithm 1, line 1), moving it to the front for the
		// partition pass.
		m := lo + (hi-lo)/2
		ids[lo], ids[m] = ids[m], ids[lo]
		weights[lo], weights[m] = weights[m], weights[lo]
		pos := partition(ids, weights, lo, hi)
		switch {
		case pos >= k-alpha && pos <= k+alpha:
			return pos
		case k < pos:
			hi = pos - 1
		default:
			lo = pos + 1
		}
	}
}

// partition places the pivot at ids[lo] into its final sorted position
// within [lo, hi], with smaller IDs before it and larger after, moving
// weights in tandem. Returns the pivot's final position.
func partition(ids []uint64, weights []float64, lo, hi int) int {
	pivot := ids[lo]
	i := lo
	for j := lo + 1; j <= hi; j++ {
		if ids[j] < pivot {
			i++
			ids[i], ids[j] = ids[j], ids[i]
			weights[i], weights[j] = weights[j], weights[i]
		}
	}
	ids[lo], ids[i] = ids[i], ids[lo]
	weights[lo], weights[i] = weights[i], weights[lo]
	return i
}
