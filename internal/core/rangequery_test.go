package core

import (
	"math/rand"
	"sort"
	"testing"
)

func TestRangeQueriesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := NewTree(Options{Capacity: 8, Compress: true})
	ref := map[uint64]float64{}
	for i := 0; i < 4000; i++ {
		id := uint64(rng.Intn(10000))
		w := rng.Float64() + 0.1
		tr.Insert(id, w)
		ref[id] = w
		if rng.Intn(7) == 0 {
			del := uint64(rng.Intn(10000))
			tr.Delete(del)
			delete(ref, del)
		}
	}
	refRange := func(lo, hi uint64) []uint64 {
		var out []uint64
		for id := range ref {
			if id >= lo && id <= hi {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for trial := 0; trial < 200; trial++ {
		lo := uint64(rng.Intn(10000))
		hi := lo + uint64(rng.Intn(3000))
		want := refRange(lo, hi)
		if got := tr.RangeCount(lo, hi); got != len(want) {
			t.Fatalf("RangeCount(%d,%d) = %d, want %d", lo, hi, got, len(want))
		}
		ids, weights := tr.RangeNeighbors(lo, hi)
		if len(ids) != len(want) {
			t.Fatalf("RangeNeighbors(%d,%d) = %d ids, want %d", lo, hi, len(ids), len(want))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i, id := range ids {
			if id != want[i] {
				t.Fatalf("range ids diverge at %d: %d vs %d", i, id, want[i])
			}
		}
		for i, id := range ids {
			_ = i
			if w, ok := ref[id]; !ok || w <= 0 {
				t.Fatalf("weight missing for %d", id)
			}
		}
		_ = weights
	}
}

func TestRangeEdgeCases(t *testing.T) {
	tr := NewTree(Options{Capacity: 4})
	if tr.RangeCount(0, ^uint64(0)) != 0 {
		t.Fatal("empty tree range nonzero")
	}
	for i := uint64(10); i <= 20; i++ {
		tr.Insert(i, 1)
	}
	if got := tr.RangeCount(15, 10); got != 0 {
		t.Fatalf("inverted range = %d", got)
	}
	if got := tr.RangeCount(15, 15); got != 1 {
		t.Fatalf("point range = %d", got)
	}
	if got := tr.RangeCount(0, ^uint64(0)); got != 11 {
		t.Fatalf("full range = %d", got)
	}
	if got := tr.RangeCount(21, 1000); got != 0 {
		t.Fatalf("beyond range = %d", got)
	}
	// Early termination.
	visits := 0
	tr.ForEachRange(0, ^uint64(0), func(uint64, float64) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("ForEachRange visited %d after stop", visits)
	}
}

func TestRangeTypeBandScan(t *testing.T) {
	// Packed heterogeneous IDs: range scan isolates one vertex type's band.
	tr := NewTree(Options{Capacity: 16, Compress: true})
	const typeA, typeB = uint64(1) << 56, uint64(2) << 56
	for i := uint64(0); i < 50; i++ {
		tr.Insert(typeA|i, 1)
	}
	for i := uint64(0); i < 30; i++ {
		tr.Insert(typeB|i, 1)
	}
	if got := tr.RangeCount(typeA, typeA|((1<<56)-1)); got != 50 {
		t.Fatalf("type-A band = %d, want 50", got)
	}
	if got := tr.RangeCount(typeB, typeB|((1<<56)-1)); got != 30 {
		t.Fatalf("type-B band = %d, want 30", got)
	}
}
