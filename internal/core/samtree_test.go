package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := NewTree(Options{})
	if tr.Len() != 0 || tr.Height() != 1 || tr.TotalWeight() != 0 {
		t.Fatalf("empty tree: len=%d height=%d total=%v", tr.Len(), tr.Height(), tr.TotalWeight())
	}
	if _, ok := tr.SampleOne(rand.New(rand.NewSource(1))); ok {
		t.Fatal("SampleOne on empty tree returned a value")
	}
	if _, ok := tr.Weight(7); ok {
		t.Fatal("Weight on empty tree found a neighbor")
	}
	if tr.Delete(7) {
		t.Fatal("Delete on empty tree returned true")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperExample1(t *testing.T) {
	// Figure 3: v1 has neighbors {2:0.1, 3:0.4, 5:0.2}; v3 has {4:0.6, 7:0.7}.
	t3 := NewTree(Options{Capacity: 4})
	t3.Insert(4, 0.6)
	t3.Insert(7, 0.7)
	if t3.Len() != 2 || t3.Height() != 1 {
		t.Fatalf("T3: len=%d height=%d", t3.Len(), t3.Height())
	}
	if w, ok := t3.Weight(4); !ok || math.Abs(w-0.6) > 1e-12 {
		t.Fatalf("T3 weight(4) = %v,%v", w, ok)
	}
	if math.Abs(t3.TotalWeight()-1.3) > 1e-12 {
		t.Fatalf("T3 total = %v, want 1.3", t3.TotalWeight())
	}
}

func TestPaperExample2SplitOnInsert(t *testing.T) {
	// Figure 4: capacity 4, neighbors 1..4 then inserting 6 splits the leaf.
	tr := NewTree(Options{Capacity: 4, Alpha: 0})
	weights := map[uint64]float64{1: 0.3, 2: 0.4, 3: 0.5, 4: 0.3}
	for id, w := range weights {
		tr.Insert(id, w)
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d before overflow, want 1", tr.Height())
	}
	tr.Insert(6, 0.3)
	if tr.Height() != 2 {
		t.Fatalf("height = %d after overflow, want 2", tr.Height())
	}
	weights[6] = 0.3
	if tr.Len() != 5 {
		t.Fatalf("len = %d, want 5", tr.Len())
	}
	for id, w := range weights {
		if got, ok := tr.Weight(id); !ok || math.Abs(got-w) > 1e-12 {
			t.Fatalf("weight(%d) = %v,%v want %v", id, got, ok, w)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicateUpdatesWeight(t *testing.T) {
	tr := NewTree(Options{})
	if !tr.Insert(5, 1.0) {
		t.Fatal("first insert reported update")
	}
	if tr.Insert(5, 2.5) {
		t.Fatal("second insert reported new")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
	if w, _ := tr.Weight(5); math.Abs(w-2.5) > 1e-12 {
		t.Fatalf("weight = %v, want 2.5", w)
	}
}

func TestUpdateWeight(t *testing.T) {
	tr := NewTree(Options{})
	tr.Insert(1, 1)
	if !tr.UpdateWeight(1, 9) {
		t.Fatal("UpdateWeight of present id returned false")
	}
	if tr.UpdateWeight(2, 1) {
		t.Fatal("UpdateWeight of absent id returned true")
	}
	if w, _ := tr.Weight(1); math.Abs(w-9) > 1e-12 {
		t.Fatalf("weight = %v, want 9", w)
	}
}

func buildSequential(t *testing.T, opt Options, n int) *Tree {
	t.Helper()
	tr := NewTree(opt)
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i), 1.0+float64(i%7))
	}
	return tr
}

func TestManyInsertsSequential(t *testing.T) {
	for _, cap := range []int{4, 8, 64, 256} {
		for _, compress := range []bool{false, true} {
			tr := buildSequential(t, Options{Capacity: cap, Compress: compress}, 5000)
			if tr.Len() != 5000 {
				t.Fatalf("cap=%d len=%d", cap, tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("cap=%d compress=%v: %v", cap, compress, err)
			}
			for i := 0; i < 5000; i += 17 {
				if w, ok := tr.Weight(uint64(i)); !ok || math.Abs(w-(1.0+float64(i%7))) > 1e-9 {
					t.Fatalf("cap=%d weight(%d) = %v,%v", cap, i, w, ok)
				}
			}
		}
	}
}

func TestManyInsertsRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ids := rng.Perm(8000)
	for _, alpha := range []int{0, 2, 16} {
		tr := NewTree(Options{Capacity: 32, Alpha: alpha})
		ref := map[uint64]float64{}
		for _, i := range ids {
			w := rng.Float64() + 0.1
			tr.Insert(uint64(i), w)
			ref[uint64(i)] = w
		}
		if tr.Len() != len(ref) {
			t.Fatalf("alpha=%d len=%d want %d", alpha, tr.Len(), len(ref))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("alpha=%d: %v", alpha, err)
		}
		for id, w := range ref {
			if got, ok := tr.Weight(id); !ok || math.Abs(got-w) > 1e-9 {
				t.Fatalf("alpha=%d weight(%d) = %v,%v want %v", alpha, id, got, ok, w)
			}
		}
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := NewTree(Options{Capacity: 4})
	for i := uint64(0); i < 20; i++ {
		tr.Insert(i, 1)
	}
	for i := uint64(0); i < 20; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) returned false", i)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d, want 10", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		_, ok := tr.Weight(i)
		if (i%2 == 0) == ok {
			t.Fatalf("Weight(%d) presence = %v", i, ok)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete returned true")
	}
}

func TestDeleteAllCollapsesTree(t *testing.T) {
	tr := NewTree(Options{Capacity: 4})
	const n = 300
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, 1)
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, expected >= 3 with capacity 4", tr.Height())
	}
	for i := uint64(0); i < n; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after deleting %d: %v", i, err)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after full deletion: len=%d height=%d", tr.Len(), tr.Height())
	}
	if math.Abs(tr.TotalWeight()) > 1e-6 {
		t.Fatalf("total weight = %v, want 0", tr.TotalWeight())
	}
}

func TestRandomizedChurnAgainstMap(t *testing.T) {
	for _, opt := range []Options{
		{Capacity: 4},
		{Capacity: 8, Alpha: 1},
		{Capacity: 16, Alpha: 4, Compress: true},
		{Capacity: 64, Compress: true},
	} {
		rng := rand.New(rand.NewSource(123))
		tr := NewTree(opt)
		ref := map[uint64]float64{}
		keys := func() []uint64 {
			out := make([]uint64, 0, len(ref))
			for k := range ref {
				out = append(out, k)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		for step := 0; step < 12000; step++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(ref) == 0: // insert
				id := uint64(rng.Intn(3000))
				w := rng.Float64() + 0.01
				wantNew := true
				if _, ok := ref[id]; ok {
					wantNew = false
				}
				if got := tr.Insert(id, w); got != wantNew {
					t.Fatalf("step %d: Insert(%d) new=%v want %v", step, id, got, wantNew)
				}
				ref[id] = w
			case op < 8: // delete
				ks := keys()
				id := ks[rng.Intn(len(ks))]
				if !tr.Delete(id) {
					t.Fatalf("step %d: Delete(%d) failed", step, id)
				}
				delete(ref, id)
			default: // update
				ks := keys()
				id := ks[rng.Intn(len(ks))]
				w := rng.Float64() + 0.01
				if !tr.UpdateWeight(id, w) {
					t.Fatalf("step %d: UpdateWeight(%d) failed", step, id)
				}
				ref[id] = w
			}
			if tr.Len() != len(ref) {
				t.Fatalf("step %d: len %d vs %d", step, tr.Len(), len(ref))
			}
			if step%509 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("step %d (cap=%d alpha=%d cp=%v): %v",
						step, opt.Capacity, opt.Alpha, opt.Compress, err)
				}
				for id, w := range ref {
					if got, ok := tr.Weight(id); !ok || math.Abs(got-w) > 1e-9 {
						t.Fatalf("step %d: weight(%d) = %v,%v want %v", step, id, got, ok, w)
					}
				}
			}
		}
	}
}

func TestNeighborsAndForEach(t *testing.T) {
	tr := NewTree(Options{Capacity: 8})
	want := map[uint64]float64{}
	for i := uint64(0); i < 100; i++ {
		w := float64(i) + 0.5
		tr.Insert(i*3, w)
		want[i*3] = w
	}
	ids, weights := tr.Neighbors()
	if len(ids) != len(want) {
		t.Fatalf("Neighbors returned %d ids, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if math.Abs(weights[i]-want[id]) > 1e-12 {
			t.Fatalf("Neighbors[%d]: id=%d w=%v want %v", i, id, weights[i], want[id])
		}
	}
	// ForEach early stop.
	visits := 0
	tr.ForEach(func(uint64, float64) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("ForEach visited %d after stop", visits)
	}
}

func TestSampleDistributionSingleLeaf(t *testing.T) {
	tr := NewTree(Options{Capacity: 16})
	weights := map[uint64]float64{1: 1, 2: 2, 3: 3, 4: 4}
	total := 0.0
	for id, w := range weights {
		tr.Insert(id, w)
		total += w
	}
	rng := rand.New(rand.NewSource(55))
	const trials = 100000
	counts := map[uint64]int{}
	for i := 0; i < trials; i++ {
		id, ok := tr.SampleOne(rng)
		if !ok {
			t.Fatal("SampleOne failed")
		}
		counts[id]++
	}
	chi2 := 0.0
	for id, w := range weights {
		expected := float64(trials) * w / total
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 16.27 { // 3 dof, p=0.001
		t.Fatalf("chi-square = %v, counts=%v", chi2, counts)
	}
}

func TestSampleDistributionMultiLevel(t *testing.T) {
	// Force a tall tree: capacity 4 and 64 neighbors with skewed weights.
	tr := NewTree(Options{Capacity: 4})
	rng := rand.New(rand.NewSource(77))
	weights := map[uint64]float64{}
	total := 0.0
	for i := uint64(0); i < 64; i++ {
		w := math.Pow(1.08, float64(i)) // geometric skew
		tr.Insert(i, w)
		weights[i] = w
		total += w
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, want >= 3", tr.Height())
	}
	const trials = 400000
	counts := map[uint64]int{}
	for i := 0; i < trials; i++ {
		id, _ := tr.SampleOne(rng)
		counts[id]++
	}
	chi2 := 0.0
	for id, w := range weights {
		expected := float64(trials) * w / total
		d := float64(counts[id]) - expected
		chi2 += d * d / expected
	}
	// 63 dof, p=0.001 critical value ~103.4.
	if chi2 > 103.4 {
		t.Fatalf("chi-square = %v", chi2)
	}
}

func TestSampleN(t *testing.T) {
	tr := NewTree(Options{})
	for i := uint64(0); i < 10; i++ {
		tr.Insert(i, 1)
	}
	rng := rand.New(rand.NewSource(3))
	got := tr.SampleN(rng, 25, nil)
	if len(got) != 25 {
		t.Fatalf("SampleN returned %d, want 25", len(got))
	}
	for _, id := range got {
		if id >= 10 {
			t.Fatalf("sampled unknown id %d", id)
		}
	}
	// Reuse destination buffer.
	buf := make([]uint64, 0, 8)
	got = tr.SampleN(rng, 5, buf)
	if len(got) != 5 {
		t.Fatalf("SampleN with dst returned %d", len(got))
	}
}

func TestAlphaSplitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(300)
		ids := make([]uint64, n)
		weights := make([]float64, n)
		seen := map[uint64]bool{}
		for i := range ids {
			for {
				v := rng.Uint64() % 100000
				if !seen[v] {
					seen[v] = true
					ids[i] = v
					break
				}
			}
			weights[i] = float64(ids[i]) * 0.25 // weight tied to id to verify tandem moves
		}
		k := alphaSplit(ids, weights, 0)
		if k != n/2 {
			t.Fatalf("alpha=0: pivot at %d, want exact median %d (n=%d)", k, n/2, n)
		}
		pivot := ids[k]
		for j := 0; j < k; j++ {
			if ids[j] >= pivot {
				t.Fatalf("left element %d >= pivot %d", ids[j], pivot)
			}
		}
		for j := k + 1; j < n; j++ {
			if ids[j] <= pivot {
				t.Fatalf("right element %d <= pivot %d", ids[j], pivot)
			}
		}
		for j := range ids {
			if math.Abs(weights[j]-float64(ids[j])*0.25) > 1e-12 {
				t.Fatalf("weight desynced from id at %d", j)
			}
		}
	}
}

func TestAlphaSplitSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, alpha := range []int{1, 4, 16, 1000} {
		for trial := 0; trial < 100; trial++ {
			n := 4 + rng.Intn(500)
			ids := make([]uint64, n)
			weights := make([]float64, n)
			perm := rng.Perm(n * 3)
			for i := range ids {
				ids[i] = uint64(perm[i])
				weights[i] = 1
			}
			k := alphaSplit(ids, weights, alpha)
			if k < 1 || k > n-1 {
				t.Fatalf("alpha=%d n=%d: pivot %d leaves an empty side", alpha, n, k)
			}
			target := n / 2
			effAlpha := alpha
			if m := target - 1; effAlpha > m {
				effAlpha = m
			}
			if m := n - 1 - target; effAlpha > m {
				effAlpha = m
			}
			if k < target-effAlpha || k > target+effAlpha {
				t.Fatalf("alpha=%d n=%d: pivot %d outside [%d,%d]",
					alpha, n, k, target-effAlpha, target+effAlpha)
			}
			pivot := ids[k]
			for j := 0; j < k; j++ {
				if ids[j] >= pivot {
					t.Fatalf("left violation")
				}
			}
			for j := k + 1; j < n; j++ {
				if ids[j] <= pivot {
					t.Fatalf("right violation")
				}
			}
		}
	}
}

func TestAlphaSplitTwoElements(t *testing.T) {
	ids := []uint64{9, 3}
	w := []float64{1, 2}
	k := alphaSplit(ids, w, 0)
	if k != 1 || ids[0] != 3 || ids[1] != 9 {
		t.Fatalf("k=%d ids=%v", k, ids)
	}
}

func TestCountersTableV(t *testing.T) {
	// Low-degree trees (single leaf) must produce zero non-leaf updates;
	// higher capacity shifts the mix toward leaves.
	shares := map[int]float64{}
	for _, cap := range []int{8, 64} {
		ctr := &Counters{}
		rng := rand.New(rand.NewSource(6))
		tr := NewTree(Options{Capacity: cap, Counters: ctr})
		for i := 0; i < 4000; i++ {
			tr.Insert(uint64(rng.Intn(100000)), 1)
		}
		shares[cap] = ctr.LeafShare()
	}
	if shares[64] <= shares[8] {
		t.Fatalf("leaf share should grow with capacity: %v", shares)
	}
	// A tree that never outgrows one leaf gives share 1.0.
	ctr := &Counters{}
	tr := NewTree(Options{Capacity: 64, Counters: ctr})
	for i := uint64(0); i < 50; i++ {
		tr.Insert(i, 1)
	}
	if s := ctr.LeafShare(); s != 1.0 {
		t.Fatalf("single-leaf share = %v, want 1.0", s)
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.leaf(1)
	c.nonLeaf(1)
	c.splits(1)
	c.merges(1) // must not panic
}

func TestMemoryBytesCompressionShrinks(t *testing.T) {
	mk := func(compress bool) int64 {
		tr := NewTree(Options{Capacity: 256, Compress: compress})
		for i := uint64(0); i < 10000; i++ {
			tr.Insert(0x0100000000000000|i, 1)
		}
		return tr.MemoryBytes()
	}
	withCP, withoutCP := mk(true), mk(false)
	if withCP >= withoutCP {
		t.Fatalf("compressed %d >= uncompressed %d", withCP, withoutCP)
	}
	saving := 1 - float64(withCP)/float64(withoutCP)
	if saving < 0.15 {
		t.Fatalf("compression saving %.1f%%, want >= 15%%", saving*100)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := buildSequential(t, Options{Capacity: 16}, 20000)
	// ceil(log_8(20000)) + slack: height must stay small.
	if tr.Height() > 6 {
		t.Fatalf("height = %d for 20000 neighbors at capacity 16", tr.Height())
	}
}

func TestQuickInsertLookup(t *testing.T) {
	prop := func(ids []uint64) bool {
		tr := NewTree(Options{Capacity: 8})
		ref := map[uint64]float64{}
		for i, id := range ids {
			w := float64(i%13) + 0.5
			tr.Insert(id, w)
			ref[id] = w
		}
		if tr.Len() != len(ref) {
			return false
		}
		for id, w := range ref {
			got, ok := tr.Weight(id)
			if !ok || math.Abs(got-w) > 1e-9 {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInsertDeleteInverse(t *testing.T) {
	prop := func(ids []uint64) bool {
		tr := NewTree(Options{Capacity: 8, Compress: true})
		uniq := map[uint64]bool{}
		for _, id := range ids {
			tr.Insert(id, 1)
			uniq[id] = true
		}
		for id := range uniq {
			if !tr.Delete(id) {
				return false
			}
		}
		return tr.Len() == 0 && tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := NewTree(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i), 1)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	tr := NewTree(Options{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64()%1000000, 1)
	}
}

func BenchmarkSampleOne(b *testing.B) {
	tr := NewTree(Options{})
	for i := uint64(0); i < 100000; i++ {
		tr.Insert(i, 1+float64(i%9))
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SampleOne(rng)
	}
}

func BenchmarkDelete(b *testing.B) {
	tr := NewTree(Options{})
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Delete(uint64(i))
	}
}

func TestUniformSamplingDistribution(t *testing.T) {
	tr := NewTree(Options{Capacity: 8})
	// Heavily skewed weights; uniform sampling must ignore them.
	for i := uint64(0); i < 40; i++ {
		tr.Insert(i, float64(i*i)+0.001)
	}
	rng := rand.New(rand.NewSource(21))
	const trials = 120000
	counts := map[uint64]int{}
	for i := 0; i < trials; i++ {
		v, ok := tr.SampleOneUniform(rng)
		if !ok {
			t.Fatal("SampleOneUniform failed")
		}
		counts[v]++
	}
	expected := float64(trials) / 40
	chi2 := 0.0
	for i := uint64(0); i < 40; i++ {
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	// 39 dof, p=0.001 critical value ~72.06.
	if chi2 > 72.06 {
		t.Fatalf("chi-square = %v, counts = %v", chi2, counts)
	}
}

func TestUniformSamplingAfterChurn(t *testing.T) {
	tr := NewTree(Options{Capacity: 4})
	rng := rand.New(rand.NewSource(5))
	for i := uint64(0); i < 200; i++ {
		tr.Insert(i, 1)
	}
	for i := uint64(0); i < 200; i += 2 {
		tr.Delete(i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5000; trial++ {
		v, ok := tr.SampleOneUniform(rng)
		if !ok || v%2 == 0 {
			t.Fatalf("sampled deleted or invalid neighbor %d (ok=%v)", v, ok)
		}
	}
	out := tr.SampleNUniform(rng, 10, nil)
	if len(out) != 10 {
		t.Fatalf("SampleNUniform returned %d", len(out))
	}
}

func TestUniformSamplingEmpty(t *testing.T) {
	tr := NewTree(Options{})
	if _, ok := tr.SampleOneUniform(rand.New(rand.NewSource(1))); ok {
		t.Fatal("sampled from empty tree")
	}
}

func TestLeafITSAblationChurn(t *testing.T) {
	// The CSTable-leaf ablation must behave identically (just slower).
	rng := rand.New(rand.NewSource(66))
	fts := NewTree(Options{Capacity: 8, LeafTable: LeafFTS})
	its := NewTree(Options{Capacity: 8, LeafTable: LeafITS})
	ref := map[uint64]float64{}
	for step := 0; step < 6000; step++ {
		id := uint64(rng.Intn(500))
		switch rng.Intn(3) {
		case 0, 1:
			w := rng.Float64() + 0.01
			fts.Insert(id, w)
			its.Insert(id, w)
			ref[id] = w
		case 2:
			a := fts.Delete(id)
			b := its.Delete(id)
			if a != b {
				t.Fatalf("step %d: delete divergence %v vs %v", step, a, b)
			}
			delete(ref, id)
		}
	}
	if fts.Len() != its.Len() || fts.Len() != len(ref) {
		t.Fatalf("sizes: fts=%d its=%d ref=%d", fts.Len(), its.Len(), len(ref))
	}
	if err := its.CheckInvariants(); err != nil {
		t.Fatalf("ITS-leaf invariants: %v", err)
	}
	for id, w := range ref {
		a, _ := fts.Weight(id)
		b, ok := its.Weight(id)
		if !ok || math.Abs(a-b) > 1e-9 || math.Abs(a-w) > 1e-9 {
			t.Fatalf("weight divergence for %d: %v vs %v (want %v)", id, a, b, w)
		}
	}
	// Sampling distributions agree.
	rngA := rand.New(rand.NewSource(9))
	rngB := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		a, _ := fts.SampleOne(rngA)
		b, _ := its.SampleOne(rngB)
		if a != b {
			t.Fatalf("sample divergence at draw %d: %d vs %d", i, a, b)
		}
	}
}

func TestApplyBatchMatchesSingleOps(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, cap := range []int{4, 16, 256} {
		batched := NewTree(Options{Capacity: cap})
		single := NewTree(Options{Capacity: cap})
		var ops []Op
		for i := 0; i < 8000; i++ {
			id := uint64(rng.Intn(1000))
			switch rng.Intn(5) {
			case 0:
				ops = append(ops, Op{Kind: OpDelete, ID: id})
			case 1:
				ops = append(ops, Op{Kind: OpUpdate, ID: id, Weight: rng.Float64() + 0.1})
			default:
				ops = append(ops, Op{Kind: OpInsert, ID: id, Weight: rng.Float64() + 0.1})
			}
		}
		singleOps := make([]Op, len(ops))
		copy(singleOps, ops)
		// Single path must see the same per-ID order the batch uses: sort
		// stable by ID first.
		sort.SliceStable(singleOps, func(i, j int) bool { return singleOps[i].ID < singleOps[j].ID })
		var sAdded, sRemoved int
		for _, op := range singleOps {
			switch op.Kind {
			case OpInsert:
				if single.Insert(op.ID, op.Weight) {
					sAdded++
				}
			case OpDelete:
				if single.Delete(op.ID) {
					sRemoved++
				}
			case OpUpdate:
				single.UpdateWeight(op.ID, op.Weight)
			}
		}
		added, removed := batched.ApplyBatch(ops)
		if added != sAdded || removed != sRemoved {
			t.Fatalf("cap=%d: batch (%d,%d) vs single (%d,%d)", cap, added, removed, sAdded, sRemoved)
		}
		if batched.Len() != single.Len() {
			t.Fatalf("cap=%d: len %d vs %d", cap, batched.Len(), single.Len())
		}
		if err := batched.CheckInvariants(); err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
		single.ForEach(func(id uint64, w float64) bool {
			got, ok := batched.Weight(id)
			if !ok || math.Abs(got-w) > 1e-9 {
				t.Fatalf("cap=%d: weight(%d) = %v,%v want %v", cap, id, got, ok, w)
			}
			return true
		})
	}
}

func TestApplyBatchEmptyAndSingleton(t *testing.T) {
	tr := NewTree(Options{})
	if a, r := tr.ApplyBatch(nil); a != 0 || r != 0 {
		t.Fatalf("empty batch: %d,%d", a, r)
	}
	if a, r := tr.ApplyBatch([]Op{{Kind: OpInsert, ID: 5, Weight: 1}}); a != 1 || r != 0 {
		t.Fatalf("singleton: %d,%d", a, r)
	}
	if w, ok := tr.Weight(5); !ok || w != 1 {
		t.Fatalf("weight = %v,%v", w, ok)
	}
}

func TestQuickApplyBatchInvariants(t *testing.T) {
	prop := func(ids []uint64, kinds []uint8) bool {
		tr := NewTree(Options{Capacity: 8, Compress: true})
		ops := make([]Op, len(ids))
		for i, id := range ids {
			k := OpInsert
			if i < len(kinds) {
				k = OpKind(kinds[i] % 3)
			}
			ops[i] = Op{Kind: k, ID: id % 300, Weight: float64(i%7) + 0.5}
		}
		tr.ApplyBatch(ops)
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApplyBatchSorted(b *testing.B) {
	tr := NewTree(Options{})
	rng := rand.New(rand.NewSource(1))
	ops := make([]Op, 4096)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, ID: rng.Uint64() % 1000000, Weight: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ApplyBatch(ops)
	}
}

func BenchmarkLeafTableAblationInsert(b *testing.B) {
	for _, kind := range []LeafTableKind{LeafFTS, LeafITS} {
		b.Run(kind.String(), func(b *testing.B) {
			tr := NewTree(Options{LeafTable: kind})
			rng := rand.New(rand.NewSource(1))
			// Pre-fill so in-place updates dominate.
			for i := uint64(0); i < 10000; i++ {
				tr.Insert(i, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Insert(rng.Uint64()%10000, 2)
			}
		})
	}
}

func TestSortSplitAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	a := NewTree(Options{Capacity: 8, Split: SplitAlpha})
	b := NewTree(Options{Capacity: 8, Split: SplitSort})
	ref := map[uint64]float64{}
	for i := 0; i < 5000; i++ {
		id := uint64(rng.Intn(2000))
		w := rng.Float64() + 0.1
		a.Insert(id, w)
		b.Insert(id, w)
		ref[id] = w
		if rng.Intn(6) == 0 {
			del := uint64(rng.Intn(2000))
			da := a.Delete(del)
			db := b.Delete(del)
			if da != db {
				t.Fatalf("step %d: delete divergence", i)
			}
			delete(ref, del)
		}
	}
	for _, tr := range []*Tree{a, b} {
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("split=%v: %v", tr.opt.Split, err)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("split=%v: len %d want %d", tr.opt.Split, tr.Len(), len(ref))
		}
	}
	for id, w := range ref {
		wa, _ := a.Weight(id)
		wb, ok := b.Weight(id)
		if !ok || math.Abs(wa-wb) > 1e-9 || math.Abs(wa-w) > 1e-9 {
			t.Fatalf("weight divergence for %d", id)
		}
	}
}

func BenchmarkSplitStrategy(b *testing.B) {
	for _, strat := range []SplitStrategy{SplitAlpha, SplitSort} {
		b.Run(strat.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := NewTree(Options{Capacity: 256, Split: strat})
				for j := 0; j < 20000; j++ {
					tr.Insert(rng.Uint64()%1000000, 1)
				}
			}
		})
	}
}
