package core

import "math/rand"

// This file implements unweighted (uniform) neighbor sampling, the second
// sampling mode of Sec. II-B: every out-neighbor is drawn with probability
// 1/n_s. Internal nodes carry exact per-child neighbor counts, so a uniform
// draw is a count-guided descent with no floating point involved.

// SampleOneUniform draws one neighbor uniformly at random. Returns false on
// an empty tree.
func (t *Tree) SampleOneUniform(rng *rand.Rand) (uint64, bool) {
	if t.size == 0 {
		return 0, false
	}
	r := int32(rng.Intn(t.size))
	n := t.root
	for !n.isLeaf() {
		ci := 0
		for ; ci < len(n.counts); ci++ {
			if r < n.counts[ci] {
				break
			}
			r -= n.counts[ci]
		}
		if ci == len(n.counts) { // defensive: counts drifted (cannot happen)
			ci = len(n.counts) - 1
			r = n.counts[ci] - 1
		}
		n = n.children[ci]
	}
	return n.ids.Get(int(r)), true
}

// SampleNUniform draws k neighbors uniformly with replacement into dst
// (allocated if nil).
func (t *Tree) SampleNUniform(rng *rand.Rand, k int, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, 0, k)
	}
	for i := 0; i < k; i++ {
		if v, ok := t.SampleOneUniform(rng); ok {
			dst = append(dst, v)
		}
	}
	return dst
}
